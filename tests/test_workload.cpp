// Tests for src/workload: Zipf popularity against the analytic pmf,
// schedule determinism (the property the whole suite rests on — identical
// specs produce byte-identical schedules), diurnal/flash-crowd rate
// modulation, and tenant/op-mix proportions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/common/rng.hpp"
#include "src/workload/workload.hpp"

namespace c4h::workload {
namespace {

TEST(Zipf, PmfSumsToOne) {
  const ZipfTable z{50, 0.9};
  double sum = 0.0;
  for (std::size_t k = 0; k < 50; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  const ZipfTable z{64, 1.1};
  for (std::size_t k = 1; k < 64; ++k) EXPECT_LT(z.pmf(k), z.pmf(k - 1));
}

TEST(Zipf, EmpiricalFrequenciesMatchAnalyticPmf) {
  const std::size_t n = 40;
  const ZipfTable z{n, 0.8};
  Rng rng{1234};
  const int draws = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < n; ++k) {
    const double emp = static_cast<double>(counts[k]) / draws;
    // Absolute floor for the tail plus a relative band for the head.
    EXPECT_NEAR(emp, z.pmf(k), 0.003 + 0.05 * z.pmf(k)) << "rank " << k;
  }
}

WorkloadSpec two_tenant_spec() {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.duration = seconds(30);

  TenantSpec a;
  a.name = "alpha";
  a.principal = {"alpha", vstore::TrustLevel::trusted};
  a.mix = {0.5, 0.3, 0.0, 0.0};
  a.mix.process = 0.15;
  a.mix.fetch_process = 0.05;
  a.service = services::ServiceProfile{};
  a.object_count = 16;
  a.arrival.rate_per_sec = 40.0;
  spec.tenants.push_back(a);

  TenantSpec b;
  b.name = "beta";
  b.principal = {"beta", vstore::TrustLevel::trusted};
  b.mix = {0.2, 0.8, 0.0, 0.0};
  b.object_count = 8;
  b.fetch_from = {"alpha"};
  b.arrival.rate_per_sec = 120.0;
  spec.tenants.push_back(b);

  return spec;
}

TEST(Generate, SameSeedIsByteIdentical) {
  const Schedule s1 = generate(two_tenant_spec());
  const Schedule s2 = generate(two_tenant_spec());
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());
  EXPECT_EQ(s1.objects, s2.objects);
  EXPECT_EQ(s1.ops, s2.ops);
}

TEST(Generate, DifferentSeedsDiverge) {
  WorkloadSpec spec = two_tenant_spec();
  const Schedule s1 = generate(spec);
  spec.seed = 8;
  const Schedule s2 = generate(spec);
  EXPECT_NE(s1.fingerprint(), s2.fingerprint());
}

TEST(Generate, OpsAreTimeSortedAndStoresTargetOwnCatalog) {
  const WorkloadSpec spec = two_tenant_spec();
  const Schedule s = generate(spec);
  ASSERT_FALSE(s.ops.empty());
  for (std::size_t i = 1; i < s.ops.size(); ++i) {
    EXPECT_LE(s.ops[i - 1].at, s.ops[i].at);
  }
  for (const ScheduledOp& op : s.ops) {
    ASSERT_LT(op.object, s.objects.size());
    if (op.kind == OpKind::store) {
      EXPECT_EQ(s.objects[op.object].tenant, op.tenant);
    }
  }
}

TEST(Generate, TenantArrivalRatesSetOpProportions) {
  const WorkloadSpec spec = two_tenant_spec();  // rates 40 vs 120 → 1:3
  const Schedule s = generate(spec);
  const double a = static_cast<double>(s.count_tenant(0));
  const double b = static_cast<double>(s.count_tenant(1));
  ASSERT_GT(a, 0.0);
  EXPECT_NEAR(b / a, 3.0, 0.45);
}

TEST(Generate, OpMixProportionsMatchWeights) {
  WorkloadSpec spec = two_tenant_spec();
  spec.tenants[1].arrival.rate_per_sec = 300.0;  // ~9000 beta ops
  const Schedule s = generate(spec);
  std::size_t store = 0, fetch = 0;
  for (const ScheduledOp& op : s.ops) {
    if (op.tenant != 1) continue;
    if (op.kind == OpKind::store) ++store;
    if (op.kind == OpKind::fetch) ++fetch;
  }
  const double total = static_cast<double>(store + fetch);
  EXPECT_NEAR(static_cast<double>(store) / total, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(fetch) / total, 0.8, 0.03);
}

TEST(Generate, FetchableSetSpansOwnAndSharedCatalogs) {
  const WorkloadSpec spec = two_tenant_spec();
  const Schedule s = generate(spec);
  const auto sets = fetchable_sets(spec, s.objects);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].size(), 16u);       // alpha: own only
  EXPECT_EQ(sets[1].size(), 16u + 8u);  // beta: own + alpha
  // Beta's fetches stay inside its fetchable set.
  std::vector<bool> allowed(s.objects.size(), false);
  for (const std::uint32_t i : sets[1]) allowed[i] = true;
  for (const ScheduledOp& op : s.ops) {
    if (op.tenant == 1 && op.kind == OpKind::fetch) EXPECT_TRUE(allowed[op.object]);
  }
}

TEST(Modulation, DiurnalIsPeriodicAndBounded) {
  DiurnalSpec d;
  d.enabled = true;
  d.period = seconds(60);
  d.amplitude = 0.5;
  const RateModulation mod{d, {}};
  for (int i = 0; i < 200; ++i) {
    const TimePoint t = milliseconds(i * 777);
    EXPECT_NEAR(mod.at(t), mod.at(t + d.period), 1e-9);
    EXPECT_GE(mod.at(t), 0.5 - 1e-9);
    EXPECT_LE(mod.at(t), 1.5 + 1e-9);
  }
  EXPECT_NEAR(mod.at(seconds(15)), 1.5, 1e-9);  // peak at period/4
  EXPECT_NEAR(mod.at(seconds(45)), 0.5, 1e-9);  // trough at 3·period/4
}

TEST(Modulation, FlashCrowdMultipliesOnlyInsideWindow) {
  FlashCrowdSpec f;
  f.start = seconds(10);
  f.duration = seconds(5);
  f.multiplier = 8.0;
  const RateModulation mod{{}, {f}};
  EXPECT_NEAR(mod.at(seconds(9)), 1.0, 1e-9);
  EXPECT_NEAR(mod.at(seconds(10)), 8.0, 1e-9);
  EXPECT_NEAR(mod.at(seconds(14)), 8.0, 1e-9);
  EXPECT_NEAR(mod.at(seconds(15)), 1.0, 1e-9);
}

TEST(Generate, DiurnalModulationShapesArrivalDensity) {
  WorkloadSpec spec;
  spec.seed = 11;
  spec.duration = seconds(60);
  spec.diurnal.enabled = true;
  spec.diurnal.period = seconds(60);
  spec.diurnal.amplitude = 0.9;

  TenantSpec t;
  t.name = "t";
  t.principal = {"t", vstore::TrustLevel::trusted};
  t.mix = {1.0, 0.0, 0.0, 0.0};
  t.object_count = 8;
  t.arrival.rate_per_sec = 100.0;
  spec.tenants.push_back(t);

  const Schedule s = generate(spec);
  std::size_t first_half = 0, second_half = 0;  // sin ≥ 0 vs sin ≤ 0
  for (const ScheduledOp& op : s.ops) {
    (op.at < seconds(30) ? first_half : second_half)++;
  }
  ASSERT_GT(second_half, 0u);
  EXPECT_GT(static_cast<double>(first_half) / static_cast<double>(second_half), 1.8);
}

TEST(Generate, FlashCrowdInflatesWindowDensity) {
  WorkloadSpec spec;
  spec.seed = 5;
  spec.duration = seconds(60);
  FlashCrowdSpec f;
  f.start = seconds(30);
  f.duration = seconds(10);
  f.multiplier = 8.0;
  spec.flash_crowds.push_back(f);

  TenantSpec t;
  t.name = "t";
  t.principal = {"t", vstore::TrustLevel::trusted};
  t.mix = {0.0, 1.0, 0.0, 0.0};
  t.object_count = 8;
  t.arrival.rate_per_sec = 20.0;
  spec.tenants.push_back(t);

  const Schedule s = generate(spec);
  std::size_t before = 0, inside = 0;  // [20,30) vs [30,40)
  for (const ScheduledOp& op : s.ops) {
    if (op.at >= seconds(20) && op.at < seconds(30)) ++before;
    if (op.at >= seconds(30) && op.at < seconds(40)) ++inside;
  }
  ASSERT_GT(before, 0u);
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(before), 3.0);
}

TEST(FromTrace, MapsFilesToTenantsAndIsDeterministic) {
  trace::TraceConfig tc;
  tc.clients = 3;
  tc.file_count = 60;
  tc.op_count = 200;
  tc.seed = 21;
  const trace::TraceWorkload w = trace::generate(tc);
  const Schedule s1 = from_trace(w, 3, 5.0, 9);
  const Schedule s2 = from_trace(w, 3, 5.0, 9);
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());
  ASSERT_EQ(s1.objects.size(), w.files.size());
  for (std::size_t i = 0; i < s1.objects.size(); ++i) {
    EXPECT_EQ(s1.objects[i].tenant, static_cast<std::uint32_t>(i % 3));
    EXPECT_EQ(s1.objects[i].size, w.files[i].size);
    EXPECT_EQ(s1.objects[i].is_private, w.files[i].is_private());
  }
  EXPECT_EQ(s1.ops.size(), w.ops.size());
  for (std::size_t i = 1; i < s1.ops.size(); ++i) {
    EXPECT_GE(s1.ops[i].at, s1.ops[i - 1].at);  // monotone pacing
  }
}

}  // namespace
}  // namespace c4h::workload
