// End-to-end tests for tools/c4h-analyze: every rule (A1–A4 coroutine
// lifetime, D1–D3 determinism taint) has a seeded true-positive fixture that
// must produce exactly the expected findings and a near-miss true-negative
// fixture that must come up clean. On top of the per-rule pairs: cross-file
// symbol-index resolution, suppression comments, --rules filtering, the
// baseline workflow (write, match, stale-entry warning, new-finding failure),
// and the invariant CI enforces — the real tree analyzes clean against the
// checked-in baseline.
//
// The analyzer binary and fixture directory are injected by CMake as compile
// definitions (C4H_ANALYZE_BIN, C4H_ANALYZE_FIXDIR, C4H_SOURCE_DIR).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct AnalyzeRun {
  int exit_code;
  std::string output;  // stdout + stderr interleaved

  bool contains(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }
  int count(const std::string& needle) const {
    int n = 0;
    for (std::size_t pos = output.find(needle); pos != std::string::npos;
         pos = output.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  }
};

// Runs the analyzer with `args` (fixture names and flags only, so already
// shell-safe) and captures combined output plus exit status.
AnalyzeRun analyze(const std::string& args) {
  const std::string cmd = std::string(C4H_ANALYZE_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  AnalyzeRun run{-1, {}};
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(C4H_ANALYZE_FIXDIR) + "/" + name;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

}  // namespace

// ---------------------------------------------------------------- family A

TEST(Analyze, A1BadFlagsTemporariesBoundToSpawnedRefParams) {
  const AnalyzeRun r = analyze(fixture("a1_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("a1_bad.cpp:21: [A1] temporary bound to reference parameter 1"))
      << r.output;
  EXPECT_TRUE(r.contains("a1_bad.cpp:22: [A1]")) << r.output;
  EXPECT_TRUE(r.contains("a1_bad.cpp:29: [A1] temporary bound to reference parameter 1 "
                         "of spawned coroutine lambda"))
      << r.output;
  EXPECT_EQ(r.count("[A1]"), 3) << r.output;
}

TEST(Analyze, A1GoodLvaluesMovesAndRunTaskAnalyzeClean) {
  const AnalyzeRun r = analyze(fixture("a1_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.contains("0 finding(s)")) << r.output;
}

TEST(Analyze, A1CrossFileResolvesDeclarationFromHeader) {
  // The spawned callee is only *declared* in a1_decl.hpp; the ref-param shape
  // must come from the symbol index, not the call site's file.
  const AnalyzeRun r = analyze(fixture("a1_decl.hpp") + " " + fixture("a1_cross_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains(
      "a1_cross_bad.cpp:9: [A1] temporary bound to reference parameter 1 of spawned "
      "drain_session"))
      << r.output;
  EXPECT_EQ(r.count("[A1]"), 1) << r.output;
}

TEST(Analyze, A2BadFlagsCapturingCoroutineLambdasInDetachedSpawn) {
  const AnalyzeRun r = analyze(fixture("a2_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("a2_bad.cpp:11: [A2] coroutine lambda with by-reference captures"))
      << r.output;
  EXPECT_TRUE(r.contains("a2_bad.cpp:19: [A2] coroutine lambda with by-value captures"))
      << r.output;
  EXPECT_TRUE(r.contains("a2_bad.cpp:29: [A2] coroutine lambda with `this` captures"))
      << r.output;
  EXPECT_EQ(r.count("[A2]"), 3) << r.output;
}

TEST(Analyze, A2GoodParameterPassingAndSyncDriversAnalyzeClean) {
  // Captures are fine in run_task (synchronous) and in non-coroutine lambdas;
  // the tree's param-passing spawn idiom is the blessed pattern.
  const AnalyzeRun r = analyze(fixture("a2_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Analyze, A3BadFlagsIteratorsHeldAcrossAwait) {
  const AnalyzeRun r = analyze(fixture("a3_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("a3_bad.cpp:18: [A3] iterator 'it' into 'table' used across co_await"))
      << r.output;
  EXPECT_TRUE(
      r.contains("a3_bad.cpp:24: [A3] iterator 'cursor' into 'table' used across co_await"))
      << r.output;
  EXPECT_EQ(r.count("[A3]"), 2) << r.output;
}

TEST(Analyze, A3GoodPreAwaitUseRefindAndEarlyExitBranchAnalyzeClean) {
  // Four near misses: consumed before the await, re-acquired after it, used
  // inside the awaited expression, and an await on an early-co_return branch.
  const AnalyzeRun r = analyze(fixture("a3_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Analyze, A4BadFlagsDetachedTaskOnFunctionLocalObject) {
  const AnalyzeRun r = analyze(fixture("a4_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("a4_bad.cpp:22: [A4] detached task 'p.sample_loop(...)' keeps "
                         "`this` of a function-local object"))
      << r.output;
  EXPECT_EQ(r.count("[A4]"), 1) << r.output;
}

TEST(Analyze, A4GoodMemberLifetimeAndRunTaskAnalyzeClean) {
  const AnalyzeRun r = analyze(fixture("a4_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------- family D

TEST(Analyze, D1BadFlagsWallClockDirectPropagatedAndCrossFunction) {
  const AnalyzeRun r = analyze(fixture("d1_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("d1_bad.cpp:20: [D1]")) << r.output;  // clock -> schedule
  EXPECT_TRUE(r.contains("d1_bad.cpp:26: [D1]")) << r.output;  // via tainted local
  EXPECT_TRUE(r.contains("d1_bad.cpp:30: [D1]")) << r.output;  // via jitter_ms() return
  EXPECT_TRUE(r.contains("d1_bad.cpp:34: [D1] wall-clock/entropy value reaches 'record'"))
      << r.output;
  EXPECT_EQ(r.count("[D1]"), 4) << r.output;
}

TEST(Analyze, D1GoodVirtualClockAndSeededRngAnalyzeClean) {
  const AnalyzeRun r = analyze(fixture("d1_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Analyze, D2BadFlagsPointerIdentityIntoStateMetricsAndSchedule) {
  const AnalyzeRun r = analyze(fixture("d2_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("d2_bad.cpp:18: [D2] pointer-identity value reaches 'push_back'"))
      << r.output;
  EXPECT_TRUE(r.contains("d2_bad.cpp:23: [D2] pointer-identity value reaches 'record'"))
      << r.output;
  EXPECT_TRUE(r.contains("d2_bad.cpp:28: [D2] pointer-identity value reaches 'schedule'"))
      << r.output;
  EXPECT_EQ(r.count("[D2]"), 3) << r.output;
}

TEST(Analyze, D2GoodStableIdsAndValueHashesAnalyzeClean) {
  const AnalyzeRun r = analyze(fixture("d2_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Analyze, D3BadFlagsOrderSensitiveBodiesOverUnorderedContainers) {
  const AnalyzeRun r = analyze(fixture("d3_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("d3_bad.cpp:16: [D3]")) << r.output;  // push_back
  EXPECT_TRUE(r.contains("d3_bad.cpp:22: [D3]")) << r.output;  // co_await
  EXPECT_TRUE(r.contains("d3_bad.cpp:28: [D3]")) << r.output;  // record
  EXPECT_EQ(r.count("[D3]"), 3) << r.output;
}

TEST(Analyze, D3GoodCommutativeSortedViewAndOrderedMapAnalyzeClean) {
  const AnalyzeRun r = analyze(fixture("d3_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ------------------------------------------------- suppression & filtering

TEST(Analyze, SuppressionCoversInlineAndCommentLineAboveOnly) {
  const AnalyzeRun r = analyze(fixture("suppress.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("suppress.cpp:25: [D1]")) << r.output;
  EXPECT_EQ(r.count("[D1]"), 1) << r.output;  // the two allow()ed sites stay quiet
}

TEST(Analyze, RulesFilterRestrictsToSelectedRules) {
  // d1_bad has only D1 findings, so asking for A1 alone must come up empty.
  const AnalyzeRun none = analyze("--rules=A1 " + fixture("d1_bad.cpp"));
  EXPECT_EQ(none.exit_code, 0) << none.output;
  const AnalyzeRun d1 = analyze("--rules=D1 " + fixture("d1_bad.cpp"));
  EXPECT_EQ(d1.exit_code, 1) << d1.output;
  EXPECT_EQ(d1.count("[D1]"), 4) << d1.output;
}

TEST(Analyze, UnreadablePathIsAUsageError) {
  const AnalyzeRun r = analyze(fixture("does_not_exist.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// ------------------------------------------------------- baseline workflow

TEST(Analyze, WriteBaselineThenRecheckAcceptsKnownFindings) {
  const std::string base = temp_path("analyze_baseline_roundtrip.json");
  const AnalyzeRun wrote = analyze("--write-baseline=" + base + " " + fixture("d1_bad.cpp"));
  EXPECT_EQ(wrote.exit_code, 0) << wrote.output;
  EXPECT_TRUE(wrote.contains("wrote 4 finding(s)")) << wrote.output;

  const AnalyzeRun check = analyze("--baseline=" + base + " " + fixture("d1_bad.cpp"));
  EXPECT_EQ(check.exit_code, 0) << check.output;
  EXPECT_TRUE(check.contains("4 finding(s) (4 baselined, 0 new)")) << check.output;
  std::remove(base.c_str());  // c4h-lint: allow(R4) — C stdlib remove, returns int
}

TEST(Analyze, NewFindingOnTopOfBaselineStillFails) {
  // Baseline covers d1_bad only; adding d2_bad to the run surfaces its three
  // findings as new and the analyzer must fail.
  const std::string base = temp_path("analyze_baseline_partial.json");
  const AnalyzeRun wrote = analyze("--write-baseline=" + base + " " + fixture("d1_bad.cpp"));
  ASSERT_EQ(wrote.exit_code, 0) << wrote.output;

  const AnalyzeRun r =
      analyze("--baseline=" + base + " " + fixture("d1_bad.cpp") + " " + fixture("d2_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("7 finding(s) (4 baselined, 3 new)")) << r.output;
  EXPECT_EQ(r.count("[D2]"), 3) << r.output;
  EXPECT_EQ(r.count("[D1]"), 0) << r.output;  // baselined findings stay quiet
  std::remove(base.c_str());  // c4h-lint: allow(R4) — C stdlib remove, returns int
}

TEST(Analyze, StaleBaselineEntryWarnsButDoesNotFail) {
  // Baseline written against d1_bad, then run against the clean d1_good:
  // every entry is stale — warn loudly, exit zero.
  const std::string base = temp_path("analyze_baseline_stale.json");
  const AnalyzeRun wrote = analyze("--write-baseline=" + base + " " + fixture("d1_bad.cpp"));
  ASSERT_EQ(wrote.exit_code, 0) << wrote.output;

  const AnalyzeRun r = analyze("--baseline=" + base + " " + fixture("d1_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.count("warning: stale baseline entry"), 4) << r.output;
  std::remove(base.c_str());  // c4h-lint: allow(R4) — C stdlib remove, returns int
}

TEST(Analyze, MalformedBaselineIsAnIoError) {
  const std::string base = temp_path("analyze_baseline_malformed.json");
  std::ofstream(base) << "{ not json";
  const AnalyzeRun r = analyze("--baseline=" + base + " " + fixture("d1_good.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  std::remove(base.c_str());  // c4h-lint: allow(R4) — C stdlib remove, returns int
}

// ------------------------------------------------------------ tree hygiene

TEST(Analyze, SourceTreeAnalyzesCleanAgainstCheckedInBaseline) {
  // The contract this PR establishes: the full tree carries no findings
  // beyond the checked-in baseline. CI enforces the same invariant.
  const std::string root(C4H_SOURCE_DIR);
  const AnalyzeRun r =
      analyze("--baseline=" + root + "/tools/c4h-analyze/baseline.json " + root + "/src " +
              root + "/tests " + root + "/bench " + root + "/examples");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.contains("0 new)")) << r.output;
}
