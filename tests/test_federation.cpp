// Collaborating Cloud4Home systems (§VII future work (v)): the shared
// Neighborhood world, per-home isolation, the cross-home directory, and
// home-to-home transfers over both access networks.
#include <gtest/gtest.h>

#include "src/federation/federation.hpp"

namespace c4h::federation {
namespace {

using sim::Task;
using vstore::HomeCloud;
using vstore::HomeCloudConfig;
using vstore::Neighborhood;
using vstore::ObjectMeta;

struct Rig {
  Neighborhood hood;
  std::unique_ptr<HomeCloud> alpha;
  std::unique_ptr<HomeCloud> beta;
  Federation fed{hood};

  Rig() {
    alpha = std::make_unique<HomeCloud>(hood, make_cfg("alpha"));
    beta = std::make_unique<HomeCloud>(hood, make_cfg("beta"));
    alpha->bootstrap();
    beta->bootstrap();
  }

  static HomeCloudConfig make_cfg(const std::string& name) {
    HomeCloudConfig cfg;
    cfg.home_name = name;
    cfg.netbooks = 2;
    cfg.start_monitors = false;
    cfg.wan_rate_jitter = 0.0;
    cfg.wan_latency_jitter = 0.0;
    return cfg;
  }

  Task<> store_in(HomeCloud& home, const std::string& name, Bytes size,
                  bool to_cloud = false) {
    ObjectMeta m;
    m.name = name;
    m.type = "jpg";
    m.size = size;
    (void)co_await home.node(0).create_object(m);
    vstore::StoreOptions opts;
    if (to_cloud) opts.policy.fallback = vstore::StoreTarget::remote_cloud;
    auto s = co_await home.node(0).store_object(name, opts);
    EXPECT_TRUE(s.ok());
  }
};

TEST(Neighborhood, HomesShareOneClockAndNetwork) {
  Rig rig;
  EXPECT_EQ(&rig.alpha->sim(), &rig.beta->sim());
  EXPECT_EQ(&rig.alpha->network(), &rig.beta->network());
  EXPECT_EQ(&rig.alpha->s3(), &rig.beta->s3());
  EXPECT_EQ(rig.hood.homes().size(), 2u);
}

TEST(Neighborhood, HomesHaveIsolatedMetadata) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "private/tax.pdf", 1_MB);
    // Home beta's DHT knows nothing about alpha's objects.
    auto res = co_await r.beta->node(0).fetch_object("private/tax.pdf");
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.code(), Errc::not_found);
    // Alpha itself sees it fine.
    auto mine = co_await r.alpha->node(1).fetch_object("private/tax.pdf");
    EXPECT_TRUE(mine.ok());
  }(rig));
}

TEST(Federation, PublishThenCrossHomeFetch) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "shared/clip.jpg", 2_MB);
    auto pub = co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/clip.jpg");
    EXPECT_TRUE(pub.ok());
    EXPECT_EQ(r.fed.directory_size(), 1u);

    auto got = co_await r.fed.fetch(*r.beta, r.beta->node(1), "shared/clip.jpg");
    EXPECT_TRUE(got.ok());
    if (!got.ok()) co_return;
    EXPECT_EQ(got->size, 2_MB);
    EXPECT_EQ(got->source_home, "alpha");
    EXPECT_FALSE(got->local_home);
    EXPECT_FALSE(got->from_shared_cloud);
    // Crossed two access networks: seconds, not LAN-milliseconds.
    EXPECT_GT(to_seconds(got->transfer), 1.0);
    EXPECT_GT(got->directory_lookup, Duration::zero());
  }(rig));
  EXPECT_EQ(rig.fed.stats().cross_home_fetches, 1u);
}

TEST(Federation, FetchOwnHomeUsesLocalPath) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "shared/own.jpg", 1_MB);
    (void)co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/own.jpg");
    auto got = co_await r.fed.fetch(*r.alpha, r.alpha->node(1), "shared/own.jpg");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_TRUE(got->local_home);
      EXPECT_LT(to_seconds(got->transfer), 1.0);  // stayed on the LAN
    }
  }(rig));
}

TEST(Federation, CloudResidentObjectServedFromS3) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "shared/incloud.jpg", 2_MB, /*to_cloud=*/true);
    (void)co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/incloud.jpg");
    auto got = co_await r.fed.fetch(*r.beta, r.beta->node(0), "shared/incloud.jpg");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_TRUE(got->from_shared_cloud);
    }
  }(rig));
  EXPECT_EQ(rig.fed.stats().cloud_served, 1u);
  EXPECT_EQ(rig.fed.stats().cross_home_fetches, 0u);
}

TEST(Federation, UnpublishedObjectNotFound) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "hidden.jpg", 1_MB);
    auto got = co_await r.fed.fetch(*r.beta, r.beta->node(0), "hidden.jpg");
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code(), Errc::not_found);
  }(rig));
}

TEST(Federation, WithdrawRemovesAndGuardsOwnership) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "shared/tmp.jpg", 1_MB);
    (void)co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/tmp.jpg");

    // Beta may not withdraw alpha's share.
    auto steal = co_await r.fed.withdraw(*r.beta, r.beta->node(0), "shared/tmp.jpg");
    EXPECT_FALSE(steal.ok());
    EXPECT_EQ(steal.code(), Errc::permission_denied);

    auto mine = co_await r.fed.withdraw(*r.alpha, r.alpha->node(0), "shared/tmp.jpg");
    EXPECT_TRUE(mine.ok());
    EXPECT_EQ(r.fed.directory_size(), 0u);
    auto gone = co_await r.fed.fetch(*r.beta, r.beta->node(0), "shared/tmp.jpg");
    EXPECT_FALSE(gone.ok());
  }(rig));
}

TEST(Federation, SourceNodeOfflineIsUnavailable) {
  Rig rig;
  rig.hood.run([](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "shared/fragile.jpg", 1_MB);
    (void)co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/fragile.jpg");
    r.alpha->node(0).host().set_online(false);
    auto got = co_await r.fed.fetch(*r.beta, r.beta->node(0), "shared/fragile.jpg");
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code(), Errc::unavailable);
  }(rig));
}

TEST(Federation, CrossHomeTransfersContendOnAccessLinks) {
  // Two concurrent cross-home fetches from the same source home must share
  // its single uplink. Objects are large enough that most bytes move in the
  // post-slow-start phase, where the two flows genuinely contend.
  Rig rig;
  double solo = 0, shared_a = 0, shared_b = 0;
  rig.hood.run([&](Rig& r) -> Task<> {
    co_await r.store_in(*r.alpha, "shared/a.bin", 16_MB);
    co_await r.store_in(*r.alpha, "shared/b.bin", 16_MB);
    (void)co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/a.bin");
    (void)co_await r.fed.publish(*r.alpha, r.alpha->node(0), "shared/b.bin");

    auto g0 = co_await r.fed.fetch(*r.beta, r.beta->node(0), "shared/a.bin");
    if (g0.ok()) solo = to_seconds(g0->transfer);

    std::vector<Task<>> both;
    both.push_back([](Rig& rr, double& out) -> Task<> {
      auto g = co_await rr.fed.fetch(*rr.beta, rr.beta->node(0), "shared/a.bin");
      if (g.ok()) out = to_seconds(g->transfer);
    }(r, shared_a));
    both.push_back([](Rig& rr, double& out) -> Task<> {
      auto g = co_await rr.fed.fetch(*rr.beta, rr.beta->node(1), "shared/b.bin");
      if (g.ok()) out = to_seconds(g->transfer);
    }(r, shared_b));
    co_await sim::when_all(r.hood.sim(), std::move(both));
  }(rig));
  ASSERT_GT(solo, 0.0);
  EXPECT_GT(shared_a, solo * 1.4);
  EXPECT_GT(shared_b, solo * 1.4);
}

TEST(Neighborhood, ManyHomesBootstrapCleanly) {
  Neighborhood hood;
  std::vector<std::unique_ptr<HomeCloud>> homes;
  for (int i = 0; i < 4; ++i) {
    HomeCloudConfig cfg = Rig::make_cfg("home-" + std::to_string(i));
    homes.push_back(std::make_unique<HomeCloud>(hood, cfg));
  }
  for (auto& h : homes) h->bootstrap();
  for (auto& h : homes) {
    EXPECT_EQ(h->node_count(), 3u);
    EXPECT_EQ(&h->sim(), &hood.sim());
  }
}

}  // namespace
}  // namespace c4h::federation
