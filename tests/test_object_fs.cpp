// Simulated per-node object file system: bins, capacity accounting,
// overwrite semantics, timing model.
#include <gtest/gtest.h>

#include "src/vstore/object_fs.hpp"

namespace c4h::vstore {
namespace {

using sim::Simulation;
using sim::Task;

template <typename Fn>
void run(Simulation& sim, Fn&& fn) {
  sim.run_task(fn());
}

TEST(ObjectFs, WriteReadRoundTrip) {
  Simulation sim;
  ObjectFs fs{sim};
  run(sim, [&]() -> Task<> {
    auto w = co_await fs.write("a.jpg", 2_MB, Bin::mandatory);
    EXPECT_TRUE(w.ok());
    EXPECT_TRUE(fs.contains("a.jpg"));
    EXPECT_EQ(fs.size_of("a.jpg"), 2_MB);
    auto r = co_await fs.read("a.jpg");
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(*r, 2_MB);
    }
  });
}

TEST(ObjectFs, RemoveDuringTransferDoesNotDisturbInFlightRead) {
  // Regression: read() dereferenced its files_ iterator after the transfer
  // delay; a remove (or table-rehashing write) landing inside the delay left
  // it dangling. The size is now copied before suspending, so the in-flight
  // read completes with the size it started with.
  Simulation sim;
  ObjectFs fs{sim};
  run(sim, [&]() -> Task<> {
    auto w = co_await fs.write("victim.bin", 4_MB, Bin::mandatory);
    EXPECT_TRUE(w.ok());
    // Erase the entry and churn the table while the read is mid-transfer.
    sim.schedule(milliseconds(1), [&fs] {
      EXPECT_TRUE(fs.remove("victim.bin").ok());
    });
    sim.spawn([](ObjectFs& f) -> Task<> {
      for (int i = 0; i < 64; ++i) {
        (void)co_await f.write("churn-" + std::to_string(i), 1_KB, Bin::voluntary);
      }
    }(fs));
    auto r = co_await fs.read("victim.bin");
    EXPECT_TRUE(r.ok());
    if (r.ok()) EXPECT_EQ(*r, 4_MB);
    EXPECT_FALSE(fs.contains("victim.bin"));
  });
}

TEST(ObjectFs, ReadMissingFileFails) {
  Simulation sim;
  ObjectFs fs{sim};
  run(sim, [&]() -> Task<> {
    auto r = co_await fs.read("ghost");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::not_found);
  });
}

TEST(ObjectFs, BinsAccountSeparately) {
  Simulation sim;
  ObjectFsConfig cfg;
  cfg.mandatory_capacity = 10_MB;
  cfg.voluntary_capacity = 5_MB;
  ObjectFs fs{sim, cfg};
  run(sim, [&]() -> Task<> {
    (void)co_await fs.write("m.bin", 4_MB, Bin::mandatory);
    (void)co_await fs.write("v.bin", 2_MB, Bin::voluntary);
    EXPECT_EQ(fs.mandatory_used(), 4_MB);
    EXPECT_EQ(fs.voluntary_used(), 2_MB);
    EXPECT_EQ(fs.mandatory_free(), 6_MB);
    EXPECT_EQ(fs.voluntary_free(), 3_MB);
    EXPECT_EQ(fs.file_count(), 2u);
  });
}

TEST(ObjectFs, FullBinRejectsWrite) {
  Simulation sim;
  ObjectFsConfig cfg;
  cfg.mandatory_capacity = 3_MB;
  ObjectFs fs{sim, cfg};
  run(sim, [&]() -> Task<> {
    auto ok = co_await fs.write("fits.bin", 3_MB, Bin::mandatory);
    EXPECT_TRUE(ok.ok());
    auto full = co_await fs.write("nope.bin", 1_MB, Bin::mandatory);
    EXPECT_FALSE(full.ok());
    EXPECT_EQ(full.code(), Errc::no_capacity);
    EXPECT_FALSE(fs.contains("nope.bin"));
  });
}

TEST(ObjectFs, OverwriteReleasesOldSpaceFirst) {
  Simulation sim;
  ObjectFsConfig cfg;
  cfg.mandatory_capacity = 10_MB;
  ObjectFs fs{sim, cfg};
  run(sim, [&]() -> Task<> {
    (void)co_await fs.write("x.bin", 8_MB, Bin::mandatory);
    // 8 MB held; a 9 MB overwrite of the same file must succeed because the
    // old file's space returns to the pool first.
    auto ow = co_await fs.write("x.bin", 9_MB, Bin::mandatory);
    EXPECT_TRUE(ow.ok());
    EXPECT_EQ(fs.size_of("x.bin"), 9_MB);
    EXPECT_EQ(fs.mandatory_used(), 9_MB);
    EXPECT_EQ(fs.file_count(), 1u);
  });
}

TEST(ObjectFs, OverwriteCanMoveBetweenBins) {
  Simulation sim;
  ObjectFs fs{sim};
  run(sim, [&]() -> Task<> {
    (void)co_await fs.write("y.bin", 1_MB, Bin::mandatory);
    (void)co_await fs.write("y.bin", 1_MB, Bin::voluntary);
    EXPECT_EQ(fs.mandatory_used(), 0u);
    EXPECT_EQ(fs.voluntary_used(), 1_MB);
  });
}

TEST(ObjectFs, RemoveFreesSpace) {
  Simulation sim;
  ObjectFs fs{sim};
  run(sim, [&]() -> Task<> {
    (void)co_await fs.write("z.bin", 5_MB, Bin::voluntary);
    EXPECT_TRUE(fs.remove("z.bin").ok());
    EXPECT_EQ(fs.voluntary_used(), 0u);
    EXPECT_FALSE(fs.contains("z.bin"));
    EXPECT_FALSE(fs.remove("z.bin").ok());
  });
}

TEST(ObjectFs, TimingFollowsDiskModel) {
  Simulation sim;
  ObjectFsConfig cfg;
  cfg.write_rate = mib_per_sec(50.0);
  cfg.read_rate = mib_per_sec(100.0);
  cfg.seek = milliseconds(4);
  ObjectFs fs{sim, cfg};
  run(sim, [&]() -> Task<> {
    const auto t0 = sim.now();
    (void)co_await fs.write("t.bin", 50_MB, Bin::mandatory);
    const double write_s = to_seconds(sim.now() - t0);
    EXPECT_NEAR(write_s, 1.004, 0.01);  // 50 MB / 50 MiB/s + 4 ms seek

    const auto t1 = sim.now();
    (void)co_await fs.read("t.bin");
    const double read_s = to_seconds(sim.now() - t1);
    EXPECT_NEAR(read_s, 0.504, 0.01);
  });
}

TEST(ObjectFs, WatcherValuesFeedTheMonitor) {
  // Free-space queries are O(1) counters — they must be consistent after an
  // arbitrary op sequence (property check against a reference model).
  Simulation sim;
  ObjectFsConfig cfg;
  cfg.mandatory_capacity = 100_MB;
  cfg.voluntary_capacity = 100_MB;
  ObjectFs fs{sim, cfg};
  Rng rng{5};
  run(sim, [&]() -> Task<> {
    std::unordered_map<std::string, std::pair<Bytes, Bin>> ref;
    for (int i = 0; i < 200; ++i) {
      const std::string name = "f" + std::to_string(rng.below(30));
      if (rng.chance(0.7)) {
        const Bytes size = (1 + rng.below(5)) * 1_MB;
        const Bin bin = rng.chance(0.5) ? Bin::mandatory : Bin::voluntary;
        auto w = co_await fs.write(name, size, bin);
        if (w.ok()) ref[name] = {size, bin};
      } else {
        const bool existed = ref.erase(name) > 0;
        EXPECT_EQ(fs.remove(name).ok(), existed);
      }
    }
    Bytes want_m = 0, want_v = 0;
    // c4h-lint: allow(R3) — integer sums; accumulation order is irrelevant.
    for (const auto& [n, sv] : ref) {
      (sv.second == Bin::mandatory ? want_m : want_v) += sv.first;
    }
    EXPECT_EQ(fs.mandatory_used(), want_m);
    EXPECT_EQ(fs.voluntary_used(), want_v);
    EXPECT_EQ(fs.file_count(), ref.size());
  });
}

}  // namespace
}  // namespace c4h::vstore
