// eDonkey-style workload generator: statistical properties of the modified
// dataset (§V-A).
#include <gtest/gtest.h>

#include <set>

#include "src/trace/edonkey.hpp"

namespace c4h::trace {
namespace {

TEST(Trace, GeneratesRequestedCounts) {
  TraceConfig cfg;
  cfg.file_count = 1300;
  cfg.op_count = 2000;
  const auto w = generate(cfg);
  EXPECT_EQ(w.files.size(), 1300u);
  EXPECT_EQ(w.ops.size(), 2000u);
}

TEST(Trace, StoreFetchMixNearConfigured) {
  TraceConfig cfg;
  cfg.op_count = 5000;
  cfg.store_fraction = 0.6;
  const auto w = generate(cfg);
  const double stores = static_cast<double>(w.count(OpKind::store));
  EXPECT_NEAR(stores / static_cast<double>(w.ops.size()), 0.6, 0.05);
}

TEST(Trace, FetchNeverPrecedesStore) {
  TraceConfig cfg;
  cfg.op_count = 3000;
  const auto w = generate(cfg);
  std::set<std::size_t> stored;
  for (const auto& op : w.ops) {
    if (op.kind == OpKind::store) {
      stored.insert(op.file);
    } else {
      EXPECT_TRUE(stored.contains(op.file)) << "fetch of never-stored file";
    }
  }
}

TEST(Trace, ClientsSpreadAcrossConfiguredCount) {
  TraceConfig cfg;
  cfg.clients = 6;
  cfg.op_count = 3000;
  const auto w = generate(cfg);
  std::set<int> clients;
  for (const auto& op : w.ops) {
    EXPECT_GE(op.client, 0);
    EXPECT_LT(op.client, 6);
    clients.insert(op.client);
  }
  EXPECT_EQ(clients.size(), 6u);
}

TEST(Trace, SizesRespectBuckets) {
  const auto w = generate({});
  for (const auto& f : w.files) {
    EXPECT_GE(f.size, 1_MB);
    EXPECT_LE(f.size, 100_MB);
  }
}

TEST(Trace, FixedRangeRestrictsSizes) {
  TraceConfig cfg;
  cfg.fixed_range = BucketRange{10_MB, 25_MB};  // §V-B's "optimal" sizes
  const auto w = generate(cfg);
  for (const auto& f : w.files) {
    EXPECT_GE(f.size, 10_MB);
    EXPECT_LE(f.size, 25_MB);
  }
}

TEST(Trace, Mp3FractionNearConfigured) {
  TraceConfig cfg;
  cfg.file_count = 4000;
  cfg.p_mp3 = 0.4;
  const auto w = generate(cfg);
  int mp3 = 0;
  for (const auto& f : w.files) mp3 += f.is_private();
  EXPECT_NEAR(static_cast<double>(mp3) / 4000.0, 0.4, 0.04);
}

TEST(Trace, DeterministicForSeed) {
  TraceConfig cfg;
  cfg.seed = 99;
  const auto a = generate(cfg);
  const auto b = generate(cfg);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].size, b.files[i].size);
    EXPECT_EQ(a.files[i].name, b.files[i].name);
  }
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].file, b.ops[i].file);
    EXPECT_EQ(static_cast<int>(a.ops[i].kind), static_cast<int>(b.ops[i].kind));
  }
}

TEST(Trace, RepeatAccessesAreSkewed) {
  TraceConfig cfg;
  cfg.file_count = 200;
  cfg.op_count = 8000;
  cfg.store_fraction = 0.1;  // mostly fetches → many repeats
  cfg.zipf_s = 1.0;
  const auto w = generate(cfg);
  std::vector<int> hits(cfg.file_count, 0);
  for (const auto& op : w.ops) {
    if (op.kind == OpKind::fetch) ++hits[op.file];
  }
  // Head files should see far more traffic than tail files.
  int head = 0, tail = 0;
  for (std::size_t i = 0; i < 10; ++i) head += hits[i];
  for (std::size_t i = 100; i < 110; ++i) tail += hits[i];
  EXPECT_GT(head, tail * 3);
}

TEST(Trace, BucketClassification) {
  EXPECT_EQ(bucket_of(5_MB), SizeBucket::small);
  EXPECT_EQ(bucket_of(15_MB), SizeBucket::medium);
  EXPECT_EQ(bucket_of(30_MB), SizeBucket::large);
  EXPECT_EQ(bucket_of(80_MB), SizeBucket::super_large);
}

}  // namespace
}  // namespace c4h::trace
