// Discrete-event engine: ordering, determinism, cancellation, coroutine
// tasks, events, channels, when_all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/simulation.hpp"
#include "src/sim/sync.hpp"

namespace c4h::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulation, EqualTimestampsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId ev = sim.schedule(milliseconds(10), [&] { ran = true; });
  EXPECT_TRUE(sim.pending(ev));
  sim.cancel(ev);
  EXPECT_FALSE(sim.pending(ev));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, RunUntilAdvancesClockExactly) {
  Simulation sim;
  int count = 0;
  sim.schedule(milliseconds(10), [&] { ++count; });
  sim.schedule(milliseconds(50), [&] { ++count; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, NestedSchedulingFromCallback) {
  Simulation sim;
  TimePoint second_ran{};
  sim.schedule(milliseconds(10), [&] {
    sim.schedule(milliseconds(5), [&] { second_ran = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second_ran, milliseconds(15));
}

Task<> simple_process(Simulation& sim, std::vector<std::string>& log) {
  log.push_back("start@" + std::to_string(sim.now().count()));
  co_await sim.delay(milliseconds(10));
  log.push_back("mid@" + std::to_string(sim.now().count()));
  co_await sim.delay(milliseconds(5));
  log.push_back("end@" + std::to_string(sim.now().count()));
}

TEST(Coroutine, DelaysAdvanceSimulatedTime) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn(simple_process(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "start@0");
  EXPECT_EQ(log[1], "mid@" + std::to_string(milliseconds(10).count()));
  EXPECT_EQ(log[2], "end@" + std::to_string(milliseconds(15).count()));
}

Task<int> child_returning(Simulation& sim) {
  co_await sim.delay(milliseconds(1));
  co_return 42;
}

Task<> parent_awaits_child(Simulation& sim, int& out) {
  out = co_await child_returning(sim);
}

TEST(Coroutine, AwaitedChildReturnsValue) {
  Simulation sim;
  int out = 0;
  sim.spawn(parent_awaits_child(sim, out));
  sim.run();
  EXPECT_EQ(out, 42);
}

Task<> thrower(Simulation& sim) {
  co_await sim.delay(milliseconds(1));
  throw std::runtime_error("boom");
}

Task<> catcher(Simulation& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Coroutine, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catcher(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task<> deep_chain(Simulation& sim, int depth, int& leaf_count) {
  if (depth == 0) {
    ++leaf_count;
    co_return;
  }
  co_await deep_chain(sim, depth - 1, leaf_count);
}

TEST(Coroutine, DeepAwaitChainDoesNotOverflowStack) {
  Simulation sim;
  int leaves = 0;
  sim.spawn(deep_chain(sim, 50000, leaves));
  sim.run();
  EXPECT_EQ(leaves, 1);
}

Task<> waiter(Event& ev, Simulation& sim, std::vector<TimePoint>& times) {
  co_await ev.wait();
  times.push_back(sim.now());
}

Task<> firer(Event& ev, Simulation& sim) {
  co_await sim.delay(milliseconds(25));
  ev.fire();
}

TEST(Event, BroadcastWakesAllWaitersAtFireTime) {
  Simulation sim;
  Event ev{sim};
  std::vector<TimePoint> times;
  sim.spawn(waiter(ev, sim, times));
  sim.spawn(waiter(ev, sim, times));
  sim.spawn(firer(ev, sim));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], milliseconds(25));
  EXPECT_EQ(times[1], milliseconds(25));
}

TEST(Event, WaitAfterFireIsImmediate) {
  Simulation sim;
  Event ev{sim};
  ev.fire();
  std::vector<TimePoint> times;
  sim.spawn(waiter(ev, sim, times));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], TimePoint{0});
}

Task<> producer(Channel<int>& ch, Simulation& sim, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(milliseconds(10));
    ch.push(i);
  }
}

Task<> consumer(Channel<int>& ch, std::vector<int>& got, int n) {
  for (int i = 0; i < n; ++i) {
    got.push_back(co_await ch.pop());
  }
}

TEST(Channel, FifoDelivery) {
  Simulation sim;
  Channel<int> ch{sim};
  std::vector<int> got;
  sim.spawn(consumer(ch, got, 5));
  sim.spawn(producer(ch, sim, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, PopBeforePushSuspends) {
  Simulation sim;
  Channel<std::string> ch{sim};
  std::string got;
  sim.spawn([](Channel<std::string>& c, std::string& out) -> Task<> {
    out = co_await c.pop();
  }(ch, got));
  sim.run_until(milliseconds(5));
  EXPECT_TRUE(got.empty());
  ch.push("late");
  sim.run();
  EXPECT_EQ(got, "late");
}

Task<> sleep_for(Simulation& sim, Duration d, int& done) {
  co_await sim.delay(d);
  ++done;
}

TEST(WhenAll, CompletesAtSlowestTask) {
  Simulation sim;
  int done = 0;
  TimePoint all_done{};
  sim.spawn([](Simulation& s, int& d, TimePoint& t) -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(sleep_for(s, milliseconds(10), d));
    tasks.push_back(sleep_for(s, milliseconds(30), d));
    tasks.push_back(sleep_for(s, milliseconds(20), d));
    co_await when_all(s, std::move(tasks));
    t = s.now();
  }(sim, done, all_done));
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(all_done, milliseconds(30));
}

TEST(WhenAll, EmptyVectorCompletesImmediately) {
  Simulation sim;
  bool finished = false;
  sim.spawn([](Simulation& s, bool& f) -> Task<> {
    co_await when_all(s, {});
    f = true;
  }(sim, finished));
  sim.run();
  EXPECT_TRUE(finished);
}

TEST(Simulation, DestructorCleansUpSuspendedDetachedTasks) {
  // A detached task parked on an event that never fires must not leak; the
  // Simulation destructor destroys its frame (checked under ASan builds;
  // here we just verify no crash).
  auto sim = std::make_unique<Simulation>();
  Event ev{*sim};
  sim->spawn([](Event& e) -> Task<> { co_await e.wait(); }(ev));
  sim->run();
  sim.reset();
  SUCCEED();
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim{123};
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 100; ++i) {
      sim.schedule(milliseconds(static_cast<std::int64_t>(sim.rng().below(50))), [&trace, &sim] {
        trace.push_back(sim.now().count());
      });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace c4h::sim
