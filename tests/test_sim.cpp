// Discrete-event engine: ordering, determinism, cancellation, coroutine
// tasks, events, channels, when_all.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulation.hpp"
#include "src/sim/sync.hpp"

namespace c4h::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulation, EqualTimestampsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId ev = sim.schedule(milliseconds(10), [&] { ran = true; });
  EXPECT_TRUE(sim.pending(ev));
  sim.cancel(ev);
  EXPECT_FALSE(sim.pending(ev));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, RunUntilAdvancesClockExactly) {
  Simulation sim;
  int count = 0;
  sim.schedule(milliseconds(10), [&] { ++count; });
  sim.schedule(milliseconds(50), [&] { ++count; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, NestedSchedulingFromCallback) {
  Simulation sim;
  TimePoint second_ran{};
  sim.schedule(milliseconds(10), [&] {
    sim.schedule(milliseconds(5), [&] { second_ran = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second_ran, milliseconds(15));
}

Task<> simple_process(Simulation& sim, std::vector<std::string>& log) {
  log.push_back("start@" + std::to_string(sim.now().count()));
  co_await sim.delay(milliseconds(10));
  log.push_back("mid@" + std::to_string(sim.now().count()));
  co_await sim.delay(milliseconds(5));
  log.push_back("end@" + std::to_string(sim.now().count()));
}

TEST(Coroutine, DelaysAdvanceSimulatedTime) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn(simple_process(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "start@0");
  EXPECT_EQ(log[1], "mid@" + std::to_string(milliseconds(10).count()));
  EXPECT_EQ(log[2], "end@" + std::to_string(milliseconds(15).count()));
}

Task<int> child_returning(Simulation& sim) {
  co_await sim.delay(milliseconds(1));
  co_return 42;
}

Task<> parent_awaits_child(Simulation& sim, int& out) {
  out = co_await child_returning(sim);
}

TEST(Coroutine, AwaitedChildReturnsValue) {
  Simulation sim;
  int out = 0;
  sim.spawn(parent_awaits_child(sim, out));
  sim.run();
  EXPECT_EQ(out, 42);
}

Task<> thrower(Simulation& sim) {
  co_await sim.delay(milliseconds(1));
  throw std::runtime_error("boom");
}

Task<> catcher(Simulation& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Coroutine, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.spawn(catcher(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Task<> deep_chain(Simulation& sim, int depth, int& leaf_count) {
  if (depth == 0) {
    ++leaf_count;
    co_return;
  }
  co_await deep_chain(sim, depth - 1, leaf_count);
}

TEST(Coroutine, DeepAwaitChainDoesNotOverflowStack) {
  Simulation sim;
  int leaves = 0;
  sim.spawn(deep_chain(sim, 50000, leaves));
  sim.run();
  EXPECT_EQ(leaves, 1);
}

Task<> waiter(Event& ev, Simulation& sim, std::vector<TimePoint>& times) {
  co_await ev.wait();
  times.push_back(sim.now());
}

Task<> firer(Event& ev, Simulation& sim) {
  co_await sim.delay(milliseconds(25));
  ev.fire();
}

TEST(Event, BroadcastWakesAllWaitersAtFireTime) {
  Simulation sim;
  Event ev{sim};
  std::vector<TimePoint> times;
  sim.spawn(waiter(ev, sim, times));
  sim.spawn(waiter(ev, sim, times));
  sim.spawn(firer(ev, sim));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], milliseconds(25));
  EXPECT_EQ(times[1], milliseconds(25));
}

TEST(Event, WaitAfterFireIsImmediate) {
  Simulation sim;
  Event ev{sim};
  ev.fire();
  std::vector<TimePoint> times;
  sim.spawn(waiter(ev, sim, times));
  sim.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], TimePoint{0});
}

Task<> producer(Channel<int>& ch, Simulation& sim, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(milliseconds(10));
    ch.push(i);
  }
}

Task<> consumer(Channel<int>& ch, std::vector<int>& got, int n) {
  for (int i = 0; i < n; ++i) {
    got.push_back(co_await ch.pop());
  }
}

TEST(Channel, FifoDelivery) {
  Simulation sim;
  Channel<int> ch{sim};
  std::vector<int> got;
  sim.spawn(consumer(ch, got, 5));
  sim.spawn(producer(ch, sim, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, PopBeforePushSuspends) {
  Simulation sim;
  Channel<std::string> ch{sim};
  std::string got;
  sim.spawn([](Channel<std::string>& c, std::string& out) -> Task<> {
    out = co_await c.pop();
  }(ch, got));
  sim.run_until(milliseconds(5));
  EXPECT_TRUE(got.empty());
  ch.push("late");
  sim.run();
  EXPECT_EQ(got, "late");
}

Task<> sleep_for(Simulation& sim, Duration d, int& done) {
  co_await sim.delay(d);
  ++done;
}

TEST(WhenAll, CompletesAtSlowestTask) {
  Simulation sim;
  int done = 0;
  TimePoint all_done{};
  sim.spawn([](Simulation& s, int& d, TimePoint& t) -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(sleep_for(s, milliseconds(10), d));
    tasks.push_back(sleep_for(s, milliseconds(30), d));
    tasks.push_back(sleep_for(s, milliseconds(20), d));
    co_await when_all(s, std::move(tasks));
    t = s.now();
  }(sim, done, all_done));
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(all_done, milliseconds(30));
}

TEST(WhenAll, EmptyVectorCompletesImmediately) {
  Simulation sim;
  bool finished = false;
  sim.spawn([](Simulation& s, bool& f) -> Task<> {
    co_await when_all(s, {});
    f = true;
  }(sim, finished));
  sim.run();
  EXPECT_TRUE(finished);
}

TEST(Simulation, DestructorCleansUpSuspendedDetachedTasks) {
  // A detached task parked on an event that never fires must not leak; the
  // Simulation destructor destroys its frame (checked under ASan builds;
  // here we just verify no crash).
  auto sim = std::make_unique<Simulation>();
  Event ev{*sim};
  sim->spawn([](Event& e) -> Task<> { co_await e.wait(); }(ev));
  sim->run();
  sim.reset();
  SUCCEED();
}

TEST(Simulation, RunTaskSurvivesTaskThatOutlivesTheCall) {
  // run_task's completion flag must be co-owned by the marker frame: when the
  // driven task parks on an event that never fires, the queue drains and
  // run_task returns with the frame still suspended. Completing the task
  // afterwards used to write through a reference into run_task's dead stack
  // frame; now it lands in shared state. (Fails under ASan on the old code.)
  Simulation sim;
  Event gate{sim};
  bool finished = false;
  sim.run_task([](Event& g, bool& fin) -> Task<> {
    co_await g.wait();
    fin = true;
  }(gate, finished));
  EXPECT_FALSE(finished);  // queue drained with the task still parked

  // Wake the parked frame well after run_task returned.
  sim.schedule(milliseconds(1), [&gate] { gate.fire(); });
  sim.run();
  EXPECT_TRUE(finished);

  // The simulation stays usable for a second, completing run_task.
  bool second = false;
  sim.run_task([](Simulation& s, bool& fin) -> Task<> {
    co_await s.delay(milliseconds(2));
    fin = true;
  }(sim, second));
  EXPECT_TRUE(second);
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim{123};
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 100; ++i) {
      sim.schedule(milliseconds(static_cast<std::int64_t>(sim.rng().below(50))), [&trace, &sim] {
        trace.push_back(sim.now().count());
      });
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- slab event arena (event_arena.hpp) ------------------------------------

TEST(EventArena, CancelHeavyChurnKeepsHeapBounded) {
  // The reschedule idiom of the network layer: every event cancels and
  // re-schedules its successor. Tombstone compaction must keep the heap
  // within a small constant factor of the live count, no matter how long
  // the churn runs.
  Simulation sim;
  std::vector<EventId> ids;
  for (int round = 0; round < 200; ++round) {
    for (const EventId id : ids) sim.cancel(id);
    ids.clear();
    for (int i = 0; i < 50; ++i) {
      ids.push_back(sim.schedule(milliseconds(10 + i), [] {}));
    }
    EXPECT_EQ(sim.pending_event_count(), 50u);
    // 50 live entries; compaction triggers once tombstones pass max(64,
    // heap/2), so the heap can never grow past ~(2*live + 64 + slack).
    EXPECT_LE(sim.event_queue_size(), 2 * 50 + 64 + 2) << "round " << round;
  }
  sim.run();
  EXPECT_EQ(sim.pending_event_count(), 0u);
  EXPECT_EQ(sim.event_queue_size(), 0u);
}

TEST(EventArena, StaleIdStaysStaleAfterSlotReuse) {
  // Generation tags: once an event fires or is cancelled its EventId must
  // never match again, even after the underlying slot is recycled by later
  // schedules.
  Simulation sim;
  int fired = 0;
  const EventId first = sim.schedule(milliseconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.pending(first));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.pending(first));

  // The arena reuses the freed slot for the next schedule; the stale id
  // must not alias the new tenant.
  const EventId second = sim.schedule(milliseconds(1), [&] { ++fired; });
  EXPECT_FALSE(sim.pending(first));
  sim.cancel(first);  // must be a no-op...
  EXPECT_TRUE(sim.pending(second));  // ...that does not evict the new tenant
  sim.run();
  EXPECT_EQ(fired, 2);

  // Cancelled ids behave the same way.
  const EventId third = sim.schedule(milliseconds(1), [&] { ++fired; });
  sim.cancel(third);
  EXPECT_FALSE(sim.pending(third));
  const EventId fourth = sim.schedule(milliseconds(2), [&] { ++fired; });
  sim.cancel(third);
  EXPECT_TRUE(sim.pending(fourth));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventArena, EqualTimestampFifoSurvivesChurn) {
  // FIFO at equal timestamps is the determinism contract; interleaved
  // cancellations must not disturb the order of the survivors.
  Simulation sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(sim.schedule(milliseconds(5), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 32; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  std::vector<int> want;
  for (int i = 1; i < 32; i += 2) want.push_back(i);
  EXPECT_EQ(order, want);
}

TEST(EventArena, LargeCapturesFallBackToHeapIntact) {
  // Captures beyond the inline small-buffer budget must round-trip through
  // the heap fallback unscathed (cancel must release them cleanly too).
  Simulation sim;
  std::array<std::uint64_t, 16> big{};  // 128 bytes: > EventArena::kInlineBytes
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = 0x1234u + i;
  std::uint64_t sum = 0;
  sim.schedule(milliseconds(1), [big, &sum] {
    for (const std::uint64_t v : big) sum += v;
  });
  const EventId doomed = sim.schedule(milliseconds(2), [big, &sum] { sum = 0; });
  sim.cancel(doomed);
  sim.run();
  std::uint64_t want = 0;
  for (const std::uint64_t v : big) want += v;
  EXPECT_EQ(sum, want);
}

TEST(EventArena, CallbackSchedulingDuringFireIsSafe) {
  // A firing callback that schedules more events can grow the arena's slot
  // table mid-invoke; the relocate-to-stack step must keep the running
  // callable valid. Chain deep enough to force several regrowths.
  Simulation sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 500) {
      for (int i = 0; i < 8; ++i) {
        const EventId extra = sim.schedule(milliseconds(1), [] {});
        sim.cancel(extra);
      }
      sim.schedule(milliseconds(1), [&] { hop(); });
    }
  };
  sim.schedule(milliseconds(1), [&] { hop(); });
  sim.run();
  EXPECT_EQ(hops, 500);
  EXPECT_EQ(sim.pending_event_count(), 0u);
}

TEST(EventArena, SlotGrowthRelocatesNonTriviallyMovableCaptures) {
  // Inline callables only promise nothrow move-construction, not trivial
  // relocatability. Growing the slot table must route the move through the
  // callable's move constructor (the ops relocate hook), not a byte copy —
  // a self-referential capture detects the difference.
  struct SelfRef {
    std::uint32_t value;
    SelfRef* self;
    explicit SelfRef(std::uint32_t v) : value(v), self(this) {}
    SelfRef(const SelfRef& o) : value(o.value), self(this) {}
    SelfRef(SelfRef&& o) noexcept : value(o.value), self(this) {}
    bool intact() const { return self == this; }
  };
  static_assert(sizeof(SelfRef) <= EventArena::kInlineBytes);

  Simulation sim;
  int fired = 0;
  int intact = 0;
  // Enough events to force several slots_ reallocations while all earlier
  // callables are still pending.
  for (std::uint32_t i = 0; i < 300; ++i) {
    sim.schedule(milliseconds(1 + static_cast<std::int64_t>(i)),
                 [sr = SelfRef{i}, &fired, &intact] {
                   ++fired;
                   if (sr.intact()) ++intact;
                 });
  }
  sim.run();
  EXPECT_EQ(fired, 300);
  EXPECT_EQ(intact, 300);
}

TEST(EventArena, EventsExecutedCounts) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(milliseconds(i), [] {});
  const EventId gone = sim.schedule(milliseconds(9), [] {});
  sim.cancel(gone);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);  // cancelled events never count
}

}  // namespace
}  // namespace c4h::sim
