// Network substrate: topology routing, fair-share solver, TCP phase model,
// and the event-driven flow engine (contention, phase boundaries, jitter).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/stats.hpp"
#include "src/net/fairshare.hpp"
#include "src/net/network.hpp"
#include "src/net/tcp_model.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/sync.hpp"

namespace c4h::net {
namespace {

using sim::Simulation;
using sim::Task;

// --- Topology ---

TEST(Topology, RouteThroughSwitch) {
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  const auto sw = t.add_node();
  t.add_duplex(a, sw, mbps(100), milliseconds(1));
  t.add_duplex(b, sw, mbps(100), milliseconds(1));
  const auto& path = t.route(a, b);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(t.link(path[0]).from.v, a.v);
  EXPECT_EQ(t.link(path[1]).to.v, b.v);
  EXPECT_EQ(t.path_latency(a, b), milliseconds(2));
}

TEST(Topology, PrefersLowerLatencyPath) {
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  const auto slow_mid = t.add_node();
  const auto fast_mid = t.add_node();
  t.add_duplex(a, slow_mid, mbps(100), milliseconds(10));
  t.add_duplex(slow_mid, b, mbps(100), milliseconds(10));
  t.add_duplex(a, fast_mid, mbps(100), milliseconds(1));
  t.add_duplex(fast_mid, b, mbps(100), milliseconds(1));
  EXPECT_EQ(t.path_latency(a, b), milliseconds(2));
}

TEST(Topology, NoRouteDetected) {
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  EXPECT_FALSE(t.has_route(a, b));
  EXPECT_TRUE(t.has_route(a, a));
}

// --- Fair-share solver ---

TEST(FairShare, EqualSplitOnSharedLink) {
  const std::vector<Rate> caps{100.0};
  std::vector<FairFlowDesc> flows{{{0}, 1e18}, {{0}, 1e18}};
  const auto r = max_min_fair_rates(caps, flows);
  EXPECT_NEAR(r[0], 50.0, 1e-6);
  EXPECT_NEAR(r[1], 50.0, 1e-6);
}

TEST(FairShare, CappedFlowReleasesBandwidth) {
  const std::vector<Rate> caps{100.0};
  std::vector<FairFlowDesc> flows{{{0}, 10.0}, {{0}, 1e18}};
  const auto r = max_min_fair_rates(caps, flows);
  EXPECT_NEAR(r[0], 10.0, 1e-6);
  EXPECT_NEAR(r[1], 90.0, 1e-6);
}

TEST(FairShare, MultiLinkBottleneck) {
  // Flow 0 goes over links 0+1, flow 1 over link 1 only; link 1 is thin.
  const std::vector<Rate> caps{100.0, 30.0};
  std::vector<FairFlowDesc> flows{{{0, 1}, 1e18}, {{1}, 1e18}};
  const auto r = max_min_fair_rates(caps, flows);
  EXPECT_NEAR(r[0], 15.0, 1e-6);
  EXPECT_NEAR(r[1], 15.0, 1e-6);
}

TEST(FairShare, IndependentLinksRunAtCapacity) {
  const std::vector<Rate> caps{100.0, 40.0};
  std::vector<FairFlowDesc> flows{{{0}, 1e18}, {{1}, 1e18}};
  const auto r = max_min_fair_rates(caps, flows);
  EXPECT_NEAR(r[0], 100.0, 1e-6);
  EXPECT_NEAR(r[1], 40.0, 1e-6);
}

TEST(FairShare, LoopbackGetsOwnCap) {
  const std::vector<Rate> caps{10.0};
  std::vector<FairFlowDesc> flows{{{}, 55.0}, {{0}, 1e18}};
  const auto r = max_min_fair_rates(caps, flows);
  EXPECT_NEAR(r[0], 55.0, 1e-6);
  EXPECT_NEAR(r[1], 10.0, 1e-6);
}

TEST(FairShare, ManyFlowsConserveCapacity) {
  const std::vector<Rate> caps{97.0};
  std::vector<FairFlowDesc> flows(13, FairFlowDesc{{0}, 1e18});
  const auto r = max_min_fair_rates(caps, flows);
  double sum = 0;
  for (const auto x : r) sum += x;
  EXPECT_NEAR(sum, 97.0, 1e-5);
  for (const auto x : r) EXPECT_NEAR(x, 97.0 / 13, 1e-6);
}

// --- TCP phase model ---

TEST(TcpModel, SteadyRateIsWindowOverRtt) {
  TcpProfile p;
  p.rtt = milliseconds(100);
  p.window_cap = 1638400;
  EXPECT_NEAR(p.steady_rate(), 16384000.0, 1.0);
}

TEST(TcpModel, PhasesInOrder) {
  TcpProfile p;
  p.rtt = milliseconds(100);
  p.window_cap = 1000000;  // steady = 10 MB/s
  p.slow_start_bytes = 500000;
  p.slow_start_fraction = 0.5;
  p.policing_burst = 2000000;
  p.policed_fraction = 0.25;

  EXPECT_NEAR(p.rate_cap(0), 5000000.0, 1.0);
  EXPECT_NEAR(p.rate_cap(499999), 5000000.0, 1.0);
  EXPECT_NEAR(p.rate_cap(500000), 10000000.0, 1.0);
  EXPECT_NEAR(p.rate_cap(1999999), 10000000.0, 1.0);
  EXPECT_NEAR(p.rate_cap(2000000), 2500000.0, 1.0);

  EXPECT_EQ(*p.next_phase_boundary(0), 500000u);
  EXPECT_EQ(*p.next_phase_boundary(500000), 2000000u);
  EXPECT_FALSE(p.next_phase_boundary(2000000).has_value());
}

TEST(TcpModel, EffectiveThroughputPeaksAtMidSizes) {
  // The Fig-5 mechanism: throughput(size) rises through slow-start
  // amortization, then falls once policing kicks in.
  TcpProfile p;
  p.rtt = milliseconds(60);
  p.window_cap = 160000;
  p.slow_start_bytes = 3_MB;
  p.slow_start_fraction = 0.45;
  p.policing_burst = 30_MB;
  p.policed_fraction = 0.55;

  auto tput = [&](Bytes size) {
    return static_cast<double>(size) / to_seconds(analytic_transfer_time(p, size, 1e18));
  };
  const double t_small = tput(1_MB);
  const double t_mid = tput(20_MB);
  const double t_large = tput(100_MB);
  EXPECT_LT(t_small, t_mid);
  EXPECT_GT(t_mid, t_large);
}

// --- Flow engine ---

struct HomePair {
  Topology topo;
  NetNodeId a, b, sw;
};

HomePair make_lan(Rate rate = mbps(100)) {
  HomePair hp;
  hp.a = hp.topo.add_node();
  hp.b = hp.topo.add_node();
  hp.sw = hp.topo.add_node();
  hp.topo.add_duplex(hp.a, hp.sw, rate, microseconds(100));
  hp.topo.add_duplex(hp.b, hp.sw, rate, microseconds(100));
  return hp;
}

Task<> timed_transfer(Network& net, Simulation& sim, NetNodeId s, NetNodeId d, Bytes size,
                      Duration& out, TcpProfile prof = {}) {
  const TimePoint t0 = sim.now();
  co_await net.transfer(s, d, size, prof);
  out = sim.now() - t0;
}

TEST(Network, SingleFlowRunsAtLinkRate) {
  Simulation sim;
  auto hp = make_lan(/*rate=*/10.0 * 1000 * 1000);  // 10 MB/s exactly
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());
  Duration took{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 10 * 1000 * 1000, took));
  sim.run();
  // 10 MB at 10 MB/s = 1 s plus sub-ms path latency.
  EXPECT_NEAR(to_seconds(took), 1.0, 0.01);
}

TEST(Network, TwoFlowsShareTheBottleneck) {
  Simulation sim;
  auto hp = make_lan(10.0 * 1000 * 1000);
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());
  Duration t1{}, t2{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 10 * 1000 * 1000, t1));
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 10 * 1000 * 1000, t2));
  sim.run();
  // Both flows share a→sw: each gets 5 MB/s → ~2 s.
  EXPECT_NEAR(to_seconds(t1), 2.0, 0.02);
  EXPECT_NEAR(to_seconds(t2), 2.0, 0.02);
}

TEST(Network, LateArrivalSlowsFirstFlow) {
  Simulation sim;
  auto hp = make_lan(10.0 * 1000 * 1000);
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());
  Duration t1{}, t2{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 10 * 1000 * 1000, t1));
  sim.spawn([](Simulation& s, Network& n, HomePair& h, Duration& out) -> Task<> {
    co_await s.delay(milliseconds(500));
    const TimePoint t0 = s.now();
    co_await n.transfer(h.a, h.b, 5 * 1000 * 1000, {});
    out = s.now() - t0;
  }(sim, net, hp, t2));
  sim.run();
  // Flow 1 alone for 0.5 s (5 MB done), then shares: remaining 5 MB at
  // 5 MB/s = 1 s → total 1.5 s. Flow 2: 5 MB at 5 MB/s = 1 s.
  EXPECT_NEAR(to_seconds(t1), 1.5, 0.02);
  EXPECT_NEAR(to_seconds(t2), 1.0, 0.02);
}

TEST(Network, OppositeDirectionsDoNotContend) {
  Simulation sim;
  auto hp = make_lan(10.0 * 1000 * 1000);
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());
  Duration t1{}, t2{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 10 * 1000 * 1000, t1));
  sim.spawn(timed_transfer(net, sim, hp.b, hp.a, 10 * 1000 * 1000, t2));
  sim.run();
  EXPECT_NEAR(to_seconds(t1), 1.0, 0.02);
  EXPECT_NEAR(to_seconds(t2), 1.0, 0.02);
}

TEST(Network, TcpPhaseBoundariesAreHonored) {
  Simulation sim;
  auto hp = make_lan(100.0 * 1000 * 1000);  // LAN far above TCP cap
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());

  TcpProfile p;
  p.rtt = milliseconds(100);
  p.window_cap = 100000;  // steady 1 MB/s
  p.slow_start_bytes = 1000000;
  p.slow_start_fraction = 0.5;
  p.policing_burst = 2000000;
  p.policed_fraction = 0.5;

  Duration took{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 3 * 1000 * 1000, took, p));
  sim.run();
  // 1 MB at 0.5 MB/s (2 s) + 1 MB at 1 MB/s (1 s) + 1 MB at 0.5 MB/s (2 s)
  // = 5 s + handshake/latency.
  EXPECT_NEAR(to_seconds(took), 5.0, 0.05);
}

TEST(Network, EventDrivenMatchesAnalyticModel) {
  Simulation sim;
  auto hp = make_lan(mbps(1000));
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());

  TcpProfile p;
  p.rtt = milliseconds(60);
  p.window_cap = 160000;
  p.slow_start_bytes = 3_MB;
  p.slow_start_fraction = 0.45;
  p.policing_burst = 30_MB;
  p.policed_fraction = 0.55;

  for (const Bytes size : {2_MB, 20_MB, 60_MB}) {
    Duration took{};
    sim.spawn(timed_transfer(net, sim, hp.a, hp.b, size, took, p));
    sim.run();
    const Duration analytic = analytic_transfer_time(p, size, mbps(1000));
    EXPECT_NEAR(to_seconds(took), to_seconds(analytic), to_seconds(analytic) * 0.02 + 0.001)
        << "size=" << size;
  }
}

TEST(Network, ZeroSizeTransferCompletes) {
  Simulation sim;
  auto hp = make_lan();
  Network net{sim, std::move(hp.topo)};
  Duration took{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 0, took));
  sim.run();
  EXPECT_LT(to_seconds(took), 0.01);
}

TEST(Network, LoopbackTransferIsCheap) {
  Simulation sim;
  auto hp = make_lan();
  Network net{sim, std::move(hp.topo)};
  Duration took{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.a, 100_MB, took));
  sim.run();
  EXPECT_LT(to_seconds(took), 0.01);
}

TEST(Network, MessageLatencyIncludesHops) {
  Simulation sim;
  auto hp = make_lan();
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(milliseconds(1));
  Duration took{};
  sim.spawn([](Simulation& s, Network& n, HomePair& h, Duration& out) -> Task<> {
    const TimePoint t0 = s.now();
    co_await n.send_message(h.a, h.b, 50);
    out = s.now() - t0;
  }(sim, net, hp, took));
  sim.run();
  // 2 hops × (0.1 ms latency + 1 ms processing) ≈ 2.2 ms.
  EXPECT_NEAR(to_milliseconds(took), 2.2, 0.3);
}

TEST(Network, JitteredLinkProducesVariableRates) {
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  t.add_duplex(a, b, 1000 * 1000, milliseconds(30), /*latency_jitter=*/0.3, /*rate_jitter=*/0.5);

  Simulation sim{7};
  Network net{sim, std::move(t)};
  net.set_hop_processing(Duration::zero());
  Samples times;
  for (int i = 0; i < 30; ++i) {
    Duration took{};
    sim.spawn(timed_transfer(net, sim, a, b, 1000 * 1000, took));
    sim.run();
    times.add(to_seconds(took));
  }
  EXPECT_GT(times.stddev() / times.mean(), 0.1);  // visible variability
  EXPECT_GT(times.min(), 0.2);                    // bounded by jitter clamp
}

TEST(Network, StatsAreTracked) {
  Simulation sim;
  auto hp = make_lan();
  Network net{sim, std::move(hp.topo)};
  Duration took{};
  sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 1_MB, took));
  sim.spawn([](Network& n, HomePair& h) -> Task<> {
    co_await n.send_message(h.a, h.b);
  }(net, hp));
  sim.run();
  EXPECT_EQ(net.stats().flows_started, 1u);
  EXPECT_EQ(net.stats().flows_completed, 1u);
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_NEAR(net.stats().bytes_delivered, 1024.0 * 1024.0, 1.0);
}

// Property sweep: N concurrent flows through one bottleneck finish together
// and conserve capacity.
class ContentionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContentionSweep, NFlowsFinishInNTimesSingleFlowTime) {
  const int n = GetParam();
  Simulation sim;
  auto hp = make_lan(10.0 * 1000 * 1000);
  Network net{sim, std::move(hp.topo)};
  net.set_hop_processing(Duration::zero());
  std::vector<Duration> times(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sim.spawn(timed_transfer(net, sim, hp.a, hp.b, 10 * 1000 * 1000, times[static_cast<std::size_t>(i)]));
  }
  sim.run();
  for (const auto& t : times) {
    EXPECT_NEAR(to_seconds(t), static_cast<double>(n), 0.05 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Flows, ContentionSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace c4h::net

// --- Striped transfers (future-work extension) ------------------------------

namespace c4h::net {
namespace {

using sim::Simulation;
using sim::Task;

TEST(StripedTransfer, BeatsSingleStreamWhenWindowLimited) {
  // Per-flow cap 1 MB/s (window/rtt), link 4 MB/s: 4 stripes ≈ 4x.
  Simulation sim;
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  t.add_duplex(a, b, 4.0 * 1000 * 1000, milliseconds(1));
  Network net{sim, std::move(t)};
  net.set_hop_processing(Duration::zero());

  TcpProfile p;
  p.rtt = milliseconds(100);
  p.window_cap = 100000;  // 1 MB/s per flow

  Duration single{}, striped{};
  sim.run_task([](Simulation& s, Network& n, NetNodeId src, NetNodeId dst, Duration& t1,
                  Duration& t4, TcpProfile prof) -> Task<> {
    auto t0 = s.now();
    co_await n.transfer(src, dst, 8 * 1000 * 1000, prof);
    t1 = s.now() - t0;
    t0 = s.now();
    co_await n.transfer_striped(src, dst, 8 * 1000 * 1000, prof, 4);
    t4 = s.now() - t0;
  }(sim, net, a, b, single, striped, p));

  EXPECT_NEAR(to_seconds(single), 8.0, 0.1);
  EXPECT_NEAR(to_seconds(striped), 2.0, 0.1);
}

TEST(StripedTransfer, GainsCapAtTheLinkRate) {
  // Link 2 MB/s; even 8 stripes cannot beat size/link.
  Simulation sim;
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  t.add_duplex(a, b, 2.0 * 1000 * 1000, milliseconds(1));
  Network net{sim, std::move(t)};
  net.set_hop_processing(Duration::zero());

  TcpProfile p;
  p.rtt = milliseconds(100);
  p.window_cap = 100000;

  Duration took{};
  sim.run_task([](Simulation& s, Network& n, NetNodeId src, NetNodeId dst, Duration& out,
                  TcpProfile prof) -> Task<> {
    const auto t0 = s.now();
    co_await n.transfer_striped(src, dst, 8 * 1000 * 1000, prof, 8);
    out = s.now() - t0;
  }(sim, net, a, b, took, p));
  EXPECT_GE(to_seconds(took), 4.0 - 0.05);  // bounded by the 2 MB/s link
}

TEST(StripedTransfer, SingleStreamAndZeroBytesDegradeGracefully) {
  Simulation sim;
  Topology t;
  const auto a = t.add_node();
  const auto b = t.add_node();
  t.add_duplex(a, b, mbps(100), milliseconds(1));
  Network net{sim, std::move(t)};

  bool done = false;
  sim.run_task([](Network& n, NetNodeId src, NetNodeId dst, bool& d) -> Task<> {
    co_await n.transfer_striped(src, dst, 1_MB, {}, 1);
    co_await n.transfer_striped(src, dst, 0, {}, 4);
    co_await n.transfer_striped(src, dst, 3, {}, 4);  // size < streams
    d = true;
  }(net, a, b, done));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace c4h::net
