// Chimera-style overlay: routing correctness, join/leave/crash dynamics,
// leaf sets, and randomized property sweeps at larger scale.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/overlay/overlay.hpp"

namespace c4h::overlay {
namespace {

using sim::Simulation;
using sim::Task;

// Test rig: N hosts on a star LAN, overlay across all of them.
struct Rig {
  Simulation sim{42};
  net::Topology topo;
  std::vector<std::unique_ptr<vmm::Host>> hosts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Overlay> overlay;
  std::vector<ChimeraNode*> nodes;

  explicit Rig(int n, OverlayConfig cfg = {}) {
    const auto sw = topo.add_node();
    for (int i = 0; i < n; ++i) {
      vmm::HostSpec spec;
      spec.name = "host-" + std::to_string(i);
      hosts.push_back(std::make_unique<vmm::Host>(sim, spec));
      const auto nn = topo.add_node();
      topo.add_duplex(nn, sw, mbps(95.5), microseconds(150));
      hosts.back()->set_net_node(nn);
    }
    net = std::make_unique<net::Network>(sim, std::move(topo));
    overlay = std::make_unique<Overlay>(sim, *net, cfg);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(&overlay->create_node("node-" + std::to_string(i), *hosts[static_cast<std::size_t>(i)]));
    }
  }

  void join_all() {
    sim.spawn([](Rig& r) -> Task<> {
      for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        auto res = co_await r.overlay->join(*r.nodes[i], i == 0 ? nullptr : r.nodes[0]);
        EXPECT_TRUE(res.ok());
      }
    }(*this));
    sim.run();
  }
};

TEST(Overlay, FirstNodeJoinsAlone) {
  Rig rig{1};
  rig.join_all();
  EXPECT_EQ(rig.nodes[0]->peer_count(), 0u);
  EXPECT_TRUE(rig.nodes[0]->online());
}

TEST(Overlay, SmallCloudConvergesToFullMembership) {
  Rig rig{6};
  rig.join_all();
  for (auto* n : rig.nodes) {
    EXPECT_EQ(n->peer_count(), 5u) << n->name();
  }
}

TEST(Overlay, RouteFindsTrueOwnerFromEveryOrigin) {
  Rig rig{6};
  rig.join_all();
  for (int t = 0; t < 20; ++t) {
    const Key target = Key::from_name("object-" + std::to_string(t));
    const Key want = rig.overlay->true_owner(target);
    for (auto* origin : rig.nodes) {
      rig.sim.spawn([](Rig& r, ChimeraNode& o, Key tgt, Key expect) -> Task<> {
        auto res = co_await r.overlay->route(o, tgt);
        EXPECT_TRUE(res.ok());
        if (res.ok()) {
          EXPECT_EQ(res->owner, expect);
        }
      }(rig, *origin, target, want));
    }
    rig.sim.run();
  }
}

TEST(Overlay, RouteToOwnKeyStaysLocal) {
  Rig rig{6};
  rig.join_all();
  auto* n = rig.nodes[3];
  rig.sim.spawn([](Rig& r, ChimeraNode& o) -> Task<> {
    auto res = co_await r.overlay->route(o, o.id());
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    EXPECT_EQ(res->owner, o.id());
    EXPECT_EQ(res->hops, 0);
  }(rig, *n));
  rig.sim.run();
}

TEST(Overlay, RoutingTakesMeasurableTime) {
  Rig rig{6};
  rig.join_all();
  Duration took{};
  rig.sim.spawn([](Rig& r, Duration& out) -> Task<> {
    const auto t0 = r.sim.now();
    co_await r.overlay->route(*r.nodes[0], Key::from_name("some-object"));
    out = r.sim.now() - t0;
  }(rig, took));
  rig.sim.run();
  // At most a couple of hops in a full-membership cloud; each ~1+ ms.
  EXPECT_GT(took, Duration::zero());
  EXPECT_LT(to_milliseconds(took), 20.0);
}

TEST(Overlay, GracefulLeaveRemovesFromAllPeers) {
  Rig rig{6};
  rig.join_all();
  auto* leaver = rig.nodes[2];
  rig.sim.spawn([](Rig& r, ChimeraNode& n) -> Task<> { co_await r.overlay->leave(n); }(rig, *leaver));
  rig.sim.run();
  EXPECT_FALSE(leaver->online());
  for (auto* n : rig.nodes) {
    if (n == leaver) continue;
    EXPECT_FALSE(n->knows(leaver->id())) << n->name();
  }
}

TEST(Overlay, LeaveHookRunsBeforeDeparture) {
  Rig rig{3};
  rig.join_all();
  bool hook_ran = false;
  bool node_was_online_in_hook = false;
  rig.overlay->set_leave_hook([&](ChimeraNode& n) -> Task<> {
    hook_ran = true;
    node_was_online_in_hook = n.online();
    co_return;
  });
  rig.sim.spawn([](Rig& r) -> Task<> { co_await r.overlay->leave(*r.nodes[1]); }(rig));
  rig.sim.run();
  EXPECT_TRUE(hook_ran);
  EXPECT_TRUE(node_was_online_in_hook);
}

TEST(Overlay, RoutingSurvivesCrashOfIntermediate) {
  Rig rig{8};
  rig.join_all();
  // Crash a node, then route to a key it owned: the route must converge to
  // the new true owner after the probe timeout detour.
  Key victim_key{};
  for (int t = 0; t < 200; ++t) {
    const Key k = Key::from_name("probe-" + std::to_string(t));
    if (rig.overlay->true_owner(k) == rig.nodes[4]->id()) {
      victim_key = k;
      break;
    }
  }
  ASSERT_NE(victim_key, Key{});
  rig.overlay->crash(*rig.nodes[4]);
  const Key new_owner = rig.overlay->true_owner(victim_key);
  ASSERT_NE(new_owner, rig.nodes[4]->id());

  rig.sim.spawn([](Rig& r, Key k, Key expect) -> Task<> {
    auto res = co_await r.overlay->route(*r.nodes[0], k);
    EXPECT_TRUE(res.ok());
    if (res.ok()) {
      EXPECT_EQ(res->owner, expect);
    }
  }(rig, victim_key, new_owner));
  rig.sim.run();
  EXPECT_GE(rig.overlay->stats().failures_detected, 0u);
}

TEST(Overlay, StabilizationDetectsCrashedNeighbor) {
  OverlayConfig cfg;
  cfg.stabilize_period = milliseconds(500);
  Rig rig{6, cfg};
  rig.join_all();
  rig.overlay->start_stabilization();

  auto* victim = rig.nodes[3];
  rig.overlay->crash(*victim);
  rig.sim.run_until(rig.sim.now() + seconds(5));

  for (auto* n : rig.nodes) {
    if (n == victim || !n->online()) continue;
    EXPECT_FALSE(n->knows(victim->id())) << n->name() << " still knows crashed node";
  }
  EXPECT_GE(rig.overlay->stats().failures_detected, 1u);
}

TEST(Overlay, FailureHookFires) {
  OverlayConfig cfg;
  cfg.stabilize_period = milliseconds(500);
  Rig rig{4, cfg};
  rig.join_all();
  std::vector<Key> reported;
  rig.overlay->set_failure_hook([&](Key dead) -> Task<> {
    reported.push_back(dead);
    co_return;
  });
  rig.overlay->start_stabilization();
  rig.overlay->crash(*rig.nodes[1]);
  rig.sim.run_until(rig.sim.now() + seconds(5));
  ASSERT_FALSE(reported.empty());
  EXPECT_EQ(reported.front(), rig.nodes[1]->id());
}

TEST(Overlay, LateJoinerIsRoutableImmediately) {
  Rig rig{5};
  // Join only the first four.
  rig.sim.spawn([](Rig& r) -> Task<> {
    for (int i = 0; i < 4; ++i) {
      (void)co_await r.overlay->join(*r.nodes[static_cast<std::size_t>(i)], i == 0 ? nullptr : r.nodes[0]);
    }
  }(rig));
  rig.sim.run();

  rig.hosts[4]->set_online(false);  // starts offline
  rig.sim.spawn([](Rig& r) -> Task<> {
    (void)co_await r.overlay->join(*r.nodes[4], r.nodes[2]);
    // A key owned by the newcomer must now resolve to it from an old node.
    for (int t = 0; t < 300; ++t) {
      const Key k = Key::from_name("late-" + std::to_string(t));
      if (r.overlay->true_owner(k) == r.nodes[4]->id()) {
        auto res = co_await r.overlay->route(*r.nodes[0], k);
        EXPECT_TRUE(res.ok());
        if (res.ok()) {
          EXPECT_EQ(res->owner, r.nodes[4]->id());
        }
        co_return;
      }
    }
    ADD_FAILURE() << "no key owned by newcomer found";
  }(rig));
  rig.sim.run();
}

TEST(ChimeraNode, LeafSetHasBothSides) {
  Simulation sim;
  vmm::HostSpec spec;
  spec.name = "h";
  vmm::Host host{sim, spec};
  ChimeraNode n{Key{0x8000000000ull >> 1}, "n", host};  // mid-space id
  for (int i = 0; i < 32; ++i) {
    n.add_peer(Key{static_cast<std::uint64_t>(i) * (Key::kMask / 32)}, {});
  }
  const auto leaves = n.leaf_set();
  EXPECT_EQ(leaves.size(), 2u * ChimeraNode::kLeafRadius);
  // All leaves must be among the 2R ring-closest peers.
  std::vector<std::uint64_t> dists;
  for (const Key k : n.known_peers()) dists.push_back(n.id().ring_distance(k));
  std::sort(dists.begin(), dists.end());
  const std::uint64_t radius = dists[2 * ChimeraNode::kLeafRadius - 1];
  for (const Key k : leaves) EXPECT_LE(n.id().ring_distance(k), radius);
}

TEST(ChimeraNode, RemovePeerClearsRoutingSlot) {
  Simulation sim;
  vmm::HostSpec spec;
  spec.name = "h";
  vmm::Host host{sim, spec};
  ChimeraNode n{Key::from_name("self"), "n", host};
  const Key p = Key::from_name("peer");
  n.add_peer(p, {});
  EXPECT_TRUE(n.knows(p));
  n.remove_peer(p);
  EXPECT_FALSE(n.knows(p));
  EXPECT_EQ(n.next_hop(p), n.id());  // no peers → self
}

// Property sweep: at larger scale with partial membership, routing from any
// origin still reaches the true owner, and hop counts stay modest.
class OverlayScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(OverlayScaleTest, AllRoutesReachTrueOwner) {
  const int n = GetParam();
  Rig rig{n};
  rig.join_all();

  int checked = 0;
  Accumulator hops;
  for (int t = 0; t < 30; ++t) {
    const Key target = Key::from_name("scale-object-" + std::to_string(t));
    const Key want = rig.overlay->true_owner(target);
    const auto origin_idx = static_cast<std::size_t>(t % n);
    rig.sim.spawn([](Rig& r, std::size_t oi, Key tgt, Key expect, int& cnt, Accumulator& h) -> Task<> {
      auto res = co_await r.overlay->route(*r.nodes[oi], tgt);
      EXPECT_TRUE(res.ok());
      if (!res.ok()) co_return;
      EXPECT_EQ(res->owner, expect);
      h.add(res->hops);
      ++cnt;
    }(rig, origin_idx, target, want, checked, hops));
    rig.sim.run();
  }
  EXPECT_EQ(checked, 30);
  EXPECT_LE(hops.max(), 10.0);  // far below max_hops; prefix routing works
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverlayScaleTest, ::testing::Values(2, 3, 6, 16, 48, 96));

}  // namespace
}  // namespace c4h::overlay
