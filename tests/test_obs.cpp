// Observability layer unit tests: log-histogram bucket math and quantiles,
// counter/gauge snapshot-diff, and span parent/child bookkeeping on the
// in-memory tracer.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/simulation.hpp"

namespace c4h::obs {
namespace {

// --- LogHistogram: bucket boundaries ---------------------------------------

TEST(LogHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(LogHistogram::bucket_index(0), 0);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3);
  EXPECT_EQ(LogHistogram::bucket_index(7), 3);
  EXPECT_EQ(LogHistogram::bucket_index(8), 4);
  EXPECT_EQ(LogHistogram::bucket_index(1023), 10);
  EXPECT_EQ(LogHistogram::bucket_index(1024), 11);
  EXPECT_EQ(LogHistogram::bucket_index(std::numeric_limits<std::uint64_t>::max()), 64);
}

TEST(LogHistogram, BucketLowIsInclusiveLowerBound) {
  EXPECT_EQ(LogHistogram::bucket_low(0), 0u);
  for (int i = 1; i < LogHistogram::kBuckets; ++i) {
    const std::uint64_t low = LogHistogram::bucket_low(i);
    EXPECT_EQ(LogHistogram::bucket_index(low), i) << "bucket " << i;
    if (i > 1) {
      EXPECT_EQ(LogHistogram::bucket_index(low - 1), i - 1) << "bucket " << i;
    }
  }
}

TEST(LogHistogram, RecordCountsAndSums) {
  LogHistogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket(0), 1u);  // the 0
  EXPECT_EQ(h.bucket(1), 1u);  // the 1
  EXPECT_EQ(h.bucket(3), 2u);  // the two 5s
  EXPECT_DOUBLE_EQ(h.mean(), 11.0 / 4.0);
}

// --- LogHistogram: quantiles -------------------------------------------------

TEST(LogHistogram, QuantileEmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.quantile(50), 0u);
  EXPECT_EQ(h.quantile(99), 0u);
}

TEST(LogHistogram, QuantileNearestRank) {
  LogHistogram h;
  // 90 values in [64,128) and 10 in [1024,2048): p50/p90 land in the low
  // bucket, p95/p99 in the high one. Quantiles report bucket lower bounds.
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1500);
  EXPECT_EQ(h.quantile(50), 64u);
  EXPECT_EQ(h.quantile(90), 64u);
  EXPECT_EQ(h.quantile(95), 1024u);
  EXPECT_EQ(h.quantile(99), 1024u);
  EXPECT_EQ(h.quantile(0), 64u);    // lowest recorded value's bucket
  EXPECT_EQ(h.quantile(100), 1024u);
}

TEST(LogHistogram, QuantileSingleValue) {
  LogHistogram h;
  h.record(33);  // bucket [32,64)
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.quantile(p), 32u) << "p=" << p;
  }
}

// --- LogHistogram: merge / subtract -----------------------------------------

TEST(LogHistogram, MergeAccumulates) {
  LogHistogram a, b;
  a.record(10);
  a.record(20);
  b.record(3000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 3030u);
  EXPECT_EQ(a.quantile(99), 2048u);
  // The source is untouched.
  EXPECT_EQ(b.count(), 1u);
}

TEST(LogHistogram, SubtractExtractsInterval) {
  LogHistogram before;
  before.record(100);

  LogHistogram after = before;  // snapshot copy
  after.record(100);
  after.record(5000);

  after.subtract(before);
  EXPECT_EQ(after.count(), 2u);
  EXPECT_EQ(after.sum(), 5100u);
  EXPECT_EQ(after.bucket(LogHistogram::bucket_index(100)), 1u);
  EXPECT_EQ(after.bucket(LogHistogram::bucket_index(5000)), 1u);
}

// --- Registry: snapshot / diff ----------------------------------------------

TEST(Registry, CounterAndGaugePointersAreStable) {
  Registry reg;
  Counter& c = reg.counter("c4h.test.op.count");
  c.add(2);
  // Registering more metrics must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) reg.counter("c4h.test.filler." + std::to_string(i));
  Counter& again = reg.counter("c4h.test.op.count");
  EXPECT_EQ(&c, &again);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Registry, SnapshotDiffCounters) {
  Registry reg;
  reg.counter("c4h.kv.put.count").add(5);
  reg.gauge("c4h.node.battery").set(0.8);

  const Snapshot before = reg.snapshot();
  reg.counter("c4h.kv.put.count").add(3);
  reg.counter("c4h.kv.get.count").add(7);  // registered after `before`
  reg.gauge("c4h.node.battery").set(0.5);
  const Snapshot after = reg.snapshot();

  const Snapshot d = Registry::diff(before, after);
  EXPECT_EQ(d.counters.at("c4h.kv.put.count"), 3u);
  EXPECT_EQ(d.counters.at("c4h.kv.get.count"), 7u);  // passes through whole
  EXPECT_DOUBLE_EQ(d.gauges.at("c4h.node.battery"), 0.5);  // gauges: latest
}

TEST(Registry, SnapshotDiffHistograms) {
  Registry reg;
  LogHistogram& h = reg.histogram("c4h.kv.get.latency_ns");
  h.record(100);
  const Snapshot before = reg.snapshot();
  h.record(100);
  h.record(8000);
  const Snapshot after = reg.snapshot();

  const Snapshot d = Registry::diff(before, after);
  const LogHistogram& dh = d.histograms.at("c4h.kv.get.latency_ns");
  EXPECT_EQ(dh.count(), 2u);
  EXPECT_EQ(dh.quantile(99), LogHistogram::bucket_low(LogHistogram::bucket_index(8000)));
}

TEST(Registry, QualifyAppendsNodeTag) {
  EXPECT_EQ(Registry::qualify("c4h.vstore.fetch.count", "home/netbook-1"),
            "c4h.vstore.fetch.count{node=home/netbook-1}");
}

// --- Tracer: span nesting ----------------------------------------------------

TEST(Tracer, ParentChildNesting) {
  sim::Simulation sim{1};
  Tracer tr{sim, 1};
  tr.set_enabled(true);

  Ctx root_ctx{&tr, 0};
  ScopedSpan root(root_ctx, "op");
  {
    ScopedSpan child(root.ctx(), "child-a");
    ScopedSpan grand(child.ctx(), "leaf");
  }
  { ScopedSpan child(root.ctx(), "child-b"); }
  root.end();

  ASSERT_EQ(tr.size(), 4u);
  const auto roots = tr.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0]->name, "op");

  const auto kids = tr.children(roots[0]->id);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0]->name, "child-a");
  EXPECT_EQ(kids[1]->name, "child-b");

  const auto grandkids = tr.children(kids[0]->id);
  ASSERT_EQ(grandkids.size(), 1u);
  EXPECT_EQ(grandkids[0]->name, "leaf");

  EXPECT_EQ(tr.depth_below(roots[0]->id), 2);
  EXPECT_EQ(tr.count_in_subtree(roots[0]->id, "leaf"), 1);
}

TEST(Tracer, NullContextRecordsNothing) {
  sim::Simulation sim{1};
  Tracer tr{sim, 1};
  // A default (null) context must make every recording call a no-op.
  ScopedSpan sp(Ctx{}, "ghost");
  sp.attr("k", "v");
  sp.set_error("boom");
  sp.end();
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Tracer, ErrorStatusAndNote) {
  sim::Simulation sim{1};
  Tracer tr{sim, 1};
  tr.set_enabled(true);
  {
    ScopedSpan sp(Ctx{&tr, 0}, "failing");
    sp.set_error("not found");
  }
  const Span* s = tr.find_by_name("failing");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->status, SpanStatus::error);
  EXPECT_EQ(s->note, "not found");
  EXPECT_TRUE(s->finished);
}

TEST(Tracer, SpanTimestampsComeFromSimClock) {
  sim::Simulation sim{1};
  Tracer tr{sim, 1};
  tr.set_enabled(true);
  sim.schedule(milliseconds(10), [&tr] {
    ScopedSpan sp(Ctx{&tr, 0}, "timed");
    sp.end();
  });
  sim.run();
  const Span* s = tr.find_by_name("timed");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->start, milliseconds(10));
  EXPECT_EQ(s->end, milliseconds(10));
}

TEST(Tracer, RunIdDerivedFromSeed) {
  sim::Simulation sim{1};
  Tracer a{sim, 7};
  Tracer b{sim, 7};
  Tracer c{sim, 8};
  EXPECT_EQ(a.run_id(), b.run_id());
  EXPECT_NE(a.run_id(), c.run_id());
}

TEST(Tracer, SumInSubtreeExcludesOtherRoots) {
  sim::Simulation sim{1};
  Tracer tr{sim, 1};
  tr.set_enabled(true);

  // Two separate roots each with a "net.msg" child; the per-root sum must
  // not leak across trees.
  SpanId r1 = tr.begin("op", 0);
  sim.schedule(milliseconds(1), [] {});
  SpanId m1 = tr.begin("net.msg", r1);
  tr.end(m1, SpanStatus::ok, "");
  tr.end(r1, SpanStatus::ok, "");

  SpanId r2 = tr.begin("op", 0);
  SpanId m2 = tr.begin("net.msg", r2);
  tr.end(m2, SpanStatus::ok, "");
  tr.end(r2, SpanStatus::ok, "");

  EXPECT_EQ(tr.count_in_subtree(r1, "net.msg"), 1);
  EXPECT_EQ(tr.count_in_subtree(r2, "net.msg"), 1);
}

}  // namespace
}  // namespace c4h::obs
