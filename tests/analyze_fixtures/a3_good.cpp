// A3 near-miss true negatives: iterators that never cross a suspension
// point in a live state — used before the await, re-acquired after it,
// consumed inside the awaited expression itself, or only crossing awaits
// that sit in early-exit branches.
#include <string>
#include <unordered_map>

#include "src/sim/simulation.hpp"

using c4h::sim::Task;

struct Store {
  std::unordered_map<std::string, int> table;

  Task<int> ok_use_before_await(const std::string& key) {
    const auto it = table.find(key);
    const int v = it == table.end() ? -1 : it->second;  // consumed pre-await
    co_await c4h::sim::delay_for(5);
    co_return v;
  }

  Task<int> ok_refind_after_await(const std::string& key) {
    auto it = table.find(key);
    if (it == table.end()) co_return -1;
    co_await c4h::sim::delay_for(5);
    it = table.find(key);  // re-acquired: the stale handle is never used
    co_return it == table.end() ? -1 : it->second;
  }

  Task<int> ok_use_inside_await_stmt(const std::string& key) {
    const auto it = table.find(key);
    if (it == table.end()) co_return -1;
    // Arguments are evaluated before the suspension, so this use is safe.
    co_await c4h::sim::delay_for(it->second);
    co_return 0;
  }

  Task<int> ok_await_on_early_exit_branch(const std::string& key) {
    const auto it = table.find(key);
    if (it == table.end()) {
      co_await c4h::sim::delay_for(1);  // miss costs a round trip
      co_return -1;
    }
    co_return it->second;  // no await on this path
  }
};
