// Declaration-only header for the cross-file A1 test: the definition lives
// elsewhere; the analyzer must learn the Task return type and the non-const
// reference parameter from this signature alone.
#pragma once

#include "src/sim/task.hpp"

namespace fixture {

struct Session {
  int packets = 0;
};

c4h::sim::Task<> drain_session(Session& s, int budget);

}  // namespace fixture
