// A1 near-miss true negatives: every spawn below binds the reference
// parameter to something that outlives the frame (or hands over ownership),
// so none of them may be flagged.
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;
using c4h::sim::Task;

struct Counter {
  int n = 0;
};

Task<> pump(Counter& c) {
  co_await c4h::sim::delay_for(1);
  ++c.n;
}

Task<> consume(Counter c) {  // by value: the frame owns its copy
  co_await c4h::sim::delay_for(1);
  ++c.n;
}

struct Rig {
  Simulation sim;
  Counter counter;
  std::vector<Counter> pool;

  void ok_member_lvalue() {
    sim.spawn(pump(counter));  // member outlives the frame
  }

  void ok_subscript_lvalue() {
    sim.spawn(pump(pool[0]));  // element lvalue; subscript is not a temporary
  }

  void ok_by_value_temporary() {
    sim.spawn(consume(Counter{}));  // by-value parameter copies the temporary
  }

  void ok_moved_owner(Counter owned) {
    sim.spawn(consume(std::move(owned)));  // explicit ownership handoff
  }

  void ok_run_task_temporary() {
    // run_task drives the frame to completion inside this full expression,
    // so the temporary outlives every resumption.
    sim.run_task(pump(Counter{}));
  }
};
