// Cross-file A1 true positive: the callee's signature is only visible in
// a1_decl.hpp; the analyzer's symbol index must connect the two files.
#include "src/sim/simulation.hpp"
#include "tests/analyze_fixtures/a1_decl.hpp"

using c4h::sim::Simulation;

void start(Simulation& sim) {
  sim.spawn(fixture::drain_session(fixture::Session{}, 8));  // A1: temporary
}

void start_ok(Simulation& sim, fixture::Session& live) {
  sim.spawn(fixture::drain_session(live, 8));  // fine: caller-owned lvalue
}
