// A3 true positives: container iterators obtained before a co_await and
// dereferenced after it. While the frame is suspended other coroutines run
// and may insert (rehash) or erase, invalidating the iterator.
#include <string>
#include <unordered_map>

#include "src/sim/simulation.hpp"

using c4h::sim::Task;

struct Store {
  std::unordered_map<std::string, int> table;

  Task<int> bad_deref_after_await(const std::string& key) {
    const auto it = table.find(key);
    if (it == table.end()) co_return -1;
    co_await c4h::sim::delay_for(5);  // others may mutate `table` here
    co_return it->second;             // A3: stale iterator dereference
  }

  Task<int> bad_begin_held(int budget) {
    auto cursor = table.begin();
    co_await c4h::sim::delay_for(budget);
    co_return cursor->second;  // A3: begin() held across suspension
  }
};
