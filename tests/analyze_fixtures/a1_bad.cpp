// A1 true positives: temporaries bound to reference parameters of spawned
// coroutines. The frame suspends; the temporary dies at the end of the full
// expression; the reference parameter dangles on first resume.
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;
using c4h::sim::Task;

struct Counter {
  int n = 0;
};

Task<> pump(Counter& c) {
  co_await c4h::sim::delay_for(1);
  ++c.n;  // dangles if `c` was a temporary
}

Counter make_counter() { return Counter{}; }

void bad_named_call(Simulation& sim) {
  sim.spawn(pump(make_counter()));  // A1: temporary from a call
  sim.spawn(pump(Counter{}));       // A1: braced temporary
}

void bad_iife_lambda(Simulation& sim) {
  sim.spawn([](Counter& c) -> Task<> {
    co_await c4h::sim::delay_for(1);
    ++c.n;
  }(Counter{}));  // A1: temporary into the lambda's reference parameter
}
