// A2 near-miss true negatives: coroutine lambdas that are safe — state
// passed as parameters instead of captures, capturing lambdas driven
// synchronously, and capturing lambdas that never suspend.
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;
using c4h::sim::Task;

void ok_param_passing(Simulation& sim) {
  int hits = 0;
  // The tree idiom: capture-free, state threaded through parameters. The
  // frame owns copies of its parameters (and holds the int& safely because
  // `hits` outlives... the caller guarantees that, not the closure).
  sim.spawn([](Simulation& s, int* h) -> Task<> {
    co_await c4h::sim::delay_for(1);
    ++*h;
  }(sim, &hits));
}

void ok_synchronous_drive(Simulation& sim) {
  int hits = 0;
  // run_task drives to completion inside the full expression: the closure
  // (and `hits`) outlive every resumption.
  sim.run_task([&hits]() -> Task<> {
    co_await c4h::sim::delay_for(1);
    ++hits;
  }());
}

void ok_non_coroutine_capture(Simulation& sim) {
  int hits = 0;
  // Capturing lambda without co_await/co_return: an ordinary callback, the
  // closure is copied into the scheduler, nothing dangles.
  auto cb = [&hits] { ++hits; };
  cb();
  (void)sim;
}
