// D1 near-miss true negatives: the same sinks fed from sanctioned sources —
// simulated time and the seeded Rng — plus wall-clock reads that stay in
// host-side diagnostics and never touch a sink.
#include <chrono>

#include "src/common/rng.hpp"
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;

void ok_sim_time(Simulation& sim) {
  const auto t = sim.now().time_since_epoch().count();  // simulated clock
  sim.schedule(t, [] {});
}

void ok_seeded_rng(Simulation& sim, c4h::Rng& rng) {
  const auto jitter = rng.uniform(0, 10);  // seeded, deterministic
  sim.schedule(jitter, [] {});
}

long ok_wall_clock_diagnostic_only() {
  // Reading the host clock is fine while it stays out of simulation state:
  // this feeds a "-wall" diagnostic printed for humans.
  const auto wall = std::chrono::steady_clock::now().time_since_epoch().count();
  return wall;  // (callers printing this never reach a sink)
}

void ok_member_named_time(Simulation& sim) {
  // A *member* called time() is not the C library wall clock.
  const auto t = sim.time();
  sim.schedule(t, [] {});
}
