// A2 true positives: capturing coroutine lambdas handed to spawn(). The
// closure object is a temporary that dies when the spawn statement ends; the
// detached frame resumes later with every capture dangling.
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;
using c4h::sim::Task;

void bad_ref_capture(Simulation& sim) {
  int hits = 0;
  sim.spawn([&hits]() -> Task<> {
    co_await c4h::sim::delay_for(1);
    ++hits;  // A2: &hits lives in the dead closure
  }());
}

void bad_value_capture(Simulation& sim) {
  int budget = 3;
  sim.spawn([budget]() -> Task<> {  // A2: even by-value copies live in the closure
    co_await c4h::sim::delay_for(budget);
  }());
}

struct Node {
  Simulation* sim = nullptr;
  int inflight = 0;

  void bad_this_capture() {
    sim->spawn([this]() -> Task<> {
      co_await c4h::sim::delay_for(1);
      ++inflight;  // A2: `this` was captured through the dead closure
    }());
  }
};
