// D3 near-miss true negatives: unordered iteration whose body is a pure
// commutative reduction, iteration over a sorted view, and order-sensitive
// bodies over *ordered* containers.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture_d3 {

std::vector<std::string> sorted_keys(const std::unordered_map<std::string, int>& m);

struct Directory {
  std::unordered_map<std::string, int> entries;
  std::map<std::string, int> ordered_entries;

  int ok_commutative_sum() const {
    int total = 0;
    for (const auto& [name, size] : entries) {
      total += size;  // commutative: order cannot be observed
    }
    return total;
  }

  void ok_sorted_view(std::vector<std::string>& out) const {
    for (const auto& name : sorted_keys(entries)) {
      out.push_back(name);  // sorted view: deterministic order
    }
  }

  void ok_ordered_container(std::vector<std::string>& out) const {
    for (const auto& [name, size] : ordered_entries) {
      out.push_back(name);  // std::map iterates in key order
    }
  }
};

}  // namespace fixture_d3
