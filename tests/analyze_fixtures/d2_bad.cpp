// D2 true positives: pointer-identity values (address casts, pointer hashes)
// flowing into containers, metrics, and schedules. Addresses differ run to
// run under ASLR, so anything keyed or ordered by them diverges.
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;

struct Node {
  int id = 0;
};

void bad_address_key(std::vector<std::uint64_t>& keys, Node* n) {
  const auto key = reinterpret_cast<std::uintptr_t>(n);
  keys.push_back(key);  // D2: address-derived value stored in sim state
}

void bad_pointer_hash(c4h::obs::Histogram& h, Node* n) {
  std::hash<Node*> hasher;
  h.record(hasher(n));  // D2: pointer hash into metrics
}

void bad_address_schedule(Simulation& sim, Node* n) {
  const auto skew = reinterpret_cast<std::uintptr_t>(n) % 7;
  sim.schedule(skew, [] {});  // D2: ASLR-dependent event time
}
