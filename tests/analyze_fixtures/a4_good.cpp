// A4 near-miss true negatives: spawned member coroutines whose object
// outlives the frame (member field), and locals that are only driven
// synchronously.
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;
using c4h::sim::Task;

struct Probe {
  int samples = 0;

  Task<> sample_loop() {
    for (int i = 0; i < 4; ++i) {
      co_await c4h::sim::delay_for(10);
      ++samples;
    }
  }
};

struct Rig {
  Simulation sim;
  Probe probe_;  // member: outlives any frame the Simulation still runs

  void ok_member_probe() {
    sim.spawn(probe_.sample_loop());  // fine: `this` is the long-lived member
  }
};

void ok_synchronous_local(Simulation& sim) {
  Probe p;
  sim.run_task(p.sample_loop());  // fine: driven to completion while `p` lives
}
