// D3 true positives: iterating an unordered container while doing
// order-sensitive work in the loop body — appending to output, awaiting
// messages, recording metrics. Hash order leaks into observable state.
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulation.hpp"

using c4h::sim::Task;

struct Directory {
  std::unordered_map<std::string, int> entries;

  void bad_append_in_hash_order(std::vector<std::string>& out) {
    for (const auto& [name, size] : entries) {
      out.push_back(name);  // D3: output order = hash order
    }
  }

  Task<> bad_await_in_hash_order() {
    for (const auto& [name, size] : entries) {
      co_await c4h::sim::delay_for(size);  // D3: event order = hash order
    }
  }

  void bad_metrics_in_hash_order(c4h::obs::Histogram& h) {
    for (const auto& [name, size] : entries) {
      h.record(static_cast<unsigned long>(size));  // D3: merge order = hash order
    }
  }
};
