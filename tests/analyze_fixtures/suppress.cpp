// Suppression fixtures: real violations silenced with
// `// c4h-analyze: allow(RULE)` — inline on the offending line, and as a
// justification comment on the line(s) above.
#include <chrono>

#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;

void suppressed_inline(Simulation& sim) {
  const auto t = std::chrono::steady_clock::now().time_since_epoch().count();
  sim.schedule(t, [] {});  // c4h-analyze: allow(D1) — host-only smoke rig
}

void suppressed_from_line_above(Simulation& sim) {
  const auto t = std::chrono::system_clock::now().time_since_epoch().count();
  // This rig measures host wall-clock skew on purpose; the schedule is
  // never compared against goldens.
  // c4h-analyze: allow(D1)
  sim.schedule(t, [] {});
}

void not_suppressed(Simulation& sim) {
  const auto t = std::chrono::steady_clock::now().time_since_epoch().count();
  sim.schedule(t, [] {});  // D1 still fires here: allow() covers single lines
}
