// A4 true positive: a member coroutine of a function-local object handed to
// spawn(). The detached frame keeps `this`; the local dies when the scope
// exits, long before the frame finishes.
#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;
using c4h::sim::Task;

struct Probe {
  int samples = 0;

  Task<> sample_loop() {
    for (int i = 0; i < 4; ++i) {
      co_await c4h::sim::delay_for(10);
      ++samples;  // writes through the dead local's `this`
    }
  }
};

void bad_local_probe(Simulation& sim) {
  Probe p;
  sim.spawn(p.sample_loop());  // A4: `p` dies at the end of this function
}
