// D2 near-miss true negatives: stable identities (ids, value hashes) into
// the same sinks, and pointer casts that never produce an integer identity.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;

struct Node {
  int id = 0;
  std::string name;
};

void ok_stable_id(std::vector<std::uint64_t>& keys, Node* n) {
  keys.push_back(static_cast<std::uint64_t>(n->id));  // value identity, stable
}

void ok_value_hash(c4h::obs::Histogram& h, Node* n) {
  std::hash<std::string> hasher;  // hashes the value, not the address
  h.record(hasher(n->name));
}

void ok_pointer_to_pointer_cast(Simulation& sim, Node* n) {
  auto* raw = reinterpret_cast<unsigned char*>(n);  // no integer identity
  (void)raw;
  sim.schedule(3, [] {});
}
