// D1 true positives: wall-clock / entropy values flowing into scheduling and
// metrics sinks — directly, through local assignments, and across a function
// boundary via a tainted return value.
#include <chrono>
#include <random>

#include "src/sim/simulation.hpp"

using c4h::sim::Simulation;

// Returns a tainted value: callers of jitter_ms() inherit the taint.
static long jitter_ms() {
  std::random_device rd;
  long j = static_cast<long>(rd());
  return j % 10;
}

void bad_direct_clock(Simulation& sim) {
  const auto t = std::chrono::steady_clock::now().time_since_epoch().count();
  sim.schedule(t, [] {});  // D1: wall clock into the event schedule
}

void bad_propagated_local(Simulation& sim) {
  auto seed = std::chrono::system_clock::now().time_since_epoch().count();
  auto skew = seed / 2;     // taint propagates through the assignment
  sim.schedule(skew, [] {});  // D1
}

void bad_cross_function(Simulation& sim) {
  sim.schedule(jitter_ms(), [] {});  // D1: tainted via jitter_ms's return
}

void bad_metric(c4h::obs::Histogram& lat) {
  lat.record(static_cast<unsigned long>(std::time(nullptr)));  // D1: time() into metrics
}
