// Property-based KV checking: random operation sequences — puts under all
// three overwrite policies, gets, get_all, erases — executed against the
// distributed store while nodes join and gracefully leave, with every
// result compared against a trivially-correct in-memory reference model.
// No fault injection here: under graceful churn alone the hardened store
// must agree with the reference exactly, on every operation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kv/kvstore.hpp"

namespace c4h::kv {
namespace {

using overlay::ChimeraNode;
using overlay::Overlay;
using overlay::OverlayConfig;
using sim::Simulation;
using sim::Task;

struct PropRig {
  Simulation sim;
  net::Topology topo;
  std::vector<std::unique_ptr<vmm::Host>> hosts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Overlay> overlay;
  std::unique_ptr<KvStore> kv;
  std::vector<ChimeraNode*> nodes;

  PropRig(int n, std::uint64_t seed) : sim(seed) {
    const auto sw = topo.add_node();
    for (int i = 0; i < n; ++i) {
      vmm::HostSpec spec;
      spec.name = "prop-host-" + std::to_string(i);
      hosts.push_back(std::make_unique<vmm::Host>(sim, spec));
      const auto nn = topo.add_node();
      topo.add_duplex(nn, sw, mbps(95.5), microseconds(150));
      hosts.back()->set_net_node(nn);
    }
    net = std::make_unique<net::Network>(sim, std::move(topo));
    OverlayConfig ocfg;
    ocfg.stabilize_period = milliseconds(500);
    overlay = std::make_unique<Overlay>(sim, *net, ocfg);
    KvConfig kcfg;
    kcfg.replication = 2;
    kv = std::make_unique<KvStore>(*overlay, kcfg);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(&overlay->create_node("prop-node-" + std::to_string(i),
                                            *hosts[static_cast<std::size_t>(i)]));
    }
  }

};

// The reference: exactly what a correct versioned map does, no distribution.
using Reference = std::unordered_map<Key, std::vector<std::string>>;

std::string as_string(const Buffer& b) { return {b.begin(), b.end()}; }
Buffer as_buffer(const std::string& s) { return {s.begin(), s.end()}; }

class KvProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvProperty, RandomOpsMatchReferenceModelUnderGracefulChurn) {
  const std::uint64_t seed = GetParam();
  // 10 nodes total; 6 join up front, the rest are reserves that join
  // mid-run so redistribution-on-join is exercised too.
  PropRig rig{10, seed};
  rig.overlay->start_stabilization();

  rig.sim.run_task([](PropRig& r, std::uint64_t sd) -> Task<> {
    Rng rng{sd};
    std::vector<bool> joined(r.nodes.size(), false);
    for (std::size_t i = 0; i < 6; ++i) {
      (void)co_await r.overlay->join(*r.nodes[i], i == 0 ? nullptr : r.nodes[0]);
      joined[i] = true;
    }

    // Only ring members may act: a created-but-unjoined node is an island
    // whose local routing diverges from the overlay by construction.
    auto random_member = [&r, &joined](Rng& g) -> ChimeraNode* {
      std::vector<ChimeraNode*> live;
      for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        if (joined[i] && r.nodes[i]->online()) live.push_back(r.nodes[i]);
      }
      if (live.empty()) return nullptr;
      return live[g.below(live.size())];
    };
    auto member_count = [&r, &joined] {
      std::size_t c = 0;
      for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        if (joined[i] && r.nodes[i]->online()) ++c;
      }
      return c;
    };

    // Fixed key pool so collisions (and thus policy interactions) happen.
    std::vector<Key> pool;
    for (int i = 0; i < 24; ++i) pool.push_back(Key::from_name("pk-" + std::to_string(i)));

    Reference ref;
    for (int step = 0; step < 200; ++step) {
      co_await r.sim.delay(milliseconds(100));
      ChimeraNode* actor = random_member(rng);
      EXPECT_NE(actor, nullptr);
      if (actor == nullptr) co_return;
      const Key k = pool[rng.below(pool.size())];
      const std::string v = "v" + std::to_string(step);
      const double dice = rng.uniform();

      if (dice < 0.20) {
        auto res = co_await r.kv->put(*actor, k, as_buffer(v), OverwritePolicy::overwrite);
        EXPECT_TRUE(res.ok()) << "overwrite put failed at step " << step << " seed " << sd;
        if (res.ok()) ref[k] = {v};
      } else if (dice < 0.35) {
        auto res = co_await r.kv->put(*actor, k, as_buffer(v), OverwritePolicy::chain);
        EXPECT_TRUE(res.ok()) << "chain put failed at step " << step << " seed " << sd;
        if (res.ok()) ref[k].push_back(v);
      } else if (dice < 0.45) {
        auto res = co_await r.kv->put(*actor, k, as_buffer(v), OverwritePolicy::error);
        if (ref.contains(k)) {
          EXPECT_FALSE(res.ok()) << "error-policy put clobbered an existing key, step " << step;
          EXPECT_EQ(res.code(), Errc::already_exists);
        } else {
          EXPECT_TRUE(res.ok()) << "error-policy put of a fresh key failed, step " << step;
          if (res.ok()) ref[k] = {v};
        }
      } else if (dice < 0.65) {
        auto res = co_await r.kv->get(*actor, k);
        const auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_FALSE(res.ok()) << "phantom key at step " << step << " seed " << sd;
          EXPECT_EQ(res.code(), Errc::not_found);
        } else {
          EXPECT_TRUE(res.ok()) << "get of known key failed at step " << step << " seed " << sd;
          if (res.ok()) {
            EXPECT_EQ(as_string(*res), it->second.back()) << "step " << step << " seed " << sd;
          }
        }
      } else if (dice < 0.80) {
        auto res = co_await r.kv->get_all(*actor, k);
        const auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_FALSE(res.ok());
        } else {
          EXPECT_TRUE(res.ok()) << "get_all of known key failed at step " << step;
          if (res.ok()) {
            EXPECT_EQ(res->size(), it->second.size()) << "version chain length, step " << step;
            const std::size_t n = std::min(res->size(), it->second.size());
            for (std::size_t i = 0; i < n; ++i) {
              EXPECT_EQ(as_string((*res)[i]), it->second[i])
                  << "version " << i << " at step " << step << " seed " << sd;
            }
          }
        }
      } else if (dice < 0.90) {
        auto res = co_await r.kv->erase(*actor, k);
        if (ref.contains(k)) {
          EXPECT_TRUE(res.ok()) << "erase of known key failed at step " << step;
          if (res.ok()) ref.erase(k);
        } else {
          EXPECT_FALSE(res.ok());
          EXPECT_EQ(res.code(), Errc::not_found);
        }
      } else if (dice < 0.95) {
        // Join a reserve node, if one remains, bootstrapping off any
        // current member (node 0 may itself have left by now).
        ChimeraNode* boot = random_member(rng);
        for (std::size_t i = 0; i < r.nodes.size() && boot != nullptr; ++i) {
          if (!joined[i]) {
            auto res = co_await r.overlay->join(*r.nodes[i], boot);
            EXPECT_TRUE(res.ok()) << "join from live bootstrap failed at step " << step;
            if (res.ok()) joined[i] = true;
            break;
          }
        }
      } else if (member_count() > 4) {
        // Graceful leave: redistribution must hand every key over intact.
        co_await r.overlay->leave(*actor);
      }
    }

    // Quiesce, then the whole keyspace must match the reference exactly.
    co_await r.sim.delay(seconds(5));
    ChimeraNode* reader = random_member(rng);
    EXPECT_NE(reader, nullptr);
    if (reader == nullptr) co_return;
    for (const Key& k : pool) {
      auto res = co_await r.kv->get_all(*reader, k);
      const auto it = ref.find(k);
      if (it == ref.end()) {
        EXPECT_FALSE(res.ok()) << "resurrected key (seed " << sd << ")";
        continue;
      }
      EXPECT_TRUE(res.ok()) << "lost key after churn settled (seed " << sd << ")";
      if (!res.ok()) continue;
      EXPECT_EQ(res->size(), it->second.size()) << "seed " << sd;
      const std::size_t n = std::min(res->size(), it->second.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(as_string((*res)[i]), it->second[i]) << "seed " << sd;
      }
    }
  }(rig, seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110, 121, 132));

}  // namespace
}  // namespace c4h::kv
