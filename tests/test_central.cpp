// Centralized metadata alternative (§III-A): semantics, coordinator load
// concentration, and the single-point-of-failure contrast with the DHT.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/stats.hpp"
#include "src/kv/central.hpp"
#include "src/kv/kvstore.hpp"

namespace c4h::kv {
namespace {

using overlay::ChimeraNode;
using overlay::Overlay;
using sim::Simulation;
using sim::Task;

struct Rig {
  Simulation sim{17};
  net::Topology topo;
  std::vector<std::unique_ptr<vmm::Host>> hosts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Overlay> overlay;
  std::vector<ChimeraNode*> nodes;
  std::unique_ptr<CentralizedMetadata> central;

  explicit Rig(int n) {
    const auto sw = topo.add_node();
    for (int i = 0; i < n; ++i) {
      vmm::HostSpec spec;
      spec.name = "c-host-" + std::to_string(i);
      hosts.push_back(std::make_unique<vmm::Host>(sim, spec));
      const auto nn = topo.add_node();
      topo.add_duplex(nn, sw, mbps(95.5), microseconds(150));
      hosts.back()->set_net_node(nn);
    }
    net = std::make_unique<net::Network>(sim, std::move(topo));
    overlay = std::make_unique<Overlay>(sim, *net);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(&overlay->create_node("c-node-" + std::to_string(i),
                                            *hosts[static_cast<std::size_t>(i)]));
    }
    sim.run_task([](Rig& r) -> Task<> {
      for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        (void)co_await r.overlay->join(*r.nodes[i], i == 0 ? nullptr : r.nodes[0]);
      }
    }(*this));
    central = std::make_unique<CentralizedMetadata>(*overlay, *nodes[0]);
  }
};

TEST(Central, PutGetRoundTrip) {
  Rig rig{4};
  rig.sim.run_task([](Rig& r) -> Task<> {
    Buffer v{1, 2, 3};
    auto p = co_await r.central->put(*r.nodes[2], Key::from_name("o"), v);
    EXPECT_TRUE(p.ok());
    auto g = co_await r.central->get(*r.nodes[3], Key::from_name("o"));
    EXPECT_TRUE(g.ok());
    if (g.ok()) {
      EXPECT_EQ(g->size(), 3u);
    }
    auto miss = co_await r.central->get(*r.nodes[1], Key::from_name("missing"));
    EXPECT_FALSE(miss.ok());
    EXPECT_EQ(miss.code(), Errc::not_found);
  }(rig));
  EXPECT_EQ(rig.central->entries(), 1u);
}

TEST(Central, CoordinatorLocalOpsSkipTheNetwork) {
  Rig rig{3};
  rig.sim.run_task([](Rig& r) -> Task<> {
    const auto msgs0 = r.net->stats().messages_sent;
    Buffer v{9};
    (void)co_await r.central->put(*r.nodes[0], Key::from_name("local"), v);
    (void)co_await r.central->get(*r.nodes[0], Key::from_name("local"));
    EXPECT_EQ(r.net->stats().messages_sent, msgs0);
  }(rig));
}

TEST(Central, AllLoadConcentratesOnCoordinator) {
  Rig rig{6};
  rig.sim.run_task([](Rig& r) -> Task<> {
    for (int i = 0; i < 30; ++i) {
      auto& origin = *r.nodes[1 + (i % 5)];
      Buffer v{1};
      (void)co_await r.central->put(origin, Key::from_name("k" + std::to_string(i)), v);
    }
  }(rig));
  // Every single operation crossed the coordinator.
  EXPECT_EQ(rig.central->stats().coordinator_messages, 60u);
}

TEST(Central, CoordinatorCrashTakesDownAllMetadata) {
  // The DHT with replication survives any single crash (test_kv); the
  // centralized layer loses *everything* when its one node dies.
  Rig rig{5};
  rig.sim.run_task([](Rig& r) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      Buffer v{7};
      (void)co_await r.central->put(*r.nodes[1], Key::from_name("k" + std::to_string(i)), v);
    }
    r.overlay->crash(*r.nodes[0]);  // the coordinator
    int failures = 0;
    for (int i = 0; i < 10; ++i) {
      auto g = co_await r.central->get(*r.nodes[2], Key::from_name("k" + std::to_string(i)));
      failures += !g.ok();
    }
    EXPECT_EQ(failures, 10);
  }(rig));
  EXPECT_EQ(rig.central->stats().outage_failures, 10u);
}

TEST(Central, LookupIsFlatTwoMessages) {
  // Centralized lookups cost one round trip regardless of which node asks —
  // cheaper than a cold DHT route, with none of the DHT's cache benefits.
  Rig rig{6};
  Samples lat;
  rig.sim.run_task([&lat](Rig& r) -> Task<> {
    (void)co_await r.central->put(*r.nodes[1], Key::from_name("hot"), Buffer(100, 1));
    for (int i = 0; i < 10; ++i) {
      auto& origin = *r.nodes[1 + (i % 5)];
      const auto t0 = r.sim.now();
      (void)co_await r.central->get(origin, Key::from_name("hot"));
      lat.add(to_milliseconds(r.sim.now() - t0));
    }
  }(rig));
  EXPECT_LT(lat.max() - lat.min(), 1.0) << "latency should be flat";
  EXPECT_LT(lat.mean(), 5.0);
}

}  // namespace
}  // namespace c4h::kv
