// Chaos soak: the deterministic fault-injection layer driving a full
// HomeCloud through message loss/duplication/delay, IO errors, bin-full
// faults, node crash/restart cycles, and uplink flaps, while a mixed
// store/fetch/process workload runs against an in-memory reference model.
//
// Invariants (checked per seed):
//   - no acknowledged store is ever lost once the system settles;
//   - a fetch never returns wrong data (transient failure is allowed while
//     faults are active, silent corruption never is);
//   - the replication factor is restored after churn settles;
//   - the run drains: no in-flight network flows, bounded detached
//     coroutines (only the periodic stabilization loops remain);
//   - the same seed reproduces the run byte-for-byte (stats fingerprint).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/federation/geo_federation.hpp"
#include "src/sim/fault.hpp"
#include "src/vstore/home_cloud.hpp"
#include "src/workload/workload.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

ObjectMeta chaos_meta(const std::string& name, Bytes size) {
  ObjectMeta m;
  m.name = name;
  m.type = "jpg";
  m.size = size;
  return m;
}

services::ServiceProfile thumb_profile() {
  services::ServiceProfile p;
  p.name = "thumbnail";
  p.id = 1;
  p.fixed_gigacycles = 0.05;
  p.gigacycles_per_mib = 0.2;
  p.output_ratio = 0.1;
  return p;
}

// Everything a run produces that a rerun with the same seed must reproduce
// exactly. Deliberately broad: any nondeterminism in the stack shows up as
// a diverging counter somewhere in here.
struct Fingerprint {
  std::uint64_t kv_puts = 0;
  std::uint64_t kv_gets = 0;
  std::uint64_t kv_retries = 0;
  std::uint64_t kv_failures = 0;
  std::uint64_t kv_send_timeouts = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_retransmits = 0;
  std::uint64_t net_flows = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t flaps = 0;
  std::int64_t final_time_ns = 0;
  std::size_t acked = 0;

  bool operator==(const Fingerprint&) const = default;
};

struct ChaosResult {
  std::size_t acked = 0;    // objects whose store was acknowledged
  int lost = 0;             // acked objects unfetchable after settling
  std::string lost_detail;  // which objects, and the error they died with
  int wrong = 0;            // fetches that returned wrong data, ever
  int phantom = 0;          // fetches of never-stored names that "succeeded"
  std::size_t under_replicated = 0;
  std::size_t active_flows = 0;
  std::size_t detached = 0;
  std::size_t node_count = 0;
  bool all_online = false;
  Fingerprint fp;
};

ChaosResult run_chaos(std::uint64_t seed) {
  HomeCloudConfig cfg;
  cfg.netbooks = 5;  // 5 netbooks + desktop = 6 nodes
  cfg.kv.replication = 2;
  cfg.kv.ack_replication = true;  // acked writes must survive owner crashes
  cfg.start_stabilization = true;
  cfg.start_monitors = false;  // keep the drain check meaningful
  cfg.seed = seed;
  HomeCloud hc{cfg};
  hc.bootstrap();

  const auto prof = thumb_profile();
  hc.registry().add_profile(prof);
  hc.node(1).deploy_service(prof);
  hc.node(2).deploy_service(prof);

  sim::FaultSpec spec;
  spec.msg_drop = 0.10;
  spec.msg_duplicate = 0.03;
  spec.msg_delay = 0.05;
  spec.io_error = 0.02;
  spec.bin_full = 0.01;
  spec.mean_crash_interval = seconds(6);
  spec.mean_downtime = seconds(3);
  spec.mean_flap_interval = seconds(15);
  spec.mean_flap_duration = seconds(2);
  spec.horizon = seconds(40);
  sim::FaultPlan& plan = hc.enable_chaos(spec);

  ChaosResult out;
  out.node_count = hc.node_count();

  hc.run([](HomeCloud& h, const services::ServiceProfile& svc, sim::FaultPlan& fp,
            std::uint64_t sd, ChaosResult& r) -> Task<> {
    auto& sim = h.sim();
    (void)co_await h.node(1).publish_services();
    (void)co_await h.node(2).publish_services();

    Rng rng{sd * 2654435761u + 17};  // workload stream, independent of the sim's
    std::map<std::string, Bytes> acked;     // name -> size of acknowledged stores
    std::vector<std::string> acked_names;   // stable pick order

    auto live_node = [&h, &rng]() -> VStoreNode* {
      std::vector<VStoreNode*> live;
      for (std::size_t i = 0; i < h.node_count(); ++i) {
        if (h.node(i).online()) live.push_back(&h.node(i));
      }
      if (live.empty()) return nullptr;
      return live[rng.below(live.size())];
    };

    for (int step = 0; step < 120; ++step) {
      co_await sim.delay(milliseconds(250));
      VStoreNode* n = live_node();
      if (n == nullptr) continue;  // crash floor keeps this from happening
      const double dice = rng.uniform();

      if (dice < 0.45) {
        // Store a fresh object. Unique size per object so a fetch that
        // returns the wrong object's data is detectable by size alone.
        const std::string name = "chaos-" + std::to_string(step) + ".jpg";
        const Bytes size = 64 * 1024 + static_cast<Bytes>(step) * 2048;
        (void)co_await n->create_object(chaos_meta(name, size));
        auto stored = co_await n->store_object(name);
        if (stored.ok()) {
          acked.emplace(name, size);
          acked_names.push_back(name);
        }
      } else if (dice < 0.80) {
        // Fetch an acknowledged object. Transient failure is fine while
        // faults fly; returning the wrong bytes never is.
        if (acked_names.empty()) continue;
        const std::string& name = acked_names[rng.below(acked_names.size())];
        auto fetched = co_await n->fetch_object(name);
        if (fetched.ok() && fetched->size != acked.at(name)) ++r.wrong;
      } else if (dice < 0.90) {
        // Fetch a name that was never stored: must never "succeed".
        auto fetched = co_await n->fetch_object("bogus-" + std::to_string(step));
        if (fetched.ok()) ++r.phantom;
      } else {
        // Process an acknowledged object somewhere in the home.
        if (acked_names.empty()) continue;
        const std::string& name = acked_names[rng.below(acked_names.size())];
        (void)co_await n->process(name, svc);
      }
    }

    // Let the fault horizon pass, then wait for every crashed node to come
    // back (restart is scheduled even past the horizon) and for repair /
    // re-replication to settle.
    while (sim.now() < fp.deadline()) co_await sim.delay(seconds(1));
    for (int i = 0; i < 60; ++i) {
      bool all = true;
      for (std::size_t j = 0; j < h.node_count(); ++j) {
        if (!h.node(j).online()) all = false;
      }
      if (all) break;
      co_await sim.delay(seconds(1));
    }
    fp.disarm();
    co_await sim.delay(seconds(5));  // repair + restore_replication tail

    r.all_online = true;
    for (std::size_t j = 0; j < h.node_count(); ++j) {
      if (!h.node(j).online()) r.all_online = false;
    }

    // Final verification with faults off: every acknowledged object must be
    // fetchable with exactly its stored size.
    VStoreNode* reader = live_node();
    if (reader == nullptr) co_return;
    for (const auto& [name, size] : acked) {
      auto fetched = co_await reader->fetch_object(name);
      if (!fetched.ok()) {
        ++r.lost;
        r.lost_detail += name + ": " + std::string(to_string(fetched.code())) + "; ";
        continue;
      }
      if (fetched->size != size) ++r.wrong;
    }
    r.acked = acked.size();
  }(hc, prof, plan, seed, out));

  out.under_replicated = hc.kv().under_replicated();
  out.active_flows = hc.network().active_flows();
  out.detached = hc.sim().detached_count();

  const auto& ks = hc.kv().stats();
  const auto& ns = hc.network().stats();
  const auto& fs = plan.stats();
  out.fp = Fingerprint{ks.puts,
                       ks.gets,
                       ks.op_retries,
                       ks.op_failures,
                       ks.send_timeouts,
                       ns.messages_sent,
                       ns.retransmits,
                       ns.flows_started,
                       fs.messages_dropped,
                       fs.messages_duplicated,
                       fs.io_errors,
                       fs.crashes,
                       fs.restarts,
                       fs.uplink_flaps,
                       hc.sim().now().count(),
                       out.acked};
  return out;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, AckedWritesSurviveAndReadsAreNeverWrong) {
  const std::uint64_t seed = GetParam();
  const ChaosResult r = run_chaos(seed);

  // The chaos layer must actually have bitten (otherwise the run proved
  // nothing): messages were dropped and at least some stores were acked.
  EXPECT_GT(r.fp.dropped, 0u) << "seed " << seed;
  EXPECT_GT(r.fp.net_retransmits, 0u) << "seed " << seed;
  EXPECT_GT(r.acked, 10u) << "seed " << seed;

  EXPECT_TRUE(r.all_online) << "seed " << seed << ": a crashed node never restarted";
  EXPECT_EQ(r.lost, 0) << "seed " << seed << ": acknowledged store lost [" << r.lost_detail
                       << "]";
  EXPECT_EQ(r.wrong, 0) << "seed " << seed << ": fetch returned wrong data";
  EXPECT_EQ(r.phantom, 0) << "seed " << seed << ": fetch of never-stored name succeeded";
  EXPECT_EQ(r.under_replicated, 0u)
      << "seed " << seed << ": replication factor not restored after churn";
  EXPECT_EQ(r.active_flows, 0u) << "seed " << seed << ": leaked network flow";
  // Stabilization loops (one per node) legitimately persist; anything much
  // beyond that is a leaked coroutine.
  EXPECT_LE(r.detached, 2 * r.node_count + 8) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Values(7001, 7002, 7003, 7004, 7005, 7006, 7007, 7008, 7009,
                                           7010, 7011, 7012, 7013, 7014, 7015, 7016, 7017, 7018,
                                           7019, 7020, 7021, 7022, 7023, 7024));

TEST(ChaosDeterminism, SameSeedReproducesTheRunExactly) {
  const ChaosResult a = run_chaos(4242);
  const ChaosResult b = run_chaos(4242);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.wrong, b.wrong);
  EXPECT_EQ(a.detached, b.detached);
}

TEST(ChaosDeterminism, DifferentSeedsDiverge) {
  const ChaosResult a = run_chaos(111);
  const ChaosResult b = run_chaos(222);
  EXPECT_NE(a.fp, b.fp);
}

// ---------------------------------------------------------------------------
// Workload-scenario soak: the src/workload generator + Driver running a small
// two-tenant mix under crash churn and uplink flaps. After the faults settle,
// every store the Driver acknowledged must fetch back with exactly its
// catalog size — an acked-then-unfetchable object is a lost write.

workload::WorkloadSpec soak_spec(std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.duration = seconds(30);

  workload::TenantSpec writer;
  writer.name = "writer";
  writer.principal = {"writer", TrustLevel::trusted};
  writer.acl.allow("*", {Right::read});  // verification reads from any node
  writer.mix = {0.7, 0.3, 0.0, 0.0};
  writer.object_count = 24;
  writer.size = {64_KB, 512_KB};
  writer.arrival.rate_per_sec = 6.0;
  spec.tenants.push_back(writer);

  workload::TenantSpec reader;
  reader.name = "reader";
  reader.principal = {"reader", TrustLevel::trusted};
  reader.acl.allow("*", {Right::read});
  reader.mix = {0.2, 0.8, 0.0, 0.0};
  reader.object_count = 12;
  reader.size = {64_KB, 256_KB};
  reader.fetch_from = {"writer"};
  reader.arrival.rate_per_sec = 4.0;
  spec.tenants.push_back(reader);

  return spec;
}

struct WorkloadChaosResult {
  std::size_t acked = 0;
  int lost = 0;
  std::string lost_detail;
  std::uint64_t issued = 0;
  std::uint64_t wrong = 0;
  std::uint64_t crashes = 0;
  std::uint64_t flaps = 0;
  bool all_online = false;
};

WorkloadChaosResult run_workload_chaos(std::uint64_t seed) {
  HomeCloudConfig cfg;
  cfg.netbooks = 5;
  cfg.kv.replication = 2;
  cfg.kv.ack_replication = true;
  cfg.start_stabilization = true;
  cfg.start_monitors = false;
  cfg.seed = seed;
  HomeCloud hc{cfg};
  hc.bootstrap();

  sim::FaultSpec spec;
  spec.msg_drop = 0.08;
  spec.msg_delay = 0.05;
  spec.mean_crash_interval = seconds(8);
  spec.mean_downtime = seconds(3);
  spec.mean_flap_interval = seconds(10);
  spec.mean_flap_duration = seconds(2);
  spec.horizon = seconds(35);
  sim::FaultPlan& plan = hc.enable_chaos(spec);

  workload::Driver driver{hc, soak_spec(seed)};
  WorkloadChaosResult out;

  hc.run([](HomeCloud& h, workload::Driver& d, sim::FaultPlan& fp, std::uint64_t sd,
            WorkloadChaosResult& r) -> Task<> {
    auto& sim = h.sim();
    const workload::Schedule schedule = workload::generate(soak_spec(sd));
    co_await d.drive(schedule);

    // Settle: past the fault horizon, every node back online, faults off,
    // then a repair/re-replication tail.
    while (sim.now() < fp.deadline()) co_await sim.delay(seconds(1));
    for (int i = 0; i < 60; ++i) {
      bool all = true;
      for (std::size_t j = 0; j < h.node_count(); ++j) {
        if (!h.node(j).online()) all = false;
      }
      if (all) break;
      co_await sim.delay(seconds(1));
    }
    fp.disarm();
    co_await sim.delay(seconds(5));

    r.all_online = true;
    for (std::size_t j = 0; j < h.node_count(); ++j) {
      if (!h.node(j).online()) r.all_online = false;
    }

    VStoreNode* reader = nullptr;
    for (std::size_t j = 0; j < h.node_count(); ++j) {
      if (h.node(j).online()) {
        reader = &h.node(j);
        break;
      }
    }
    if (reader == nullptr) co_return;
    for (const auto& [name, size] : d.result().acked) {
      auto fetched = co_await reader->fetch_object(name);
      if (!fetched.ok()) {
        ++r.lost;
        r.lost_detail += name + ": " + std::string(to_string(fetched.code())) + "; ";
      } else if (fetched->size != size) {
        ++r.lost;
        r.lost_detail += name + ": wrong size; ";
      }
    }
    r.acked = d.result().acked.size();
  }(hc, driver, plan, seed, out));

  out.issued = driver.result().issued();
  out.wrong = driver.result().wrong();
  out.crashes = plan.stats().crashes;
  out.flaps = plan.stats().uplink_flaps;
  return out;
}

class WorkloadChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadChaosSoak, NoAckedWriteLostUnderChurnAndFlaps) {
  const std::uint64_t seed = GetParam();
  const WorkloadChaosResult r = run_workload_chaos(seed);

  // The run must have exercised both the workload and the fault layer.
  EXPECT_GT(r.issued, 50u) << "seed " << seed;
  EXPECT_GT(r.acked, 10u) << "seed " << seed;
  EXPECT_GT(r.crashes + r.flaps, 0u) << "seed " << seed;

  EXPECT_TRUE(r.all_online) << "seed " << seed << ": a crashed node never restarted";
  EXPECT_EQ(r.lost, 0) << "seed " << seed << ": acknowledged store lost [" << r.lost_detail
                       << "]";
  EXPECT_EQ(r.wrong, 0u) << "seed " << seed << ": fetch returned wrong data mid-run";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadChaosSoak, ::testing::Values(8101, 8102, 8103));

// ---------------------------------------------------------------------------
// Adaptive-placement soak: the learned decision policy (PlacementEngine)
// driven through the same churn + uplink-flap fault plan. Two invariants on
// top of the usual no-lost-acked-writes one:
//   - the engine actually decides (its counters move) and never loses an
//     acknowledged write while exploring under faults;
//   - after the faults settle and the uplink is parked degraded, cloud-bound
//     stores re-converge home within a bounded number of observations, with
//     the adaptive cloud threshold strictly shrunk below the object size.

workload::WorkloadSpec adaptive_soak_spec(std::uint64_t seed) {
  workload::WorkloadSpec spec = soak_spec(seed);
  for (auto& t : spec.tenants) t.decision = DecisionPolicy::learned;

  // A service tenant so the engine's choose/observe path (not just the
  // store-veto path) runs under churn.
  workload::TenantSpec vision;
  vision.name = "vision";
  vision.principal = {"vision", TrustLevel::trusted};
  vision.acl.allow("*", {Right::read});
  vision.decision = DecisionPolicy::learned;
  vision.mix = {0.4, 0.1, 0.3, 0.2};
  vision.object_count = 12;
  vision.size = {128_KB, 512_KB};
  vision.service = thumb_profile();
  vision.arrival.rate_per_sec = 3.0;
  spec.tenants.push_back(vision);
  return spec;
}

struct AdaptiveChaosResult {
  std::size_t acked = 0;
  int lost = 0;
  std::string lost_detail;
  std::uint64_t issued = 0;
  std::uint64_t crashes = 0;
  std::uint64_t flaps = 0;
  bool all_online = false;
  std::uint64_t decisions = 0;
  std::uint64_t explorations = 0;
  // Post-flap epilogue: cloud threshold before/after the parked brown-out,
  // and how many stores the engine needed before one stayed home.
  Bytes threshold_before = 0;
  Bytes threshold_after = 0;
  int stores_until_home = -1;
};

AdaptiveChaosResult run_adaptive_chaos(std::uint64_t seed) {
  HomeCloudConfig cfg;
  cfg.netbooks = 5;
  cfg.kv.replication = 2;
  cfg.kv.ack_replication = true;
  cfg.start_stabilization = true;
  cfg.start_monitors = false;
  cfg.seed = seed;
  // A tight upload budget so the veto knob reacts to ~MiB-scale objects.
  cfg.placement.upload_budget = seconds(2);
  HomeCloud hc{cfg};
  hc.bootstrap();

  const auto prof = thumb_profile();
  hc.registry().add_profile(prof);
  hc.node(1).deploy_service(prof);
  hc.node(2).deploy_service(prof);

  sim::FaultSpec spec;
  spec.msg_drop = 0.08;
  spec.msg_delay = 0.05;
  spec.mean_crash_interval = seconds(8);
  spec.mean_downtime = seconds(3);
  spec.mean_flap_interval = seconds(10);
  spec.mean_flap_duration = seconds(2);
  spec.horizon = seconds(35);
  sim::FaultPlan& plan = hc.enable_chaos(spec);

  workload::Driver driver{hc, adaptive_soak_spec(seed)};
  AdaptiveChaosResult out;

  hc.run([](HomeCloud& h, workload::Driver& d, sim::FaultPlan& fp, std::uint64_t sd,
            AdaptiveChaosResult& r) -> Task<> {
    auto& sim = h.sim();
    (void)co_await h.node(1).publish_services();
    (void)co_await h.node(2).publish_services();
    const workload::Schedule schedule = workload::generate(adaptive_soak_spec(sd));
    co_await d.drive(schedule);

    while (sim.now() < fp.deadline()) co_await sim.delay(seconds(1));
    for (int i = 0; i < 60; ++i) {
      bool all = true;
      for (std::size_t j = 0; j < h.node_count(); ++j) {
        if (!h.node(j).online()) all = false;
      }
      if (all) break;
      co_await sim.delay(seconds(1));
    }
    fp.disarm();
    co_await sim.delay(seconds(5));

    r.all_online = true;
    for (std::size_t j = 0; j < h.node_count(); ++j) {
      if (!h.node(j).online()) r.all_online = false;
    }

    VStoreNode* reader = nullptr;
    for (std::size_t j = 0; j < h.node_count(); ++j) {
      if (h.node(j).online()) {
        reader = &h.node(j);
        break;
      }
    }
    if (reader == nullptr) co_return;
    for (const auto& [name, size] : d.result().acked) {
      auto fetched = co_await reader->fetch_object(name);
      if (!fetched.ok()) {
        ++r.lost;
        r.lost_detail += name + ": " + std::string(to_string(fetched.code())) + "; ";
      } else if (fetched->size != size) {
        ++r.lost;
        r.lost_detail += name + ": wrong size; ";
      }
    }
    r.acked = d.result().acked.size();

    // ---- Post-flap re-convergence epilogue (deterministic) ----
    StoragePolicy cloud_policy;
    StoreRule to_cloud;
    to_cloud.target = StoreTarget::remote_cloud;
    cloud_policy.rules = {to_cloud};

    auto store_one = [&](const std::string& name, DecisionPolicy dec) -> Task<bool> {
      auto m = chaos_meta(name, 1_MB);
      (void)co_await h.desktop().create_object(m);
      StoreOptions opts;
      opts.policy = cloud_policy;
      opts.decision = dec;
      auto s = co_await h.desktop().store_object(name, opts);
      co_return s.ok() && s->location.is_cloud();
    };

    // Heal: restore a fast WAN and let a few uploads pull the EWMA back up,
    // so the epilogue starts from a cloud-friendly threshold regardless of
    // what the flap phase did to the estimate. (The observed rate sits well
    // under the nominal link rate — latency and dispatch overhead are part
    // of each sample — hence the generous 4 MiB/s.)
    h.set_wan_rates(mib_per_sec(4.0), mib_per_sec(4.0));
    for (int i = 0; i < 10; ++i) {
      (void)co_await store_one("heal/" + std::to_string(i), DecisionPolicy::performance);
      if (h.placement_engine().cloud_threshold() > 1_MB + 512_KB) break;
    }
    r.threshold_before = h.placement_engine().cloud_threshold();

    // Brown-out: park the uplink degraded. Each cloud store is now a painful
    // lesson; the engine must veto (store lands home) within a handful of
    // observations as the threshold collapses below the object size.
    h.set_wan_rates(mib_per_sec(0.05), mib_per_sec(0.1));
    for (int i = 0; i < 12; ++i) {
      const bool cloud = co_await store_one("post/" + std::to_string(i), DecisionPolicy::learned);
      if (!cloud) {
        r.stores_until_home = i + 1;
        break;
      }
    }
    r.threshold_after = h.placement_engine().cloud_threshold();
  }(hc, driver, plan, seed, out));

  out.issued = driver.result().issued();
  out.crashes = plan.stats().crashes;
  out.flaps = plan.stats().uplink_flaps;
  out.decisions = hc.placement_engine().decisions();
  out.explorations = hc.placement_engine().explorations();
  return out;
}

class AdaptiveChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdaptiveChaosSoak, LearnedPolicySurvivesFlapsAndReconvergesHome) {
  const std::uint64_t seed = GetParam();
  const AdaptiveChaosResult r = run_adaptive_chaos(seed);

  // The run exercised the workload, the fault layer, AND the engine.
  EXPECT_GT(r.issued, 50u) << "seed " << seed;
  EXPECT_GT(r.acked, 10u) << "seed " << seed;
  EXPECT_GT(r.crashes + r.flaps, 0u) << "seed " << seed;
  EXPECT_GT(r.decisions, 0u) << "seed " << seed << ": learned path never decided";

  EXPECT_TRUE(r.all_online) << "seed " << seed << ": a crashed node never restarted";
  EXPECT_EQ(r.lost, 0) << "seed " << seed << ": acknowledged store lost [" << r.lost_detail
                       << "]";

  // Re-convergence: the parked brown-out must flip placement home within a
  // bounded number of observed uploads (EWMA alpha 0.3 needs ~5 lessons to
  // drag a healed ~2 MiB/s estimate under the 0.5 MiB/s veto point for 1 MB
  // at a 2 s budget), with the threshold strictly shrunk below the object.
  EXPECT_GE(r.threshold_before, 1_MB) << "seed " << seed << ": epilogue started veto-bound";
  ASSERT_NE(r.stores_until_home, -1) << "seed " << seed << ": never re-converged home";
  EXPECT_LE(r.stores_until_home, 8) << "seed " << seed;
  EXPECT_LT(r.threshold_after, 1_MB) << "seed " << seed;
  EXPECT_LT(r.threshold_after, r.threshold_before) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveChaosSoak, ::testing::Values(9101, 9102, 9103));

// ---------------------------------------------------------------------------
// Federation soak: a City (3 neighborhoods × 2 homes × 3 nodes) under
// crash/restart churn, with published objects replicated at degree 2 across
// neighborhoods and a periodic repair sweep. The reachability invariant:
// a fetch may only fail while an object has NO live replica — any failure
// while ≥1 replica's node is up (before and after the fetch, so mid-fetch
// churn doesn't blur the check) is a federation bug, not bad luck. After
// churn settles and a final repair runs, every published object must fetch
// with exactly its published size.

struct FederationChaosResult {
  std::size_t published = 0;
  std::uint64_t fetches = 0;
  int unreachable = 0;  // failed fetch while a live replica existed
  std::string unreachable_detail;
  int lost_after_settle = 0;
  std::string lost_detail;
  std::uint64_t wrong = 0;
  std::uint64_t crashes = 0;
  std::uint64_t repairs = 0;
  bool all_online = false;
};

FederationChaosResult run_federation_chaos(std::uint64_t seed) {
  City city{{.seed = seed, .spines = 2}};
  std::vector<std::unique_ptr<Neighborhood>> hoods;
  std::vector<std::unique_ptr<HomeCloud>> homes;
  for (int h = 0; h < 3; ++h) {
    NeighborhoodConfig nc;
    nc.seed = seed;
    nc.name = "hood-" + std::to_string(h);
    nc.spine_latency = milliseconds(1 + 3 * h);
    hoods.push_back(std::make_unique<Neighborhood>(city, nc));
    for (int i = 0; i < 2; ++i) {
      HomeCloudConfig cfg;
      cfg.home_name = "h" + std::to_string(h) + "-" + std::to_string(i);
      cfg.netbooks = 2;  // + desktop = 3 nodes
      cfg.kv.replication = 2;
      cfg.kv.ack_replication = true;
      cfg.start_stabilization = true;
      cfg.start_monitors = false;
      cfg.seed = seed + static_cast<std::uint64_t>(h * 2 + i);
      homes.push_back(std::make_unique<HomeCloud>(*hoods.back(), cfg));
    }
  }
  for (auto& hc : homes) hc->bootstrap();
  federation::GeoFederation fed{city, federation::GeoConfig{.replication = 2}};

  // Churn only: this soak isolates the replication/repair invariant, so
  // message/IO faults stay off and uplink flaps are parked.
  sim::FaultSpec spec;
  spec.mean_crash_interval = seconds(5);
  spec.mean_downtime = seconds(4);
  spec.mean_flap_interval = seconds(86400);
  spec.horizon = seconds(30);
  sim::FaultPlan& plan = city.enable_chaos(spec);

  FederationChaosResult out;

  city.run([](City& c, federation::GeoFederation& f, sim::FaultPlan& fp,
              FederationChaosResult& r) -> Task<> {
    auto& sim = c.sim();
    const std::vector<HomeCloud*> all = c.all_homes();

    // Publish a catalog round-robin across every home; unique sizes make
    // wrong-object reads detectable by size alone.
    std::map<std::string, Bytes> published;
    std::vector<std::string> names;
    for (int i = 0; i < 18; ++i) {
      HomeCloud& owner = *all[static_cast<std::size_t>(i) % all.size()];
      const std::string name = "fed-" + std::to_string(i) + ".jpg";
      const Bytes size = 32 * 1024 + static_cast<Bytes>(i) * 4096;
      (void)co_await owner.node(0).create_object(chaos_meta(name, size));
      auto stored = co_await owner.node(0).store_object(name);
      if (!stored.ok()) continue;
      auto pub = co_await f.publish(owner, owner.node(0), name);
      if (pub.ok()) {
        published.emplace(name, size);
        names.push_back(name);
      }
    }
    r.published = published.size();
    if (names.empty()) co_return;

    // Fetch loop under churn, with a repair sweep every ~5 s of loop time.
    for (int step = 0; step < 120; ++step) {
      co_await sim.delay(milliseconds(300));
      if (step % 16 == 15) {
        const std::size_t healed = co_await f.repair_scan();
        (void)healed;
      }
      HomeCloud& reader_home = *all[(static_cast<std::size_t>(step) * 7 + 3) % all.size()];
      VStoreNode* reader = nullptr;
      for (std::size_t j = 0; j < reader_home.node_count(); ++j) {
        if (reader_home.node(j).online()) {
          reader = &reader_home.node(j);
          break;
        }
      }
      if (reader == nullptr) continue;
      const std::string& name = names[(static_cast<std::size_t>(step) * 13) % names.size()];
      const std::size_t live_before = f.live_replicas(name);
      auto got = co_await f.fetch(reader_home, *reader, name);
      const std::size_t live_after = f.live_replicas(name);
      ++r.fetches;
      if (got.ok()) {
        if (got->size != published.at(name)) ++r.wrong;
      } else if (live_before >= 1 && live_after >= 1) {
        ++r.unreachable;
        r.unreachable_detail += name + ": " + std::string(to_string(got.code())) + "; ";
      }
    }

    // Settle: past the horizon, every node back, faults off, repair tail.
    while (sim.now() < fp.deadline()) co_await sim.delay(seconds(1));
    for (int i = 0; i < 60; ++i) {
      bool every = true;
      for (HomeCloud* h : all) {
        for (std::size_t j = 0; j < h->node_count(); ++j) {
          if (!h->node(j).online()) every = false;
        }
      }
      if (every) break;
      co_await sim.delay(seconds(1));
    }
    fp.disarm();
    co_await sim.delay(seconds(5));
    const std::size_t final_heal = co_await f.repair_scan();
    (void)final_heal;

    r.all_online = true;
    for (HomeCloud* h : all) {
      for (std::size_t j = 0; j < h->node_count(); ++j) {
        if (!h->node(j).online()) r.all_online = false;
      }
    }

    // Everyone is back: every published object must be reachable with its
    // exact size from an arbitrary far-away home.
    HomeCloud& verifier = *all.back();
    for (const auto& [name, size] : published) {
      if (f.live_replicas(name) == 0) {
        ++r.lost_after_settle;
        r.lost_detail += name + ": zero live replicas; ";
        continue;
      }
      auto got = co_await f.fetch(verifier, verifier.node(0), name);
      if (!got.ok()) {
        ++r.lost_after_settle;
        r.lost_detail += name + ": " + std::string(to_string(got.code())) + "; ";
      } else if (got->size != size) {
        ++r.lost_after_settle;
        r.lost_detail += name + ": wrong size; ";
      }
    }
  }(city, fed, plan, out));

  out.crashes = plan.stats().crashes;
  out.repairs = fed.stats().repairs;
  return out;
}

class FederationChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FederationChaosSoak, PublishedObjectsReachableWhileAnyReplicaLives) {
  const std::uint64_t seed = GetParam();
  const FederationChaosResult r = run_federation_chaos(seed);

  // The soak must have exercised the machinery: churn bit, the catalog
  // published, and the fetch loop ran.
  EXPECT_GT(r.crashes, 0u) << "seed " << seed;
  EXPECT_GE(r.published, 15u) << "seed " << seed;
  EXPECT_GT(r.fetches, 80u) << "seed " << seed;

  EXPECT_EQ(r.unreachable, 0)
      << "seed " << seed << ": fetch failed with a live replica [" << r.unreachable_detail << "]";
  EXPECT_EQ(r.wrong, 0u) << "seed " << seed << ": fetch returned wrong size";
  EXPECT_TRUE(r.all_online) << "seed " << seed << ": a crashed node never restarted";
  EXPECT_EQ(r.lost_after_settle, 0)
      << "seed " << seed << ": object unreachable after settle [" << r.lost_detail << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederationChaosSoak, ::testing::Values(9201, 9202, 9203));

}  // namespace
}  // namespace c4h::vstore
