// R3 fixture (good): sorted-snapshot traversal, plus an annotated loop whose
// result is provably order-insensitive.
namespace c4h {
struct CellTable {
  std::unordered_map<int, int> cells_;

  int emit_all() {
    int sent = 0;
    for (const int k : sorted_keys(cells_)) {  // sanctioned remedy
      sent += send(k, cells_.at(k));
    }
    return sent;
  }

  int checksum() const {
    int s = 0;
    // c4h-lint: allow(R3) — integer sum; accumulation order is irrelevant.
    for (const auto& [k, v] : cells_) s += v;
    return s;
  }
};
}  // namespace c4h
