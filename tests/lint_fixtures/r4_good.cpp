// R4 fixture (good): the Result is assigned, the task is awaited, and the one
// deliberate discard carries an allow annotation.
namespace c4h {
Result<void> flush_metadata();
sim::Task<Result<void>> replicate_all();

sim::Task<> tick() {
  auto r = flush_metadata();
  if (!r.ok()) co_return;
  (void)co_await replicate_all();
  // c4h-lint: allow(R4) — best-effort flush on shutdown; failure is benign.
  (void)flush_metadata();
}
}  // namespace c4h
