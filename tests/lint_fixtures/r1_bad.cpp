// R1 fixture (bad): co_await of a temporary task in a loop header and in a
// compound subexpression. Token-level fixture — it only has to parse.
namespace c4h {
sim::Task<bool> poll_ready();
sim::Task<int> sample();

sim::Task<> driver() {
  while (co_await poll_ready()) {       // R1: temporary awaited in loop header
    const int v = co_await sample() + 1;  // R1: compound subexpression
    (void)v;
  }
}
}  // namespace c4h
