// R2 fixture (bad): wall-clock and ambient-entropy sources.
namespace c4h {
double wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();  // R2: wall clock
  (void)t0;
  return static_cast<double>(time(nullptr));  // R2: time() call
}

int noisy_roll() {
  return rand() % 6;  // R2: ambient entropy
}
}  // namespace c4h
