// R5 fixture (bad): no include-guard pragma, and no c4h namespace. (Wording
// matters: the guard check scans raw lines, so this comment must not spell
// the directive out.)
struct Orphan {
  int x = 0;
};
