// R3 fixture (bad): traversing a hash table directly, in both range-for and
// iterator form. The member declaration below feeds the linter's name index.
namespace c4h {
struct CellTable {
  std::unordered_map<int, int> cells_;

  int emit_all() {
    int sent = 0;
    for (const auto& [k, v] : cells_) {  // R3: range-for over hash table
      sent += send(k, v);
    }
    for (auto it = cells_.begin(); it != cells_.end(); ++it) {  // R3: iterator
      sent += it->second;
    }
    return sent;
  }
};
}  // namespace c4h
