// R4 fixture (bad): a swallowed Result and an unannotated (void) launder.
namespace c4h {
Result<void> flush_metadata();
sim::Task<Result<void>> replicate_all();

void tick() {
  flush_metadata();       // R4: error silently dropped
  (void)replicate_all();  // R4: laundered but not annotated — lazy task leaks
}
}  // namespace c4h
