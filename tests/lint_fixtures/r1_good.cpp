// R1 fixture (good): every co_await binds to a named variable before the
// value participates in control flow or arithmetic.
namespace c4h {
sim::Task<bool> poll_ready();
sim::Task<int> sample();

sim::Task<> driver() {
  for (;;) {
    const bool ready = co_await poll_ready();
    if (!ready) break;
    const int v = co_await sample();
    const int shifted = v + 1;
    (void)shifted;
  }
}
}  // namespace c4h
