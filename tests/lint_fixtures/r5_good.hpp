// R5 fixture (good): include guard and project namespace both present.
#pragma once

namespace c4h {
struct WellFormed {
  int x = 0;
};
}  // namespace c4h
