// R2 fixture (good): time comes from the virtual clock, randomness from the
// seeded Rng, and a member spelled time() is not mistaken for ::time().
namespace c4h {
double sim_seconds(const sim::Simulation& sim) {
  return to_seconds(sim.now());
}

int seeded_roll(Rng& rng) {
  return rng.uniform_int(1, 6);
}

double elapsed(const Stopwatch& sw) {
  return sw.time();  // member access, not the libc call
}
}  // namespace c4h
