// End-to-end tests for tools/c4h-lint: each rule R1–R5 has a checked-in bad
// fixture (must produce exactly the expected diagnostics and a non-zero exit)
// and a good fixture (must lint clean), plus tests for suppression comments,
// --rules filtering, the --fixable summary, and the property the whole PR
// exists for — the real source tree lints clean.
//
// The linter binary and fixture directory are injected by CMake as compile
// definitions (C4H_LINT_BIN, C4H_LINT_FIXDIR, C4H_SOURCE_DIR).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code;
  std::string output;  // stdout + stderr interleaved

  bool contains(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }
  // Number of times `needle` occurs in the output.
  int count(const std::string& needle) const {
    int n = 0;
    for (std::size_t pos = output.find(needle); pos != std::string::npos;
         pos = output.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  }
};

// Runs the linter with `args` (already shell-quoted by construction: fixture
// names and flags only) and captures its combined output and exit status.
LintRun lint(const std::string& args) {
  const std::string cmd = std::string(C4H_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintRun run{-1, {}};
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string fixture(const std::string& name) {
  return std::string(C4H_LINT_FIXDIR) + "/" + name;
}

}  // namespace

TEST(Lint, R1BadFlagsLoopHeaderAndCompoundAwaits) {
  const LintRun r = lint(fixture("r1_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("r1_bad.cpp:8: [R1] co_await of a temporary task inside a loop header"))
      << r.output;
  EXPECT_TRUE(r.contains(
      "r1_bad.cpp:9: [R1] co_await of a temporary task inside a compound subexpression"))
      << r.output;
  EXPECT_EQ(r.count("[R1]"), 2) << r.output;
  EXPECT_TRUE(r.contains("2 unsuppressed diagnostic(s)")) << r.output;
}

TEST(Lint, R1GoodNamedBindingsLintClean) {
  const LintRun r = lint(fixture("r1_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.contains("0 unsuppressed diagnostic(s)")) << r.output;
}

TEST(Lint, R2BadFlagsWallClockAndEntropy) {
  const LintRun r = lint(fixture("r2_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("r2_bad.cpp:4: [R2] wall-clock/entropy source 'steady_clock'"))
      << r.output;
  EXPECT_TRUE(r.contains("r2_bad.cpp:6: [R2] call to 'time()'")) << r.output;
  EXPECT_TRUE(r.contains("r2_bad.cpp:10: [R2] call to 'rand()'")) << r.output;
  EXPECT_EQ(r.count("[R2]"), 3) << r.output;
}

TEST(Lint, R2GoodVirtualClockAndMemberTimeLintClean) {
  const LintRun r = lint(fixture("r2_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, R3BadFlagsRangeForAndIteratorTraversal) {
  const LintRun r = lint(fixture("r3_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("r3_bad.cpp:9: [R3] range-for over unordered container 'cells_'"))
      << r.output;
  EXPECT_TRUE(r.contains("r3_bad.cpp:12: [R3] iterator loop over unordered container 'cells_'"))
      << r.output;
  EXPECT_EQ(r.count("[R3]"), 2) << r.output;
}

TEST(Lint, R3GoodSortedSnapshotAndAnnotationLintClean) {
  // Covers both remedies: sorted_keys() wrapping and a comment-only
  // allow(R3) line covering the statement beneath it.
  const LintRun r = lint(fixture("r3_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, R4BadFlagsDiscardAndUnannotatedLaunder) {
  const LintRun r = lint(fixture("r4_bad.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains(
      "r4_bad.cpp:7: [R4] call to 'flush_metadata' discards its Result/Task return value"))
      << r.output;
  EXPECT_TRUE(r.contains(
      "r4_bad.cpp:8: [R4] (void)-laundered Result/Task call 'replicate_all' lacks an allow"))
      << r.output;
  EXPECT_EQ(r.count("[R4]"), 2) << r.output;
}

TEST(Lint, R4GoodAssignedAwaitedAndAnnotatedLintClean) {
  const LintRun r = lint(fixture("r4_good.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, R5BadFlagsMissingPragmaAndNamespace) {
  const LintRun r = lint(fixture("r5_bad.hpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("r5_bad.hpp:1: [R5] header is missing #pragma once")) << r.output;
  EXPECT_TRUE(r.contains("r5_bad.hpp:1: [R5] header does not declare anything in namespace c4h"))
      << r.output;
  EXPECT_EQ(r.count("[R5]"), 2) << r.output;
}

TEST(Lint, R5GoodHeaderHygieneLintClean) {
  const LintRun r = lint(fixture("r5_good.hpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, RulesFilterRestrictsToSelectedRules) {
  // r1_bad has only R1 violations, so asking for R2 alone must come up empty.
  const LintRun r = lint("--rules=R2 " + fixture("r1_bad.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const LintRun r1 = lint("--rules=R1 " + fixture("r1_bad.cpp"));
  EXPECT_EQ(r1.exit_code, 1) << r1.output;
  EXPECT_EQ(r1.count("[R1]"), 2) << r1.output;
}

TEST(Lint, FixableSummaryCountsPerRule) {
  const LintRun r = lint("--fixable " + fixture("r5_bad.hpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("-- fixable summary --")) << r.output;
  EXPECT_TRUE(r.contains("R5: 2 diagnostic(s)")) << r.output;
}

TEST(Lint, UnreadablePathIsAUsageError) {
  const LintRun r = lint(fixture("does_not_exist.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Lint, SourceTreeLintsClean) {
  // The contract this PR establishes: src/, tests/, and bench/ carry no
  // unsuppressed diagnostics. CI enforces the same invariant.
  const std::string root(C4H_SOURCE_DIR);
  const LintRun r = lint(root + "/src " + root + "/tests " + root + "/bench");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.contains("0 unsuppressed diagnostic(s)")) << r.output;
}
