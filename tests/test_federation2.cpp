// City-scale federation (ROADMAP item 2, DESIGN.md §12): the leaf/spine
// City world, geo-aware replica placement and selection, the four fetch
// cost tiers, churn repair, and same-seed determinism.
#include <gtest/gtest.h>

#include "src/federation/geo_federation.hpp"

namespace c4h::federation {
namespace {

using sim::Task;
using vstore::City;
using vstore::HomeCloud;
using vstore::HomeCloudConfig;
using vstore::Neighborhood;
using vstore::ObjectMeta;

constexpr int kHoods = 3;
constexpr int kHomesPerHood = 2;

// 3 neighborhoods × 2 homes × 3 nodes, geo-spread spine latencies
// (1/4/7 ms), replication degree 2.
struct CityRig {
  City city{{.seed = 7, .spines = 2}};
  std::vector<std::unique_ptr<Neighborhood>> hoods;
  std::vector<std::unique_ptr<HomeCloud>> homes;  // home h*2+i = hood h, slot i
  std::unique_ptr<GeoFederation> fed;

  explicit CityRig(std::uint64_t seed = 7) : city{{.seed = seed, .spines = 2}} {
    for (int h = 0; h < kHoods; ++h) {
      vstore::NeighborhoodConfig nc;
      nc.seed = seed;
      nc.name = "hood-" + std::to_string(h);
      nc.spine_latency = milliseconds(1 + 3 * h);
      hoods.push_back(std::make_unique<Neighborhood>(city, nc));
      for (int i = 0; i < kHomesPerHood; ++i) {
        HomeCloudConfig cfg;
        cfg.home_name = "h" + std::to_string(h) + "-" + std::to_string(i);
        cfg.netbooks = 2;
        cfg.start_monitors = false;
        cfg.wan_rate_jitter = 0.0;
        cfg.wan_latency_jitter = 0.0;
        cfg.seed = seed + static_cast<std::uint64_t>(h * kHomesPerHood + i);
        homes.push_back(std::make_unique<HomeCloud>(*hoods[static_cast<std::size_t>(h)], cfg));
      }
    }
    for (auto& hc : homes) hc->bootstrap();
    fed = std::make_unique<GeoFederation>(city, GeoConfig{.replication = 2});
  }

  HomeCloud& home(int hood, int slot) {
    return *homes[static_cast<std::size_t>(hood * kHomesPerHood + slot)];
  }

  Task<> store_in(HomeCloud& hc, const std::string& name, Bytes size, bool to_cloud = false) {
    ObjectMeta m;
    m.name = name;
    m.type = "jpg";
    m.size = size;
    (void)co_await hc.node(0).create_object(m);
    vstore::StoreOptions opts;
    if (to_cloud) opts.policy.fallback = vstore::StoreTarget::remote_cloud;
    auto s = co_await hc.node(0).store_object(name, opts);
    EXPECT_TRUE(s.ok());
  }

  void offline_home(HomeCloud& hc, bool online) {
    for (std::size_t i = 0; i < hc.node_count(); ++i) hc.node(i).host().set_online(online);
  }
};

TEST(CityWorld, SharedClockNetworkAndCloud) {
  CityRig rig;
  EXPECT_EQ(rig.homes.size(), static_cast<std::size_t>(kHoods * kHomesPerHood));
  for (auto& hc : rig.homes) {
    EXPECT_EQ(&hc->sim(), &rig.city.sim());
    EXPECT_EQ(&hc->network(), &rig.city.network());
    EXPECT_EQ(&hc->s3(), &rig.city.s3(hc->config().transport));
  }
  // all_homes interleaves neighborhoods: h0-0, h1-0, h2-0, h0-1, ...
  const std::vector<HomeCloud*> all = rig.city.all_homes();
  ASSERT_EQ(all.size(), rig.homes.size());
  EXPECT_EQ(all[0]->config().home_name, "h0-0");
  EXPECT_EQ(all[1]->config().home_name, "h1-0");
  EXPECT_EQ(all[2]->config().home_name, "h2-0");
  EXPECT_EQ(all[3]->config().home_name, "h0-1");
}

TEST(CityWorld, SpineLatencyIsGeoDistance) {
  CityRig rig;
  // Routed leaf→spine→leaf: latency(a,b) = spine_latency(a)+spine_latency(b).
  const Duration d01 = rig.city.site_latency(0, 1);
  const Duration d02 = rig.city.site_latency(0, 2);
  const Duration d12 = rig.city.site_latency(1, 2);
  EXPECT_EQ(rig.city.site_latency(1, 0), d01);  // symmetric
  EXPECT_LT(d01, d02);
  EXPECT_LT(d02, d12);
  EXPECT_EQ(rig.city.site_latency(0, 0), Duration::zero());
}

TEST(GeoFederation, PublishPlacesReplicasInDistinctNeighborhoods) {
  CityRig rig;
  rig.city.run([](CityRig& r) -> Task<> {
    co_await r.store_in(r.home(0, 0), "city/a.jpg", 1_MB);
    auto pub = co_await r.fed->publish(r.home(0, 0), r.home(0, 0).node(0), "city/a.jpg");
    EXPECT_TRUE(pub.ok());
  }(rig));
  EXPECT_EQ(rig.fed->directory_size(), 1u);
  EXPECT_EQ(rig.fed->stats().published, 1u);
  // Degree 2: the owner's copy plus one placed replica.
  EXPECT_EQ(rig.fed->stats().replicas_placed, 1u);
  EXPECT_EQ(rig.fed->live_replicas("city/a.jpg"), 2u);
  // Nearest distinct neighborhood to hood 0 is hood 1: some node there now
  // holds the bytes in its voluntary bin.
  bool hood1_has_copy = false;
  for (int i = 0; i < kHomesPerHood; ++i) {
    HomeCloud& hc = rig.home(1, i);
    for (std::size_t n = 0; n < hc.node_count(); ++n) {
      if (hc.node(n).fs().contains("city/a.jpg")) hood1_has_copy = true;
    }
  }
  EXPECT_TRUE(hood1_has_copy);
}

TEST(GeoFederation, FetchClassifiesAllFourPaths) {
  CityRig rig;
  rig.city.run([](CityRig& r) -> Task<> {
    co_await r.store_in(r.home(0, 0), "city/p.jpg", 1_MB);
    (void)co_await r.fed->publish(r.home(0, 0), r.home(0, 0).node(0), "city/p.jpg");
    co_await r.store_in(r.home(0, 0), "city/s3.jpg", 1_MB, /*to_cloud=*/true);
    (void)co_await r.fed->publish(r.home(0, 0), r.home(0, 0).node(0), "city/s3.jpg");

    // Own home: local.
    auto local = co_await r.fed->fetch(r.home(0, 0), r.home(0, 0).node(1), "city/p.jpg");
    EXPECT_TRUE(local.ok());
    if (!local.ok()) co_return;  // ASSERT_* returns void — illegal in a coroutine
    EXPECT_EQ(local->path, FetchPath::local);
    EXPECT_LT(to_seconds(local->transfer), 1.0);  // stayed on the LAN

    // Other home, same neighborhood: neighborhood tier.
    auto nb = co_await r.fed->fetch(r.home(0, 1), r.home(0, 1).node(0), "city/p.jpg");
    EXPECT_TRUE(nb.ok());
    if (!nb.ok()) co_return;
    EXPECT_EQ(nb->path, FetchPath::neighborhood);
    EXPECT_EQ(nb->source_hood, 0u);

    // Far neighborhood (no replica landed there): wide-area, served by the
    // geographically nearest live copy — hood 0 (1 ms) beats hood 1 (4 ms)
    // from hood 2's vantage point.
    auto wa = co_await r.fed->fetch(r.home(2, 0), r.home(2, 0).node(0), "city/p.jpg");
    EXPECT_TRUE(wa.ok());
    if (!wa.ok()) co_return;
    EXPECT_EQ(wa->path, FetchPath::wide_area);
    EXPECT_EQ(wa->source_hood, 0u);

    // Cloud-resident object: served from shared S3.
    auto cl = co_await r.fed->fetch(r.home(1, 0), r.home(1, 0).node(0), "city/s3.jpg");
    EXPECT_TRUE(cl.ok());
    if (!cl.ok()) co_return;
    EXPECT_EQ(cl->path, FetchPath::cloud);
  }(rig));
  const GeoStats& s = rig.fed->stats();
  EXPECT_EQ(s.fetches[static_cast<std::size_t>(FetchPath::local)], 1u);
  EXPECT_EQ(s.fetches[static_cast<std::size_t>(FetchPath::neighborhood)], 1u);
  EXPECT_EQ(s.fetches[static_cast<std::size_t>(FetchPath::wide_area)], 1u);
  EXPECT_EQ(s.fetches[static_cast<std::size_t>(FetchPath::cloud)], 1u);
  EXPECT_EQ(s.fetch_errors, 0u);
}

TEST(GeoFederation, RepairRestoresReplicationDegree) {
  CityRig rig;
  rig.city.run([](CityRig& r) -> Task<> {
    co_await r.store_in(r.home(0, 0), "city/heal.jpg", 512_KB);
    (void)co_await r.fed->publish(r.home(0, 0), r.home(0, 0).node(0), "city/heal.jpg");
    EXPECT_EQ(r.fed->live_replicas("city/heal.jpg"), 2u);

    // The owner's whole home churns out: one live copy left (hood 1).
    r.offline_home(r.home(0, 0), false);
    r.offline_home(r.home(0, 1), false);
    EXPECT_EQ(r.fed->live_replicas("city/heal.jpg"), 1u);

    const std::size_t healed = co_await r.fed->repair_scan();
    EXPECT_EQ(healed, 1u);
    EXPECT_EQ(r.fed->live_replicas("city/heal.jpg"), 2u);

    // The new copy went to a neighborhood not already hosting one (hood 2),
    // and the object still fetches from there.
    auto got = co_await r.fed->fetch(r.home(2, 0), r.home(2, 0).node(0), "city/heal.jpg");
    EXPECT_TRUE(got.ok());
    if (!got.ok()) co_return;
    EXPECT_EQ(got->size, 512_KB);
  }(rig));
  EXPECT_EQ(rig.fed->stats().repairs, 1u);
  EXPECT_EQ(rig.fed->stats().repair_failures, 0u);
}

TEST(GeoFederation, UnavailableOnlyWhenEveryReplicaIsDead) {
  CityRig rig;
  rig.city.run([](CityRig& r) -> Task<> {
    co_await r.store_in(r.home(0, 0), "city/gone.jpg", 256_KB);
    (void)co_await r.fed->publish(r.home(0, 0), r.home(0, 0).node(0), "city/gone.jpg");

    // Kill every home in hoods 0 and 1 — owner copy and placed replica both.
    for (int i = 0; i < kHomesPerHood; ++i) {
      r.offline_home(r.home(0, i), false);
      r.offline_home(r.home(1, i), false);
    }
    EXPECT_EQ(r.fed->live_replicas("city/gone.jpg"), 0u);
    auto got = co_await r.fed->fetch(r.home(2, 0), r.home(2, 0).node(0), "city/gone.jpg");
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code(), Errc::unavailable);

    // A hosting node returning (its disk survived) revives the copy with no
    // repair needed.
    r.offline_home(r.home(0, 0), true);
    EXPECT_GE(r.fed->live_replicas("city/gone.jpg"), 1u);
    auto back = co_await r.fed->fetch(r.home(2, 0), r.home(2, 0).node(0), "city/gone.jpg");
    EXPECT_TRUE(back.ok());
  }(rig));
}

TEST(GeoFederation, OwnershipGuardsHoldCityWide) {
  CityRig rig;
  rig.city.run([](CityRig& r) -> Task<> {
    co_await r.store_in(r.home(0, 0), "city/own.jpg", 256_KB);
    (void)co_await r.fed->publish(r.home(0, 0), r.home(0, 0).node(0), "city/own.jpg");

    // Another home storing the same name cannot republish or withdraw it.
    co_await r.store_in(r.home(1, 0), "city/own.jpg", 256_KB);
    auto steal_pub = co_await r.fed->publish(r.home(1, 0), r.home(1, 0).node(0), "city/own.jpg");
    EXPECT_FALSE(steal_pub.ok());
    EXPECT_EQ(steal_pub.code(), Errc::permission_denied);
    auto steal_wd = co_await r.fed->withdraw(r.home(1, 0), r.home(1, 0).node(0), "city/own.jpg");
    EXPECT_FALSE(steal_wd.ok());

    auto mine = co_await r.fed->withdraw(r.home(0, 0), r.home(0, 0).node(0), "city/own.jpg");
    EXPECT_TRUE(mine.ok());
    EXPECT_EQ(r.fed->directory_size(), 0u);
  }(rig));
}

TEST(GeoFederation, SameSeedRunsAreIdentical) {
  auto episode = [](CityRig& rig) {
    rig.city.run([](CityRig& r) -> Task<> {
      for (int i = 0; i < 4; ++i) {
        HomeCloud& owner = r.home(i % kHoods, 0);
        const std::string name = "city/obj-" + std::to_string(i);
        co_await r.store_in(owner, name, 256_KB + static_cast<Bytes>(i) * 64_KB);
        (void)co_await r.fed->publish(owner, owner.node(0), name);
      }
      for (int i = 0; i < 4; ++i) {
        HomeCloud& reader = r.home((i + 1) % kHoods, 1);
        auto got = co_await r.fed->fetch(reader, reader.node(0),
                                         "city/obj-" + std::to_string(i));
        EXPECT_TRUE(got.ok());
      }
      const std::size_t healed = co_await r.fed->repair_scan();
      EXPECT_EQ(healed, 0u);
    }(rig));
  };
  CityRig a{11};
  CityRig b{11};
  episode(a);
  episode(b);
  EXPECT_EQ(a.fed->fingerprint(), b.fed->fingerprint());
  EXPECT_EQ(a.fed->stats().fetches, b.fed->stats().fetches);
  EXPECT_EQ(a.city.sim().now(), b.city.sim().now());
  EXPECT_FALSE(a.fed->fingerprint().empty());

  // Pinned history guard: the constants below were captured from this exact
  // seed-11 episode *before* the simulator-core rewrite (slab event arena,
  // lazy route resolution, incremental fair-share plumbing). Run-to-run
  // identity (above) would still pass if the engine changed behavior
  // deterministically; this cross-version pin is what actually proves the
  // fast-path work preserved the simulated history byte for byte. Update
  // the constants only for an intended model change, and say why in the
  // commit.
  EXPECT_EQ(a.city.sim().now().count(), 6277977401LL);
  EXPECT_EQ(a.fed->stats().fetches[0] + a.fed->stats().fetches[1] + a.fed->stats().fetches[2] +
                a.fed->stats().fetches[3],
            4u);
  EXPECT_EQ(a.fed->fingerprint(),
            "0:city/obj-1:327680:1:|1/h1-0/7469f5c6e7|0/h0-0/888acbca86;"
            "1:city/obj-0:262144:0:|0/h0-0/441897ae6d|1/h1-0/67b120f4a2;"
            "1:city/obj-2:393216:2:|2/h2-0/f95bda132c|0/h0-1/14d96c40ee;"
            "1:city/obj-3:458752:0:|0/h0-0/441897ae6d|1/h1-1/221a859c41;");
}

}  // namespace
}  // namespace c4h::federation
