// Red-black tree: invariant checks and differential testing against
// std::map under randomized insert/erase workloads.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rbtree.hpp"
#include "src/common/rng.hpp"

namespace c4h {
namespace {

TEST(RbTree, EmptyTree) {
  RbTree<int, int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.min(), nullptr);
  EXPECT_EQ(t.max(), nullptr);
  EXPECT_GE(t.validate(), 0);
}

TEST(RbTree, InsertFindErase) {
  RbTree<int, std::string> t;
  EXPECT_TRUE(t.insert(5, "five").second);
  EXPECT_TRUE(t.insert(3, "three").second);
  EXPECT_TRUE(t.insert(8, "eight").second);
  EXPECT_FALSE(t.insert(5, "FIVE").second);  // assign
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(t.find(5)->value, "FIVE");
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_GE(t.validate(), 0);
}

TEST(RbTree, OrderedIteration) {
  RbTree<int, int> t;
  for (int k : {7, 1, 9, 3, 5, 8, 2, 6, 4}) t.insert(k, k * 10);
  std::vector<int> keys;
  t.for_each([&](int k, int) { keys.push_back(k); });
  const std::vector<int> want{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(keys, want);
  EXPECT_EQ(t.min()->key, 1);
  EXPECT_EQ(t.max()->key, 9);
}

TEST(RbTree, NextPrevTraversal) {
  RbTree<int, int> t;
  for (int k = 0; k < 20; k += 2) t.insert(k, k);
  auto* n = t.min();
  int expect = 0;
  while (n != nullptr) {
    EXPECT_EQ(n->key, expect);
    expect += 2;
    n = RbTree<int, int>::next(n);
  }
  n = t.max();
  expect = 18;
  while (n != nullptr) {
    EXPECT_EQ(n->key, expect);
    expect -= 2;
    n = RbTree<int, int>::prev(n);
  }
}

TEST(RbTree, LowerBound) {
  RbTree<int, int> t;
  for (int k : {10, 20, 30, 40}) t.insert(k, k);
  EXPECT_EQ(t.lower_bound(5)->key, 10);
  EXPECT_EQ(t.lower_bound(10)->key, 10);
  EXPECT_EQ(t.lower_bound(11)->key, 20);
  EXPECT_EQ(t.lower_bound(40)->key, 40);
  EXPECT_EQ(t.lower_bound(41), nullptr);
}

TEST(RbTree, AscendingInsertStaysBalanced) {
  RbTree<int, int> t;
  for (int k = 0; k < 4096; ++k) {
    t.insert(k, k);
    if (k % 256 == 0) EXPECT_GE(t.validate(), 0) << "at " << k;
  }
  // Black height of a balanced tree with 4096 nodes is small.
  const int bh = t.validate();
  EXPECT_GE(bh, 1);
  EXPECT_LE(bh, 13);
}

TEST(RbTree, MoveSemantics) {
  RbTree<int, int> a;
  a.insert(1, 10);
  a.insert(2, 20);
  RbTree<int, int> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.find(2)->value, 20);
}

class RbTreeRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RbTreeRandomTest, DifferentialAgainstStdMap) {
  Rng rng{GetParam()};
  RbTree<std::uint64_t, std::uint64_t> t;
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.below(500);  // force collisions & reuse
    if (rng.chance(0.6)) {
      const std::uint64_t val = rng.next();
      const bool inserted = t.insert(key, val).second;
      EXPECT_EQ(inserted, !ref.contains(key));
      ref[key] = val;
    } else {
      EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
    }
    if (step % 500 == 0) {
      ASSERT_GE(t.validate(), 0) << "red-black invariant broken at step " << step;
    }
  }
  ASSERT_GE(t.validate(), 0);
  ASSERT_EQ(t.size(), ref.size());
  // c4h-lint: allow(R3) — `ref` here is a std::map (in-order oracle); the
  // linter's name index collides with an unordered `ref` in another test.
  auto it = ref.begin();
  bool all_match = true;
  t.for_each([&](std::uint64_t k, std::uint64_t v) {
    if (it == ref.end() || it->first != k || it->second != v) all_match = false;
    if (it != ref.end()) ++it;
  });
  EXPECT_TRUE(all_match);
  EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace c4h
