// Adaptation to changing network conditions (§VII future work (iv)):
// dynamic link capacity, the WAN throughput estimator, and the adaptive
// storage policy reacting to a brown-out.
#include <gtest/gtest.h>

#include "src/vstore/adaptive.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

// --- Dynamic link capacity in the flow engine ---

TEST(DynamicCapacity, InFlightFlowSlowsWhenLinkDegrades) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node();
  const auto b = topo.add_node();
  const auto [fwd, rev] = topo.add_duplex(a, b, 10.0 * 1000 * 1000, microseconds(100));
  (void)rev;
  net::Network net{sim, std::move(topo)};
  net.set_hop_processing(Duration::zero());

  Duration took{};
  sim.spawn([](sim::Simulation& s, net::Network& n, net::NetNodeId src, net::NetNodeId dst,
               Duration& out) -> Task<> {
    const auto t0 = s.now();
    co_await n.transfer(src, dst, 10 * 1000 * 1000, {});
    out = s.now() - t0;
  }(sim, net, a, b, took));

  // Halve the capacity after 0.5 s (5 MB already moved).
  sim.schedule(milliseconds(500), [&net, fwd = fwd] { net.set_link_capacity(fwd, 5.0 * 1000 * 1000); });
  sim.run();
  // 0.5 s at 10 MB/s + remaining 5 MB at 5 MB/s = 1.5 s.
  EXPECT_NEAR(to_seconds(took), 1.5, 0.02);
}

TEST(DynamicCapacity, FlowSpeedsUpWhenLinkRecovers) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node();
  const auto b = topo.add_node();
  const auto [fwd, rev] = topo.add_duplex(a, b, 5.0 * 1000 * 1000, microseconds(100));
  (void)rev;
  net::Network net{sim, std::move(topo)};
  net.set_hop_processing(Duration::zero());

  Duration took{};
  sim.spawn([](sim::Simulation& s, net::Network& n, net::NetNodeId src, net::NetNodeId dst,
               Duration& out) -> Task<> {
    const auto t0 = s.now();
    co_await n.transfer(src, dst, 10 * 1000 * 1000, {});
    out = s.now() - t0;
  }(sim, net, a, b, took));
  sim.schedule(seconds(1), [&net, fwd = fwd] { net.set_link_capacity(fwd, 10.0 * 1000 * 1000); });
  sim.run();
  // 1 s at 5 MB/s + 5 MB at 10 MB/s = 1.5 s.
  EXPECT_NEAR(to_seconds(took), 1.5, 0.02);
}

// --- WAN estimator ---

TEST(WanEstimator, ConvergesToObservedRate) {
  WanEstimator est{0.3, mib_per_sec(1.0), mib_per_sec(1.45)};
  for (int i = 0; i < 30; ++i) {
    est.observe_upload(2_MB, from_seconds(to_mib(2_MB) / 0.25));  // 0.25 MiB/s observed
  }
  EXPECT_NEAR(to_mib_per_sec(est.upload_estimate()), 0.25, 0.02);
  // Uploads-only traffic must not inflate the download stream's count: the
  // two directions track independent EWMAs AND independent sample counts.
  EXPECT_EQ(est.upload_observations(), 30u);
  EXPECT_EQ(est.download_observations(), 0u);
  EXPECT_EQ(est.observations(), 30u);
  // Download estimate untouched.
  EXPECT_NEAR(to_mib_per_sec(est.download_estimate()), 1.45, 1e-9);
}

TEST(WanEstimator, CountsDirectionsIndependently) {
  WanEstimator est;
  est.observe_upload(1_MB, seconds(1));
  est.observe_download(1_MB, seconds(1));
  est.observe_download(2_MB, seconds(1));
  EXPECT_EQ(est.upload_observations(), 1u);
  EXPECT_EQ(est.download_observations(), 2u);
  EXPECT_EQ(est.observations(), 3u);
}

TEST(WanEstimator, IgnoresDegenerateSamples) {
  WanEstimator est;
  const Rate up_before = est.upload_estimate();
  const Rate down_before = est.download_estimate();
  // Zero-byte and zero-duration transfers carry no rate information; both
  // directions must drop them from estimate AND count.
  est.observe_upload(0, seconds(1));
  est.observe_upload(1_MB, Duration::zero());
  est.observe_download(0, seconds(1));
  est.observe_download(1_MB, Duration::zero());
  EXPECT_EQ(est.upload_estimate(), up_before);
  EXPECT_EQ(est.download_estimate(), down_before);
  EXPECT_EQ(est.upload_observations(), 0u);
  EXPECT_EQ(est.download_observations(), 0u);
  EXPECT_EQ(est.observations(), 0u);
}

TEST(AdaptivePolicy, ThresholdTracksEstimate) {
  WanEstimator est{0.5, mib_per_sec(1.0), mib_per_sec(1.45)};
  AdaptiveStoragePolicy pol{est, seconds(20)};
  const Bytes before = pol.cloud_threshold();
  EXPECT_NEAR(to_mib(before), 20.0, 0.5);  // 1 MiB/s × 20 s

  // Uplink collapses to ~0.1 MiB/s.
  for (int i = 0; i < 20; ++i) {
    est.observe_upload(1_MB, from_seconds(10.0));
  }
  EXPECT_LT(pol.cloud_threshold(), before / 5);

  ObjectMeta big;
  big.name = "big";
  big.size = 10_MB;
  EXPECT_EQ(pol.current().target_for(big), StoreTarget::local);
  ObjectMeta tiny;
  tiny.name = "tiny";
  tiny.size = 512_KB;
  EXPECT_EQ(pol.current().target_for(tiny), StoreTarget::remote_cloud);
}

// --- End-to-end: brown-out makes the adaptive policy keep data home ---

TEST(AdaptiveEndToEnd, BrownOutRedirectsStoresHome) {
  HomeCloudConfig cfg;
  cfg.netbooks = 3;
  cfg.start_monitors = false;
  cfg.wan_rate_jitter = 0.0;  // deterministic conditions
  cfg.wan_latency_jitter = 0.0;
  HomeCloud hc{cfg};
  hc.bootstrap();

  int went_cloud_before = 0, went_cloud_after = 0;
  bool last_went_cloud = true;
  hc.run([&](HomeCloud& h) -> Task<> {
    AdaptiveStoragePolicy adaptive{h.wan_estimator(), seconds(20)};

    auto store_with_adaptive = [&](const std::string& name) -> Task<bool> {
      ObjectMeta m;
      m.name = name;
      m.type = "avi";
      m.size = 8_MB;
      (void)co_await h.node(0).create_object(m);
      StoreOptions opts;
      opts.policy = adaptive.current();
      auto s = co_await h.node(0).store_object(name, opts);
      co_return s.ok() && s->location.is_cloud();
    };

    // Healthy WAN: 8 MB uploads fit the 20 s budget at ~1 MiB/s.
    for (int i = 0; i < 3; ++i) {
      went_cloud_before += co_await store_with_adaptive("pre/" + std::to_string(i));
    }

    // Brown-out: the uplink collapses to 0.1 MiB/s. The EWMA needs a few
    // painful uploads to learn the new rate (that inertia is the point: one
    // slow transfer shouldn't flip the policy), after which 8 MB objects
    // stay home.
    h.set_wan_rates(mib_per_sec(0.1), mib_per_sec(0.2));
    for (int i = 0; i < 8; ++i) {
      const bool cloud = co_await store_with_adaptive("post/" + std::to_string(i));
      went_cloud_after += cloud;
      last_went_cloud = cloud;
    }
  }(hc));

  EXPECT_EQ(went_cloud_before, 3) << "healthy WAN should accept 8 MB uploads";
  EXPECT_LE(went_cloud_after, 5) << "the estimator must converge within a few lessons";
  EXPECT_FALSE(last_went_cloud) << "once converged, stores must stay home";
  EXPECT_LT(to_mib_per_sec(hc.wan_estimator().upload_estimate()), 0.5)
      << "estimate must approach the degraded rate";
  EXPECT_GT(hc.wan_estimator().observations(), 0u);
}

}  // namespace
}  // namespace c4h::vstore
