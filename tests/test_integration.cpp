// End-to-end integration: full home cloud + remote cloud under realistic
// workloads, churn, and concurrent clients.
#include <gtest/gtest.h>

#include "src/trace/edonkey.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

ObjectMeta meta_for(const trace::TraceFile& f) {
  ObjectMeta m;
  m.name = f.name;
  m.type = f.type;
  m.size = f.size;
  if (f.is_private()) m.tags.push_back("private");
  return m;
}

TEST(Integration, TraceWorkloadRunsCleanly) {
  HomeCloudConfig cfg;
  cfg.netbooks = 5;
  HomeCloud hc{cfg};
  hc.bootstrap();

  trace::TraceConfig tcfg;
  tcfg.file_count = 60;
  tcfg.op_count = 150;
  tcfg.fixed_range = trace::BucketRange{1_MB, 5_MB};  // keep the test quick
  const auto w = trace::generate(tcfg);

  int failures = 0;
  hc.run([&w, &failures](HomeCloud& h) -> Task<> {
    for (const auto& op : w.ops) {
      auto& node = h.node(static_cast<std::size_t>(op.client) % h.node_count());
      const auto& f = w.files[op.file];
      if (op.kind == trace::OpKind::store) {
        (void)co_await node.create_object(meta_for(f));
        auto r = co_await node.store_object(f.name);
        failures += !r.ok();
      } else {
        auto r = co_await node.fetch_object(f.name);
        failures += !r.ok();
      }
    }
  }(hc));
  EXPECT_EQ(failures, 0);
  EXPECT_GT(hc.kv().total_entries(), 0u);
}

TEST(Integration, ConcurrentClientsAllComplete) {
  HomeCloudConfig cfg;
  cfg.netbooks = 5;
  HomeCloud hc{cfg};
  hc.bootstrap();

  // Each node's client stores then fetches its own set concurrently.
  int completed = 0;
  auto client_task = [](HomeCloud& h, std::size_t client, int& done) -> Task<> {
    auto& node = h.node(client);
    for (int i = 0; i < 4; ++i) {
      const std::string name =
          "c" + std::to_string(client) + "/obj" + std::to_string(i) + ".jpg";
      ObjectMeta m;
      m.name = name;
      m.type = "jpg";
      m.size = 3_MB;
      (void)co_await node.create_object(m);
      auto s = co_await node.store_object(name);
      EXPECT_TRUE(s.ok());
      auto f = co_await node.fetch_object(name);
      EXPECT_TRUE(f.ok());
    }
    ++done;
  };
  std::vector<Task<>> clients;
  for (std::size_t c = 0; c < hc.node_count(); ++c) {
    clients.push_back(client_task(hc, c, completed));
  }
  hc.run(sim::when_all(hc.sim(), std::move(clients)));
  EXPECT_EQ(completed, static_cast<int>(hc.node_count()));
}

TEST(Integration, ObjectsSurviveGracefulChurn) {
  HomeCloudConfig cfg;
  cfg.netbooks = 5;
  HomeCloud hc{cfg};
  hc.bootstrap();

  hc.run([](HomeCloud& h) -> Task<> {
    // Store 10 objects from node 0 (locally owned).
    for (int i = 0; i < 10; ++i) {
      const std::string name = "churn/obj" + std::to_string(i);
      ObjectMeta m;
      m.name = name;
      m.type = "jpg";
      m.size = 1_MB;
      (void)co_await h.node(1).create_object(m);
      (void)co_await h.node(1).store_object(name);
    }
    // Node 1 leaves gracefully. Its *metadata* keys get redistributed; the
    // object files on its disk become unreachable, which fetch must report
    // as unavailable, not crash.
    co_await h.overlay().leave(h.node(1).chimera());

    int ok = 0, unavailable = 0, other = 0;
    for (int i = 0; i < 10; ++i) {
      auto r = co_await h.node(2).fetch_object("churn/obj" + std::to_string(i));
      if (r.ok()) {
        ++ok;
      } else if (r.code() == Errc::unavailable) {
        ++unavailable;
      } else {
        ++other;
      }
    }
    EXPECT_EQ(ok + unavailable, 10) << "metadata lookups must all resolve";
    EXPECT_EQ(other, 0);
    EXPECT_EQ(unavailable, 10) << "files lived on the departed node's disk";
  }(hc));
}

TEST(Integration, CloudObjectsSurviveHomeChurn) {
  HomeCloudConfig cfg;
  cfg.netbooks = 4;
  HomeCloud hc{cfg};
  hc.bootstrap();

  hc.run([](HomeCloud& h) -> Task<> {
    ObjectMeta m;
    m.name = "important.avi";
    m.type = "avi";
    m.size = 5_MB;
    (void)co_await h.node(1).create_object(m);
    StoreOptions opts;
    opts.policy = StoragePolicy::privacy();  // avi → remote cloud
    (void)co_await h.node(1).store_object("important.avi", opts);

    co_await h.overlay().leave(h.node(1).chimera());

    auto r = co_await h.node(0).fetch_object("important.avi");
    EXPECT_TRUE(r.ok()) << "cloud-stored object must survive home churn";
    if (r.ok()) {
      EXPECT_TRUE(r->from_cloud);
    }
  }(hc));
}

TEST(Integration, SurveillancePipelineEndToEnd) {
  // The home-security use case (§II): camera node stores an image, face
  // detection then recognition run wherever the decision engine picks.
  HomeCloudConfig cfg;
  cfg.netbooks = 4;
  HomeCloud hc{cfg};
  hc.bootstrap();

  auto fdet = services::face_detect_profile();
  auto frec = services::face_recognize_profile(60_MB);
  hc.registry().add_profile(fdet);
  hc.registry().add_profile(frec);
  hc.desktop().deploy_service(fdet);
  hc.desktop().deploy_service(frec);
  hc.deploy_service_in_cloud(fdet);
  hc.deploy_service_in_cloud(frec);

  hc.run([](HomeCloud& h) -> Task<> {
    (void)co_await h.desktop().publish_services();
    const auto fd = *h.registry().profile("face-detect", 1);
    const auto fr = *h.registry().profile("face-recognize", 2);

    auto& camera = h.node(0);
    for (int i = 0; i < 3; ++i) {
      const std::string img = "cam/frame" + std::to_string(i) + ".jpg";
      ObjectMeta m;
      m.name = img;
      m.type = "jpg";
      m.size = 512_KB;
      m.tags = {"surveillance"};
      (void)co_await camera.create_object(m);
      auto s = co_await camera.store_object(img);
      EXPECT_TRUE(s.ok());

      auto det = co_await camera.process(img, fd);
      EXPECT_TRUE(det.ok());
      auto recg = co_await camera.process(img, fr);
      EXPECT_TRUE(recg.ok());
      if (recg.ok()) {
        EXPECT_EQ(recg->output, 0u) << "recognition returns a match id";
      }
    }
  }(hc));
}

TEST(Integration, MonitoringKeepsRunningDuringWorkload) {
  HomeCloudConfig cfg;
  cfg.netbooks = 3;
  cfg.monitor.period = milliseconds(500);
  HomeCloud hc{cfg};
  hc.bootstrap();

  hc.sim().spawn([](HomeCloud& h) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      const std::string name = "mon/obj" + std::to_string(i);
      ObjectMeta m;
      m.name = name;
      m.type = "jpg";
      m.size = 10_MB;
      (void)co_await h.node(0).create_object(m);
      (void)co_await h.node(0).store_object(name);
      co_await h.sim().delay(seconds(1));
    }
  }(hc));
  hc.sim().run_until(seconds(8));

  for (std::size_t i = 0; i < hc.node_count(); ++i) {
    EXPECT_GT(hc.node(i).monitor().updates_published(), 5u) << "node " << i;
  }
}

}  // namespace
}  // namespace c4h::vstore
