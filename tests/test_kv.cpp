// DHT key-value store: overwrite policies, path caching + invalidation,
// replication, leave-time redistribution, failure repair.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"
#include "src/kv/kvstore.hpp"

namespace c4h::kv {
namespace {

using overlay::ChimeraNode;
using overlay::Overlay;
using overlay::OverlayConfig;
using sim::Simulation;
using sim::Task;

Buffer buf(const std::string& s) { return Buffer(s.begin(), s.end()); }
std::string str(const Buffer& b) { return std::string(b.begin(), b.end()); }

struct Rig {
  Simulation sim{7};
  net::Topology topo;
  std::vector<std::unique_ptr<vmm::Host>> hosts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Overlay> overlay;
  std::unique_ptr<KvStore> kv;
  std::vector<ChimeraNode*> nodes;

  explicit Rig(int n, KvConfig kcfg = {}, OverlayConfig ocfg = {}) {
    const auto sw = topo.add_node();
    for (int i = 0; i < n; ++i) {
      vmm::HostSpec spec;
      spec.name = "host-" + std::to_string(i);
      hosts.push_back(std::make_unique<vmm::Host>(sim, spec));
      const auto nn = topo.add_node();
      topo.add_duplex(nn, sw, mbps(95.5), microseconds(150));
      hosts.back()->set_net_node(nn);
    }
    net = std::make_unique<net::Network>(sim, std::move(topo));
    overlay = std::make_unique<Overlay>(sim, *net, ocfg);
    kv = std::make_unique<KvStore>(*overlay, kcfg);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(&overlay->create_node("node-" + std::to_string(i),
                                            *hosts[static_cast<std::size_t>(i)]));
    }
    sim.spawn([](Rig& r) -> Task<> {
      for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        (void)co_await r.overlay->join(*r.nodes[i], i == 0 ? nullptr : r.nodes[0]);
      }
    }(*this));
    sim.run();
  }

  // Runs a coroutine to completion (periodic tasks keep running).
  template <typename Fn>
  void run(Fn&& body) {
    sim.run_task(body(*this));
  }
};

TEST(Kv, PutThenGetRoundTrips) {
  Rig rig{6};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj-1");
    auto put = co_await r.kv->put(*r.nodes[0], k, buf("hello"));
    EXPECT_TRUE(put.ok());
    auto got = co_await r.kv->get(*r.nodes[3], k);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(str(*got), "hello");
    }
  });
}

TEST(Kv, GetMissingKeyIsNotFound) {
  Rig rig{4};
  rig.run([](Rig& r) -> Task<> {
    auto got = co_await r.kv->get(*r.nodes[0], Key::from_name("nothing"));
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code(), Errc::not_found);
  });
}

TEST(Kv, OverwriteReplacesValue) {
  Rig rig{4};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v1"));
    (void)co_await r.kv->put(*r.nodes[1], k, buf("v2"), OverwritePolicy::overwrite);
    auto got = co_await r.kv->get_all(*r.nodes[2], k);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got->size(), 1u);
      EXPECT_EQ(str(got->back()), "v2");
    }
  });
}

TEST(Kv, ChainAppendsVersions) {
  Rig rig{4};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v1"), OverwritePolicy::chain);
    (void)co_await r.kv->put(*r.nodes[1], k, buf("v2"), OverwritePolicy::chain);
    (void)co_await r.kv->put(*r.nodes[2], k, buf("v3"), OverwritePolicy::chain);
    auto got = co_await r.kv->get_all(*r.nodes[3], k);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got->size(), 3u);
      EXPECT_EQ(str(got->front()), "v1");
      EXPECT_EQ(str(got->back()), "v3");
    }
    // get returns the newest version.
    auto latest = co_await r.kv->get(*r.nodes[0], k);
    EXPECT_TRUE(latest.ok());
    if (latest.ok()) {
      EXPECT_EQ(str(*latest), "v3");
    }
  });
}

TEST(Kv, ErrorPolicyRejectsExistingKey) {
  Rig rig{4};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj");
    auto first = co_await r.kv->put(*r.nodes[0], k, buf("v1"), OverwritePolicy::error);
    EXPECT_TRUE(first.ok());
    auto second = co_await r.kv->put(*r.nodes[1], k, buf("v2"), OverwritePolicy::error);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.code(), Errc::already_exists);
    auto got = co_await r.kv->get(*r.nodes[2], k);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(str(*got), "v1");  // original survived
    }
  });
}

TEST(Kv, EraseRemovesEverywhere) {
  Rig rig{6};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v"));
    (void)co_await r.kv->get(*r.nodes[5], k);  // seed caches
    auto erased = co_await r.kv->erase(*r.nodes[1], k);
    EXPECT_TRUE(erased.ok());
    auto got = co_await r.kv->get(*r.nodes[2], k);
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(r.kv->total_entries(), 0u);
  });
}

TEST(Kv, EraseLandingInsideLocalAccessWindowIsNotServedStale) {
  // Regression: get_all's local fast path held the primary-table iterator
  // across the local-access delay; an erase that landed during that window
  // left the iterator dangling and the resume dereferenced it. The path now
  // re-finds after the suspension and reports the eviction.
  Rig rig{6};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj-racy");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v"));
    // Ask the owner itself, so the get takes the local fast path and parks
    // in the local-access delay; fire the erase while it is suspended.
    overlay::ChimeraNode* owner = r.overlay->node_by_key(r.overlay->true_owner(k));
    EXPECT_NE(owner, nullptr);
    if (owner == nullptr) co_return;
    r.sim.spawn([](Rig& rr, overlay::ChimeraNode& o, Key key) -> Task<> {
      co_await rr.sim.delay(microseconds(2500));  // inside the window
      (void)co_await rr.kv->erase(o, key);
    }(r, *owner, k));
    auto got = co_await r.kv->get_all(*owner, k);
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code(), Errc::not_found) << got.error().message;
    EXPECT_EQ(r.kv->total_entries(), 0u);
  });
}

TEST(Kv, RepeatedGetHitsCacheOrLocal) {
  KvConfig cfg;
  cfg.path_caching = true;
  Rig rig{6, cfg};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("popular-object");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v"));
    // Find an origin that is not the owner.
    const Key owner = r.overlay->true_owner(k);
    ChimeraNode* origin = nullptr;
    for (auto* n : r.nodes) {
      if (n->id() != owner) {
        origin = n;
        break;
      }
    }
    (void)co_await r.kv->get(*origin, k);  // populates origin's cache
    const auto hits_before = r.kv->stats().local_hits;
    (void)co_await r.kv->get(*origin, k);  // must be local now
    EXPECT_EQ(r.kv->stats().local_hits, hits_before + 1);
    EXPECT_TRUE(r.kv->has_cache(origin->id(), k));
  });
}

TEST(Kv, CachedCopiesAreRefreshedOnPut) {
  Rig rig{6};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("coherent-object");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("old"));
    const Key owner = r.overlay->true_owner(k);
    ChimeraNode* origin = nullptr;
    for (auto* n : r.nodes) {
      if (n->id() != owner) {
        origin = n;
        break;
      }
    }
    (void)co_await r.kv->get(*origin, k);  // cache "old" at origin
    (void)co_await r.kv->put(*r.nodes[0], k, buf("new"));
    co_await r.sim.delay(seconds(1));  // let async cache refresh land
    auto got = co_await r.kv->get(*origin, k);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(str(*got), "new") << "stale cache served after update";
    }
  });
}

TEST(Kv, CachingDisabledMeansNoCacheHits) {
  KvConfig cfg;
  cfg.path_caching = false;
  Rig rig{6, cfg};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("obj");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v"));
    for (int i = 0; i < 5; ++i) (void)co_await r.kv->get(*r.nodes[1], k);
    EXPECT_EQ(r.kv->stats().cache_hits, 0u);
  });
}

TEST(Kv, ReplicasExistAfterPut) {
  KvConfig cfg;
  cfg.replication = 2;
  Rig rig{6, cfg};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("replicated-object");
    (void)co_await r.kv->put(*r.nodes[0], k, buf("v"));
    co_await r.sim.delay(seconds(1));  // async replication
    const Key owner = r.overlay->true_owner(k);
    int replicas = 0;
    for (auto* n : r.nodes) {
      if (n->id() != owner && r.kv->has_replica(n->id(), k)) ++replicas;
    }
    EXPECT_EQ(replicas, 2);
  });
}

TEST(Kv, GracefulLeaveRedistributesKeys) {
  Rig rig{6};
  rig.run([](Rig& r) -> Task<> {
    // Store a bunch of keys, then have every node leave one by one except
    // the last two; all keys must remain readable.
    std::vector<Key> keys;
    for (int i = 0; i < 24; ++i) {
      const Key k = Key::from_name("obj-" + std::to_string(i));
      keys.push_back(k);
      (void)co_await r.kv->put(*r.nodes[0], k, buf("value-" + std::to_string(i)));
    }
    co_await r.overlay->leave(*r.nodes[2]);
    co_await r.overlay->leave(*r.nodes[4]);

    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto got = co_await r.kv->get(*r.nodes[0], keys[i]);
      EXPECT_TRUE(got.ok()) << "key " << i << " lost after leave";
      if (got.ok()) {
        EXPECT_EQ(str(*got), "value-" + std::to_string(i));
      }
    }
    EXPECT_GT(r.kv->stats().redistribution_msgs, 0u);
  });
}

TEST(Kv, FailureWithReplicationPreservesData) {
  KvConfig cfg;
  cfg.replication = 2;
  OverlayConfig ocfg;
  ocfg.stabilize_period = milliseconds(500);
  Rig rig{6, cfg, ocfg};
  rig.overlay->start_stabilization();
  rig.run([](Rig& r) -> Task<> {
    std::vector<Key> keys;
    for (int i = 0; i < 24; ++i) {
      const Key k = Key::from_name("fobj-" + std::to_string(i));
      keys.push_back(k);
      (void)co_await r.kv->put(*r.nodes[0], k, buf("value-" + std::to_string(i)));
    }
    co_await r.sim.delay(seconds(1));  // replication settles

    r.overlay->crash(*r.nodes[3]);
    co_await r.sim.delay(seconds(5));  // detection + repair

    int recovered = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto got = co_await r.kv->get(*r.nodes[0], keys[i]);
      if (got.ok() && str(*got) == "value-" + std::to_string(i)) ++recovered;
    }
    EXPECT_EQ(recovered, static_cast<int>(keys.size()));
  });
  // Stop the heartbeats so sim.run() terminates: destructor handles frames.
}

TEST(Kv, FailureWithoutReplicationLosesOnlyOwnedKeys) {
  KvConfig cfg;
  cfg.replication = 0;
  OverlayConfig ocfg;
  ocfg.stabilize_period = milliseconds(500);
  Rig rig{6, cfg, ocfg};
  rig.overlay->start_stabilization();
  rig.run([](Rig& r) -> Task<> {
    std::vector<Key> keys;
    for (int i = 0; i < 30; ++i) {
      const Key k = Key::from_name("uobj-" + std::to_string(i));
      keys.push_back(k);
      (void)co_await r.kv->put(*r.nodes[0], k, buf("v"));
    }
    const Key victim = r.nodes[3]->id();
    const auto owned = r.kv->primary_keys(victim).size();
    r.overlay->crash(*r.nodes[3]);
    co_await r.sim.delay(seconds(5));

    std::size_t lost = 0;
    for (const Key k : keys) {
      auto got = co_await r.kv->get(*r.nodes[0], k);
      if (!got.ok()) ++lost;
    }
    EXPECT_EQ(lost, owned);  // exactly the victim's keys are gone
  });
}

TEST(Kv, KeysSpreadAcrossNodes) {
  Rig rig{6};
  rig.run([](Rig& r) -> Task<> {
    for (int i = 0; i < 120; ++i) {
      (void)co_await r.kv->put(*r.nodes[0], Key::from_name("spread-" + std::to_string(i)),
                               buf("v"));
    }
    int holders = 0;
    for (auto* n : r.nodes) {
      if (!r.kv->primary_keys(n->id()).empty()) ++holders;
    }
    EXPECT_GE(holders, 4) << "keys should spread across most of 6 nodes";
  });
}

TEST(Kv, LookupLatencyIsConstantInValueSizeRegime) {
  // Table I: DHT lookup cost is ~12-16 ms regardless of object size — the
  // metadata entry is small either way. Verify lookups cost milliseconds,
  // not a function of the (separately transferred) object.
  OverlayConfig ocfg;
  ocfg.per_hop_processing = milliseconds(1);
  Rig rig{6, {}, ocfg};
  rig.run([](Rig& r) -> Task<> {
    const Key k = Key::from_name("meta");
    (void)co_await r.kv->put(*r.nodes[0], k, buf(std::string(200, 'm')));
    KvConfig cfg;  // defaults
    Samples lat;
    for (int i = 0; i < 10; ++i) {
      // Alternate origins to avoid pure local hits.
      auto* origin = r.nodes[static_cast<std::size_t>(1 + (i % 5))];
      const auto t0 = r.sim.now();
      (void)co_await r.kv->get(*origin, k);
      lat.add(to_milliseconds(r.sim.now() - t0));
    }
    EXPECT_LT(lat.max(), 25.0);
  });
}

// Property sweep: random workloads keep the store consistent with an oracle
// map, across cache/replication configurations.
struct KvSweepParam {
  bool caching;
  int replication;
  std::uint64_t seed;
};

class KvRandomSweep : public ::testing::TestWithParam<KvSweepParam> {};

TEST_P(KvRandomSweep, MatchesOracleMap) {
  const auto param = GetParam();
  KvConfig cfg;
  cfg.path_caching = param.caching;
  cfg.replication = param.replication;
  Rig rig{6, cfg};
  rig.run([param](Rig& r) -> Task<> {
    Rng rng{param.seed};
    std::unordered_map<Key, std::string> oracle;
    for (int step = 0; step < 300; ++step) {
      const Key k = Key::from_name("rk-" + std::to_string(rng.below(40)));
      auto* origin = r.nodes[rng.below(r.nodes.size())];
      const double dice = rng.uniform();
      if (dice < 0.5) {
        const std::string v = "v" + std::to_string(step);
        (void)co_await r.kv->put(*origin, k, buf(v));
        oracle[k] = v;
      } else if (dice < 0.9) {
        auto got = co_await r.kv->get(*origin, k);
        const auto it = oracle.find(k);
        if (it == oracle.end()) {
          EXPECT_FALSE(got.ok()) << "phantom key";
        } else {
          EXPECT_TRUE(got.ok());
          if (got.ok()) {
            EXPECT_EQ(str(*got), it->second) << "stale value at step " << step;
          }
        }
      } else {
        auto er = co_await r.kv->erase(*origin, k);
        EXPECT_EQ(er.ok(), oracle.erase(k) > 0);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KvRandomSweep,
    ::testing::Values(KvSweepParam{true, 1, 11}, KvSweepParam{true, 0, 22},
                      KvSweepParam{false, 1, 33}, KvSweepParam{false, 0, 44},
                      KvSweepParam{true, 2, 55}, KvSweepParam{true, 3, 66}));

}  // namespace
}  // namespace c4h::kv
