// Access control (§VII future work (i)): ACL semantics, serialization, and
// end-to-end enforcement in VStore++ operations.
#include <gtest/gtest.h>

#include "src/vstore/acl.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

const Principal kAlice{"alice", TrustLevel::trusted};
const Principal kBob{"bob", TrustLevel::trusted};
const Principal kGuestVm{"guest", TrustLevel::untrusted};

// --- Pure ACL semantics ---

TEST(Acl, OwnerAlwaysAllowed) {
  const auto d = check_access("alice", Acl::owner_only(), false, kAlice, Right::write);
  EXPECT_TRUE(d.allowed);
  EXPECT_STREQ(d.reason, "owner");
}

TEST(Acl, OwnerlessObjectsAreOpen) {
  const auto d = check_access("", Acl::owner_only(), false, kBob, Right::write);
  EXPECT_TRUE(d.allowed);
  EXPECT_STREQ(d.reason, "open");
}

TEST(Acl, NonOwnerDeniedByDefault) {
  EXPECT_FALSE(check_access("alice", Acl::owner_only(), false, kBob, Right::read).allowed);
}

TEST(Acl, RuleGrantsSpecificRight) {
  Acl acl;
  acl.allow("bob", {Right::read});
  EXPECT_TRUE(check_access("alice", acl, false, kBob, Right::read).allowed);
  EXPECT_FALSE(check_access("alice", acl, false, kBob, Right::write).allowed);
  EXPECT_FALSE(check_access("alice", acl, false, kBob, Right::execute).allowed);
}

TEST(Acl, WildcardMatchesEveryUser) {
  const Acl acl = Acl::public_read();
  EXPECT_TRUE(check_access("alice", acl, false, kBob, Right::read).allowed);
  EXPECT_TRUE(check_access("alice", acl, false, kGuestVm, Right::read).allowed);
  EXPECT_FALSE(check_access("alice", acl, false, kBob, Right::write).allowed);
}

TEST(Acl, UntrustedVmDeniedPrivateObjectsEvenWithRule) {
  Acl acl;
  acl.allow("*", {Right::read, Right::write, Right::execute});
  EXPECT_FALSE(check_access("alice", acl, /*private=*/true, kGuestVm, Right::read).allowed);
  EXPECT_TRUE(check_access("alice", acl, /*private=*/false, kGuestVm, Right::read).allowed);
  // Trusted VM with the same rule is fine.
  EXPECT_TRUE(check_access("alice", acl, /*private=*/true, kBob, Right::read).allowed);
}

TEST(Acl, SerializeRoundTripsThroughObjectRecord) {
  ObjectRecord rec;
  rec.meta.name = "o";
  rec.meta.owner = "alice";
  rec.meta.acl.allow("bob", {Right::read, Right::execute});
  rec.meta.acl.allow("*", {Right::read});
  auto back = ObjectRecord::deserialize(rec.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->meta.owner, "alice");
  ASSERT_EQ(back->meta.acl.rules().size(), 2u);
  EXPECT_TRUE(back->meta.acl.allows(kBob, Right::execute));
  EXPECT_TRUE(back->meta.acl.allows(kGuestVm, Right::read));
  EXPECT_FALSE(back->meta.acl.allows(kGuestVm, Right::write));
}

// --- End-to-end enforcement ---

struct Rig {
  HomeCloud hc;
  Rig() : hc(make_cfg()) {
    hc.bootstrap();
    hc.node(0).set_principal(kAlice);
    hc.node(1).set_principal(kBob);
    hc.node(2).set_principal(kGuestVm);
  }
  static HomeCloudConfig make_cfg() {
    HomeCloudConfig cfg;
    cfg.netbooks = 3;
    cfg.start_monitors = false;
    return cfg;
  }

  Task<> store_owned(Acl acl, std::vector<std::string> tags = {}) {
    ObjectMeta m;
    m.name = "alice/doc.pdf";
    m.type = "pdf";
    m.size = 1_MB;
    m.owner = "alice";
    m.acl = std::move(acl);
    m.tags = std::move(tags);
    (void)co_await hc.node(0).create_object(m);
    auto s = co_await hc.node(0).store_object(m.name);
    EXPECT_TRUE(s.ok());
  }
};

TEST(AclEnforcement, OwnerCanFetchOthersCannot) {
  Rig rig;
  rig.hc.run([](Rig& r) -> Task<> {
    co_await r.store_owned(Acl::owner_only());
    auto mine = co_await r.hc.node(0).fetch_object("alice/doc.pdf");
    EXPECT_TRUE(mine.ok());
    auto theirs = co_await r.hc.node(1).fetch_object("alice/doc.pdf");
    EXPECT_FALSE(theirs.ok());
    EXPECT_EQ(theirs.code(), Errc::permission_denied);
  }(rig));
}

TEST(AclEnforcement, ReadRuleOpensFetchButNotProcess) {
  Rig rig;
  auto fdet = services::face_detect_profile();
  rig.hc.registry().add_profile(fdet);
  rig.hc.node(1).deploy_service(fdet);
  rig.hc.run([fdet](Rig& r) -> Task<> {
    (void)co_await r.hc.node(1).publish_services();
    Acl acl;
    acl.allow("bob", {Right::read});
    co_await r.store_owned(acl);

    auto fetch = co_await r.hc.node(1).fetch_object("alice/doc.pdf");
    EXPECT_TRUE(fetch.ok());
    auto proc = co_await r.hc.node(1).process("alice/doc.pdf", fdet);
    EXPECT_FALSE(proc.ok());
    EXPECT_EQ(proc.code(), Errc::permission_denied);
  }(rig));
}

TEST(AclEnforcement, OverwriteRequiresWriteRight) {
  Rig rig;
  rig.hc.run([](Rig& r) -> Task<> {
    co_await r.store_owned(Acl::public_read());

    // Bob tries to replace Alice's object under the same name.
    ObjectMeta evil;
    evil.name = "alice/doc.pdf";
    evil.type = "pdf";
    evil.size = 512_KB;
    evil.owner = "bob";
    (void)co_await r.hc.node(1).create_object(evil);
    auto s = co_await r.hc.node(1).store_object(evil.name);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), Errc::permission_denied);

    // The original survives, still 1 MB.
    auto back = co_await r.hc.node(0).fetch_object("alice/doc.pdf");
    EXPECT_TRUE(back.ok());
    if (back.ok()) {
      EXPECT_EQ(back->size, 1_MB);
    }
  }(rig));
}

TEST(AclEnforcement, WriteRuleAllowsOverwrite) {
  Rig rig;
  rig.hc.run([](Rig& r) -> Task<> {
    Acl acl;
    acl.allow("bob", {Right::read, Right::write});
    co_await r.store_owned(acl);

    ObjectMeta update;
    update.name = "alice/doc.pdf";
    update.type = "pdf";
    update.size = 2_MB;
    update.owner = "alice";  // bob updates content, ownership unchanged
    update.acl.allow("bob", {Right::read, Right::write});
    (void)co_await r.hc.node(1).create_object(update);
    auto s = co_await r.hc.node(1).store_object(update.name);
    EXPECT_TRUE(s.ok());
  }(rig));
}

TEST(AclEnforcement, UntrustedVmCannotTouchPrivateObjects) {
  Rig rig;
  rig.hc.run([](Rig& r) -> Task<> {
    Acl acl;
    acl.allow("*", {Right::read});
    std::vector<std::string> tags{"private"};  // explicit: GCC 12 coroutine bug
    co_await r.store_owned(acl, tags);

    // Bob (trusted) may read via the wildcard; the untrusted guest VM may
    // not, despite the same rule.
    auto bob = co_await r.hc.node(1).fetch_object("alice/doc.pdf");
    EXPECT_TRUE(bob.ok());
    auto guest = co_await r.hc.node(2).fetch_object("alice/doc.pdf");
    EXPECT_FALSE(guest.ok());
    EXPECT_EQ(guest.code(), Errc::permission_denied);
  }(rig));
}

TEST(AclEnforcement, LegacyObjectsRemainOpen) {
  Rig rig;
  rig.hc.run([](Rig& r) -> Task<> {
    ObjectMeta m;
    m.name = "shared/open.jpg";
    m.type = "jpg";
    m.size = 1_MB;  // no owner → open
    (void)co_await r.hc.node(0).create_object(m);
    (void)co_await r.hc.node(0).store_object(m.name);
    auto res = co_await r.hc.node(2).fetch_object(m.name);
    EXPECT_TRUE(res.ok());
  }(rig));
}

}  // namespace
}  // namespace c4h::vstore
