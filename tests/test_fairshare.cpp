// Property tests for the incremental max-min fair-share engine.
//
// FairShareEngine (src/net/fairshare.hpp) re-solves only the affected
// connected component of the flow–link conflict graph; the one-shot
// max_min_fair_rates() water-filling is the semantic reference. The core
// property, checked across 120 seeds of randomized topologies and mutation
// histories: after every commit, EVERY flow's engine rate — affected or
// not — matches a from-scratch global solve of the current state to within
// 1e-9 relative error. That "or not" clause is the point: it proves the
// component cut never strands a flow with a stale rate.
//
// The Network-level suite then drives real transfers under the global and
// incremental models and requires near-identical completion times, plus
// exercises the per-link flow index that serves O(flows-on-link) link_load.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/net/fairshare.hpp"
#include "src/net/network.hpp"
#include "src/net/tcp_model.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulation.hpp"

namespace c4h::net {
namespace {

constexpr double kTol = 1e-9;

struct ShadowFlow {
  std::vector<std::uint32_t> links;
  Rate cap = std::numeric_limits<Rate>::infinity();
};

// From-scratch reference solve of the shadow state. Ordered map: flows are
// presented to the solver ascending by id, matching the engine's order.
std::map<std::uint64_t, Rate> reference_rates(const std::vector<Rate>& caps,
                                              const std::map<std::uint64_t, ShadowFlow>& flows) {
  std::vector<std::uint64_t> ids;
  std::vector<FairFlowDesc> descs;
  ids.reserve(flows.size());
  descs.reserve(flows.size());
  for (const auto& [id, f] : flows) {
    ids.push_back(id);
    FairFlowDesc d;
    d.links = f.links;
    d.cap = f.cap;
    descs.push_back(std::move(d));
  }
  const std::vector<Rate> rates = max_min_fair_rates(caps, descs);
  std::map<std::uint64_t, Rate> out;
  for (std::size_t i = 0; i < ids.size(); ++i) out[ids[i]] = rates[i];
  return out;
}

void expect_engine_matches_reference(const FairShareEngine& eng, const std::vector<Rate>& caps,
                                     const std::map<std::uint64_t, ShadowFlow>& flows,
                                     const std::string& context) {
  const auto ref_rates = reference_rates(caps, flows);
  ASSERT_EQ(eng.flow_count(), flows.size()) << context;
  for (const auto& [id, want] : ref_rates) {
    const Rate got = eng.rate(id);
    if (got == want) continue;  // also covers the infinite-cap loopback case
    const double scale = std::max(1.0, std::fabs(want));
    EXPECT_LE(std::fabs(got - want), kTol * scale)
        << context << ": flow " << id << " engine=" << got << " reference=" << want;
  }
}

TEST(FairShareProperty, IncrementalMatchesGlobalAcross120Seeds) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    Rng rng{seed};
    const auto n_links = static_cast<std::uint32_t>(2 + rng.below(9));
    std::vector<Rate> caps;
    caps.reserve(n_links);
    for (std::uint32_t l = 0; l < n_links; ++l) {
      caps.push_back(rng.uniform(1e4, 2e7));
    }

    FairShareEngine eng{caps};
    std::map<std::uint64_t, ShadowFlow> shadow;
    std::uint64_t next_id = 1;

    const int ops = 40;
    for (int op = 0; op < ops; ++op) {
      const std::string context =
          "seed " + std::to_string(seed) + " op " + std::to_string(op);
      const std::uint64_t kind = rng.below(10);
      if (kind < 4 || shadow.empty()) {
        // Admit a flow over 1..4 distinct random links (occasionally zero
        // links: a loopback flow, rated at its own cap).
        ShadowFlow f;
        const auto n_path = rng.below(5);  // 0..4
        std::vector<std::uint32_t> pool(n_links);
        for (std::uint32_t l = 0; l < n_links; ++l) pool[l] = l;
        for (std::uint64_t k = 0; k < n_path && !pool.empty(); ++k) {
          const auto pick = rng.below(pool.size());
          f.links.push_back(pool[pick]);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        std::sort(f.links.begin(), f.links.end());
        f.cap = rng.below(4) == 0 ? std::numeric_limits<Rate>::infinity()
                                  : rng.uniform(5e3, 1e7);
        const std::uint64_t id = next_id++;
        eng.add_flow(id, f.links, f.cap);
        shadow.emplace(id, f);
      } else if (kind < 6) {
        // Remove a random existing flow.
        auto it = shadow.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng.below(shadow.size())));
        eng.remove_flow(it->first);
        shadow.erase(it);
      } else if (kind < 8) {
        // Retune a random flow's cap (a TCP phase change).
        auto it = shadow.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(rng.below(shadow.size())));
        it->second.cap = rng.uniform(5e3, 1e7);
        eng.set_flow_cap(it->first, it->second.cap);
      } else {
        // Resize a random link (congestion, ISP throttling).
        const auto l = static_cast<std::uint32_t>(rng.below(n_links));
        caps[l] = rng.uniform(1e4, 2e7);
        eng.set_link_capacity(l, caps[l]);
      }
      eng.commit();
      expect_engine_matches_reference(eng, caps, shadow, context);
    }

    // Drain: removals must keep the survivors correct all the way down.
    while (!shadow.empty()) {
      eng.remove_flow(shadow.begin()->first);
      shadow.erase(shadow.begin());
      eng.commit();
      expect_engine_matches_reference(eng, caps, shadow,
                                      "seed " + std::to_string(seed) + " drain");
    }
    EXPECT_EQ(eng.flow_count(), 0u);
  }
}

TEST(FairShareProperty, CommitIsDeterministic) {
  // Same mutation history twice ⇒ bitwise-identical rates, not merely close.
  const auto run = [](std::vector<Rate>* rates_out) {
    std::vector<Rate> caps{1e6, 2e6, 5e5, 3e6};
    FairShareEngine eng{caps};
    eng.add_flow(1, {0, 1}, 8e5);
    eng.add_flow(2, {1, 2}, std::numeric_limits<Rate>::infinity());
    eng.add_flow(3, {0, 2, 3}, 6e5);
    eng.commit();
    eng.set_flow_cap(2, 4e5);
    eng.set_link_capacity(2, 9e5);
    eng.remove_flow(1);
    eng.commit();
    for (const std::uint64_t id : {2ull, 3ull}) rates_out->push_back(eng.rate(id));
  };
  std::vector<Rate> a;
  std::vector<Rate> b;
  run(&a);
  run(&b);
  EXPECT_EQ(a, b);
}

TEST(FairShareEngineTest, UntouchedComponentIsNotResolved) {
  // Two disjoint components; mutating one must not report (or perturb) the
  // other. commit() returns the affected ids — that contract is what keeps
  // an event O(component).
  FairShareEngine eng{{1e6, 1e6, 1e6, 1e6}};
  eng.add_flow(1, {0}, std::numeric_limits<Rate>::infinity());
  eng.add_flow(2, {0, 1}, std::numeric_limits<Rate>::infinity());
  eng.add_flow(3, {2, 3}, std::numeric_limits<Rate>::infinity());
  eng.commit();
  const Rate lone = eng.rate(3);

  eng.set_flow_cap(1, 2e5);
  const std::vector<std::uint64_t> affected = eng.commit();
  EXPECT_EQ(affected, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(eng.rate(3), lone);  // bitwise untouched, not recomputed
}

TEST(FairShareEngineTest, FlowsOnLinkStaysSortedAndExact) {
  FairShareEngine eng{{1e6, 1e6}};
  eng.add_flow(1, {0}, 1e5);
  eng.add_flow(2, {0, 1}, 1e5);
  eng.add_flow(3, {0}, 1e5);
  eng.commit();
  EXPECT_EQ(eng.flows_on_link(0), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(eng.flows_on_link(1), (std::vector<std::uint64_t>{2}));
  eng.remove_flow(2);
  eng.commit();
  EXPECT_EQ(eng.flows_on_link(0), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_TRUE(eng.flows_on_link(1).empty());
}

// ---- Network-level equivalence ---------------------------------------------

struct Star {
  sim::Simulation sim;
  Topology topo;
  NetNodeId hub;
  std::vector<NetNodeId> leafs;

  explicit Star(std::uint64_t seed, int n_leafs) : sim{seed} {
    hub = topo.add_node();
    for (int i = 0; i < n_leafs; ++i) {
      leafs.push_back(topo.add_node());
      topo.add_duplex(leafs.back(), hub, mib_per_sec(8.0), milliseconds(1));
    }
  }
};

// Runs the same randomized transfer program under `model` and returns each
// transfer's completion time in nanoseconds.
std::vector<std::int64_t> run_program(NetModel model, std::uint64_t seed) {
  Star star{seed, 6};
  Network net{star.sim, std::move(star.topo)};
  net.set_model(model);

  Rng rng{seed * 977 + 3};
  struct Xfer {
    NetNodeId src, dst;
    Bytes size;
    Duration start;
  };
  std::vector<Xfer> plan;
  for (int i = 0; i < 24; ++i) {
    const auto a = rng.below(star.leafs.size());
    auto b = rng.below(star.leafs.size());
    if (b == a) b = (b + 1) % star.leafs.size();
    plan.push_back({star.leafs[a], star.leafs[b],
                    64_KB + static_cast<Bytes>(rng.below(6)) * 96_KB,
                    milliseconds(static_cast<std::int64_t>(rng.below(400)))});
  }
  // Completion times keyed by transfer index, not completion order — two
  // near-simultaneous completions may legally swap order across models.
  std::vector<std::int64_t> done_at(plan.size(), -1);
  const auto one = [](sim::Simulation& sm, Network& nw, Xfer x, std::int64_t& out) -> sim::Task<> {
    co_await sm.delay(x.start);
    co_await nw.transfer(x.src, x.dst, x.size);
    out = sm.now().count();
  };
  for (std::size_t i = 0; i < plan.size(); ++i) {
    star.sim.spawn(one(star.sim, net, plan[i], done_at[i]));
  }
  star.sim.run();
  for (const std::int64_t t : done_at) EXPECT_GE(t, 0);
  EXPECT_EQ(net.stats().flows_completed, plan.size());
  EXPECT_EQ(net.active_flows(), 0u);
  return done_at;
}

TEST(NetworkModelEquivalence, IncrementalCompletionTimesMatchGlobal) {
  // Identical rate trajectories (to 1e-9) mean completion events land within
  // sub-microsecond of each other on multi-second transfers.
  for (const std::uint64_t seed : {5ull, 29ull, 101ull}) {
    const auto global = run_program(NetModel::global, seed);
    const auto incremental = run_program(NetModel::incremental, seed);
    ASSERT_EQ(global.size(), incremental.size());
    for (std::size_t i = 0; i < global.size(); ++i) {
      EXPECT_LE(std::llabs(global[i] - incremental[i]), 1000)
          << "seed " << seed << " transfer " << i << ": global " << global[i]
          << "ns vs incremental " << incremental[i] << "ns";
    }
  }
}

TEST(NetworkModelEquivalence, AnalyticalModelCompletesTheSameProgram) {
  // The closed-form model promises plausibility, not equivalence: every
  // transfer must still finish, monotonically and deterministically.
  const auto a = run_program(NetModel::analytical, 7);
  const auto b = run_program(NetModel::analytical, 7);
  EXPECT_EQ(a, b);
}

TEST(NetworkLinkLoad, IndexMatchesFlowRatesWhileInFlight) {
  Star star{21, 3};
  const auto up0 = star.topo.route(star.leafs[0], star.hub);  // leaf0 -> hub link
  ASSERT_EQ(up0.size(), 1u);
  const LinkId shared = up0[0];
  Network net{star.sim, std::move(star.topo)};

  // Two flows out of leaf0 share its uplink; each gets half the 8 MiB/s.
  const auto go = [](sim::Simulation&, Network& nw, NetNodeId s, NetNodeId d,
                     Bytes sz) -> sim::Task<> { co_await nw.transfer(s, d, sz, TcpProfile{}); };
  star.sim.spawn(go(star.sim, net, star.leafs[0], star.leafs[1], 4_MB));
  star.sim.spawn(go(star.sim, net, star.leafs[0], star.leafs[2], 4_MB));
  star.sim.run_until(star.sim.now() + milliseconds(600));

  const Rate load = net.link_load(shared);
  EXPECT_EQ(net.active_flows(), 2u);
  EXPECT_GT(load, 0.0);
  EXPECT_LE(load, mib_per_sec(8.0) * (1.0 + 1e-9));
  // Max-min on one saturated link: the two flows split it exactly.
  EXPECT_NEAR(load, mib_per_sec(8.0), mib_per_sec(8.0) * 1e-6);
  EXPECT_EQ(net.link_load(shared + 1), 0.0);  // reverse direction is idle
  star.sim.run();
}

}  // namespace
}  // namespace c4h::net
