// Virtualization substrate: CPU sharing, VCPU caps, memory thrash model,
// battery drain, XenSocket cost model.
#include <gtest/gtest.h>

#include "src/vmm/machine.hpp"
#include "src/vmm/xensocket.hpp"

namespace c4h::vmm {
namespace {

using sim::Simulation;
using sim::Task;

HostSpec atom_spec() {
  HostSpec s;
  s.name = "atom";
  s.cores = 2;
  s.ghz = 1.0;  // round numbers for exact timing math
  s.memory = 1024_MB;
  s.virt_overhead = 0.0;
  return s;
}

Task<> timed_exec(Simulation& sim, Host& h, Domain& d, double gcycles, int threads,
                  Duration& out) {
  const TimePoint t0 = sim.now();
  co_await h.execute(d, gcycles, threads);
  out = sim.now() - t0;
}

TEST(Host, Dom0ExistsAtConstruction) {
  Simulation sim;
  Host h{sim, atom_spec()};
  EXPECT_EQ(h.dom0().type(), DomainType::dom0);
  EXPECT_EQ(h.domains().size(), 1u);
  EXPECT_LT(h.free_memory(), 1024_MB);  // dom0 reserved some
}

TEST(Host, SingleThreadJobBoundByOneCore) {
  Simulation sim;
  Host h{sim, atom_spec()};
  Domain& vm = h.create_guest("vm", 1, 256_MB);
  Duration took{};
  sim.spawn(timed_exec(sim, h, vm, 10.0, 1, took));
  sim.run();
  // 10 Gcycles on one 1 GHz VCPU = 10 s (host has 2 cores but VCPU caps).
  EXPECT_NEAR(to_seconds(took), 10.0, 0.01);
}

TEST(Host, MultiThreadJobUsesAllVcpus) {
  Simulation sim;
  Host h{sim, atom_spec()};
  Domain& vm = h.create_guest("vm", 2, 256_MB);
  Duration took{};
  sim.spawn(timed_exec(sim, h, vm, 10.0, 4, took));
  sim.run();
  // 4 threads but only 2 VCPUs → 2 Gcycles/s → 5 s.
  EXPECT_NEAR(to_seconds(took), 5.0, 0.01);
}

TEST(Host, TwoJobsShareTheCores) {
  Simulation sim;
  Host h{sim, atom_spec()};
  Domain& vm = h.create_guest("vm", 2, 256_MB);
  Duration t1{}, t2{};
  sim.spawn(timed_exec(sim, h, vm, 10.0, 2, t1));
  sim.spawn(timed_exec(sim, h, vm, 10.0, 2, t2));
  sim.run();
  // Two 2-thread jobs on 2 cores → each ~1 Gcycle/s → 10 s.
  EXPECT_NEAR(to_seconds(t1), 10.0, 0.05);
  EXPECT_NEAR(to_seconds(t2), 10.0, 0.05);
}

TEST(Host, SingleThreadJobsDontContendBelowCoreCount) {
  Simulation sim;
  Host h{sim, atom_spec()};
  Domain& vm = h.create_guest("vm", 2, 256_MB);
  Duration t1{}, t2{};
  sim.spawn(timed_exec(sim, h, vm, 10.0, 1, t1));
  sim.spawn(timed_exec(sim, h, vm, 10.0, 1, t2));
  sim.run();
  // Two 1-thread jobs, two cores: no contention → 10 s each.
  EXPECT_NEAR(to_seconds(t1), 10.0, 0.01);
  EXPECT_NEAR(to_seconds(t2), 10.0, 0.01);
}

TEST(Host, VirtualizationOverheadSlowsExecution) {
  Simulation sim;
  HostSpec s = atom_spec();
  s.virt_overhead = 0.2;
  Host h{sim, s};
  Domain& vm = h.create_guest("vm", 1, 256_MB);
  Duration took{};
  sim.spawn(timed_exec(sim, h, vm, 8.0, 1, took));
  sim.run();
  // 1 GHz × 0.8 = 0.8 Gcycles/s → 10 s.
  EXPECT_NEAR(to_seconds(took), 10.0, 0.01);
}

TEST(Host, LateJobPreemptsFairShare) {
  Simulation sim;
  HostSpec s = atom_spec();
  s.cores = 1;
  Host h{sim, s};
  Domain& vm = h.create_guest("vm", 1, 256_MB);
  Duration t1{};
  sim.spawn(timed_exec(sim, h, vm, 10.0, 1, t1));
  Duration t2{};
  sim.spawn([](Simulation& ss, Host& hh, Domain& d, Duration& out) -> Task<> {
    co_await ss.delay(seconds(5));
    const TimePoint t0 = ss.now();
    co_await hh.execute(d, 2.0, 1);
    out = ss.now() - t0;
  }(sim, h, vm, t2));
  sim.run();
  // Job1: 5 s alone (5 Gc done), then shares 0.5 Gc/s: job2 needs 2 Gc → 4 s
  // shared; job1 then finishes remaining 3 Gc alone → total 5+4+3 = 12 s.
  EXPECT_NEAR(to_seconds(t1), 12.0, 0.05);
  EXPECT_NEAR(to_seconds(t2), 4.0, 0.05);
}

TEST(Host, UtilizationReflectsLoad) {
  Simulation sim;
  Host h{sim, atom_spec()};
  Domain& vm = h.create_guest("vm", 1, 256_MB);
  EXPECT_DOUBLE_EQ(h.cpu_utilization(), 0.0);
  sim.spawn([](Host& hh, Domain& d) -> Task<> { co_await hh.execute(d, 5.0, 1); }(h, vm));
  sim.run_until(seconds(1));
  EXPECT_NEAR(h.cpu_utilization(), 0.5, 0.01);  // 1 of 2 cores busy
  sim.run();
  EXPECT_DOUBLE_EQ(h.cpu_utilization(), 0.0);
}

TEST(Host, GuestMemoryComesFromPool) {
  Simulation sim;
  Host h{sim, atom_spec()};
  const Bytes before = h.free_memory();
  h.create_guest("vm", 1, 512_MB);
  EXPECT_EQ(h.free_memory(), before - 512_MB);
}

TEST(MemorySlowdown, NoPenaltyWhenFits) {
  EXPECT_DOUBLE_EQ(memory_slowdown(100_MB, 512_MB), 1.0);
  EXPECT_DOUBLE_EQ(memory_slowdown(512_MB, 512_MB), 1.0);
}

TEST(MemorySlowdown, GrowsSuperlinearlyWithOverflow) {
  const double x2 = memory_slowdown(256_MB, 128_MB);
  const double x4 = memory_slowdown(512_MB, 128_MB);
  EXPECT_NEAR(x2, 10.0, 0.01);  // 1 + 3·1 + 6·1²
  EXPECT_GT(x4, 2.5 * x2);      // super-linear
  // Just over the edge is only mildly penalized.
  EXPECT_LT(memory_slowdown(140_MB, 128_MB), 1.6);
}

TEST(Battery, DrainsUnderLoadFasterThanIdle) {
  Simulation sim;
  HostSpec s = atom_spec();
  s.battery.capacity_wh = 30.0;
  s.battery.idle_watts = 3.0;
  s.battery.busy_watts = 15.0;

  // Idle host for one hour.
  Host idle{sim, s};
  sim.run_until(seconds(3600));
  const double idle_left = idle.battery_fraction();
  EXPECT_NEAR(idle_left, (30.0 - 3.0) / 30.0, 0.01);

  // Busy host for one hour.
  Simulation sim2;
  Host busy{sim2, s};
  Domain& vm = busy.create_guest("vm", 2, 256_MB);
  sim2.spawn([](Host& hh, Domain& d) -> Task<> {
    co_await hh.execute(d, 2.0 * 3600.0, 2);  // saturate both cores for 1 h
  }(busy, vm));
  sim2.run_until(seconds(3600));
  EXPECT_LT(busy.battery_fraction(), idle_left - 0.2);
}

TEST(Battery, MainsPoweredIsAlwaysFull) {
  Simulation sim;
  Host h{sim, atom_spec()};
  sim.run_until(seconds(100000));
  EXPECT_DOUBLE_EQ(h.battery_fraction(), 1.0);
  EXPECT_FALSE(h.battery_powered());
}

TEST(XenSocket, TransferCostIsSetupPlusStreaming) {
  Simulation sim;
  XenSocketConfig cfg;
  cfg.setup = milliseconds(9);
  cfg.base_rate = mib_per_sec(62.0);
  XenSocketChannel ch{sim, cfg};
  // 1 MB: 9 ms + 1/62 s ≈ 25 ms (Table I's inter-domain column for 1 MB).
  EXPECT_NEAR(to_milliseconds(ch.transfer_time_for(1_MB)), 25.1, 1.0);
  // 100 MB: 9 ms + 100/62 s ≈ 1622 ms (paper: 1603 ms).
  EXPECT_NEAR(to_milliseconds(ch.transfer_time_for(100_MB)), 1622.0, 30.0);
}

TEST(XenSocket, LargerRingIsFasterButSublinear) {
  XenSocketConfig small;
  XenSocketConfig big;
  big.pages = 32;
  big.page_size = 2_MB;
  EXPECT_GT(big.rate(), small.rate());
  EXPECT_LT(big.rate(), small.rate() * (big.ring_bytes() / small.ring_bytes()));
}

TEST(XenSocket, AwaitableTransferAdvancesClock) {
  Simulation sim;
  XenSocketChannel ch{sim};
  Duration took{};
  sim.spawn([](Simulation& s, XenSocketChannel& c, Duration& out) -> Task<> {
    const TimePoint t0 = s.now();
    co_await c.transfer(10_MB);
    out = s.now() - t0;
  }(sim, ch, took));
  sim.run();
  EXPECT_EQ(took, ch.transfer_time_for(10_MB));
  EXPECT_EQ(ch.transfers(), 1u);
  EXPECT_EQ(ch.bytes_moved(), 10_MB);
}

// Property: with k equal jobs on c cores (1 thread each), each runs at
// min(1, c/k) GHz.
struct JobSweepParam {
  int cores;
  int jobs;
};

class JobSweep : public ::testing::TestWithParam<JobSweepParam> {};

TEST_P(JobSweep, FairShareMatchesClosedForm) {
  const auto [cores, jobs] = GetParam();
  Simulation sim;
  HostSpec s = atom_spec();
  s.cores = cores;
  Host h{sim, s};
  Domain& vm = h.create_guest("vm", cores, 256_MB);
  std::vector<Duration> times(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    sim.spawn(timed_exec(sim, h, vm, 10.0, 1, times[static_cast<std::size_t>(i)]));
  }
  sim.run();
  const double rate = std::min(1.0, static_cast<double>(cores) / jobs);
  for (const auto& t : times) EXPECT_NEAR(to_seconds(t), 10.0 / rate, 0.05 * 10.0 / rate);
}

INSTANTIATE_TEST_SUITE_P(Grid, JobSweep,
                         ::testing::Values(JobSweepParam{1, 1}, JobSweepParam{1, 4},
                                           JobSweepParam{2, 2}, JobSweepParam{2, 5},
                                           JobSweepParam{4, 3}, JobSweepParam{4, 8}));

}  // namespace
}  // namespace c4h::vmm
