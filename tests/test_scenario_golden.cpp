// Fixed-seed golden smoke test for the scenario bench family: runs
// scenario_iot_telemetry --quick twice with the same seed in separate
// scratch directories, asserts the emitted BENCH JSON artifacts are
// byte-identical, and validates the artifact against schema c4h-bench-v1
// including the tail-latency (p50/p99/p999) rows the scenarios add.
//
// On top of run-to-run identity, the artifacts are compared byte-for-byte
// against checked-in goldens (tests/golden/BENCH_*.json) captured before the
// event-engine rewrite: the simulator core may change its storage and
// solver plumbing, but a fixed seed's simulated history may not move by a
// single byte. Regenerate with C4H_UPDATE_GOLDEN=1 only for an intended
// behavior change, and explain it in the commit.
//
// The scenario binary paths are injected by CMake (C4H_SCENARIO_BIN,
// C4H_SCENARIO_FED_BIN); the golden dir is C4H_GOLDEN_DIR.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace {

// Runs a scenario binary in `dir` (created fresh) and returns the artifact
// text it emitted.
std::string run_bench_in(const std::string& bin, const std::string& artifact,
                         const std::string& dir) {
  const std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir + " && cd " + dir +
                          " && " + bin + " --quick --seed 97 > run.log 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "scenario run failed, see " << dir << "/run.log";
  std::ifstream in(dir + "/" + artifact);
  EXPECT_TRUE(in.good()) << "artifact missing in " << dir;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string run_scenario_in(const std::string& dir) {
  return run_bench_in(C4H_SCENARIO_BIN, "BENCH_scenario_iot_telemetry.json", dir);
}

std::string scratch(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") + "/c4h_scenario_golden_" + leaf;
}

// Byte-compares `fresh` against the checked-in golden artifact, or rewrites
// the golden when C4H_UPDATE_GOLDEN is set.
void expect_matches_golden(const std::string& fresh, const std::string& artifact) {
  const std::string path = std::string(C4H_GOLDEN_DIR) + "/" + artifact;
  if (std::getenv("C4H_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fresh;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run once with C4H_UPDATE_GOLDEN=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(fresh, buf.str())
      << "seed-97 artifact drifted from the checked-in golden " << path
      << "; a simulated history changed. If intended, rerun with "
         "C4H_UPDATE_GOLDEN=1 and justify the change in the commit.";
}

TEST(ScenarioGolden, SameSeedRunsAreByteIdenticalAndSchemaValid) {
  const std::string a = run_scenario_in(scratch("a"));
  const std::string b = run_scenario_in(scratch("b"));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed scenario runs must emit byte-identical artifacts";
  expect_matches_golden(a, "BENCH_scenario_iot_telemetry.json");

  const auto parsed = c4h::obs::json_parse(a);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const c4h::obs::JsonValue& root = *parsed;

  const auto* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "c4h-bench-v1");
  const auto* bench = root.find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "scenario_iot_telemetry");
  const auto* seed = root.find("seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->num, 97.0);

  const auto* series = root.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->items.empty());

  // Every row carries label/metric/value/unit; the tail extension must be
  // present for at least one workload histogram (count, mean, p50/p99/p999).
  std::set<std::string> suffixes;
  for (const auto& row : series->items) {
    for (const char* key : {"label", "metric", "unit"}) {
      const auto* v = row.find(key);
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(v->kind, c4h::obs::JsonValue::Kind::string);
    }
    const auto* value = row.find("value");
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(value->kind, c4h::obs::JsonValue::Kind::number);
    const std::string& metric = row.find("metric")->str;
    const auto dot = metric.rfind('.');
    if (dot != std::string::npos) suffixes.insert(metric.substr(dot + 1));
  }
  for (const char* tail : {"count", "mean", "p50", "p99", "p999"}) {
    EXPECT_TRUE(suffixes.contains(tail)) << "missing tail row: " << tail;
  }
}

TEST(ScenarioGolden, FederationSameSeedByteIdenticalWithPerPathTails) {
  const std::string artifact = "BENCH_scenario_federation.json";
  const std::string a = run_bench_in(C4H_SCENARIO_FED_BIN, artifact, scratch("fed_a"));
  const std::string b = run_bench_in(C4H_SCENARIO_FED_BIN, artifact, scratch("fed_b"));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed federation runs must emit byte-identical artifacts";
  expect_matches_golden(a, "BENCH_scenario_federation.json");

  const auto parsed = c4h::obs::json_parse(a);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const c4h::obs::JsonValue& root = *parsed;
  const auto* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "c4h-bench-v1");
  const auto* bench = root.find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "scenario_federation");

  const auto* series = root.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->items.empty());

  // The headline series: a fetch count row per serving tier, and tail rows
  // (p50/p99/p999) for every tier that served at least one fetch.
  std::set<std::string> count_labels;
  std::set<std::string> tail_labels;
  for (const auto& row : series->items) {
    const auto* label = row.find("label");
    const auto* metric = row.find("metric");
    ASSERT_NE(label, nullptr);
    ASSERT_NE(metric, nullptr);
    if (metric->str == "fed.fetch.count") count_labels.insert(label->str);
    if (metric->str == "fed.fetch.latency.p999") tail_labels.insert(label->str);
  }
  for (const char* path : {"path=local", "path=neighborhood", "path=wide_area", "path=cloud"}) {
    EXPECT_TRUE(count_labels.contains(path)) << "missing fetch-count row: " << path;
    EXPECT_TRUE(tail_labels.contains(path)) << "missing tail rows: " << path;
  }
}

// The ablation artifact is the headline deliverable of the placement-engine
// work: on top of byte-identity and schema validity it must *prove* the
// acceptance claim — learned within 5% of the best static policy's p99 on
// every steady scenario, strictly better than every static policy on the
// uplink-flap scenario — and carry the learned-only counter and regret-series
// rows the bench promises.
TEST(ScenarioGolden, AblationSameSeedByteIdenticalAndLearnedMeetsAcceptance) {
  const std::string artifact = "BENCH_ablation_design.json";
  const std::string a = run_bench_in(C4H_ABLATION_BIN, artifact, scratch("abl_a"));
  const std::string b = run_bench_in(C4H_ABLATION_BIN, artifact, scratch("abl_b"));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed ablation runs must emit byte-identical artifacts";
  expect_matches_golden(a, artifact);

  const auto parsed = c4h::obs::json_parse(a);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const c4h::obs::JsonValue& root = *parsed;
  const auto* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "c4h-bench-v1");
  const auto* bench = root.find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "ablation_design");

  const auto* series = root.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->items.empty());

  // label → metric → value (labels are "<scenario>/<policy>" plus the
  // learned regret-series labels "<scenario>/learned/t=<i>of12").
  std::map<std::string, std::map<std::string, double>> cells;
  for (const auto& row : series->items) {
    const auto* label = row.find("label");
    const auto* metric = row.find("metric");
    const auto* value = row.find("value");
    ASSERT_NE(label, nullptr);
    ASSERT_NE(metric, nullptr);
    ASSERT_NE(value, nullptr);
    cells[label->str][metric->str] = value->num;
  }

  const std::vector<std::string> statics = {"performance", "balanced", "battery"};
  const std::vector<std::string> steady = {"iot_fanin", "flash_crowd", "mixed_tenants"};
  auto cell_metric = [&](const std::string& label, const std::string& metric) {
    const auto cit = cells.find(label);
    EXPECT_NE(cit, cells.end()) << "missing cell " << label;
    if (cit == cells.end()) return -1.0;
    const auto mit = cit->second.find(metric);
    EXPECT_NE(mit, cit->second.end()) << "missing " << metric << " in " << label;
    return mit == cit->second.end() ? -1.0 : mit->second;
  };

  // Steady scenarios: learned p99 within 5% of the best static policy.
  for (const std::string& scn : steady) {
    double best_static = -1.0;
    for (const std::string& pol : statics) {
      const double p99 = cell_metric(scn + "/" + pol, "ablation.latency.p99");
      if (best_static < 0.0 || p99 < best_static) best_static = p99;
    }
    const double learned = cell_metric(scn + "/learned", "ablation.latency.p99");
    EXPECT_LE(learned, best_static * 1.05)
        << scn << ": learned p99 " << learned << " ns not within 5% of best static "
        << best_static << " ns";
  }

  // Uplink-flap scenario: learned strictly better than EVERY static policy,
  // at the median, the tail, and the mean.
  for (const std::string& pol : statics) {
    for (const char* m : {"ablation.latency.p50", "ablation.latency.p99", "ablation.latency.mean"}) {
      const double st = cell_metric("uplink_flap/" + pol, m);
      const double le = cell_metric("uplink_flap/learned", m);
      EXPECT_LT(le, st) << "uplink_flap " << m << ": learned " << le
                        << " must beat " << pol << " " << st;
    }
  }

  // Learned-only rows: engine counters and the fixed-length regret series,
  // present for every scenario; vetoes must actually fire under flaps.
  for (const auto& scn : {"iot_fanin", "flash_crowd", "mixed_tenants", "uplink_flap"}) {
    const std::string label = std::string(scn) + "/learned";
    for (const char* m : {"placement.decisions", "placement.switches", "placement.explorations",
                          "placement.store_vetoes", "placement.regret"}) {
      EXPECT_GE(cell_metric(label, m), 0.0) << label;
    }
    for (int i = 1; i <= 12; ++i) {
      const std::string tick = label + "/t=" + std::to_string(i) + "of12";
      EXPECT_GE(cell_metric(tick, "placement.regret"), 0.0) << tick;
    }
  }
  EXPECT_GT(cell_metric("uplink_flap/learned", "placement.store_vetoes"), 0.0)
      << "the flap scenario must exercise the store veto";
}

}  // namespace
