// VStore++ operations: create/store/fetch/process/fetch+process, storage
// policies, bin spill, command codec, decision policies.
#include <gtest/gtest.h>

#include "src/vstore/command.hpp"
#include "src/vstore/home_cloud.hpp"
#include "src/vstore/policy.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

ObjectMeta make_meta(const std::string& name, Bytes size, const std::string& type = "jpg",
                     std::vector<std::string> tags = {}) {
  ObjectMeta m;
  m.name = name;
  m.type = type;
  m.size = size;
  m.tags = std::move(tags);
  return m;
}

// --- Command codec ---

TEST(Command, RoundTrip) {
  CommandPacket p;
  p.type = CommandType::store_object;
  p.service_id = 7;
  p.domain_id = 3;
  p.shm_ref = 0xDEADBEEF;
  p.data = "camera/img-001.jpg";
  auto back = CommandPacket::deserialize(p.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, CommandType::store_object);
  EXPECT_EQ(back->service_id, 7u);
  EXPECT_EQ(back->domain_id, 3u);
  EXPECT_EQ(back->shm_ref, 0xDEADBEEFu);
  EXPECT_EQ(back->data, "camera/img-001.jpg");
}

TEST(Command, TypicalPacketIsUnder50Bytes) {
  CommandPacket p;
  p.type = CommandType::fetch_object;
  p.data = "obj-12345.jpg";
  EXPECT_LT(p.wire_size(), 50u);
}

TEST(Command, LengthHeaderMismatchRejected) {
  CommandPacket p;
  p.data = "x";
  auto wire = p.serialize();
  wire.push_back(0xFF);  // trailing garbage breaks the length header
  EXPECT_FALSE(CommandPacket::deserialize(wire).ok());
}

// --- Storage policies (pure) ---

TEST(StoragePolicy, PrivacyKeepsMp3Local) {
  const auto p = StoragePolicy::privacy();
  EXPECT_EQ(p.target_for(make_meta("a.mp3", 5_MB, "mp3")), StoreTarget::local);
  EXPECT_EQ(p.target_for(make_meta("a.avi", 5_MB, "avi")), StoreTarget::remote_cloud);
  EXPECT_EQ(p.target_for(make_meta("b.avi", 5_MB, "avi", {"private"})), StoreTarget::local);
}

TEST(StoragePolicy, SizeThresholdSplits) {
  const auto p = StoragePolicy::size_threshold(10_MB);
  EXPECT_EQ(p.target_for(make_meta("s", 5_MB)), StoreTarget::local);
  EXPECT_EQ(p.target_for(make_meta("l", 50_MB)), StoreTarget::remote_cloud);
}

TEST(ChooseCandidate, PerformancePicksLowestTotalTime) {
  std::vector<CandidateInfo> c(2);
  c[0].move_in = milliseconds(100);
  c[0].exec_estimate = seconds(5);
  c[1].move_in = seconds(1);
  c[1].exec_estimate = seconds(1);
  EXPECT_EQ(choose_candidate(DecisionPolicy::performance, c), 1u);
}

TEST(ChooseCandidate, BalancedPrefersIdleNode) {
  std::vector<CandidateInfo> c(2);
  c[0].exec_estimate = seconds(1);
  c[0].cpu_load = 0.9;
  c[1].exec_estimate = seconds(2);
  c[1].cpu_load = 0.1;
  EXPECT_EQ(choose_candidate(DecisionPolicy::balanced_utilization, c), 1u);
  EXPECT_EQ(choose_candidate(DecisionPolicy::performance, c), 0u);
}

TEST(ChooseCandidate, BatteryAwareSparesDrainedNetbook) {
  std::vector<CandidateInfo> c(2);
  c[0].exec_estimate = seconds(1);
  c[0].battery_powered = true;
  c[0].battery = 0.1;  // nearly dead netbook, fast
  c[1].exec_estimate = seconds(3);
  c[1].battery_powered = false;  // mains desktop, slower
  EXPECT_EQ(choose_candidate(DecisionPolicy::battery_aware, c), 1u);
  EXPECT_EQ(choose_candidate(DecisionPolicy::performance, c), 0u);
}

// --- End-to-end VStore++ operations ---

struct Cloud : HomeCloud {
  Cloud() : HomeCloud(make_cfg()) { bootstrap(); }
  explicit Cloud(HomeCloudConfig cfg) : HomeCloud(std::move(cfg)) { bootstrap(); }
  static HomeCloudConfig make_cfg() {
    HomeCloudConfig cfg;
    cfg.netbooks = 3;  // smaller rig for unit tests
    return cfg;
  }
};

TEST(VStore, StoreWithoutCreateFails) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    auto r = co_await h.node(0).store_object("ghost");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.code(), Errc::not_found);
  }(hc));
}

TEST(VStore, StoreThenLocalFetch) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    auto& n = h.node(0);
    (void)co_await n.create_object(make_meta("img.jpg", 2_MB));
    auto stored = co_await n.store_object("img.jpg");
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    EXPECT_EQ(stored->location.kind, ObjectLocation::Kind::home_node);
    EXPECT_EQ(stored->location.node, n.chimera().id());
    EXPECT_GT(stored->inter_domain, Duration::zero());
    EXPECT_GT(stored->metadata, Duration::zero());

    auto fetched = co_await n.fetch_object("img.jpg");
    EXPECT_TRUE(fetched.ok());
    if (!fetched.ok()) co_return;
    EXPECT_TRUE(fetched->local);
    EXPECT_EQ(fetched->size, 2_MB);
  }(hc));
}

TEST(VStore, FetchFromAnotherNode) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    (void)co_await h.node(0).create_object(make_meta("shared.avi", 8_MB, "avi"));
    (void)co_await h.node(0).store_object("shared.avi");
    auto fetched = co_await h.node(2).fetch_object("shared.avi");
    EXPECT_TRUE(fetched.ok());
    if (!fetched.ok()) co_return;
    EXPECT_FALSE(fetched->local);
    EXPECT_FALSE(fetched->from_cloud);
    EXPECT_GT(fetched->inter_node, fetched->inter_domain) << "LAN cost should dominate";
    EXPECT_GT(fetched->dht_lookup, Duration::zero());
  }(hc));
}

TEST(VStore, FetchMissingObjectFails) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    auto fetched = co_await h.node(1).fetch_object("never-stored");
    EXPECT_FALSE(fetched.ok());
    EXPECT_EQ(fetched.code(), Errc::not_found);
  }(hc));
}

TEST(VStore, RemoteCloudPolicySendsToS3) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    auto& n = h.node(0);
    (void)co_await n.create_object(make_meta("video.avi", 5_MB, "avi"));
    StoreOptions opts;
    opts.policy = StoragePolicy::privacy();  // avi is shareable → cloud
    auto stored = co_await n.store_object("video.avi", opts);
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    EXPECT_EQ(stored->location.kind, ObjectLocation::Kind::remote_cloud);
    EXPECT_TRUE(h.s3().exists(stored->location.url));

    auto fetched = co_await h.node(1).fetch_object("video.avi");
    EXPECT_TRUE(fetched.ok());
    if (!fetched.ok()) co_return;
    EXPECT_TRUE(fetched->from_cloud);
  }(hc));
}

TEST(VStore, PrivateMp3StaysHomeUnderPrivacyPolicy) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    auto& n = h.node(0);
    (void)co_await n.create_object(make_meta("song.mp3", 5_MB, "mp3"));
    StoreOptions opts;
    opts.policy = StoragePolicy::privacy();
    auto stored = co_await n.store_object("song.mp3", opts);
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    EXPECT_EQ(stored->location.kind, ObjectLocation::Kind::home_node);
    EXPECT_EQ(h.s3().object_count(), 0u);
  }(hc));
}

TEST(VStore, MandatoryBinFullSpillsToVoluntaryElsewhere) {
  HomeCloudConfig cfg;
  cfg.netbooks = 3;
  Cloud hc{cfg};
  hc.run([](HomeCloud& h) -> Task<> {
    auto& n = h.node(0);
    // Fill node 0's mandatory bin (4 GB default) almost completely.
    const Bytes filler = n.fs().mandatory_free() - 1_MB;
    (void)co_await n.create_object(make_meta("filler.bin", filler, "iso"));
    auto f = co_await n.store_object("filler.bin");
    EXPECT_TRUE(f.ok());

    (void)co_await n.create_object(make_meta("overflow.jpg", 100_MB));
    auto stored = co_await n.store_object("overflow.jpg");
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    EXPECT_EQ(stored->location.kind, ObjectLocation::Kind::home_node);
    EXPECT_NE(stored->location.node, n.chimera().id()) << "should spill to another node";
    EXPECT_GT(stored->decision, Duration::zero()) << "spill requires a placement decision";

    // And it comes back.
    auto fetched = co_await n.fetch_object("overflow.jpg");
    EXPECT_TRUE(fetched.ok());
  }(hc));
}

TEST(VStore, NonBlockingStoreReturnsImmediately) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    auto& n = h.node(0);
    (void)co_await n.create_object(make_meta("nb.jpg", 20_MB));
    StoreOptions opts;
    opts.blocking = false;
    const auto t0 = h.sim().now();
    auto stored = co_await n.store_object("nb.jpg", opts);
    const Duration nb_latency = h.sim().now() - t0;
    EXPECT_TRUE(stored.ok());
    // Wait for the async tail, then the object must be fetchable.
    co_await h.sim().delay(seconds(30));
    auto fetched = co_await n.fetch_object("nb.jpg");
    EXPECT_TRUE(fetched.ok());

    // Blocking store of the same size must cost at least as much.
    (void)co_await n.create_object(make_meta("b.jpg", 20_MB));
    const auto t1 = h.sim().now();
    (void)co_await n.store_object("b.jpg");
    const Duration b_latency = h.sim().now() - t1;
    EXPECT_LT(to_seconds(nb_latency), to_seconds(b_latency));
  }(hc));
}

TEST(VStore, ProcessRunsWhereDeployed) {
  Cloud hc;
  auto fdet = services::face_detect_profile();
  hc.registry().add_profile(fdet);
  hc.node(1).deploy_service(fdet);
  hc.run([](HomeCloud& h) -> Task<> {
    const auto fd = *h.registry().profile("face-detect", 1);
    (void)co_await h.node(1).publish_services();

    (void)co_await h.node(0).create_object(make_meta("cam.jpg", 1_MB));
    (void)co_await h.node(0).store_object("cam.jpg");

    auto res = co_await h.node(0).process("cam.jpg", fd);
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    EXPECT_EQ(res->site.kind, ExecSite::Kind::home_node);
    EXPECT_EQ(res->site.node, h.node(1).chimera().id());
    EXPECT_GT(res->exec, Duration::zero());
    EXPECT_GT(res->decision, Duration::zero());
  }(hc));
}

TEST(VStore, ProcessFailsWhenServiceNowhere) {
  Cloud hc;
  hc.run([](HomeCloud& h) -> Task<> {
    (void)co_await h.node(0).create_object(make_meta("o.jpg", 1_MB));
    (void)co_await h.node(0).store_object("o.jpg");
    auto res = co_await h.node(0).process("o.jpg", services::face_detect_profile());
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.code(), Errc::unavailable);
  }(hc));
}

TEST(VStore, FetchProcessPrefersCapableRequester) {
  Cloud hc;
  auto fdet = services::face_detect_profile();
  hc.registry().add_profile(fdet);
  hc.node(0).deploy_service(fdet);
  hc.node(2).deploy_service(fdet);
  hc.run([](HomeCloud& h) -> Task<> {
    const auto fd = *h.registry().profile("face-detect", 1);
    (void)co_await h.node(0).publish_services();
    (void)co_await h.node(2).publish_services();

    (void)co_await h.node(2).create_object(make_meta("img.jpg", 1_MB));
    (void)co_await h.node(2).store_object("img.jpg");

    auto res = co_await h.node(0).fetch_process("img.jpg", fd);
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    EXPECT_EQ(res->site.kind, ExecSite::Kind::home_node);
    EXPECT_EQ(res->site.node, h.node(0).chimera().id()) << "requester is capable, runs locally";
  }(hc));
}

TEST(VStore, ProcessOnEc2WhenCloudIsBest) {
  Cloud hc;
  auto frec = services::face_recognize_profile(60_MB);
  hc.registry().add_profile(frec);
  hc.deploy_service_in_cloud(frec);  // only the cloud offers it
  hc.run([](HomeCloud& h) -> Task<> {
    const auto fr = *h.registry().profile("face-recognize", 2);
    (void)co_await h.node(0).create_object(make_meta("face.jpg", 1_MB));
    (void)co_await h.node(0).store_object("face.jpg");
    auto res = co_await h.node(0).process("face.jpg", fr);
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    EXPECT_EQ(res->site.kind, ExecSite::Kind::ec2);
    EXPECT_GT(res->move, Duration::zero()) << "argument must cross the WAN";
  }(hc));
}

TEST(VStore, DecisionAccountsForMovementCosts) {
  // With the service on a remote node and on the owner, performance policy
  // must pick the owner for a large object (no movement) when machines are
  // comparable.
  HomeCloudConfig cfg;
  cfg.netbooks = 3;
  cfg.with_desktop = false;  // all-equal netbooks
  Cloud hc{cfg};
  auto x264 = services::x264_profile();
  hc.registry().add_profile(x264);
  hc.node(1).deploy_service(x264);
  hc.node(2).deploy_service(x264);
  hc.run([](HomeCloud& h) -> Task<> {
    const auto xp = *h.registry().profile("x264-transcode", 3);
    (void)co_await h.node(1).publish_services();
    (void)co_await h.node(2).publish_services();

    // Object lives on node 1 (stored from node 1, local-first).
    (void)co_await h.node(1).create_object(make_meta("film.avi", 50_MB, "avi"));
    (void)co_await h.node(1).store_object("film.avi");

    auto res = co_await h.node(0).process("film.avi", xp);
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    EXPECT_EQ(res->site.node, h.node(1).chimera().id())
        << "decision should avoid moving 50 MB between equal machines";
  }(hc));
}

TEST(VStore, ServicesSurviveOwnerReadingObject) {
  // process() at the owner must read the file from the owner's disk and not
  // lose it (regression guard for bookkeeping).
  Cloud hc;
  auto fdet = services::face_detect_profile();
  hc.registry().add_profile(fdet);
  hc.node(0).deploy_service(fdet);
  hc.run([](HomeCloud& h) -> Task<> {
    const auto fd = *h.registry().profile("face-detect", 1);
    (void)co_await h.node(0).publish_services();
    (void)co_await h.node(0).create_object(make_meta("a.jpg", 1_MB));
    (void)co_await h.node(0).store_object("a.jpg");
    for (int i = 0; i < 3; ++i) {
      auto res = co_await h.node(0).process("a.jpg", fd);
      EXPECT_TRUE(res.ok()) << "iteration " << i;
    }
    EXPECT_TRUE(h.node(0).fs().contains("a.jpg"));
  }(hc));
}

}  // namespace
}  // namespace c4h::vstore
