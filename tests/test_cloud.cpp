// Public-cloud substrate: S3 blob semantics, WAN transport behaviour
// (asymmetry, variability, the Fig-5 throughput shape), EC2 instances.
#include <gtest/gtest.h>

#include <memory>

#include "src/cloud/cloud.hpp"
#include "src/common/stats.hpp"
#include "src/sim/sync.hpp"

namespace c4h::cloud {
namespace {

using sim::Simulation;
using sim::Task;

// Home node → gateway → WAN → cloud endpoint.
struct Rig {
  Simulation sim{3};
  net::NetNodeId home, gw, cloud_ep;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<S3Store> s3;

  explicit Rig(CloudTransport t = {}, double wan_jitter = 0.0) {
    net::Topology topo;
    home = topo.add_node();
    gw = topo.add_node();
    cloud_ep = topo.add_node();
    topo.add_duplex(home, gw, mbps(95.5), microseconds(150));
    // Asymmetric WAN: upload thinner than download, both jittery.
    topo.add_link(gw, cloud_ep, mib_per_sec(1.0), milliseconds(25), 0.2, wan_jitter);
    topo.add_link(cloud_ep, gw, mib_per_sec(1.45), milliseconds(25), 0.2, wan_jitter);
    net = std::make_unique<net::Network>(sim, std::move(topo));
    s3 = std::make_unique<S3Store>(*net, cloud_ep, t);
  }

  template <typename Fn>
  void run(Fn&& body) {
    sim.spawn(body(*this));
    sim.run();
  }
};

TEST(S3, UrlFormat) {
  EXPECT_EQ(S3Store::url_for("photos", "img-1.jpg"), "s3://photos/img-1.jpg");
}

TEST(S3, PutThenGetReturnsSize) {
  Rig rig;
  rig.run([](Rig& r) -> Task<> {
    auto put = co_await r.s3->put(r.home, "s3://b/x", 5_MB);
    EXPECT_TRUE(put.ok());
    EXPECT_TRUE(r.s3->exists("s3://b/x"));
    auto got = co_await r.s3->get(r.home, "s3://b/x");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, 5_MB);
    }
  });
}

TEST(S3, GetMissingIsNotFoundAfterRoundTrip) {
  Rig rig;
  rig.run([](Rig& r) -> Task<> {
    const auto t0 = r.sim.now();
    auto got = co_await r.s3->get(r.home, "s3://b/missing");
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.code(), Errc::not_found);
    EXPECT_GT(r.sim.now() - t0, milliseconds(40));  // paid the WAN RTT
  });
}

TEST(S3, EraseRemovesObject) {
  Rig rig;
  rig.run([](Rig& r) -> Task<> {
    (void)co_await r.s3->put(r.home, "s3://b/x", 1_MB);
    auto er = co_await r.s3->erase(r.home, "s3://b/x");
    EXPECT_TRUE(er.ok());
    EXPECT_FALSE(r.s3->exists("s3://b/x"));
    auto again = co_await r.s3->erase(r.home, "s3://b/x");
    EXPECT_FALSE(again.ok());
  });
}

TEST(S3, StoredBytesAccumulate) {
  Rig rig;
  rig.run([](Rig& r) -> Task<> {
    (void)co_await r.s3->put(r.home, "s3://b/1", 1_MB);
    (void)co_await r.s3->put(r.home, "s3://b/2", 2_MB);
    EXPECT_EQ(r.s3->stored_bytes(), 3_MB);
    EXPECT_EQ(r.s3->object_count(), 2u);
  });
}

TEST(S3, UploadSlowerThanDownload) {
  Rig rig;
  rig.run([](Rig& r) -> Task<> {
    const auto t0 = r.sim.now();
    (void)co_await r.s3->put(r.home, "s3://b/x", 10_MB);
    const Duration up = r.sim.now() - t0;
    const auto t1 = r.sim.now();
    (void)co_await r.s3->get(r.home, "s3://b/x");
    const Duration down = r.sim.now() - t1;
    EXPECT_GT(to_seconds(up), to_seconds(down) * 1.2) << "upload should be slower";
  });
}

TEST(S3, RemoteLatencyFarExceedsLan) {
  // Fig 4's core claim: remote accesses are much slower and more variable
  // than LAN accesses for the same sizes.
  Rig rig{{}, /*wan_jitter=*/0.5};
  Samples remote;
  for (int i = 0; i < 12; ++i) {
    rig.run([i, &remote](Rig& r) -> Task<> {
      const auto t0 = r.sim.now();
      (void)co_await r.s3->put(r.home, "s3://b/o" + std::to_string(i), 5_MB);
      remote.add(to_seconds(r.sim.now() - t0));
    });
  }
  // 5 MB over ~1 MB/s WAN ≈ 5 s; LAN would take ~0.4 s.
  EXPECT_GT(remote.mean(), 2.0);
  EXPECT_GT(remote.stddev(), 0.2);  // visible variability
}

TEST(S3, ThroughputPeaksAtMidObjectSizes) {
  // The Fig-5 shape end-to-end through the event-driven engine: MB/s rises
  // from small to ~20 MB objects, then declines for super-large ones.
  auto tput_for = [](Bytes size) {
    Rig rig;  // no jitter: isolate the transport phases
    double out = 0;
    rig.run([size, &out](Rig& r) -> Task<> {
      const auto t0 = r.sim.now();
      (void)co_await r.s3->put(r.home, "s3://b/m", size);
      out = static_cast<double>(size) / to_seconds(r.sim.now() - t0);
    });
    return out;
  };
  const double small = tput_for(2_MB);
  const double mid = tput_for(20_MB);
  const double big = tput_for(100_MB);
  EXPECT_LT(small, mid);
  EXPECT_GT(mid, big);
}

TEST(S3, ConcurrentTransfersShareTheUplink) {
  Rig rig;
  std::vector<Duration> times(3);
  for (int i = 0; i < 3; ++i) {
    rig.sim.spawn([](Rig& r, int idx, Duration& out) -> Task<> {
      const auto t0 = r.sim.now();
      (void)co_await r.s3->put(r.home, "s3://b/c" + std::to_string(idx), 5_MB);
      out = r.sim.now() - t0;
    }(rig, i, times[static_cast<std::size_t>(i)]));
  }
  rig.sim.run();
  // Three 5 MB uploads over a 1 MiB/s uplink ≈ 15 s each when concurrent.
  for (const auto& t : times) EXPECT_GT(to_seconds(t), 12.0);
}

TEST(Ec2, ExtraLargeSpecMatchesPaper) {
  const auto s = Ec2Instance::extra_large_spec();
  EXPECT_EQ(s.cores, 5);
  EXPECT_NEAR(s.ghz, 2.9, 1e-9);
  EXPECT_EQ(s.memory, Bytes{14} * 1024 * 1024 * 1024);
}

TEST(Ec2, InstanceExecutesFasterThanAtom) {
  Simulation sim;
  net::Topology topo;
  const auto ep = topo.add_node();
  net::Network net{sim, std::move(topo)};
  (void)net;

  Ec2Instance ec2{sim, ep, Ec2Instance::extra_large_spec()};
  vmm::HostSpec atom;
  atom.name = "atom";
  atom.cores = 2;
  atom.ghz = 1.66;
  vmm::Host atom_host{sim, atom};
  auto& atom_vm = atom_host.create_guest("vm", 1, 512_MB);

  Duration ec2_time{}, atom_time{};
  sim.spawn([](Simulation& s, Ec2Instance& e, Duration& out) -> Task<> {
    const auto t0 = s.now();
    co_await e.host().execute(e.domain(), 100.0, 5);
    out = s.now() - t0;
  }(sim, ec2, ec2_time));
  sim.spawn([](Simulation& s, vmm::Host& h, vmm::Domain& d, Duration& out) -> Task<> {
    const auto t0 = s.now();
    co_await h.execute(d, 100.0, 1);
    out = s.now() - t0;
  }(sim, atom_host, atom_vm, atom_time));
  sim.run();
  EXPECT_LT(to_seconds(ec2_time) * 4, to_seconds(atom_time));
}

}  // namespace
}  // namespace c4h::cloud
