// Unit tests for the common substrate: SHA-1, keys, serialization, RNG,
// stats, Result.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "src/common/key.hpp"
#include "src/common/result.hpp"
#include "src/common/rng.hpp"
#include "src/common/serial.hpp"
#include "src/common/sha1.hpp"
#include "src/common/stats.hpp"
#include "src/common/units.hpp"

namespace c4h {
namespace {

std::string hex(const Sha1::Digest& d) {
  static constexpr char k[] = "0123456789abcdef";
  std::string s;
  for (auto b : d) {
    s += k[b >> 4];
    s += k[b & 0xF];
  }
  return s;
}

// --- SHA-1 (FIPS 180-1 test vectors) ---

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex(Sha1::hash("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(Sha1::hash("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, LongerVector) {
  EXPECT_EQ(hex(Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  Sha1 h;
  for (char c : s) h.update(&c, 1);
  EXPECT_EQ(hex(h.finish()), hex(Sha1::hash(s)));
}

TEST(Sha1, BlockBoundarySizes) {
  // Exercise the padding logic at and around the 64-byte block boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    const std::string s(n, 'x');
    Sha1 a;
    a.update(s);
    Sha1 b;
    b.update(s.substr(0, n / 2));
    b.update(s.substr(n / 2));
    EXPECT_EQ(hex(a.finish()), hex(b.finish())) << "n=" << n;
  }
}

// --- Key ---

TEST(Key, FromNameIs40Bits) {
  const Key k = Key::from_name("object-1");
  EXPECT_EQ(k.raw() & ~Key::kMask, 0u);
  EXPECT_EQ(k.to_string().size(), 10u);
}

TEST(Key, Deterministic) {
  EXPECT_EQ(Key::from_name("a"), Key::from_name("a"));
  EXPECT_NE(Key::from_name("a"), Key::from_name("b"));
}

TEST(Key, DigitsRoundTrip) {
  const Key k{0x123456789Aull};
  EXPECT_EQ(k.digit(0), 1u);
  EXPECT_EQ(k.digit(1), 2u);
  EXPECT_EQ(k.digit(9), 0xAu);
  EXPECT_EQ(k.to_string(), "123456789a");
}

TEST(Key, SharedPrefixLen) {
  EXPECT_EQ(Key{0x1234500000ull}.shared_prefix_len(Key{0x1234500000ull}), 10);
  EXPECT_EQ(Key{0x1234500000ull}.shared_prefix_len(Key{0x1234600000ull}), 4);
  EXPECT_EQ(Key{0x1000000000ull}.shared_prefix_len(Key{0x2000000000ull}), 0);
}

TEST(Key, RingDistanceSymmetricAndWraps) {
  const Key a{1};
  const Key b{Key::kMask};  // max key, adjacent to 0 on the ring
  EXPECT_EQ(a.ring_distance(b), b.ring_distance(a));
  EXPECT_EQ(a.ring_distance(b), 2u);
  EXPECT_EQ(Key{0}.ring_distance(Key{Key::kMask}), 1u);
}

TEST(Key, ClockwiseDistance) {
  EXPECT_EQ(Key{10}.clockwise_distance(Key{15}), 5u);
  EXPECT_EQ(Key{15}.clockwise_distance(Key{10}), Key::kMask + 1 - 5);
}

TEST(Key, HashSpreadsAcrossSpace) {
  // Sanity: 1000 distinct names should not collide in 2^40 space and should
  // cover all 16 leading digits.
  std::set<Key> keys;
  std::set<unsigned> first_digits;
  for (int i = 0; i < 1000; ++i) {
    const Key k = Key::from_name("name-" + std::to_string(i));
    keys.insert(k);
    first_digits.insert(k.digit(0));
  }
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_EQ(first_digits.size(), 16u);
}

// --- Serialization ---

TEST(Serial, RoundTripScalars) {
  Writer w;
  w.write(std::uint32_t{42});
  w.write(std::int64_t{-7});
  w.write(3.5);
  w.write(true);
  w.write(std::string{"hello"});

  Reader r{w.buffer()};
  EXPECT_EQ(*r.read<std::uint32_t>(), 42u);
  EXPECT_EQ(*r.read<std::int64_t>(), -7);
  EXPECT_EQ(*r.read_double(), 3.5);
  EXPECT_TRUE(*r.read_bool());
  EXPECT_EQ(*r.read_string(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Serial, RoundTripVectorAndBytes) {
  Writer w;
  const std::vector<std::string> v{"a", "bb", "ccc"};
  w.write_vector(v, [](Writer& ww, const std::string& s) { ww.write(s); });
  const Buffer blob{1, 2, 3, 4};
  w.write_bytes(blob);

  Reader r{w.buffer()};
  auto rv = r.read_vector<std::string>([](Reader& rr) { return rr.read_string(); });
  ASSERT_TRUE(rv.ok());
  EXPECT_EQ(*rv, v);
  auto rb = r.read_bytes();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*rb, blob);
}

TEST(Serial, TruncatedBufferFailsGracefully) {
  Writer w;
  w.write(std::string{"hello world"});
  Buffer truncated(w.buffer().begin(), w.buffer().begin() + 6);
  Reader r{truncated};
  auto s = r.read_string();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::io_error);
}

TEST(Serial, EnumRoundTrip) {
  enum class E : std::uint8_t { a = 1, b = 200 };
  Writer w;
  w.write(E::b);
  Reader r{w.buffer()};
  EXPECT_EQ(*r.read<E>(), E::b);
}

// --- Result ---

TEST(Result, ValueAndError) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);

  Result<int> err{Errc::not_found, "nope"};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::not_found);
  EXPECT_EQ(err.error().message, "nope");
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> err{Errc::no_capacity};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::no_capacity);
}

// --- RNG ---

TEST(Rng, DeterministicFromSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng r{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMeanIsCalibrated) {
  Rng r{13};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.lognormal_mean(5.0, 0.5));
  EXPECT_NEAR(acc.mean(), 5.0, 0.1);
}

TEST(Rng, ZipfIsSkewedAndBounded) {
  Rng r{17};
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[r.zipf(100, 1.0)];
  for (const auto& [k, _] : counts) EXPECT_LT(k, 100u);
  EXPECT_GT(counts[0], counts[50] * 5);  // strong head skew
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{42};
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

// --- Stats ---

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), 2.138, 0.001);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1.0, 0.01);
  EXPECT_NEAR(s.percentile(100), 100.0, 0.01);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.2);
}

TEST(Stats, HistogramBuckets) {
  Histogram h{0.0, 10.0, 10};
  h.add(-1);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

// --- Units ---

TEST(Units, Conversions) {
  EXPECT_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_EQ(milliseconds(1500), microseconds(1500000));
  EXPECT_EQ(10_MB, Bytes{10} * 1024 * 1024);
  EXPECT_NEAR(to_mbps(mbps(95.5)), 95.5, 1e-9);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1 byte at 3 bytes/sec should take ceil(1/3 s) in integer ns.
  const Duration d = transfer_time(1, 3.0);
  EXPECT_GE(to_seconds(d), 1.0 / 3.0);
  EXPECT_LT(to_seconds(d), 1.0 / 3.0 + 1e-8);
}

TEST(Units, FromSecondsNeverEarly) {
  for (double s : {0.1, 0.123456789, 1e-9, 3.999999}) {
    EXPECT_GE(to_seconds(from_seconds(s)), s - 1e-15);
  }
}

}  // namespace
}  // namespace c4h
