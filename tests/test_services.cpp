// Service profiles, execution model, and registry-based discovery.
#include <gtest/gtest.h>

#include "src/services/registry.hpp"
#include "src/services/service.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::services {
namespace {

using sim::Simulation;
using sim::Task;

TEST(ServiceProfile, WorkFollowsQuadraticModel) {
  const auto p = face_detect_profile();
  for (const double mib : {0.25, 1.0, 2.0, 4.0}) {
    const double want =
        p.fixed_gigacycles + p.gigacycles_per_mib * mib + p.gigacycles_per_mib2 * mib * mib;
    EXPECT_NEAR(p.work_for(static_cast<Bytes>(mib * 1024 * 1024)), want, 1e-9);
  }
  // Super-linear: doubling the input more than doubles the marginal work.
  const double w1 = p.work_for(1_MB) - p.fixed_gigacycles;
  const double w2 = p.work_for(2_MB) - p.fixed_gigacycles;
  EXPECT_GT(w2, 2.0 * w1);
}

TEST(ServiceProfile, FaceRecWorkingSetIncludesTrainingData) {
  const auto p = face_recognize_profile(60_MB);
  EXPECT_GE(p.working_set_for(0), 60_MB);
  EXPECT_GT(p.working_set_for(2_MB), p.working_set_for(1_MB));
}

TEST(ServiceProfile, X264ShrinksOutput) {
  const auto p = x264_profile();
  EXPECT_LT(p.output_size(100_MB), 50_MB);
}

TEST(ServiceProfile, FaceRecOutputIsJustAnId) {
  const auto p = face_recognize_profile();
  EXPECT_EQ(p.output_size(2_MB), 0u);
}

TEST(ServiceProfile, AdmissibleChecksMinResources) {
  Simulation sim;
  vmm::HostSpec hs;
  hs.name = "h";
  hs.cores = 2;
  hs.ghz = 1.66;
  vmm::Host host{sim, hs};
  auto& tiny = host.create_guest("tiny", 1, 32_MB);
  auto& ok = host.create_guest("ok", 1, 256_MB);
  const auto p = face_detect_profile();
  EXPECT_FALSE(p.admissible(tiny));
  EXPECT_TRUE(p.admissible(ok));
}

TEST(ServiceProfile, EstimateFasterOnBiggerMachine) {
  Simulation sim;
  vmm::HostSpec atom;
  atom.name = "atom";
  atom.cores = 2;
  atom.ghz = 1.3;
  vmm::Host atom_host{sim, atom};
  auto& s1 = atom_host.create_guest("s1", 1, 512_MB);

  vmm::HostSpec quad;
  quad.name = "quad";
  quad.cores = 4;
  quad.ghz = 1.8;
  vmm::Host quad_host{sim, quad};
  auto& s2 = quad_host.create_guest("s2", 4, 768_MB);

  const auto p = face_detect_profile();
  EXPECT_GT(p.estimate(s1, 1_MB), p.estimate(s2, 1_MB));
}

TEST(ServiceProfile, EstimateBlowsUpWhenMemoryTooSmall) {
  // Fig 7's S2: 128 MB VM; face recognition's working set at 2 MB images
  // exceeds it, so the estimate must degrade sharply vs the 1 MB case.
  Simulation sim;
  vmm::HostSpec quad;
  quad.name = "quad";
  quad.cores = 4;
  quad.ghz = 1.8;
  vmm::Host host{sim, quad};
  auto& s2 = host.create_guest("s2", 4, 128_MB);

  const auto frec = face_recognize_profile(60_MB);
  const double t_small = to_seconds(frec.estimate(s2, 256_KB));
  const double t1 = to_seconds(frec.estimate(s2, 1_MB));
  const double t2 = to_seconds(frec.estimate(s2, 2_MB));
  // Thrash multiplier makes 2 MB disproportionately slower than 2x the 1 MB
  // time would suggest.
  EXPECT_GT(t2 / t1, 2.5) << "no visible thrash at 2 MB";
  EXPECT_LT(t1 / t_small, 12.0);
}

TEST(ExecuteService, PaysTheThrashPenalty) {
  Simulation sim;
  vmm::HostSpec hs;
  hs.name = "h";
  hs.cores = 4;
  hs.ghz = 1.8;
  hs.virt_overhead = 0.0;
  vmm::Host host{sim, hs};
  auto& fits = host.create_guest("fits", 2, 512_MB);
  auto& thrashes = host.create_guest("thrashes", 2, 128_MB);

  const auto frec = face_recognize_profile(60_MB);
  Duration t_fit{}, t_thrash{};
  sim.spawn([](Simulation& s, vmm::Domain& d, const ServiceProfile p, Duration& out) -> Task<> {
    const auto t0 = s.now();
    (void)co_await execute_service(p, d, 2_MB);
    out = s.now() - t0;
  }(sim, fits, frec, t_fit));
  sim.run();
  sim.spawn([](Simulation& s, vmm::Domain& d, const ServiceProfile p, Duration& out) -> Task<> {
    const auto t0 = s.now();
    (void)co_await execute_service(p, d, 2_MB);
    out = s.now() - t0;
  }(sim, thrashes, frec, t_thrash));
  sim.run();
  EXPECT_GT(to_seconds(t_thrash), to_seconds(t_fit) * 1.5);
}

TEST(Registry, RegisterAndLookup) {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = 3;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();

  auto fdet = face_detect_profile();
  hc.registry().add_profile(fdet);
  ASSERT_NE(hc.registry().profile("face-detect", 1), nullptr);
  EXPECT_EQ(hc.registry().profile("face-detect", 99), nullptr);

  hc.run([](vstore::HomeCloud& h) -> Task<> {
    const auto fd = *h.registry().profile("face-detect", 1);
    auto r1 = co_await h.registry().register_node(h.node(0).chimera(), fd);
    EXPECT_TRUE(r1.ok());
    auto r2 = co_await h.registry().register_node(h.node(2).chimera(), fd);
    EXPECT_TRUE(r2.ok());
    // Duplicate registration is idempotent.
    auto r3 = co_await h.registry().register_node(h.node(0).chimera(), fd);
    EXPECT_TRUE(r3.ok());

    auto nodes = co_await h.registry().lookup(h.node(1).chimera(), fd);
    EXPECT_TRUE(nodes.ok());
    if (nodes.ok()) {
      EXPECT_EQ(nodes->size(), 2u);
    }
  }(hc));
}

TEST(Registry, DeregisterRemovesNode) {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = 3;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();
  auto fdet = face_detect_profile();
  hc.registry().add_profile(fdet);
  hc.run([](vstore::HomeCloud& h) -> Task<> {
    const auto fd = *h.registry().profile("face-detect", 1);
    (void)co_await h.registry().register_node(h.node(0).chimera(), fd);
    (void)co_await h.registry().register_node(h.node(1).chimera(), fd);
    (void)co_await h.registry().deregister_node(h.node(0).chimera(), fd);
    auto nodes = co_await h.registry().lookup(h.node(2).chimera(), fd);
    EXPECT_TRUE(nodes.ok());
    if (nodes.ok()) {
      EXPECT_EQ(nodes->size(), 1u);
      EXPECT_EQ(nodes->front(), h.node(1).chimera().id());
    }
  }(hc));
}

TEST(Registry, LookupUnregisteredServiceFails) {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = 2;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();
  hc.run([](vstore::HomeCloud& h) -> Task<> {
    auto nodes = co_await h.registry().lookup(h.node(0).chimera(), face_detect_profile());
    EXPECT_FALSE(nodes.ok());
  }(hc));
}

}  // namespace
}  // namespace c4h::services
