// Golden-trace tests: a fixed-seed store + fetch + process + fetch+process
// scenario must produce (a) the exact span tree checked into
// tests/golden/trace_scenario.txt — names, nesting, attributes, hop counts —
// and (b) byte-identical *timed* traces across two runs of the same seed.
//
// Regenerate the golden file after an intentional instrumentation change:
//   C4H_UPDATE_GOLDEN=1 ./test_trace_golden
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/vstore/home_cloud.hpp"

namespace c4h {
namespace {

using sim::Task;

constexpr std::uint64_t kSeed = 7;
const char* kGoldenPath = C4H_GOLDEN_DIR "/trace_scenario.txt";

struct ScenarioTrace {
  std::string untimed;  // names + attrs + errors, no timestamps
  std::string timed;    // plus @start+duration per span
  // Per root-op name: deepest child chain below it and subtree counts.
  std::map<std::string, int> depth;
  std::map<std::string, int> route_spans;
  std::map<std::string, int> net_msgs;
  std::vector<std::string> root_order;
};

// One user's afternoon, deterministically: node 1 stores a video, another
// node fetches it, node 0 has it transcoded, node 0 fetch+processes it.
ScenarioTrace run_scenario(std::uint64_t seed) {
  vstore::HomeCloudConfig cfg;
  cfg.seed = seed;
  cfg.start_monitors = false;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();

  auto x264 = services::x264_profile();
  hc.registry().add_profile(x264);
  hc.node(1).deploy_service(x264);
  hc.desktop().deploy_service(x264);

  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    (void)co_await h.node(1).publish_services();
    (void)co_await h.desktop().publish_services();

    // Setup noise (joins, publishes) stays out of the trace.
    h.tracer().set_enabled(true);

    const std::string name = "golden/film.avi";
    vstore::ObjectMeta meta;
    meta.name = name;
    meta.type = "avi";
    meta.size = 4_MB;
    (void)co_await h.node(1).create_object(meta);
    (void)co_await h.node(1).store_object(name);

    // Fetch from a node that neither stores the object nor owns its
    // metadata key, so the lookup routes and the transfer crosses the LAN.
    const Key meta_owner = h.overlay().true_owner(Key::from_name(name));
    std::size_t fetcher = 0;
    while (fetcher < h.node_count() &&
           (h.node(fetcher).chimera().id() == meta_owner || fetcher == 1)) {
      ++fetcher;
    }
    (void)co_await h.node(fetcher).fetch_object(name);

    // Requester cannot run the service → decision engine moves the work.
    (void)co_await h.node(0).process(name, x264);
    (void)co_await h.node(0).fetch_process(name, x264);

    h.tracer().set_enabled(false);
  }(hc));

  ScenarioTrace out;
  const obs::Tracer& tr = hc.tracer();
  out.untimed = tr.render_all(false);
  out.timed = tr.render_all(true);
  for (const obs::Span* root : tr.roots()) {
    out.root_order.push_back(root->name);
    // Composite ops nest the interesting roots (vstore.fetch under
    // vstore.fetch_process); keep the first occurrence per name.
    if (out.depth.find(root->name) == out.depth.end()) {
      out.depth[root->name] = tr.depth_below(root->id);
      out.route_spans[root->name] = tr.count_in_subtree(root->id, "overlay.route");
      out.net_msgs[root->name] = tr.count_in_subtree(root->id, "net.msg");
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(GoldenTrace, MatchesCheckedInTrace) {
  const ScenarioTrace t = run_scenario(kSeed);
  ASSERT_FALSE(t.untimed.empty());

  if (std::getenv("C4H_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    out << t.untimed;
    ASSERT_TRUE(out.good()) << "failed to write " << kGoldenPath;
    GTEST_SKIP() << "golden file updated: " << kGoldenPath;
  }

  const std::string golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << kGoldenPath
                               << " — regenerate with C4H_UPDATE_GOLDEN=1";
  EXPECT_EQ(t.untimed, golden)
      << "span tree drifted from tests/golden/trace_scenario.txt. If the "
         "instrumentation change is intentional, regenerate with "
         "C4H_UPDATE_GOLDEN=1 and review the diff.";
}

TEST(GoldenTrace, SameSeedSameBytes) {
  const ScenarioTrace a = run_scenario(kSeed);
  const ScenarioTrace b = run_scenario(kSeed);
  // Byte-identical including every timestamp and duration — the whole
  // deterministic-observability claim in one assertion.
  EXPECT_EQ(a.timed, b.timed);
  EXPECT_EQ(a.untimed, b.untimed);
}

TEST(GoldenTrace, EveryOpSpansAtLeastThreeLayers) {
  const ScenarioTrace t = run_scenario(kSeed);
  // vstore → kv/overlay → net: each op's tree must cross three layers.
  for (const char* op :
       {"vstore.store", "vstore.fetch", "vstore.process", "vstore.fetch_process"}) {
    ASSERT_TRUE(t.depth.find(op) != t.depth.end()) << op << " root missing";
    EXPECT_GE(t.depth.at(op), 3) << op << " tree too shallow:\n" << t.untimed;
  }
}

TEST(GoldenTrace, OpsRouteThroughOverlayAndNetwork) {
  const ScenarioTrace t = run_scenario(kSeed);
  // Store and fetch both consult the DHT (route spans) and touch the wire
  // (net.msg hops); the decision/metadata machinery of process does too.
  for (const char* op : {"vstore.store", "vstore.fetch", "vstore.process"}) {
    EXPECT_GE(t.route_spans.at(op), 1) << op;
    EXPECT_GE(t.net_msgs.at(op), 1) << op;
  }
}

TEST(GoldenTrace, RootOrderFollowsOperationOrder) {
  const ScenarioTrace t = run_scenario(kSeed);
  ASSERT_GE(t.root_order.size(), 4u);
  EXPECT_EQ(t.root_order[0], "vstore.create");
  EXPECT_EQ(t.root_order[1], "vstore.store");
  EXPECT_EQ(t.root_order[2], "vstore.fetch");
  EXPECT_EQ(t.root_order[3], "vstore.process");
  EXPECT_EQ(t.root_order.back(), "vstore.fetch_process");
}

TEST(GoldenTrace, DisabledTracerRecordsNothing) {
  vstore::HomeCloudConfig cfg;
  cfg.seed = kSeed;
  cfg.start_monitors = false;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();
  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    vstore::ObjectMeta meta;
    meta.name = "untraced.bin";
    meta.size = 1_MB;
    (void)co_await h.node(0).create_object(meta);
    (void)co_await h.node(0).store_object("untraced.bin");
    (void)co_await h.node(0).fetch_object("untraced.bin");
  }(hc));
  EXPECT_EQ(hc.tracer().size(), 0u);
}

}  // namespace
}  // namespace c4h
