// Bench artifact emission tests: JSON writer/parser round-trip, string
// escaping, the c4h-bench-v1 schema fields, and deterministic output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/obs/bench_emit.hpp"
#include "src/obs/json.hpp"

namespace c4h::obs {
namespace {

// --- Escaping ----------------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// --- Writer/parser round-trip -------------------------------------------------

TEST(JsonRoundTrip, ObjectWithAllValueKinds) {
  JsonWriter w;
  w.begin_object()
      .key("s").value("text with \"quotes\" and \\slashes\\")
      .key("i").value(std::uint64_t{18446744073709551615ull})
      .key("d").value(2.5)
      .key("neg").value(std::int64_t{-42})
      .key("t").value(true)
      .key("f").value(false);
  w.key("n").null();
  w.key("arr").begin_array().value(1).value(2).value(3).end_array();
  w.key("obj").begin_object().key("nested").value("x").end_object();
  w.end_object();

  auto parsed = json_parse(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const JsonValue& v = *parsed;
  ASSERT_EQ(v.kind, JsonValue::Kind::object);
  EXPECT_EQ(v.find("s")->str, "text with \"quotes\" and \\slashes\\");
  EXPECT_DOUBLE_EQ(v.find("d")->num, 2.5);
  EXPECT_DOUBLE_EQ(v.find("neg")->num, -42.0);
  EXPECT_TRUE(v.find("t")->b);
  EXPECT_FALSE(v.find("f")->b);
  EXPECT_EQ(v.find("n")->kind, JsonValue::Kind::null_v);
  ASSERT_EQ(v.find("arr")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("arr")->items[1].num, 2.0);
  EXPECT_EQ(v.find("obj")->find("nested")->str, "x");
}

TEST(JsonRoundTrip, MemberOrderIsPreserved) {
  JsonWriter w;
  w.begin_object().key("zeta").value(1).key("alpha").value(2).key("mid").value(3).end_object();
  auto parsed = json_parse(w.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->members.size(), 3u);
  EXPECT_EQ(parsed->members[0].first, "zeta");
  EXPECT_EQ(parsed->members[1].first, "alpha");
  EXPECT_EQ(parsed->members[2].first, "mid");
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_FALSE(json_parse("{} trailing").ok());
  EXPECT_FALSE(json_parse("{\"a\":}").ok());
  EXPECT_FALSE(json_parse("").ok());
}

// --- Edge cases both bench-compare and the analyzer baseline lean on ----------

TEST(JsonParse, EscapeSequencesRoundTripThroughStrings) {
  auto parsed = json_parse(R"({"s":"a\"b\\c\nd\tef\/g"})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->find("s")->str, "a\"b\\c\nd\tef/g");
}

TEST(JsonParse, RejectsBadEscapes) {
  EXPECT_FALSE(json_parse(R"({"s":"bad \q escape"})").ok());
  EXPECT_FALSE(json_parse(R"({"s":"truncated \u00"})").ok());
  EXPECT_FALSE(json_parse(R"({"s":"bad hex \u00zz"})").ok());
  EXPECT_FALSE(json_parse("{\"s\":\"unterminated").ok());
}

TEST(JsonParse, NestedArraysParseToNestedItems) {
  auto parsed = json_parse(R"({"grid":[[1,2],[3,[4,5]],[]]})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const JsonValue* grid = parsed->find("grid");
  ASSERT_NE(grid, nullptr);
  ASSERT_EQ(grid->items.size(), 3u);
  ASSERT_EQ(grid->items[0].items.size(), 2u);
  EXPECT_DOUBLE_EQ(grid->items[0].items[1].num, 2.0);
  ASSERT_EQ(grid->items[1].items.size(), 2u);
  EXPECT_DOUBLE_EQ(grid->items[1].items[1].items[0].num, 4.0);
  EXPECT_TRUE(grid->items[2].items.empty());
}

TEST(JsonParse, TruncatedInputAtEveryDepthIsAnError) {
  // Cut a valid document off after each prefix: no prefix except the whole
  // document may parse (a truncated baseline must never half-load).
  const std::string doc = R"({"a":[1,{"b":"x"},3],"c":{"d":[true,null]}})";
  for (std::size_t cut = 0; cut < doc.size(); ++cut) {
    EXPECT_FALSE(json_parse(doc.substr(0, cut)).ok()) << "prefix length " << cut;
  }
  EXPECT_TRUE(json_parse(doc).ok());
}

TEST(JsonParse, DuplicateKeysKeepBothMembersAndFindReturnsFirst) {
  // The parser preserves document order and does not dedupe; find() resolves
  // to the first occurrence, so a crafted duplicate can't shadow a value
  // that was already validated.
  auto parsed = json_parse(R"({"k":1,"k":2,"other":3})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed->members.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->members[0].second.num, 1.0);
  EXPECT_DOUBLE_EQ(parsed->members[1].second.num, 2.0);
  EXPECT_DOUBLE_EQ(parsed->find("k")->num, 1.0);
}

TEST(JsonParse, MalformedNumbersAreErrors) {
  EXPECT_FALSE(json_parse(R"({"n":1.2.3})").ok());
  EXPECT_FALSE(json_parse(R"({"n":--4})").ok());
  EXPECT_FALSE(json_parse(R"({"n":1e})").ok());
  auto ok = json_parse(R"({"n":-1.25e2})");
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  EXPECT_DOUBLE_EQ(ok->find("n")->num, -125.0);
}

// --- BenchReport schema --------------------------------------------------------

BenchReport sample_report() {
  BenchReport r("unit_bench", 1234);
  r.meta("quick", "true");
  r.meta("note", "escaped \"value\"");
  r.add("1MB", "fetch.total", 142.5, "ms");
  r.add("10MB", "fetch.total", 1198.0, "ms");
  return r;
}

TEST(BenchReport, EmitsSchemaFields) {
  const BenchReport r = sample_report();
  auto parsed = json_parse(r.json());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const JsonValue& v = *parsed;

  ASSERT_NE(v.find("schema"), nullptr);
  EXPECT_EQ(v.find("schema")->str, "c4h-bench-v1");
  EXPECT_EQ(v.find("bench")->str, "unit_bench");
  EXPECT_DOUBLE_EQ(v.find("seed")->num, 1234.0);
  ASSERT_NE(v.find("run_id"), nullptr);
  EXPECT_EQ(v.find("meta")->find("quick")->str, "true");
  EXPECT_EQ(v.find("meta")->find("note")->str, "escaped \"value\"");

  const JsonValue* series = v.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items.size(), 2u);
  const JsonValue& p0 = series->items[0];
  EXPECT_EQ(p0.find("label")->str, "1MB");
  EXPECT_EQ(p0.find("metric")->str, "fetch.total");
  EXPECT_DOUBLE_EQ(p0.find("value")->num, 142.5);
  EXPECT_EQ(p0.find("unit")->str, "ms");
}

TEST(BenchReport, TopLevelKeyOrderIsFixed) {
  auto parsed = json_parse(sample_report().json());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->members.size(), 6u);
  EXPECT_EQ(parsed->members[0].first, "schema");
  EXPECT_EQ(parsed->members[1].first, "bench");
  EXPECT_EQ(parsed->members[2].first, "seed");
  EXPECT_EQ(parsed->members[3].first, "run_id");
  EXPECT_EQ(parsed->members[4].first, "meta");
  EXPECT_EQ(parsed->members[5].first, "series");
}

TEST(BenchReport, SerializationIsDeterministic) {
  // Two reports built the same way — and the same report serialized twice —
  // must produce byte-identical documents.
  const std::string a = sample_report().json();
  const std::string b = sample_report().json();
  EXPECT_EQ(a, b);

  const BenchReport r = sample_report();
  EXPECT_EQ(r.json(), r.json());
}

TEST(BenchReport, RunIdIsSeedDerived) {
  BenchReport a("x", 7), b("x", 7), c("x", 8);
  auto id = [](const BenchReport& r) {
    auto parsed = json_parse(r.json());
    return parsed.ok() ? parsed->find("run_id")->num : -1.0;
  };
  EXPECT_EQ(id(a), id(b));
  EXPECT_NE(id(a), id(c));
}

TEST(BenchReport, WriteProducesParsableFile) {
  const BenchReport r = sample_report();
  auto path = r.write(::testing::TempDir());
  ASSERT_TRUE(path.ok()) << path.error().message;
  EXPECT_NE(path->find("BENCH_unit_bench.json"), std::string::npos);

  std::ifstream in(*path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), r.json());
  auto parsed = json_parse(ss.str());
  EXPECT_TRUE(parsed.ok());
  const int removed = std::remove(path->c_str());
  EXPECT_EQ(removed, 0);
}

TEST(BenchReport, WriteToMissingDirectoryFails) {
  const BenchReport r = sample_report();
  auto path = r.write("/nonexistent-dir-for-bench-test");
  EXPECT_FALSE(path.ok());
}

}  // namespace
}  // namespace c4h::obs
