// PlacementEngine unit suite (ROADMAP item 4): cost-model prior with WAN
// re-pricing, prior/observation blending, dwell+margin hysteresis (no
// thrash on near-ties), store-veto accounting, regret accounting, metrics
// mirroring, and decision-stream determinism. Everything here is exact and
// clock-free: time is passed in as explicit TimePoints.
#include <gtest/gtest.h>

#include "src/obs/metrics.hpp"
#include "src/vstore/placement_engine.hpp"

namespace c4h::vstore {
namespace {

ExecSite home_site(Key k) { return ExecSite{ExecSite::Kind::home_node, k}; }

CandidateInfo home_cand(Key k, Duration exec, Duration move_in = Duration::zero()) {
  CandidateInfo c;
  c.site = home_site(k);
  c.move_in = move_in;
  c.exec_estimate = exec;
  return c;
}

PlacementEngineConfig exact_config() {
  // No exploration, no warm-up: choose() is a deterministic argmin with
  // hysteresis, which is what these tests pin down.
  PlacementEngineConfig cfg;
  cfg.epsilon = 0.0;
  cfg.min_pulls_per_arm = 0;
  return cfg;
}

TEST(PlacementEngine, PriorRepricesWanLegAtEstimatedRate) {
  WanEstimator wan{0.3, mib_per_sec(2.0), mib_per_sec(4.0)};
  PlacementEngine eng{exact_config(), wan};

  CandidateInfo ec2;
  ec2.site = ExecSite{ExecSite::Kind::ec2, {}};
  ec2.move_in = seconds(100);  // configured-rate estimate: must be ignored
  ec2.move_bytes = 4_MB;
  ec2.move_over_wan = true;
  ec2.move_upload = true;
  ec2.dispatch = milliseconds(350);
  ec2.exec_estimate = seconds(1);
  // 4 MiB at the estimator's 2 MiB/s + 0.35s dispatch + 1s exec.
  EXPECT_NEAR(eng.prior_seconds(ec2), 2.0 + 0.35 + 1.0, 1e-9);

  // A home-LAN move leg keeps its move_in estimate untouched.
  const CandidateInfo local = home_cand(Key{1}, seconds(2), milliseconds(500));
  EXPECT_NEAR(eng.prior_seconds(local), 2.5, 1e-9);

  // Download-direction legs re-price at the download estimate.
  CandidateInfo down = ec2;
  down.move_upload = false;
  EXPECT_NEAR(eng.prior_seconds(down), 1.0 + 0.35 + 1.0, 1e-9);
}

TEST(PlacementEngine, PredictionBlendsPriorWithObservedMean) {
  WanEstimator wan;
  PlacementEngineConfig cfg = exact_config();
  cfg.prior_weight = 3.0;
  PlacementEngine eng{cfg, wan};

  const CandidateInfo c = home_cand(Key{1}, seconds(1));
  // Cold arm: prediction is the prior.
  EXPECT_NEAR(eng.predicted_seconds("ctx", c), 1.0, 1e-9);
  // Three observed 5s pulls against a 1s prior carrying 3 pseudo-pulls:
  // (1·3 + 5·3) / 6 = 3.
  for (int i = 0; i < 3; ++i) eng.observe("ctx", c.site, seconds(5));
  EXPECT_NEAR(eng.predicted_seconds("ctx", c), 3.0, 1e-9);
}

TEST(PlacementEngine, SwitchRequiresDwellAndMargin) {
  WanEstimator wan;
  PlacementEngine eng{exact_config(), wan};
  const std::vector<CandidateInfo> initial = {home_cand(Key{1}, seconds(1)),
                                              home_cand(Key{2}, seconds(2))};
  EXPECT_EQ(eng.choose("ctx", initial, TimePoint{}), initial[0].site);
  EXPECT_EQ(eng.switches(), 0u);

  // The challenger now clears the 15% margin (0.5 < 1.0 · 0.85), but the
  // incumbent has not dwelt long enough: no switch.
  const std::vector<CandidateInfo> flipped = {home_cand(Key{1}, seconds(1)),
                                              home_cand(Key{2}, milliseconds(500))};
  EXPECT_EQ(eng.choose("ctx", flipped, TimePoint{seconds(1)}), initial[0].site);
  EXPECT_EQ(eng.switches(), 0u);

  // Dwell elapsed AND margin exceeded: the switch happens, exactly once.
  EXPECT_EQ(eng.choose("ctx", flipped, TimePoint{seconds(11)}), flipped[1].site);
  EXPECT_EQ(eng.switches(), 1u);
}

TEST(PlacementEngine, DwellAloneDoesNotSwitchOnThinMargins) {
  WanEstimator wan;
  PlacementEngine eng{exact_config(), wan};
  const std::vector<CandidateInfo> initial = {home_cand(Key{1}, seconds(1)),
                                              home_cand(Key{2}, seconds(2))};
  EXPECT_EQ(eng.choose("ctx", initial, TimePoint{}), initial[0].site);

  // 10% better, dwell long past: 0.9 > 1.0 · 0.85, so the margin gate holds.
  const std::vector<CandidateInfo> thin = {home_cand(Key{1}, seconds(1)),
                                           home_cand(Key{2}, milliseconds(900))};
  EXPECT_EQ(eng.choose("ctx", thin, TimePoint{seconds(60)}), initial[0].site);
  EXPECT_EQ(eng.switches(), 0u);
}

TEST(PlacementEngine, NearTieEstimatesNeverThrash) {
  // Alternating 2% leads, every decision past the dwell window: a damping
  // bug that flips on any lead would show up as hundreds of switches.
  WanEstimator wan;
  PlacementEngine eng{exact_config(), wan};
  const Key a{1}, b{2};
  for (int i = 0; i < 500; ++i) {
    const bool a_leads = i % 2 == 0;
    const std::vector<CandidateInfo> cands = {
        home_cand(a, a_leads ? milliseconds(980) : milliseconds(1000)),
        home_cand(b, a_leads ? milliseconds(1000) : milliseconds(980))};
    const ExecSite chosen = eng.choose("ctx", cands, TimePoint{seconds(20 * (i + 1))});
    EXPECT_EQ(chosen, home_site(a)) << "decision " << i;
  }
  EXPECT_EQ(eng.switches(), 0u);
  EXPECT_EQ(eng.decisions(), 500u);
}

TEST(PlacementEngine, WarmUpPullsCountAsExplorations) {
  WanEstimator wan;
  PlacementEngineConfig cfg = exact_config();
  cfg.min_pulls_per_arm = 2;
  PlacementEngine eng{cfg, wan};
  const std::vector<CandidateInfo> cands = {home_cand(Key{1}, seconds(1)),
                                            home_cand(Key{2}, seconds(2))};
  for (int i = 0; i < 4; ++i) {
    const ExecSite s = eng.choose("ctx", cands, TimePoint{});
    eng.observe("ctx", s, seconds(1));
  }
  EXPECT_EQ(eng.explorations(), 4u) << "2 arms × pull floor 2";
  EXPECT_EQ(eng.learner().pulls("ctx", cands[0].site), 2u);
  EXPECT_EQ(eng.learner().pulls("ctx", cands[1].site), 2u);
  // Warm-up satisfied: the next decision exploits (no new exploration).
  (void)eng.choose("ctx", cands, TimePoint{});
  EXPECT_EQ(eng.explorations(), 4u);
}

TEST(PlacementEngine, ExplorationNeverTouchesIncumbent) {
  WanEstimator wan;
  PlacementEngineConfig cfg = exact_config();
  PlacementEngine eng{cfg, wan};
  const std::vector<CandidateInfo> cands = {home_cand(Key{1}, seconds(1)),
                                            home_cand(Key{2}, seconds(2))};
  EXPECT_EQ(eng.choose("ctx", cands, TimePoint{}), cands[0].site);

  // All-exploration engine state: forced detours must not register switches
  // or reset the incumbent, whatever arm they land on.
  PlacementEngineConfig wild = exact_config();
  wild.epsilon = 1.0;
  PlacementEngine roam{wild, wan};
  (void)roam.choose("ctx", cands, TimePoint{});  // establishes nothing: explored
  for (int i = 0; i < 50; ++i) {
    (void)roam.choose("ctx", cands, TimePoint{seconds(20 * (i + 1))});
  }
  EXPECT_EQ(roam.switches(), 0u);
  EXPECT_EQ(roam.explorations(), 51u);
}

TEST(PlacementEngine, IncumbentLeavingCandidatesForcesRepickWithoutSwitch) {
  WanEstimator wan;
  PlacementEngine eng{exact_config(), wan};
  const std::vector<CandidateInfo> with_a = {home_cand(Key{1}, seconds(1)),
                                             home_cand(Key{2}, seconds(2))};
  EXPECT_EQ(eng.choose("ctx", with_a, TimePoint{}), with_a[0].site);

  // The incumbent goes offline: re-pick among the rest, not a thrash event.
  const std::vector<CandidateInfo> without_a = {home_cand(Key{2}, seconds(2)),
                                                home_cand(Key{3}, seconds(3))};
  EXPECT_EQ(eng.choose("ctx", without_a, TimePoint{seconds(1)}), without_a[0].site);
  EXPECT_EQ(eng.switches(), 0u);
}

TEST(PlacementEngine, VetoTracksShrinkingThreshold) {
  WanEstimator wan;  // healthy uplink estimate: 1 MiB/s
  PlacementEngineConfig cfg = exact_config();
  cfg.upload_budget = seconds(2);
  PlacementEngine eng{cfg, wan};
  EXPECT_EQ(eng.cloud_threshold(), 2_MB);
  EXPECT_FALSE(eng.veto_cloud_store(1_MB));
  EXPECT_TRUE(eng.veto_cloud_store(4_MB));
  EXPECT_EQ(eng.store_vetoes(), 1u);

  // The uplink collapses to ~50 KiB/s: the threshold shrinks with the EWMA
  // and yesterday's fine-sized object is vetoed home.
  for (int i = 0; i < 20; ++i) wan.observe_upload(512_KB, seconds(10));
  EXPECT_LT(eng.cloud_threshold(), 1_MB);
  EXPECT_TRUE(eng.veto_cloud_store(1_MB));
  EXPECT_EQ(eng.store_vetoes(), 2u);
}

TEST(PlacementEngine, RegretAccumulatesOnlyRealizedShortfall) {
  WanEstimator wan;
  PlacementEngine eng{exact_config(), wan};
  const std::vector<CandidateInfo> cands = {home_cand(Key{1}, seconds(1))};
  const ExecSite s = eng.choose("ctx", cands, TimePoint{});
  // Realized 3s against a 1s best prediction: 2s of regret.
  eng.observe("ctx", s, seconds(3));
  EXPECT_NEAR(eng.regret_seconds(), 2.0, 1e-9);
  // Beating the prediction adds zero (clamped), never negative.
  (void)eng.choose("ctx", cands, TimePoint{seconds(1)});
  eng.observe("ctx", s, milliseconds(100));
  EXPECT_NEAR(eng.regret_seconds(), 2.0, 1e-6);
}

TEST(PlacementEngine, MetricsMirrorCountsIncludingHistory) {
  WanEstimator wan;
  PlacementEngineConfig cfg = exact_config();
  cfg.upload_budget = seconds(2);
  PlacementEngine eng{cfg, wan};
  const std::vector<CandidateInfo> cands = {home_cand(Key{1}, seconds(1))};
  // Activity before registration must be carried into the registry.
  (void)eng.choose("ctx", cands, TimePoint{});
  eng.observe("ctx", cands[0].site, seconds(2));
  (void)eng.veto_cloud_store(100_MB);

  obs::Registry reg;
  eng.register_metrics(reg);
  EXPECT_EQ(reg.counter("c4h.placement.decision.count").value(), 1u);
  EXPECT_EQ(reg.counter("c4h.placement.store_veto.count").value(), 1u);
  EXPECT_EQ(reg.counter("c4h.placement.regret.us").value(), 1000000u);

  (void)eng.choose("ctx", cands, TimePoint{seconds(1)});
  EXPECT_EQ(reg.counter("c4h.placement.decision.count").value(), 2u);
}

TEST(PlacementEngine, DecisionStreamIsDeterministicPerSeed) {
  WanEstimator wan;
  PlacementEngineConfig cfg;  // defaults: ε > 0, so the Rng stream matters
  cfg.min_dwell = seconds(0);
  auto drive = [&](PlacementEngine& eng) {
    std::vector<ExecSite> picks;
    const std::vector<CandidateInfo> cands = {home_cand(Key{1}, seconds(1)),
                                              home_cand(Key{2}, seconds(2)),
                                              home_cand(Key{3}, seconds(3))};
    for (int i = 0; i < 200; ++i) {
      const ExecSite s = eng.choose("ctx", cands, TimePoint{seconds(i)});
      eng.observe("ctx", s, seconds(s == cands[0].site ? 1 : 4));
      picks.push_back(s);
    }
    return picks;
  };
  PlacementEngine a{cfg, wan};
  PlacementEngine b{cfg, wan};
  EXPECT_EQ(drive(a), drive(b));

  PlacementEngineConfig other = cfg;
  other.seed ^= 0xdeadbeef;
  PlacementEngine c{other, wan};
  EXPECT_NE(drive(a), drive(c)) << "different seeds must explore differently";
}

}  // namespace
}  // namespace c4h::vstore
