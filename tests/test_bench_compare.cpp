// End-to-end tests for tools/bench-compare exit codes, focused on the
// missing-baseline gate: a fresh artifact with no baseline file must not be
// silently waved through (exit 3 + one-line summary), while matching and
// drifting artifacts keep their existing codes (0 and 1).
//
// The binary path is injected by CMake as C4H_BENCH_COMPARE_BIN.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>

namespace {

struct CompareRun {
  int exit_code;
  std::string output;

  bool contains(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }
};

CompareRun compare(const std::string& args) {
  const std::string cmd = std::string(C4H_BENCH_COMPARE_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CompareRun run{-1, {}};
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

// A tiny valid c4h-bench-v1 artifact with a single simulated row.
std::string artifact_json(const std::string& bench, double value) {
  return "{\"schema\":\"c4h-bench-v1\",\"bench\":\"" + bench +
         "\",\"seed\":42,\"series\":[{\"label\":\"n=8\",\"metric\":\"fetch_ms\",\"value\":" +
         std::to_string(value) + ",\"unit\":\"ms\"}]}";
}

// Scratch layout: <tmp>/<name>/{baselines/,fresh/}. Returns the root.
std::string make_scratch(const std::string& name) {
  const std::string root = testing::TempDir() + name;
  ::mkdir(root.c_str(), 0755);
  ::mkdir((root + "/baselines").c_str(), 0755);
  ::mkdir((root + "/fresh").c_str(), 0755);
  return root;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream(path) << text;
}

}  // namespace

TEST(BenchCompare, MatchingBaselineIsClean) {
  const std::string root = make_scratch("bc_clean");
  write_file(root + "/baselines/BENCH_demo.json", artifact_json("demo", 12.5));
  write_file(root + "/fresh/BENCH_demo.json", artifact_json("demo", 12.5));
  const CompareRun r =
      compare("--baseline " + root + "/baselines " + root + "/fresh/BENCH_demo.json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.contains("ok")) << r.output;
}

TEST(BenchCompare, SimulatedDriftFails) {
  const std::string root = make_scratch("bc_drift");
  write_file(root + "/baselines/BENCH_demo.json", artifact_json("demo", 12.5));
  write_file(root + "/fresh/BENCH_demo.json", artifact_json("demo", 13.0));
  const CompareRun r =
      compare("--baseline " + root + "/baselines " + root + "/fresh/BENCH_demo.json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("DRIFT")) << r.output;
}

TEST(BenchCompare, MissingBaselineIsADistinctFailure) {
  // The regression this gate exists for: a brand-new bench with no baseline
  // used to print "skipped" and exit 0, so CI never noticed it was ungated.
  const std::string root = make_scratch("bc_missing");
  write_file(root + "/fresh/BENCH_newbench.json", artifact_json("newbench", 1.0));
  const CompareRun r =
      compare("--baseline " + root + "/baselines " + root + "/fresh/BENCH_newbench.json");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_TRUE(r.contains("MISSING baseline (BENCH_newbench.json)")) << r.output;
  EXPECT_TRUE(r.contains("1 artifact(s) with no baseline")) << r.output;
}

TEST(BenchCompare, DriftOutranksMissingBaseline) {
  // When one artifact drifts and another is unbaselined, the drift exit code
  // wins (it is the more actionable failure), but both are reported.
  const std::string root = make_scratch("bc_both");
  write_file(root + "/baselines/BENCH_demo.json", artifact_json("demo", 12.5));
  write_file(root + "/fresh/BENCH_demo.json", artifact_json("demo", 99.0));
  write_file(root + "/fresh/BENCH_newbench.json", artifact_json("newbench", 1.0));
  const CompareRun r = compare("--baseline " + root + "/baselines " + root +
                               "/fresh/BENCH_demo.json " + root + "/fresh/BENCH_newbench.json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.contains("DRIFT")) << r.output;
  EXPECT_TRUE(r.contains("MISSING baseline (BENCH_newbench.json)")) << r.output;
}

TEST(BenchCompare, MalformedFreshArtifactIsAnIoError) {
  const std::string root = make_scratch("bc_malformed");
  write_file(root + "/fresh/BENCH_demo.json", "{ not json");
  const CompareRun r =
      compare("--baseline " + root + "/baselines " + root + "/fresh/BENCH_demo.json");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}
