// Determinism regression: one seed fully determines a run. The simulation
// core guarantees FIFO ordering at equal timestamps and every random draw
// (network jitter, fault schedule, retry jitter, workload) comes from
// streams forked off the simulation seed, so an identical seed must
// reproduce every counter and the final clock exactly — including under
// active fault injection, whose schedule is itself seed-derived.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/fault.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

struct RunTrace {
  std::uint64_t kv_puts = 0;
  std::uint64_t kv_gets = 0;
  std::uint64_t kv_retries = 0;
  std::uint64_t kv_send_timeouts = 0;
  std::uint64_t kv_replication_msgs = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t net_retransmits = 0;
  std::uint64_t net_flows_started = 0;
  std::uint64_t net_flows_completed = 0;
  double net_bytes = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_crashes = 0;
  std::uint64_t faults_flaps = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t store_reroutes = 0;
  std::int64_t final_time_ns = 0;
  std::size_t pending_events = 0;
  std::size_t detached = 0;
  int stores_acked = 0;
  int fetches_ok = 0;

  bool operator==(const RunTrace&) const = default;
};

RunTrace run_once(std::uint64_t seed) {
  HomeCloudConfig cfg;
  cfg.netbooks = 3;
  cfg.kv.replication = 2;
  cfg.start_stabilization = true;
  cfg.start_monitors = false;
  cfg.seed = seed;
  HomeCloud hc{cfg};
  hc.bootstrap();

  sim::FaultSpec spec;
  spec.msg_drop = 0.08;
  spec.msg_duplicate = 0.02;
  spec.msg_delay = 0.04;
  spec.mean_crash_interval = seconds(8);
  spec.mean_downtime = seconds(2);
  spec.horizon = seconds(15);
  hc.enable_chaos(spec);

  RunTrace t;
  hc.run([](HomeCloud& h, std::uint64_t sd, RunTrace& tr) -> Task<> {
    Rng rng{sd ^ 0xD1CEu};
    std::vector<std::string> stored;
    for (int step = 0; step < 40; ++step) {
      co_await h.sim().delay(milliseconds(300));
      auto& n = h.node(rng.below(h.node_count()));
      if (!n.online()) continue;
      if (rng.uniform() < 0.5 || stored.empty()) {
        const std::string name = "det-" + std::to_string(step) + ".jpg";
        ObjectMeta m;
        m.name = name;
        m.type = "jpg";
        m.size = 32 * 1024 + static_cast<Bytes>(step) * 1024;
        (void)co_await n.create_object(m);
        auto r = co_await n.store_object(name);
        if (r.ok()) {
          ++tr.stores_acked;
          stored.push_back(name);
        }
      } else {
        auto r = co_await n.fetch_object(stored[rng.below(stored.size())]);
        if (r.ok()) ++tr.fetches_ok;
      }
    }
    co_await h.sim().delay(seconds(8));  // restarts + repair settle
  }(hc, seed, t));

  const auto& ks = hc.kv().stats();
  const auto& ns = hc.network().stats();
  const auto& fs = hc.sim().fault()->stats();
  t.kv_puts = ks.puts;
  t.kv_gets = ks.gets;
  t.kv_retries = ks.op_retries;
  t.kv_send_timeouts = ks.send_timeouts;
  t.kv_replication_msgs = ks.replication_msgs;
  t.net_messages = ns.messages_sent;
  t.net_retransmits = ns.retransmits;
  t.net_flows_started = ns.flows_started;
  t.net_flows_completed = ns.flows_completed;
  t.net_bytes = ns.bytes_delivered;
  t.faults_dropped = fs.messages_dropped;
  t.faults_crashes = fs.crashes;
  t.faults_flaps = fs.uplink_flaps;
  for (std::size_t i = 0; i < hc.node_count(); ++i) {
    t.fetch_retries += hc.node(i).stats().fetch_retries;
    t.store_reroutes += hc.node(i).stats().store_reroutes;
  }
  t.final_time_ns = hc.sim().now().count();
  t.pending_events = hc.sim().pending_event_count();
  t.detached = hc.sim().detached_count();
  return t;
}

TEST(Determinism, SameSeedIsByteIdentical) {
  const RunTrace a = run_once(90210);
  const RunTrace b = run_once(90210);
  EXPECT_EQ(a, b);
  // The run must have exercised something nontrivial for the comparison to
  // carry weight.
  EXPECT_GT(a.stores_acked, 5);
  EXPECT_GT(a.faults_dropped, 0u);
}

TEST(Determinism, SecondIdenticalSeedPairAlsoMatches) {
  const RunTrace a = run_once(31337);
  const RunTrace b = run_once(31337);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentRuns) {
  const RunTrace a = run_once(1);
  const RunTrace b = run_once(2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace c4h::vstore
