// Learned placement (§III-B future work): bandit semantics and an
// end-to-end scenario where learning beats the model-based decision engine
// because the model's inputs are stale.
#include <gtest/gtest.h>

#include "src/vstore/home_cloud.hpp"
#include "src/vstore/learner.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

ExecSite home_site(Key k) { return ExecSite{ExecSite::Kind::home_node, k}; }

TEST(Learner, ContextBucketsGroupSimilarSizes) {
  const auto svc = services::face_detect_profile();
  EXPECT_EQ(PlacementLearner::context_of(svc, 900_KB),
            PlacementLearner::context_of(svc, 1000_KB));
  EXPECT_NE(PlacementLearner::context_of(svc, 1_MB), PlacementLearner::context_of(svc, 4_MB));
  EXPECT_NE(PlacementLearner::context_of(svc, 1_MB),
            PlacementLearner::context_of(services::x264_profile(), 1_MB));
}

TEST(Learner, TriesEveryArmBeforeExploiting) {
  PlacementLearner l;
  const std::vector<ExecSite> cands{home_site(Key{1}), home_site(Key{2}),
                                    ExecSite{ExecSite::Kind::ec2, {}}};
  std::set<std::string> seen;
  for (int i = 0; i < 3; ++i) {
    const auto c = l.choose("ctx", cands);
    seen.insert(c.kind == ExecSite::Kind::ec2 ? "ec2" : c.node.to_string());
    l.observe("ctx", c, seconds(1));
  }
  EXPECT_EQ(seen.size(), 3u) << "all arms must be pulled during warm-up";
}

TEST(Learner, ConvergesToTheFastArm) {
  PlacementLearner::Config cfg;
  cfg.epsilon = 0.1;
  PlacementLearner l{cfg, 7};
  const ExecSite fast = home_site(Key{1});
  const ExecSite slow = home_site(Key{2});
  const std::vector<ExecSite> cands{slow, fast};

  int fast_picks = 0;
  for (int i = 0; i < 300; ++i) {
    const auto c = l.choose("ctx", cands);
    const bool is_fast = c == fast;
    fast_picks += is_fast;
    l.observe("ctx", c, is_fast ? seconds(1) : seconds(5));
  }
  // ~90% exploitation should go to the fast arm.
  EXPECT_GT(fast_picks, 240);
  EXPECT_LT(l.mean_seconds("ctx", fast), l.mean_seconds("ctx", slow));
}

TEST(Learner, ContextsAreIndependent) {
  PlacementLearner l{{}, 11};
  const ExecSite a = home_site(Key{1});
  const ExecSite b = home_site(Key{2});
  const std::vector<ExecSite> cands{a, b};
  // In ctx1 a is fast; in ctx2 b is fast.
  for (int i = 0; i < 100; ++i) {
    auto c1 = l.choose("ctx1", cands);
    l.observe("ctx1", c1, c1 == a ? seconds(1) : seconds(9));
    auto c2 = l.choose("ctx2", cands);
    l.observe("ctx2", c2, c2 == b ? seconds(1) : seconds(9));
  }
  EXPECT_LT(l.mean_seconds("ctx1", a), l.mean_seconds("ctx1", b));
  EXPECT_LT(l.mean_seconds("ctx2", b), l.mean_seconds("ctx2", a));
  EXPECT_EQ(l.contexts(), 2u);
}

TEST(LearnerEndToEnd, OutlearnsStaleResourceRecords) {
  // The desktop is secretly saturated by a non-VStore workload and the
  // monitors are off, so resource records are stale-idle: the decision
  // engine keeps picking the (loaded) desktop. The bandit only sees
  // realized times and learns to run on the idle netbook instead.
  HomeCloudConfig cfg;
  cfg.netbooks = 2;
  cfg.start_monitors = false;  // records stay as published at bootstrap
  HomeCloud hc{cfg};
  hc.bootstrap();

  auto x264 = services::x264_profile();
  hc.registry().add_profile(x264);
  hc.node(1).deploy_service(x264);
  hc.desktop().deploy_service(x264);

  double engine_total = 0, learner_total = 0;
  int learner_on_netbook = 0;
  hc.run([&](HomeCloud& h) -> Task<> {
    (void)co_await h.node(1).publish_services();
    (void)co_await h.desktop().publish_services();

    // Saturate the desktop invisibly (monitors off → records say idle).
    // Many competing jobs shrink any newcomer's fair share to a sliver, so
    // the desktop is genuinely the worse choice despite its bigger cores.
    for (int j = 0; j < 15; ++j) {
      h.sim().spawn([](HomeCloud& hh) -> Task<> {
        co_await hh.desktop().host().execute(hh.desktop().app_domain(), 1e9, 4);
      }(h));
    }
    co_await h.sim().delay(milliseconds(100));

    for (int i = 0; i < 8; ++i) {
      const std::string name = "v" + std::to_string(i) + ".avi";
      ObjectMeta m;
      m.name = name;
      m.type = "avi";
      m.size = 4_MB;
      (void)co_await h.node(0).create_object(m);
      (void)co_await h.node(0).store_object(name);
    }

    // Model-based decisions (stale records → loaded desktop every time).
    for (int i = 0; i < 4; ++i) {
      const auto t0 = h.sim().now();
      auto res = co_await h.node(0).process("v" + std::to_string(i) + ".avi", x264);
      if (res.ok()) engine_total += to_seconds(h.sim().now() - t0);
    }

    // Bandit over the same two sites.
    PlacementLearner learner;
    const std::vector<ExecSite> cands{home_site(h.node(1).chimera().id()),
                                      home_site(h.desktop().chimera().id())};
    const std::string ctx = PlacementLearner::context_of(x264, 4_MB);
    for (int i = 4; i < 8; ++i) {
      const auto site = learner.choose(ctx, cands);
      const auto t0 = h.sim().now();
      auto res = co_await h.node(0).process("v" + std::to_string(i) + ".avi", x264,
                                            DecisionPolicy::performance, site);
      if (!res.ok()) continue;
      const auto took = h.sim().now() - t0;
      learner.observe(ctx, site, took);
      learner_total += to_seconds(took);
      learner_on_netbook += (site == cands[0]);
    }
  }(hc));

  // After its warm-up pulls, the learner settles on the idle netbook; the
  // engine burns every run on the saturated desktop.
  EXPECT_GE(learner_on_netbook, 3);
  EXPECT_LT(learner_total, engine_total * 0.75);
}

}  // namespace
}  // namespace c4h::vstore
