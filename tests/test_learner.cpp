// Learned placement (§III-B future work): bandit semantics and an
// end-to-end scenario where learning beats the model-based decision engine
// because the model's inputs are stale.
#include <gtest/gtest.h>

#include "src/vstore/home_cloud.hpp"
#include "src/vstore/learner.hpp"

namespace c4h::vstore {
namespace {

using sim::Task;

ExecSite home_site(Key k) { return ExecSite{ExecSite::Kind::home_node, k}; }

TEST(Learner, ContextBucketsGroupSimilarSizes) {
  const auto svc = services::face_detect_profile();
  EXPECT_EQ(PlacementLearner::context_of(svc, 900_KB),
            PlacementLearner::context_of(svc, 1000_KB));
  EXPECT_NE(PlacementLearner::context_of(svc, 1_MB), PlacementLearner::context_of(svc, 4_MB));
  EXPECT_NE(PlacementLearner::context_of(svc, 1_MB),
            PlacementLearner::context_of(services::x264_profile(), 1_MB));
}

TEST(Learner, TriesEveryArmBeforeExploiting) {
  PlacementLearner l;
  const std::vector<ExecSite> cands{home_site(Key{1}), home_site(Key{2}),
                                    ExecSite{ExecSite::Kind::ec2, {}}};
  std::set<std::string> seen;
  for (int i = 0; i < 3; ++i) {
    const auto c = l.choose("ctx", cands);
    seen.insert(c.kind == ExecSite::Kind::ec2 ? "ec2" : c.node.to_string());
    l.observe("ctx", c, seconds(1));
  }
  EXPECT_EQ(seen.size(), 3u) << "all arms must be pulled during warm-up";
}

TEST(Learner, ConvergesToTheFastArm) {
  PlacementLearner::Config cfg;
  cfg.epsilon = 0.1;
  PlacementLearner l{cfg, 7};
  const ExecSite fast = home_site(Key{1});
  const ExecSite slow = home_site(Key{2});
  const std::vector<ExecSite> cands{slow, fast};

  int fast_picks = 0;
  for (int i = 0; i < 300; ++i) {
    const auto c = l.choose("ctx", cands);
    const bool is_fast = c == fast;
    fast_picks += is_fast;
    l.observe("ctx", c, is_fast ? seconds(1) : seconds(5));
  }
  // ~90% exploitation should go to the fast arm.
  EXPECT_GT(fast_picks, 240);
  EXPECT_LT(l.mean_seconds("ctx", fast), l.mean_seconds("ctx", slow));
}

TEST(Learner, ContextsAreIndependent) {
  PlacementLearner l{{}, 11};
  const ExecSite a = home_site(Key{1});
  const ExecSite b = home_site(Key{2});
  const std::vector<ExecSite> cands{a, b};
  // In ctx1 a is fast; in ctx2 b is fast.
  for (int i = 0; i < 100; ++i) {
    auto c1 = l.choose("ctx1", cands);
    l.observe("ctx1", c1, c1 == a ? seconds(1) : seconds(9));
    auto c2 = l.choose("ctx2", cands);
    l.observe("ctx2", c2, c2 == b ? seconds(1) : seconds(9));
  }
  EXPECT_LT(l.mean_seconds("ctx1", a), l.mean_seconds("ctx1", b));
  EXPECT_LT(l.mean_seconds("ctx2", b), l.mean_seconds("ctx2", a));
  EXPECT_EQ(l.contexts(), 2u);
}

// --- Statistics-grade properties (ROADMAP item 4) ---------------------------
//
// The bandit's guarantees are distributional, so these run the same
// experiment across many seeds and check the aggregate against binomial
// confidence bounds. Every bound below is ≥5 standard deviations wide at the
// stated trial counts: a legitimate implementation essentially never trips
// it, a regression in exploration or convergence essentially always does.

TEST(LearnerStats, ConvergesToTrulyBestArmAcrossSeeds) {
  // Three arms with large gaps (1s / 3s / 5s). After convergence an ε-greedy
  // learner picks the best arm with probability 1 - ε·(k-1)/k ≈ 0.933.
  const ExecSite fast = home_site(Key{1});
  const ExecSite mid = home_site(Key{2});
  const ExecSite slow = home_site(Key{3});
  const std::vector<ExecSite> cands{slow, mid, fast};
  auto reward = [&](const ExecSite& s) {
    return s == fast ? seconds(1) : (s == mid ? seconds(3) : seconds(5));
  };

  int total_tail_fast = 0;
  constexpr int kSeeds = 50;
  constexpr int kPulls = 500;
  constexpr int kTail = 200;  // converged window: the final kTail pulls
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    PlacementLearner::Config cfg;
    cfg.epsilon = 0.1;
    PlacementLearner l{cfg, seed};
    int tail_fast = 0;
    for (int i = 0; i < kPulls; ++i) {
      const auto c = l.choose("ctx", cands);
      if (i >= kPulls - kTail && c == fast) ++tail_fast;
      l.observe("ctx", c, reward(c));
    }
    // Per-seed: convergence must hold for every seed, not just on average.
    EXPECT_GE(tail_fast, kTail * 8 / 10) << "seed " << seed;
    total_tail_fast += tail_fast;
  }
  // Aggregate over 50×200 = 10000 converged pulls: expected fast share
  // 0.933, binomial σ ≈ 0.0025 → [0.90, 0.97] is > 10σ wide.
  const double share = static_cast<double>(total_tail_fast) / (kSeeds * kTail);
  EXPECT_GT(share, 0.90);
  EXPECT_LT(share, 0.97);
}

TEST(LearnerStats, ExplorationRateMatchesEpsilon) {
  // With two well-separated arms, a converged ε-greedy learner picks the
  // worse arm only on exploration coin-flips that land there: rate ε/2.
  const ExecSite good = home_site(Key{1});
  const ExecSite bad = home_site(Key{2});
  const std::vector<ExecSite> cands{good, bad};

  constexpr double kEpsilon = 0.15;
  constexpr int kSeeds = 50;
  constexpr int kBurnIn = 50;
  constexpr int kMeasured = 400;
  int bad_picks = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    PlacementLearner::Config cfg;
    cfg.epsilon = kEpsilon;
    PlacementLearner l{cfg, seed};
    for (int i = 0; i < kBurnIn + kMeasured; ++i) {
      const auto c = l.choose("ctx", cands);
      if (i >= kBurnIn && c == bad) ++bad_picks;
      l.observe("ctx", c, c == good ? seconds(1) : seconds(9));
    }
  }
  // 20000 measured pulls, expected bad-arm rate ε/2 = 0.075,
  // σ = sqrt(0.075·0.925/20000) ≈ 0.0019 → [0.065, 0.085] is ±5σ.
  const double rate = static_cast<double>(bad_picks) / (kSeeds * kMeasured);
  EXPECT_GT(rate, 0.065);
  EXPECT_LT(rate, 0.085);
}

TEST(LearnerStats, RecoversFromMidRunRewardShift) {
  // A starts fast and degrades; B starts slow and becomes fast. A pure
  // running mean never lets go of A (old samples dominate forever); the
  // min_gain recency floor bounds the stale reputation: A's tracked mean
  // crosses B's stale 5s within ~7 post-shift pulls of A.
  const ExecSite a = home_site(Key{1});
  const ExecSite b = home_site(Key{2});
  const std::vector<ExecSite> cands{a, b};

  constexpr int kSeeds = 50;
  constexpr int kPreShift = 200;
  constexpr int kPostShift = 300;
  constexpr int kTail = 100;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    PlacementLearner::Config cfg;
    cfg.epsilon = 0.1;
    PlacementLearner l{cfg, seed};
    int tail_b = 0;
    for (int i = 0; i < kPreShift + kPostShift; ++i) {
      const bool shifted = i >= kPreShift;
      const auto c = l.choose("ctx", cands);
      Duration took;
      if (c == a) {
        took = shifted ? seconds(9) : seconds(1);
      } else {
        took = shifted ? seconds(1) : seconds(5);
      }
      if (i >= kPreShift + kPostShift - kTail && c == b) ++tail_b;
      l.observe("ctx", c, took);
    }
    EXPECT_GE(tail_b, kTail * 7 / 10) << "seed " << seed;
    EXPECT_LT(l.mean_seconds("ctx", b), l.mean_seconds("ctx", a)) << "seed " << seed;
  }
}

TEST(LearnerStats, ReferenceSeedIsPinned) {
  // One reference seed, fully pinned: the exact pull counts and near-exact
  // means. Any change to the Rng stream, the arm-selection order, or the
  // update rule moves these values — bump them only with a changelog entry
  // explaining why the learner's behavior was *meant* to change.
  const ExecSite fast = home_site(Key{1});
  const ExecSite slow = home_site(Key{2});
  const std::vector<ExecSite> cands{fast, slow};
  PlacementLearner::Config cfg;
  cfg.epsilon = 0.1;
  PlacementLearner l{cfg, 1234};
  for (int i = 0; i < 100; ++i) {
    const auto c = l.choose("ctx", cands);
    l.observe("ctx", c, c == fast ? seconds(1) : seconds(5));
  }
  EXPECT_EQ(l.pulls("ctx", fast) + l.pulls("ctx", slow), 100u);
  EXPECT_EQ(l.pulls("ctx", fast), 94u);
  EXPECT_EQ(l.pulls("ctx", slow), 6u);
  EXPECT_NEAR(l.mean_seconds("ctx", fast), 1.0, 1e-9);
  EXPECT_NEAR(l.mean_seconds("ctx", slow), 5.0, 1e-9);
}

TEST(LearnerStats, ZeroMinGainRestoresRunningMean) {
  // With the floor off, observe() is the textbook incremental mean.
  PlacementLearner::Config cfg;
  cfg.min_gain = 0.0;
  PlacementLearner l{cfg, 5};
  const ExecSite s = home_site(Key{1});
  l.observe("ctx", s, seconds(2));
  l.observe("ctx", s, seconds(4));
  l.observe("ctx", s, seconds(9));
  EXPECT_NEAR(l.mean_seconds("ctx", s), 5.0, 1e-9);
  EXPECT_EQ(l.pulls("ctx", s), 3u);
}

TEST(LearnerEndToEnd, OutlearnsStaleResourceRecords) {
  // The desktop is secretly saturated by a non-VStore workload and the
  // monitors are off, so resource records are stale-idle: the decision
  // engine keeps picking the (loaded) desktop. The bandit only sees
  // realized times and learns to run on the idle netbook instead.
  HomeCloudConfig cfg;
  cfg.netbooks = 2;
  cfg.start_monitors = false;  // records stay as published at bootstrap
  HomeCloud hc{cfg};
  hc.bootstrap();

  auto x264 = services::x264_profile();
  hc.registry().add_profile(x264);
  hc.node(1).deploy_service(x264);
  hc.desktop().deploy_service(x264);

  double engine_total = 0, learner_total = 0;
  int learner_on_netbook = 0;
  hc.run([&](HomeCloud& h) -> Task<> {
    (void)co_await h.node(1).publish_services();
    (void)co_await h.desktop().publish_services();

    // Saturate the desktop invisibly (monitors off → records say idle).
    // Many competing jobs shrink any newcomer's fair share to a sliver, so
    // the desktop is genuinely the worse choice despite its bigger cores.
    for (int j = 0; j < 15; ++j) {
      h.sim().spawn([](HomeCloud& hh) -> Task<> {
        co_await hh.desktop().host().execute(hh.desktop().app_domain(), 1e9, 4);
      }(h));
    }
    co_await h.sim().delay(milliseconds(100));

    for (int i = 0; i < 8; ++i) {
      const std::string name = "v" + std::to_string(i) + ".avi";
      ObjectMeta m;
      m.name = name;
      m.type = "avi";
      m.size = 4_MB;
      (void)co_await h.node(0).create_object(m);
      (void)co_await h.node(0).store_object(name);
    }

    // Model-based decisions (stale records → loaded desktop every time).
    for (int i = 0; i < 4; ++i) {
      const auto t0 = h.sim().now();
      auto res = co_await h.node(0).process("v" + std::to_string(i) + ".avi", x264);
      if (res.ok()) engine_total += to_seconds(h.sim().now() - t0);
    }

    // Bandit over the same two sites.
    PlacementLearner learner;
    const std::vector<ExecSite> cands{home_site(h.node(1).chimera().id()),
                                      home_site(h.desktop().chimera().id())};
    const std::string ctx = PlacementLearner::context_of(x264, 4_MB);
    for (int i = 4; i < 8; ++i) {
      const auto site = learner.choose(ctx, cands);
      const auto t0 = h.sim().now();
      auto res = co_await h.node(0).process("v" + std::to_string(i) + ".avi", x264,
                                            DecisionPolicy::performance, site);
      if (!res.ok()) continue;
      const auto took = h.sim().now() - t0;
      learner.observe(ctx, site, took);
      learner_total += to_seconds(took);
      learner_on_netbook += (site == cands[0]);
    }
  }(hc));

  // After its warm-up pulls, the learner settles on the idle netbook; the
  // engine burns every run on the saturated desktop.
  EXPECT_GE(learner_on_netbook, 3);
  EXPECT_LT(learner_total, engine_total * 0.75);
}

}  // namespace
}  // namespace c4h::vstore
