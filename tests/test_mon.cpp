// Resource monitoring: record serialization, periodic publication into the
// KV store, liveness of the values used by placement decisions.
#include <gtest/gtest.h>

#include <memory>

#include "src/mon/monitor.hpp"

namespace c4h::mon {
namespace {

using overlay::ChimeraNode;
using overlay::Overlay;
using sim::Simulation;
using sim::Task;

TEST(ResourceRecord, SerializeRoundTrip) {
  ResourceRecord rec;
  rec.node = Key::from_name("node-a");
  rec.cpu_load = 0.42;
  rec.free_memory = 512_MB;
  rec.mandatory_bin_free = 3_GB;
  rec.voluntary_bin_free = 1_GB;
  rec.uplink_estimate = mbps(4.5);
  rec.battery = 0.77;
  rec.battery_powered = true;
  rec.sampled_at_ns = 123456789;

  auto back = ResourceRecord::deserialize(rec.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node, rec.node);
  EXPECT_DOUBLE_EQ(back->cpu_load, rec.cpu_load);
  EXPECT_EQ(back->free_memory, rec.free_memory);
  EXPECT_EQ(back->mandatory_bin_free, rec.mandatory_bin_free);
  EXPECT_EQ(back->voluntary_bin_free, rec.voluntary_bin_free);
  EXPECT_DOUBLE_EQ(back->uplink_estimate, rec.uplink_estimate);
  EXPECT_DOUBLE_EQ(back->battery, rec.battery);
  EXPECT_TRUE(back->battery_powered);
  EXPECT_EQ(back->sampled_at_ns, rec.sampled_at_ns);
}

TEST(ResourceRecord, DeserializeGarbageFails) {
  Buffer junk{1, 2, 3};
  EXPECT_FALSE(ResourceRecord::deserialize(junk).ok());
}

struct Rig {
  Simulation sim{5};
  net::Topology topo;
  std::vector<std::unique_ptr<vmm::Host>> hosts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Overlay> overlay;
  std::unique_ptr<kv::KvStore> kv;
  std::vector<ChimeraNode*> nodes;
  std::vector<std::unique_ptr<ResourceMonitor>> monitors;

  explicit Rig(int n, MonitorConfig mcfg = {}) {
    const auto sw = topo.add_node();
    for (int i = 0; i < n; ++i) {
      vmm::HostSpec spec;
      spec.name = "host-" + std::to_string(i);
      if (i > 0) spec.battery.capacity_wh = 30.0;  // all but host-0 portable
      hosts.push_back(std::make_unique<vmm::Host>(sim, spec));
      const auto nn = topo.add_node();
      topo.add_duplex(nn, sw, mbps(95.5), microseconds(150));
      hosts.back()->set_net_node(nn);
    }
    net = std::make_unique<net::Network>(sim, std::move(topo));
    overlay = std::make_unique<Overlay>(sim, *net);
    kv = std::make_unique<kv::KvStore>(*overlay);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(&overlay->create_node("node-" + std::to_string(i),
                                            *hosts[static_cast<std::size_t>(i)]));
    }
    sim.spawn([](Rig& r) -> Task<> {
      for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        (void)co_await r.overlay->join(*r.nodes[i], i == 0 ? nullptr : r.nodes[0]);
      }
    }(*this));
    sim.run();
    for (int i = 0; i < n; ++i) {
      BinWatcher w;
      w.mandatory_free = [] { return Bytes{10_GB}; };
      w.voluntary_free = [] { return Bytes{5_GB}; };
      monitors.push_back(std::make_unique<ResourceMonitor>(
          *nodes[static_cast<std::size_t>(i)], *kv, w, mcfg));
    }
  }
};

TEST(Monitor, PublishOnceMakesRecordFetchable) {
  Rig rig{4};
  rig.sim.spawn([](Rig& r) -> Task<> {
    co_await r.monitors[1]->publish_once();
    auto rec = co_await fetch_record(*r.kv, *r.nodes[3], r.nodes[1]->id());
    EXPECT_TRUE(rec.ok());
    if (rec.ok()) {
      EXPECT_EQ(rec->node, r.nodes[1]->id());
      EXPECT_EQ(rec->mandatory_bin_free, 10_GB);
      EXPECT_TRUE(rec->battery_powered);
    }
  }(rig));
  rig.sim.run();
}

TEST(Monitor, PeriodicUpdatesRefreshTimestamp) {
  MonitorConfig cfg;
  cfg.period = milliseconds(500);
  Rig rig{3, cfg};
  rig.monitors[2]->start();
  rig.sim.run_until(seconds(3));
  EXPECT_GE(rig.monitors[2]->updates_published(), 5u);

  std::int64_t ts = -1;
  rig.sim.spawn([](Rig& r, std::int64_t& out) -> Task<> {
    auto rec = co_await fetch_record(*r.kv, *r.nodes[0], r.nodes[2]->id());
    EXPECT_TRUE(rec.ok());
    if (rec.ok()) out = rec->sampled_at_ns;
  }(rig, ts));
  rig.sim.run_until(seconds(4));
  EXPECT_GE(ts, to_seconds(seconds(2)) * 1e9);  // a recent sample, not the first
}

TEST(Monitor, CpuLoadIsReflected) {
  Rig rig{3};
  auto& host = *rig.hosts[1];
  auto& vm = host.create_guest("vm", 2, 256_MB);
  rig.sim.spawn([](vmm::Host& h, vmm::Domain& d) -> Task<> {
    co_await h.execute(d, 1000.0, 2);  // long-running load
  }(host, vm));
  rig.sim.spawn([](Rig& r) -> Task<> {
    co_await r.sim.delay(seconds(1));
    co_await r.monitors[1]->publish_once();
    auto rec = co_await fetch_record(*r.kv, *r.nodes[0], r.nodes[1]->id());
    EXPECT_TRUE(rec.ok());
    if (rec.ok()) {
      EXPECT_GT(rec->cpu_load, 0.9);
    }
  }(rig));
  rig.sim.run_until(seconds(10));
}

TEST(Monitor, StopsWhenNodeGoesOffline) {
  MonitorConfig cfg;
  cfg.period = milliseconds(200);
  Rig rig{3, cfg};
  rig.monitors[1]->start();
  rig.sim.run_until(seconds(1));
  const auto published = rig.monitors[1]->updates_published();
  EXPECT_GT(published, 0u);
  rig.hosts[1]->set_online(false);
  rig.sim.run_until(seconds(3));
  EXPECT_LE(rig.monitors[1]->updates_published(), published + 1);
}

TEST(Monitor, MessagingOverheadScalesWithFrequency) {
  // The paper makes the period configurable "to contain messaging
  // overheads": a faster monitor must cost proportionally more messages.
  auto run_with_period = [](Duration period) {
    MonitorConfig cfg;
    cfg.period = period;
    Rig rig{4, cfg};
    const auto msgs_before = rig.net->stats().messages_sent;
    for (auto& m : rig.monitors) m->start();
    rig.sim.run_until(rig.sim.now() + seconds(10));
    return rig.net->stats().messages_sent - msgs_before;
  };
  const auto fast = run_with_period(milliseconds(500));
  const auto slow = run_with_period(seconds(5));
  EXPECT_GT(fast, slow * 3);
}

}  // namespace
}  // namespace c4h::mon
