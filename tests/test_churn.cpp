// Randomized churn schedules: interleaved joins, graceful leaves, crashes,
// and KV traffic, with invariants checked after every step. This is the
// paper's "dynamism of the home environment, where nodes may periodically
// go off-line and become unavailable" exercised adversarially.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/kv/kvstore.hpp"

namespace c4h::kv {
namespace {

using overlay::ChimeraNode;
using overlay::Overlay;
using overlay::OverlayConfig;
using sim::Simulation;
using sim::Task;

struct ChurnRig {
  Simulation sim;
  net::Topology topo;
  std::vector<std::unique_ptr<vmm::Host>> hosts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<Overlay> overlay;
  std::unique_ptr<KvStore> kv;
  std::vector<ChimeraNode*> nodes;

  explicit ChurnRig(int n, std::uint64_t seed) : sim(seed) {
    const auto sw = topo.add_node();
    for (int i = 0; i < n; ++i) {
      vmm::HostSpec spec;
      spec.name = "churn-host-" + std::to_string(i);
      hosts.push_back(std::make_unique<vmm::Host>(sim, spec));
      const auto nn = topo.add_node();
      topo.add_duplex(nn, sw, mbps(95.5), microseconds(150));
      hosts.back()->set_net_node(nn);
    }
    net = std::make_unique<net::Network>(sim, std::move(topo));
    OverlayConfig ocfg;
    ocfg.stabilize_period = milliseconds(500);
    overlay = std::make_unique<Overlay>(sim, *net, ocfg);
    KvConfig kcfg;
    kcfg.replication = 2;
    kv = std::make_unique<KvStore>(*overlay, kcfg);
    for (int i = 0; i < n; ++i) {
      nodes.push_back(&overlay->create_node("churn-node-" + std::to_string(i),
                                            *hosts[static_cast<std::size_t>(i)]));
    }
  }

  ChimeraNode* random_live(Rng& rng) {
    auto live = overlay->live_members();
    if (live.empty()) return nullptr;
    return live[rng.below(live.size())];
  }
};

class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, SystemStaysConsistentUnderRandomChurn) {
  const std::uint64_t seed = GetParam();
  ChurnRig rig{8, seed};
  rig.overlay->start_stabilization();

  rig.sim.run_task([](ChurnRig& r, std::uint64_t sd) -> Task<> {
    Rng rng{sd};
    // Join everyone.
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      (void)co_await r.overlay->join(*r.nodes[i], i == 0 ? nullptr : r.nodes[0]);
    }

    std::unordered_map<Key, std::string> oracle;  // what a correct KV holds
    int kills = 0;

    for (int step = 0; step < 120; ++step) {
      co_await r.sim.delay(milliseconds(200));
      const double dice = rng.uniform();
      ChimeraNode* actor = r.random_live(rng);
      if (actor == nullptr) break;

      if (dice < 0.40) {
        // put
        const Key k = Key::from_name("ck-" + std::to_string(rng.below(30)));
        const std::string v = "v" + std::to_string(step);
        auto res = co_await r.kv->put(*actor, k, Buffer(v.begin(), v.end()));
        if (res.ok()) oracle[k] = v;
      } else if (dice < 0.80) {
        // get — value must match the oracle (or be a fresh loss right after
        // an unrepaired crash, which replication=2 should prevent once the
        // heartbeat has run; give no slack: any mismatch is a bug).
        const Key k = Key::from_name("ck-" + std::to_string(rng.below(30)));
        auto res = co_await r.kv->get(*actor, k);
        const auto it = oracle.find(k);
        if (it == oracle.end()) {
          EXPECT_FALSE(res.ok()) << "phantom key at step " << step << " seed " << sd;
        } else if (res.ok()) {
          EXPECT_EQ(std::string(res->begin(), res->end()), it->second)
              << "stale read at step " << step << " seed " << sd;
        }
        // A failed get of a known key is tolerated only while a crash is
        // being repaired; repairs are checked at the end.
      } else if (dice < 0.90 && r.overlay->live_members().size() > 4) {
        co_await r.overlay->leave(*actor);
      } else if (r.overlay->live_members().size() > 4 && kills < 2) {
        r.overlay->crash(*actor);
        ++kills;
        co_await r.sim.delay(seconds(3));  // detection + repair window
      }

      // Overlay invariant: routing from any live node reaches the true
      // owner (spot-check one random key per step).
      const Key probe = Key::from_name("probe-" + std::to_string(step));
      ChimeraNode* origin = r.random_live(rng);
      if (origin != nullptr) {
        auto routed = co_await r.overlay->route(*origin, probe);
        EXPECT_TRUE(routed.ok());
        if (routed.ok()) {
          EXPECT_EQ(routed->owner, r.overlay->true_owner(probe))
              << "routing diverged at step " << step << " seed " << sd;
        }
      }
    }

    // Quiesce, then every oracle key must be readable with the right value.
    co_await r.sim.delay(seconds(6));
    ChimeraNode* reader = r.random_live(rng);
    EXPECT_NE(reader, nullptr);
    if (reader == nullptr) co_return;
    int lost = 0;
    // Sorted readback: each get is awaited, so the sweep order feeds the
    // event schedule and must be a function of the seed, not of hash layout.
    std::vector<std::pair<Key, std::string>> sorted_oracle(
        oracle.begin(), oracle.end());  // c4h-lint: allow(R3) — snapshot, sorted next

    std::sort(sorted_oracle.begin(), sorted_oracle.end());
    for (const auto& [k, v] : sorted_oracle) {
      auto res = co_await r.kv->get(*reader, k);
      if (!res.ok()) {
        ++lost;
        continue;
      }
      EXPECT_EQ(std::string(res->begin(), res->end()), v) << "seed " << sd;
    }
    EXPECT_EQ(lost, 0) << "replication factor 2 must survive this churn (seed " << sd << ")";
  }(rig, seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace c4h::kv
