# Empty compiler generated dependencies file for home_surveillance.
# This may be replaced when dependencies are built.
