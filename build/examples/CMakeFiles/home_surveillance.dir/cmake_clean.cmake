file(REMOVE_RECURSE
  "CMakeFiles/home_surveillance.dir/home_surveillance.cpp.o"
  "CMakeFiles/home_surveillance.dir/home_surveillance.cpp.o.d"
  "home_surveillance"
  "home_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
