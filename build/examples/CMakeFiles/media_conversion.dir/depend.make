# Empty dependencies file for media_conversion.
# This may be replaced when dependencies are built.
