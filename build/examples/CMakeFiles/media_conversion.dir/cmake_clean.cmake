file(REMOVE_RECURSE
  "CMakeFiles/media_conversion.dir/media_conversion.cpp.o"
  "CMakeFiles/media_conversion.dir/media_conversion.cpp.o.d"
  "media_conversion"
  "media_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
