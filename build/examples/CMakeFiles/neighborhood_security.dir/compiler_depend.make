# Empty compiler generated dependencies file for neighborhood_security.
# This may be replaced when dependencies are built.
