file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_security.dir/neighborhood_security.cpp.o"
  "CMakeFiles/neighborhood_security.dir/neighborhood_security.cpp.o.d"
  "neighborhood_security"
  "neighborhood_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
