# Empty dependencies file for test_vstore.
# This may be replaced when dependencies are built.
