file(REMOVE_RECURSE
  "CMakeFiles/test_vstore.dir/test_vstore.cpp.o"
  "CMakeFiles/test_vstore.dir/test_vstore.cpp.o.d"
  "test_vstore"
  "test_vstore.pdb"
  "test_vstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
