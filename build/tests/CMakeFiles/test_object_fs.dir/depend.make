# Empty dependencies file for test_object_fs.
# This may be replaced when dependencies are built.
