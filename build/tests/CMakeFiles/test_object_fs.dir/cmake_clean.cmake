file(REMOVE_RECURSE
  "CMakeFiles/test_object_fs.dir/test_object_fs.cpp.o"
  "CMakeFiles/test_object_fs.dir/test_object_fs.cpp.o.d"
  "test_object_fs"
  "test_object_fs.pdb"
  "test_object_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_object_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
