# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rbtree[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_vmm[1]_include.cmake")
include("/root/repo/build/tests/test_overlay[1]_include.cmake")
include("/root/repo/build/tests/test_kv[1]_include.cmake")
include("/root/repo/build/tests/test_mon[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_vstore[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_acl[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_federation[1]_include.cmake")
include("/root/repo/build/tests/test_object_fs[1]_include.cmake")
include("/root/repo/build/tests/test_learner[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_central[1]_include.cmake")
