# Empty dependencies file for c4h_federation.
# This may be replaced when dependencies are built.
