file(REMOVE_RECURSE
  "CMakeFiles/c4h_federation.dir/federation.cpp.o"
  "CMakeFiles/c4h_federation.dir/federation.cpp.o.d"
  "libc4h_federation.a"
  "libc4h_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
