file(REMOVE_RECURSE
  "libc4h_federation.a"
)
