# Empty dependencies file for c4h_kv.
# This may be replaced when dependencies are built.
