file(REMOVE_RECURSE
  "libc4h_kv.a"
)
