file(REMOVE_RECURSE
  "CMakeFiles/c4h_kv.dir/kvstore.cpp.o"
  "CMakeFiles/c4h_kv.dir/kvstore.cpp.o.d"
  "libc4h_kv.a"
  "libc4h_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
