# Empty dependencies file for c4h_mon.
# This may be replaced when dependencies are built.
