file(REMOVE_RECURSE
  "CMakeFiles/c4h_mon.dir/monitor.cpp.o"
  "CMakeFiles/c4h_mon.dir/monitor.cpp.o.d"
  "libc4h_mon.a"
  "libc4h_mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
