file(REMOVE_RECURSE
  "libc4h_mon.a"
)
