# Empty compiler generated dependencies file for c4h_overlay.
# This may be replaced when dependencies are built.
