file(REMOVE_RECURSE
  "CMakeFiles/c4h_overlay.dir/overlay.cpp.o"
  "CMakeFiles/c4h_overlay.dir/overlay.cpp.o.d"
  "libc4h_overlay.a"
  "libc4h_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
