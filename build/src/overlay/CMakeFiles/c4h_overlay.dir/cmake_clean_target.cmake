file(REMOVE_RECURSE
  "libc4h_overlay.a"
)
