# Empty dependencies file for c4h_net.
# This may be replaced when dependencies are built.
