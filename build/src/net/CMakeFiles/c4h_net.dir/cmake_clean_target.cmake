file(REMOVE_RECURSE
  "libc4h_net.a"
)
