file(REMOVE_RECURSE
  "CMakeFiles/c4h_net.dir/network.cpp.o"
  "CMakeFiles/c4h_net.dir/network.cpp.o.d"
  "libc4h_net.a"
  "libc4h_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
