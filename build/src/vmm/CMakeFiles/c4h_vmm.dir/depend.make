# Empty dependencies file for c4h_vmm.
# This may be replaced when dependencies are built.
