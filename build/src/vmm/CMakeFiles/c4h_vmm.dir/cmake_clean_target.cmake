file(REMOVE_RECURSE
  "libc4h_vmm.a"
)
