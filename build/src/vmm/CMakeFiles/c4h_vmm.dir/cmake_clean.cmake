file(REMOVE_RECURSE
  "CMakeFiles/c4h_vmm.dir/machine.cpp.o"
  "CMakeFiles/c4h_vmm.dir/machine.cpp.o.d"
  "libc4h_vmm.a"
  "libc4h_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
