file(REMOVE_RECURSE
  "libc4h_vstore.a"
)
