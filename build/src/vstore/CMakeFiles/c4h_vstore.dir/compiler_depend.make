# Empty compiler generated dependencies file for c4h_vstore.
# This may be replaced when dependencies are built.
