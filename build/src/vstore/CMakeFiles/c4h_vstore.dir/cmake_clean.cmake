file(REMOVE_RECURSE
  "CMakeFiles/c4h_vstore.dir/home_cloud.cpp.o"
  "CMakeFiles/c4h_vstore.dir/home_cloud.cpp.o.d"
  "CMakeFiles/c4h_vstore.dir/vstore.cpp.o"
  "CMakeFiles/c4h_vstore.dir/vstore.cpp.o.d"
  "libc4h_vstore.a"
  "libc4h_vstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_vstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
