file(REMOVE_RECURSE
  "libc4h_trace.a"
)
