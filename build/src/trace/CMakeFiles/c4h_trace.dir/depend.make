# Empty dependencies file for c4h_trace.
# This may be replaced when dependencies are built.
