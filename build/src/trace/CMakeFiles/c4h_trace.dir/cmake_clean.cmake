file(REMOVE_RECURSE
  "CMakeFiles/c4h_trace.dir/edonkey.cpp.o"
  "CMakeFiles/c4h_trace.dir/edonkey.cpp.o.d"
  "libc4h_trace.a"
  "libc4h_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
