file(REMOVE_RECURSE
  "libc4h_services.a"
)
