file(REMOVE_RECURSE
  "CMakeFiles/c4h_services.dir/service.cpp.o"
  "CMakeFiles/c4h_services.dir/service.cpp.o.d"
  "libc4h_services.a"
  "libc4h_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
