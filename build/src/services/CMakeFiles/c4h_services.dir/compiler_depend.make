# Empty compiler generated dependencies file for c4h_services.
# This may be replaced when dependencies are built.
