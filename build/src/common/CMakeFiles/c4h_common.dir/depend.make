# Empty dependencies file for c4h_common.
# This may be replaced when dependencies are built.
