file(REMOVE_RECURSE
  "CMakeFiles/c4h_common.dir/log.cpp.o"
  "CMakeFiles/c4h_common.dir/log.cpp.o.d"
  "CMakeFiles/c4h_common.dir/serial.cpp.o"
  "CMakeFiles/c4h_common.dir/serial.cpp.o.d"
  "CMakeFiles/c4h_common.dir/sha1.cpp.o"
  "CMakeFiles/c4h_common.dir/sha1.cpp.o.d"
  "libc4h_common.a"
  "libc4h_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
