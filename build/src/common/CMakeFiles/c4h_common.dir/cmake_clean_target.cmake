file(REMOVE_RECURSE
  "libc4h_common.a"
)
