file(REMOVE_RECURSE
  "libc4h_cloud.a"
)
