file(REMOVE_RECURSE
  "CMakeFiles/c4h_cloud.dir/cloud.cpp.o"
  "CMakeFiles/c4h_cloud.dir/cloud.cpp.o.d"
  "libc4h_cloud.a"
  "libc4h_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c4h_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
