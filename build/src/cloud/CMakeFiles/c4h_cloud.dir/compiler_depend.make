# Empty compiler generated dependencies file for c4h_cloud.
# This may be replaced when dependencies are built.
