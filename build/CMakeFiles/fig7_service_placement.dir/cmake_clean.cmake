file(REMOVE_RECURSE
  "CMakeFiles/fig7_service_placement.dir/bench/fig7_service_placement.cpp.o"
  "CMakeFiles/fig7_service_placement.dir/bench/fig7_service_placement.cpp.o.d"
  "bench/fig7_service_placement"
  "bench/fig7_service_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_service_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
