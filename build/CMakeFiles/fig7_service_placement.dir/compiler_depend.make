# Empty compiler generated dependencies file for fig7_service_placement.
# This may be replaced when dependencies are built.
