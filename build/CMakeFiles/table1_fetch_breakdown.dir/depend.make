# Empty dependencies file for table1_fetch_breakdown.
# This may be replaced when dependencies are built.
