file(REMOVE_RECURSE
  "CMakeFiles/table1_fetch_breakdown.dir/bench/table1_fetch_breakdown.cpp.o"
  "CMakeFiles/table1_fetch_breakdown.dir/bench/table1_fetch_breakdown.cpp.o.d"
  "bench/table1_fetch_breakdown"
  "bench/table1_fetch_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fetch_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
