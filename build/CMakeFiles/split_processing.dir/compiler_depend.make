# Empty compiler generated dependencies file for split_processing.
# This may be replaced when dependencies are built.
