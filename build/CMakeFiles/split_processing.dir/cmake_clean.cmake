file(REMOVE_RECURSE
  "CMakeFiles/split_processing.dir/bench/split_processing.cpp.o"
  "CMakeFiles/split_processing.dir/bench/split_processing.cpp.o.d"
  "bench/split_processing"
  "bench/split_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
