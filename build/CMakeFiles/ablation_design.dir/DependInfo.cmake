
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_design.cpp" "CMakeFiles/ablation_design.dir/bench/ablation_design.cpp.o" "gcc" "CMakeFiles/ablation_design.dir/bench/ablation_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vstore/CMakeFiles/c4h_vstore.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/c4h_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/c4h_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/c4h_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/c4h_services.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/c4h_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/c4h_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/c4h_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/c4h_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/c4h_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
