# Empty dependencies file for fig5_optimal_object_size.
# This may be replaced when dependencies are built.
