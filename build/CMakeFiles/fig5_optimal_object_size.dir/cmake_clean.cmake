file(REMOVE_RECURSE
  "CMakeFiles/fig5_optimal_object_size.dir/bench/fig5_optimal_object_size.cpp.o"
  "CMakeFiles/fig5_optimal_object_size.dir/bench/fig5_optimal_object_size.cpp.o.d"
  "bench/fig5_optimal_object_size"
  "bench/fig5_optimal_object_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_optimal_object_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
