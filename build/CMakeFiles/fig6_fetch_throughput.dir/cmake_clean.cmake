file(REMOVE_RECURSE
  "CMakeFiles/fig6_fetch_throughput.dir/bench/fig6_fetch_throughput.cpp.o"
  "CMakeFiles/fig6_fetch_throughput.dir/bench/fig6_fetch_throughput.cpp.o.d"
  "bench/fig6_fetch_throughput"
  "bench/fig6_fetch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fetch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
