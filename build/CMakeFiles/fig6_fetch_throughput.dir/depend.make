# Empty dependencies file for fig6_fetch_throughput.
# This may be replaced when dependencies are built.
