# Empty dependencies file for fig8_dynamic_routing.
# This may be replaced when dependencies are built.
