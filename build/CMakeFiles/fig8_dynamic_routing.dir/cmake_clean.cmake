file(REMOVE_RECURSE
  "CMakeFiles/fig8_dynamic_routing.dir/bench/fig8_dynamic_routing.cpp.o"
  "CMakeFiles/fig8_dynamic_routing.dir/bench/fig8_dynamic_routing.cpp.o.d"
  "bench/fig8_dynamic_routing"
  "bench/fig8_dynamic_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dynamic_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
