file(REMOVE_RECURSE
  "CMakeFiles/fig4_home_vs_remote.dir/bench/fig4_home_vs_remote.cpp.o"
  "CMakeFiles/fig4_home_vs_remote.dir/bench/fig4_home_vs_remote.cpp.o.d"
  "bench/fig4_home_vs_remote"
  "bench/fig4_home_vs_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_home_vs_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
