# Empty compiler generated dependencies file for fig4_home_vs_remote.
# This may be replaced when dependencies are built.
