// Figure 5: remote-cloud throughput vs object size, two methods.
//
// Method 1 keeps the total bytes per bucket constant; Method 2 keeps the
// number of files constant. Paper's finding: throughput *rises* with object
// size (slow-start amortization, S3's TCP window growth up to ~1.6 MB) to a
// peak around 20 MB, then *degrades* for long transfers (ISP traffic
// shaping / rate policing) — so there is an "optimal" object size for
// remote-cloud placement.
#include "bench/bench_util.hpp"

namespace c4h {
namespace {

using sim::Task;

// Store-and-fetch a set of objects of one size against the remote cloud and
// return aggregate throughput (MB/s over all remote interactions).
double measure(Bytes object_size, int file_count, std::uint64_t seed) {
  vstore::HomeCloudConfig cfg;
  cfg.seed = seed;
  cfg.start_monitors = false;
  cfg.wan_rate_jitter = 0.15;  // modest jitter; the figure's shape is transport-driven
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();

  double mbytes = 0;
  Duration busy{};
  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    vstore::StoreOptions opts;
    opts.policy.fallback = vstore::StoreTarget::remote_cloud;
    for (int i = 0; i < file_count; ++i) {
      const std::string name = "f5/" + std::to_string(object_size) + "/" + std::to_string(i);
      auto& node = h.node(static_cast<std::size_t>(i) % h.node_count());
      const auto t0 = h.sim().now();
      auto s = co_await bench::put_object(node, bench::make_object(name, object_size, "avi"), opts);
      if (!s.ok()) continue;
      auto f = co_await node.fetch_object(name);
      const auto t1 = h.sim().now();
      if (!f.ok()) continue;
      busy += (t1 - t0);
      mbytes += 2.0 * to_mib(object_size);  // up + down
    }
  }(hc));
  return mbytes / to_seconds(busy);
}

void run() {
  bench::header("Fig 5 — Remote cloud: optimal object size",
                "ICDCS'11 Cloud4Home, Figure 5");

  const std::vector<Bytes> sizes{1_MB, 5_MB, 10_MB, 20_MB, 30_MB, 50_MB, 70_MB, 100_MB};
  constexpr double kMethod1TotalMB = 200.0;  // constant bytes per bucket
  constexpr int kMethod2Files = 4;           // constant file count per bucket

  std::printf("%10s | %18s | %18s\n", "size", "Method1 (MB/s)", "Method2 (MB/s)");
  std::printf("%10s | %18s | %18s\n", "", "(const total MB)", "(const #files)");
  bench::row_line();

  obs::BenchReport report("fig5_optimal_object_size", 7000);
  report.meta("method1_total_mb", std::to_string(static_cast<int>(kMethod1TotalMB)));
  report.meta("method2_files", std::to_string(kMethod2Files));

  double best_tput = 0;
  double best_size = 0;
  for (const Bytes size : sizes) {
    const int m1_files = std::max(1, static_cast<int>(kMethod1TotalMB / to_mib(size)));
    const double m1 = measure(size, m1_files, 7000 + size / 1_MB);
    const double m2 = measure(size, kMethod2Files, 9000 + size / 1_MB);
    std::printf("%8.0fMB | %18.3f | %18.3f\n", to_mib(size), m1, m2);
    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "method1.throughput", m1, "MB/s");
    report.add(label, "method2.throughput", m2, "MB/s");
    if (m1 > best_tput) {
      best_tput = m1;
      best_size = to_mib(size);
    }
  }
  report.add("peak", "method1.best_size", best_size, "MB");

  std::printf("\nshape checks: both methods rise to a peak then degrade; peak near 20 MB\n");
  std::printf("(measured peak: %.0f MB). Mechanisms: slow-start amortization + 1.6 MB\n", best_size);
  std::printf("window growth (rise), ISP policing of long transfers (fall).\n");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
