// Scenario: city-scale federation (ROADMAP item 2; DESIGN.md §12) — a
// metro City of neighborhoods (leaf/spine wide-area core, geo-spread spine
// latencies), two homes per neighborhood, tenants homed round-robin across
// neighborhoods fetching each other's published objects through the
// GeoFederation's geo-aware replica selection — under mild crash/restart
// churn, with a periodic repair sweep healing replica sets.
//
// The headline series: fetch-latency tails (p50/p99/p999) split by the
// four serving tiers — local / neighborhood / wide_area / cloud — the cost
// pyramid the two-tier architecture exists to preserve.
#include <memory>

#include "bench/scenario_util.hpp"
#include "src/sim/sync.hpp"
#include "src/workload/federation_driver.hpp"

namespace c4h {
namespace {

using sim::Task;

constexpr int kHomesPerHood = 2;

workload::WorkloadSpec make_spec(const bench::BenchArgs& args, int tenant_count) {
  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = args.quick ? seconds(15) : seconds(60);

  for (int t = 0; t < tenant_count; ++t) {
    workload::TenantSpec ts;
    ts.name = "t" + std::to_string(t);
    ts.principal = {ts.name, vstore::TrustLevel::trusted};
    // Fetch-heavy, with the occasional re-store (which republishes).
    ts.mix = {0.2, 0.8, 0.0, 0.0};
    ts.object_count = args.quick ? 6 : 20;
    ts.size = {64_KB, 512_KB};
    ts.zipf_s = 0.8;
    // Tenant homes interleave across neighborhoods (City::all_homes), so
    // the next two tenants live in other neighborhoods: most fetch traffic
    // is cross-neighborhood by construction.
    ts.fetch_from = {"t" + std::to_string((t + 1) % tenant_count),
                     "t" + std::to_string((t + 2) % tenant_count)};
    ts.arrival.rate_per_sec = args.quick ? 2.0 : 4.0;
    spec.tenants.push_back(ts);
  }
  return spec;
}

void run(const bench::BenchArgs& args) {
  bench::header("Scenario — city-scale federation",
                "§VII (v) grown metro-scale: two-tier overlay, geo-aware replicas");

  bench::BenchArgs a = args;
  if (a.neighborhoods < 4) a.neighborhoods = 4;
  if (a.nodes < 3) a.nodes = 3;  // per home

  vstore::City city{{.seed = a.seed, .spines = 2}};
  std::vector<std::unique_ptr<vstore::Neighborhood>> hoods;
  std::vector<std::unique_ptr<vstore::HomeCloud>> homes;
  for (int h = 0; h < a.neighborhoods; ++h) {
    vstore::NeighborhoodConfig nc;
    nc.seed = a.seed;
    nc.name = "hood-" + std::to_string(h);
    // Geographic spread: each neighborhood sits farther from the metro
    // core, so inter-neighborhood latency grows with index distance.
    nc.spine_latency = milliseconds(1 + 3 * h);
    hoods.push_back(std::make_unique<vstore::Neighborhood>(city, nc));
    for (int i = 0; i < kHomesPerHood; ++i) {
      vstore::HomeCloudConfig hc;
      hc.netbooks = a.nodes - 1;
      hc.with_desktop = true;
      hc.seed = a.seed + static_cast<std::uint64_t>(h * kHomesPerHood + i);
      hc.home_name = "h" + std::to_string(h) + "-" + std::to_string(i);
      hc.kv.replication = 2;
      hc.start_monitors = false;
      homes.push_back(std::make_unique<vstore::HomeCloud>(*hoods.back(), hc));
    }
  }
  for (auto& hc : homes) hc->bootstrap();

  federation::GeoFederation fed{city, {.replication = 2}};
  const int tenant_count = static_cast<int>(homes.size());
  const workload::WorkloadSpec spec = make_spec(a, tenant_count);
  workload::FederationDriver driver{city, fed, spec};
  const workload::Schedule schedule = workload::generate(spec);
  std::printf("city: %d neighborhoods x %d homes x %d nodes; %zu ops, %zu objects\n\n",
              a.neighborhoods, kHomesPerHood, a.nodes, schedule.ops.size(),
              schedule.objects.size());

  // Mild churn: crashes and restarts only (message faults off — this bench
  // measures placement, not retransmission), flaps effectively disabled.
  sim::FaultSpec fault;
  fault.mean_crash_interval = seconds(8);
  fault.mean_downtime = seconds(4);
  fault.mean_flap_interval = seconds(86400);  // flaps effectively off
  fault.horizon = spec.duration * 6 / 10;
  sim::FaultPlan& plan = city.enable_chaos(fault);

  city.run([](vstore::City& c, federation::GeoFederation& f, workload::FederationDriver& d,
              const workload::Schedule& s, Duration duration) -> Task<> {
    std::vector<Task<>> tasks;
    tasks.push_back(d.drive(s));
    // Repair sweeps every 5 s for the run's duration (bounded, so the
    // bench terminates even when the driver drains early).
    tasks.push_back([](vstore::City& cc, federation::GeoFederation& ff,
                       Duration total) -> Task<> {
      const int sweeps = static_cast<int>(total / seconds(5));
      for (int i = 0; i < sweeps; ++i) {
        co_await cc.sim().delay(seconds(5));
        const std::size_t healed = co_await ff.repair_scan();
        (void)healed;
      }
    }(c, f, duration));
    co_await sim::when_all(c.sim(), std::move(tasks));
    const std::size_t final_heal = co_await f.repair_scan();
    (void)final_heal;
  }(city, fed, driver, schedule, spec.duration));

  // Per-path table.
  const obs::Snapshot snap = city.metrics().snapshot();
  std::printf("%-13s | %8s | %9s %9s %9s\n", "path", "fetches", "p50(ms)", "p99(ms)",
              "p999(ms)");
  bench::row_line();
  const federation::GeoStats& fs = fed.stats();
  for (std::size_t p = 0; p < federation::kFetchPaths; ++p) {
    const std::string label = federation::to_string(static_cast<federation::FetchPath>(p));
    const auto it = snap.histograms.find("c4h.fed2.fetch.latency_ns{path=" + label + "}");
    const obs::LogHistogram* h = it != snap.histograms.end() ? &it->second : nullptr;
    const double ms = 1e-6;
    std::printf("%-13s | %8llu | %9.1f %9.1f %9.1f\n", label.c_str(),
                static_cast<unsigned long long>(fs.fetches[p]),
                h != nullptr ? static_cast<double>(h->quantile(50.0)) * ms : 0.0,
                h != nullptr ? static_cast<double>(h->quantile(99.0)) * ms : 0.0,
                h != nullptr ? static_cast<double>(h->quantile(99.9)) * ms : 0.0);
  }
  std::printf(
      "\nfederation: %llu published, %llu replicas placed, %llu repairs "
      "(%llu unhealable), %llu fetch errors, %llu cross-neighborhood fetches\n",
      static_cast<unsigned long long>(fs.published),
      static_cast<unsigned long long>(fs.replicas_placed),
      static_cast<unsigned long long>(fs.repairs),
      static_cast<unsigned long long>(fs.repair_failures),
      static_cast<unsigned long long>(fs.fetch_errors),
      static_cast<unsigned long long>(driver.result().cross_hood_fetches));
  std::printf("churn: %llu crashes, %llu restarts\n",
              static_cast<unsigned long long>(plan.stats().crashes),
              static_cast<unsigned long long>(plan.stats().restarts));

  obs::BenchReport report("scenario_federation", a.seed);
  report.meta("quick", a.quick ? "true" : "false");
  report.meta("neighborhoods", std::to_string(a.neighborhoods));
  report.meta("homes_per_neighborhood", std::to_string(kHomesPerHood));
  report.meta("nodes_per_home", std::to_string(a.nodes));
  report.meta("replication", "2");
  report.meta("tenants", std::to_string(tenant_count));
  for (std::size_t p = 0; p < federation::kFetchPaths; ++p) {
    const std::string label = federation::to_string(static_cast<federation::FetchPath>(p));
    report.add("path=" + label, "fed.fetch.count", static_cast<double>(fs.fetches[p]), "count");
    const auto it = snap.histograms.find("c4h.fed2.fetch.latency_ns{path=" + label + "}");
    if (it != snap.histograms.end()) {
      obs::add_latency_tails(report, "path=" + label, "fed.fetch.latency", it->second);
    }
  }
  report.add("federation", "published", static_cast<double>(fs.published), "count");
  report.add("federation", "replicas_placed", static_cast<double>(fs.replicas_placed), "count");
  report.add("federation", "repairs", static_cast<double>(fs.repairs), "count");
  report.add("federation", "repair_failures", static_cast<double>(fs.repair_failures), "count");
  report.add("federation", "fetch_errors", static_cast<double>(fs.fetch_errors), "count");
  report.add("federation", "directory", static_cast<double>(fed.directory_size()), "count");
  report.add("federation", "cross_hood_fetches",
             static_cast<double>(driver.result().cross_hood_fetches), "count");
  report.add("churn", "crashes", static_cast<double>(plan.stats().crashes), "count");
  report.add("churn", "restarts", static_cast<double>(plan.stats().restarts), "count");
  for (const workload::TenantStats& t : driver.result().tenants) {
    report.add(t.name, "workload.issued", static_cast<double>(t.issued_total()), "count");
    report.add(t.name, "workload.ok", static_cast<double>(t.ok_total()), "count");
    report.add(t.name, "workload.failed", static_cast<double>(t.failed), "count");
  }
  workload::emit_tail_series(report, city.metrics());
  bench::emit(report);

  std::printf("\nshape checks: local p50 < neighborhood p50 <= wide_area p50 (the cost\n");
  std::printf("pyramid holds); zero unhealable entries after the final repair sweep.\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
