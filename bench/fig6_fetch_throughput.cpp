// Figure 6: aggregate fetch throughput vs the fraction of data stored in
// the remote cloud, for 1/2/3 client threads, plus the remote-cloud-only
// baseline.
//
// Setup (§V-B): the modified eDonkey dataset restricted to the "optimal"
// 10-25 MB object sizes, ~700 MB total, distributed between home nodes and
// the remote cloud ("private data locally, shareable data remotely");
// clients run on 3 of the 6 devices. Paper's findings: with content mostly
// at home, 3 concurrent threads raise throughput ~45% (effective LAN use);
// as the remote share grows, the aggregate uplink bottleneck erodes the
// benefit; the remote-only baseline is flat and low.
#include "bench/bench_util.hpp"
#include "src/sim/sync.hpp"
#include "src/trace/edonkey.hpp"

namespace c4h {
namespace {

using sim::Task;

struct Dataset {
  trace::TraceWorkload w;
  std::vector<bool> remote;  // per file: lives in the cloud?
};

Dataset make_dataset(double remote_fraction, std::uint64_t seed) {
  trace::TraceConfig tc;
  tc.seed = seed;
  tc.file_count = 40;  // ~700 MB at 10-25 MB/file
  tc.op_count = 1;     // we drive accesses ourselves
  tc.fixed_range = trace::BucketRange{10_MB, 25_MB};
  Dataset d;
  d.w = trace::generate(tc);
  d.remote.assign(d.w.files.size(), false);

  // Mark files remote until the byte fraction is met (shareable data first).
  const auto total = static_cast<double>(d.w.total_bytes());
  double remote_bytes = 0;
  for (std::size_t i = 0; i < d.w.files.size() && remote_bytes / total < remote_fraction; ++i) {
    if (d.w.files[i].is_private()) continue;  // .mp3 stays home
    d.remote[i] = true;
    remote_bytes += static_cast<double>(d.w.files[i].size);
  }
  // If mp3s alone block the target (high fractions), move them too.
  for (std::size_t i = 0; i < d.w.files.size() && remote_bytes / total < remote_fraction; ++i) {
    if (d.remote[i]) continue;
    d.remote[i] = true;
    remote_bytes += static_cast<double>(d.w.files[i].size);
  }
  return d;
}

/// Runs the fetch phase with `threads` concurrent fetchers on each of 3
/// client devices; returns aggregate MB/s. remote_only replaces all
/// placements with the cloud.
double measure(double remote_fraction, int threads, bool remote_only, std::uint64_t seed) {
  vstore::HomeCloudConfig cfg;
  cfg.seed = seed;
  cfg.start_monitors = false;
  cfg.wan_rate_jitter = 0.1;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();

  Dataset d = make_dataset(remote_only ? 1.0 : remote_fraction, seed);

  // Store phase: spread home files across the 6 devices; remote files to S3.
  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    for (std::size_t i = 0; i < d.w.files.size(); ++i) {
      const auto& f = d.w.files[i];
      auto& owner = h.node(i % h.node_count());
      vstore::StoreOptions opts;
      opts.policy.fallback =
          d.remote[i] ? vstore::StoreTarget::remote_cloud : vstore::StoreTarget::local;
      (void)co_await bench::put_object(owner, bench::make_object(f.name, f.size, f.type), opts);
    }
  }(hc));

  // Fetch phase: 3 client devices ("we avoid using all 6 home devices so as
  // to limit contention"), `threads` fetchers each. Clients fetch content
  // they do not own (sharing workload: a device pulls other devices' data).
  double fetched_mb = 0;
  const TimePoint t0 = hc.sim().now();
  auto fetcher = [&d, &fetched_mb](vstore::HomeCloud& h, std::size_t client,
                                   std::uint64_t fseed) -> Task<> {
    Rng rng{fseed};
    auto& node = h.node(client);
    for (int i = 0; i < 16; ++i) {
      std::size_t idx = rng.below(d.w.files.size());
      while (idx % h.node_count() == client) idx = rng.below(d.w.files.size());
      auto r = co_await node.fetch_object(d.w.files[idx].name);
      if (r.ok()) fetched_mb += to_mib(r->size);
    }
  };
  std::vector<Task<>> fetchers;
  for (std::size_t c = 0; c < 3; ++c) {
    for (int t = 0; t < threads; ++t) {
      fetchers.push_back(fetcher(hc, c, seed * 131 + c * 17 + static_cast<std::uint64_t>(t)));
    }
  }
  hc.run(sim::when_all(hc.sim(), std::move(fetchers)));
  const double elapsed = to_seconds(hc.sim().now() - t0);
  return fetched_mb / elapsed;
}

void run() {
  bench::header("Fig 6 — Fetch throughput vs % data in remote cloud",
                "ICDCS'11 Cloud4Home, Figure 6 (4 nodes / ~700 MB dataset)");

  std::printf("%8s | %12s %12s %12s | %12s\n", "remote%", "1 thread", "2 threads", "3 threads",
              "remote-only");
  std::printf("%8s | %12s %12s %12s | %12s\n", "", "(MB/s)", "(MB/s)", "(MB/s)", "(MB/s)");
  bench::row_line();

  obs::BenchReport report("fig6_fetch_throughput", 100);

  auto avg = [](double a, double b, double c) { return (a + b + c) / 3.0; };
  double t3_at_0 = 0, t1_at_0 = 0;
  for (const double frac : {0.0, 0.1, 0.2, 0.3, 0.4, 0.55}) {
    const auto fs = static_cast<std::uint64_t>(frac * 100);
    const double t1 = avg(measure(frac, 1, false, 100 + fs), measure(frac, 1, false, 1100 + fs),
                          measure(frac, 1, false, 2100 + fs));
    const double t2 = avg(measure(frac, 2, false, 200 + fs), measure(frac, 2, false, 1200 + fs),
                          measure(frac, 2, false, 2200 + fs));
    const double t3 = avg(measure(frac, 3, false, 300 + fs), measure(frac, 3, false, 1300 + fs),
                          measure(frac, 3, false, 2300 + fs));
    const double ro = measure(frac, 1, true, 400 + fs);
    if (frac == 0.0) {
      t1_at_0 = t1;
      t3_at_0 = t3;
    }
    std::printf("%7.0f%% | %12.2f %12.2f %12.2f | %12.2f\n", frac * 100, t1, t2, t3, ro);

    const std::string label = std::to_string(static_cast<int>(frac * 100)) + "%";
    report.add(label, "fetch.throughput.1thread", t1, "MB/s");
    report.add(label, "fetch.throughput.2threads", t2, "MB/s");
    report.add(label, "fetch.throughput.3threads", t3, "MB/s");
    report.add(label, "fetch.throughput.remote_only", ro, "MB/s");
  }

  std::printf("\nshape checks: more threads → higher throughput when content is mostly\n");
  std::printf("home (paper: ~45%% gain; measured 3-thread gain at 0%%: %+.0f%%); benefits\n",
              (t3_at_0 / t1_at_0 - 1.0) * 100.0);
  std::printf("shrink as remote%% grows (shared uplink); remote-only is flat and low.\n");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
