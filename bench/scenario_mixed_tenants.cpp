// Scenario: mixed-tenant steady state — four applications sharing one home
// cloud (the paper's §I application mix, run concurrently instead of in
// isolation).
//
//   media         private mp3 library, fetch-heavy, privacy placement
//   surveillance  camera frames, store + on-path detection service
//   iot           sensor fan-in: tiny objects at high rate
//   guest         an UNTRUSTED VM trying to read the media library — every
//                 attempt must come back permission_denied (acl.hpp)
//
// The point of running them together: per-tenant tail isolation. The
// artifact carries each tenant's latency tails plus the guest's denial
// count (which must equal its issue count).
#include "bench/scenario_util.hpp"

namespace c4h {
namespace {

using sim::Task;

services::ServiceProfile detect_profile() {
  services::ServiceProfile p;
  p.name = "detect";
  p.id = 22;
  p.fixed_gigacycles = 0.05;
  p.gigacycles_per_mib = 1.2;
  p.output_ratio = 0.01;
  p.working_set_base = 24_MB;
  return p;
}

workload::WorkloadSpec make_spec(const bench::BenchArgs& args) {
  const Duration duration = args.quick ? seconds(20) : seconds(90);

  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = duration;
  spec.diurnal.enabled = true;
  spec.diurnal.period = seconds(40);
  spec.diurnal.amplitude = 0.4;

  workload::TenantSpec media;
  media.name = "media";
  media.principal = {"media", vstore::TrustLevel::trusted};
  media.object_type = "mp3";
  media.private_objects = true;
  media.store_policy = vstore::StoragePolicy::privacy();
  media.mix = {0.3, 0.7, 0.0, 0.0};
  media.object_count = args.quick ? 24 : 96;
  media.size = {4_MB, 16_MB};
  media.arrival.rate_per_sec = args.quick ? 4.0 : 8.0;
  spec.tenants.push_back(media);

  workload::TenantSpec surveillance;
  surveillance.name = "surveillance";
  surveillance.principal = {"surveillance", vstore::TrustLevel::trusted};
  surveillance.mix = {0.5, 0.0, 0.5, 0.0};
  surveillance.object_count = args.quick ? 24 : 64;
  surveillance.size = {256_KB, 1_MB};
  surveillance.service = detect_profile();
  surveillance.arrival.rate_per_sec = args.quick ? 3.0 : 6.0;
  spec.tenants.push_back(surveillance);

  workload::TenantSpec iot;
  iot.name = "iot";
  iot.principal = {"iot", vstore::TrustLevel::trusted};
  iot.object_type = "json";
  iot.mix = {0.9, 0.1, 0.0, 0.0};
  iot.object_count = args.quick ? 48 : 160;
  iot.size = {4_KB, 32_KB};
  iot.zipf_s = 0.6;
  iot.arrival.rate_per_sec = args.quick ? 10.0 : 25.0;
  spec.tenants.push_back(iot);

  workload::TenantSpec guest;
  guest.name = "guest";
  guest.principal = {"guest", vstore::TrustLevel::untrusted};
  guest.mix = {0.0, 1.0, 0.0, 0.0};
  guest.object_count = 0;        // owns nothing: every fetch targets media
  guest.fetch_from = {"media"};  // private objects: untrusted ⇒ denied
  guest.arrival.rate_per_sec = 2.0;
  spec.tenants.push_back(guest);

  return spec;
}

void run(const bench::BenchArgs& args) {
  bench::header("Scenario — mixed-tenant steady state",
                "§I application mix run concurrently; acl.hpp isolation");

  bench::BenchArgs a = args;
  if (a.nodes < 4) a.nodes = 4;  // one node per tenant minimum

  const workload::WorkloadSpec spec = make_spec(a);
  vstore::HomeCloud hc{bench::scenario_config(a)};
  hc.bootstrap();
  hc.registry().add_profile(*spec.tenants[1].service);

  workload::Driver driver{hc, spec};
  // Surveillance is tenant 1 of 4: its partition (node i ≡ 1 mod 4) hosts
  // the detection service.
  hc.run([](vstore::HomeCloud& h, workload::Driver& d, const workload::WorkloadSpec& sp) -> Task<> {
    for (std::size_t i = 1; i < h.node_count(); i += 4) {
      h.node(i).deploy_service(*sp.tenants[1].service);
      (void)co_await h.node(i).publish_services();
    }
    const workload::Schedule schedule = workload::generate(sp);
    std::printf("schedule: %zu ops across %zu tenants, %zu objects\n\n",
                schedule.ops.size(), sp.tenants.size(), schedule.objects.size());
    co_await d.drive(schedule);
  }(hc, driver, spec));

  bench::print_tenant_table(driver.result(), hc.metrics());

  const workload::TenantStats& guest = driver.result().tenants.back();
  std::printf("\nguest (untrusted): %llu issued, %llu denied — every media read refused\n",
              static_cast<unsigned long long>(guest.issued_total()),
              static_cast<unsigned long long>(guest.denied));

  obs::BenchReport report("scenario_mixed_tenants", a.seed);
  report.meta("quick", a.quick ? "true" : "false");
  report.meta("nodes", std::to_string(hc.node_count()));
  report.meta("tenants", std::to_string(spec.tenants.size()));
  bench::emit_scenario(report, driver.result(), hc.metrics());

  std::printf("\nshape checks: guest denied == guest issued (trust isolation holds);\n");
  std::printf("iot store p50 well under media fetch p50 (small objects stay cheap).\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
