// Scenario: trace-driven replay of the modified-eDonkey workload (§V-B's
// evaluation trace), paced as an open-loop Poisson stream instead of the
// paper's back-to-back replay.
//
// Each trace client becomes a tenant; mp3 files carry the trace's private
// tag (untrusted VMs would be refused), everything stays on home storage
// (local-first placement, as in the §V-B runs), and every client grants
// every other read+write — the paper's cooperating-household sharing model.
// The artifact carries store and fetch tails per client.
#include <algorithm>

#include "bench/scenario_util.hpp"

namespace c4h {
namespace {

using sim::Task;

void run(const bench::BenchArgs& args) {
  bench::header("Scenario — eDonkey trace replay",
                "§V-B modified-eDonkey workload, open-loop paced");

  const int clients = std::min(args.nodes, 6);
  trace::TraceConfig tc;
  tc.clients = clients;
  tc.seed = args.seed;
  tc.file_count = args.quick ? 150 : 1300;
  tc.op_count = args.quick ? 500 : 2000;
  // §V-B restricts the dataset to the 10-25 MB "optimal" objects; the
  // default bucket mix's super-large video tail would swamp the LAN.
  tc.fixed_range = trace::BucketRange{10_MB, 25_MB};
  trace::TraceWorkload w = trace::generate(tc);

  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  for (int c = 0; c < clients; ++c) {
    workload::TenantSpec t;
    t.name = "client-" + std::to_string(c);
    t.principal = {t.name, vstore::TrustLevel::trusted};
    t.acl.allow("*", {vstore::Right::read, vstore::Right::write});
    t.object_count = 0;  // the trace supplies the catalog
    spec.tenants.push_back(t);
  }

  // ~17.5 MB mean object on a ~12 MB/s LAN sustains ≈0.7 op/s; pace right
  // at the knee so Poisson bursts queue (visible tails) but the backlog
  // keeps draining.
  const double rate = args.quick ? 0.8 : 0.7;
  const workload::Schedule schedule = workload::from_trace(w, clients, rate, args.seed);
  std::printf("trace: %zu files (%.1f MB), %zu ops (%zu store / %zu fetch), %d clients\n\n",
              w.files.size(), static_cast<double>(w.total_bytes()) / (1024.0 * 1024.0),
              schedule.ops.size(), schedule.count(workload::OpKind::store),
              schedule.count(workload::OpKind::fetch), clients);

  vstore::HomeCloud hc{bench::scenario_config(args)};
  hc.bootstrap();

  workload::Driver driver{hc, spec};
  hc.run([](workload::Driver& d, const workload::Schedule& s) -> Task<> {
    co_await d.drive(s);
  }(driver, schedule));

  bench::print_tenant_table(driver.result(), hc.metrics());

  obs::BenchReport report("scenario_edonkey_replay", args.seed);
  report.meta("quick", args.quick ? "true" : "false");
  report.meta("nodes", std::to_string(hc.node_count()));
  report.meta("clients", std::to_string(clients));
  report.meta("trace_files", std::to_string(w.files.size()));
  report.meta("trace_ops", std::to_string(schedule.ops.size()));
  bench::emit_scenario(report, driver.result(), hc.metrics());

  std::printf("\nshape checks: zero denied (all-pairs read/write grants); p999 ≫ p50\n");
  std::printf("(Poisson bursts queue multi-second transfers behind each other).\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
