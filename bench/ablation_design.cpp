// Ablation: learned vs static placement (ROADMAP item 4).
//
// Replays the item-3 scenario matrix — IoT fan-in, flash crowd, mixed
// tenants — plus an uplink-flap scenario, once per decision policy
// (performance / balanced / battery / learned), every run under background
// contention on the desktop. Static policies trust the monitored records
// published at bootstrap (stale: the contention starts afterwards); the
// learned PlacementEngine starts from the same cost model but corrects it
// online from observed per-phase times, and its WAN-aware store veto keeps
// uploads home while the uplink is degraded.
//
// The artifact (c4h-bench-v1) carries, per (scenario, policy) cell, the
// merged workload latency tails (p50/p99/p999) and ok/failed counts; for
// the learned runs it adds the engine's decision/switch/explore/veto
// counters, the cumulative regret, and a fixed-length regret time series.
// Headline acceptance (pinned by tests/test_scenario_golden.cpp): learned
// is within 5% of the best static policy's p99 on every steady scenario and
// strictly better than every static policy on the uplink-flap scenario.
#include <functional>
#include <string>
#include <vector>

#include "bench/scenario_util.hpp"

namespace c4h {
namespace {

using sim::Task;
using vstore::DecisionPolicy;

const char* policy_name(DecisionPolicy p) {
  switch (p) {
    case DecisionPolicy::performance: return "performance";
    case DecisionPolicy::balanced_utilization: return "balanced";
    case DecisionPolicy::battery_aware: return "battery";
    case DecisionPolicy::learned: return "learned";
  }
  return "?";
}

services::ServiceProfile aggregate_profile() {
  services::ServiceProfile p;
  p.name = "aggregate";
  p.id = 21;
  p.fixed_gigacycles = 0.02;
  p.gigacycles_per_mib = 0.5;
  p.output_ratio = 0.05;
  p.working_set_base = 8_MB;
  return p;
}

services::ServiceProfile detect_profile() {
  services::ServiceProfile p;
  p.name = "detect";
  p.id = 22;
  p.fixed_gigacycles = 0.05;
  p.gigacycles_per_mib = 1.2;
  p.output_ratio = 0.01;
  p.working_set_base = 24_MB;
  return p;
}

Duration scenario_duration(const bench::BenchArgs& args) {
  return args.quick ? seconds(24) : seconds(72);
}

// --- The scenario matrix (compressed item-3 shapes) -------------------------

workload::WorkloadSpec iot_fanin_spec(const bench::BenchArgs& args) {
  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = scenario_duration(args);
  spec.diurnal.enabled = true;
  spec.diurnal.period = seconds(30);
  spec.diurnal.amplitude = 0.6;

  workload::TenantSpec sensors;
  sensors.name = "sensors";
  sensors.principal = {"sensors", vstore::TrustLevel::trusted};
  sensors.acl.allow("dashboard", {vstore::Right::read, vstore::Right::execute});
  sensors.object_type = "json";
  sensors.mix = {1.0, 0.0, 0.0, 0.0};
  sensors.object_count = args.quick ? 32 : 120;
  sensors.size = {4_KB, 64_KB};
  sensors.zipf_s = 0.6;
  sensors.arrival.rate_per_sec = args.quick ? 8.0 : 20.0;
  spec.tenants.push_back(sensors);

  workload::TenantSpec dashboard;
  dashboard.name = "dashboard";
  dashboard.principal = {"dashboard", vstore::TrustLevel::trusted};
  dashboard.mix = {0.0, 0.6, 0.3, 0.1};
  dashboard.object_count = 4;
  dashboard.size = {16_KB, 64_KB};
  dashboard.fetch_from = {"sensors"};
  dashboard.service = aggregate_profile();
  dashboard.closed.clients = 2;
  dashboard.closed.mean_think = milliseconds(400);
  spec.tenants.push_back(dashboard);
  return spec;
}

workload::WorkloadSpec flash_crowd_spec(const bench::BenchArgs& args) {
  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = scenario_duration(args);
  workload::FlashCrowdSpec f;
  f.start = TimePoint{spec.duration * 2 / 5};
  f.duration = spec.duration / 5;
  f.multiplier = 6.0;
  spec.flash_crowds.push_back(f);

  workload::TenantSpec publisher;
  publisher.name = "publisher";
  publisher.principal = {"publisher", vstore::TrustLevel::trusted};
  publisher.acl.allow("crowd", {vstore::Right::read, vstore::Right::execute});
  publisher.mix = {1.0, 0.0, 0.0, 0.0};
  publisher.object_count = args.quick ? 16 : 48;
  publisher.size = {1_MB, 4_MB};
  publisher.arrival.rate_per_sec = 1.0;
  spec.tenants.push_back(publisher);

  workload::TenantSpec crowd;
  crowd.name = "crowd";
  crowd.principal = {"crowd", vstore::TrustLevel::trusted};
  crowd.mix = {0.0, 0.9, 0.1, 0.0};
  crowd.object_count = 4;
  crowd.size = {64_KB, 256_KB};
  crowd.fetch_from = {"publisher"};
  crowd.zipf_s = 1.1;
  crowd.service = aggregate_profile();
  crowd.arrival.rate_per_sec = args.quick ? 5.0 : 12.0;
  spec.tenants.push_back(crowd);
  return spec;
}

workload::WorkloadSpec mixed_tenants_spec(const bench::BenchArgs& args) {
  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = scenario_duration(args);
  spec.diurnal.enabled = true;
  spec.diurnal.period = seconds(40);
  spec.diurnal.amplitude = 0.4;

  workload::TenantSpec media;
  media.name = "media";
  media.principal = {"media", vstore::TrustLevel::trusted};
  media.object_type = "mp3";
  media.private_objects = true;
  media.store_policy = vstore::StoragePolicy::privacy();
  media.mix = {0.3, 0.7, 0.0, 0.0};
  media.object_count = args.quick ? 16 : 64;
  media.size = {2_MB, 8_MB};
  media.arrival.rate_per_sec = args.quick ? 3.0 : 6.0;
  spec.tenants.push_back(media);

  workload::TenantSpec surveillance;
  surveillance.name = "surveillance";
  surveillance.principal = {"surveillance", vstore::TrustLevel::trusted};
  surveillance.mix = {0.5, 0.0, 0.5, 0.0};
  surveillance.object_count = args.quick ? 16 : 48;
  surveillance.size = {256_KB, 1_MB};
  surveillance.service = detect_profile();
  surveillance.arrival.rate_per_sec = args.quick ? 2.5 : 5.0;
  spec.tenants.push_back(surveillance);

  workload::TenantSpec iot;
  iot.name = "iot";
  iot.principal = {"iot", vstore::TrustLevel::trusted};
  iot.object_type = "json";
  iot.mix = {0.9, 0.1, 0.0, 0.0};
  iot.object_count = args.quick ? 32 : 120;
  iot.size = {4_KB, 32_KB};
  iot.zipf_s = 0.6;
  iot.arrival.rate_per_sec = args.quick ? 8.0 : 20.0;
  spec.tenants.push_back(iot);
  return spec;
}

// Cloud-leaning uploads under a flapping uplink: the shape that separates
// learned (store-veto reacts to the observed rate) from every static policy
// (keeps paying the degraded WAN).
//
// The run is deliberately long relative to one flap: the learned policy pays
// the degraded uplink only until the WAN estimate collapses below the veto
// threshold (a handful of stores during the first flap), while the static
// policies pay it on every one of the ~29 cycles. With ~900 stores, that
// one-time learning cost sits below the p99 rank and the tail separation is
// structural, not a bucket accident.
constexpr Duration kFlapRunDuration = seconds(900);
constexpr Duration kFlapWarmup = seconds(20);
constexpr Duration kFlapDown = seconds(6);
constexpr Duration kFlapUp = seconds(24);
constexpr int kFlapCycles = 29;

workload::WorkloadSpec uplink_flap_spec(const bench::BenchArgs& args) {
  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = kFlapRunDuration;

  workload::TenantSpec uploader;
  uploader.name = "uploader";
  uploader.principal = {"uploader", vstore::TrustLevel::trusted};
  uploader.mix = {1.0, 0.0, 0.0, 0.0};
  uploader.object_count = args.quick ? 40 : 120;
  uploader.size = {512_KB, 1_MB};
  // Cloud-leaning static intent: everything reasonable ships to S3.
  vstore::StoragePolicy to_cloud;
  vstore::StoreRule ship;
  ship.max_size = 64_MB;
  ship.target = vstore::StoreTarget::remote_cloud;
  to_cloud.rules = {ship};
  to_cloud.fallback = vstore::StoreTarget::local;
  uploader.store_policy = to_cloud;
  uploader.arrival.rate_per_sec = 1.0;
  spec.tenants.push_back(uploader);
  return spec;
}

struct ScenarioDef {
  const char* name;
  bool flaps;
  std::function<workload::WorkloadSpec(const bench::BenchArgs&)> make;
};

const std::vector<ScenarioDef>& scenario_matrix() {
  static const std::vector<ScenarioDef> m = {
      {"iot_fanin", false, iot_fanin_spec},
      {"flash_crowd", false, flash_crowd_spec},
      {"mixed_tenants", false, mixed_tenants_spec},
      {"uplink_flap", true, uplink_flap_spec},
  };
  return m;
}

// --- One (scenario, policy) cell --------------------------------------------

struct CellResult {
  obs::LogHistogram latency;  // every tenant × op, merged (ns)
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t decisions = 0;
  std::uint64_t switches = 0;
  std::uint64_t explorations = 0;
  std::uint64_t store_vetoes = 0;
  double regret_s = 0.0;
  std::vector<double> regret_series_s;  // sampled every 2s of the run window
};

// Degrade/restore cycles on the WAN link; identical for every policy so the
// comparison is apples-to-apples.
Task<> flap_uplink(vstore::HomeCloud& h) {
  co_await h.sim().delay(kFlapWarmup);
  for (int i = 0; i < kFlapCycles; ++i) {
    h.set_wan_rates(mib_per_sec(0.05), mib_per_sec(0.10));
    co_await h.sim().delay(kFlapDown);
    h.set_wan_rates(h.config().wan_up, h.config().wan_down);
    co_await h.sim().delay(kFlapUp);
  }
}

CellResult run_cell(const ScenarioDef& scn, DecisionPolicy policy, const bench::BenchArgs& args) {
  workload::WorkloadSpec spec = scn.make(args);
  for (auto& t : spec.tenants) t.decision = policy;

  vstore::HomeCloudConfig cfg = bench::scenario_config(args);
  // A tight upload budget makes the store veto sensitive to uplink
  // degradation at the sub-4MB object sizes the matrix uses.
  cfg.placement.upload_budget = seconds(2);
  // Prior-guided cold start: the blended WAN-repriced prior already ranks
  // cold arms, so skipping the forced warm-up keeps exploration below the
  // p99 rank at quick-mode op counts.
  cfg.placement.min_pulls_per_arm = 0;
  cfg.placement.epsilon = 0.02;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();
  for (const auto& t : spec.tenants) {
    if (t.service.has_value()) hc.registry().add_profile(*t.service);
  }

  CellResult cell;
  constexpr int kRegretSamples = 12;  // fixed-length series, any run duration
  workload::Driver driver{hc, spec};
  hc.run([](vstore::HomeCloud& h, workload::Driver& d, const workload::WorkloadSpec& sp,
            const ScenarioDef& s, DecisionPolicy pol, CellResult& out,
            int wanted) -> Task<> {
    // Services live on the odd nodes, so the decision layer always has a
    // real site choice to make.
    for (const auto& t : sp.tenants) {
      if (!t.service.has_value()) continue;
      for (std::size_t i = 1; i < h.node_count(); i += 2) {
        h.node(i).deploy_service(*t.service);
      }
    }
    for (std::size_t i = 1; i < h.node_count(); i += 2) {
      (void)co_await h.node(i).publish_services();
    }
    // Contention: half the desktop's cores stay busy for the whole run. The
    // monitored records were published at bootstrap, so every static policy
    // keeps trusting an idle desktop.
    const double busy_gigacycles = to_seconds(sp.duration) * 2.3 * 2 * 1.1;
    h.sim().spawn([](vstore::HomeCloud& hh, double gc) -> Task<> {
      co_await hh.desktop().host().execute(hh.desktop().app_domain(), gc, 2);
    }(h, busy_gigacycles));
    if (s.flaps) h.sim().spawn(flap_uplink(h));
    if (pol == DecisionPolicy::learned) {
      h.sim().spawn([](vstore::HomeCloud& hh, CellResult& o, int n, Duration period) -> Task<> {
        for (int i = 0; i < n; ++i) {
          co_await hh.sim().delay(period);
          o.regret_series_s.push_back(hh.placement_engine().regret_seconds());
        }
      }(h, out, wanted, sp.duration / wanted));
    }
    co_await d.drive(workload::generate(sp));
  }(hc, driver, spec, scn, policy, cell, kRegretSamples));

  const obs::Snapshot snap = hc.metrics().snapshot();
  for (const auto& [name, h] : snap.histograms) {
    if (name.starts_with("c4h.workload.") && name.find(".latency_ns{") != std::string::npos) {
      cell.latency.merge(h);
    }
  }
  for (const workload::TenantStats& t : driver.result().tenants) {
    cell.ok += t.ok_total();
    cell.failed += t.failed;
  }
  const vstore::PlacementEngine& eng = hc.placement_engine();
  cell.decisions = eng.decisions();
  cell.switches = eng.switches();
  cell.explorations = eng.explorations();
  cell.store_vetoes = eng.store_vetoes();
  cell.regret_s = eng.regret_seconds();
  // The run can drain past the sampling window; pad to a fixed-length series
  // with the final value so every artifact has the same row set.
  while (static_cast<int>(cell.regret_series_s.size()) < kRegretSamples) {
    cell.regret_series_s.push_back(cell.regret_s);
  }
  return cell;
}

void emit_cell(obs::BenchReport& report, const std::string& scenario, DecisionPolicy policy,
               const CellResult& cell) {
  const std::string label = scenario + "/" + policy_name(policy);
  obs::add_latency_tails(report, label, "ablation.latency", cell.latency);
  report.add(label, "workload.ok", static_cast<double>(cell.ok), "count");
  report.add(label, "workload.failed", static_cast<double>(cell.failed), "count");
  if (policy != DecisionPolicy::learned) return;
  report.add(label, "placement.decisions", static_cast<double>(cell.decisions), "count");
  report.add(label, "placement.switches", static_cast<double>(cell.switches), "count");
  report.add(label, "placement.explorations", static_cast<double>(cell.explorations), "count");
  report.add(label, "placement.store_vetoes", static_cast<double>(cell.store_vetoes), "count");
  report.add(label, "placement.regret", cell.regret_s * 1e3, "ms");
  for (std::size_t i = 0; i < cell.regret_series_s.size(); ++i) {
    report.add(label + "/t=" + std::to_string(i + 1) + "of12", "placement.regret",
               cell.regret_series_s[i] * 1e3, "ms");
  }
}

void run(const bench::BenchArgs& args) {
  bench::header("Ablation — learned vs static placement across the scenario matrix",
                "ROADMAP item 4; §III-B/§VII learning-based adaptation");

  const std::vector<DecisionPolicy> policies = {
      DecisionPolicy::performance, DecisionPolicy::balanced_utilization,
      DecisionPolicy::battery_aware, DecisionPolicy::learned};

  obs::BenchReport report("ablation_design", args.seed);
  report.meta("quick", args.quick ? "true" : "false");
  report.meta("nodes", std::to_string(args.nodes));
  report.meta("scenarios", "iot_fanin,flash_crowd,mixed_tenants,uplink_flap");
  report.meta("policies", "performance,balanced,battery,learned");

  for (const ScenarioDef& scn : scenario_matrix()) {
    std::printf("\n--- scenario: %s%s ---\n", scn.name, scn.flaps ? " (uplink flaps)" : "");
    std::printf("%-12s | %8s %8s | %9s %9s %9s | %s\n", "policy", "ok", "failed", "p50(ms)",
                "p99(ms)", "p999(ms)", "engine");
    bench::row_line();
    for (const DecisionPolicy policy : policies) {
      const CellResult cell = run_cell(scn, policy, args);
      const double ms = 1e-6;
      std::string engine_col;
      if (policy == DecisionPolicy::learned) {
        engine_col = "switches=" + std::to_string(cell.switches) +
                     " explore=" + std::to_string(cell.explorations) +
                     " vetoes=" + std::to_string(cell.store_vetoes) +
                     " regret=" + std::to_string(cell.regret_s) + "s";
      }
      std::printf("%-12s | %8llu %8llu | %9.1f %9.1f %9.1f | %s\n", policy_name(policy),
                  static_cast<unsigned long long>(cell.ok),
                  static_cast<unsigned long long>(cell.failed),
                  static_cast<double>(cell.latency.quantile(50.0)) * ms,
                  static_cast<double>(cell.latency.quantile(99.0)) * ms,
                  static_cast<double>(cell.latency.quantile(99.9)) * ms, engine_col.c_str());
      emit_cell(report, scn.name, policy, cell);
    }
  }

  bench::emit(report);
  std::printf("\nacceptance: learned p99 within 5%% of the best static policy on every\n");
  std::printf("steady scenario, strictly better on uplink_flap (pinned by the golden test).\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
