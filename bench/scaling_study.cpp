// Scaling study — §VII future work (iii): "understand how to scale to
// larger numbers of @home and then in the cloud participants".
//
// Sweeps the overlay size from the paper's 6-node home to office/hospital
// scale and reports routing hops, metadata lookup latency, join cost, and
// maintenance traffic — the quantities that decide whether the DHT design
// holds up beyond one living room. Also quantifies the striped-transfer
// extension (future work: "better object transfer protocols").
#include "bench/bench_util.hpp"
#include "src/sim/sync.hpp"

namespace c4h {
namespace {

using sim::Task;

void overlay_scaling(obs::BenchReport& report) {
  bench::header("Scaling — overlay size vs routing cost", "§VII future work (iii)");
  std::printf("%8s | %10s %10s | %14s | %16s\n", "nodes", "avg hops", "max hops",
              "lookup (ms)", "join msgs/node");
  bench::row_line();

  for (const int n : {6, 12, 24, 48, 96, 192}) {
    vstore::HomeCloudConfig cfg;
    cfg.netbooks = n;
    cfg.with_desktop = false;
    cfg.start_monitors = false;
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();

    Accumulator hops;
    Samples lookup_ms;
    hc.run([&](vstore::HomeCloud& h) -> Task<> {
      // Seed some metadata, then measure lookups from random origins.
      Rng rng{static_cast<std::uint64_t>(n)};
      for (int i = 0; i < 40; ++i) {
        const Key k = Key::from_name("scale/" + std::to_string(i));
        (void)co_await h.kv().put(h.node(rng.below(h.node_count())).chimera(), k,
                                  Buffer(120, 1));
      }
      for (int i = 0; i < 40; ++i) {
        const Key k = Key::from_name("scale/" + std::to_string(i));
        auto& origin = h.node(rng.below(h.node_count()));
        auto routed = co_await h.overlay().route(origin.chimera(), k);
        if (routed.ok()) hops.add(routed->hops);
        const auto t0 = h.sim().now();
        (void)co_await h.kv().get(origin.chimera(), k);
        lookup_ms.add(to_milliseconds(h.sim().now() - t0));
      }
    }(hc));

    const double join_msgs = static_cast<double>(hc.overlay().stats().join_messages) / n;
    std::printf("%8d | %10.2f %10.0f | %14.2f | %16.1f\n", n, hops.mean(), hops.max(),
                lookup_ms.mean(), join_msgs);

    const std::string label = std::to_string(n) + "nodes";
    report.add(label, "overlay.hops.mean", hops.mean(), "hops");
    report.add(label, "overlay.hops.max", hops.max(), "hops");
    report.add(label, "overlay.lookup.mean", lookup_ms.mean(), "ms");
    report.add(label, "overlay.join_msgs_per_node", join_msgs, "count");
  }
  std::printf("\nshape checks: hop count grows slowly (prefix routing), lookup cost\n");
  std::printf("stays in the milliseconds; join traffic per node grows with density\n");
  std::printf("(the full-membership announcements the paper flags as future work).\n");
}

void striped_transfers(obs::BenchReport& report) {
  bench::header("Scaling — striped cloud transfers", "§VII 'better object transfer protocols'");
  std::printf("%8s | %12s %12s %12s | %s\n", "object", "1 stream", "2 streams", "4 streams",
              "speedup(4)");
  bench::row_line();

  for (const Bytes size : {8_MB, 20_MB, 60_MB}) {
    double times[3] = {0, 0, 0};
    const int streams[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      vstore::HomeCloudConfig cfg;
      cfg.start_monitors = false;
      cfg.wan_rate_jitter = 0.0;
      cfg.wan_latency_jitter = 0.0;
      // Striping shows its value when per-flow caps (window / slow start /
      // policing) bind below the link: give the uplink headroom.
      cfg.wan_up = mib_per_sec(4.0);
      vstore::HomeCloud hc{cfg};
      hc.bootstrap();

      // Per-flow cap ~1.3 MiB/s: window-limited below the 4 MiB/s link.
      net::TcpProfile p = cfg.transport.profile();
      p.window_cap = Bytes{81920};
      p.rtt = milliseconds(60);

      hc.run([&, size, i](vstore::HomeCloud& h) -> Task<> {
        const auto t0 = h.sim().now();
        co_await h.network().transfer_striped(h.node(0).chimera().net_node(),
                                              h.cloud_endpoint(), size, p, streams[i]);
        times[i] = to_seconds(h.sim().now() - t0);
      }(hc));
    }
    std::printf("%6.0fMB | %12.1f %12.1f %12.1f | %9.2fx\n", to_mib(size), times[0], times[1],
                times[2], times[0] / times[2]);

    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "striped.1stream", times[0], "s");
    report.add(label, "striped.2streams", times[1], "s");
    report.add(label, "striped.4streams", times[2], "s");
  }
  std::printf("\nshape checks: striping approaches the link rate as streams x window\n");
  std::printf("exceeds it; gains saturate once the access link binds.\n");
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::obs::BenchReport report("scaling_study", 42);
  c4h::overlay_scaling(report);
  c4h::striped_transfers(report);
  c4h::bench::emit(report);
  return 0;
}
