// Scaling study — §VII future work (iii): "understand how to scale to
// larger numbers of @home and then in the cloud participants".
//
// Sweeps the overlay size from the paper's 6-node home to office/hospital
// scale and reports routing hops, metadata lookup latency, join cost, and
// maintenance traffic — the quantities that decide whether the DHT design
// holds up beyond one living room. Also quantifies the striped-transfer
// extension (future work: "better object transfer protocols").
#include <algorithm>
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/sim/sync.hpp"

namespace c4h {
namespace {

using sim::Task;

void overlay_scaling(obs::BenchReport& report, bool quick) {
  bench::header("Scaling — overlay size vs routing cost", "§VII future work (iii)");
  std::printf("%8s | %10s %10s | %14s | %16s\n", "nodes", "avg hops", "max hops",
              "lookup (ms)", "join msgs/node");
  bench::row_line();

  std::vector<int> sweep{6, 12, 24, 48, 96, 192};
  if (quick) sweep = {6, 12, 24, 48};
  for (const int n : sweep) {
    vstore::HomeCloudConfig cfg;
    cfg.netbooks = n;
    cfg.with_desktop = false;
    cfg.start_monitors = false;
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();

    Accumulator hops;
    Samples lookup_ms;
    hc.run([&](vstore::HomeCloud& h) -> Task<> {
      // Seed some metadata, then measure lookups from random origins.
      Rng rng{static_cast<std::uint64_t>(n)};
      for (int i = 0; i < 40; ++i) {
        const Key k = Key::from_name("scale/" + std::to_string(i));
        (void)co_await h.kv().put(h.node(rng.below(h.node_count())).chimera(), k,
                                  Buffer(120, 1));
      }
      for (int i = 0; i < 40; ++i) {
        const Key k = Key::from_name("scale/" + std::to_string(i));
        auto& origin = h.node(rng.below(h.node_count()));
        auto routed = co_await h.overlay().route(origin.chimera(), k);
        if (routed.ok()) hops.add(routed->hops);
        const auto t0 = h.sim().now();
        (void)co_await h.kv().get(origin.chimera(), k);
        lookup_ms.add(to_milliseconds(h.sim().now() - t0));
      }
    }(hc));

    const double join_msgs = static_cast<double>(hc.overlay().stats().join_messages) / n;
    std::printf("%8d | %10.2f %10.0f | %14.2f | %16.1f\n", n, hops.mean(), hops.max(),
                lookup_ms.mean(), join_msgs);

    const std::string label = std::to_string(n) + "nodes";
    report.add(label, "overlay.hops.mean", hops.mean(), "hops");
    report.add(label, "overlay.hops.max", hops.max(), "hops");
    report.add(label, "overlay.lookup.mean", lookup_ms.mean(), "ms");
    report.add(label, "overlay.join_msgs_per_node", join_msgs, "count");
  }
  std::printf("\nshape checks: hop count grows slowly (prefix routing), lookup cost\n");
  std::printf("stays in the milliseconds; join traffic per node grows with density\n");
  std::printf("(the full-membership announcements the paper flags as future work).\n");
}

void striped_transfers(obs::BenchReport& report, bool quick) {
  bench::header("Scaling — striped cloud transfers", "§VII 'better object transfer protocols'");
  std::printf("%8s | %12s %12s %12s | %s\n", "object", "1 stream", "2 streams", "4 streams",
              "speedup(4)");
  bench::row_line();

  std::vector<Bytes> objects{8_MB, 20_MB, 60_MB};
  if (quick) objects = {8_MB, 20_MB};
  for (const Bytes size : objects) {
    double times[3] = {0, 0, 0};
    const int streams[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      vstore::HomeCloudConfig cfg;
      cfg.start_monitors = false;
      cfg.wan_rate_jitter = 0.0;
      cfg.wan_latency_jitter = 0.0;
      // Striping shows its value when per-flow caps (window / slow start /
      // policing) bind below the link: give the uplink headroom.
      cfg.wan_up = mib_per_sec(4.0);
      vstore::HomeCloud hc{cfg};
      hc.bootstrap();

      // Per-flow cap ~1.3 MiB/s: window-limited below the 4 MiB/s link.
      net::TcpProfile p = cfg.transport.profile();
      p.window_cap = Bytes{81920};
      p.rtt = milliseconds(60);

      hc.run([&, size, i](vstore::HomeCloud& h) -> Task<> {
        const auto t0 = h.sim().now();
        co_await h.network().transfer_striped(h.node(0).chimera().net_node(),
                                              h.cloud_endpoint(), size, p, streams[i]);
        times[i] = to_seconds(h.sim().now() - t0);
      }(hc));
    }
    std::printf("%6.0fMB | %12.1f %12.1f %12.1f | %9.2fx\n", to_mib(size), times[0], times[1],
                times[2], times[0] / times[2]);

    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "striped.1stream", times[0], "s");
    report.add(label, "striped.2streams", times[1], "s");
    report.add(label, "striped.4streams", times[2], "s");
  }
  std::printf("\nshape checks: striping approaches the link rate as streams x window\n");
  std::printf("exceeds it; gains saturate once the access link binds.\n");
}

// Core-engine scaling — ROADMAP item 1: drives the raw Simulation/Network
// fast path (slab event arena + incremental fair-share) far past overlay
// scale, where the full HomeCloud stack (O(n²) overlay joins) cannot go.
//
// Topology is a two-level star: `kFan` leafs per edge switch, switches on a
// metro gateway, gateway on the cloud. Every leaf makes one intra-switch
// transfer to its ring neighbor (small, disjoint fair-share components) and
// every 16th leaf also pushes an object up the shared cloud path (one wide
// component over the gateway trunk); starts are staggered so a bounded set
// of flows is in flight at any instant, like a real evening of @home traffic.
//
// The flows/events/bytes/makespan series are simulated and byte-stable for
// a seed; the wall/rss columns are host-side costs ("-wall" units, advisory
// in tools/bench-compare). Peak RSS is cumulative per process, which is why
// the sweep runs sizes in ascending order.
void core_engine_scaling(obs::BenchReport& report, const bench::BenchArgs& args) {
  bench::header("Scaling — simulator core, raw engine to 10k nodes",
                "ROADMAP item 1 (engine fast path)");
  std::printf("net model: %s   (wall/rss are host-side, advisory)\n",
              bench::net_model_name(args.net_model));
  std::printf("%8s | %9s %10s | %12s | %10s %9s\n", "nodes", "flows", "events", "makespan(s)",
              "wall (ms)", "rss (MB)");
  bench::row_line();

  std::vector<int> sweep{48, 192, 1000, 10000};
  if (args.quick) sweep = {48, 192, 1000};

  for (const int n : sweep) {
    sim::Simulation sim{args.seed + static_cast<std::uint64_t>(n)};
    net::Topology topo;
    constexpr int kFan = 100;
    const auto cloud = topo.add_node();
    const auto gateway = topo.add_node();
    topo.add_duplex(gateway, cloud, mib_per_sec(400.0), milliseconds(18));
    std::vector<net::NetNodeId> switches((static_cast<std::size_t>(n) + kFan - 1) / kFan);
    for (auto& s : switches) {
      s = topo.add_node();
      topo.add_duplex(s, gateway, mib_per_sec(120.0), milliseconds(1));
    }
    std::vector<net::NetNodeId> leafs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      leafs[static_cast<std::size_t>(i)] = topo.add_node();
      topo.add_duplex(leafs[static_cast<std::size_t>(i)], switches[static_cast<std::size_t>(i / kFan)],
                      mib_per_sec(11.9), microseconds(200));
    }
    net::Network net{sim, std::move(topo)};
    net.set_model(args.net_model);

    bench::WallTimer wt;
    const auto staggered = [](sim::Simulation& sm, net::Network& nw, net::NetNodeId a,
                              net::NetNodeId b, Bytes sz, Duration start) -> Task<> {
      co_await sm.delay(start);
      co_await nw.transfer(a, b, sz);
    };
    for (int i = 0; i < n; ++i) {
      const int group = i / kFan;
      const int group_size = std::min(kFan, n - group * kFan);
      const int peer = group * kFan + (i % kFan + 1) % group_size;
      const Bytes local = 96_KB + static_cast<Bytes>(i % 7) * 32_KB;
      sim.spawn(staggered(sim, net, leafs[static_cast<std::size_t>(i)],
                          leafs[static_cast<std::size_t>(peer)], local, microseconds(400) * i));
      if (i % 16 == 0) {
        const Bytes up = 256_KB + static_cast<Bytes>(i % 5) * 64_KB;
        sim.spawn(staggered(sim, net, leafs[static_cast<std::size_t>(i)], cloud, up,
                            microseconds(400) * i + milliseconds(2)));
      }
    }
    sim.run();

    const double wall = wt.elapsed_ms();
    const double rss = bench::peak_rss_mb();
    const auto flows = static_cast<double>(net.stats().flows_completed);
    const auto events = static_cast<double>(sim.events_executed());
    const double makespan_s = to_seconds(sim.now());
    std::printf("%8d | %9.0f %10.0f | %12.2f | %10.1f %9.1f\n", n, flows, events, makespan_s,
                wall, rss);

    const std::string label = std::to_string(n) + "nodes";
    report.add(label, "core.flows", flows, "count");
    report.add(label, "core.events", events, "count");
    report.add(label, "core.bytes", net.stats().bytes_delivered, "bytes");
    report.add(label, "core.makespan", std::round(to_milliseconds(sim.now())), "ms");
    report.add(label, "core.wall", wall, "ms-wall");
    report.add(label, "core.rss", rss, "mb-wall");
  }
  std::printf("\nshape checks: events grow ~linearly in nodes while wall-clock per\n");
  std::printf("event stays flat (slab arena + component-local fair-share); memory\n");
  std::printf("is dominated by per-leaf topology state, not the event queue.\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::bench::BenchArgs defaults;
  // The core sweep exists to exercise the fast path; the overlay/striped
  // sections never admit flows through `args.net_model`, so this default
  // does not perturb their (golden) series.
  defaults.net_model = c4h::net::NetModel::incremental;
  const auto args = c4h::bench::parse_args(argc, argv, defaults);
  c4h::obs::BenchReport report("scaling_study", args.seed);
  c4h::overlay_scaling(report, args.quick);
  c4h::striped_transfers(report, args.quick);
  c4h::core_engine_scaling(report, args);
  c4h::bench::emit(report);
  return 0;
}
