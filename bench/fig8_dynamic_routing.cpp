// Figure 8: feasibility of dynamic request routing — the media-conversion
// service (.avi → .mp4 with the CPU-intensive x264 library).
//
// A low-end Atom device owns a video; another mobile device requests it in
// mobile format. Either (i) the conversion runs at the owner (T_own), or
// (ii) VStore++'s dynamic resource discovery finds that a third desktop
// node is most suitable (T_opt). Paper's finding: T_opt wins substantially
// despite the extra data movement and the cost of running the VStore++
// decision algorithm.
#include "bench/bench_util.hpp"

namespace c4h {
namespace {

using sim::Task;
using vstore::ExecSite;

void run() {
  bench::header("Fig 8 — Feasibility of dynamic request routing (x264 conversion)",
                "ICDCS'11 Cloud4Home, Figure 8");
  std::printf("%8s | %12s %12s | %10s | %s\n", "video", "T_own (s)", "T_opt (s)", "speedup",
              "decision cost incl. in T_opt");
  bench::row_line();

  obs::BenchReport report("fig8_dynamic_routing", 42);

  for (const Bytes size : {10_MB, 20_MB, 40_MB, 80_MB}) {
    vstore::HomeCloudConfig cfg;
    cfg.netbooks = 3;
    cfg.start_monitors = false;
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();

    auto x264 = services::x264_profile();
    hc.registry().add_profile(x264);
    // The service is deployed on the owner netbook and on the desktop; the
    // decision engine must discover that the desktop is better.
    hc.node(1).deploy_service(x264);
    hc.desktop().deploy_service(x264);

    double t_own = 0, t_opt = 0, t_dec = 0;
    std::string picked;
    hc.run([&, size](vstore::HomeCloud& h) -> Task<> {
      (void)co_await h.node(1).publish_services();
      (void)co_await h.desktop().publish_services();
      const auto xp = *h.registry().profile("x264-transcode", 3);

      // The Atom netbook node(1) owns the video.
      auto s = co_await bench::put_object(h.node(1), bench::make_object("film.avi", size, "avi"));
      if (!s.ok()) co_return;

      // A different mobile device, node(0), requests the conversion.
      auto& mobile = h.node(0);
      const ExecSite at_owner{ExecSite::Kind::home_node, h.node(1).chimera().id()};

      auto own = co_await mobile.fetch_process("film.avi", xp, vstore::DecisionPolicy::performance);
      // fetch_process may already route optimally; force the owner case:
      auto forced = co_await mobile.process("film.avi", xp,
                                            vstore::DecisionPolicy::performance, at_owner);
      if (forced.ok()) t_own = to_seconds(forced->total);
      if (own.ok()) {
        t_opt = to_seconds(own->total);
        t_dec = to_seconds(own->decision);
        picked = own->site.kind == ExecSite::Kind::ec2
                     ? "ec2"
                     : (own->site.node == h.desktop().chimera().id() ? "desktop" : "other");
      }
    }(hc));

    std::printf("%6.0fMB | %12.1f %12.1f | %9.2fx | %.3f s → %s\n", to_mib(size), t_own, t_opt,
                t_own / t_opt, t_dec, picked.c_str());

    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "route.t_own", t_own, "s");
    report.add(label, "route.t_opt", t_opt, "s");
    report.add(label, "route.speedup", t_opt > 0 ? t_own / t_opt : 0.0, "x");
    report.add(label, "route.decision", t_dec, "s");
    report.meta("picked_" + label, picked);
  }

  std::printf("\nshape checks: T_opt < T_own at every size; discovery picks the desktop;\n");
  std::printf("the gain grows with video size while the decision cost stays constant.\n");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
