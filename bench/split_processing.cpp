// §V-B's split-processing experiment: an image sequence compared against an
// image dataset with face recognition, under three deployments:
//   (i)  home only    — 60 MB gallery stored across home devices;
//   (ii) EC2 only     — 190 MB gallery (home's 60 MB + public images);
//   (iii) split       — the sequence divided between home and cloud,
//                        "roughly proportional to the amount of home vs
//                        remote resources".
// Paper's measurements: 162 s / 127 s / 98 s — joint usage wins.
#include <cmath>

#include "bench/bench_util.hpp"
#include "src/sim/sync.hpp"

namespace c4h {
namespace {

using sim::Task;
using vstore::ExecSite;

constexpr int kImages = 20;
constexpr Bytes kImageSize = 1536_KB;

// Gallery-scan recognition: work grows with the gallery searched, but
// sublinearly (indexing makes the match step ~sqrt of gallery size).
services::ServiceProfile gallery_frec(Bytes gallery) {
  auto p = services::face_recognize_profile(gallery);
  p.gigacycles_per_mib = 5.0 * std::sqrt(to_mib(gallery) / 60.0);
  return p;
}

vstore::HomeCloud* make_cloud() {
  vstore::HomeCloudConfig cfg;
  cfg.start_monitors = false;
  cfg.wan_rate_jitter = 0.1;
  auto* hc = new vstore::HomeCloud{cfg};
  hc->bootstrap();
  return hc;
}

Task<> store_sequence(vstore::HomeCloud& h) {
  for (int i = 0; i < kImages; ++i) {
    auto& owner = h.node(static_cast<std::size_t>(i) % h.node_count());
    (void)co_await bench::put_object(
        owner, bench::make_object("seq/" + std::to_string(i) + ".jpg", kImageSize));
  }
}

// Processes images [lo, hi) sequentially from the camera node. With
// at_owner set, each image runs at the node that stores it (the paper's
// home scenario: the dataset and its processing stay distributed); with a
// site given, execution is pinned there (the EC2 scenario).
Task<> process_range(vstore::HomeCloud& h, int lo, int hi, std::optional<ExecSite> site,
                     bool at_owner, const services::ServiceProfile prof) {
  for (int i = lo; i < hi; ++i) {
    const std::string name = "seq/" + std::to_string(i) + ".jpg";
    std::optional<ExecSite> target = site;
    if (at_owner) {
      auto& owner = h.node(static_cast<std::size_t>(i) % h.node_count());
      target = ExecSite{ExecSite::Kind::home_node, owner.chimera().id()};
    }
    (void)co_await h.node(0).process(name, prof, vstore::DecisionPolicy::performance, target);
  }
}

void run() {
  bench::header("§V-B — Joint home + remote processing of an image sequence",
                "ICDCS'11 Cloud4Home, §V-B (162 s / 127 s / 98 s)");

  const auto frec_home = gallery_frec(60_MB);
  auto frec_cloud = gallery_frec(190_MB);
  // The cloud deployment parallelizes the recognition across the XL
  // instance's five CPUs (§II: "computational resources for parallel
  // execution of face detection and recognition algorithms").
  frec_cloud.parallelism = 5;

  double t_home = 0, t_cloud = 0, t_split = 0;

  // (i) Home only: each image processed in the home cloud (decision engine
  // restricted to home by not deploying the service in the cloud).
  {
    std::unique_ptr<vstore::HomeCloud> hc{make_cloud()};
    hc->registry().add_profile(frec_home);
    for (std::size_t i = 0; i < hc->node_count(); ++i) hc->node(i).deploy_service(frec_home);
    hc->run([&](vstore::HomeCloud& h) -> Task<> {
      for (std::size_t i = 0; i < h.node_count(); ++i) {
        (void)co_await h.node(i).publish_services();
      }
      co_await store_sequence(h);
      const auto t0 = h.sim().now();
      co_await process_range(h, 0, kImages, std::nullopt, /*at_owner=*/true, frec_home);
      t_home = to_seconds(h.sim().now() - t0);
    }(*hc));
  }

  // (ii) EC2 only: every image crosses the WAN; the instance searches the
  // larger 190 MB gallery.
  {
    std::unique_ptr<vstore::HomeCloud> hc{make_cloud()};
    hc->registry().add_profile(frec_cloud);
    hc->deploy_service_in_cloud(frec_cloud);
    hc->run([&](vstore::HomeCloud& h) -> Task<> {
      co_await store_sequence(h);
      const auto t0 = h.sim().now();
      co_await process_range(h, 0, kImages, ExecSite{ExecSite::Kind::ec2, {}},
                             /*at_owner=*/false, frec_cloud);
      t_cloud = to_seconds(h.sim().now() - t0);
    }(*hc));
  }

  // (iii) Split: the sequence divided between the pools, both run
  // concurrently; wall time is the slower part.
  {
    std::unique_ptr<vstore::HomeCloud> hc{make_cloud()};
    hc->registry().add_profile(frec_home);
    hc->registry().add_profile(frec_cloud);
    for (std::size_t i = 0; i < hc->node_count(); ++i) hc->node(i).deploy_service(frec_home);
    hc->deploy_service_in_cloud(frec_cloud);
    hc->run([&](vstore::HomeCloud& h) -> Task<> {
      for (std::size_t i = 0; i < h.node_count(); ++i) {
        (void)co_await h.node(i).publish_services();
      }
      co_await store_sequence(h);
      // "a simplistic policy which splits the image sequence roughly
      // proportional to the amount of home vs remote resources".
      const int cloud_share = kImages * 40 / 100;
      const auto t0 = h.sim().now();
      std::vector<Task<>> parts;
      parts.push_back(process_range(h, 0, kImages - cloud_share, std::nullopt,
                                    /*at_owner=*/true, frec_home));
      parts.push_back(process_range(h, kImages - cloud_share, kImages,
                                    ExecSite{ExecSite::Kind::ec2, {}},
                                    /*at_owner=*/false, frec_cloud));
      co_await sim::when_all(h.sim(), std::move(parts));
      t_split = to_seconds(h.sim().now() - t0);
    }(*hc));
  }

  std::printf("%22s | %10s | %s\n", "scenario", "time (s)", "paper (s)");
  bench::row_line();
  std::printf("%22s | %10.1f | %8d\n", "(i) home only", t_home, 162);
  std::printf("%22s | %10.1f | %8d\n", "(ii) EC2 only", t_cloud, 127);
  std::printf("%22s | %10.1f | %8d\n", "(iii) split home+EC2", t_split, 98);
  std::printf("\nshape check: home > EC2 > split — joint usage of home and remote\n");
  std::printf("resources beats either alone.\n");

  obs::BenchReport report("split_processing", 42);
  report.meta("images", std::to_string(kImages));
  report.add("home_only", "sequence.time", t_home, "s");
  report.add("ec2_only", "sequence.time", t_cloud, "s");
  report.add("split", "sequence.time", t_split, "s");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
