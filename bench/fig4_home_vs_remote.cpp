// Figure 4: latency and latency variation of store/fetch to the home cloud
// vs the remote public cloud, across object sizes.
//
// Paper's finding: remote-cloud latency and especially its *variability*
// are far higher than home-cloud latency, growing with object size; store
// (upload) is worse than fetch (download) because of the asymmetric uplink.
#include "bench/bench_util.hpp"

namespace c4h {
namespace {

using bench::make_object;
using bench::put_object;
using sim::Task;

constexpr int kReps = 8;

struct Cell {
  Samples store_s;
  Samples fetch_s;
};

void run() {
  const std::vector<Bytes> sizes{1_MB, 2_MB, 5_MB, 10_MB, 20_MB, 50_MB, 100_MB};

  bench::header("Fig 4 — Home vs remote cloud latency (store & fetch)",
                "ICDCS'11 Cloud4Home, Figure 4");

  std::printf("%10s | %14s %14s | %14s %14s\n", "size", "home store(s)", "home fetch(s)",
              "cloud store(s)", "cloud fetch(s)");
  std::printf("%10s | %14s %14s | %14s %14s\n", "", "mean±sd", "mean±sd", "mean±sd", "mean±sd");
  bench::row_line();

  obs::BenchReport report("fig4_home_vs_remote", 1000);
  report.meta("reps", std::to_string(kReps));

  for (const Bytes size : sizes) {
    Cell home, remote;
    for (int rep = 0; rep < kReps; ++rep) {
      // Fresh cloud per rep so WAN jitter draws differ; the home dataset is
      // "distributed across all nodes", so stores originate at one node and
      // fetches happen from another.
      vstore::HomeCloudConfig cfg;
      cfg.seed = 1000 + static_cast<std::uint64_t>(rep);
      cfg.start_monitors = false;
      vstore::HomeCloud hc{cfg};
      hc.bootstrap();

      hc.run([](vstore::HomeCloud& h, Bytes sz, int rep_i, Cell& hm, Cell& rm) -> Task<> {
        auto& a = h.node(static_cast<std::size_t>(rep_i) % h.node_count());
        auto& b = h.node((static_cast<std::size_t>(rep_i) + 2) % h.node_count());

        // Home store+fetch.
        {
          const auto t0 = h.sim().now();
          auto s = co_await bench::put_object(a, bench::make_object("h.bin", sz));
          if (s.ok()) hm.store_s.add(to_seconds(h.sim().now() - t0));
          const auto t1 = h.sim().now();
          auto f = co_await b.fetch_object("h.bin");
          if (f.ok()) hm.fetch_s.add(to_seconds(h.sim().now() - t1));
        }
        // Remote store+fetch (policy forces the cloud).
        {
          vstore::StoreOptions opts;
          opts.policy.fallback = vstore::StoreTarget::remote_cloud;
          const auto t0 = h.sim().now();
          auto s = co_await bench::put_object(a, bench::make_object("r.bin", sz, "avi"), opts);
          if (s.ok()) rm.store_s.add(to_seconds(h.sim().now() - t0));
          const auto t1 = h.sim().now();
          auto f = co_await b.fetch_object("r.bin");
          if (f.ok()) rm.fetch_s.add(to_seconds(h.sim().now() - t1));
        }
      }(hc, size, rep, home, remote));
    }

    std::printf("%8.0fMB | %7.2f±%-6.2f %7.2f±%-6.2f | %7.1f±%-6.1f %7.1f±%-6.1f\n",
                to_mib(size), home.store_s.mean(), home.store_s.stddev(), home.fetch_s.mean(),
                home.fetch_s.stddev(), remote.store_s.mean(), remote.store_s.stddev(),
                remote.fetch_s.mean(), remote.fetch_s.stddev());

    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "home.store.mean", home.store_s.mean(), "s");
    report.add(label, "home.store.sd", home.store_s.stddev(), "s");
    report.add(label, "home.fetch.mean", home.fetch_s.mean(), "s");
    report.add(label, "home.fetch.sd", home.fetch_s.stddev(), "s");
    report.add(label, "cloud.store.mean", remote.store_s.mean(), "s");
    report.add(label, "cloud.store.sd", remote.store_s.stddev(), "s");
    report.add(label, "cloud.fetch.mean", remote.fetch_s.mean(), "s");
    report.add(label, "cloud.fetch.sd", remote.fetch_s.stddev(), "s");
  }

  std::printf("\nshape checks: cloud ≫ home at every size; cloud variability ≫ home;\n");
  std::printf("cloud store (thin uplink) slower than cloud fetch.\n");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
