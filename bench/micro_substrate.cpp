// Substrate microbenchmarks (google-benchmark): the building blocks whose
// costs underlie every experiment — hashing, the red-black tree, the
// serializer, the fair-share solver, overlay routing, and the event engine.
//
// Besides the console table, the run writes BENCH_micro_substrate.json
// (schema c4h-bench-v1) with one point per benchmark. These are wall-clock
// timings — the one artifact whose values legitimately vary run-to-run.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/rbtree.hpp"
#include "src/common/rng.hpp"
#include "src/common/serial.hpp"
#include "src/common/sha1.hpp"
#include "src/mon/monitor.hpp"
#include "src/net/fairshare.hpp"
#include "src/obs/bench_emit.hpp"
#include "src/overlay/chimera_node.hpp"
#include "src/sim/simulation.hpp"

namespace c4h {
namespace {

void BM_Sha1Key(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Key::from_name("object-" + std::to_string(i++)));
  }
}
BENCHMARK(BM_Sha1Key);

void BM_Sha1Throughput(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(4096)->Arg(65536);

void BM_RbTreeInsertErase(benchmark::State& state) {
  Rng rng{7};
  RbTree<std::uint64_t, std::uint64_t> t;
  for (auto _ : state) {
    const auto k = rng.below(100000);
    t.insert(k, k);
    if (t.size() > 4096) t.erase(t.min()->key);
  }
}
BENCHMARK(BM_RbTreeInsertErase);

void BM_RbTreeLookup(benchmark::State& state) {
  RbTree<std::uint64_t, std::uint64_t> t;
  for (std::uint64_t k = 0; k < 4096; ++k) t.insert(k * 7919 % 65536, k);
  Rng rng{9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(rng.below(65536)));
  }
}
BENCHMARK(BM_RbTreeLookup);

void BM_SerializeResourceRecord(benchmark::State& state) {
  mon::ResourceRecord rec;
  rec.node = Key::from_name("node");
  rec.cpu_load = 0.4;
  rec.free_memory = 512_MB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.serialize());
  }
}
BENCHMARK(BM_SerializeResourceRecord);

void BM_DeserializeResourceRecord(benchmark::State& state) {
  mon::ResourceRecord rec;
  rec.node = Key::from_name("node");
  const Buffer b = rec.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mon::ResourceRecord::deserialize(b));
  }
}
BENCHMARK(BM_DeserializeResourceRecord);

void BM_FairShareSolver(benchmark::State& state) {
  const auto nflows = static_cast<std::size_t>(state.range(0));
  std::vector<Rate> caps(8, 1e8);
  std::vector<net::FairFlowDesc> flows;
  Rng rng{11};
  for (std::size_t f = 0; f < nflows; ++f) {
    net::FairFlowDesc d;
    d.links = {static_cast<std::uint32_t>(rng.below(8))};
    d.cap = 1e6 + rng.uniform() * 1e8;
    flows.push_back(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_fair_rates(caps, flows));
  }
}
BENCHMARK(BM_FairShareSolver)->Arg(4)->Arg(16)->Arg(64);

void BM_NextHopComputation(benchmark::State& state) {
  sim::Simulation sim;
  vmm::HostSpec spec;
  spec.name = "h";
  vmm::Host host{sim, spec};
  overlay::ChimeraNode node{Key::from_name("self"), "self", host};
  for (int i = 0; i < 64; ++i) {
    node.add_peer(Key::from_name("peer-" + std::to_string(i)), {});
  }
  Rng rng{13};
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.next_hop(Key{rng.below(Key::kMask)}));
  }
}
BENCHMARK(BM_NextHopComputation);

void BM_EventEngineChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(milliseconds(i % 100), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventEngineChurn);

// Console output as usual, plus every run collected for the JSON artifact.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      report_->add(r.benchmark_name(), "time.real", r.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(r.time_unit));
      if (r.counters.find("bytes_per_second") != r.counters.end()) {
        report_->add(r.benchmark_name(), "throughput",
                     r.counters.at("bytes_per_second") / (1024.0 * 1024.0), "MiB/s");
      }
    }
  }

  obs::BenchReport* report_ = nullptr;
};

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  c4h::obs::BenchReport report("micro_substrate", 0);
  report.meta("timing", "wall-clock");
  c4h::CollectingReporter reporter;
  reporter.report_ = &report;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  auto written = report.write();
  if (written.ok()) {
    std::printf("artifact: %s\n", written->c_str());
  } else {
    std::fprintf(stderr, "artifact emission failed: %s\n", written.error().message.c_str());
  }
  return 0;
}
