// Shared helpers for the experiment binaries: table printing and common
// workload plumbing. Each bench regenerates one table/figure of the paper
// and prints the same rows/series the paper reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/units.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row_line() {
  std::printf("----------------------------------------------------------------\n");
}

inline vstore::ObjectMeta make_object(const std::string& name, Bytes size,
                                      const std::string& type = "jpg",
                                      std::vector<std::string> tags = {}) {
  vstore::ObjectMeta m;
  m.name = name;
  m.type = type;
  m.size = size;
  m.tags = std::move(tags);
  return m;
}

/// Store an object (create + store) from `node`; returns the outcome.
inline sim::Task<Result<vstore::StoreOutcome>> put_object(vstore::VStoreNode& node,
                                                          vstore::ObjectMeta meta,
                                                          vstore::StoreOptions opts = {}) {
  auto c = co_await node.create_object(meta);
  if (!c.ok()) co_return c.error();
  co_return co_await node.store_object(meta.name, opts);
}

}  // namespace c4h::bench
