// Shared helpers for the experiment binaries: table printing, common
// workload plumbing, and machine-readable emission. Each bench regenerates
// one table/figure of the paper, prints the same rows/series the paper
// reports, and writes a `BENCH_<name>.json` artifact (schema c4h-bench-v1,
// DESIGN.md §10) for CI to archive.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/units.hpp"
#include "src/obs/bench_emit.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::bench {

/// The flags every bench understands. `--quick` selects the CI smoke subset,
/// `--seed N` re-seeds the whole run (same seed ⇒ byte-identical artifact),
/// `--nodes N` sets the home-cloud device count where the bench is
/// node-count-parametric, `--neighborhoods N` sets the City's neighborhood
/// count where the bench runs over the federation tier.
struct BenchArgs {
  bool quick = false;
  std::uint64_t seed = 42;
  int nodes = 6;
  int neighborhoods = 4;
};

/// Parses the shared flags; unknown arguments are ignored so benches with
/// extra flags (or Google Benchmark's own) can layer their parsing on top.
inline BenchArgs parse_args(int argc, char** argv, BenchArgs defaults = {}) {
  BenchArgs a = defaults;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      a.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) a.nodes = n;
    } else if (std::strcmp(argv[i], "--neighborhoods") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) a.neighborhoods = n;
    }
  }
  return a;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row_line() {
  std::printf("----------------------------------------------------------------\n");
}

inline vstore::ObjectMeta make_object(const std::string& name, Bytes size,
                                      const std::string& type = "jpg",
                                      std::vector<std::string> tags = {}) {
  vstore::ObjectMeta m;
  m.name = name;
  m.type = type;
  m.size = size;
  m.tags = std::move(tags);
  return m;
}

/// Store an object (create + store) from `node`; returns the outcome. A
/// failure names the phase that failed — a capacity error during `create`
/// (metadata) means something very different from one during `store`
/// (placement), and the callers' retry/diagnosis logic needs to know which.
inline sim::Task<Result<vstore::StoreOutcome>> put_object(vstore::VStoreNode& node,
                                                          vstore::ObjectMeta meta,
                                                          vstore::StoreOptions opts = {},
                                                          obs::Ctx ctx = {}) {
  auto c = co_await node.create_object(meta, ctx);
  if (!c.ok()) {
    co_return Error{c.error().code, "create: " + c.error().message};
  }
  auto s = co_await node.store_object(meta.name, opts, ctx);
  if (!s.ok()) {
    co_return Error{s.error().code, "store: " + s.error().message};
  }
  co_return s;
}

/// Writes the report next to the binary's working directory and prints the
/// path (or the failure) so a bench run always says where its artifact went.
inline void emit(const obs::BenchReport& report) {
  auto written = report.write();
  if (written.ok()) {
    std::printf("\nartifact: %s\n", written->c_str());
  } else {
    std::fprintf(stderr, "artifact emission failed: %s\n", written.error().message.c_str());
  }
}

}  // namespace c4h::bench
