// Shared helpers for the experiment binaries: table printing, common
// workload plumbing, and machine-readable emission. Each bench regenerates
// one table/figure of the paper, prints the same rows/series the paper
// reports, and writes a `BENCH_<name>.json` artifact (schema c4h-bench-v1,
// DESIGN.md §10) for CI to archive.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/common/units.hpp"
#include "src/obs/bench_emit.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::bench {

/// The flags every bench understands. `--quick` selects the CI smoke subset,
/// `--seed N` re-seeds the whole run (same seed ⇒ byte-identical artifact),
/// `--nodes N` sets the home-cloud device count where the bench is
/// node-count-parametric, `--neighborhoods N` sets the City's neighborhood
/// count where the bench runs over the federation tier, and
/// `--net-model global|incremental|analytical` picks the flow-rate solver
/// for benches that exercise the raw network engine (DESIGN.md §13).
struct BenchArgs {
  bool quick = false;
  std::uint64_t seed = 42;
  int nodes = 6;
  int neighborhoods = 4;
  net::NetModel net_model = net::NetModel::global;
};

/// Parses the shared flags; unknown arguments are ignored so benches with
/// extra flags (or Google Benchmark's own) can layer their parsing on top.
inline BenchArgs parse_args(int argc, char** argv, BenchArgs defaults = {}) {
  BenchArgs a = defaults;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      a.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) a.nodes = n;
    } else if (std::strcmp(argv[i], "--neighborhoods") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) a.neighborhoods = n;
    } else if (std::strcmp(argv[i], "--net-model") == 0 && i + 1 < argc) {
      const char* m = argv[++i];
      if (std::strcmp(m, "global") == 0) {
        a.net_model = net::NetModel::global;
      } else if (std::strcmp(m, "incremental") == 0) {
        a.net_model = net::NetModel::incremental;
      } else if (std::strcmp(m, "analytical") == 0) {
        a.net_model = net::NetModel::analytical;
      }
    }
  }
  return a;
}

inline const char* net_model_name(net::NetModel m) {
  switch (m) {
    case net::NetModel::global: return "global";
    case net::NetModel::incremental: return "incremental";
    case net::NetModel::analytical: return "analytical";
  }
  return "?";
}

/// Host-side cost timer for scaling tables — the one sanctioned wall-clock
/// in the tree. Values measured with it MUST be emitted with a "-wall" unit
/// suffix (e.g. "ms-wall"): tools/bench-compare treats those series as
/// advisory (warn on regression) instead of part of the byte-stable
/// simulated artifact, and seeds/replays make no promise about them.
class WallTimer {
 public:
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

 private:
  // c4h-lint: allow(R2) — host-cost measurement only; never feeds simulated
  // state, and the emitted series carry "-wall" units that bench-compare
  // excludes from deterministic comparison.
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

/// Peak resident set of this process in MiB (Linux ru_maxrss is KiB).
/// Cumulative over the process lifetime: a sweep must visit its sizes in
/// ascending order for per-size readings to mean anything. Advisory, like
/// wall-clock — emit with a "-wall" unit suffix.
inline double peak_rss_mb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss) / 1024.0;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row_line() {
  std::printf("----------------------------------------------------------------\n");
}

inline vstore::ObjectMeta make_object(const std::string& name, Bytes size,
                                      const std::string& type = "jpg",
                                      std::vector<std::string> tags = {}) {
  vstore::ObjectMeta m;
  m.name = name;
  m.type = type;
  m.size = size;
  m.tags = std::move(tags);
  return m;
}

/// Store an object (create + store) from `node`; returns the outcome. A
/// failure names the phase that failed — a capacity error during `create`
/// (metadata) means something very different from one during `store`
/// (placement), and the callers' retry/diagnosis logic needs to know which.
inline sim::Task<Result<vstore::StoreOutcome>> put_object(vstore::VStoreNode& node,
                                                          vstore::ObjectMeta meta,
                                                          vstore::StoreOptions opts = {},
                                                          obs::Ctx ctx = {}) {
  auto c = co_await node.create_object(meta, ctx);
  if (!c.ok()) {
    co_return Error{c.error().code, "create: " + c.error().message};
  }
  auto s = co_await node.store_object(meta.name, opts, ctx);
  if (!s.ok()) {
    co_return Error{s.error().code, "store: " + s.error().message};
  }
  co_return s;
}

/// Writes the report next to the binary's working directory and prints the
/// path (or the failure) so a bench run always says where its artifact went.
inline void emit(const obs::BenchReport& report) {
  auto written = report.write();
  if (written.ok()) {
    std::printf("\nartifact: %s\n", written->c_str());
  } else {
    std::fprintf(stderr, "artifact emission failed: %s\n", written.error().message.c_str());
  }
}

}  // namespace c4h::bench
