// Figure 7: importance of service placement — the home-surveillance
// pipeline (CPU-intensive face detection FDet, then memory-intensive face
// recognition FRec) invoked from the low-end Atom node S1, executed on:
//   S1 — 512 MB VM, 1 VCPU, on a 1.3 GHz dual-core Atom;
//   S2 — 128 MB VM, multi-VCPU, on a 1.8 GHz quad-core;
//   S3 — EC2 extra-large para-virtualized instance (5× 2.9 GHz, 14 GB).
// Image sizes 0.25 / 0.5 / 1 / 2 MB.
//
// Paper's findings: small images run best on S1 (no data movement); as
// sizes grow, S2's extra compute wins despite movement; at 2 MB, S2's
// 128 MB VM thrashes on FRec and the remote cloud S3 becomes best despite
// the WAN movement cost. The training set is assumed available at every
// site (its movement is never charged).
#include "bench/bench_util.hpp"

namespace c4h {
namespace {

using sim::Task;
using vstore::ExecSite;

struct Rig {
  vstore::HomeCloud hc;
  std::size_t s1 = 0, s2 = 0;

  static vstore::HomeCloudConfig cfg() {
    vstore::HomeCloudConfig c;
    c.netbooks = 0;
    c.with_desktop = false;
    c.start_monitors = false;
    // Fig 7 is a single-bar-per-site comparison; damp WAN jitter so the S3
    // bar reflects the mean uplink rather than one lucky/unlucky draw.
    c.wan_rate_jitter = 0.1;
    return c;
  }

  Rig() : hc(cfg()) {
    // S1: 1.3 GHz dual-core Atom, 512 MB / 1 VCPU VM.
    vstore::HomeNodeSpec s1spec;
    s1spec.host.name = "S1-atom";
    s1spec.host.cores = 2;
    s1spec.host.ghz = 1.3;
    s1spec.host.memory = 1024_MB;
    s1spec.host.battery.capacity_wh = 28.0;
    s1spec.guest_vcpus = 1;
    s1spec.guest_memory = 512_MB;
    s1 = hc.add_node(s1spec);

    // S2: 1.8 GHz quad-core, 128 MB multi-VCPU VM.
    vstore::HomeNodeSpec s2spec;
    s2spec.host.name = "S2-quad";
    s2spec.host.cores = 4;
    s2spec.host.ghz = 1.8;
    s2spec.host.memory = 2048_MB;
    s2spec.guest_vcpus = 4;
    s2spec.guest_memory = 128_MB;
    s2 = hc.add_node(s2spec);

    hc.bootstrap();
  }
};

// Full pipeline (FDet then FRec) on the image, forced to `site`; returns
// the end-to-end time seen from S1, including movement and result returns.
Task<> pipeline_at(vstore::HomeCloud& hc, const std::string& img,
                   const services::ServiceProfile& fdet, const services::ServiceProfile& frec,
                   std::optional<ExecSite> site, double& out_seconds, std::string& where) {
  auto& s1 = hc.node(0);
  std::vector<services::ServiceProfile> stages{fdet, frec};
  const auto t0 = hc.sim().now();
  auto res = co_await s1.process_pipeline(img, stages,
                                          vstore::DecisionPolicy::performance, site);
  if (!res.ok()) co_return;
  out_seconds = to_seconds(hc.sim().now() - t0);
  if (!site.has_value()) {
    where = res->site.kind == ExecSite::Kind::ec2
                ? "S3"
                : (res->site.node == hc.node(0).chimera().id() ? "S1" : "S2");
  }
}

void run() {
  bench::header("Fig 7 — Importance of service placement (FDet + FRec pipeline from S1)",
                "ICDCS'11 Cloud4Home, Figure 7");

  std::printf("%8s | %10s %10s %10s | %18s\n", "size", "S1 (s)", "S2 (s)", "S3/EC2 (s)",
              "decision engine");
  bench::row_line();

  obs::BenchReport report("fig7_service_placement", 42);

  for (const Bytes size : {256_KB, 512_KB, 1_MB, 2_MB}) {
    Rig rig;
    auto fdet = services::face_detect_profile();
    auto frec = services::face_recognize_profile(60_MB);
    rig.hc.registry().add_profile(fdet);
    rig.hc.registry().add_profile(frec);
    rig.hc.node(rig.s1).deploy_service(fdet);
    rig.hc.node(rig.s1).deploy_service(frec);
    rig.hc.node(rig.s2).deploy_service(fdet);
    rig.hc.node(rig.s2).deploy_service(frec);
    rig.hc.deploy_service_in_cloud(fdet);
    rig.hc.deploy_service_in_cloud(frec);

    double t_s1 = 0, t_s2 = 0, t_s3 = 0, t_auto = 0;
    std::string chosen;
    rig.hc.run([&, size](vstore::HomeCloud& h) -> Task<> {
      (void)co_await h.node(0).publish_services();
      (void)co_await h.node(1).publish_services();
      auto s = co_await bench::put_object(h.node(0), bench::make_object("cam.jpg", size));
      if (!s.ok()) co_return;

      const auto fd = *h.registry().profile("face-detect", 1);
      const auto fr = *h.registry().profile("face-recognize", 2);
      const ExecSite at_s1{ExecSite::Kind::home_node, h.node(0).chimera().id()};
      const ExecSite at_s2{ExecSite::Kind::home_node, h.node(1).chimera().id()};
      const ExecSite at_s3{ExecSite::Kind::ec2, {}};
      std::string ignore;
      co_await pipeline_at(h, "cam.jpg", fd, fr, at_s1, t_s1, ignore);
      co_await pipeline_at(h, "cam.jpg", fd, fr, at_s2, t_s2, ignore);
      co_await pipeline_at(h, "cam.jpg", fd, fr, at_s3, t_s3, ignore);
      co_await pipeline_at(h, "cam.jpg", fd, fr, std::nullopt, t_auto, chosen);
    }(rig.hc));

    std::printf("%6.2fMB | %10.2f %10.2f %10.2f | picked %s (%.2f s)\n", to_mib(size), t_s1,
                t_s2, t_s3, chosen.c_str(), t_auto);

    const std::string label = std::to_string(size / 1_KB) + "KB";
    report.add(label, "pipeline.s1", t_s1, "s");
    report.add(label, "pipeline.s2", t_s2, "s");
    report.add(label, "pipeline.s3_ec2", t_s3, "s");
    report.add(label, "pipeline.auto", t_auto, "s");
    report.meta("picked_" + label, chosen);
  }

  std::printf("\nshape checks: S1 best for the smallest images (no movement); S2 takes\n");
  std::printf("over as compute dominates; at 2 MB the 128 MB VM thrashes on FRec and\n");
  std::printf("S3 wins despite WAN movement. The decision engine should track the\n");
  std::printf("winning column.\n");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
