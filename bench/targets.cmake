# One binary per paper table/figure, plus substrate microbenchmarks and
# design ablations. Declared at top-level scope with a dedicated runtime
# output directory so build/bench/ contains ONLY executables:
#   for b in build/bench/*; do $b; done
# regenerates the full evaluation with no stray files.

function(c4h_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

c4h_bench(fig4_home_vs_remote c4h_vstore)
c4h_bench(table1_fetch_breakdown c4h_vstore)
c4h_bench(fig5_optimal_object_size c4h_vstore)
c4h_bench(fig6_fetch_throughput c4h_vstore c4h_trace)
c4h_bench(split_processing c4h_vstore)
c4h_bench(fig7_service_placement c4h_vstore)
c4h_bench(fig8_dynamic_routing c4h_vstore)
c4h_bench(ablation_design c4h_vstore c4h_workload)
c4h_bench(ablation_choices c4h_vstore c4h_trace)
c4h_bench(scaling_study c4h_vstore)
c4h_bench(micro_substrate c4h_mon c4h_overlay)
target_link_libraries(micro_substrate PRIVATE benchmark::benchmark)

# Workload scenario family (DESIGN.md §11): multi-tenant traffic against the
# full home cloud, emitting tail-latency (p50/p99/p999) series.
c4h_bench(scenario_iot_telemetry c4h_workload)
c4h_bench(scenario_flash_crowd c4h_workload)
c4h_bench(scenario_mixed_tenants c4h_workload)
c4h_bench(scenario_edonkey_replay c4h_workload)
# City-scale federation scenario (DESIGN.md §12): cross-neighborhood tenants
# over the two-tier overlay, tails split by fetch path.
c4h_bench(scenario_federation c4h_workload c4h_federation)
