// Scenario: smart-home IoT telemetry fan-in (after the Clome smart-home
// cloud motivation, PAPERS.md).
//
// A swarm of sensors pushes small readings into the home cloud at a high
// open-loop rate that follows a compressed diurnal occupancy cycle; a
// dashboard application runs closed-loop clients that fetch recent readings
// and invoke an aggregation service over them (store-dominated fan-in with
// a read/compute tail — the inverse of the paper's fetch-heavy media
// scenarios). Reported numbers are the per-tenant p50/p99/p999 latency
// tails; at fan-in rates the store p999 is the capacity signal, not the
// mean.
#include "bench/scenario_util.hpp"

namespace c4h {
namespace {

using sim::Task;

services::ServiceProfile aggregate_profile() {
  services::ServiceProfile p;
  p.name = "aggregate";
  p.id = 21;
  p.fixed_gigacycles = 0.02;
  p.gigacycles_per_mib = 0.5;
  p.output_ratio = 0.05;
  p.working_set_base = 8_MB;
  return p;
}

void run(const bench::BenchArgs& args) {
  bench::header("Scenario — IoT telemetry fan-in",
                "ROADMAP item 3 / Clome smart-home motivation");

  const Duration duration = args.quick ? seconds(20) : seconds(90);

  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = duration;
  spec.diurnal.enabled = true;
  spec.diurnal.period = seconds(30);
  spec.diurnal.amplitude = 0.6;

  workload::TenantSpec sensors;
  sensors.name = "sensors";
  sensors.principal = {"sensors", vstore::TrustLevel::trusted};
  sensors.acl.allow("dashboard", {vstore::Right::read, vstore::Right::execute});
  sensors.object_type = "json";
  sensors.mix = {1.0, 0.0, 0.0, 0.0};  // pure fan-in
  sensors.object_count = args.quick ? 48 : 200;
  sensors.size = {4_KB, 64_KB};
  sensors.zipf_s = 0.6;  // sensors re-report: hot readings overwrite often
  sensors.arrival.rate_per_sec = args.quick ? 12.0 : 30.0;
  spec.tenants.push_back(sensors);

  workload::TenantSpec dashboard;
  dashboard.name = "dashboard";
  dashboard.principal = {"dashboard", vstore::TrustLevel::trusted};
  dashboard.mix = {0.0, 0.6, 0.3, 0.1};
  dashboard.object_count = 4;  // its own config blobs; reads target sensors
  dashboard.size = {16_KB, 64_KB};
  dashboard.fetch_from = {"sensors"};
  dashboard.service = aggregate_profile();
  dashboard.closed.clients = 2;
  dashboard.closed.mean_think = milliseconds(400);
  spec.tenants.push_back(dashboard);

  vstore::HomeCloud hc{bench::scenario_config(args)};
  hc.bootstrap();
  hc.registry().add_profile(*dashboard.service);

  workload::Driver driver{hc, spec};
  // The dashboard tenant's nodes (partition: node i → tenant i mod 2) host
  // the aggregation service.
  hc.run([](vstore::HomeCloud& h, workload::Driver& d, const workload::WorkloadSpec& sp,
            const services::ServiceProfile& svc) -> Task<> {
    for (std::size_t i = 1; i < h.node_count(); i += 2) {
      h.node(i).deploy_service(svc);
      (void)co_await h.node(i).publish_services();
    }
    const workload::Schedule schedule = workload::generate(sp);
    std::printf("schedule: %zu ops (%zu store / %zu fetch / %zu process / %zu f+p), %zu objects\n\n",
                schedule.ops.size(), schedule.count(workload::OpKind::store),
                schedule.count(workload::OpKind::fetch),
                schedule.count(workload::OpKind::process),
                schedule.count(workload::OpKind::fetch_process), schedule.objects.size());
    co_await d.drive(schedule);
  }(hc, driver, spec, *dashboard.service));

  bench::print_tenant_table(driver.result(), hc.metrics());

  obs::BenchReport report("scenario_iot_telemetry", args.seed);
  report.meta("quick", args.quick ? "true" : "false");
  report.meta("nodes", std::to_string(hc.node_count()));
  report.meta("duration_s", std::to_string(static_cast<int>(to_seconds(duration))));
  report.meta("sensor_rate_per_s", std::to_string(spec.tenants[0].arrival.rate_per_sec));
  bench::emit_scenario(report, driver.result(), hc.metrics());

  std::printf("\nshape checks: store volume dominates (fan-in); dashboard process tails\n");
  std::printf("sit above its fetch tails (compute + movement); zero denied/wrong ops.\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
