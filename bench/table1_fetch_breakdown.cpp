// Table I: cost analysis of home-cloud fetches — Total / Inter-node /
// Inter-domain / DHT-lookup per object size.
//
// Paper's findings: inter-node and inter-domain costs grow linearly with
// size; inter-domain (XenSocket) is small relative to inter-node; the DHT
// lookup cost is constant (~12-16 ms) and independent of object size.
#include "bench/bench_util.hpp"

namespace c4h {
namespace {

using sim::Task;

void run() {
  const std::vector<Bytes> sizes{1_MB, 2_MB, 5_MB, 10_MB, 20_MB, 50_MB, 100_MB};

  bench::header("Table I — Home cloud fetches: cost analysis",
                "ICDCS'11 Cloud4Home, Table I");
  std::printf("%10s | %10s %14s %16s %14s\n", "size", "Total(ms)", "InterNode(ms)",
              "InterDomain(ms)", "DHTLookup(ms)");
  bench::row_line();

  vstore::HomeCloudConfig cfg;
  cfg.start_monitors = false;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();

  for (const Bytes size : sizes) {
    vstore::FetchOutcome out{};
    bool ok = false;
    hc.run([](vstore::HomeCloud& h, Bytes sz, vstore::FetchOutcome& o, bool& okk) -> Task<> {
      // Object lives on node 1; a node that neither stores the object nor
      // owns its metadata key fetches it (pure off-node access, as in the
      // paper's distributed-dataset setup).
      const std::string name = "t1/" + std::to_string(sz);
      auto s = co_await bench::put_object(h.node(1), bench::make_object(name, sz));
      if (!s.ok()) co_return;
      const Key meta_owner = h.overlay().true_owner(Key::from_name(name));
      std::size_t fetcher = 0;
      while (fetcher < h.node_count() &&
             (h.node(fetcher).chimera().id() == meta_owner || fetcher == 1)) {
        ++fetcher;
      }
      auto f = co_await h.node(fetcher).fetch_object(name);
      if (!f.ok()) co_return;
      o = *f;
      okk = true;
    }(hc, size, out, ok));

    if (!ok) {
      std::printf("%8.0fMB | fetch failed\n", to_mib(size));
      continue;
    }
    std::printf("%8.0fMB | %10.0f %14.0f %16.0f %14.1f\n", to_mib(size),
                to_milliseconds(out.total), to_milliseconds(out.inter_node),
                to_milliseconds(out.inter_domain), to_milliseconds(out.dht_lookup));
  }

  std::printf("\nshape checks: inter-node & inter-domain grow ~linearly; inter-domain ≪\n");
  std::printf("inter-node; DHT lookup constant across sizes (paper: 12-16 ms).\n");
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::run();
  return 0;
}
