// Table I: cost analysis of home-cloud fetches — Total / Inter-node /
// Inter-domain / DHT-lookup per object size.
//
// Paper's findings: inter-node and inter-domain costs grow linearly with
// size; inter-domain (XenSocket) is small relative to inter-node; the DHT
// lookup cost is constant (~12-16 ms) and independent of object size.
//
// The breakdown is derived from the operation's span tree (src/obs), not
// from ad-hoc timers: the fetch root's `kv.get` children give the DHT
// lookup, `vstore.fetch.attempt` minus its lookups gives the inter-node
// movement, and the `vmm.xensocket` child gives the inter-domain delivery.
// `--quick` runs a two-size subset (the CI smoke lane).
#include "bench/bench_util.hpp"

namespace c4h {
namespace {

using sim::Task;

struct Breakdown {
  double total_ms = 0;
  double inter_node_ms = 0;
  double inter_domain_ms = 0;
  double dht_ms = 0;
  int dht_msgs = 0;
};

/// Reads Table I's four columns off the fetch operation's span tree.
Breakdown from_trace(const obs::Tracer& tracer) {
  Breakdown b;
  const obs::Span* root = tracer.find_by_name("vstore.fetch");
  if (root == nullptr) return b;
  b.total_ms = to_milliseconds(root->duration());
  b.dht_ms = to_milliseconds(tracer.sum_in_subtree(root->id, "kv.get"));
  b.inter_domain_ms = to_milliseconds(tracer.sum_in_subtree(root->id, "vmm.xensocket"));
  // Each attempt is lookup + authorization + data movement; movement is what
  // the paper calls inter-node cost.
  const Duration attempts = tracer.sum_in_subtree(root->id, "vstore.fetch.attempt");
  b.inter_node_ms = to_milliseconds(attempts) - b.dht_ms;
  b.dht_msgs = tracer.count_in_subtree(root->id, "net.msg");
  return b;
}

void run(const bench::BenchArgs& args) {
  const bool quick = args.quick;
  const std::vector<Bytes> sizes = quick
                                       ? std::vector<Bytes>{1_MB, 10_MB}
                                       : std::vector<Bytes>{1_MB,  2_MB,  5_MB, 10_MB,
                                                            20_MB, 50_MB, 100_MB};

  bench::header("Table I — Home cloud fetches: cost analysis",
                "ICDCS'11 Cloud4Home, Table I");
  std::printf("%10s | %10s %14s %16s %14s\n", "size", "Total(ms)", "InterNode(ms)",
              "InterDomain(ms)", "DHTLookup(ms)");
  bench::row_line();

  vstore::HomeCloudConfig cfg;
  cfg.start_monitors = false;
  cfg.seed = args.seed;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();

  obs::BenchReport report("table1_fetch_breakdown", cfg.seed);
  report.meta("quick", quick ? "true" : "false");
  report.meta("source", "span-tree");

  for (const Bytes size : sizes) {
    bool ok = false;
    hc.run([](vstore::HomeCloud& h, Bytes sz, bool& okk) -> Task<> {
      // Object lives on node 1; a node that neither stores the object nor
      // owns its metadata key fetches it (pure off-node access, as in the
      // paper's distributed-dataset setup).
      const std::string name = "t1/" + std::to_string(sz);
      auto s = co_await bench::put_object(h.node(1), bench::make_object(name, sz));
      if (!s.ok()) co_return;
      const Key meta_owner = h.overlay().true_owner(Key::from_name(name));
      std::size_t fetcher = 0;
      while (fetcher < h.node_count() &&
             (h.node(fetcher).chimera().id() == meta_owner || fetcher == 1)) {
        ++fetcher;
      }
      // Trace exactly this fetch; the breakdown is read off its span tree.
      h.tracer().clear();
      h.tracer().set_enabled(true);
      auto f = co_await h.node(fetcher).fetch_object(name);
      h.tracer().set_enabled(false);
      okk = f.ok();
    }(hc, size, ok));

    if (!ok) {
      std::printf("%8.0fMB | fetch failed\n", to_mib(size));
      continue;
    }
    const Breakdown b = from_trace(hc.tracer());
    std::printf("%8.0fMB | %10.0f %14.0f %16.0f %14.1f\n", to_mib(size), b.total_ms,
                b.inter_node_ms, b.inter_domain_ms, b.dht_ms);

    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "fetch.total", b.total_ms, "ms");
    report.add(label, "fetch.inter_node", b.inter_node_ms, "ms");
    report.add(label, "fetch.inter_domain", b.inter_domain_ms, "ms");
    report.add(label, "fetch.dht_lookup", b.dht_ms, "ms");
    report.add(label, "fetch.dht_messages", b.dht_msgs, "count");
  }

  std::printf("\nshape checks: inter-node & inter-domain grow ~linearly; inter-domain ≪\n");
  std::printf("inter-node; DHT lookup constant across sizes (paper: 12-16 ms).\n");
  bench::emit(report);
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
