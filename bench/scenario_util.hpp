// Shared plumbing for the `scenario_*` bench family (ROADMAP item 3): a
// HomeCloudConfig derived from the common --seed/--nodes flags, a per-tenant
// result table, and the c4h-bench-v1 emission that extends the series with
// p50/p99/p999 tail-latency rows pulled from the workload histograms.
#pragma once

#include "bench/bench_util.hpp"
#include "src/workload/workload.hpp"

namespace c4h::bench {

inline vstore::HomeCloudConfig scenario_config(const BenchArgs& args) {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = args.nodes > 1 ? args.nodes - 1 : 1;
  cfg.with_desktop = args.nodes > 1;
  cfg.seed = args.seed;
  cfg.start_monitors = false;
  return cfg;
}

/// Per-tenant outcome counts plus the fetch-latency tails — the console
/// companion of the JSON series.
inline void print_tenant_table(const workload::DriveResult& result,
                               const obs::Registry& registry) {
  std::printf("%-14s | %8s %8s %8s %8s %8s | %9s %9s %9s\n", "tenant", "issued", "ok",
              "failed", "denied", "wrong", "p50(ms)", "p99(ms)", "p999(ms)");
  row_line();
  const obs::Snapshot snap = registry.snapshot();
  for (const workload::TenantStats& t : result.tenants) {
    // The headline latency column: the tenant's busiest op kind.
    const workload::OpKind kinds[] = {workload::OpKind::fetch, workload::OpKind::store,
                                      workload::OpKind::process,
                                      workload::OpKind::fetch_process};
    const obs::LogHistogram* h = nullptr;
    std::uint64_t best = 0;
    for (const workload::OpKind k : kinds) {
      const std::string name = "c4h.workload." + std::string(workload::to_string(k)) +
                               ".latency_ns{tenant=" + t.name + "}";
      const auto it = snap.histograms.find(name);
      if (it != snap.histograms.end() && it->second.count() > best) {
        best = it->second.count();
        h = &it->second;
      }
    }
    const double ms = 1e-6;
    std::printf("%-14s | %8llu %8llu %8llu %8llu %8llu | %9.1f %9.1f %9.1f\n",
                t.name.c_str(), static_cast<unsigned long long>(t.issued_total()),
                static_cast<unsigned long long>(t.ok_total()),
                static_cast<unsigned long long>(t.failed),
                static_cast<unsigned long long>(t.denied),
                static_cast<unsigned long long>(t.wrong),
                h != nullptr ? static_cast<double>(h->quantile(50.0)) * ms : 0.0,
                h != nullptr ? static_cast<double>(h->quantile(99.0)) * ms : 0.0,
                h != nullptr ? static_cast<double>(h->quantile(99.9)) * ms : 0.0);
  }
  if (!result.errors.empty()) {
    std::printf("failures:");
    for (const auto& [code, n] : result.errors) {
      std::printf(" %s=%llu", code.c_str(), static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }
}

/// Adds the per-tenant outcome counters and every workload latency tail
/// series to the report, then writes the artifact.
inline void emit_scenario(obs::BenchReport& report, const workload::DriveResult& result,
                          const obs::Registry& registry) {
  for (const workload::TenantStats& t : result.tenants) {
    report.add(t.name, "workload.issued", static_cast<double>(t.issued_total()), "count");
    report.add(t.name, "workload.ok", static_cast<double>(t.ok_total()), "count");
    report.add(t.name, "workload.failed", static_cast<double>(t.failed), "count");
    report.add(t.name, "workload.denied", static_cast<double>(t.denied), "count");
    report.add(t.name, "workload.wrong", static_cast<double>(t.wrong), "count");
  }
  workload::emit_tail_series(report, registry);
  emit(report);
}

}  // namespace c4h::bench
