// Ablations of the design choices called out in DESIGN.md §6 (split out of
// the original ablation_design binary, which now hosts the learned-vs-static
// placement ablation — DESIGN.md §15):
//   1. metadata path caching on/off (lookup latency under skewed access);
//   2. replication factor (data survival under failure vs message cost);
//   3. monitoring period (messaging overhead vs record staleness);
//   4. decision policy (performance vs balanced vs battery under load);
//   5. blocking vs non-blocking store (ack round-trip cost).
#include "bench/bench_util.hpp"
#include "src/kv/central.hpp"
#include "src/trace/edonkey.hpp"

namespace c4h {
namespace {

using sim::Task;

// --- 1. Path caching ------------------------------------------------------

void ablate_caching(obs::BenchReport& report) {
  bench::header("Ablation 1 — metadata path caching", "DESIGN.md §6.1");
  std::printf("%10s | %16s | %14s\n", "caching", "mean get (ms)", "cache hits");
  bench::row_line();
  for (const bool caching : {false, true}) {
    vstore::HomeCloudConfig cfg;
    cfg.kv.path_caching = caching;
    cfg.start_monitors = false;
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();
    Samples lat;
    hc.run([&](vstore::HomeCloud& h) -> Task<> {
      // One hot key, fetched repeatedly from every node (Zipf head case).
      const Key k = Key::from_name("hot-entry");
      (void)co_await h.kv().put(h.node(0).chimera(), k, Buffer(200, 1));
      for (int i = 0; i < 60; ++i) {
        auto& origin = h.node(static_cast<std::size_t>(i) % h.node_count());
        const auto t0 = h.sim().now();
        (void)co_await h.kv().get(origin.chimera(), k);
        lat.add(to_milliseconds(h.sim().now() - t0));
      }
    }(hc));
    std::printf("%10s | %16.3f | %14llu\n", caching ? "on" : "off", lat.mean(),
                static_cast<unsigned long long>(hc.kv().stats().cache_hits +
                                                hc.kv().stats().local_hits));
    const std::string label = caching ? "caching=on" : "caching=off";
    report.add(label, "kv.get.mean", lat.mean(), "ms");
    report.add(label, "kv.get.hits",
               static_cast<double>(hc.kv().stats().cache_hits + hc.kv().stats().local_hits),
               "count");
  }
}

// --- 2. Replication factor -------------------------------------------------

void ablate_replication(obs::BenchReport& report) {
  bench::header("Ablation 2 — replication factor vs failure survival", "DESIGN.md §6.2");
  std::printf("%6s | %12s | %16s\n", "R", "keys lost", "repl. messages");
  bench::row_line();
  for (const int r : {0, 1, 2, 3}) {
    vstore::HomeCloudConfig cfg;
    cfg.kv.replication = r;
    cfg.start_monitors = false;
    cfg.start_stabilization = true;
    cfg.overlay.stabilize_period = milliseconds(500);
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();
    int lost = 0;
    hc.run([&](vstore::HomeCloud& h) -> Task<> {
      std::vector<Key> keys;
      for (int i = 0; i < 60; ++i) {
        const Key k = Key::from_name("abl2-" + std::to_string(i));
        keys.push_back(k);
        (void)co_await h.kv().put(h.node(0).chimera(), k, Buffer(100, 7));
      }
      co_await h.sim().delay(seconds(2));  // replication settles
      h.overlay().crash(h.node(2).chimera());
      co_await h.sim().delay(seconds(6));  // detection + repair
      for (const Key k : keys) {
        auto got = co_await h.kv().get(h.node(0).chimera(), k);
        lost += !got.ok();
      }
    }(hc));
    std::printf("%6d | %12d | %16llu\n", r, lost,
                static_cast<unsigned long long>(hc.kv().stats().replication_msgs));
    const std::string label = "replication=" + std::to_string(r);
    report.add(label, "kv.keys_lost", lost, "count");
    report.add(label, "kv.replication_msgs",
               static_cast<double>(hc.kv().stats().replication_msgs), "count");
  }
}

// --- 3. Monitoring period ---------------------------------------------------

void ablate_monitoring(obs::BenchReport& report) {
  bench::header("Ablation 3 — monitoring period: messages vs staleness", "DESIGN.md §6.3");
  std::printf("%12s | %14s | %18s\n", "period", "messages/min", "max staleness (s)");
  bench::row_line();
  for (const auto period : {milliseconds(500), seconds(2), seconds(10)}) {
    vstore::HomeCloudConfig cfg;
    cfg.monitor.period = period;
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();
    const auto msgs0 = hc.network().stats().messages_sent;
    const auto t0 = hc.sim().now();
    hc.sim().run_until(t0 + seconds(60));
    const double per_min =
        static_cast<double>(hc.network().stats().messages_sent - msgs0);
    std::printf("%10.1fs | %14.0f | %18.1f\n", to_seconds(period), per_min,
                to_seconds(period));
    const std::string label = "period=" + std::to_string(to_seconds(period)) + "s";
    report.add(label, "monitor.msgs_per_min", per_min, "count");
  }
}

// --- 4. Decision policy -----------------------------------------------------

const char* policy_name(vstore::DecisionPolicy p) {
  switch (p) {
    case vstore::DecisionPolicy::performance: return "performance";
    case vstore::DecisionPolicy::balanced_utilization: return "balanced";
    case vstore::DecisionPolicy::battery_aware: return "battery-aware";
    case vstore::DecisionPolicy::learned: return "learned";
  }
  return "?";
}

// Scenario A: the fastest candidate is an idle netbook running on a nearly
// dead battery; the requester is a loaded but mains-powered device.
// performance/balanced offload to the drained netbook; battery-aware spares
// it and stays on the plugged-in requester.
void policy_scenario_a(vstore::DecisionPolicy policy, obs::BenchReport& report) {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = 0;
  cfg.with_desktop = false;
  cfg.start_monitors = false;
  vstore::HomeCloud hc{cfg};
  // Requester netbook is plugged in (no battery constraint); peer runs on
  // battery.
  auto plugged = vstore::HomeCloudConfig::netbook_spec("netbook-plugged");
  plugged.host.battery.capacity_wh = 0;
  hc.add_node(plugged);
  hc.add_node(vstore::HomeCloudConfig::netbook_spec("netbook-battery"));
  hc.bootstrap();
  auto x264 = services::x264_profile();
  hc.registry().add_profile(x264);
  hc.node(0).deploy_service(x264);
  hc.node(1).deploy_service(x264);

  double took = 0;
  std::string picked;
  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    (void)co_await h.node(0).publish_services();
    (void)co_await h.node(1).publish_services();
    // Requester: plugged in (treat as full), but CPU half-busy.
    h.node(0).host().set_battery_fraction(1.0);
    h.sim().spawn([](vstore::HomeCloud& hh) -> Task<> {
      co_await hh.node(0).host().execute(hh.node(0).app_domain(), 5000.0, 1);
    }(h));
    // Peer: idle but nearly out of battery.
    h.node(1).host().set_battery_fraction(0.1);
    co_await h.sim().delay(milliseconds(100));
    for (std::size_t i = 0; i < h.node_count(); ++i) {
      co_await h.node(i).monitor().publish_once();
    }
    auto s = co_await bench::put_object(h.node(0), bench::make_object("a.avi", 20_MB, "avi"));
    if (!s.ok()) co_return;
    const auto t0 = h.sim().now();
    auto res = co_await h.node(0).process("a.avi", x264, policy);
    if (!res.ok()) co_return;
    took = to_seconds(h.sim().now() - t0);
    picked = res->site.node == h.node(0).chimera().id() ? "requester(busy,plugged)"
                                                        : "peer(idle,battery 10%)";
  }(hc));
  std::printf("%4s %18s | %12.1f | %s\n", "A", policy_name(policy), took, picked.c_str());
  report.add(std::string("A/") + policy_name(policy), "process.time", took, "s");
}

// Scenario B: requester idle, a second netbook idle, the desktop loaded.
// performance still offloads to the (much faster) loaded desktop;
// balanced spreads to the idle requester instead.
void policy_scenario_b(vstore::DecisionPolicy policy, obs::BenchReport& report) {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = 2;
  cfg.start_monitors = false;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();
  auto x264 = services::x264_profile();
  hc.registry().add_profile(x264);
  hc.node(0).deploy_service(x264);
  hc.node(1).deploy_service(x264);
  hc.desktop().deploy_service(x264);

  double took = 0;
  std::string picked;
  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    for (std::size_t i = 0; i < h.node_count(); ++i) {
      (void)co_await h.node(i).publish_services();
    }
    // Desktop: two of four cores busy.
    h.sim().spawn([](vstore::HomeCloud& hh) -> Task<> {
      co_await hh.desktop().host().execute(hh.desktop().app_domain(), 5000.0, 2);
    }(h));
    co_await h.sim().delay(milliseconds(100));
    for (std::size_t i = 0; i < h.node_count(); ++i) {
      co_await h.node(i).monitor().publish_once();
    }
    auto s = co_await bench::put_object(h.node(0), bench::make_object("b.avi", 20_MB, "avi"));
    if (!s.ok()) co_return;
    const auto t0 = h.sim().now();
    auto res = co_await h.node(0).process("b.avi", x264, policy);
    if (!res.ok()) co_return;
    took = to_seconds(h.sim().now() - t0);
    picked = res->site.node == h.desktop().chimera().id()
                 ? "desktop(loaded,mains)"
                 : (res->site.node == h.node(0).chimera().id() ? "requester(idle,battery)"
                                                               : "netbook-1(idle,battery)");
  }(hc));
  std::printf("%4s %18s | %12.1f | %s\n", "B", policy_name(policy), took, picked.c_str());
  report.add(std::string("B/") + policy_name(policy), "process.time", took, "s");
}

void ablate_policy(obs::BenchReport& report) {
  bench::header("Ablation 4 — decision policies pick different sites", "DESIGN.md §6.4");
  std::printf("%4s %18s | %12s | %s\n", "", "policy", "time (s)", "picked");
  bench::row_line();
  using vstore::DecisionPolicy;
  for (const auto policy : {DecisionPolicy::performance, DecisionPolicy::balanced_utilization,
                            DecisionPolicy::battery_aware}) {
    policy_scenario_a(policy, report);
  }
  bench::row_line();
  for (const auto policy : {DecisionPolicy::performance, DecisionPolicy::balanced_utilization,
                            DecisionPolicy::battery_aware}) {
    policy_scenario_b(policy, report);
  }
}

// --- 5. Blocking vs non-blocking store --------------------------------------

void ablate_blocking(obs::BenchReport& report) {
  bench::header("Ablation 5 — blocking vs non-blocking store", "DESIGN.md §6.5");
  std::printf("%10s | %16s | %16s\n", "size", "blocking (ms)", "non-block (ms)");
  bench::row_line();
  for (const Bytes size : {1_MB, 10_MB, 50_MB}) {
    vstore::HomeCloudConfig cfg;
    cfg.start_monitors = false;
    vstore::HomeCloud hc{cfg};
    hc.bootstrap();
    double t_block = 0, t_nb = 0;
    hc.run([&, size](vstore::HomeCloud& h) -> Task<> {
      auto& n = h.node(0);
      {
        const auto t0 = h.sim().now();
        (void)co_await bench::put_object(n, bench::make_object("b.bin", size));
        t_block = to_milliseconds(h.sim().now() - t0);
      }
      {
        vstore::StoreOptions opts;
        opts.blocking = false;
        const auto t0 = h.sim().now();
        (void)co_await bench::put_object(n, bench::make_object("nb.bin", size), opts);
        t_nb = to_milliseconds(h.sim().now() - t0);
        co_await h.sim().delay(seconds(30));  // drain the async tail
      }
    }(hc));
    std::printf("%8.0fMB | %16.0f | %16.0f\n", to_mib(size), t_block, t_nb);
    const std::string label = std::to_string(size / 1_MB) + "MB";
    report.add(label, "store.blocking", t_block, "ms");
    report.add(label, "store.non_blocking", t_nb, "ms");
  }
}

// --- 6. Metadata layer: DHT vs centralized -----------------------------------

void ablate_metadata_layer(obs::BenchReport& report) {
  bench::header("Ablation 6 — metadata layer: DHT+caching vs centralized",
                "§III-A \"alternative implementations of this layer\"");
  std::printf("%12s | %14s %14s | %s\n", "layer", "mean get (ms)", "p95 (ms)",
              "coordinator msgs / survives crash");
  bench::row_line();

  vstore::HomeCloudConfig cfg;
  cfg.start_monitors = false;
  vstore::HomeCloud hc{cfg};
  hc.bootstrap();
  kv::CentralizedMetadata central{hc.overlay(), hc.desktop().chimera()};

  Samples dht_ms, central_ms;
  hc.run([&](vstore::HomeCloud& h) -> Task<> {
    Rng rng{31};
    for (int i = 0; i < 30; ++i) {
      const Key k = Key::from_name("m6-" + std::to_string(i));
      Buffer v(150, 3);
      (void)co_await h.kv().put(h.node(0).chimera(), k, v);
      (void)co_await central.put(h.node(0).chimera(), k, v);
    }
    for (int i = 0; i < 120; ++i) {
      const Key k = Key::from_name("m6-" + std::to_string(rng.zipf(30, 1.0)));
      auto& origin = h.node(rng.below(h.node_count()));
      auto t0 = h.sim().now();
      (void)co_await h.kv().get(origin.chimera(), k);
      dht_ms.add(to_milliseconds(h.sim().now() - t0));
      t0 = h.sim().now();
      (void)co_await central.get(origin.chimera(), k);
      central_ms.add(to_milliseconds(h.sim().now() - t0));
    }
  }(hc));

  std::printf("%12s | %14.2f %14.2f | load spread over ring; survives any\n", "DHT+cache",
              dht_ms.mean(), dht_ms.percentile(95));
  std::printf("%12s | %14s %14s |   single crash (replicas promote)\n", "", "", "");
  std::printf("%12s | %14.2f %14.2f | %llu msgs through one node; a\n", "centralized",
              central_ms.mean(), central_ms.percentile(95),
              static_cast<unsigned long long>(central.stats().coordinator_messages));
  std::printf("%12s | %14s %14s |   coordinator crash loses everything\n", "", "", "");
  report.add("dht", "metadata.get.mean", dht_ms.mean(), "ms");
  report.add("dht", "metadata.get.p95", dht_ms.percentile(95), "ms");
  report.add("central", "metadata.get.mean", central_ms.mean(), "ms");
  report.add("central", "metadata.get.p95", central_ms.percentile(95), "ms");

  std::printf("\nThe flat centralized lookup is competitive at home scale, but every\n");
  std::printf("operation funnels through one device and one failure point — why the\n");
  std::printf("paper builds on a DHT despite the extra routing machinery.\n");
}

}  // namespace
}  // namespace c4h

int main() {
  c4h::obs::BenchReport report("ablation_choices", 42);
  c4h::ablate_caching(report);
  c4h::ablate_replication(report);
  c4h::ablate_monitoring(report);
  c4h::ablate_policy(report);
  c4h::ablate_blocking(report);
  c4h::ablate_metadata_layer(report);
  c4h::bench::emit(report);
  return 0;
}
