// Scenario: flash-crowd content sharing (§I's "content sharing between
// friends' homes" under a sudden popularity spike).
//
// A publisher tenant seeds a catalog of medium/large objects and keeps
// trickling new content; a crowd tenant fetches from that catalog with a
// strongly skewed (Zipf s=1.1) popularity. The run executes twice with the
// same seed: once steady, once with a flash-crowd window that multiplies
// the arrival rate mid-run. The artifact carries both fetch-latency tails
// ("steady" vs "flash") so the spike's p99/p999 inflation is the headline
// number — the means barely move.
#include "bench/scenario_util.hpp"

namespace c4h {
namespace {

using sim::Task;

workload::WorkloadSpec make_spec(const bench::BenchArgs& args, bool crowd) {
  const Duration duration = args.quick ? seconds(20) : seconds(80);

  workload::WorkloadSpec spec;
  spec.seed = args.seed;
  spec.duration = duration;
  if (crowd) {
    workload::FlashCrowdSpec f;
    f.start = TimePoint{duration * 2 / 5};
    f.duration = duration / 5;
    f.multiplier = 8.0;
    spec.flash_crowds.push_back(f);
  }

  workload::TenantSpec publisher;
  publisher.name = "publisher";
  publisher.principal = {"publisher", vstore::TrustLevel::trusted};
  publisher.acl.allow("crowd", {vstore::Right::read});
  publisher.mix = {1.0, 0.0, 0.0, 0.0};  // keeps trickling fresh content
  publisher.object_count = args.quick ? 24 : 80;
  publisher.size = {2_MB, 8_MB};
  publisher.arrival.rate_per_sec = 1.0;
  spec.tenants.push_back(publisher);

  workload::TenantSpec crowd_tenant;
  crowd_tenant.name = "crowd";
  crowd_tenant.principal = {"crowd", vstore::TrustLevel::trusted};
  crowd_tenant.mix = {0.0, 1.0, 0.0, 0.0};
  crowd_tenant.object_count = 8;  // tiny own catalog; the draw is the publisher's
  crowd_tenant.size = {64_KB, 256_KB};
  crowd_tenant.fetch_from = {"publisher"};
  crowd_tenant.zipf_s = 1.1;  // everyone wants the same few objects
  crowd_tenant.arrival.rate_per_sec = args.quick ? 6.0 : 15.0;
  spec.tenants.push_back(crowd_tenant);

  return spec;
}

/// One full run (own HomeCloud); prints the tenant table and appends the
/// crowd tenant's fetch tails to `report` under the run's tag.
void run_once(const bench::BenchArgs& args, bool crowd, obs::BenchReport& report) {
  const char* tag = crowd ? "flash" : "steady";
  std::printf("\n--- %s run ---\n", tag);

  const workload::WorkloadSpec spec = make_spec(args, crowd);
  vstore::HomeCloud hc{bench::scenario_config(args)};
  hc.bootstrap();

  workload::Driver driver{hc, spec};
  hc.run([](workload::Driver& d, const workload::WorkloadSpec& sp) -> Task<> {
    const workload::Schedule schedule = workload::generate(sp);
    std::printf("schedule: %zu ops (%zu store / %zu fetch)\n\n", schedule.ops.size(),
                schedule.count(workload::OpKind::store),
                schedule.count(workload::OpKind::fetch));
    co_await d.drive(schedule);
  }(driver, spec));

  bench::print_tenant_table(driver.result(), hc.metrics());

  for (const workload::TenantStats& t : driver.result().tenants) {
    const std::string label = std::string(tag) + ":" + t.name;
    report.add(label, "workload.issued", static_cast<double>(t.issued_total()), "count");
    report.add(label, "workload.ok", static_cast<double>(t.ok_total()), "count");
    report.add(label, "workload.failed", static_cast<double>(t.failed), "count");
  }
  const obs::Snapshot snap = hc.metrics().snapshot();
  const auto it = snap.histograms.find("c4h.workload.fetch.latency_ns{tenant=crowd}");
  if (it != snap.histograms.end()) {
    obs::add_latency_tails(report, tag, "workload.fetch.latency", it->second);
  }
}

void run(const bench::BenchArgs& args) {
  bench::header("Scenario — flash-crowd content sharing",
                "§I content sharing under a popularity spike");

  obs::BenchReport report("scenario_flash_crowd", args.seed);
  report.meta("quick", args.quick ? "true" : "false");
  report.meta("nodes", std::to_string(args.nodes));
  report.meta("crowd_multiplier", "8");

  run_once(args, /*crowd=*/false, report);
  run_once(args, /*crowd=*/true, report);
  bench::emit(report);

  std::printf("\nshape checks: identical schedules outside the crowd window; the\n");
  std::printf("flash run's fetch p99/p999 sit above the steady run's.\n");
}

}  // namespace
}  // namespace c4h

int main(int argc, char** argv) {
  c4h::run(c4h::bench::parse_args(argc, argv));
  return 0;
}
