// The Cloud4Home overlay fabric: node lifecycle (dynamic join / graceful
// leave / crash + detection) and prefix routing across the home cloud.
//
// All overlay traffic rides the simulated network (per-hop message latency);
// per-hop processing and failure-probe timeouts are configurable. Key
// handoff on leave/failure is delegated to the layer above (the key-value
// store) through registered hooks, mirroring the paper's "a departing node's
// keys are always redistributed among the available set of nodes".
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/log.hpp"
#include "src/common/result.hpp"
#include "src/net/network.hpp"
#include "src/obs/trace.hpp"
#include "src/overlay/chimera_node.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/sync.hpp"

namespace c4h::overlay {

struct OverlayConfig {
  Duration per_hop_processing = milliseconds(2);  // route computation per hop
  Duration probe_timeout = milliseconds(200);     // detecting a dead next-hop
  Duration stabilize_period = seconds(2);         // neighbour heartbeat
  int max_hops = 64;
};

struct RouteResult {
  Key owner;
  std::vector<Key> path;  // intermediate nodes visited, excluding origin & owner
  int hops = 0;           // network messages taken (path.size() + final hop)
};

struct OverlayStats {
  std::uint64_t routes = 0;
  std::uint64_t route_hops = 0;
  std::uint64_t join_messages = 0;
  std::uint64_t maintenance_messages = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

class Overlay {
 public:
  Overlay(sim::Simulation& sim, net::Network& net, OverlayConfig config = {})
      : sim_(sim), net_(net), config_(config) {}

  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return net_; }
  const OverlayConfig& config() const { return config_; }

  /// Creates a node bound to `host` (not yet part of the overlay). The node
  /// id is the 40-bit hash of the node's name/address (§III-A).
  ChimeraNode& create_node(const std::string& name, vmm::Host& host);

  /// Joins `node` via `bootstrap` (nullptr for the first node): routes a
  /// join request toward the node's own id, copies routing state from the
  /// nodes encountered, then announces itself.
  [[nodiscard]] sim::Task<Result<void>> join(ChimeraNode& node, ChimeraNode* bootstrap);

  /// Graceful departure: notifies left/right ring neighbours and all other
  /// known peers; runs the registered leave hook first so stored keys can be
  /// handed off while the node is still reachable.
  [[nodiscard]] sim::Task<> leave(ChimeraNode& node);

  /// Abrupt failure: the node's host goes offline with no notification.
  /// Neighbours discover it via the stabilization heartbeat. The node's
  /// incarnation is bumped so its per-life processes (stabilization loop)
  /// retire instead of surviving into the next life.
  void crash(ChimeraNode& node) {
    node.host().set_online(false);
    node.bump_incarnation();
    ++stats_.crashes;
  }

  /// Brings a crashed node back: routing state is wiped (it rejoins from
  /// scratch via `bootstrap`), then the join hook lets the KV layer hand
  /// back the keys this node now owns. Its ObjectFs contents survive the
  /// power cycle — only volatile state is lost.
  [[nodiscard]] sim::Task<Result<void>> restart(ChimeraNode& node, ChimeraNode* bootstrap);

  /// Routes from `origin` toward `target`; resolves the owning node.
  /// If `stop_at` is set and returns true for an intermediate node, routing
  /// stops there (used by the KV layer's path caches). A non-null `ctx`
  /// records an `overlay.route` span whose `net.msg` children are the DHT
  /// hops.
  [[nodiscard]] sim::Task<Result<RouteResult>> route(ChimeraNode& origin, Key target,
                                       const std::function<bool(ChimeraNode&)>& stop_at = {},
                                       obs::Ctx ctx = {});

  /// The `r` live ring successors of `node` (clockwise), excluding itself —
  /// the replica set used by the KV layer.
  std::vector<Key> successors_of(Key node, int r);

  /// Starts periodic neighbour heartbeats on every current member.
  void start_stabilization();

  ChimeraNode* node_by_key(Key k) {
    const auto it = nodes_by_key_.find(k);
    return it != nodes_by_key_.end() ? it->second : nullptr;
  }

  /// Members currently believed online (for experiment setup/inspection).
  std::vector<ChimeraNode*> live_members();

  /// Globally correct owner of `key` among online members — the oracle used
  /// by tests to validate routing.
  Key true_owner(Key key);

  /// Hook invoked with (departing node) before a graceful leave announces.
  void set_leave_hook(std::function<sim::Task<>(ChimeraNode&)> hook) {
    leave_hook_ = std::move(hook);
  }

  /// Hook invoked after a node has joined (or re-joined) and announced
  /// itself; lets the KV layer hand the keys in the joiner's arc over to it
  /// ("keys are always redistributed among the available set of nodes").
  void set_join_hook(std::function<sim::Task<>(ChimeraNode&)> hook) {
    join_hook_ = std::move(hook);
  }

  /// Hook invoked when a node is *detected* dead (crash path), after
  /// membership has been repaired; lets the KV layer restore replicas.
  void set_failure_hook(std::function<sim::Task<>(Key)> hook) {
    failure_hook_ = std::move(hook);
  }

  const OverlayStats& stats() const { return stats_; }

 private:
  sim::Task<> announce(ChimeraNode& joiner);
  sim::Task<> stabilize_loop(ChimeraNode& node);
  void remove_everywhere(Key dead);

  sim::Simulation& sim_;
  net::Network& net_;
  OverlayConfig config_;
  std::vector<std::unique_ptr<ChimeraNode>> nodes_;
  std::unordered_map<Key, ChimeraNode*> nodes_by_key_;
  std::function<sim::Task<>(ChimeraNode&)> leave_hook_;
  std::function<sim::Task<>(ChimeraNode&)> join_hook_;
  std::function<sim::Task<>(Key)> failure_hook_;
  bool stabilizing_ = false;
  OverlayStats stats_;
};

}  // namespace c4h::overlay
