#include "src/overlay/overlay.hpp"

#include <algorithm>

namespace c4h::overlay {

ChimeraNode& Overlay::create_node(const std::string& name, vmm::Host& host) {
  Key id = Key::from_name(name);
  // 40-bit space is large; collisions in a home cloud are vanishingly rare,
  // but perturb deterministically if one happens.
  int salt = 0;
  while (nodes_by_key_.contains(id)) {
    id = Key::from_name(name + "#" + std::to_string(++salt));
  }
  nodes_.push_back(std::make_unique<ChimeraNode>(id, name, host));
  ChimeraNode& n = *nodes_.back();
  nodes_by_key_.emplace(id, &n);
  return n;
}

sim::Task<Result<void>> Overlay::join(ChimeraNode& node, ChimeraNode* bootstrap) {
  if (bootstrap == nullptr) {
    node.host().set_online(true);
    node.set_in_ring(true);
    if (join_hook_) co_await join_hook_(node);
    co_return Result<void>{};
  }
  if (!bootstrap->online()) co_return Error{Errc::unavailable, "bootstrap offline"};
  node.host().set_online(true);
  node.set_in_ring(true);

  // Route a join request from the bootstrap toward the joiner's id, copying
  // state from each node on the path (Pastry-style: hop i contributes the
  // peers it knows; the final owner contributes its leaf set, which contains
  // the joiner's future ring neighbours).
  ChimeraNode* cur = bootstrap;
  int hops = 0;
  for (;;) {
    ++stats_.join_messages;
    // The joiner learns the hop and everything in the hop's leaf set.
    node.add_peer(cur->id(), PeerInfo{cur->net_node()});
    for (const Key k : cur->leaf_set()) {
      if (const ChimeraNode* p = node_by_key(k); p != nullptr) {
        node.add_peer(k, PeerInfo{p->net_node()});
      }
    }
    const Key next = cur->next_hop(node.id());
    if (next == cur->id()) break;
    ChimeraNode* nn = node_by_key(next);
    co_await net_.send_message(cur->net_node(), nn->net_node());
    co_await sim_.delay(config_.per_hop_processing);
    if (!nn->online()) {
      co_await sim_.delay(config_.probe_timeout);
      cur->remove_peer(next);
      continue;
    }
    cur = nn;
    if (++hops > config_.max_hops) co_return Error{Errc::no_route, "join exceeded max hops"};
  }

  co_await announce(node);
  if (join_hook_) co_await join_hook_(node);
  if (stabilizing_) sim_.spawn(stabilize_loop(node));
  co_return Result<void>{};
}

sim::Task<Result<void>> Overlay::restart(ChimeraNode& node, ChimeraNode* bootstrap) {
  node.forget_all_peers();
  ++stats_.restarts;
  co_return co_await join(node, bootstrap);
}

sim::Task<> Overlay::announce(ChimeraNode& joiner) {
  // "Whenever a node enters or exits, it sends a message to its right and
  // left nodes in the logical tree structure" — plus, at home-cloud scale,
  // every other peer it has learned of, so small overlays converge to full
  // membership immediately.
  for (const Key k : joiner.known_peers()) {
    ChimeraNode* p = node_by_key(k);
    if (p == nullptr || !p->online()) continue;
    ++stats_.join_messages;
    co_await net_.send_message(joiner.net_node(), p->net_node());
    p->add_peer(joiner.id(), PeerInfo{joiner.net_node()});
  }
}

sim::Task<> Overlay::leave(ChimeraNode& node) {
  if (leave_hook_) co_await leave_hook_(node);
  for (const Key k : node.known_peers()) {
    ChimeraNode* p = node_by_key(k);
    if (p == nullptr || !p->online()) continue;
    ++stats_.maintenance_messages;
    co_await net_.send_message(node.net_node(), p->net_node());
    p->remove_peer(node.id());
  }
  node.host().set_online(false);
  node.set_in_ring(false);
}

sim::Task<Result<RouteResult>> Overlay::route(ChimeraNode& origin, Key target,
                                              const std::function<bool(ChimeraNode&)>& stop_at,
                                              obs::Ctx ctx) {
  ++stats_.routes;
  obs::ScopedSpan sp(ctx, "overlay.route");
  RouteResult res;
  ChimeraNode* cur = &origin;
  if (!cur->online()) {
    sp.set_error("origin offline");
    co_return Error{Errc::unavailable, "origin offline"};
  }

  for (;;) {
    if (stop_at && cur != &origin && stop_at(*cur)) {
      res.owner = cur->id();
      stats_.route_hops += static_cast<std::uint64_t>(res.hops);
      sp.attr("hops", static_cast<std::uint64_t>(res.hops));
      co_return res;
    }
    const Key next = cur->next_hop(target);
    if (next == cur->id()) {
      res.owner = cur->id();
      stats_.route_hops += static_cast<std::uint64_t>(res.hops);
      sp.attr("hops", static_cast<std::uint64_t>(res.hops));
      co_return res;
    }
    ChimeraNode* nn = node_by_key(next);
    ++res.hops;
    ++stats_.route_hops;
    co_await net_.send_message(cur->net_node(), nn->net_node(), 50, sp.ctx());
    co_await sim_.delay(config_.per_hop_processing);
    if (!nn->online()) {
      // Next hop is dead: pay the probe timeout, drop it, try again.
      ++stats_.failures_detected;
      co_await sim_.delay(config_.probe_timeout);
      cur->remove_peer(next);
      continue;
    }
    if (res.hops > config_.max_hops) {
      sp.set_error("max hops");
      co_return Error{Errc::no_route, "route exceeded max hops"};
    }
    res.path.push_back(next);
    cur = nn;
  }
}

void Overlay::start_stabilization() {
  if (stabilizing_) return;
  stabilizing_ = true;
  for (auto& n : nodes_) {
    if (n->online()) sim_.spawn(stabilize_loop(*n));
  }
}

sim::Task<> Overlay::stabilize_loop(ChimeraNode& node) {
  // One loop per incarnation: after a crash the node's incarnation bumps,
  // this loop retires at its next tick, and the rejoin spawns a fresh one.
  const std::uint64_t inc = node.incarnation();
  for (;;) {
    co_await sim_.delay(config_.stabilize_period);
    if (!node.online() || node.incarnation() != inc) co_return;

    // Heartbeat the left/right ring neighbours.
    for (const auto neighbor : {node.right_neighbor(), node.left_neighbor()}) {
      if (!neighbor.has_value()) continue;
      ChimeraNode* p = node_by_key(*neighbor);
      if (p == nullptr) continue;
      ++stats_.maintenance_messages;
      co_await net_.send_message(node.net_node(), p->net_node());
      if (p->online()) continue;

      // No heartbeat ack: declare dead, repair membership everywhere we can
      // reach, then let the KV layer restore replica counts.
      ++stats_.failures_detected;
      co_await sim_.delay(config_.probe_timeout);
      // The probe took real time: the neighbour may have restarted and
      // rejoined while we waited. Declaring a live node dead would tear its
      // (valid, current) state out of the ring — skip; its rejoin already
      // repaired membership.
      if (p->online()) continue;
      const Key dead = p->id();
      remove_everywhere(dead);
      if (failure_hook_) co_await failure_hook_(dead);
    }
  }
}

void Overlay::remove_everywhere(Key dead) {
  // Dissemination of the failure notice (flood at home-cloud scale); the
  // messages are counted as maintenance traffic but applied synchronously —
  // the convergence delay that matters (detection) was already paid.
  for (auto& n : nodes_) {
    if (n->online() && n->knows(dead)) {
      ++stats_.maintenance_messages;
      n->remove_peer(dead);
    }
  }
}

std::vector<ChimeraNode*> Overlay::live_members() {
  std::vector<ChimeraNode*> out;
  for (auto& n : nodes_) {
    if (n->online() && n->in_ring()) out.push_back(n.get());
  }
  return out;
}

std::vector<Key> Overlay::successors_of(Key node, int r) {
  std::vector<Key> live;
  for (auto& n : nodes_) {
    if (n->online() && n->in_ring() && n->id() != node) live.push_back(n->id());
  }
  std::sort(live.begin(), live.end(), [node](Key a, Key b) {
    return node.clockwise_distance(a) < node.clockwise_distance(b);
  });
  if (live.size() > static_cast<std::size_t>(r)) live.resize(static_cast<std::size_t>(r));
  return live;
}

Key Overlay::true_owner(Key key) {
  Key best{};
  std::uint64_t best_dist = UINT64_MAX;
  for (auto& n : nodes_) {
    if (!n->online() || !n->in_ring()) continue;
    const auto d = n->id().ring_distance(key);
    if (d < best_dist || (d == best_dist && n->id() < best)) {
      best = n->id();
      best_dist = d;
    }
  }
  return best;
}

}  // namespace c4h::overlay
