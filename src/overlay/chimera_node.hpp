// Per-node routing state of the Chimera-style structured overlay.
//
// Chimera [2] is a lightweight C implementation of prefix routing in the
// style of Tapestry/Pastry. Each node keeps:
//   * a "logical tree view of other nodes in the overlay, implemented as a
//     red-black tree" (§III-A) — our RbTree of known peers;
//   * a Pastry-style prefix routing table (one row per hex digit of the
//     40-bit key, one column per digit value);
//   * a leaf set (nearest ring neighbours on both sides), derived from the
//     tree view.
// next_hop() makes monotonic progress in ring distance, so routing always
// terminates, and terminates at the globally closest node whenever ring
// neighbours know each other (which join/leave/failure handling maintains).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "src/common/key.hpp"
#include "src/common/rbtree.hpp"
#include "src/net/topology.hpp"
#include "src/vmm/machine.hpp"

namespace c4h::overlay {

struct PeerInfo {
  net::NetNodeId net;
};

class ChimeraNode {
 public:
  static constexpr int kLeafRadius = 4;  // leaf set = 4 on each side

  ChimeraNode(Key id, std::string name, vmm::Host& host)
      : id_(id), name_(std::move(name)), host_(&host) {
    for (auto& row : rtable_) row.fill(std::nullopt);
  }

  Key id() const { return id_; }
  const std::string& name() const { return name_; }
  vmm::Host& host() const { return *host_; }
  bool online() const { return host_->online(); }
  net::NetNodeId net_node() const { return host_->net_node(); }

  /// True once the node has joined the overlay ring and until it gracefully
  /// leaves. A created-but-unjoined node (or one that left) is an island:
  /// its host may be online, but it owns no part of the keyspace and must
  /// not be counted as a member. Crashes leave the flag set — a crashed
  /// member is still a member until failure detection removes it, and
  /// `online()` already excludes it from ownership.
  bool in_ring() const { return in_ring_; }
  void set_in_ring(bool v) { in_ring_ = v; }

  std::size_t peer_count() const { return peers_.size(); }
  bool knows(Key k) const { return peers_.contains(k); }

  /// Crash/restart generation counter. Bumped by Overlay::crash so stale
  /// per-incarnation processes (stabilization loops) can notice they belong
  /// to a previous life of the node and exit.
  std::uint64_t incarnation() const { return incarnation_; }
  void bump_incarnation() { ++incarnation_; }

  /// Drops all routing state (peers, routing table, leaf set). A restarting
  /// node rejoins the overlay from scratch.
  void forget_all_peers() {
    for (const Key k : known_peers()) remove_peer(k);
  }

  void add_peer(Key k, PeerInfo info) {
    if (k == id_) return;
    peers_.insert(k, info);
    // Routing table slot: row = length of shared prefix, column = the
    // peer's digit at that position. First writer wins (Pastry keeps any
    // entry with the right prefix; proximity selection is out of scope).
    const int row = id_.shared_prefix_len(k);
    if (row < Key::kDigits) {
      auto& slot = rtable_[static_cast<std::size_t>(row)][k.digit(row)];
      if (!slot.has_value() || !peers_.contains(*slot)) slot = k;
    }
  }

  void remove_peer(Key k) {
    peers_.erase(k);
    const int row = id_.shared_prefix_len(k);
    if (row < Key::kDigits) {
      auto& slot = rtable_[static_cast<std::size_t>(row)][k.digit(row)];
      if (slot == k) slot = std::nullopt;
    }
  }

  /// All known peers, in key order.
  std::vector<Key> known_peers() const {
    std::vector<Key> out;
    out.reserve(peers_.size());
    peers_.for_each([&](const Key& k, const PeerInfo&) { out.push_back(k); });
    return out;
  }

  /// The leaf set: up to kLeafRadius ring neighbours on each side, from the
  /// red-black tree view.
  std::vector<Key> leaf_set() const {
    std::vector<Key> out;
    const auto n = peers_.size();
    if (n == 0) return out;
    if (n <= 2 * kLeafRadius) return known_peers();

    // Clockwise: successors of id_ in key order, wrapping.
    auto* start = peers_.lower_bound(id_);
    auto* cur = start;
    for (int i = 0; i < kLeafRadius; ++i) {
      if (cur == nullptr) cur = peers_.min();
      out.push_back(cur->key);
      cur = Tree::next(cur);
    }
    // Counter-clockwise: predecessors, wrapping.
    cur = start != nullptr ? Tree::prev(start) : peers_.max();
    for (int i = 0; i < kLeafRadius; ++i) {
      if (cur == nullptr) cur = peers_.max();
      out.push_back(cur->key);
      cur = Tree::prev(cur);
    }
    return out;
  }

  /// Ring neighbours: the immediate clockwise and counterclockwise peers
  /// ("a message to its right and left nodes in the logical tree").
  std::optional<Key> right_neighbor() const {
    if (peers_.empty()) return std::nullopt;
    auto* n = peers_.lower_bound(id_);
    return n != nullptr ? n->key : peers_.min()->key;
  }
  std::optional<Key> left_neighbor() const {
    if (peers_.empty()) return std::nullopt;
    auto* n = peers_.lower_bound(id_);
    auto* p = n != nullptr ? Tree::prev(n) : peers_.max();
    if (p == nullptr) p = peers_.max();
    return p->key;
  }

  /// Next hop toward `target`: prefix-routing with leaf-set shortcut and a
  /// numeric-progress fallback. Returns id() when this node is (as far as it
  /// knows) the owner.
  Key next_hop(Key target) const {
    if (peers_.empty() || target == id_) return id_;

    const std::uint64_t self_dist = id_.ring_distance(target);

    // Leaf-set shortcut: if a leaf (or we) is closest, deliver there.
    Key best = id_;
    std::uint64_t best_dist = self_dist;
    for (const Key l : leaf_set()) {
      const auto d = l.ring_distance(target);
      if (d < best_dist || (d == best_dist && l < best)) {
        best = l;
        best_dist = d;
      }
    }

    // Prefix routing: a peer sharing a strictly longer prefix with target.
    const int self_prefix = id_.shared_prefix_len(target);
    if (self_prefix < Key::kDigits) {
      const auto& slot =
          rtable_[static_cast<std::size_t>(self_prefix)][target.digit(self_prefix)];
      if (slot.has_value() && peers_.contains(*slot)) {
        const auto d = slot->ring_distance(target);
        if (d < best_dist) {
          best = *slot;
          best_dist = d;
        }
      }
    }

    if (best != id_ && best_dist < self_dist) return best;

    // Fallback: scan the tree view for any strictly closer node (rare; keeps
    // progress when the table is sparse).
    peers_.for_each([&](const Key& k, const PeerInfo&) {
      const auto d = k.ring_distance(target);
      if (d < best_dist || (d == best_dist && k < best)) {
        best = k;
        best_dist = d;
      }
    });
    // Equidistant nodes (one on each side of the key) resolve to the smaller
    // id, matching the global owner definition; this also guarantees the
    // tie-forwarding step cannot cycle.
    if (best_dist < self_dist) return best;
    if (best_dist == self_dist && best < id_) return best;
    return id_;
  }

  const PeerInfo* peer(Key k) const {
    auto* n = peers_.find(k);
    return n != nullptr ? &n->value : nullptr;
  }

 private:
  using Tree = RbTree<Key, PeerInfo>;

  Key id_;
  std::string name_;
  vmm::Host* host_;
  std::uint64_t incarnation_ = 0;
  bool in_ring_ = false;
  Tree peers_;
  std::array<std::array<std::optional<Key>, 16>, Key::kDigits> rtable_;
};

}  // namespace c4h::overlay
