#include "src/cloud/cloud.hpp"

namespace c4h::cloud {

sim::Task<Result<void>> S3Store::put(net::NetNodeId from, const std::string& url, Bytes size,
                                     obs::Ctx ctx) {
  obs::ScopedSpan sp(ctx, "s3.put");
  sp.attr("bytes", static_cast<std::uint64_t>(size));
  co_await net_.transfer(from, endpoint_, size, transport_.profile(), sp.ctx());
  objects_[url] = size;
  co_return Result<void>{};
}

sim::Task<Result<Bytes>> S3Store::get(net::NetNodeId to, const std::string& url, obs::Ctx ctx) {
  obs::ScopedSpan sp(ctx, "s3.get");
  const auto it = objects_.find(url);
  if (it == objects_.end()) {
    // The 404 still costs a round trip.
    co_await net_.send_message(to, endpoint_, 50, sp.ctx());
    co_await net_.send_message(endpoint_, to, 50, sp.ctx());
    sp.set_error("not found");
    co_return Error{Errc::not_found, "no such object: " + url};
  }
  const Bytes size = it->second;
  sp.attr("bytes", static_cast<std::uint64_t>(size));
  co_await net_.transfer(endpoint_, to, size, transport_.profile(), sp.ctx());
  co_return size;
}

sim::Task<Result<void>> S3Store::erase(net::NetNodeId from, const std::string& url, obs::Ctx ctx) {
  obs::ScopedSpan sp(ctx, "s3.erase");
  co_await net_.send_message(from, endpoint_, 50, sp.ctx());
  const bool existed = objects_.erase(url) > 0;
  co_await net_.send_message(endpoint_, from, 50, sp.ctx());
  if (!existed) {
    sp.set_error("not found");
    co_return Error{Errc::not_found, "no such object: " + url};
  }
  co_return Result<void>{};
}

Bytes S3Store::stored_bytes() const {
  Bytes b = 0;
  // c4h-lint: allow(R3) — integer byte sum; result is order-insensitive.
  for (const auto& [url, size] : objects_) b += size;
  return b;
}

}  // namespace c4h::cloud
