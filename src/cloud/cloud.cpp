#include "src/cloud/cloud.hpp"

namespace c4h::cloud {

sim::Task<Result<void>> S3Store::put(net::NetNodeId from, const std::string& url, Bytes size) {
  co_await net_.transfer(from, endpoint_, size, transport_.profile());
  objects_[url] = size;
  co_return Result<void>{};
}

sim::Task<Result<Bytes>> S3Store::get(net::NetNodeId to, const std::string& url) {
  const auto it = objects_.find(url);
  if (it == objects_.end()) {
    // The 404 still costs a round trip.
    co_await net_.send_message(to, endpoint_);
    co_await net_.send_message(endpoint_, to);
    co_return Error{Errc::not_found, "no such object: " + url};
  }
  const Bytes size = it->second;
  co_await net_.transfer(endpoint_, to, size, transport_.profile());
  co_return size;
}

sim::Task<Result<void>> S3Store::erase(net::NetNodeId from, const std::string& url) {
  co_await net_.send_message(from, endpoint_);
  const bool existed = objects_.erase(url) > 0;
  co_await net_.send_message(endpoint_, from);
  if (!existed) co_return Error{Errc::not_found, "no such object: " + url};
  co_return Result<void>{};
}

Bytes S3Store::stored_bytes() const {
  Bytes b = 0;
  // c4h-lint: allow(R3) — integer byte sum; result is order-insensitive.
  for (const auto& [url, size] : objects_) b += size;
  return b;
}

}  // namespace c4h::cloud
