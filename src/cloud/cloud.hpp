// Public-cloud substrate: S3-style blob storage and EC2-style compute.
//
// The prototype wraps Amazon's S3 (blocking TCP-based transfers, §IV) and
// runs face detection/recognition on EC2 instances. We stand in for the
// real services with the parts the evaluation depends on: a blob store
// reached over the WAN with S3's transport behaviour (TCP window growth to
// ~1.6 MB, ISP policing of long transfers) and instances that are simply
// big hosts attached at the cloud end of the WAN.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/result.hpp"
#include "src/net/network.hpp"
#include "src/net/tcp_model.hpp"
#include "src/obs/trace.hpp"
#include "src/vmm/machine.hpp"

namespace c4h::cloud {

/// Transport calibration for home↔cloud interactions (§V's testbed: wireless
/// uplink with ≈6.5 Mbps max down / 4.5 Mbps up, ≈1.5 Mbps average, high
/// variability; S3 grows the TCP window to ≈1.6 MB; ISPs police long
/// "bandwidth-hogging" transfers).
struct CloudTransport {
  Duration rtt = milliseconds(60);
  Bytes window_cap = Bytes{1638400};  // ≈1.6 MB
  Bytes slow_start_bytes = 3_MB;      // bytes before the window cap is reached
  double slow_start_fraction = 0.45;
  Bytes policing_burst = 30_MB;       // ISP token bucket
  double policed_fraction = 0.55;
  Duration handshake = milliseconds(90);  // TCP + HTTP request setup

  net::TcpProfile profile() const {
    net::TcpProfile p;
    p.rtt = rtt;
    p.window_cap = window_cap;
    p.slow_start_bytes = slow_start_bytes;
    p.slow_start_fraction = slow_start_fraction;
    p.policing_burst = policing_burst;
    p.policed_fraction = policed_fraction;
    p.handshake = handshake;
    return p;
  }
};

/// S3-style blob store. Objects are addressed by URL ("s3://bucket/name");
/// the stored value is the object's size (content is synthetic throughout
/// the simulation). All transfers are blocking calls over the WAN, per the
/// prototype's wrapper over the S3 interface.
class S3Store {
 public:
  S3Store(net::Network& net, net::NetNodeId cloud_endpoint, CloudTransport transport = {})
      : net_(net), endpoint_(cloud_endpoint), transport_(transport) {}

  static std::string url_for(const std::string& bucket, const std::string& object) {
    return "s3://" + bucket + "/" + object;
  }

  /// Uploads `size` bytes from `from` (a home node's network endpoint).
  /// A non-null `ctx` records an `s3.put` span over the WAN transfer.
  sim::Task<Result<void>> put(net::NetNodeId from, const std::string& url, Bytes size,
                              obs::Ctx ctx = {});

  /// Downloads the object to `to`; returns its size.
  sim::Task<Result<Bytes>> get(net::NetNodeId to, const std::string& url, obs::Ctx ctx = {});

  sim::Task<Result<void>> erase(net::NetNodeId from, const std::string& url, obs::Ctx ctx = {});

  bool exists(const std::string& url) const { return objects_.contains(url); }
  std::size_t object_count() const { return objects_.size(); }
  Bytes stored_bytes() const;
  net::NetNodeId endpoint() const { return endpoint_; }
  const CloudTransport& transport() const { return transport_; }

 private:
  net::Network& net_;
  net::NetNodeId endpoint_;
  CloudTransport transport_;
  std::unordered_map<std::string, Bytes> objects_;
};

/// EC2-style instance: a host attached at the cloud end of the WAN. The
/// "extra large" instance of §V has five 2.9 GHz CPUs and 14 GB memory.
class Ec2Instance {
 public:
  Ec2Instance(sim::Simulation& sim, net::NetNodeId cloud_endpoint, vmm::HostSpec spec)
      : host_(sim, std::move(spec)) {
    host_.set_net_node(cloud_endpoint);
  }

  static vmm::HostSpec extra_large_spec(const std::string& name = "ec2-xl") {
    vmm::HostSpec s;
    s.name = name;
    s.cores = 5;
    s.ghz = 2.9;
    s.memory = Bytes{14} * 1024 * 1024 * 1024;
    s.virt_overhead = 0.05;  // para-virtualized instance
    return s;
  }

  vmm::Host& host() { return host_; }
  vmm::Domain& domain() {
    if (domain_ == nullptr) {
      domain_ = &host_.create_guest(host_.name() + "/vm", host_.spec().cores,
                                    host_.spec().memory / 2);
    }
    return *domain_;
  }

 private:
  vmm::Host host_;
  vmm::Domain* domain_ = nullptr;
};

}  // namespace c4h::cloud
