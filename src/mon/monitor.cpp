#include "src/mon/monitor.hpp"

namespace c4h::mon {

Buffer ResourceRecord::serialize() const {
  Writer w;
  w.write(node.raw());
  w.write(cpu_load);
  w.write(free_memory);
  w.write(mandatory_bin_free);
  w.write(voluntary_bin_free);
  w.write(uplink_estimate);
  w.write(battery);
  w.write(battery_powered);
  w.write(sampled_at_ns);
  return std::move(w).take();
}

Result<ResourceRecord> ResourceRecord::deserialize(const Buffer& b) {
  Reader r{b};
  ResourceRecord rec;
  auto node = r.read<std::uint64_t>();
  if (!node) return node.error();
  rec.node = Key{*node};
  auto cpu = r.read_double();
  if (!cpu) return cpu.error();
  rec.cpu_load = *cpu;
  auto mem = r.read<Bytes>();
  if (!mem) return mem.error();
  rec.free_memory = *mem;
  auto mbin = r.read<Bytes>();
  if (!mbin) return mbin.error();
  rec.mandatory_bin_free = *mbin;
  auto vbin = r.read<Bytes>();
  if (!vbin) return vbin.error();
  rec.voluntary_bin_free = *vbin;
  auto up = r.read_double();
  if (!up) return up.error();
  rec.uplink_estimate = *up;
  auto bat = r.read_double();
  if (!bat) return bat.error();
  rec.battery = *bat;
  auto bp = r.read_bool();
  if (!bp) return bp.error();
  rec.battery_powered = *bp;
  auto ts = r.read<std::int64_t>();
  if (!ts) return ts.error();
  rec.sampled_at_ns = *ts;
  return rec;
}

ResourceRecord ResourceMonitor::sample() const {
  auto& host = node_.host();
  ResourceRecord rec;
  rec.node = node_.id();
  rec.cpu_load = host.cpu_utilization();
  rec.free_memory = host.free_memory();
  rec.mandatory_bin_free = watcher_.mandatory_free ? watcher_.mandatory_free() : 0;
  rec.voluntary_bin_free = watcher_.voluntary_free ? watcher_.voluntary_free() : 0;
  rec.uplink_estimate = uplink_;
  rec.battery = host.battery_fraction();
  rec.battery_powered = host.battery_powered();
  rec.sampled_at_ns = kv_.overlay().simulation().now().count();
  return rec;
}

sim::Task<> ResourceMonitor::publish_once() {
  if (!node_.online()) co_return;
  const ResourceRecord rec = sample();
  (void)co_await kv_.put(node_, node_.id(), rec.serialize(), kv::OverwritePolicy::overwrite);
  ++updates_;
}

sim::Task<> ResourceMonitor::loop() {
  auto& sim = kv_.overlay().simulation();
  // One loop per node incarnation: after a crash+restart the loop started for
  // the new life takes over and this one retires at its next tick.
  const std::uint64_t inc = node_.incarnation();
  for (;;) {
    co_await sim.delay(config_.period);
    if (!node_.online() || node_.incarnation() != inc) co_return;
    co_await publish_once();
  }
}

void ResourceMonitor::start() {
  kv_.overlay().simulation().spawn([](ResourceMonitor& m) -> sim::Task<> {
    co_await m.publish_once();
    co_await m.loop();
  }(*this));
}

sim::Task<Result<ResourceRecord>> fetch_record(kv::KvStore& kv, overlay::ChimeraNode& origin,
                                               Key node, obs::Ctx ctx) {
  auto raw = co_await kv.get(origin, node, ctx);
  if (!raw.ok()) co_return raw.error();
  co_return ResourceRecord::deserialize(*raw);
}

}  // namespace c4h::mon
