// Resource monitoring (§III-A Fig 2, §IV).
//
// Each node runs a monitoring utility (the prototype used Linux glibtop)
// that samples CPU load, free memory, bin space (via a file-system watcher),
// link bandwidth, and battery level, then publishes the serialized record
// into the key-value store under the node's own id after a configurable
// period "to contain messaging overheads". Placement decisions read these
// records via chimeraGetDecision().
#pragma once

#include <functional>
#include <optional>

#include "src/common/serial.hpp"
#include "src/kv/kvstore.hpp"
#include "src/overlay/overlay.hpp"
#include "src/vmm/machine.hpp"

namespace c4h::mon {

/// One node's published resource record.
struct ResourceRecord {
  Key node;
  double cpu_load = 0;            // [0,1]
  Bytes free_memory = 0;
  Bytes mandatory_bin_free = 0;   // local object-store space
  Bytes voluntary_bin_free = 0;   // space volunteered to the pool
  Rate uplink_estimate = 0;       // bytes/sec the node believes it can push
  double battery = 1.0;           // [0,1]; 1.0 when mains powered
  bool battery_powered = false;
  std::int64_t sampled_at_ns = 0; // staleness measure for decisions

  Buffer serialize() const;
  static Result<ResourceRecord> deserialize(const Buffer& b);
};

/// Callback giving the monitor access to bin occupancy — implemented by the
/// VStore++ object store ("a simple file system watcher component keeps
/// track of mandatory and voluntary bin space").
struct BinWatcher {
  std::function<Bytes()> mandatory_free;
  std::function<Bytes()> voluntary_free;
};

struct MonitorConfig {
  Duration period = seconds(2);  // update interval (configurable, §IV)
};

/// Periodic publisher of one node's resources into the KV store.
class ResourceMonitor {
 public:
  ResourceMonitor(overlay::ChimeraNode& node, kv::KvStore& kv, BinWatcher watcher,
                  MonitorConfig config = {})
      : node_(node), kv_(kv), watcher_(std::move(watcher)), config_(config) {}

  /// Starts the periodic update loop (detached on the simulation).
  void start();

  /// Takes one sample from the live host state.
  ResourceRecord sample() const;

  /// Publishes a sample immediately (also used at startup so records exist
  /// before the first period elapses).
  sim::Task<> publish_once();

  std::uint64_t updates_published() const { return updates_; }

  /// Manually set the uplink estimate (wired by the home-cloud builder from
  /// the node's access-link capacity).
  void set_uplink_estimate(Rate r) { uplink_ = r; }

 private:
  sim::Task<> loop();

  overlay::ChimeraNode& node_;
  kv::KvStore& kv_;
  BinWatcher watcher_;
  MonitorConfig config_;
  Rate uplink_ = 0;
  std::uint64_t updates_ = 0;
};

/// Reads another node's most recent record from the KV store. A non-null
/// `ctx` attributes the underlying `kv.get` to the caller's span.
[[nodiscard]] sim::Task<Result<ResourceRecord>> fetch_record(kv::KvStore& kv, overlay::ChimeraNode& origin,
                                               Key node, obs::Ctx ctx = {});

}  // namespace c4h::mon
