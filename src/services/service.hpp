// Data-manipulation services and their profiles (§III-A, §IV).
//
// VStore++ associates processing with object access: face detection (CPU-
// intensive) and face recognition (memory-intensive, needs the training
// set) for home surveillance, and x264 transcoding for media conversion.
// "Additional service information is maintained in service profiles, which
// encode the minimum resource requirements for a service for a given SLA
// for the different types of nodes. Our current assumption is that such
// profiles are determined a priori."
//
// A profile models a service's cost as work (gigacycles) that is affine in
// the input size, a usable parallelism bound, and a working set; execution
// on a domain pays the memory-thrash multiplier when the working set
// exceeds the domain's memory (how Fig 7's S2 falls over on 2 MB images).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/serial.hpp"
#include "src/common/units.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/task.hpp"
#include "src/vmm/machine.hpp"

namespace c4h::services {

struct ServiceProfile {
  std::string name;
  std::uint32_t id = 0;

  // Work model: gigacycles = fixed + per_mib × MiB + per_mib2 × MiB².
  // The quadratic term captures super-linear kernels (e.g. multi-scale
  // sliding-window detection, whose window count grows with pixel count at
  // every pyramid level).
  double fixed_gigacycles = 0.0;
  double gigacycles_per_mib = 1.0;
  double gigacycles_per_mib2 = 0.0;

  // Memory model: working set = base + per_input_byte × input bytes.
  Bytes working_set_base = 16_MB;
  double working_set_per_input = 1.0;

  int parallelism = 1;        // max threads the service can use
  double output_ratio = 1.0;  // |output| = ratio × |input|

  // Minimum resource requirements (the profile's per-SLA floor).
  Bytes min_memory = 64_MB;
  double min_ghz = 0.5;

  double work_for(Bytes input) const {
    const double mib = to_mib(input);
    return fixed_gigacycles + gigacycles_per_mib * mib + gigacycles_per_mib2 * mib * mib;
  }

  Bytes working_set_for(Bytes input) const {
    return working_set_base +
           static_cast<Bytes>(working_set_per_input * static_cast<double>(input));
  }

  Bytes output_size(Bytes input) const {
    return static_cast<Bytes>(output_ratio * static_cast<double>(input));
  }

  /// Whether a domain meets this profile's minimum requirements.
  bool admissible(const vmm::Domain& d) const {
    return d.memory() >= min_memory && d.host().spec().ghz * d.vcpus() >= min_ghz;
  }

  /// Estimated execution time on a domain assuming no competing load — the
  /// estimate the decision engine uses ("the service processing requirements
  /// and execution time ... maintained for each node as part of the service
  /// profile").
  Duration estimate(const vmm::Domain& d, Bytes input) const {
    const int threads = std::max(1, std::min(parallelism, d.vcpus()));
    const double rate =
        threads * d.host().spec().ghz * (1.0 - d.host().spec().virt_overhead);
    const double slow = vmm::memory_slowdown(working_set_for(input), d.memory());
    return from_seconds(work_for(input) * slow / rate);
  }

  std::string registry_key_name() const { return name + "#" + std::to_string(id); }
};

/// Executes the service on `domain`, paying the memory-thrash multiplier and
/// competing with other load on the host. Returns the output object size.
/// A non-null `ctx` records a `svc.exec` span with the service name and
/// input/output sizes.
sim::Task<Bytes> execute_service(const ServiceProfile& profile, vmm::Domain& domain,
                                 Bytes input, obs::Ctx ctx = {});

// --- The paper's three services, with calibrated cost models -------------

/// OpenCV-style face detection: CPU-bound sliding-window scan.
ServiceProfile face_detect_profile();

/// OpenCV-style face recognition against a training set: memory-bound; the
/// training set dominates the working set ("the training data for FRec is
/// usually very large").
ServiceProfile face_recognize_profile(Bytes training_set = 60_MB);

/// x264 `.avi → .mp4` downconversion: CPU-bound encode; output smaller than
/// input.
ServiceProfile x264_profile();

}  // namespace c4h::services
