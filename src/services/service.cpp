#include "src/services/service.hpp"

namespace c4h::services {

sim::Task<Bytes> execute_service(const ServiceProfile& profile, vmm::Domain& domain,
                                 Bytes input, obs::Ctx ctx) {
  obs::ScopedSpan sp(ctx, "svc.exec");
  sp.attr("service", profile.name);
  sp.attr("input_bytes", static_cast<std::uint64_t>(input));
  const double slow = vmm::memory_slowdown(profile.working_set_for(input), domain.memory());
  const double work = profile.work_for(input) * slow;
  co_await domain.host().execute(domain, work, profile.parallelism);
  const Bytes out = profile.output_size(input);
  sp.attr("output_bytes", static_cast<std::uint64_t>(out));
  co_return out;
}

ServiceProfile face_detect_profile() {
  ServiceProfile p;
  p.name = "face-detect";
  p.id = 1;
  p.fixed_gigacycles = 0.02;
  p.gigacycles_per_mib = 0.4;   // cascade scan over the image
  p.gigacycles_per_mib2 = 0.5;  // window pyramid grows super-linearly
  p.working_set_base = 20_MB;
  p.working_set_per_input = 2.0;  // image + integral images
  p.parallelism = 4;              // scales across windows
  p.output_ratio = 1.0;           // annotated image, same size regime
  p.min_memory = 64_MB;
  p.min_ghz = 0.5;
  return p;
}

ServiceProfile face_recognize_profile(Bytes training_set) {
  ServiceProfile p;
  p.name = "face-recognize";
  p.id = 2;
  p.fixed_gigacycles = 0.05;
  p.gigacycles_per_mib = 0.8;   // projection against the training gallery
  p.gigacycles_per_mib2 = 1.1;  // eigen-decomposition cost per resolution
  p.working_set_base = training_set;
  p.working_set_per_input = 95.0;  // eigen-space blowup per input byte
  p.parallelism = 2;               // memory-bound; little thread scaling
  p.output_ratio = 0.0;            // output is just the best-match id
  p.min_memory = 96_MB;
  p.min_ghz = 0.5;
  return p;
}

ServiceProfile x264_profile() {
  ServiceProfile p;
  p.name = "x264-transcode";
  p.id = 3;
  p.fixed_gigacycles = 0.5;     // muxer/encoder setup
  p.gigacycles_per_mib = 8.0;   // CPU-intensive encode
  p.working_set_base = 48_MB;
  p.working_set_per_input = 0.2;  // streaming; small window of frames
  p.parallelism = 4;              // slice threads
  p.output_ratio = 0.4;           // downconversion shrinks the file
  p.min_memory = 96_MB;
  p.min_ghz = 0.8;
  return p;
}

}  // namespace c4h::services
