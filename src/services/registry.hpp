// Service discovery through the key-value store (§IV "Metadata management
// and service discovery"): every node registers its deployed services under
// key = hash(service name ++ service id); the value is the list of nodes
// currently offering the service. Profiles themselves are known a priori.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/kv/kvstore.hpp"
#include "src/services/service.hpp"

namespace c4h::services {

class ServiceRegistry {
 public:
  explicit ServiceRegistry(kv::KvStore& kv) : kv_(kv) {}

  /// Makes a profile known (the a-priori deployment-time step).
  void add_profile(ServiceProfile profile) {
    profiles_.emplace(profile.registry_key_name(), std::move(profile));
  }

  const ServiceProfile* profile(const std::string& name, std::uint32_t id) const {
    return profile_by_key_name(name + "#" + std::to_string(id));
  }

  const ServiceProfile* profile_by_key_name(const std::string& key_name) const {
    const auto it = profiles_.find(key_name);
    return it != profiles_.end() ? &it->second : nullptr;
  }

  static Key registry_key(const ServiceProfile& p) {
    return Key::from_name("service:" + p.registry_key_name());
  }

  /// Registers `node` as offering the service (read-modify-write of the node
  /// list in the KV store).
  [[nodiscard]] sim::Task<Result<void>> register_node(overlay::ChimeraNode& node, const ServiceProfile& p) {
    const Key k = registry_key(p);
    std::vector<Key> nodes;
    auto existing = co_await kv_.get(node, k);
    if (existing.ok()) {
      auto parsed = parse_nodes(*existing);
      if (!parsed.ok()) co_return parsed.error();
      nodes = std::move(*parsed);
    }
    if (std::find(nodes.begin(), nodes.end(), node.id()) == nodes.end()) {
      nodes.push_back(node.id());
    }
    co_return co_await kv_.put(node, k, encode_nodes(nodes));
  }

  [[nodiscard]] sim::Task<Result<void>> deregister_node(overlay::ChimeraNode& node, const ServiceProfile& p) {
    const Key k = registry_key(p);
    auto existing = co_await kv_.get(node, k);
    if (!existing.ok()) co_return existing.error();
    auto parsed = parse_nodes(*existing);
    if (!parsed.ok()) co_return parsed.error();
    std::erase(*parsed, node.id());
    co_return co_await kv_.put(node, k, encode_nodes(*parsed));
  }

  /// Nodes currently offering the service, looked up from `origin`.
  [[nodiscard]] sim::Task<Result<std::vector<Key>>> lookup(overlay::ChimeraNode& origin,
                                             const ServiceProfile& p) {
    auto raw = co_await kv_.get(origin, registry_key(p));
    if (!raw.ok()) co_return raw.error();
    co_return parse_nodes(*raw);
  }

 private:
  static Buffer encode_nodes(const std::vector<Key>& nodes) {
    Writer w;
    w.write_vector(nodes, [](Writer& ww, Key k) { ww.write(k.raw()); });
    return std::move(w).take();
  }

  static Result<std::vector<Key>> parse_nodes(const Buffer& b) {
    Reader r{b};
    return r.read_vector<Key>([](Reader& rr) -> Result<Key> {
      auto raw = rr.read<std::uint64_t>();
      if (!raw) return raw.error();
      return Key{*raw};
    });
  }

  kv::KvStore& kv_;
  std::unordered_map<std::string, ServiceProfile> profiles_;
};

}  // namespace c4h::services
