// Minimal JSON support for bench artifacts: a streaming writer with
// deterministic output (insertion-ordered keys, fixed number formatting)
// and a small recursive-descent parser used by the round-trip tests and
// any tool that consumes `BENCH_<name>.json`.
//
// Deliberately tiny — no external dependency, no DOM mutation API. The
// writer escapes per RFC 8259 (quote, backslash, control characters); the
// parser accepts exactly the JSON the writer produces plus ordinary
// whitespace, numbers with exponents, and unicode escapes for the ASCII
// range.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.hpp"

namespace c4h::obs {

/// Streaming JSON writer. Commas and nesting are managed internally:
///   JsonWriter w;
///   w.begin_object().key("seed").value(42).key("series").begin_array()...
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  // per nesting level: no element emitted yet
  bool pending_key_ = false;
};

/// Parsed JSON value. Object members keep document order.
struct JsonValue {
  enum class Kind : std::uint8_t { null_v, boolean, number, string, array, object };

  Kind kind = Kind::null_v;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;                              // array
  std::vector<std::pair<std::string, JsonValue>> members;    // object

  /// First member with key `k`, or nullptr.
  const JsonValue* find(const std::string& k) const {
    for (const auto& [key, v] : members) {
      if (key == k) return &v;
    }
    return nullptr;
  }
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Result<JsonValue> json_parse(const std::string& text);

}  // namespace c4h::obs
