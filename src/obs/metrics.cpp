#include "src/obs/metrics.hpp"

#include <algorithm>

namespace c4h::obs {

std::uint64_t LogHistogram::quantile(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the k-th smallest value with k = ceil(p/100 * n), at
  // least 1 so p=0 reports the minimum's bucket.
  const double exact = p / 100.0 * static_cast<double>(total_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_low(i);
  }
  return bucket_low(kBuckets - 1);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

void LogHistogram::subtract(const LogHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    auto& mine = counts_[static_cast<std::size_t>(i)];
    const auto theirs = other.counts_[static_cast<std::size_t>(i)];
    mine = mine > theirs ? mine - theirs : 0;
  }
  total_ = total_ > other.total_ ? total_ - other.total_ : 0;
  sum_ = sum_ > other.sum_ ? sum_ - other.sum_ : 0;
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) s.histograms.emplace(name, *h);
  return s;
}

Snapshot Registry::diff(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it != before.counters.end() ? it->second : 0;
    d.counters.emplace(name, v > base ? v - base : 0);
  }
  d.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    LogHistogram interval = h;
    const auto it = before.histograms.find(name);
    if (it != before.histograms.end()) interval.subtract(it->second);
    d.histograms.emplace(name, interval);
  }
  return d;
}

}  // namespace c4h::obs
