// Machine-readable bench artifacts.
//
// Every experiment binary emits `BENCH_<name>.json` next to its human table
// so CI can archive a perf trajectory across PRs. Schema `c4h-bench-v1`
// (DESIGN.md §10):
//
//   {
//     "schema": "c4h-bench-v1",
//     "bench": "<binary name>",
//     "seed": <uint>,
//     "run_id": <uint>,              // splitmix64 of the seed
//     "meta": { "<key>": "<value>", ... },
//     "series": [
//       {"label": "...", "metric": "...", "value": <number>, "unit": "..."},
//       ...
//     ]
//   }
//
// Keys are emitted in a fixed order and `meta`/`series` preserve insertion
// order, so two runs of the same seed produce byte-identical files.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.hpp"

namespace c4h::obs {

class LogHistogram;  // metrics.hpp

struct BenchPoint {
  std::string label;   // row / series key, e.g. "10MB" or "home_vs_remote"
  std::string metric;  // measured quantity, e.g. "fetch.total"
  double value = 0.0;
  std::string unit;    // "ms", "MiB/s", "count", ...
};

class BenchReport {
 public:
  BenchReport(std::string bench, std::uint64_t seed);

  /// Free-form run metadata ("quick" → "true", config knobs, ...).
  void meta(std::string key, std::string value);

  void add(std::string label, std::string metric, double value, std::string unit);

  const std::vector<BenchPoint>& series() const { return series_; }

  /// The full document, deterministically serialized.
  std::string json() const;

  /// Writes `<dir>/BENCH_<bench>.json`; returns the path written.
  Result<std::string> write(const std::string& dir = ".") const;

 private:
  std::string bench_;
  std::uint64_t seed_;
  std::uint64_t run_id_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<BenchPoint> series_;
};

/// Appends the tail-latency rows for one histogram whose samples are
/// nanoseconds: `<metric>.count`, `.mean`, `.p50`, `.p99`, `.p999` (times in
/// ms). Quantiles are LogHistogram bucket lower bounds — deterministic,
/// integer-only, ≤2× relative error — so same-seed runs emit byte-identical
/// tails. This is the c4h-bench-v1 extension the workload scenarios use:
/// tails, not means, are the tracked production numbers (ROADMAP item 3).
void add_latency_tails(BenchReport& report, const std::string& label,
                       const std::string& metric, const LogHistogram& h);

}  // namespace c4h::obs
