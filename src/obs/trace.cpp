#include "src/obs/trace.hpp"

#include <cstdio>

namespace c4h::obs {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Tracer::Tracer(sim::Simulation& sim, std::uint64_t seed)
    : sim_(sim), run_id_(splitmix(seed)) {}

SpanId Tracer::begin(std::string name, SpanId parent) {
  Span s;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.name = std::move(name);
  s.start = sim_.now();
  s.end = s.start;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::attr(SpanId id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::end(SpanId id, SpanStatus status, std::string note) {
  if (id == 0 || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (s.finished) return;
  s.end = sim_.now();
  s.status = status;
  s.note = std::move(note);
  s.finished = true;
}

const Span* Tracer::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

const Span* Tracer::find_by_name(const std::string& name) const {
  for (const Span& s : spans_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Span*> Tracer::children(SpanId parent) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.parent == parent && s.id != parent) out.push_back(&s);
  }
  return out;
}

std::vector<const Span*> Tracer::roots() const { return children(0); }

int Tracer::depth_below(SpanId root) const {
  int deepest = 0;
  for (const Span* c : children(root)) {
    const int d = 1 + depth_below(c->id);
    if (d > deepest) deepest = d;
  }
  return deepest;
}

Duration Tracer::sum_in_subtree(SpanId root, const std::string& name) const {
  Duration total{};
  for (const Span* c : children(root)) {
    if (c->name == name) total += c->duration();
    total += sum_in_subtree(c->id, name);
  }
  return total;
}

int Tracer::count_in_subtree(SpanId root, const std::string& name) const {
  int n = 0;
  for (const Span* c : children(root)) {
    if (c->name == name) ++n;
    n += count_in_subtree(c->id, name);
  }
  return n;
}

void Tracer::render_into(SpanId id, int indent, bool with_timing, std::string& out) const {
  const Span* s = find(id);
  if (s == nullptr) return;
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
  out += s->name;
  for (const auto& [k, v] : s->attrs) {
    out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  if (s->status == SpanStatus::error) {
    out += " !error";
    if (!s->note.empty()) {
      out += '(';
      out += s->note;
      out += ')';
    }
  }
  if (with_timing) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " @%lld+%lldns",
                  static_cast<long long>(s->start.count()),
                  static_cast<long long>(s->duration().count()));
    out += buf;
  }
  out += '\n';
  for (const Span* c : children(id)) {
    render_into(c->id, indent + 1, with_timing, out);
  }
}

std::string Tracer::render(SpanId root, bool with_timing) const {
  std::string out;
  render_into(root, 0, with_timing, out);
  return out;
}

std::string Tracer::render_all(bool with_timing) const {
  std::string out;
  for (const Span* r : roots()) {
    render_into(r->id, 0, with_timing, out);
  }
  return out;
}

}  // namespace c4h::obs
