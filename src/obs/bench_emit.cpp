#include "src/obs/bench_emit.hpp"

#include <cstdio>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"

namespace c4h::obs {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

BenchReport::BenchReport(std::string bench, std::uint64_t seed)
    : bench_(std::move(bench)), seed_(seed), run_id_(splitmix(seed)) {}

void BenchReport::meta(std::string key, std::string value) {
  meta_.emplace_back(std::move(key), std::move(value));
}

void BenchReport::add(std::string label, std::string metric, double value, std::string unit) {
  series_.push_back(BenchPoint{std::move(label), std::move(metric), value, std::move(unit)});
}

std::string BenchReport::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("c4h-bench-v1");
  w.key("bench").value(bench_);
  w.key("seed").value(seed_);
  w.key("run_id").value(run_id_);
  w.key("meta").begin_object();
  for (const auto& [k, v] : meta_) w.key(k).value(v);
  w.end_object();
  w.key("series").begin_array();
  for (const BenchPoint& p : series_) {
    w.begin_object();
    w.key("label").value(p.label);
    w.key("metric").value(p.metric);
    w.key("value").value(p.value);
    w.key("unit").value(p.unit);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

Result<std::string> BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + bench_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error{Errc::io_error, "cannot open " + path + " for writing"};
  }
  const std::string doc = json();
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (n != doc.size() || !closed) {
    return Error{Errc::io_error, "short write to " + path};
  }
  return path;
}

void add_latency_tails(BenchReport& report, const std::string& label,
                       const std::string& metric, const LogHistogram& h) {
  constexpr double kNsToMs = 1e-6;
  report.add(label, metric + ".count", static_cast<double>(h.count()), "count");
  report.add(label, metric + ".mean", h.mean() * kNsToMs, "ms");
  report.add(label, metric + ".p50", static_cast<double>(h.quantile(50.0)) * kNsToMs, "ms");
  report.add(label, metric + ".p99", static_cast<double>(h.quantile(99.0)) * kNsToMs, "ms");
  report.add(label, metric + ".p999", static_cast<double>(h.quantile(99.9)) * kNsToMs, "ms");
}

}  // namespace c4h::obs
