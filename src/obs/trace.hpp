// Deterministic operation tracing — the spans behind Table I's per-phase
// cost attribution.
//
// Every VStore++ operation (store / fetch / process / fetch+process) opens a
// root span; the layers it crosses (KV, overlay, network, cloud, services)
// attach child spans for metadata round-trips, DHT hops, transfer segments
// and service execution. All timestamps come from the simulation clock and
// span ids are sequential per tracer, so for a given seed two runs produce
// byte-identical traces (the golden-trace suite asserts exactly this).
//
// Context is threaded explicitly: a layer API takes an `obs::Ctx` (tracer +
// parent span id) with a null default. A null context makes every recording
// call a no-op, so untraced hot paths pay only a pointer test — there is no
// ambient thread-local "current span", which would misattribute children
// when coroutines interleave at suspension points.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.hpp"
#include "src/sim/simulation.hpp"

namespace c4h::obs {

using SpanId = std::uint64_t;  // 0 = "no span"

enum class SpanStatus : std::uint8_t { ok, error };

/// One completed (or in-flight) span. Attributes keep insertion order so a
/// rendered trace is reproducible token-for-token.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 for roots
  std::string name;
  TimePoint start{};
  TimePoint end{};
  SpanStatus status = SpanStatus::ok;
  std::string note;  // error detail when status == error
  std::vector<std::pair<std::string, std::string>> attrs;
  bool finished = false;

  Duration duration() const { return end - start; }
};

/// In-memory trace sink + span factory. Owned by the deployment (HomeCloud);
/// disabled by default so the chaos/soak suites do not accumulate spans.
class Tracer {
 public:
  /// `seed` feeds the run id stamped on emitted traces; span ids themselves
  /// are sequential (creation order is already seed-determined).
  Tracer(sim::Simulation& sim, std::uint64_t seed);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Seed-derived identifier distinguishing runs in emitted artifacts.
  std::uint64_t run_id() const { return run_id_; }

  SpanId begin(std::string name, SpanId parent);
  void attr(SpanId id, std::string key, std::string value);
  void end(SpanId id, SpanStatus status, std::string note);

  // --- queries ------------------------------------------------------------
  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  void clear() { spans_.clear(); }

  const Span* find(SpanId id) const;
  /// First span (creation order) with this name, or nullptr.
  const Span* find_by_name(const std::string& name) const;
  /// Direct children of `parent`, in creation order.
  std::vector<const Span*> children(SpanId parent) const;
  /// Root spans (parent == 0), in creation order.
  std::vector<const Span*> roots() const;
  /// Longest root-to-leaf child chain below `root` (a direct child = 1).
  int depth_below(SpanId root) const;
  /// Sum of durations of spans named `name` in the subtree rooted at `root`
  /// (root excluded). Nested same-name spans are all counted; the
  /// instrumentation never nests a name under itself.
  Duration sum_in_subtree(SpanId root, const std::string& name) const;
  /// Number of spans named `name` in the subtree rooted at `root`.
  int count_in_subtree(SpanId root, const std::string& name) const;

  /// Renders the subtree under `root` as an indented tree, one span per
  /// line: name, attributes, error note — and, with `with_timing`, the start
  /// offset and duration in nanoseconds. Deterministic for a given seed.
  std::string render(SpanId root, bool with_timing) const;
  /// Renders every root in creation order.
  std::string render_all(bool with_timing) const;

 private:
  void render_into(SpanId id, int indent, bool with_timing, std::string& out) const;

  sim::Simulation& sim_;
  std::uint64_t run_id_;
  bool enabled_ = false;
  std::vector<Span> spans_;  // id == index + 1
};

/// Trace context handed down the stack: where new child spans attach.
struct Ctx {
  Tracer* tracer = nullptr;
  SpanId parent = 0;

  bool on() const { return tracer != nullptr; }
};

/// RAII span: begins on construction (no-op for a null context), ends at
/// destruction unless ended explicitly. Safe inside coroutine frames — a
/// frame destroyed at simulation teardown closes its span then.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Ctx ctx, std::string name) {
    if (ctx.on()) {
      tracer_ = ctx.tracer;
      id_ = tracer_->begin(std::move(name), ctx.parent);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& o) noexcept { *this = std::move(o); }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      end();
      tracer_ = o.tracer_;
      id_ = o.id_;
      status_ = o.status_;
      note_ = std::move(o.note_);
      o.tracer_ = nullptr;
      o.id_ = 0;
    }
    return *this;
  }

  ~ScopedSpan() { end(); }

  /// Context for child spans of this one.
  Ctx ctx() const { return tracer_ != nullptr ? Ctx{tracer_, id_} : Ctx{}; }

  void attr(std::string key, std::string value) {
    if (tracer_ != nullptr) tracer_->attr(id_, std::move(key), std::move(value));
  }
  void attr(std::string key, std::uint64_t value) {
    attr(std::move(key), std::to_string(value));
  }

  /// Marks the span failed; recorded when the span ends.
  void set_error(std::string note) {
    status_ = SpanStatus::error;
    note_ = std::move(note);
  }

  void end() {
    if (tracer_ != nullptr) {
      tracer_->end(id_, status_, std::move(note_));
      tracer_ = nullptr;
      id_ = 0;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  SpanStatus status_ = SpanStatus::ok;
  std::string note_;
};

}  // namespace c4h::obs
