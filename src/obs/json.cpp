#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace c4h::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  // Integral doubles print as integers; everything else uses %.17g, which
  // round-trips and is deterministic across runs.
  char buf[40];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Error err(const std::string& what) const {
    return Error{Errc::invalid_argument,
                 "json parse error at offset " + std::to_string(pos) + ": " + what};
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Result<JsonValue> parse_value() {
    skip_ws();
    if (pos >= text.size()) return err("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return err(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> parse_object() {
    ++pos;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::object;
    skip_ws();
    if (eat('}')) return v;
    for (;;) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"') return err("expected member key");
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!eat(':')) return err("expected ':' after key");
      auto val = parse_value();
      if (!val.ok()) return val.error();
      v.members.emplace_back(*key, std::move(*val));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return v;
      return err("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parse_array() {
    ++pos;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::array;
    skip_ws();
    if (eat(']')) return v;
    for (;;) {
      auto val = parse_value();
      if (!val.ok()) return val.error();
      v.items.push_back(std::move(*val));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return v;
      return err("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos;  // '"'
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return err("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return err("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return err("bad hex digit in \\u escape");
          }
          // The writer only emits \u00XX for control characters; accept the
          // ASCII range and reject what we never produce.
          if (code > 0x7F) return err("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: return err(std::string("unknown escape '\\") + e + "'");
      }
    }
    return err("unterminated string");
  }

  Result<JsonValue> parse_string_value() {
    auto s = parse_string();
    if (!s.ok()) return s.error();
    JsonValue v;
    v.kind = JsonValue::Kind::string;
    v.str = std::move(*s);
    return v;
  }

  Result<JsonValue> parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::boolean;
    if (text.compare(pos, 4, "true") == 0) {
      v.b = true;
      pos += 4;
      return v;
    }
    if (text.compare(pos, 5, "false") == 0) {
      v.b = false;
      pos += 5;
      return v;
    }
    return err("bad literal");
  }

  Result<JsonValue> parse_null() {
    if (text.compare(pos, 4, "null") != 0) return err("bad literal");
    pos += 4;
    JsonValue v;
    v.kind = JsonValue::Kind::null_v;
    return v;
  }

  Result<JsonValue> parse_number() {
    const std::size_t start = pos;
    eat('-');
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (eat('.')) {
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos == start) return err("empty number");
    JsonValue v;
    v.kind = JsonValue::Kind::number;
    char* end = nullptr;
    v.num = std::strtod(text.c_str() + start, &end);
    if (end != text.c_str() + pos) return err("malformed number");
    return v;
  }
};

}  // namespace

Result<JsonValue> json_parse(const std::string& text) {
  Parser p{text};
  auto v = p.parse_value();
  if (!v.ok()) return v;
  p.skip_ws();
  if (p.pos != text.size()) return p.err("trailing content after document");
  return v;
}

}  // namespace c4h::obs
