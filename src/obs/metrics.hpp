// Metrics registry — named counters, gauges, and fixed-bucket log-scale
// histograms, with a snapshot/diff API.
//
// Naming convention (DESIGN.md §10): `c4h.<layer>.<op>.<stat>`, optionally
// qualified per node as `c4h.<layer>.<op>.<stat>{node=<name>}`. Hot paths
// register once and keep the returned pointer, so recording is a single
// increment; the registry's maps are ordered, so snapshots enumerate in a
// stable order regardless of registration history.
//
// The histogram is log₂-bucketed: bucket 0 holds the value 0, bucket i
// (1 ≤ i ≤ 64) holds values v with bit_width(v) == i, i.e. [2^(i-1), 2^i).
// Quantiles report the lower bound of the bucket containing the target rank
// — a deterministic, integer-only estimate with ≤ 2× relative error, which
// is exactly the resolution a latency trajectory across PRs needs.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace c4h::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class LogHistogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_index(std::uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v);
  }
  /// Smallest value the bucket can hold (0 for bucket 0, else 2^(i-1)).
  static std::uint64_t bucket_low(int i) {
    return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
  }

  void record(std::uint64_t v) {
    ++counts_[static_cast<std::size_t>(bucket_index(v))];
    ++total_;
    sum_ += v;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t bucket(int i) const { return counts_.at(static_cast<std::size_t>(i)); }
  double mean() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  /// p in [0, 100]. Nearest-rank over buckets; returns the lower bound of
  /// the bucket holding the rank-th smallest recorded value (0 when empty).
  std::uint64_t quantile(double p) const;

  /// Element-wise accumulation (combining per-node histograms).
  void merge(const LogHistogram& other);
  /// Element-wise subtraction (interval extraction between two snapshots).
  /// Buckets saturate at zero — callers diff a later snapshot by an earlier
  /// one of the same histogram, where counts are monotone.
  void subtract(const LogHistogram& other);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// A point-in-time copy of every metric. Counter/gauge values are plain
/// numbers; histograms are copied whole so interval quantiles can be
/// computed on the diff.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LogHistogram> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns (registering on first use) the named metric. Pointers remain
  /// valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  /// `c4h.vstore.fetch.count` + `home-1` → `c4h.vstore.fetch.count{node=home-1}`.
  static std::string qualify(const std::string& name, const std::string& node) {
    return name + "{node=" + node + "}";
  }

  Snapshot snapshot() const;

  /// Interval between two snapshots: counter deltas (after − before,
  /// saturating at zero; names only in `after` pass through), gauge values
  /// from `after`, histogram bucket differences.
  static Snapshot diff(const Snapshot& before, const Snapshot& after);

 private:
  // unique_ptr for address stability across rebalancing inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace c4h::obs
