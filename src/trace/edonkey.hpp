// eDonkey-style workload generation (§V-A "Tradeoffs in data placement").
//
// The paper modifies the eDonkey peer-to-peer dataset: clients are combined
// into 6 aggregate clients that together access 1300 files with repeated
// accesses, 60% store / 40% fetch. Files fall into the paper's size buckets
// — small (1-10 MB), medium (10-20), large (20-50), super-large (50-100) —
// and carry type tags (.mp3 files are the "private" data of the Fig 6
// policy). We generate that modified form directly, seeded and
// parameterized.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"

namespace c4h::trace {

enum class SizeBucket : std::uint8_t { small, medium, large, super_large };

constexpr const char* to_string(SizeBucket b) {
  switch (b) {
    case SizeBucket::small: return "small(1-10MB)";
    case SizeBucket::medium: return "medium(10-20MB)";
    case SizeBucket::large: return "large(20-50MB)";
    case SizeBucket::super_large: return "super-large(50-100MB)";
  }
  return "?";
}

struct BucketRange {
  Bytes lo;
  Bytes hi;
};

constexpr BucketRange bucket_range(SizeBucket b) {
  switch (b) {
    case SizeBucket::small: return {1_MB, 10_MB};
    case SizeBucket::medium: return {10_MB, 20_MB};
    case SizeBucket::large: return {20_MB, 50_MB};
    case SizeBucket::super_large: return {50_MB, 100_MB};
  }
  return {1_MB, 10_MB};
}

constexpr SizeBucket bucket_of(Bytes size) {
  if (size <= 10_MB) return SizeBucket::small;
  if (size <= 20_MB) return SizeBucket::medium;
  if (size <= 50_MB) return SizeBucket::large;
  return SizeBucket::super_large;
}

struct TraceFile {
  std::string name;
  std::string type;  // "mp3", "avi", "jpg", ...
  Bytes size = 0;
  bool is_private() const { return type == "mp3"; }
};

enum class OpKind : std::uint8_t { store, fetch };

struct TraceOp {
  OpKind kind;
  int client = 0;
  std::size_t file = 0;  // index into TraceWorkload::files
};

struct TraceConfig {
  int clients = 6;
  std::size_t file_count = 1300;
  std::size_t op_count = 2000;
  double store_fraction = 0.6;  // 60% store / 40% fetch
  double zipf_s = 0.8;          // popularity skew of repeated accesses
  std::uint64_t seed = 1;

  // Mix of size buckets (defaults roughly match a P2P file-sharing corpus:
  // mostly small media, a tail of big videos).
  double p_small = 0.55, p_medium = 0.25, p_large = 0.15;  // rest super-large
  double p_mp3 = 0.4;  // fraction of files that are .mp3 (private)

  // When set, all files are drawn from this size range instead of buckets
  // (§V-B restricts the dataset to the "optimal" 10-25 MB objects).
  std::optional<BucketRange> fixed_range;
};

struct TraceWorkload {
  std::vector<TraceFile> files;
  std::vector<TraceOp> ops;

  Bytes total_bytes() const {
    Bytes b = 0;
    for (const auto& f : files) b += f.size;
    return b;
  }

  std::size_t count(OpKind k) const {
    std::size_t n = 0;
    for (const auto& op : ops) n += (op.kind == k);
    return n;
  }
};

/// Generates the modified-eDonkey workload.
TraceWorkload generate(const TraceConfig& config);

}  // namespace c4h::trace
