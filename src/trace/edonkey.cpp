#include "src/trace/edonkey.hpp"

#include <cassert>

namespace c4h::trace {

namespace {

const char* pick_type(Rng& rng, const TraceConfig& cfg) {
  if (rng.chance(cfg.p_mp3)) return "mp3";
  static constexpr const char* kOthers[] = {"avi", "jpg", "mp4", "pdf", "iso"};
  return kOthers[rng.below(std::size(kOthers))];
}

Bytes pick_size(Rng& rng, const TraceConfig& cfg) {
  BucketRange range{};
  if (cfg.fixed_range.has_value()) {
    range = *cfg.fixed_range;
  } else {
    const double u = rng.uniform();
    SizeBucket b;
    if (u < cfg.p_small) {
      b = SizeBucket::small;
    } else if (u < cfg.p_small + cfg.p_medium) {
      b = SizeBucket::medium;
    } else if (u < cfg.p_small + cfg.p_medium + cfg.p_large) {
      b = SizeBucket::large;
    } else {
      b = SizeBucket::super_large;
    }
    range = bucket_range(b);
  }
  return range.lo + rng.below(range.hi - range.lo + 1);
}

}  // namespace

TraceWorkload generate(const TraceConfig& config) {
  assert(config.clients > 0 && config.file_count > 0);
  Rng rng{config.seed};
  TraceWorkload w;

  w.files.reserve(config.file_count);
  for (std::size_t i = 0; i < config.file_count; ++i) {
    TraceFile f;
    f.type = pick_type(rng, config);
    f.name = "edonkey/" + std::to_string(i) + "." + f.type;
    f.size = pick_size(rng, config);
    w.files.push_back(std::move(f));
  }

  // Every file must be stored before it can be fetched; the op stream
  // interleaves first-stores with Zipf-popular repeat accesses. To honour
  // the configured store fraction, repeat accesses are mostly fetches plus
  // re-stores (updates) as needed.
  w.ops.reserve(config.op_count);
  std::vector<bool> stored(config.file_count, false);
  std::size_t next_unstored = 0;

  for (std::size_t i = 0; i < config.op_count; ++i) {
    TraceOp op;
    op.client = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.clients)));
    const bool want_store = rng.chance(config.store_fraction);
    if (want_store && next_unstored < config.file_count) {
      op.kind = OpKind::store;
      op.file = next_unstored;
      stored[next_unstored] = true;
      ++next_unstored;
    } else {
      // Repeat access to an already-stored file, Zipf-popular.
      if (next_unstored == 0) {
        // Nothing stored yet: force a first store.
        op.kind = OpKind::store;
        op.file = 0;
        stored[0] = true;
        next_unstored = 1;
      } else {
        op.file = rng.zipf(next_unstored, config.zipf_s);
        op.kind = want_store ? OpKind::store : OpKind::fetch;  // re-store = update
      }
    }
    w.ops.push_back(op);
  }
  return w;
}

}  // namespace c4h::trace
