// Composable, deterministic workload generation and execution (ROADMAP
// item 3: "heavy-traffic multi-tenant workload suite").
//
// Two halves:
//
//  * generate() turns a WorkloadSpec — tenants with op mixes, Zipf
//    popularity, open-loop arrival rates, diurnal modulation, flash crowds —
//    into a Schedule: a global object catalog plus a time-sorted op list.
//    The schedule is a pure function of the spec (seed included): identical
//    specs produce byte-identical schedules (Schedule::fingerprint()).
//
//  * Driver replays a schedule against a live HomeCloud: it partitions the
//    home's nodes among tenants (each node's application VM acts as its
//    tenant's principal), preloads the catalogs, fires open-loop ops at
//    their scheduled times (requests do NOT wait for each other — queues
//    build when the system falls behind, as in production), runs closed-loop
//    clients with think times, and records per-tenant/per-op latency
//    histograms into the deployment's obs::Registry for tail-latency
//    (p50/p99/p999) extraction.
//
// from_trace() adapts the modified-eDonkey generator (src/trace) into a
// Schedule, pacing the trace's op list as an open-loop Poisson stream.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/obs/bench_emit.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"
#include "src/trace/edonkey.hpp"
#include "src/vstore/home_cloud.hpp"
#include "src/workload/popularity.hpp"
#include "src/workload/tenant.hpp"

namespace c4h::workload {

struct WorkloadSpec {
  std::vector<TenantSpec> tenants;
  Duration duration = seconds(60);
  DiurnalSpec diurnal;
  std::vector<FlashCrowdSpec> flash_crowds;
  std::uint64_t seed = 1;
};

/// One catalog entry. Sizes are fixed at generation time, so a fetch that
/// returns a size other than the catalog's is wrong data, not bad luck.
struct ObjectSpec {
  std::string name;
  std::string type = "jpg";
  Bytes size = 0;
  std::uint32_t tenant = 0;   // owning tenant; its principal/ACL go on the meta
  bool is_private = false;    // tagged "private" (untrusted VMs lose access)

  bool operator==(const ObjectSpec&) const = default;
};

struct ScheduledOp {
  TimePoint at{};  // relative to the measured run's start (preload excluded)
  std::uint32_t tenant = 0;
  OpKind kind = OpKind::fetch;
  std::uint32_t object = 0;  // index into Schedule::objects

  bool operator==(const ScheduledOp&) const = default;
};

struct Schedule {
  std::vector<ObjectSpec> objects;
  std::vector<ScheduledOp> ops;  // sorted by (at, tenant, per-tenant order)

  /// Deterministic byte serialization of the whole schedule; two schedules
  /// are identical iff their fingerprints are.
  std::string fingerprint() const;

  std::size_t count(OpKind k) const;
  std::size_t count_tenant(std::uint32_t t) const;
};

/// Builds the catalog and the open-loop op stream for every tenant, merged
/// into one time-ordered schedule. Closed-loop tenants contribute catalog
/// objects but no scheduled ops (the Driver runs their clients live).
Schedule generate(const WorkloadSpec& spec);

/// Object indices each tenant may fetch/process: its own catalog plus the
/// catalogs of its `fetch_from` tenants, in spec order. (Exposed so the
/// Driver's closed-loop sampling and generate() share one definition.)
std::vector<std::vector<std::uint32_t>> fetchable_sets(
    const WorkloadSpec& spec, const std::vector<ObjectSpec>& objects);

/// Adapts a modified-eDonkey trace into a schedule: file i becomes object i
/// owned by tenant (i mod clients); each trace op is paced by an exponential
/// gap at `rate_per_sec`. The caller's WorkloadSpec must declare `clients`
/// tenants (their mixes are ignored — the trace dictates the ops).
Schedule from_trace(const trace::TraceWorkload& w, int clients,
                    double rate_per_sec, std::uint64_t seed);

struct TenantStats {
  std::string name;
  std::array<std::uint64_t, 4> issued{};  // indexed by OpKind
  std::array<std::uint64_t, 4> ok{};
  std::uint64_t failed = 0;   // op returned an error (other than denial)
  std::uint64_t denied = 0;   // permission_denied from acl.hpp
  std::uint64_t skipped = 0;  // no online node / no service to run
  std::uint64_t wrong = 0;    // fetch returned a size ≠ catalog size

  std::uint64_t issued_total() const {
    return issued[0] + issued[1] + issued[2] + issued[3];
  }
  std::uint64_t ok_total() const { return ok[0] + ok[1] + ok[2] + ok[3]; }
};

struct DriveResult {
  std::vector<TenantStats> tenants;
  /// Acknowledged stores (preload + workload): object name → catalog size.
  /// The chaos suite re-reads these after faults settle — an acknowledged
  /// write that cannot be fetched back is a lost write.
  std::map<std::string, Bytes> acked;
  /// Failure breakdown: error-code name → count (covers the `failed` ops;
  /// denials are counted separately).
  std::map<std::string, std::uint64_t> errors;

  std::uint64_t issued() const;
  std::uint64_t ok() const;
  std::uint64_t failed() const;
  std::uint64_t denied() const;
  std::uint64_t wrong() const;
};

/// Executes a schedule against a HomeCloud. Construct, then `hc.run(
/// driver.drive(schedule))`; inspect `result()` afterwards. Latencies of
/// successful ops land in the deployment registry as
/// `c4h.workload.<op>.latency_ns{tenant=<name>}` histograms.
class Driver {
 public:
  Driver(vstore::HomeCloud& hc, WorkloadSpec spec);

  /// Partitions nodes among tenants, preloads every catalog object from its
  /// owner's nodes, then replays the schedule and runs closed-loop clients;
  /// completes once every issued op has finished.
  sim::Task<> drive(const Schedule& s);

  const DriveResult& result() const { return result_; }

 private:
  sim::Task<> preload(const Schedule& s);
  sim::Task<> replay(const Schedule& s);
  sim::Task<> tracked(ScheduledOp op, const Schedule& s);
  sim::Task<> closed_client(std::uint32_t tenant, std::uint64_t client_seed,
                            const Schedule& s);
  sim::Task<> execute(const ScheduledOp& op, const Schedule& s);
  vstore::VStoreNode* pick_node(std::uint32_t tenant);
  obs::LogHistogram& latency_histogram(std::uint32_t tenant, OpKind kind);

  vstore::HomeCloud& hc_;
  WorkloadSpec spec_;
  DriveResult result_;
  std::vector<std::vector<std::size_t>> tenant_nodes_;  // node indices per tenant
  std::vector<std::size_t> issue_rr_;                   // round-robin cursor
  std::vector<std::vector<std::uint32_t>> fetchable_;
  TimePoint start_time_{};
  TimePoint end_time_{};
  std::size_t pending_ = 0;
  bool draining_ = false;
  sim::Event done_;
};

/// Appends p50/p99/p999 (+ count and mean) rows to `report` for every
/// `c4h.workload.*.latency_ns{tenant=*}` histogram in the registry — the
/// c4h-bench-v1 tail-latency series every scenario bench emits.
void emit_tail_series(obs::BenchReport& report, const obs::Registry& registry);

}  // namespace c4h::workload
