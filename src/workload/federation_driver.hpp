// Workload replay over the city federation (ROADMAP item 2 meets item 3):
// tenants are spread across every home in every neighborhood, stores
// publish into the GeoFederation directory, and fetches go through its
// geo-aware replica selection — so a tenant whose `fetch_from` peers live
// in other neighborhoods generates genuine cross-neighborhood traffic, and
// the per-tenant tail histograms measure the two-tier fetch paths.
//
// The schedule contract is Driver's (same generate(), same open-loop
// replay, same per-tenant stats); only the execution surface differs:
// ops run against (home, federation) instead of a single home's VStore++.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/federation/geo_federation.hpp"
#include "src/workload/workload.hpp"

namespace c4h::workload {

struct FedDriveResult {
  std::vector<TenantStats> tenants;
  /// Successfully published objects (preload + re-stores): name → size.
  /// The chaos suite re-fetches these after churn settles.
  std::map<std::string, Bytes> published;
  std::map<std::string, std::uint64_t> errors;
  /// Fetches whose issuing tenant lives in a different neighborhood than
  /// the object's owner — the traffic the wide-area tier exists for.
  std::uint64_t cross_hood_fetches = 0;

  std::uint64_t issued() const;
  std::uint64_t ok() const;
  std::uint64_t failed() const;
};

/// Executes a Schedule against a City through a GeoFederation. Tenant t is
/// homed at `city.all_homes()[t % homes]` (interleaved across
/// neighborhoods, so consecutive tenants live in different neighborhoods
/// and `fetch_from` neighbors produce cross-neighborhood fetches).
/// Latencies land in the CITY registry as
/// `c4h.workload.fed_<op>.latency_ns{tenant=<name>}`.
class FederationDriver {
 public:
  FederationDriver(vstore::City& city, federation::GeoFederation& fed, WorkloadSpec spec);

  /// Preloads and publishes every catalog object from its owner's home,
  /// then replays the schedule open-loop; completes once every issued op
  /// has finished.
  sim::Task<> drive(const Schedule& s);

  const FedDriveResult& result() const { return result_; }

  /// The home serving a tenant (exposed for tests/benches to reason about
  /// expected locality).
  vstore::HomeCloud& tenant_home(std::uint32_t tenant) {
    return *homes_[tenant % homes_.size()];
  }

 private:
  sim::Task<> preload(const Schedule& s);
  sim::Task<> tracked(ScheduledOp op, const Schedule& s);
  sim::Task<> execute(const ScheduledOp& op, const Schedule& s);
  vstore::VStoreNode* pick_node(std::uint32_t tenant);
  obs::LogHistogram& latency_histogram(std::uint32_t tenant, OpKind kind);

  vstore::City& city_;
  federation::GeoFederation& fed_;
  WorkloadSpec spec_;
  FedDriveResult result_;
  std::vector<vstore::HomeCloud*> homes_;  // City::all_homes() order
  std::vector<std::size_t> issue_rr_;      // per-tenant node cursor
  TimePoint start_time_{};
  std::size_t pending_ = 0;
  bool draining_ = false;
  sim::Event done_;
};

}  // namespace c4h::workload
