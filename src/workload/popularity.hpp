// Object-popularity distributions for workload generation.
//
// Rng::zipf walks the pmf in O(n) per sample, which is fine for setup-sized
// draws but not for million-op schedules. ZipfTable precomputes the CDF once
// and samples by binary search, and exposes the analytic pmf so property
// tests can compare empirical frequencies against the exact distribution.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/common/rng.hpp"

namespace c4h::workload {

/// Zipf(s) over ranks [0, n): P(k) ∝ 1/(k+1)^s. O(n) construction,
/// O(log n) sampling.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double h = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      h += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = h;
    }
    for (double& c : cdf_) c /= h;
    cdf_.back() = 1.0;  // guard against accumulated rounding
  }

  std::size_t n() const { return cdf_.size(); }

  /// Exact probability of rank k.
  double pmf(std::size_t k) const {
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::size_t>(it - cdf_.begin());
    return idx < cdf_.size() ? idx : cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace c4h::workload
