#include "src/workload/workload.hpp"

#include <algorithm>
#include <cassert>

namespace c4h::workload {

namespace {

/// Indices of each tenant's own catalog objects, in catalog order.
std::vector<std::vector<std::uint32_t>> own_sets(std::size_t tenants,
                                                 const std::vector<ObjectSpec>& objects) {
  std::vector<std::vector<std::uint32_t>> own(tenants);
  for (std::uint32_t i = 0; i < objects.size(); ++i) {
    own[objects[i].tenant].push_back(i);
  }
  return own;
}

}  // namespace

std::string Schedule::fingerprint() const {
  std::string out;
  out.reserve(objects.size() * 24 + ops.size() * 24);
  for (const ObjectSpec& o : objects) {
    out += o.name;
    out += '|';
    out += o.type;
    out += '|';
    out += std::to_string(o.size);
    out += '|';
    out += std::to_string(o.tenant);
    out += o.is_private ? "|p\n" : "|-\n";
  }
  for (const ScheduledOp& op : ops) {
    out += std::to_string(op.at.count());
    out += ':';
    out += std::to_string(op.tenant);
    out += ':';
    out += to_string(op.kind);
    out += ':';
    out += std::to_string(op.object);
    out += '\n';
  }
  return out;
}

std::size_t Schedule::count(OpKind k) const {
  std::size_t n = 0;
  for (const ScheduledOp& op : ops) n += (op.kind == k);
  return n;
}

std::size_t Schedule::count_tenant(std::uint32_t t) const {
  std::size_t n = 0;
  for (const ScheduledOp& op : ops) n += (op.tenant == t);
  return n;
}

std::vector<std::vector<std::uint32_t>> fetchable_sets(
    const WorkloadSpec& spec, const std::vector<ObjectSpec>& objects) {
  const auto own = own_sets(spec.tenants.size(), objects);
  std::vector<std::vector<std::uint32_t>> fetchable(spec.tenants.size());
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    fetchable[t] = own[t];
    for (const std::string& other : spec.tenants[t].fetch_from) {
      for (std::size_t u = 0; u < spec.tenants.size(); ++u) {
        if (spec.tenants[u].name == other) {
          fetchable[t].insert(fetchable[t].end(), own[u].begin(), own[u].end());
        }
      }
    }
  }
  return fetchable;
}

Schedule generate(const WorkloadSpec& spec) {
  Schedule s;
  Rng root{spec.seed};

  // Catalog first: one forked stream per tenant, in declaration order, so a
  // tenant's objects do not depend on the other tenants' parameters.
  for (std::uint32_t t = 0; t < spec.tenants.size(); ++t) {
    const TenantSpec& ts = spec.tenants[t];
    Rng rng = root.fork();
    assert(ts.size.min <= ts.size.max);
    for (std::size_t i = 0; i < ts.object_count; ++i) {
      ObjectSpec o;
      o.name = ts.name + "/obj-" + std::to_string(i);
      o.type = ts.object_type;
      o.size = ts.size.min + rng.below(ts.size.max - ts.size.min + 1);
      o.tenant = t;
      o.is_private = ts.private_objects;
      s.objects.push_back(std::move(o));
    }
  }

  const auto own = own_sets(spec.tenants.size(), s.objects);
  const auto fetchable = fetchable_sets(spec, s.objects);
  const RateModulation mod{spec.diurnal, spec.flash_crowds};

  // Open-loop streams, one per tenant, merged by (time, tenant, sequence).
  struct Tagged {
    ScheduledOp op;
    std::uint32_t seq;
  };
  std::vector<Tagged> merged;
  for (std::uint32_t t = 0; t < spec.tenants.size(); ++t) {
    const TenantSpec& ts = spec.tenants[t];
    Rng arr_rng = root.fork();
    Rng op_rng = root.fork();
    if (ts.arrival.rate_per_sec <= 0.0) continue;
    assert(ts.mix.total() > 0.0);
    const ZipfTable own_zipf{std::max<std::size_t>(own[t].size(), 1), ts.zipf_s};
    const ZipfTable fetch_zipf{std::max<std::size_t>(fetchable[t].size(), 1), ts.zipf_s};
    std::uint32_t seq = 0;
    TimePoint at{};
    for (;;) {
      at += next_gap(ts.arrival, mod, at, arr_rng);
      if (at >= spec.duration) break;
      ScheduledOp op;
      op.at = at;
      op.tenant = t;
      op.kind = ts.mix.sample(op_rng);
      if (op.kind == OpKind::store) {
        assert(!own[t].empty());
        op.object = own[t][own_zipf.sample(op_rng)];
      } else {
        assert(!fetchable[t].empty());
        op.object = fetchable[t][fetch_zipf.sample(op_rng)];
      }
      merged.push_back(Tagged{op, seq++});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    if (a.op.at != b.op.at) return a.op.at < b.op.at;
    if (a.op.tenant != b.op.tenant) return a.op.tenant < b.op.tenant;
    return a.seq < b.seq;
  });
  s.ops.reserve(merged.size());
  for (Tagged& m : merged) s.ops.push_back(m.op);
  return s;
}

Schedule from_trace(const trace::TraceWorkload& w, int clients, double rate_per_sec,
                    std::uint64_t seed) {
  assert(clients > 0 && rate_per_sec > 0.0);
  Schedule s;
  s.objects.reserve(w.files.size());
  for (std::uint32_t i = 0; i < w.files.size(); ++i) {
    const trace::TraceFile& f = w.files[i];
    ObjectSpec o;
    o.name = f.name;
    o.type = f.type;
    o.size = f.size;
    o.tenant = i % static_cast<std::uint32_t>(clients);
    o.is_private = f.is_private();
    s.objects.push_back(std::move(o));
  }
  Rng rng{seed};
  TimePoint at{};
  s.ops.reserve(w.ops.size());
  for (const trace::TraceOp& top : w.ops) {
    at += from_seconds(rng.exponential(1.0 / rate_per_sec));
    ScheduledOp op;
    op.at = at;
    op.tenant = static_cast<std::uint32_t>(top.client % clients);
    op.kind = top.kind == trace::OpKind::store ? OpKind::store : OpKind::fetch;
    op.object = static_cast<std::uint32_t>(top.file);
    s.ops.push_back(op);
  }
  return s;
}

std::uint64_t DriveResult::issued() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.issued_total();
  return n;
}

std::uint64_t DriveResult::ok() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.ok_total();
  return n;
}

std::uint64_t DriveResult::failed() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.failed;
  return n;
}

std::uint64_t DriveResult::denied() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.denied;
  return n;
}

std::uint64_t DriveResult::wrong() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.wrong;
  return n;
}

Driver::Driver(vstore::HomeCloud& hc, WorkloadSpec spec)
    : hc_(hc), spec_(std::move(spec)), done_(hc.sim()) {
  assert(!spec_.tenants.empty());
  assert(hc_.node_count() >= spec_.tenants.size());
  result_.tenants.resize(spec_.tenants.size());
  tenant_nodes_.resize(spec_.tenants.size());
  issue_rr_.assign(spec_.tenants.size(), 0);
  for (std::size_t t = 0; t < spec_.tenants.size(); ++t) {
    result_.tenants[t].name = spec_.tenants[t].name;
  }
  // Partition nodes round-robin: node i serves tenant (i mod T), its
  // application VM acting as that tenant's principal.
  for (std::size_t i = 0; i < hc_.node_count(); ++i) {
    const std::size_t t = i % spec_.tenants.size();
    tenant_nodes_[t].push_back(i);
    hc_.node(i).set_principal(spec_.tenants[t].principal);
  }
}

vstore::VStoreNode* Driver::pick_node(std::uint32_t tenant) {
  const auto& nodes = tenant_nodes_[tenant];
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    const std::size_t i = nodes[(issue_rr_[tenant] + k) % nodes.size()];
    if (hc_.node(i).online()) {
      issue_rr_[tenant] = (issue_rr_[tenant] + k + 1) % nodes.size();
      return &hc_.node(i);
    }
  }
  return nullptr;
}

obs::LogHistogram& Driver::latency_histogram(std::uint32_t tenant, OpKind kind) {
  return hc_.metrics().histogram("c4h.workload." + std::string(to_string(kind)) +
                                 ".latency_ns{tenant=" + spec_.tenants[tenant].name + "}");
}

sim::Task<> Driver::preload(const Schedule& s) {
  for (const ObjectSpec& o : s.objects) {
    const TenantSpec& ts = spec_.tenants[o.tenant];
    vstore::VStoreNode* n = pick_node(o.tenant);
    if (n == nullptr) continue;
    vstore::ObjectMeta meta;
    meta.name = o.name;
    meta.type = o.type;
    meta.size = o.size;
    if (o.is_private) meta.tags.push_back("private");
    meta.owner = ts.principal.user;
    meta.acl = ts.acl;
    vstore::StoreOptions opts;
    opts.policy = ts.store_policy;
    opts.decision = ts.decision;
    auto created = co_await n->create_object(meta);
    if (!created.ok()) continue;
    auto stored = co_await n->store_object(o.name, opts);
    if (stored.ok()) result_.acked[o.name] = o.size;
  }
}

sim::Task<> Driver::execute(const ScheduledOp& op, const Schedule& s) {
  const ObjectSpec& obj = s.objects[op.object];
  const TenantSpec& issuer = spec_.tenants[op.tenant];
  const TenantSpec& owner = spec_.tenants[obj.tenant];
  TenantStats& stats = result_.tenants[op.tenant];

  vstore::VStoreNode* n = pick_node(op.tenant);
  if (n == nullptr) {
    ++stats.skipped;
    co_return;
  }
  const auto kind_idx = static_cast<std::size_t>(op.kind);
  ++stats.issued[kind_idx];
  const TimePoint t0 = hc_.sim().now();

  Errc err = Errc::ok;
  switch (op.kind) {
    case OpKind::store: {
      // Re-stores keep the catalog identity (owner tenant's meta and the
      // object's fixed size), so `acked` sizes stay the ground truth.
      vstore::ObjectMeta meta;
      meta.name = obj.name;
      meta.type = obj.type;
      meta.size = obj.size;
      if (obj.is_private) meta.tags.push_back("private");
      meta.owner = owner.principal.user;
      meta.acl = owner.acl;
      vstore::StoreOptions opts;
      opts.policy = issuer.store_policy;
      opts.decision = issuer.decision;
      // already_exists just means this node created the object before (a
      // re-store from the same node); the overwrite path is store_object.
      auto created = co_await n->create_object(meta);
      if (!created.ok() && created.code() != Errc::already_exists) {
        err = created.code();
        break;
      }
      auto stored = co_await n->store_object(obj.name, opts);
      if (stored.ok()) {
        result_.acked[obj.name] = obj.size;
      } else {
        err = stored.code();
      }
      break;
    }
    case OpKind::fetch: {
      auto fetched = co_await n->fetch_object(obj.name);
      if (fetched.ok()) {
        if (fetched->size != obj.size) ++stats.wrong;
      } else {
        err = fetched.code();
      }
      break;
    }
    case OpKind::process: {
      if (!issuer.service.has_value()) {
        ++stats.skipped;
        co_return;
      }
      auto processed = co_await n->process(obj.name, *issuer.service, issuer.decision);
      if (!processed.ok()) err = processed.code();
      break;
    }
    case OpKind::fetch_process: {
      if (!issuer.service.has_value()) {
        ++stats.skipped;
        co_return;
      }
      auto processed = co_await n->fetch_process(obj.name, *issuer.service, issuer.decision);
      if (!processed.ok()) err = processed.code();
      break;
    }
  }

  if (err == Errc::ok) {
    ++stats.ok[kind_idx];
    latency_histogram(op.tenant, op.kind)
        .record(static_cast<std::uint64_t>((hc_.sim().now() - t0).count()));
  } else if (err == Errc::permission_denied) {
    ++stats.denied;
  } else {
    ++stats.failed;
    ++result_.errors[to_string(err)];
  }
}

sim::Task<> Driver::tracked(ScheduledOp op, const Schedule& s) {
  co_await execute(op, s);
  --pending_;
  if (pending_ == 0 && draining_) done_.fire();
}

sim::Task<> Driver::replay(const Schedule& s) {
  auto& sim = hc_.sim();
  for (const ScheduledOp& op : s.ops) {
    const TimePoint at = start_time_ + op.at;
    if (at > sim.now()) co_await sim.delay(at - sim.now());
    ++pending_;
    sim.spawn(tracked(op, s));
  }
  draining_ = true;
  if (pending_ > 0) co_await done_.wait();
}

sim::Task<> Driver::closed_client(std::uint32_t tenant, std::uint64_t client_seed,
                                  const Schedule& s) {
  const TenantSpec& ts = spec_.tenants[tenant];
  Rng rng{client_seed};
  const auto own = own_sets(spec_.tenants.size(), s.objects);
  const ZipfTable own_zipf{std::max<std::size_t>(own[tenant].size(), 1), ts.zipf_s};
  const ZipfTable fetch_zipf{std::max<std::size_t>(fetchable_[tenant].size(), 1), ts.zipf_s};
  auto& sim = hc_.sim();
  while (sim.now() < end_time_) {
    ScheduledOp op;
    op.at = sim.now() - start_time_;
    op.tenant = tenant;
    op.kind = ts.mix.sample(rng);
    if (op.kind == OpKind::store) {
      if (own[tenant].empty()) co_return;
      op.object = own[tenant][own_zipf.sample(rng)];
    } else {
      if (fetchable_[tenant].empty()) co_return;
      op.object = fetchable_[tenant][fetch_zipf.sample(rng)];
    }
    co_await execute(op, s);
    co_await sim.delay(from_seconds(rng.exponential(to_seconds(ts.closed.mean_think))));
  }
}

sim::Task<> Driver::drive(const Schedule& s) {
  fetchable_ = fetchable_sets(spec_, s.objects);
  co_await preload(s);
  start_time_ = hc_.sim().now();
  end_time_ = start_time_ + spec_.duration;

  // Client seeds are derived up front, in tenant/client order, so the seed
  // stream is independent of completion interleaving.
  Rng seeder{spec_.seed ^ 0xC10D400Eull};
  std::vector<sim::Task<>> tasks;
  tasks.push_back(replay(s));
  for (std::uint32_t t = 0; t < spec_.tenants.size(); ++t) {
    for (int c = 0; c < spec_.tenants[t].closed.clients; ++c) {
      tasks.push_back(closed_client(t, seeder.next(), s));
    }
  }
  co_await sim::when_all(hc_.sim(), std::move(tasks));
}

void emit_tail_series(obs::BenchReport& report, const obs::Registry& registry) {
  const obs::Snapshot snap = registry.snapshot();
  const std::string prefix = "c4h.workload.";
  const std::string tenant_tag = ".latency_ns{tenant=";
  for (const auto& [name, hist] : snap.histograms) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t tag = name.find(tenant_tag);
    if (tag == std::string::npos || name.back() != '}') continue;
    const std::string kind = name.substr(prefix.size(), tag - prefix.size());
    const std::string tenant =
        name.substr(tag + tenant_tag.size(), name.size() - 1 - tag - tenant_tag.size());
    obs::add_latency_tails(report, tenant, "workload." + kind + ".latency", hist);
  }
}

}  // namespace c4h::workload
