// Arrival processes for workload generation: open-loop (rate-driven) and
// closed-loop (think-time-driven) request streams, with deterministic
// time-varying rate modulation — a diurnal day/night cycle plus flash-crowd
// windows that multiply the instantaneous rate.
//
// Everything is a pure function of (spec, seed): inter-arrival gaps come
// from a forked Rng stream, and the modulation is evaluated at the *current*
// arrival time, so two generators with identical specs and seeds emit
// byte-identical schedules.
#pragma once

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"

namespace c4h::workload {

/// Raised-sine day/night cycle: the instantaneous rate multiplier swings
/// between (1 - amplitude) and (1 + amplitude) over one period. Simulated
/// scenarios compress the "day" to tens of seconds; the shape, not the wall
/// length, is what matters.
struct DiurnalSpec {
  bool enabled = false;
  Duration period = seconds(60);
  double amplitude = 0.5;  // in [0, 1)
  double phase = 0.0;      // fraction of a period offset at t = 0
};

/// A flash crowd: between `start` and `start + duration` the tenant's
/// arrival rate is multiplied by `multiplier`.
struct FlashCrowdSpec {
  TimePoint start{};
  Duration duration{};
  double multiplier = 1.0;
};

/// The combined time-varying rate multiplier (diurnal × active crowds).
class RateModulation {
 public:
  RateModulation() = default;
  RateModulation(DiurnalSpec diurnal, std::vector<FlashCrowdSpec> crowds)
      : diurnal_(diurnal), crowds_(std::move(crowds)) {}

  double at(TimePoint t) const {
    double m = 1.0;
    if (diurnal_.enabled && diurnal_.period > Duration::zero()) {
      const double frac =
          to_seconds(t) / to_seconds(diurnal_.period) + diurnal_.phase;
      m *= 1.0 + diurnal_.amplitude * std::sin(2.0 * std::numbers::pi * frac);
    }
    for (const FlashCrowdSpec& c : crowds_) {
      if (t >= c.start && t < c.start + c.duration) m *= c.multiplier;
    }
    return m > 0.0 ? m : 0.0;
  }

 private:
  DiurnalSpec diurnal_;
  std::vector<FlashCrowdSpec> crowds_;
};

/// Open-loop arrivals: requests fire at the scheduled times regardless of
/// completion (the production-traffic model — queues build when the system
/// falls behind). rate 0 disables the open-loop stream (closed-loop tenant).
struct OpenLoopSpec {
  double rate_per_sec = 0.0;
  bool poisson = true;  // false: deterministic equal gaps (telemetry beacons)
};

/// Closed-loop clients: each client issues a request, awaits completion,
/// thinks for an exponential gap, repeats.
struct ClosedLoopSpec {
  int clients = 0;
  Duration mean_think = milliseconds(500);
};

/// Generates the next inter-arrival gap of an open-loop stream whose base
/// rate is modulated at the current time. Poisson streams draw exponential
/// gaps (drawn even when the modulated rate is zero, keeping the Rng stream
/// position a pure function of the arrival count); deterministic streams
/// space arrivals evenly at the modulated rate.
inline Duration next_gap(const OpenLoopSpec& spec, const RateModulation& mod,
                         TimePoint now, Rng& rng) {
  const double rate = spec.rate_per_sec * mod.at(now);
  const double draw = spec.poisson ? rng.exponential(1.0) : 1.0;
  if (rate <= 0.0) return seconds(3600);  // dead stream: skip far ahead
  return from_seconds(draw / rate);
}

}  // namespace c4h::workload
