// Multi-tenant workload specification. Each tenant models one application
// population sharing the home cloud — a media-sharing household member, a
// surveillance pipeline, a swarm of IoT sensors — and carries its own
// principal, ACL (acl.hpp), storage/decision policies, operation mix,
// object catalog shape, and arrival process. The generator (workload.hpp)
// interleaves the tenants into one deterministic schedule.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/services/service.hpp"
#include "src/vstore/acl.hpp"
#include "src/vstore/policy.hpp"
#include "src/workload/arrival.hpp"

namespace c4h::workload {

enum class OpKind : std::uint8_t { store, fetch, process, fetch_process };

constexpr const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::store: return "store";
    case OpKind::fetch: return "fetch";
    case OpKind::process: return "process";
    case OpKind::fetch_process: return "fetch_process";
  }
  return "?";
}

/// Relative operation weights; sampling normalizes, so {3, 1, 0, 0} reads
/// "3 stores per fetch".
struct OpMix {
  double store = 0.0;
  double fetch = 1.0;
  double process = 0.0;
  double fetch_process = 0.0;

  double total() const { return store + fetch + process + fetch_process; }

  double weight(OpKind k) const {
    switch (k) {
      case OpKind::store: return store;
      case OpKind::fetch: return fetch;
      case OpKind::process: return process;
      case OpKind::fetch_process: return fetch_process;
    }
    return 0.0;
  }

  OpKind sample(Rng& rng) const {
    const double t = total();
    assert(t > 0.0);
    double u = rng.uniform() * t;
    if ((u -= store) < 0.0) return OpKind::store;
    if ((u -= fetch) < 0.0) return OpKind::fetch;
    if ((u -= process) < 0.0) return OpKind::process;
    return OpKind::fetch_process;
  }
};

/// Object sizes are drawn uniformly from [min, max] at catalog-build time;
/// an object keeps its size for the whole run (re-stores overwrite with the
/// same bytes, so a fetch that returns a mismatched size is wrong data).
struct ObjectSizeSpec {
  Bytes min = 256_KB;
  Bytes max = 4_MB;
};

struct TenantSpec {
  std::string name;

  /// Who the tenant's application VMs act as (drives acl.hpp checks) and
  /// what its stored objects carry.
  vstore::Principal principal;
  vstore::Acl acl;                // attached to every object the tenant stores
  bool private_objects = false;   // tag objects "private"
  std::string object_type = "jpg";

  vstore::StoragePolicy store_policy = vstore::StoragePolicy::local_first();
  vstore::DecisionPolicy decision = vstore::DecisionPolicy::performance;

  OpMix mix;
  std::size_t object_count = 64;  // catalog size (preloaded before the run)
  double zipf_s = 0.8;            // popularity skew over the fetchable set
  ObjectSizeSpec size;

  /// Names of other tenants whose catalogs this tenant also fetches /
  /// processes (content sharing; subject to those objects' ACLs). Store ops
  /// always target the tenant's own catalog.
  std::vector<std::string> fetch_from;

  /// Service invoked by process / fetch_process ops; required iff the mix
  /// gives them weight. The scenario registers and deploys it.
  std::optional<services::ServiceProfile> service;

  OpenLoopSpec arrival;   // rate > 0 → open-loop schedule entries
  ClosedLoopSpec closed;  // clients > 0 → live closed-loop drivers
};

}  // namespace c4h::workload
