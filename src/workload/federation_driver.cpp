#include "src/workload/federation_driver.hpp"

#include <cassert>

namespace c4h::workload {

using vstore::HomeCloud;
using vstore::VStoreNode;

std::uint64_t FedDriveResult::issued() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.issued_total();
  return n;
}
std::uint64_t FedDriveResult::ok() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.ok_total();
  return n;
}
std::uint64_t FedDriveResult::failed() const {
  std::uint64_t n = 0;
  for (const TenantStats& t : tenants) n += t.failed;
  return n;
}

FederationDriver::FederationDriver(vstore::City& city, federation::GeoFederation& fed,
                                   WorkloadSpec spec)
    : city_(city), fed_(fed), spec_(std::move(spec)), homes_(city.all_homes()), done_(city.sim()) {
  assert(!spec_.tenants.empty());
  assert(!homes_.empty());
  result_.tenants.resize(spec_.tenants.size());
  issue_rr_.assign(spec_.tenants.size(), 0);
  for (std::size_t t = 0; t < spec_.tenants.size(); ++t) {
    result_.tenants[t].name = spec_.tenants[t].name;
  }
}

VStoreNode* FederationDriver::pick_node(std::uint32_t tenant) {
  HomeCloud& home = tenant_home(tenant);
  for (std::size_t k = 0; k < home.node_count(); ++k) {
    const std::size_t i = (issue_rr_[tenant] + k) % home.node_count();
    if (home.node(i).online()) {
      issue_rr_[tenant] = (i + 1) % home.node_count();
      return &home.node(i);
    }
  }
  return nullptr;
}

obs::LogHistogram& FederationDriver::latency_histogram(std::uint32_t tenant, OpKind kind) {
  return city_.metrics().histogram("c4h.workload.fed_" + std::string(to_string(kind)) +
                                   ".latency_ns{tenant=" + spec_.tenants[tenant].name + "}");
}

sim::Task<> FederationDriver::preload(const Schedule& s) {
  for (const ObjectSpec& o : s.objects) {
    const TenantSpec& ts = spec_.tenants[o.tenant];
    HomeCloud& home = tenant_home(o.tenant);
    VStoreNode* n = pick_node(o.tenant);
    if (n == nullptr) continue;
    n->set_principal(ts.principal);
    vstore::ObjectMeta meta;
    meta.name = o.name;
    meta.type = o.type;
    meta.size = o.size;
    if (o.is_private) meta.tags.push_back("private");
    meta.owner = ts.principal.user;
    meta.acl = ts.acl;
    vstore::StoreOptions opts;
    opts.policy = ts.store_policy;
    opts.decision = ts.decision;
    auto created = co_await n->create_object(meta);
    if (!created.ok()) continue;
    auto stored = co_await n->store_object(o.name, opts);
    if (!stored.ok()) continue;
    auto pub = co_await fed_.publish(home, *n, o.name);
    if (pub.ok()) result_.published[o.name] = o.size;
  }
}

sim::Task<> FederationDriver::execute(const ScheduledOp& op, const Schedule& s) {
  const ObjectSpec& obj = s.objects[op.object];
  const TenantSpec& issuer = spec_.tenants[op.tenant];
  const TenantSpec& owner = spec_.tenants[obj.tenant];
  TenantStats& stats = result_.tenants[op.tenant];

  HomeCloud& home = tenant_home(op.tenant);
  VStoreNode* n = pick_node(op.tenant);
  if (n == nullptr) {
    ++stats.skipped;
    co_return;
  }
  n->set_principal(issuer.principal);
  const auto kind_idx = static_cast<std::size_t>(op.kind);
  const TimePoint t0 = city_.sim().now();

  Errc err = Errc::ok;
  switch (op.kind) {
    case OpKind::store: {
      // Only the owner's home may (re-)store and republish the catalog
      // object; a store scheduled on another tenant routes to its own home
      // and keeps the catalog identity there.
      ++stats.issued[kind_idx];
      vstore::ObjectMeta meta;
      meta.name = obj.name;
      meta.type = obj.type;
      meta.size = obj.size;
      if (obj.is_private) meta.tags.push_back("private");
      meta.owner = owner.principal.user;
      meta.acl = owner.acl;
      vstore::StoreOptions opts;
      opts.policy = issuer.store_policy;
      opts.decision = issuer.decision;
      auto created = co_await n->create_object(meta);
      if (!created.ok() && created.code() != Errc::already_exists) {
        err = created.code();
        break;
      }
      auto stored = co_await n->store_object(obj.name, opts);
      if (!stored.ok()) {
        err = stored.code();
        break;
      }
      auto pub = co_await fed_.publish(home, *n, obj.name);
      if (pub.ok()) {
        result_.published[obj.name] = obj.size;
      } else if (pub.code() != Errc::permission_denied) {
        // Another home owns the published entry: the store itself still
        // succeeded locally, so a denial is not a workload failure.
        err = pub.code();
      }
      break;
    }
    case OpKind::fetch: {
      ++stats.issued[kind_idx];
      auto fetched = co_await fed_.fetch(home, *n, obj.name);
      if (fetched.ok()) {
        if (fetched->size != obj.size) ++stats.wrong;
        if (&tenant_home(obj.tenant) != &home &&
            tenant_home(obj.tenant).neighborhood()->city_index() !=
                home.neighborhood()->city_index()) {
          ++result_.cross_hood_fetches;
        }
      } else {
        err = fetched.code();
      }
      break;
    }
    case OpKind::process:
    case OpKind::fetch_process: {
      // Remote execution over the federation is future work; schedules for
      // this driver use store/fetch mixes.
      ++stats.skipped;
      co_return;
    }
  }

  if (err == Errc::ok) {
    ++stats.ok[kind_idx];
    latency_histogram(op.tenant, op.kind)
        .record(static_cast<std::uint64_t>((city_.sim().now() - t0).count()));
  } else if (err == Errc::permission_denied) {
    ++stats.denied;
  } else {
    ++stats.failed;
    ++result_.errors[to_string(err)];
  }
}

sim::Task<> FederationDriver::tracked(ScheduledOp op, const Schedule& s) {
  co_await execute(op, s);
  --pending_;
  if (pending_ == 0 && draining_) done_.fire();
}

sim::Task<> FederationDriver::drive(const Schedule& s) {
  co_await preload(s);
  start_time_ = city_.sim().now();
  auto& sim = city_.sim();
  for (const ScheduledOp& op : s.ops) {
    const TimePoint at = start_time_ + op.at;
    if (at > sim.now()) co_await sim.delay(at - sim.now());
    ++pending_;
    sim.spawn(tracked(op, s));
  }
  draining_ = true;
  if (pending_ > 0) co_await done_.wait();
}

}  // namespace c4h::workload
