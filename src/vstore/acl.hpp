// Access control for VStore++ objects — the paper's first open issue
// ("to implement and experiment with richer access control methods and
// policies", §VII), designed after the role-based controls of O2S2 [22]
// (trusted vs untrusted VMs) that VStore++ descends from.
//
// Model: each application VM acts as a Principal (user name + VM trust
// level). An object may carry an owner and an ACL; ownerless objects are
// open (the base system's behaviour). Owners hold all rights; other
// principals need a matching rule. Untrusted VMs additionally lose access
// to objects tagged "private" regardless of rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/serial.hpp"

namespace c4h::vstore {

enum class TrustLevel : std::uint8_t { untrusted = 0, trusted = 1 };

struct Principal {
  std::string user;
  TrustLevel trust = TrustLevel::trusted;
};

enum class Right : std::uint8_t {
  read = 1 << 0,     // fetch the object
  write = 1 << 1,    // overwrite / delete
  execute = 1 << 2,  // run services against it
};

constexpr std::uint8_t rights(std::initializer_list<Right> rs) {
  std::uint8_t m = 0;
  for (const Right r : rs) m |= static_cast<std::uint8_t>(r);
  return m;
}

struct AccessRule {
  std::string user;  // "*" matches any user
  std::uint8_t allowed = 0;

  bool matches(const Principal& p) const { return user == "*" || user == p.user; }
  bool grants(Right r) const { return (allowed & static_cast<std::uint8_t>(r)) != 0; }
};

/// Per-object access-control list.
class Acl {
 public:
  Acl() = default;

  static Acl owner_only() { return Acl{}; }

  static Acl public_read(std::string owner_hint = "*") {
    Acl a;
    a.rules_.push_back(AccessRule{std::move(owner_hint), rights({Right::read})});
    return a;
  }

  Acl& allow(std::string user, std::initializer_list<Right> rs) {
    rules_.push_back(AccessRule{std::move(user), rights(rs)});
    return *this;
  }

  bool allows(const Principal& p, Right r) const {
    for (const auto& rule : rules_) {
      if (rule.matches(p) && rule.grants(r)) return true;
    }
    return false;
  }

  const std::vector<AccessRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

  void serialize(Writer& w) const {
    w.write_vector(rules_, [](Writer& ww, const AccessRule& r) {
      ww.write(r.user);
      ww.write(r.allowed);
    });
  }

  static Result<Acl> deserialize(Reader& r) {
    auto rules = r.read_vector<AccessRule>([](Reader& rr) -> Result<AccessRule> {
      AccessRule rule;
      auto user = rr.read_string();
      if (!user) return user.error();
      rule.user = std::move(*user);
      auto allowed = rr.read<std::uint8_t>();
      if (!allowed) return allowed.error();
      rule.allowed = *allowed;
      return rule;
    });
    if (!rules) return rules.error();
    Acl a;
    a.rules_ = std::move(*rules);
    return a;
  }

 private:
  std::vector<AccessRule> rules_;
};

/// The full access decision, given the object's owner/tags and the
/// requesting principal. Ownerless objects are open.
struct AccessDecision {
  bool allowed = true;
  const char* reason = "open";
};

inline AccessDecision check_access(const std::string& owner, const Acl& acl,
                                   bool object_is_private, const Principal& p, Right r) {
  if (owner.empty()) return {true, "open"};
  if (object_is_private && p.trust == TrustLevel::untrusted) {
    return {false, "untrusted VM denied private object"};
  }
  if (p.user == owner) return {true, "owner"};
  if (acl.allows(p, r)) return {true, "acl"};
  return {false, "no matching rule"};
}

}  // namespace c4h::vstore
