#include "src/vstore/vstore.hpp"

#include "src/vstore/home_cloud.hpp"
#include "src/vstore/learner.hpp"

namespace c4h::vstore {

namespace {

// Command handling on the shared-memory channel: sub-millisecond, paid per
// request and per reply.
constexpr Duration kCommandLatency = microseconds(300);

}  // namespace

VStoreNode::VStoreNode(HomeCloud& cloud, overlay::ChimeraNode& chimera, vmm::Domain& app_domain,
                       ObjectFsConfig fs_config, vmm::XenSocketConfig xs_config)
    : cloud_(cloud),
      chimera_(chimera),
      app_domain_(app_domain),
      fs_(cloud.sim(), fs_config),
      xensocket_(cloud.sim(), xs_config),
      rng_(cloud.sim().rng().fork()) {
  principal_ = Principal{chimera.name(), TrustLevel::trusted};
  mon::BinWatcher watcher;
  watcher.mandatory_free = [this] { return fs_.mandatory_free(); };
  watcher.voluntary_free = [this] { return fs_.voluntary_free(); };
  monitor_ = std::make_unique<mon::ResourceMonitor>(chimera_, cloud_.kv(), watcher,
                                                    cloud.config().monitor);
  monitor_->set_uplink_estimate(cloud.config().lan_rate);

  // Per-node operation metrics, qualified with the node name so a snapshot
  // separates the nodes of one deployment.
  obs::Registry& reg = cloud_.metrics();
  const std::string& node = chimera_.name();
  m_stores_ = &reg.counter(obs::Registry::qualify("c4h.vstore.store.count", node));
  m_fetches_ = &reg.counter(obs::Registry::qualify("c4h.vstore.fetch.count", node));
  m_processes_ = &reg.counter(obs::Registry::qualify("c4h.vstore.process.count", node));
  m_store_total_ = &reg.histogram(obs::Registry::qualify("c4h.vstore.store.total_ns", node));
  m_fetch_total_ = &reg.histogram(obs::Registry::qualify("c4h.vstore.fetch.total_ns", node));
}

obs::Ctx VStoreNode::op_ctx(obs::Ctx parent) {
  return parent.on() ? parent : cloud_.trace_ctx();
}

sim::Task<Duration> VStoreNode::command_round_trip(obs::Ctx ctx) {
  obs::ScopedSpan sp(ctx, "vstore.command");
  // Exercise the real codec so framing stays under the paper's ~50 bytes.
  CommandPacket cmd;
  cmd.type = CommandType::fetch_object;
  cmd.domain_id = static_cast<std::uint32_t>(app_domain_.id());
  cmd.shm_ref = 0xC4;
  const auto wire = cmd.serialize();
  const Duration per_byte = nanoseconds(static_cast<std::int64_t>(wire.size()) * 40);
  co_await cloud_.sim().delay(kCommandLatency + per_byte);
  co_return kCommandLatency + per_byte;
}

sim::Task<Result<void>> VStoreNode::publish_services() {
  for (const auto& key_name : deployed_) {
    const auto* p = cloud_.registry().profile_by_key_name(key_name);
    if (p == nullptr) co_return Error{Errc::invalid_argument, "unknown profile " + key_name};
    auto r = co_await cloud_.registry().register_node(chimera_, *p);
    if (!r.ok()) co_return r;
  }
  co_return Result<void>{};
}

sim::Task<Result<void>> VStoreNode::create_object(ObjectMeta meta, obs::Ctx parent) {
  obs::ScopedSpan sp(op_ctx(parent), "vstore.create");
  sp.attr("object", meta.name);
  co_await command_round_trip(sp.ctx());
  meta.created_at_ns = cloud_.sim().now().count();
  if (created_.contains(meta.name)) {
    sp.set_error("already created");
    co_return Error{Errc::already_exists, "object already created: " + meta.name};
  }
  created_.emplace(meta.name, std::move(meta));
  co_return Result<void>{};
}

sim::Task<Result<ObjectLocation>> VStoreNode::place_object(const ObjectMeta& meta,
                                                           StoreOptions& opts,
                                                           StoreOutcome& out, obs::Ctx ctx) {
  auto& sim = cloud_.sim();
  auto& net = cloud_.network();

  obs::ScopedSpan sp(ctx, "vstore.place");
  const TimePoint d0 = sim.now();
  StoreTarget target = opts.policy.target_for(meta);
  if (opts.decision == DecisionPolicy::learned && target == StoreTarget::remote_cloud &&
      cloud_.placement_engine().veto_cloud_store(meta.size)) {
    // The engine predicts this upload would blow the latency budget at the
    // currently observed WAN rate: keep the object home instead.
    target = StoreTarget::local;
  }
  if (target == StoreTarget::local && fs_.mandatory_free() < meta.size) {
    // "In cases where the mandatory bin is full ... the data is stored
    // elsewhere, either in the voluntary resources available on other nodes
    // in the home environment, or in a remote cloud."
    target = StoreTarget::home_any;
  }

  // chimeraGetDecision over the other home nodes' published records. Invoked
  // lazily: the home_any path needs it up front, and a failed local write
  // needs it to re-route mid-placement.
  auto pick_home = [this, &meta, &opts](obs::Ctx dctx) -> sim::Task<std::optional<Key>> {
    obs::ScopedSpan dsp(dctx, "vstore.decision");
    std::vector<CandidateInfo> cands;
    for (overlay::ChimeraNode* member : cloud_.overlay().live_members()) {
      if (member == &chimera_) continue;
      auto rec = co_await mon::fetch_record(cloud_.kv(), chimera_, member->id(), dsp.ctx());
      if (!rec.ok()) continue;
      if (rec->voluntary_bin_free < meta.size) continue;
      VStoreNode* vn = cloud_.node_by_key(member->id());
      if (vn == nullptr || !vn->online()) continue;
      CandidateInfo ci;
      ci.site = ExecSite{ExecSite::Kind::home_node, member->id()};
      ci.move_in = cloud_.estimate_move(ExecSite{ExecSite::Kind::home_node, chimera_.id()},
                                        ci.site, meta.size);
      ci.exec_estimate = transfer_time(meta.size, vn->fs().config().write_rate);
      ci.cpu_load = rec->cpu_load;
      ci.battery = rec->battery;
      ci.battery_powered = rec->battery_powered;
      cands.push_back(ci);
    }
    if (cands.empty()) co_return std::nullopt;
    co_return cands[choose_candidate(opts.decision, cands)].site.node;
  };

  Key chosen_home{};
  if (target == StoreTarget::home_any) {
    const auto c = co_await pick_home(sp.ctx());
    if (c.has_value()) {
      chosen_home = *c;
    } else {
      target = StoreTarget::remote_cloud;
    }
  }
  out.decision = sim.now() - d0;

  const TimePoint p0 = sim.now();
  ObjectLocation loc;

  if (target == StoreTarget::local) {
    auto w = co_await fs_.write(meta.name, meta.size, Bin::mandatory, sp.ctx());
    if (w.ok()) {
      sp.attr("target", "local");
      loc.kind = ObjectLocation::Kind::home_node;
      loc.node = chimera_.id();
      out.placement = sim.now() - p0;
      co_return loc;
    }
    // Local disk refused (full, or flaky media): re-route into the shared
    // pool instead of failing the store.
    ++stats_.store_reroutes;
    const auto c = co_await pick_home(sp.ctx());
    if (c.has_value()) {
      chosen_home = *c;
      target = StoreTarget::home_any;
    } else {
      target = StoreTarget::remote_cloud;
    }
  }

  if (target == StoreTarget::home_any) {
    VStoreNode* vn = cloud_.node_by_key(chosen_home);
    bool placed = false;
    if (vn != nullptr && vn->online()) {
      co_await net.transfer(chimera_.net_node(), vn->chimera().net_node(), meta.size,
                            cloud_.lan_profile(), sp.ctx());
      auto w = co_await vn->fs_.write(meta.name, meta.size, Bin::voluntary, sp.ctx());
      // A write that raced the target's crash may be torn; only a write that
      // completed on a live node counts.
      placed = w.ok() && vn->online();
    }
    if (placed) {
      sp.attr("target", "home");
      loc.kind = ObjectLocation::Kind::home_node;
      loc.node = chosen_home;
      out.placement = sim.now() - p0;
      co_return loc;
    }
    // Stale record (bin filled since the last monitor update), dead target,
    // or flaky disk: spill to the remote cloud rather than failing the store.
    ++stats_.store_reroutes;
  }

  const std::string url = cloud::S3Store::url_for("vstore", meta.name);
  const TimePoint u0 = sim.now();
  auto p = co_await cloud_.s3().put(chimera_.net_node(), url, meta.size, sp.ctx());
  if (!p.ok()) {
    sp.set_error(p.error().message);
    co_return p.error();
  }
  cloud_.wan_estimator().observe_upload(meta.size, sim.now() - u0);
  sp.attr("target", "cloud");
  loc.kind = ObjectLocation::Kind::remote_cloud;
  loc.url = url;
  out.placement = sim.now() - p0;
  co_return loc;
}

sim::Task<Result<StoreOutcome>> VStoreNode::store_object(const std::string& name,
                                                         StoreOptions opts, obs::Ctx parent) {
  auto& sim = cloud_.sim();
  const TimePoint t0 = sim.now();
  StoreOutcome out;
  if (m_stores_ != nullptr) m_stores_->add();
  obs::ScopedSpan sp(op_ctx(parent), "vstore.store");
  sp.attr("object", name);

  const auto it = created_.find(name);
  if (it == created_.end()) {
    sp.set_error("not created");
    co_return Error{Errc::not_found, "CreateObject was not called for " + name};
  }
  const ObjectMeta meta = it->second;
  sp.attr("bytes", static_cast<std::uint64_t>(meta.size));

  co_await command_round_trip(sp.ctx());

  // Move the object out of the guest VM into the control domain.
  const TimePoint x0 = sim.now();
  {
    obs::ScopedSpan xs(sp.ctx(), "vmm.xensocket");
    xs.attr("bytes", static_cast<std::uint64_t>(meta.size));
    co_await xensocket_.transfer(meta.size);
  }
  out.inter_domain = sim.now() - x0;

  auto finish = [](VStoreNode& self, ObjectMeta m, StoreOptions o, StoreOutcome partial,
                   TimePoint start, obs::Ctx ctx) -> sim::Task<Result<StoreOutcome>> {
    auto& s = self.cloud_.sim();
    // Overwriting an existing owned object requires write rights.
    {
      auto existing = co_await self.cloud_.kv().get(self.chimera_, m.key(), ctx);
      if (existing.ok()) {
        auto prev = ObjectRecord::deserialize(*existing);
        if (prev.ok()) {
          if (auto auth = self.authorize(*prev, Right::write); !auth.ok()) {
            co_return auth.error();
          }
        }
      }
    }
    auto loc = co_await self.place_object(m, o, partial, ctx);
    if (!loc.ok()) co_return loc.error();

    const TimePoint m0 = s.now();
    ObjectRecord rec{m, *loc};
    auto put = co_await self.cloud_.kv().put(self.chimera_, m.key(), rec.serialize(),
                                             kv::OverwritePolicy::overwrite, ctx);
    if (!put.ok()) co_return put.error();
    partial.metadata = s.now() - m0;
    partial.location = *loc;
    partial.total = s.now() - start;
    self.created_.erase(m.name);
    co_return partial;
  };

  if (!opts.blocking) {
    // Non-blocking store: the guest resumes once the data has left its VM;
    // placement and metadata update continue asynchronously. The root span
    // ends at the guest's resume; the continuation's children still attach
    // under it (their own timestamps carry the late completion).
    sim.spawn([](VStoreNode& self, ObjectMeta m, StoreOptions o, StoreOutcome partial,
                 TimePoint start, decltype(finish) fin, obs::Ctx ctx) -> sim::Task<> {
      (void)co_await fin(self, std::move(m), std::move(o), partial, start, ctx);
    }(*this, meta, opts, out, t0, finish, sp.ctx()));
    out.total = sim.now() - t0;
    out.location.kind = ObjectLocation::Kind::home_node;
    out.location.node = chimera_.id();  // provisional
    co_return out;
  }

  auto done = co_await finish(*this, meta, opts, out, t0, sp.ctx());
  if (!done.ok()) {
    sp.set_error(done.error().message);
    co_return done.error();
  }
  StoreOutcome full = *done;
  co_await command_round_trip(sp.ctx());  // the blocking store's extra acknowledgement
  full.total = sim.now() - t0;
  if (m_store_total_ != nullptr) {
    m_store_total_->record(static_cast<std::uint64_t>(full.total.count()));
  }
  co_return full;
}

Result<void> VStoreNode::authorize(const ObjectRecord& rec, Right r) const {
  const auto d = check_access(rec.meta.owner, rec.meta.acl, rec.meta.has_tag("private"),
                              principal_, r);
  if (d.allowed) return Result<void>{};
  return Error{Errc::permission_denied,
               "access denied for '" + principal_.user + "' on " + rec.meta.name + ": " +
                   d.reason};
}

sim::Task<Result<ObjectRecord>> VStoreNode::lookup_record(const std::string& name,
                                                          Duration& dht_cost, obs::Ctx ctx) {
  auto& sim = cloud_.sim();
  const TimePoint t0 = sim.now();
  auto raw = co_await cloud_.kv().get(chimera_, Key::from_name(name), ctx);
  dht_cost = sim.now() - t0;
  if (!raw.ok()) co_return raw.error();
  co_return ObjectRecord::deserialize(*raw);
}

sim::Task<Result<FetchOutcome>> VStoreNode::fetch_attempt(const std::string& name, obs::Ctx ctx) {
  auto& sim = cloud_.sim();
  auto& net = cloud_.network();
  FetchOutcome out;

  obs::ScopedSpan sp(ctx, "vstore.fetch.attempt");
  auto rec = co_await lookup_record(name, out.dht_lookup, sp.ctx());
  if (!rec.ok()) {
    sp.set_error(rec.error().message);
    co_return rec.error();
  }
  if (auto auth = authorize(*rec, Right::read); !auth.ok()) {
    sp.set_error("denied");
    co_return auth.error();
  }
  out.size = rec->meta.size;

  const TimePoint n0 = sim.now();
  if (rec->location.is_cloud()) {
    sp.attr("source", "cloud");
    auto got = co_await cloud_.s3().get(chimera_.net_node(), rec->location.url, sp.ctx());
    if (!got.ok()) {
      sp.set_error(got.error().message);
      co_return got.error();
    }
    cloud_.wan_estimator().observe_download(rec->meta.size, sim.now() - n0);
    out.from_cloud = true;
  } else if (rec->location.node == chimera_.id()) {
    sp.attr("source", "local");
    auto got = co_await fs_.read(name, sp.ctx());
    if (!got.ok()) {
      sp.set_error(got.error().message);
      co_return got.error();
    }
    out.local = true;
  } else {
    VStoreNode* ownr = cloud_.node_by_key(rec->location.node);
    if (ownr == nullptr || !ownr->online()) {
      // Owner down. A copy may survive in the remote cloud from an earlier
      // placement spill — the last-resort replica before reporting
      // unavailability (the retry loop handles the transient case).
      const std::string url = cloud::S3Store::url_for("vstore", name);
      if (cloud_.s3().exists(url)) {
        sp.attr("source", "cloud_fallback");
        auto got = co_await cloud_.s3().get(chimera_.net_node(), url, sp.ctx());
        if (!got.ok()) {
          sp.set_error(got.error().message);
          co_return got.error();
        }
        cloud_.wan_estimator().observe_download(rec->meta.size, sim.now() - n0);
        out.from_cloud = true;
        ++stats_.fetch_cloud_fallbacks;
        out.inter_node = sim.now() - n0;
        co_return out;
      }
      sp.set_error("owner offline");
      co_return Error{Errc::unavailable, "object owner offline: " + name};
    }
    // Request message, owner's disk read, then the zero-copy transfer back.
    sp.attr("source", "remote_node");
    co_await net.send_message(chimera_.net_node(), ownr->chimera().net_node(), 50, sp.ctx());
    auto got = co_await ownr->fs_.read(name, sp.ctx());
    if (!got.ok()) {
      sp.set_error(got.error().message);
      co_return got.error();
    }
    if (!ownr->online()) {
      sp.set_error("owner died mid-read");
      co_return Error{Errc::unavailable, "owner died mid-read: " + name};
    }
    co_await net.transfer(ownr->chimera().net_node(), chimera_.net_node(), rec->meta.size,
                          cloud_.lan_profile(), sp.ctx());
  }
  out.inter_node = sim.now() - n0;
  co_return out;
}

sim::Task<Result<FetchOutcome>> VStoreNode::fetch_object(const std::string& name,
                                                         obs::Ctx parent) {
  auto& sim = cloud_.sim();
  const TimePoint t0 = sim.now();
  if (m_fetches_ != nullptr) m_fetches_->add();
  obs::ScopedSpan sp(op_ctx(parent), "vstore.fetch");
  sp.attr("object", name);

  co_await command_round_trip(sp.ctx());

  // Locate-and-transfer with bounded retries: lost messages, owners that die
  // mid-fetch, and flaky disks all surface as transient errors here.
  const RetryPolicy& rp = cloud_.config().retry;
  Result<FetchOutcome> res = Error{Errc::unavailable, "not attempted"};
  for (int attempt = 1;; ++attempt) {
    res = co_await fetch_attempt(name, sp.ctx());
    if (res.ok() || !RetryPolicy::transient(res.code())) break;
    if (attempt >= rp.max_attempts) break;
    ++stats_.fetch_retries;
    co_await sim.delay(rp.backoff(attempt, rng_));
  }
  if (!res.ok()) {
    ++stats_.op_failures;
    sp.set_error(res.error().message);
    co_return res.error();
  }
  FetchOutcome out = *res;

  // Deliver into the guest VM.
  const TimePoint x0 = sim.now();
  {
    obs::ScopedSpan xs(sp.ctx(), "vmm.xensocket");
    xs.attr("bytes", static_cast<std::uint64_t>(out.size));
    co_await xensocket_.transfer(out.size);
  }
  out.inter_domain = sim.now() - x0;

  co_await command_round_trip(sp.ctx());
  out.total = sim.now() - t0;
  if (m_fetch_total_ != nullptr) {
    m_fetch_total_->record(static_cast<std::uint64_t>(out.total.count()));
  }
  co_return out;
}

namespace {

/// The execution site's domain.
vmm::Domain& site_domain(HomeCloud& hc, const ExecSite& site) {
  if (site.kind == ExecSite::Kind::ec2) return hc.ec2().domain();
  return hc.node_by_key(site.node)->app_domain();
}

double site_load(HomeCloud& hc, const ExecSite& site) {
  if (site.kind == ExecSite::Kind::ec2) return hc.ec2().host().cpu_utilization();
  return hc.node_by_key(site.node)->host().cpu_utilization();
}

}  // namespace

sim::Task<Result<ProcessOutcome>> VStoreNode::process(const std::string& name,
                                                      const services::ServiceProfile& service,
                                                      DecisionPolicy policy,
                                                      std::optional<ExecSite> force,
                                                      obs::Ctx parent) {
  // (explicit vector: GCC 12 miscompiles brace-init arguments in
  // co_return co_await expressions)
  std::vector<services::ServiceProfile> stages;
  stages.push_back(service);
  co_return co_await process_pipeline(name, stages, policy, force, parent);
}

sim::Task<Result<ProcessOutcome>> VStoreNode::process_pipeline(
    const std::string& name, const std::vector<services::ServiceProfile>& stages,
    DecisionPolicy policy, std::optional<ExecSite> force, obs::Ctx parent) {
  auto& sim = cloud_.sim();
  const TimePoint t0 = sim.now();
  ProcessOutcome out;
  if (stages.empty()) co_return Error{Errc::invalid_argument, "empty pipeline"};
  if (m_processes_ != nullptr) m_processes_->add();
  obs::ScopedSpan sp(op_ctx(parent), "vstore.process");
  sp.attr("object", name);
  sp.attr("stages", static_cast<std::uint64_t>(stages.size()));

  co_await command_round_trip(sp.ctx());

  auto rec = co_await lookup_record(name, out.dht_lookup, sp.ctx());
  if (!rec.ok()) {
    sp.set_error(rec.error().message);
    co_return rec.error();
  }
  if (auto auth = authorize(*rec, Right::read); !auth.ok()) {
    sp.set_error("denied");
    co_return auth.error();
  }
  if (auto auth = authorize(*rec, Right::execute); !auth.ok()) {
    sp.set_error("denied");
    co_return auth.error();
  }
  const Bytes size = rec->meta.size;

  const ExecSite owner_site =
      rec->location.is_cloud() ? ExecSite{ExecSite::Kind::ec2, {}}
                               : ExecSite{ExecSite::Kind::home_node, rec->location.node};

  // --- chimeraGetDecision: collect candidates and their resource state ---
  const TimePoint d0 = sim.now();
  if (force.has_value()) {
    out.site = *force;
    auto ran = co_await run_at_site(*force, owner_site, name, stages, *rec, out, t0, sp.ctx());
    if (!ran.ok()) {
      sp.set_error(ran.error().message);
      co_return ran.error();
    }
    co_return out;
  }
  obs::ScopedSpan dsp(sp.ctx(), "vstore.decision");
  std::vector<CandidateInfo> cands;
  std::set<std::uint64_t> seen;  // home-node keys already considered

  auto add_home_candidate = [&](Key node_key) -> sim::Task<> {
    if (seen.contains(node_key.raw())) co_return;
    seen.insert(node_key.raw());
    VStoreNode* vn = cloud_.node_by_key(node_key);
    if (vn == nullptr || !vn->online()) co_return;
    for (const auto& stage : stages) {
      if (!vn->has_service(stage) || !stage.admissible(vn->app_domain())) co_return;
    }
    auto rrec = co_await mon::fetch_record(cloud_.kv(), chimera_, node_key, dsp.ctx());
    CandidateInfo ci;
    ci.site = ExecSite{ExecSite::Kind::home_node, node_key};
    ci.move_in = cloud_.estimate_move(owner_site, ci.site, size);
    if (node_key != chimera_.id()) ci.move_in += cloud_.config().remote_dispatch;
    // WAN decomposition for the learned engine: a home site pulls the
    // argument down from S3 when the owner is the cloud.
    ci.move_bytes = ci.site == owner_site ? 0 : size;
    ci.move_over_wan = rec->location.is_cloud();
    ci.move_upload = false;
    if (node_key != chimera_.id()) ci.dispatch = cloud_.config().remote_dispatch;
    const double load = rrec.ok() ? rrec->cpu_load : 0.0;
    double est = 0;
    for (const auto& stage : stages) {
      est += to_seconds(stage.estimate(vn->app_domain(), size));
    }
    ci.exec_estimate = from_seconds(est / std::max(0.05, 1.0 - load));
    ci.cpu_load = load;
    ci.battery = rrec.ok() ? rrec->battery : 1.0;
    ci.battery_powered = rrec.ok() && rrec->battery_powered;
    cands.push_back(ci);
  };

  // Requester and owner are always considered first (§III-B's fast paths).
  co_await add_home_candidate(chimera_.id());
  if (!rec->location.is_cloud()) co_await add_home_candidate(rec->location.node);

  // Other deployments from the first stage's registry entry (a pipeline
  // runs where its stages are co-deployed).
  auto registered = co_await cloud_.registry().lookup(chimera_, stages.front());
  if (registered.ok()) {
    for (const Key k : *registered) co_await add_home_candidate(k);
  }

  // The remote cloud.
  bool cloud_has_all = true;
  for (const auto& stage : stages) cloud_has_all &= cloud_.cloud_has_service(stage);
  if (cloud_has_all) {
    CandidateInfo ci;
    ci.site = ExecSite{ExecSite::Kind::ec2, {}};
    ci.move_in = cloud_.estimate_move(owner_site, ci.site, size) +
                 cloud_.config().remote_dispatch;
    // WAN decomposition: a home-owned argument is uploaded over the WAN;
    // a cloud-owned one moves S3→EC2 intra-cloud.
    ci.move_bytes = rec->location.is_cloud() ? 0 : size;
    ci.move_over_wan = !rec->location.is_cloud();
    ci.move_upload = true;
    ci.dispatch = cloud_.config().remote_dispatch;
    double est = 0;
    for (const auto& stage : stages) {
      est += to_seconds(stage.estimate(cloud_.ec2().domain(), size));
    }
    ci.exec_estimate = from_seconds(est);
    ci.cpu_load = cloud_.ec2().host().cpu_utilization();
    cands.push_back(ci);
  }

  if (cands.empty()) {
    sp.set_error("no site");
    co_return Error{Errc::unavailable,
                    "pipeline deployed nowhere reachable: " + stages.front().name};
  }
  ExecSite site;
  std::string learn_ctx;
  if (policy == DecisionPolicy::learned) {
    // Candidate costs are requester-relative (the dispatch overhead lands on
    // every site but this node), so the requester is part of the context —
    // otherwise one context's incumbent pins a site that is remote for every
    // other requester of the same (service, size) pair.
    learn_ctx = PlacementLearner::context_of(stages.front(), size) + "@" + chimera_.id().to_string();
    site = cloud_.placement_engine().choose(learn_ctx, cands, sim.now());
  } else {
    site = cands[choose_candidate(policy, cands)].site;
  }
  out.decision = sim.now() - d0;
  out.site = site;
  dsp.attr("candidates", static_cast<std::uint64_t>(cands.size()));
  dsp.end();

  auto ran = co_await run_at_site(site, owner_site, name, stages, *rec, out, t0, sp.ctx());
  if (!ran.ok()) {
    sp.set_error(ran.error().message);
    co_return ran.error();
  }
  if (policy == DecisionPolicy::learned) {
    // Feedback: only the site-attributable phases (the per-phase span
    // breakdown minus lookup/decision overhead no site choice can change).
    cloud_.placement_engine().observe(learn_ctx, site,
                                      out.move + out.exec + out.result_return);
  }
  co_return out;
}

sim::Task<Result<void>> VStoreNode::run_at_site(const ExecSite& site, const ExecSite& owner_site,
                                                const std::string& name,
                                                const std::vector<services::ServiceProfile>& stages,
                                                const ObjectRecord& rec, ProcessOutcome& out,
                                                TimePoint t0, obs::Ctx ctx) {
  auto& sim = cloud_.sim();
  auto& net = cloud_.network();
  const Bytes size = rec.meta.size;

  // Remote dispatch: invoking the service anywhere but the requester pays a
  // fixed command/startup/queueing cost.
  const bool remote_site =
      !(site.kind == ExecSite::Kind::home_node && site.node == chimera_.id());
  if (remote_site) co_await sim.delay(cloud_.config().remote_dispatch);

  // --- Move the argument object to the site ------------------------------
  const TimePoint m0 = sim.now();
  {
    obs::ScopedSpan mv(ctx, "vstore.move");
    if (!(site == owner_site)) {
      if (rec.location.is_cloud()) {
        if (site.kind == ExecSite::Kind::ec2) {
          // S3 → EC2, intra-cloud.
          co_await sim.delay(milliseconds(10) + transfer_time(size, mib_per_sec(20.0)));
        } else {
          auto got = co_await cloud_.s3().get(site_domain(cloud_, site).host().net_node(),
                                              rec.location.url, mv.ctx());
          if (!got.ok()) co_return got.error();
        }
      } else {
        VStoreNode* ownr = cloud_.node_by_key(rec.location.node);
        // A crashed owner usually restarts within the fault plan's downtime;
        // wait with backoff before declaring the argument unavailable.
        const RetryPolicy& rp = cloud_.config().retry;
        for (int attempt = 1; (ownr == nullptr || !ownr->online()) && attempt < rp.max_attempts;
             ++attempt) {
          co_await sim.delay(rp.backoff(attempt, rng_));
          ownr = cloud_.node_by_key(rec.location.node);
        }
        if (ownr == nullptr || !ownr->online()) {
          mv.set_error("owner offline");
          co_return Error{Errc::unavailable, "object owner offline: " + name};
        }
        auto read = co_await ownr->fs_.read(name, mv.ctx());
        if (!read.ok()) co_return read.error();
        if (site.kind == ExecSite::Kind::ec2) {
          co_await net.transfer(ownr->chimera().net_node(), cloud_.cloud_endpoint(), size,
                                cloud_.config().transport.profile(), mv.ctx());
        } else {
          co_await net.transfer(ownr->chimera().net_node(),
                                site_domain(cloud_, site).host().net_node(), size,
                                cloud_.lan_profile(), mv.ctx());
        }
      }
    } else if (!rec.location.is_cloud()) {
      // Executing at the owner still reads the object off its disk.
      VStoreNode* ownr = cloud_.node_by_key(rec.location.node);
      auto read = co_await ownr->fs_.read(name, mv.ctx());
      if (!read.ok()) co_return read.error();
    }
  }
  out.move = sim.now() - m0;

  // --- Execute the stages back-to-back ------------------------------------
  const TimePoint e0 = sim.now();
  Bytes stage_input = size;
  for (const auto& stage : stages) {
    stage_input = co_await services::execute_service(stage, site_domain(cloud_, site),
                                                     stage_input, ctx);
  }
  out.output = stage_input;
  out.exec = sim.now() - e0;

  // --- Return the result to the requester ---------------------------------
  const TimePoint r0 = sim.now();
  {
    obs::ScopedSpan rt(ctx, "vstore.return");
    const bool site_is_me = site.kind == ExecSite::Kind::home_node && site.node == chimera_.id();
    if (!site_is_me) {
      if (site.kind == ExecSite::Kind::ec2) {
        if (out.output > 0) {
          co_await net.transfer(cloud_.cloud_endpoint(), chimera_.net_node(), out.output,
                                cloud_.config().transport.profile(), rt.ctx());
        } else {
          co_await net.send_message(cloud_.cloud_endpoint(), chimera_.net_node(), 50, rt.ctx());
        }
      } else {
        auto* vn = cloud_.node_by_key(site.node);
        if (out.output > 0) {
          co_await net.transfer(vn->chimera().net_node(), chimera_.net_node(), out.output,
                                cloud_.lan_profile(), rt.ctx());
        } else {
          co_await net.send_message(vn->chimera().net_node(), chimera_.net_node(), 50, rt.ctx());
        }
      }
    }
    if (out.output > 0) {
      obs::ScopedSpan xs(rt.ctx(), "vmm.xensocket");
      xs.attr("bytes", static_cast<std::uint64_t>(out.output));
      co_await xensocket_.transfer(out.output);
    }
  }
  out.result_return = sim.now() - r0;

  co_await command_round_trip(ctx);
  out.total = sim.now() - t0;
  co_return Result<void>{};
}

sim::Task<Result<ProcessOutcome>> VStoreNode::fetch_process(
    const std::string& name, const services::ServiceProfile& service, DecisionPolicy policy,
    obs::Ctx parent) {
  auto& sim = cloud_.sim();
  const TimePoint t0 = sim.now();
  obs::ScopedSpan sp(op_ctx(parent), "vstore.fetch_process");
  sp.attr("object", name);

  // "When the node storing the object receives the request, it uses the
  // service identifier to first determine if the requesting node is capable
  // of executing the service itself. In that case, the object is simply
  // returned as in the regular fetch operation, and the service processing
  // is performed at the requesting node's VStore++ guest domain."
  if (has_service(service) && service.admissible(app_domain_)) {
    auto fetched = co_await fetch_object(name, sp.ctx());
    if (!fetched.ok()) {
      sp.set_error(fetched.error().message);
      co_return fetched.error();
    }
    ProcessOutcome out;
    out.site = ExecSite{ExecSite::Kind::home_node, chimera_.id()};
    out.dht_lookup = fetched->dht_lookup;
    out.move = fetched->inter_node + fetched->inter_domain;
    const TimePoint e0 = sim.now();
    out.output = co_await services::execute_service(service, app_domain_, fetched->size, sp.ctx());
    out.exec = sim.now() - e0;
    out.total = sim.now() - t0;
    co_return out;
  }

  // Otherwise: owner-or-elsewhere, via the same decision machinery; the
  // requester is not a candidate (it cannot run the service).
  auto outcome = co_await process(name, service, policy, std::nullopt, sp.ctx());
  if (!outcome.ok()) {
    sp.set_error(outcome.error().message);
    co_return outcome.error();
  }
  ProcessOutcome out = *outcome;
  out.total = sim.now() - t0;
  co_return out;
}

}  // namespace c4h::vstore
