#include "src/vstore/home_cloud.hpp"

#include <algorithm>
#include <cassert>

namespace c4h::vstore {

HomeNodeSpec HomeCloudConfig::netbook_spec(const std::string& name) {
  HomeNodeSpec s;
  s.host.name = name;
  s.host.cores = 2;
  s.host.ghz = 1.66;  // dual-core 1.66 GHz Intel Atom N280
  s.host.memory = 1024_MB;
  s.host.battery.capacity_wh = 28.0;
  s.guest_vcpus = 1;
  s.guest_memory = 512_MB;
  return s;
}

HomeNodeSpec HomeCloudConfig::desktop_spec(const std::string& name) {
  HomeNodeSpec s;
  s.host.name = name;
  s.host.cores = 4;
  s.host.ghz = 2.3;  // 2.3 GHz quad-core desktop
  s.host.memory = 4096_MB;
  s.guest_vcpus = 4;
  s.guest_memory = 1024_MB;
  s.fs.mandatory_capacity = 16_GB;
  s.fs.voluntary_capacity = 8_GB;
  s.fs.write_rate = mib_per_sec(90.0);  // desktop-class disk
  s.fs.read_rate = mib_per_sec(110.0);
  return s;
}

HomeCloud::HomeCloud(HomeCloudConfig config)
    : config_(std::move(config)),
      owned_sim_(std::make_unique<sim::Simulation>(config_.seed)),
      sim_(owned_sim_.get()),
      owned_topo_(std::make_unique<net::Topology>()),
      topo_build_(owned_topo_.get()) {
  // Standalone world: the "internet" is just the cloud endpoint.
  switch_node_ = topo_build_->add_node();
  gateway_wan_ = topo_build_->add_node();
  cloud_ep_ = topo_build_->add_node();
  topo_build_->add_duplex(switch_node_, gateway_wan_, config_.lan_rate, config_.lan_latency);
  wan_up_link_ =
      topo_build_->add_link(gateway_wan_, cloud_ep_, config_.wan_up, config_.wan_latency,
                            config_.wan_latency_jitter, config_.wan_rate_jitter);
  wan_down_link_ =
      topo_build_->add_link(cloud_ep_, gateway_wan_, config_.wan_down, config_.wan_latency,
                            config_.wan_latency_jitter, config_.wan_rate_jitter);
  tracer_ = std::make_unique<obs::Tracer>(*sim_, config_.seed);
  for (int i = 0; i < config_.netbooks; ++i) {
    add_node(HomeCloudConfig::netbook_spec(config_.home_name + "/netbook-" + std::to_string(i)));
  }
  if (config_.with_desktop) {
    add_node(HomeCloudConfig::desktop_spec(config_.home_name + "/desktop"));
  }
}

HomeCloud::HomeCloud(Neighborhood& hood, HomeCloudConfig config)
    : config_(std::move(config)),
      hood_(&hood),
      sim_(&hood.sim()),
      topo_build_(&hood.topology()) {
  // Federated world: the home's gateway uplinks into the shared internet
  // core; the cloud endpoint is the neighborhood's.
  switch_node_ = topo_build_->add_node();
  gateway_wan_ = topo_build_->add_node();
  cloud_ep_ = hood.cloud_endpoint();
  topo_build_->add_duplex(switch_node_, gateway_wan_, config_.lan_rate, config_.lan_latency);
  wan_up_link_ = topo_build_->add_link(gateway_wan_, hood.internet_core(), config_.wan_up,
                                       config_.wan_latency, config_.wan_latency_jitter,
                                       config_.wan_rate_jitter);
  wan_down_link_ = topo_build_->add_link(hood.internet_core(), gateway_wan_, config_.wan_down,
                                         config_.wan_latency, config_.wan_latency_jitter,
                                         config_.wan_rate_jitter);
  tracer_ = std::make_unique<obs::Tracer>(*sim_, config_.seed);
  hood.register_home(this);
  for (int i = 0; i < config_.netbooks; ++i) {
    add_node(HomeCloudConfig::netbook_spec(config_.home_name + "/netbook-" + std::to_string(i)));
  }
  if (config_.with_desktop) {
    add_node(HomeCloudConfig::desktop_spec(config_.home_name + "/desktop"));
  }
}

HomeCloud::~HomeCloud() = default;

std::size_t HomeCloud::add_node(const HomeNodeSpec& spec) {
  assert(!finalized_ && "add_node must precede bootstrap()");
  auto host = std::make_unique<vmm::Host>(*sim_, spec.host);
  const auto nn = topo_build_->add_node();
  topo_build_->add_duplex(nn, switch_node_, config_.lan_rate, config_.lan_latency);
  host->set_net_node(nn);
  hosts_.push_back(std::move(host));
  pending_specs_.push_back(spec);
  return hosts_.size() - 1;
}

void HomeCloud::bootstrap() {
  assert(!finalized_);
  finalized_ = true;

  if (hood_ == nullptr) {
    owned_net_ = std::make_unique<net::Network>(*sim_, std::move(*owned_topo_));
    net_ = owned_net_.get();
    owned_s3_ = std::make_unique<cloud::S3Store>(*net_, cloud_ep_, config_.transport);
    s3_ = owned_s3_.get();
    owned_ec2_ = std::make_unique<cloud::Ec2Instance>(
        *sim_, cloud_ep_, cloud::Ec2Instance::extra_large_spec());
    ec2_ = owned_ec2_.get();
  } else {
    net_ = &hood_->network();  // finalizes the shared topology on first call
    s3_ = &hood_->s3(config_.transport);
    ec2_ = &hood_->ec2();
  }

  overlay_ = std::make_unique<overlay::Overlay>(*sim_, *net_, config_.overlay);
  kv_ = std::make_unique<kv::KvStore>(*overlay_, config_.kv);
  registry_ = std::make_unique<services::ServiceRegistry>(*kv_);

  // Mirror layer activity into this home's registry. The network is only
  // wired when this home owns it: in a Neighborhood the net is shared and a
  // per-home registry would misattribute the other homes' traffic.
  kv_->set_metrics(&metrics_);
  if (hood_ == nullptr) net_->set_metrics(&metrics_);
  placement_engine_.register_metrics(metrics_);

  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const HomeNodeSpec& spec = pending_specs_[i];
    auto& chim = overlay_->create_node(spec.host.name, *hosts_[i]);
    auto& guest = hosts_[i]->create_guest(spec.host.name + "/app-vm", spec.guest_vcpus,
                                          spec.guest_memory);
    nodes_.push_back(std::make_unique<VStoreNode>(*this, chim, guest, spec.fs, spec.xensocket));
  }

  // Join everyone and publish initial resource records.
  sim_->run_task([](HomeCloud& hc) -> sim::Task<> {
    overlay::ChimeraNode* bootstrap_node = nullptr;
    for (auto& n : hc.nodes_) {
      (void)co_await hc.overlay_->join(n->chimera(), bootstrap_node);
      if (bootstrap_node == nullptr) bootstrap_node = &n->chimera();
    }
    for (auto& n : hc.nodes_) {
      co_await n->monitor().publish_once();
    }
  }(*this));

  if (config_.start_monitors) {
    for (auto& n : nodes_) n->monitor().start();
  }
  if (config_.start_stabilization) overlay_->start_stabilization();
}

sim::Task<> HomeCloud::restart_node(std::size_t i) {
  VStoreNode& n = *nodes_[i];
  if (n.online()) co_return;
  overlay::ChimeraNode* boot = nullptr;
  for (auto& m : nodes_) {
    if (m.get() != &n && m->online()) {
      boot = &m->chimera();
      break;
    }
  }
  (void)co_await overlay_->restart(n.chimera(), boot);
  // Bring the node's background processes back for its new incarnation (the
  // previous monitor loop retires on the incarnation bump).
  if (config_.start_monitors) {
    n.monitor().start();
  } else {
    co_await n.monitor().publish_once();
  }
}

bool HomeCloud::crash_node(std::size_t i) {
  VStoreNode& n = *nodes_[i % nodes_.size()];
  if (!n.online()) return false;
  // Safety floor: every key has at most replication+1 live holders
  // (owner + replicas). Refuse any crash that would take the concurrent
  // offline count past `replication`, so at least one live copy of every
  // acknowledged entry always remains.
  std::size_t offline = 0;
  for (const auto& m : nodes_) {
    if (!m->online()) ++offline;
  }
  if (offline + 1 > static_cast<std::size_t>(std::max(0, config_.kv.replication))) return false;
  overlay_->crash(n.chimera());
  return true;
}

void HomeCloud::restart_node_async(std::size_t i) {
  sim_->spawn(restart_node(i % nodes_.size()));
}

sim::FaultPlan& HomeCloud::enable_chaos(const sim::FaultSpec& spec) {
  assert(finalized_ && "enable_chaos must follow bootstrap()");
  sim::FaultPlan& plan = sim::install_fault_plan(*sim_, spec);

  sim::ChurnHooks hooks;
  hooks.victim_count = [this] { return nodes_.size(); };
  hooks.crash = [this](std::size_t victim) { return crash_node(victim); };
  hooks.restart = [this](std::size_t victim) { restart_node_async(victim); };
  hooks.uplink_down = [this](bool down) {
    if (down) {
      set_wan_rates(Rate{1.0}, Rate{1.0});  // effectively parked, not severed
    } else {
      set_wan_rates(config_.wan_up, config_.wan_down);
    }
  };
  plan.start_churn(hooks);
  return plan;
}

VStoreNode* HomeCloud::node_by_key(Key k) {
  for (auto& n : nodes_) {
    if (n->chimera().id() == k) return n.get();
  }
  return nullptr;
}

net::TcpProfile HomeCloud::lan_profile() const {
  net::TcpProfile p;
  p.rtt = Duration::zero();       // window never binds on the LAN
  p.handshake = milliseconds(3);  // connection setup + splice plumbing
  return p;
}

Duration HomeCloud::estimate_move(const ExecSite& from, const ExecSite& to, Bytes size) const {
  if (from == to) return Duration::zero();
  const bool from_cloud = from.kind == ExecSite::Kind::ec2;
  const bool to_cloud = to.kind == ExecSite::Kind::ec2;
  if (from_cloud && to_cloud) {
    return milliseconds(10) + transfer_time(size, mib_per_sec(20.0));  // intra-cloud
  }
  if (!from_cloud && !to_cloud) {
    return milliseconds(5) + transfer_time(size, config_.lan_rate);
  }
  // Crossing the WAN; direction decides which link binds.
  const Rate r = to_cloud ? config_.wan_up : config_.wan_down;
  return config_.transport.handshake + transfer_time(size, r);
}

}  // namespace c4h::vstore
