// The VStore++ command protocol (§IV): "Every method call in VStore++ is
// converted into a command. ... Each command packet consists of packet
// length, command type, the requesting service ID, VMs domain ID, shared
// memory reference and command data. ... Commands are usually less than 50
// bytes."
#pragma once

#include <cstdint>
#include <string>

#include "src/common/result.hpp"
#include "src/common/serial.hpp"

namespace c4h::vstore {

enum class CommandType : std::uint8_t {
  create_object = 1,
  store_object,
  fetch_object,
  process_object,
  fetch_process,
  ack,
  error_reply,
};

struct CommandPacket {
  CommandType type = CommandType::ack;
  std::uint32_t service_id = 0;
  std::uint32_t domain_id = 0;
  std::uint64_t shm_ref = 0;  // grant-table reference for the data channel
  std::string data;           // command-specific payload (e.g. object name)

  Buffer serialize() const {
    Writer body;
    body.write(type);
    body.write(service_id);
    body.write(domain_id);
    body.write(shm_ref);
    body.write(data);
    Writer w;
    w.write(static_cast<std::uint32_t>(body.size()));  // packet length header
    Buffer out = std::move(w).take();
    const Buffer& b = body.buffer();
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  static Result<CommandPacket> deserialize(const Buffer& buf) {
    Reader r{buf};
    auto len = r.read<std::uint32_t>();
    if (!len) return len.error();
    if (r.remaining() != *len) return Error{Errc::io_error, "length header mismatch"};
    CommandPacket p;
    auto type = r.read<CommandType>();
    if (!type) return type.error();
    p.type = *type;
    auto sid = r.read<std::uint32_t>();
    if (!sid) return sid.error();
    p.service_id = *sid;
    auto did = r.read<std::uint32_t>();
    if (!did) return did.error();
    p.domain_id = *did;
    auto shm = r.read<std::uint64_t>();
    if (!shm) return shm.error();
    p.shm_ref = *shm;
    auto data = r.read_string();
    if (!data) return data.error();
    p.data = std::move(*data);
    return p;
  }

  std::size_t wire_size() const { return serialize().size(); }
};

}  // namespace c4h::vstore
