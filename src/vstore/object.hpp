// VStore++ object model (§III): objects are named, typed, tagged blobs with
// a one-to-one mapping onto files. The metadata entry stored in the
// key-value layer ("serialized data containing object location and
// metadata, such as tags, access information") is ObjectRecord.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/key.hpp"
#include "src/common/result.hpp"
#include "src/common/serial.hpp"
#include "src/common/units.hpp"
#include "src/vstore/acl.hpp"

namespace c4h::vstore {

struct ObjectMeta {
  std::string name;
  std::string type;               // file type, e.g. "jpg", "avi", "mp3"
  Bytes size = 0;
  std::vector<std::string> tags;  // e.g. "private", "surveillance"
  std::int64_t created_at_ns = 0;

  // Access control (§VII future work; see acl.hpp). Empty owner = open.
  std::string owner;
  Acl acl;

  bool has_tag(const std::string& t) const {
    return std::find(tags.begin(), tags.end(), t) != tags.end();
  }

  Key key() const { return Key::from_name(name); }
};

/// Where the authoritative copy of an object lives.
struct ObjectLocation {
  enum class Kind : std::uint8_t { home_node, remote_cloud };
  Kind kind = Kind::home_node;
  Key node;         // valid when kind == home_node
  std::string url;  // valid when kind == remote_cloud ("URL location of
                    // object in users S3 storage bucket is stored as value")

  bool is_cloud() const { return kind == Kind::remote_cloud; }
};

struct ObjectRecord {
  ObjectMeta meta;
  ObjectLocation location;

  Buffer serialize() const {
    Writer w;
    w.write(meta.name);
    w.write(meta.type);
    w.write(meta.size);
    w.write_vector(meta.tags, [](Writer& ww, const std::string& t) { ww.write(t); });
    w.write(meta.created_at_ns);
    w.write(meta.owner);
    meta.acl.serialize(w);
    w.write(location.kind);
    w.write(location.node.raw());
    w.write(location.url);
    return std::move(w).take();
  }

  static Result<ObjectRecord> deserialize(const Buffer& b) {
    Reader r{b};
    ObjectRecord rec;
    auto name = r.read_string();
    if (!name) return name.error();
    rec.meta.name = std::move(*name);
    auto type = r.read_string();
    if (!type) return type.error();
    rec.meta.type = std::move(*type);
    auto size = r.read<Bytes>();
    if (!size) return size.error();
    rec.meta.size = *size;
    auto tags = r.read_vector<std::string>([](Reader& rr) { return rr.read_string(); });
    if (!tags) return tags.error();
    rec.meta.tags = std::move(*tags);
    auto ts = r.read<std::int64_t>();
    if (!ts) return ts.error();
    rec.meta.created_at_ns = *ts;
    auto owner = r.read_string();
    if (!owner) return owner.error();
    rec.meta.owner = std::move(*owner);
    auto acl = Acl::deserialize(r);
    if (!acl) return acl.error();
    rec.meta.acl = std::move(*acl);
    auto kind = r.read<ObjectLocation::Kind>();
    if (!kind) return kind.error();
    rec.location.kind = *kind;
    auto node = r.read<std::uint64_t>();
    if (!node) return node.error();
    rec.location.node = Key{*node};
    auto url = r.read_string();
    if (!url) return url.error();
    rec.location.url = std::move(*url);
    return rec;
  }
};

}  // namespace c4h::vstore
