// HomeCloud — builder and container for a complete Cloud4Home deployment:
// the prototypical testbed of §V (five Atom netbooks + one quad-core
// desktop on a 95.5 Mbps LAN, a designated gateway with a wireless uplink
// to the public cloud, S3 storage and an EC2 extra-large instance), plus
// the full software stack (overlay, KV store, monitors, service registry,
// VStore++ on every node).
//
// A HomeCloud normally owns its whole world (simulation, network, public
// cloud). It can instead be built *into a Neighborhood* — a shared world
// where several homes uplink into one internet core and share the public
// cloud — to model collaborating Cloud4Home infrastructures (§VII (v)).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/cloud.hpp"
#include "src/common/retry.hpp"
#include "src/federation/neighborhood.hpp"
#include "src/kv/kvstore.hpp"
#include "src/mon/monitor.hpp"
#include "src/net/network.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/overlay/overlay.hpp"
#include "src/services/registry.hpp"
#include "src/sim/simulation.hpp"
#include "src/vmm/machine.hpp"
#include "src/vstore/adaptive.hpp"
#include "src/vstore/placement_engine.hpp"
#include "src/vstore/vstore.hpp"

namespace c4h::vstore {

struct HomeNodeSpec {
  vmm::HostSpec host;
  int guest_vcpus = 1;
  Bytes guest_memory = 512_MB;
  ObjectFsConfig fs;
  vmm::XenSocketConfig xensocket;
};

struct HomeCloudConfig {
  // The paper's testbed by default.
  int netbooks = 5;
  bool with_desktop = true;

  Rate lan_rate = mbps(95.5);
  Duration lan_latency = microseconds(150);

  // WAN (GaTech wireless → AWS): asymmetric, jittery, averages well below
  // the nominal max.
  Rate wan_up = mib_per_sec(1.0);
  Rate wan_down = mib_per_sec(1.45);
  Duration wan_latency = milliseconds(25);
  double wan_latency_jitter = 0.2;
  double wan_rate_jitter = 0.45;

  cloud::CloudTransport transport;
  kv::KvConfig kv;
  overlay::OverlayConfig overlay;
  mon::MonitorConfig monitor;

  /// Retry/backoff for the hardened VStore++ paths (fetch retries, process
  /// waiting out an owner's restart). The KV layer's policy lives in `kv`.
  RetryPolicy retry;

  bool start_monitors = true;
  bool start_stabilization = false;
  std::uint64_t seed = 42;

  /// Fixed cost of dispatching a service invocation on a node other than the
  /// requester: remote command handling, service wake-up, queueing. Measured
  /// fractions of a second on the paper's Atom-class hardware; this is what
  /// keeps tiny inputs cheapest at the requester (Fig 7's small-image case).
  Duration remote_dispatch = milliseconds(350);

  /// Online adaptive placement (DecisionPolicy::learned): bandit
  /// exploration, prior blending, hysteresis, and the store-veto budget.
  PlacementEngineConfig placement;

  /// Name prefix for this home's devices (distinguishes homes in a
  /// neighborhood; node names feed the 40-bit overlay ids).
  std::string home_name = "home";

  static HomeNodeSpec netbook_spec(const std::string& name);
  static HomeNodeSpec desktop_spec(const std::string& name);
};

class HomeCloud {
 public:
  /// Standalone home: owns its simulation, network, and public cloud.
  explicit HomeCloud(HomeCloudConfig config = {});

  /// Federated home: built into a shared Neighborhood world. The home's
  /// gateway uplinks to the neighborhood's internet core; S3/EC2 are the
  /// neighborhood's shared cloud.
  HomeCloud(Neighborhood& hood, HomeCloudConfig config);

  ~HomeCloud();

  HomeCloud(const HomeCloud&) = delete;
  HomeCloud& operator=(const HomeCloud&) = delete;

  /// Adds a node before bootstrap(); returns its index.
  std::size_t add_node(const HomeNodeSpec& spec);

  /// Joins every node into the overlay, publishes initial resource records,
  /// optionally starts monitors/stabilization. Runs the simulation until
  /// the control plane is quiescent.
  void bootstrap();

  sim::Simulation& sim() { return *sim_; }
  net::Network& network() { return *net_; }
  overlay::Overlay& overlay() { return *overlay_; }
  kv::KvStore& kv() { return *kv_; }

  /// This deployment's trace sink. Disabled by default — call
  /// `tracer().set_enabled(true)` to record spans for subsequent operations.
  obs::Tracer& tracer() { return *tracer_; }

  /// This deployment's metrics registry. Always on: the layers record into
  /// it with O(1) counter/histogram updates.
  obs::Registry& metrics() { return metrics_; }

  /// Root trace context for a new operation: null (all recording no-ops)
  /// while the tracer is disabled.
  obs::Ctx trace_ctx() {
    return tracer_->enabled() ? obs::Ctx{tracer_.get(), 0} : obs::Ctx{};
  }

  cloud::S3Store& s3() { return *s3_; }
  cloud::Ec2Instance& ec2() { return *ec2_; }
  services::ServiceRegistry& registry() { return *registry_; }
  const HomeCloudConfig& config() const { return config_; }
  Neighborhood* neighborhood() { return hood_; }

  std::size_t node_count() const { return nodes_.size(); }
  VStoreNode& node(std::size_t i) { return *nodes_.at(i); }

  /// The desktop node (last added when with_desktop), by convention the
  /// public-cloud gateway.
  VStoreNode& desktop() { return *nodes_.back(); }

  VStoreNode* node_by_key(Key k);

  /// True when services are deployed on the EC2 instance (set by examples/
  /// benches that use the cloud for processing).
  void deploy_service_in_cloud(const services::ServiceProfile& p) {
    cloud_services_.insert(p.registry_key_name());
  }
  bool cloud_has_service(const services::ServiceProfile& p) const {
    return cloud_services_.contains(p.registry_key_name());
  }

  /// Nominal movement-time estimate between sites (used by the decision
  /// engine; a static estimate, deliberately ignorant of current load).
  Duration estimate_move(const ExecSite& from, const ExecSite& to, Bytes size) const;

  /// Transfer profile for LAN node-to-node object movement (zero-copy
  /// splice path: no window cap worth modelling, small handshake).
  net::TcpProfile lan_profile() const;

  net::NetNodeId cloud_endpoint() const { return cloud_ep_; }

  /// EWMA of observed home↔cloud throughput, fed by every completed S3
  /// interaction; drives AdaptiveStoragePolicy (future work (iv)).
  WanEstimator& wan_estimator() { return wan_estimator_; }

  /// Online adaptive placement engine backing DecisionPolicy::learned
  /// (bandit + WAN-repriced cost model + hysteresis). Counters are
  /// registered on metrics() at construction.
  PlacementEngine& placement_engine() { return placement_engine_; }

  /// Changes the WAN's nominal rates mid-run (brown-outs, congestion);
  /// in-flight transfers adjust immediately.
  void set_wan_rates(Rate up, Rate down) {
    net_->set_link_capacity(wan_up_link_, up);
    net_->set_link_capacity(wan_down_link_, down);
  }

  /// Runs a coroutine to completion on the simulation; periodic background
  /// processes (monitors, heartbeats) keep running but do not block return.
  void run(sim::Task<> t) { sim_->run_task(std::move(t)); }

  /// Arms deterministic fault injection (sim/fault.hpp) across the whole
  /// deployment and wires the churn hooks: node crash + restart (bounded so
  /// no key can lose every live copy at once) and WAN uplink flaps. Must
  /// follow bootstrap(). Returns the installed plan (owned by the
  /// simulation) for inspection and disarming.
  sim::FaultPlan& enable_chaos(const sim::FaultSpec& spec);

  /// Crash node `i` now, subject to this home's safety floor (refuses when
  /// one more concurrent offline node could strand a fully-replicated key).
  /// Returns whether the crash happened. Shared by this home's own chaos
  /// hooks and City-wide churn.
  bool crash_node(std::size_t i);

  /// Schedules node `i`'s restart (overlay re-join + monitor revival) as a
  /// detached task on the simulation.
  void restart_node_async(std::size_t i);

 private:
  sim::Task<> restart_node(std::size_t i);

  friend class VStoreNode;

  HomeCloudConfig config_;

  std::unique_ptr<obs::Tracer> tracer_;  // constructed once sim_ is known
  obs::Registry metrics_;

  // World: owned when standalone, borrowed from the Neighborhood otherwise.
  Neighborhood* hood_ = nullptr;
  std::unique_ptr<sim::Simulation> owned_sim_;
  sim::Simulation* sim_ = nullptr;
  std::unique_ptr<net::Topology> owned_topo_;  // standalone, pre-finalize
  net::Topology* topo_build_ = nullptr;        // where wiring happens
  bool finalized_ = false;

  net::NetNodeId switch_node_;
  net::NetNodeId gateway_wan_;  // WAN side of the home gateway
  net::NetNodeId cloud_ep_;
  net::LinkId wan_up_link_ = 0;
  net::LinkId wan_down_link_ = 0;
  WanEstimator wan_estimator_;
  // Engine seed is mixed from the deployment seed so `--seed` varies the
  // exploration stream; never forked from the sim Rng (that would shift
  // every downstream stream and move existing golden histories).
  static PlacementEngineConfig seeded_placement(const HomeCloudConfig& c) {
    PlacementEngineConfig p = c.placement;
    p.seed ^= c.seed * 0x2545F4914F6CDD1DULL;
    return p;
  }
  PlacementEngine placement_engine_{seeded_placement(config_), wan_estimator_};

  std::vector<std::unique_ptr<vmm::Host>> hosts_;
  std::vector<HomeNodeSpec> pending_specs_;
  std::unique_ptr<net::Network> owned_net_;
  net::Network* net_ = nullptr;
  std::unique_ptr<overlay::Overlay> overlay_;
  std::unique_ptr<kv::KvStore> kv_;
  std::unique_ptr<cloud::S3Store> owned_s3_;
  cloud::S3Store* s3_ = nullptr;
  std::unique_ptr<cloud::Ec2Instance> owned_ec2_;
  cloud::Ec2Instance* ec2_ = nullptr;
  std::unique_ptr<services::ServiceRegistry> registry_;
  std::vector<std::unique_ptr<VStoreNode>> nodes_;
  std::set<std::string> cloud_services_;
};

}  // namespace c4h::vstore
