// Placement policies (§III-B, §V).
//
// Storage: "the target location for the store operation is determined via
// the policy associated with the store. The service policy describes a set
// of rules which 'guide' the routing of the store request" — e.g. images
// below a size threshold stay on the home desktop, larger ones go to the
// remote cloud; private file types stay home. Rules are statically encoded,
// first match wins.
//
// Execution: chimeraGetDecision's 'policy' parameter selects among routing
// goals — "overall service performance, vs. achieving balanced resource
// utilization or improved battery lives for portable devices."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/key.hpp"
#include "src/common/units.hpp"
#include "src/vstore/object.hpp"

namespace c4h::vstore {

enum class StoreTarget : std::uint8_t {
  local,         // this node's mandatory bin
  home_any,      // a voluntary bin somewhere in the home cloud
  remote_cloud,  // S3
};

struct StoreRule {
  // Matchers (all present ones must match).
  std::optional<std::string> tag;
  std::optional<std::string> type;
  Bytes min_size = 0;
  Bytes max_size = UINT64_MAX;

  StoreTarget target = StoreTarget::local;

  bool matches(const ObjectMeta& m) const {
    if (tag.has_value() && !m.has_tag(*tag)) return false;
    if (type.has_value() && m.type != *type) return false;
    return m.size >= min_size && m.size <= max_size;
  }
};

struct StoragePolicy {
  std::vector<StoreRule> rules;
  StoreTarget fallback = StoreTarget::local;

  StoreTarget target_for(const ObjectMeta& m) const {
    for (const auto& r : rules) {
      if (r.matches(m)) return r.target;
    }
    return fallback;
  }

  /// Default: keep everything local, spill handled by the store path.
  static StoragePolicy local_first() { return {}; }

  /// §V-B's policy: private data (.mp3 in the experiments) stays home,
  /// shareable data goes to the remote cloud.
  static StoragePolicy privacy(std::string private_type = "mp3") {
    StoragePolicy p;
    StoreRule keep_private;
    keep_private.type = std::move(private_type);
    keep_private.target = StoreTarget::local;
    StoreRule tagged_private;
    tagged_private.tag = "private";
    tagged_private.target = StoreTarget::local;
    p.rules = {keep_private, tagged_private};
    p.fallback = StoreTarget::remote_cloud;
    return p;
  }

  /// The surveillance example: images up to `threshold` stored on a home
  /// node, larger ones in the remote cloud.
  static StoragePolicy size_threshold(Bytes threshold) {
    StoragePolicy p;
    StoreRule small;
    small.max_size = threshold;
    small.target = StoreTarget::local;
    StoreRule large;
    large.min_size = threshold + 1;
    large.target = StoreTarget::remote_cloud;
    p.rules = {small, large};
    return p;
  }
};

/// chimeraGetDecision's routing goal.
enum class DecisionPolicy : std::uint8_t {
  performance,           // minimize locate + movement + execution time
  balanced_utilization,  // spread load across nodes
  battery_aware,         // spare low-battery portable devices
  learned,               // online PlacementEngine (bandit + cost model)
};

/// A possible execution/storage site.
struct ExecSite {
  enum class Kind : std::uint8_t { home_node, ec2 };
  Kind kind = Kind::home_node;
  Key node;  // home node id; unused for ec2

  friend bool operator==(const ExecSite& a, const ExecSite& b) {
    return a.kind == b.kind && (a.kind == Kind::ec2 || a.node == b.node);
  }
};

/// Everything the decision engine knows about one candidate at choice time.
struct CandidateInfo {
  ExecSite site;
  Duration move_in{};        // argument-object movement to the site
  Duration exec_estimate{};  // profile estimate adjusted for current load
  double cpu_load = 0;
  double battery = 1.0;
  bool battery_powered = false;
  // WAN decomposition of the move leg, for cost models that re-price it at
  // the *currently estimated* WAN rate instead of the configured one
  // (PlacementEngine). `move_in` already includes a move estimate priced at
  // configured rates; these fields let the engine redo that pricing.
  Bytes move_bytes = 0;       // bytes the move leg transfers (0 = data local)
  bool move_over_wan = false; // the move leg crosses the WAN link
  bool move_upload = false;   // WAN direction: true = home→cloud upload
  Duration dispatch{};        // fixed dispatch overhead added to the move leg
};

/// Pure selection function (unit-testable): picks a candidate index.
inline std::size_t choose_candidate(DecisionPolicy policy,
                                    const std::vector<CandidateInfo>& cands) {
  std::size_t best = 0;
  auto total = [](const CandidateInfo& c) {
    return to_seconds(c.move_in) + to_seconds(c.exec_estimate);
  };
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const CandidateInfo& a = cands[i];
    const CandidateInfo& b = cands[best];
    bool better = false;
    switch (policy) {
      case DecisionPolicy::performance:
        better = total(a) < total(b);
        break;
      case DecisionPolicy::balanced_utilization:
        // Primary: lower CPU load; tie-break on time.
        better = a.cpu_load < b.cpu_load - 0.05 ||
                 (std::abs(a.cpu_load - b.cpu_load) <= 0.05 && total(a) < total(b));
        break;
      case DecisionPolicy::battery_aware: {
        // Penalize battery-powered sites in proportion to the charge they
        // lack; a low-battery netbook only wins if it is much faster.
        auto score = [&](const CandidateInfo& c) {
          const double penalty = c.battery_powered ? (1.0 + 4.0 * (1.0 - c.battery)) : 1.0;
          return total(c) * penalty;
        };
        better = score(a) < score(b);
        break;
      }
      case DecisionPolicy::learned:
        // The online engine owns this policy (PlacementEngine::choose); as a
        // pure-function fallback, behave like `performance`.
        better = total(a) < total(b);
        break;
    }
    if (better) best = i;
  }
  return best;
}

}  // namespace c4h::vstore
