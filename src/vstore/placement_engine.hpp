// Online adaptive placement engine — ROADMAP item 4, the §III-B/§VII
// future-work direction ("associate learning methods and support dynamic
// adaptations") promoted to a first-class decision policy.
//
// The engine unifies the three adaptation primitives that previously sat
// unused by any hot path:
//
//   * WanEstimator   — EWMA of throughput observed on completed cloud
//                      transfers, per direction (src/vstore/adaptive.hpp);
//   * PlacementLearner — ε-greedy contextual bandit over execution sites
//                      (src/vstore/learner.hpp);
//   * a cost model   — the same per-candidate (move + exec) estimate that
//                      chimeraGetDecision trusts outright, built from
//                      src/mon resource records, but with any WAN leg
//                      re-priced at the estimator's *current* rates.
//
// Prediction blends the model prior with observed means: the prior acts as
// `prior_weight` pseudo-pulls, so a cold arm is ranked by the model and a
// well-pulled arm by its own history (the PR 3 per-phase span breakdown is
// the feedback signal). Decisions are damped by hysteresis — a challenger
// must beat the incumbent by `improvement_margin` AND the incumbent must
// have held the context for `min_dwell` before a switch is taken — so noisy
// near-tie estimates cannot thrash placement. All time is passed in
// explicitly (simulated TimePoint); the engine holds no clock and no
// entropy beyond its seeded Rng, keeping decisions a pure function of the
// observation history.
//
// Per-decision regret — the realized cost minus the cost predicted for the
// best candidate at choice time, accumulated in integer microseconds — and
// decision/switch/explore/veto counts are mirrored into the obs metrics
// registry (c4h.placement.*) for bench artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/obs/metrics.hpp"
#include "src/vstore/adaptive.hpp"
#include "src/vstore/learner.hpp"
#include "src/vstore/policy.hpp"

namespace c4h::vstore {

struct PlacementEngineConfig {
  double epsilon = 0.05;           // exploration probability after warm-up
  int min_pulls_per_arm = 1;       // warm-up floor: try every arm this often
  double min_gain = 0.1;           // learner recency floor (see learner.hpp)
  double prior_weight = 3.0;       // pseudo-pulls the cost-model prior carries
  Duration min_dwell = seconds(10);     // incumbent tenure before a switch
  double improvement_margin = 0.15;     // challenger must be this much better
  Duration upload_budget = seconds(20); // store-veto latency budget
  std::uint64_t seed = 0x9e3779b9;
};

class PlacementEngine {
 public:
  PlacementEngine(PlacementEngineConfig config, const WanEstimator& wan);

  /// Registers the engine's counters on `reg` (idempotent per registry);
  /// until called, counts are tracked locally only.
  void register_metrics(obs::Registry& reg);

  /// Cost-model prior for one candidate, in seconds: move + exec, with a
  /// WAN move leg re-priced at the estimator's current rate.
  double prior_seconds(const CandidateInfo& c) const;

  /// Blended prediction: prior counts as `prior_weight` pseudo-pulls
  /// against the learner's observed mean for (context, site).
  double predicted_seconds(const std::string& context, const CandidateInfo& c) const;

  /// Picks an execution site: warm-up pulls first, then ε-greedy over the
  /// blended predictions with dwell+margin hysteresis on the exploit path.
  ExecSite choose(const std::string& context, const std::vector<CandidateInfo>& candidates,
                  TimePoint now);

  /// Feeds back the observed site-attributable time (move + exec + result
  /// return — the per-phase span breakdown, excluding lookup/decision
  /// overhead the site choice cannot influence).
  void observe(const std::string& context, const ExecSite& site, Duration observed);

  /// Store-side adaptation: true when shipping `size` bytes to the remote
  /// cloud is predicted to blow the upload budget at current WAN rates, so
  /// the object should stay home. Counts vetoes.
  bool veto_cloud_store(Bytes size);

  /// Largest object worth uploading right now (shrinks when the uplink
  /// degrades — the knob AdaptiveChaosSoak watches re-converge).
  Bytes cloud_threshold() const {
    return AdaptiveStoragePolicy(*wan_, config_.upload_budget).cloud_threshold();
  }

  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t switches() const { return switches_; }
  std::uint64_t explorations() const { return explorations_; }
  std::uint64_t store_vetoes() const { return store_vetoes_; }
  /// Cumulative per-decision regret (realized − best-predicted, clamped ≥0).
  double regret_seconds() const { return regret_seconds_; }

  const PlacementLearner& learner() const { return learner_; }
  const PlacementEngineConfig& config() const { return config_; }

 private:
  struct ContextState {
    std::optional<ExecSite> incumbent;
    TimePoint incumbent_since{};
    double last_best_predicted = 0.0;  // best blended prediction at last choose
    bool has_prediction = false;
  };

  void count(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->add(n);
  }

  PlacementEngineConfig config_;
  const WanEstimator* wan_;
  PlacementLearner learner_;
  Rng rng_;
  std::map<std::string, ContextState> state_;

  std::uint64_t decisions_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t explorations_ = 0;
  std::uint64_t store_vetoes_ = 0;
  double regret_seconds_ = 0.0;

  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* switches_counter_ = nullptr;
  obs::Counter* explorations_counter_ = nullptr;
  obs::Counter* store_vetoes_counter_ = nullptr;
  obs::Counter* regret_us_counter_ = nullptr;
};

}  // namespace c4h::vstore
