// VStore++ — the Cloud4Home data-services layer (§III).
//
// Each home node runs the full VStore++ stack: applications in a guest VM
// issue CreateObject / StoreObject / FetchObject / Process / Fetch+Process
// commands to the control domain over a XenSocket channel; the control
// domain consults the Chimera-based metadata layer for object locations and
// service registrations, applies storage and routing policies, and moves
// data between local bins, other home nodes' voluntary bins, and the remote
// cloud.
//
// Operations return outcome structs carrying the per-phase cost breakdown
// (DHT lookup / inter-node / inter-domain / decision / execution), which is
// exactly what Table I and Figs 4-8 report.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cloud/cloud.hpp"
#include "src/common/retry.hpp"
#include "src/common/rng.hpp"
#include "src/kv/kvstore.hpp"
#include "src/mon/monitor.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/overlay/overlay.hpp"
#include "src/services/registry.hpp"
#include "src/services/service.hpp"
#include "src/vmm/machine.hpp"
#include "src/vmm/xensocket.hpp"
#include "src/vstore/command.hpp"
#include "src/vstore/object.hpp"
#include "src/vstore/object_fs.hpp"
#include "src/vstore/policy.hpp"

namespace c4h::vstore {

class HomeCloud;

struct StoreOptions {
  bool blocking = true;
  StoragePolicy policy = StoragePolicy::local_first();
  DecisionPolicy decision = DecisionPolicy::performance;
};

struct StoreOutcome {
  ObjectLocation location;
  Duration total{};
  Duration inter_domain{};  // guest → dom0 via XenSocket
  Duration decision{};      // placement choice (incl. resource-record reads)
  Duration placement{};     // disk write / LAN transfer / S3 put
  Duration metadata{};      // KV put
};

struct FetchOutcome {
  Bytes size = 0;
  bool from_cloud = false;
  bool local = false;
  Duration total{};
  Duration dht_lookup{};    // KV metadata get
  Duration inter_node{};    // other-node or cloud transfer (incl. their disk)
  Duration inter_domain{};  // dom0 → guest via XenSocket
};

struct ProcessOutcome {
  ExecSite site;
  Bytes output = 0;
  Duration total{};
  Duration dht_lookup{};
  Duration decision{};
  Duration move{};  // argument movement to the execution site
  Duration exec{};
  Duration result_return{};
};

/// Per-node counters for the hardened operation paths (fault tolerance
/// bookkeeping; the cost breakdowns live in the outcome structs).
struct VStoreNodeStats {
  std::uint64_t fetch_retries = 0;         // fetch attempts beyond the first
  std::uint64_t fetch_cloud_fallbacks = 0; // served from S3 while owner down
  std::uint64_t store_reroutes = 0;        // placement re-routed around a failure
  std::uint64_t op_failures = 0;           // operations that exhausted retries
};

/// One home node's VStore++ instance (guest-facing API + dom0 logic).
class VStoreNode {
 public:
  VStoreNode(HomeCloud& cloud, overlay::ChimeraNode& chimera, vmm::Domain& app_domain,
             ObjectFsConfig fs_config, vmm::XenSocketConfig xs_config);

  overlay::ChimeraNode& chimera() { return chimera_; }
  vmm::Host& host() { return chimera_.host(); }
  vmm::Domain& app_domain() { return app_domain_; }
  ObjectFs& fs() { return fs_; }
  vmm::XenSocketChannel& xensocket() { return xensocket_; }
  mon::ResourceMonitor& monitor() { return *monitor_; }
  const std::string& name() const { return chimera_.name(); }
  bool online() const { return chimera_.online(); }
  const VStoreNodeStats& stats() const { return stats_; }

  /// The principal acting from this node's application VM. Defaults to a
  /// trusted VM named after the node; examples/tests override it to model
  /// multi-user homes and untrusted guests (§VII future work (i)).
  const Principal& principal() const { return principal_; }
  void set_principal(Principal p) { principal_ = std::move(p); }

  /// Declares a service runnable on this node's guest VM (deployment step).
  void deploy_service(const services::ServiceProfile& p) {
    deployed_.insert(p.registry_key_name());
  }
  bool has_service(const services::ServiceProfile& p) const {
    return deployed_.contains(p.registry_key_name());
  }

  /// Publishes this node's deployed services to the registry.
  [[nodiscard]] sim::Task<Result<void>> publish_services();

  // --- The VStore++ application API (called from the guest VM) -----------

  // Every operation opens a root span on the deployment's tracer (when
  // enabled). `parent` lets a caller nest the op under its own span — the
  // composite fetch+process uses this to keep one tree per user request.

  /// Maps a file to an object and creates the mandatory meta information.
  [[nodiscard]] sim::Task<Result<void>> create_object(ObjectMeta meta, obs::Ctx parent = {});

  /// Transfers the object out of the guest and places it per policy.
  [[nodiscard]] sim::Task<Result<StoreOutcome>> store_object(const std::string& name, StoreOptions opts = {},
                                                             obs::Ctx parent = {});

  /// Locates and retrieves an object into the guest VM.
  [[nodiscard]] sim::Task<Result<FetchOutcome>> fetch_object(const std::string& name,
                                                             obs::Ctx parent = {});

  /// Invokes a service on a stored object; the execution site is chosen by
  /// chimeraGetDecision under `policy`. Passing `force` pins the execution
  /// site instead (used by experiments that sweep sites, e.g. Fig 7); the
  /// decision bookkeeping is skipped in that case.
  [[nodiscard]] sim::Task<Result<ProcessOutcome>> process(const std::string& name,
                                            const services::ServiceProfile& service,
                                            DecisionPolicy policy = DecisionPolicy::performance,
                                            std::optional<ExecSite> force = std::nullopt,
                                            obs::Ctx parent = {});

  /// Runs several services back-to-back at ONE site (the surveillance
  /// pipeline: "first perform face detection, and next face recognition
  /// processing on each image"). The argument object moves to the site
  /// once; intermediate outputs stay there; only the final output returns.
  [[nodiscard]] sim::Task<Result<ProcessOutcome>> process_pipeline(
      const std::string& name, const std::vector<services::ServiceProfile>& stages,
      DecisionPolicy policy = DecisionPolicy::performance,
      std::optional<ExecSite> force = std::nullopt, obs::Ctx parent = {});

  /// Fetch with processing attached: runs at the requester if capable, else
  /// at the owner, else wherever the decision engine picks (§III-B).
  [[nodiscard]] sim::Task<Result<ProcessOutcome>> fetch_process(
      const std::string& name, const services::ServiceProfile& service,
      DecisionPolicy policy = DecisionPolicy::performance, obs::Ctx parent = {});

 private:
  friend class HomeCloud;

  // dom0-side helpers.
  sim::Task<Result<ObjectRecord>> lookup_record(const std::string& name, Duration& dht_cost,
                                                obs::Ctx ctx = {});
  /// One locate-and-transfer attempt for fetch_object (lookup, authorize,
  /// data movement into dom0 — no guest delivery). The retry loop wraps it.
  sim::Task<Result<FetchOutcome>> fetch_attempt(const std::string& name, obs::Ctx ctx);
  sim::Task<Result<void>> run_at_site(const ExecSite& site, const ExecSite& owner_site,
                                      const std::string& name,
                                      const std::vector<services::ServiceProfile>& stages,
                                      const ObjectRecord& rec, ProcessOutcome& out,
                                      TimePoint t0, obs::Ctx ctx);
  sim::Task<Result<ObjectLocation>> place_object(const ObjectMeta& meta, StoreOptions& opts,
                                                 StoreOutcome& out, obs::Ctx ctx);
  sim::Task<Duration> command_round_trip(obs::Ctx ctx = {});
  /// Root context for an operation: `parent` when set, else the deployment
  /// tracer (null while disabled).
  obs::Ctx op_ctx(obs::Ctx parent);

  /// Access check against a looked-up record; returns the denial if any.
  Result<void> authorize(const ObjectRecord& rec, Right r) const;

  HomeCloud& cloud_;
  overlay::ChimeraNode& chimera_;
  vmm::Domain& app_domain_;
  ObjectFs fs_;
  vmm::XenSocketChannel xensocket_;
  std::unique_ptr<mon::ResourceMonitor> monitor_;
  std::unordered_map<std::string, ObjectMeta> created_;  // pending CreateObject
  std::set<std::string> deployed_;
  Principal principal_;
  Rng rng_;  // retry-backoff jitter; forked from the simulation seed
  VStoreNodeStats stats_;
  // Per-node operation metrics (qualified `name{node=...}`), registered on
  // the deployment's registry at construction.
  obs::Counter* m_stores_ = nullptr;
  obs::Counter* m_fetches_ = nullptr;
  obs::Counter* m_processes_ = nullptr;
  obs::LogHistogram* m_fetch_total_ = nullptr;
  obs::LogHistogram* m_store_total_ = nullptr;
};

}  // namespace c4h::vstore
