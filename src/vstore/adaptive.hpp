// Adaptation to changing network conditions — §VII future work (iv):
// "design and evaluate mechanisms that adapt to the changing network
// conditions".
//
// WanEstimator keeps an EWMA of the throughput actually observed on
// completed cloud transfers (per direction). AdaptiveStoragePolicy derives
// a size threshold from the current estimate: an object goes to the remote
// cloud only if shipping it is predicted to finish within a latency budget;
// when the uplink degrades, the threshold shrinks and large objects stay
// home automatically.
#pragma once

#include <algorithm>

#include "src/common/units.hpp"
#include "src/vstore/policy.hpp"

namespace c4h::vstore {

class WanEstimator {
 public:
  explicit WanEstimator(double alpha = 0.3, Rate initial_up = mib_per_sec(1.0),
                        Rate initial_down = mib_per_sec(1.45))
      : alpha_(alpha), up_(initial_up), down_(initial_down) {}

  void observe_upload(Bytes size, Duration took) { observe(up_, n_up_, size, took); }
  void observe_download(Bytes size, Duration took) { observe(down_, n_down_, size, took); }

  Rate upload_estimate() const { return up_; }
  Rate download_estimate() const { return down_; }

  /// Accepted samples per direction. The two streams feed independent EWMAs
  /// (an asymmetric DSL line degrades them independently), so their counts
  /// are tracked separately too; `observations()` stays as the total.
  std::uint64_t upload_observations() const { return n_up_; }
  std::uint64_t download_observations() const { return n_down_; }
  std::uint64_t observations() const { return n_up_ + n_down_; }

 private:
  void observe(Rate& est, std::uint64_t& n, Bytes size, Duration took) {
    if (took <= Duration::zero() || size == 0) return;
    const Rate sample = static_cast<double>(size) / to_seconds(took);
    est = alpha_ * sample + (1.0 - alpha_) * est;
    ++n;
  }

  double alpha_;
  Rate up_;
  Rate down_;
  std::uint64_t n_up_ = 0;
  std::uint64_t n_down_ = 0;
};

/// Builds the storage policy for the *current* network conditions: objects
/// whose predicted upload time exceeds the budget stay in the home cloud.
class AdaptiveStoragePolicy {
 public:
  AdaptiveStoragePolicy(const WanEstimator& estimator, Duration upload_budget = seconds(20))
      : estimator_(&estimator), budget_(upload_budget) {}

  /// Largest object worth sending to the cloud right now.
  Bytes cloud_threshold() const {
    const double bytes = estimator_->upload_estimate() * to_seconds(budget_);
    return static_cast<Bytes>(std::max(bytes, 0.0));
  }

  /// Materializes a rule set for this instant. Small/acceptable objects go
  /// remote (shareable data), oversized ones stay home.
  StoragePolicy current() const {
    StoragePolicy p;
    StoreRule small_enough;
    small_enough.max_size = cloud_threshold();
    small_enough.target = StoreTarget::remote_cloud;
    p.rules = {small_enough};
    p.fallback = StoreTarget::local;
    return p;
  }

 private:
  const WanEstimator* estimator_;
  Duration budget_;
};

}  // namespace c4h::vstore
