#include "src/vstore/placement_engine.hpp"

#include <algorithm>
#include <cmath>

namespace c4h::vstore {

PlacementEngine::PlacementEngine(PlacementEngineConfig config, const WanEstimator& wan)
    : config_(config),
      wan_(&wan),
      learner_(PlacementLearner::Config{.epsilon = config.epsilon,
                                        .min_pulls_per_arm = config.min_pulls_per_arm,
                                        .min_gain = config.min_gain},
               config.seed),
      rng_(config.seed ^ 0x517cc1b727220a95ULL) {}

void PlacementEngine::register_metrics(obs::Registry& reg) {
  decisions_counter_ = &reg.counter("c4h.placement.decision.count");
  switches_counter_ = &reg.counter("c4h.placement.switch.count");
  explorations_counter_ = &reg.counter("c4h.placement.explore.count");
  store_vetoes_counter_ = &reg.counter("c4h.placement.store_veto.count");
  regret_us_counter_ = &reg.counter("c4h.placement.regret.us");
  // Re-registering against a fresh registry must not replay history.
  decisions_counter_->add(decisions_);
  switches_counter_->add(switches_);
  explorations_counter_->add(explorations_);
  store_vetoes_counter_->add(store_vetoes_);
  regret_us_counter_->add(static_cast<std::uint64_t>(regret_seconds_ * 1e6));
}

double PlacementEngine::prior_seconds(const CandidateInfo& c) const {
  double move = 0.0;
  if (c.move_over_wan && c.move_bytes > 0) {
    // Re-price the WAN leg at the estimator's current belief instead of the
    // configured link rate baked into move_in.
    const Rate rate =
        std::max(c.move_upload ? wan_->upload_estimate() : wan_->download_estimate(), 1.0);
    move = static_cast<double>(c.move_bytes) / rate + to_seconds(c.dispatch);
  } else {
    move = to_seconds(c.move_in);
  }
  return move + to_seconds(c.exec_estimate);
}

double PlacementEngine::predicted_seconds(const std::string& context,
                                          const CandidateInfo& c) const {
  const double prior = prior_seconds(c);
  const auto n = static_cast<double>(learner_.pulls(context, c.site));
  if (n == 0.0) return prior;
  const double mean = learner_.mean_seconds(context, c.site);
  return (prior * config_.prior_weight + mean * n) / (config_.prior_weight + n);
}

ExecSite PlacementEngine::choose(const std::string& context,
                                 const std::vector<CandidateInfo>& candidates, TimePoint now) {
  ++decisions_;
  count(decisions_counter_);
  ContextState& st = state_[context];

  // Rank every candidate by blended prediction (stable: first best wins).
  std::size_t best = 0;
  double best_predicted = predicted_seconds(context, candidates.front());
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double p = predicted_seconds(context, candidates[i]);
    if (p < best_predicted) {
      best = i;
      best_predicted = p;
    }
  }
  // Regret baseline for the next observation in this context.
  st.last_best_predicted = best_predicted;
  st.has_prediction = true;

  // Warm-up: any arm below the pull floor gets tried before exploitation.
  for (const auto& c : candidates) {
    if (learner_.pulls(context, c.site) <
        static_cast<std::uint64_t>(config_.min_pulls_per_arm)) {
      ++explorations_;
      count(explorations_counter_);
      return c.site;
    }
  }

  // ε-exploration. Does not touch the incumbent: a forced detour is not a
  // decision to move, so it neither resets dwell nor counts as a switch.
  if (rng_.chance(config_.epsilon)) {
    ++explorations_;
    count(explorations_counter_);
    return candidates[rng_.below(candidates.size())].site;
  }

  // Exploit, with hysteresis against the incumbent.
  const ExecSite& challenger = candidates[best].site;
  if (st.incumbent.has_value()) {
    const auto held = std::find_if(candidates.begin(), candidates.end(),
                                   [&](const CandidateInfo& c) { return c.site == *st.incumbent; });
    if (held != candidates.end()) {
      if (challenger == *st.incumbent) return *st.incumbent;
      const double incumbent_predicted = predicted_seconds(context, *held);
      const bool dwell_elapsed = now - st.incumbent_since >= config_.min_dwell;
      const bool margin_exceeded =
          best_predicted < incumbent_predicted * (1.0 - config_.improvement_margin);
      if (!dwell_elapsed || !margin_exceeded) return *st.incumbent;
      ++switches_;
      count(switches_counter_);
      st.incumbent = challenger;
      st.incumbent_since = now;
      return challenger;
    }
    // Incumbent left the candidate set (offline / descheduled): forced
    // re-pick, not hysteresis thrash — fall through without a switch count.
  }
  st.incumbent = challenger;
  st.incumbent_since = now;
  return challenger;
}

void PlacementEngine::observe(const std::string& context, const ExecSite& site,
                              Duration observed) {
  learner_.observe(context, site, observed);
  const auto st = state_.find(context);
  if (st == state_.end() || !st->second.has_prediction) return;
  const double regret = std::max(0.0, to_seconds(observed) - st->second.last_best_predicted);
  regret_seconds_ += regret;
  count(regret_us_counter_, static_cast<std::uint64_t>(regret * 1e6));
}

bool PlacementEngine::veto_cloud_store(Bytes size) {
  if (size <= cloud_threshold()) return false;
  ++store_vetoes_;
  count(store_vetoes_counter_);
  return true;
}

}  // namespace c4h::vstore
