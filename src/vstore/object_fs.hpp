// Per-node object store backed by a simulated local file system.
//
// "Internally, it uses a standard file system to represent objects, using a
// one-to-one mapping of objects to files" (§III). Each node divides its
// storage into a *mandatory bin* (resources for applications hosted on the
// node itself) and a *voluntary bin* (space contributed to the aggregate
// pool and usable by any node in the home cloud). A file-system watcher
// tracks the free space of both bins for the resource monitor.
#pragma once

#include <string>
#include <unordered_map>

#include "src/common/result.hpp"
#include "src/common/units.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/task.hpp"

namespace c4h::vstore {

enum class Bin : std::uint8_t { mandatory, voluntary };

struct ObjectFsConfig {
  Bytes mandatory_capacity = 4_GB;
  Bytes voluntary_capacity = 2_GB;
  Rate write_rate = mib_per_sec(55.0);  // netbook-class disk
  Rate read_rate = mib_per_sec(75.0);
  Duration seek = milliseconds(4);
};

class ObjectFs {
 public:
  ObjectFs(sim::Simulation& sim, ObjectFsConfig config = {}) : sim_(sim), config_(config) {}

  /// Writes the object's file; fails with no_capacity when the bin is full.
  /// Overwrites reuse the old file's space; the old file survives a failed
  /// overwrite (capacity is checked before anything is destroyed). A non-null
  /// `ctx` records the disk write as an `fs.write` span.
  [[nodiscard]] sim::Task<Result<void>> write(const std::string& name, Bytes size, Bin bin,
                                              obs::Ctx ctx = {}) {
    obs::ScopedSpan sp(ctx, "fs.write");
    sp.attr("bytes", static_cast<std::uint64_t>(size));
    if (sim::FaultPlan* fp = sim_.fault(); fp != nullptr) {
      // Spurious bin-full and flaky-media faults; both leave the old file
      // (if any) untouched, like the real failure modes they model.
      if (fp->inject_bin_full()) {
        sp.set_error("bin full");
        co_return Error{Errc::no_capacity, "bin full: " + name};
      }
      if (fp->inject_io_error()) {
        co_await sim_.delay(config_.seek);
        sp.set_error("io error");
        co_return Error{Errc::io_error, "write error: " + name};
      }
    }
    Bytes free = bin == Bin::mandatory ? mandatory_free() : voluntary_free();
    const auto it = files_.find(name);
    if (it != files_.end() && it->second.bin == bin) {
      free += it->second.size;  // the old copy's space is reclaimable
    }
    if (size > free) {
      sp.set_error("bin full");
      co_return Error{Errc::no_capacity, "bin full: " + name};
    }
    if (it != files_.end()) {
      release(it->second);
      files_.erase(it);
    }
    co_await sim_.delay(config_.seek + transfer_time(size, config_.write_rate));
    files_.emplace(name, FileEntry{size, bin});
    (bin == Bin::mandatory ? mandatory_used_ : voluntary_used_) += size;
    co_return Result<void>{};
  }

  /// Reads the object's file; returns its size. A non-null `ctx` records the
  /// disk read as an `fs.read` span.
  [[nodiscard]] sim::Task<Result<Bytes>> read(const std::string& name, obs::Ctx ctx = {}) {
    obs::ScopedSpan sp(ctx, "fs.read");
    const auto it = files_.find(name);
    if (it == files_.end()) {
      sp.set_error("not found");
      co_return Error{Errc::not_found, "no file: " + name};
    }
    if (sim::FaultPlan* fp = sim_.fault(); fp != nullptr && fp->inject_io_error()) {
      co_await sim_.delay(config_.seek);
      sp.set_error("io error");
      co_return Error{Errc::io_error, "read error: " + name};
    }
    // Copy the size before suspending: a concurrent write/remove can rehash
    // or erase `files_` during the transfer delay, invalidating `it`.
    const Bytes size = it->second.size;
    sp.attr("bytes", static_cast<std::uint64_t>(size));
    co_await sim_.delay(config_.seek + transfer_time(size, config_.read_rate));
    co_return size;
  }

  [[nodiscard]] Result<void> remove(const std::string& name) {
    const auto it = files_.find(name);
    if (it == files_.end()) return Error{Errc::not_found, "no file: " + name};
    release(it->second);
    files_.erase(it);
    return Result<void>{};
  }

  bool contains(const std::string& name) const { return files_.contains(name); }

  Bytes size_of(const std::string& name) const {
    const auto it = files_.find(name);
    return it != files_.end() ? it->second.size : 0;
  }

  // File-system watcher interface (feeds the resource monitor).
  Bytes mandatory_free() const { return config_.mandatory_capacity - mandatory_used_; }
  Bytes voluntary_free() const { return config_.voluntary_capacity - voluntary_used_; }
  Bytes mandatory_used() const { return mandatory_used_; }
  Bytes voluntary_used() const { return voluntary_used_; }
  std::size_t file_count() const { return files_.size(); }

  const ObjectFsConfig& config() const { return config_; }

 private:
  struct FileEntry {
    Bytes size;
    Bin bin;
  };

  void release(const FileEntry& f) {
    (f.bin == Bin::mandatory ? mandatory_used_ : voluntary_used_) -= f.size;
  }

  sim::Simulation& sim_;
  ObjectFsConfig config_;
  std::unordered_map<std::string, FileEntry> files_;
  Bytes mandatory_used_ = 0;
  Bytes voluntary_used_ = 0;
};

}  // namespace c4h::vstore
