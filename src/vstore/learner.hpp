// Learned placement — §III-B future work: "Our future work will explore
// opportunities to associate learning methods and support dynamic
// adaptations" (storage/routing policies are statically encoded rules in
// the base system).
//
// PlacementLearner is an ε-greedy contextual bandit over execution sites.
// Context = (service, size bucket); arms = candidate sites; reward =
// negative observed end-to-end time. Unlike chimeraGetDecision — which
// trusts profile estimates and monitored records — the learner needs no
// model at all: it converges onto whichever site actually performs best,
// including effects the estimates miss (stale records, background load,
// mis-calibrated profiles).
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/services/service.hpp"
#include "src/vstore/policy.hpp"

namespace c4h::vstore {

class PlacementLearner {
 public:
  struct Config {
    double epsilon = 0.15;      // exploration probability
    int min_pulls_per_arm = 1;  // try every arm at least this often first
    // Recency floor on the mean update gain: the step size is
    // max(1/pulls, min_gain), i.e. a plain running mean for the first
    // 1/min_gain pulls and a constant-step EWMA afterwards. A pure running
    // mean never recovers from a mid-run reward shift (old samples dominate
    // forever); the floor bounds how long a degraded site keeps its stale
    // reputation. 0 restores the pure running mean.
    double min_gain = 0.1;
  };

  PlacementLearner() : PlacementLearner(Config{}) {}
  explicit PlacementLearner(Config config, std::uint64_t seed = 99)
      : config_(config), rng_(seed) {}

  /// Context key for a request: the service plus the input's size bucket
  /// (powers of two of MiB), so 0.9 MB and 1.1 MB images share experience.
  static std::string context_of(const services::ServiceProfile& service, Bytes input) {
    int bucket = 0;
    double mib = to_mib(input);
    while (mib >= 1.0) {
      mib /= 2.0;
      ++bucket;
    }
    return service.registry_key_name() + "@2^" + std::to_string(bucket) + "MiB";
  }

  /// Picks a site: unexplored arms first, then ε-greedy over observed means.
  ExecSite choose(const std::string& context, const std::vector<ExecSite>& candidates) {
    auto& arms = table_[context];
    // Any candidate below the pull floor gets tried next (round-robin-ish).
    for (const auto& c : candidates) {
      if (arms[arm_key(c)].pulls < static_cast<std::uint64_t>(config_.min_pulls_per_arm)) {
        return c;
      }
    }
    if (rng_.chance(config_.epsilon)) {
      return candidates[rng_.below(candidates.size())];
    }
    const ExecSite* best = &candidates.front();
    double best_mean = arms[arm_key(*best)].mean_seconds;
    for (const auto& c : candidates) {
      const double m = arms[arm_key(c)].mean_seconds;
      if (m < best_mean) {
        best = &c;
        best_mean = m;
      }
    }
    return *best;
  }

  /// Feeds back the observed end-to-end time of running at `site`.
  void observe(const std::string& context, const ExecSite& site, Duration total) {
    Arm& a = table_[context][arm_key(site)];
    ++a.pulls;
    const double x = to_seconds(total);
    const double gain = std::max(1.0 / static_cast<double>(a.pulls), config_.min_gain);
    a.mean_seconds += gain * (x - a.mean_seconds);
  }

  /// Observed pulls of an arm (diagnostics / tests).
  std::uint64_t pulls(const std::string& context, const ExecSite& site) const {
    const auto t = table_.find(context);
    if (t == table_.end()) return 0;
    const auto a = t->second.find(arm_key(site));
    return a != t->second.end() ? a->second.pulls : 0;
  }

  double mean_seconds(const std::string& context, const ExecSite& site) const {
    const auto t = table_.find(context);
    if (t == table_.end()) return 0;
    const auto a = t->second.find(arm_key(site));
    return a != t->second.end() ? a->second.mean_seconds : 0;
  }

  std::size_t contexts() const { return table_.size(); }

 private:
  struct Arm {
    std::uint64_t pulls = 0;
    double mean_seconds = 0;
  };

  static std::string arm_key(const ExecSite& s) {
    return s.kind == ExecSite::Kind::ec2 ? "ec2" : "home:" + s.node.to_string();
  }

  Config config_;
  Rng rng_;
  std::map<std::string, std::map<std::string, Arm>> table_;
};

}  // namespace c4h::vstore
