#include "src/federation/federation.hpp"

namespace c4h::federation {

using vstore::HomeCloud;
using vstore::ObjectRecord;
using vstore::VStoreNode;

sim::Task<> Federation::directory_round_trip(VStoreNode& node, Bytes request, Bytes reply) {
  auto& net = hood_.network();
  co_await net.send_message(node.chimera().net_node(), hood_.cloud_endpoint(), request);
  co_await net.send_message(hood_.cloud_endpoint(), node.chimera().net_node(), reply);
}

sim::Task<Result<void>> Federation::publish(HomeCloud& home, VStoreNode& node,
                                            const std::string& object_name) {
  // Read the object's record from the home's own metadata layer (the home
  // remains the source of truth; the directory only indexes).
  auto raw = co_await home.kv().get(node.chimera(), Key::from_name(object_name));
  if (!raw.ok()) co_return raw.error();
  auto rec = ObjectRecord::deserialize(*raw);
  if (!rec.ok()) co_return rec.error();

  co_await directory_round_trip(node);

  DirEntry entry;
  entry.home = &home;
  entry.size = rec->meta.size;
  if (rec->location.is_cloud()) {
    entry.s3_url = rec->location.url;
  } else {
    entry.owner_node = rec->location.node;
  }
  directory_[object_name] = entry;
  ++stats_.published;
  co_return Result<void>{};
}

sim::Task<Result<void>> Federation::withdraw(HomeCloud& home, VStoreNode& node,
                                             const std::string& object_name) {
  co_await directory_round_trip(node);
  const auto it = directory_.find(object_name);
  if (it == directory_.end()) co_return Error{Errc::not_found, "not published: " + object_name};
  if (it->second.home != &home) {
    co_return Error{Errc::permission_denied, "only the publishing home may withdraw"};
  }
  directory_.erase(it);
  co_return Result<void>{};
}

sim::Task<Result<FederatedFetch>> Federation::fetch(HomeCloud& home, VStoreNode& node,
                                                    const std::string& object_name) {
  auto& sim = hood_.sim();
  auto& net = hood_.network();
  const auto t0 = sim.now();
  FederatedFetch out;

  ++stats_.directory_queries;
  const auto d0 = sim.now();
  co_await directory_round_trip(node);
  out.directory_lookup = sim.now() - d0;

  const auto it = directory_.find(object_name);
  if (it == directory_.end()) {
    co_return Error{Errc::not_found, "not in neighborhood directory: " + object_name};
  }
  const DirEntry entry = it->second;
  out.size = entry.size;
  out.source_home = entry.home->config().home_name;

  const auto x0 = sim.now();
  if (entry.home == &home) {
    // Our own home published it: a plain VStore++ fetch.
    out.local_home = true;
    auto res = co_await node.fetch_object(object_name);
    if (!res.ok()) co_return res.error();
  } else if (!entry.s3_url.empty()) {
    // Lives in the shared cloud: download directly.
    out.from_shared_cloud = true;
    ++stats_.cloud_served;
    auto got = co_await home.s3().get(node.chimera().net_node(), entry.s3_url);
    if (!got.ok()) co_return got.error();
    co_await node.xensocket().transfer(entry.size);
  } else {
    // Home-to-home: the source node reads its disk, then the bytes cross
    // the source home's uplink and our downlink (the shared-core path).
    VStoreNode* src = entry.home->node_by_key(entry.owner_node);
    if (src == nullptr || !src->online()) {
      co_return Error{Errc::unavailable, "publishing node offline: " + object_name};
    }
    ++stats_.cross_home_fetches;
    co_await net.send_message(node.chimera().net_node(), src->chimera().net_node());
    auto read = co_await src->fs().read(object_name);
    if (!read.ok()) co_return read.error();
    net::TcpProfile profile = home.config().transport.profile();
    profile.rtt = profile.rtt * 2;  // two access networks end to end
    co_await net.transfer(src->chimera().net_node(), node.chimera().net_node(), entry.size,
                          profile);
    co_await node.xensocket().transfer(entry.size);
  }
  out.transfer = sim.now() - x0;
  out.total = sim.now() - t0;
  stats_.bytes_exchanged += static_cast<double>(entry.size);
  co_return out;
}

}  // namespace c4h::federation
