// City-scale object federation: hierarchical directory, geo-aware
// replication, and churn repair (ROADMAP item 2; paper §VII (v) grown to a
// metro deployment).
//
// Two routing tiers share the work:
//
//  * Inside a neighborhood, objects are found the way the paper does it —
//    Chimera prefix routing over the home overlays (src/overlay). The
//    federation never duplicates that machinery; it only decides *which
//    home* to ask.
//
//  * Between neighborhoods, a partitioned directory replaces the flat
//    cloud-hosted map of federation.hpp: shard `hash(name) % hoods` lives
//    at that neighborhood's internet core, so directory traffic pays the
//    leaf/spine path to the shard's neighborhood instead of a WAN trip to
//    the datacenter. Every shard is an ordered std::map — iteration order
//    (repair sweeps, fingerprints) is deterministic by construction.
//
// Placement: a published object gets `replication` copies in *distinct
// neighborhoods*, nearest-first by routed spine latency from the owner
// (DynoStore-style locality-aware wide-area placement). Fetch classifies
// into four cost tiers — local home / same neighborhood / wide-area
// replica (nearest live one) / shared cloud — and the bench reports tail
// latency per tier. When churn takes a hosting home's node away,
// repair_scan() re-replicates from any surviving copy, Chelonia-style.
#pragma once

#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/federation/neighborhood.hpp"
#include "src/obs/metrics.hpp"
#include "src/vstore/home_cloud.hpp"

namespace c4h::federation {

struct GeoConfig {
  /// Copies of each published object, counting the publisher's own
  /// (placed in distinct neighborhoods while enough exist).
  int replication = 2;

  // Directory message sizes (query and reply carry entry metadata).
  Bytes dir_request = 200;
  Bytes dir_reply = 300;
};

/// Which cost tier served a fetch (ordered cheapest → dearest).
enum class FetchPath : std::uint8_t { local = 0, neighborhood = 1, wide_area = 2, cloud = 3 };
inline constexpr std::size_t kFetchPaths = 4;

constexpr const char* to_string(FetchPath p) {
  switch (p) {
    case FetchPath::local: return "local";
    case FetchPath::neighborhood: return "neighborhood";
    case FetchPath::wide_area: return "wide_area";
    case FetchPath::cloud: return "cloud";
  }
  return "?";
}

struct GeoFetch {
  Bytes size = 0;
  FetchPath path = FetchPath::local;
  std::string source_home;        // empty when cloud-served
  std::size_t source_hood = 0;    // neighborhood index of the serving copy
  Duration total{};
  Duration directory_lookup{};
  Duration transfer{};
};

struct GeoStats {
  std::uint64_t published = 0;
  std::uint64_t withdrawn = 0;
  std::uint64_t directory_queries = 0;
  std::uint64_t replicas_placed = 0;   // at publish time
  std::uint64_t repairs = 0;           // replicas re-created by repair_scan
  std::uint64_t repair_failures = 0;   // entries with no live copy to heal from
  std::uint64_t fetch_errors = 0;
  std::array<std::uint64_t, kFetchPaths> fetches{};  // by FetchPath
  double bytes_replicated = 0;
  double bytes_fetched = 0;
};

/// The city-wide federation service. One instance per City; all homes
/// share it (it models the directory shards their gateways talk to).
class GeoFederation {
 public:
  GeoFederation(vstore::City& city, GeoConfig config = {});

  /// Announces a stored object city-wide and places `replication-1`
  /// additional copies in the nearest distinct neighborhoods. Re-publishing
  /// by the owner refreshes the entry; anyone else gets permission_denied.
  [[nodiscard]] sim::Task<Result<void>> publish(vstore::HomeCloud& home, vstore::VStoreNode& node,
                                                const std::string& object_name);

  /// Retrieves a published object into `node`, choosing the cheapest live
  /// copy: own home → own neighborhood → nearest wide-area replica (by
  /// routed spine latency) → shared cloud. Errc::unavailable when no copy
  /// is reachable.
  [[nodiscard]] sim::Task<Result<GeoFetch>> fetch(vstore::HomeCloud& home,
                                                  vstore::VStoreNode& node,
                                                  const std::string& object_name);

  /// Removes the directory entry (owner only). Replica bytes stay in the
  /// hosting voluntary bins until their fs evicts them.
  [[nodiscard]] sim::Task<Result<void>> withdraw(vstore::HomeCloud& home,
                                                 vstore::VStoreNode& node,
                                                 const std::string& object_name);

  /// One repair sweep over every directory shard: any entry whose live
  /// copy count dropped below the replication degree (but is still ≥ 1)
  /// gets re-replicated from a surviving copy into the nearest
  /// neighborhoods not already hosting one. Returns replicas created.
  [[nodiscard]] sim::Task<std::size_t> repair_scan();

  /// Live copies of a published object right now (0 when not published).
  std::size_t live_replicas(const std::string& object_name) const;

  std::size_t directory_size() const;
  std::size_t partition_count() const { return partitions_.size(); }
  const GeoStats& stats() const { return stats_; }

  /// Deterministic serialization of the whole directory (names, sizes,
  /// owners, replica sets in shard order) — the determinism tests compare
  /// this across same-seed runs.
  std::string fingerprint() const;

 private:
  struct Replica {
    vstore::HomeCloud* home = nullptr;
    std::size_t hood = 0;  // neighborhood index
    Key node_key;          // hosting node inside the home
  };

  struct Entry {
    Bytes size = 0;
    vstore::HomeCloud* owner_home = nullptr;
    std::size_t owner_hood = 0;
    std::string s3_url;             // set when the object lives in the cloud
    std::vector<Replica> replicas;  // [0] is the publisher's own copy
  };

  std::size_t partition_of(const std::string& name) const {
    return static_cast<std::size_t>(Key::from_name(name).raw()) % partitions_.size();
  }

  /// The node hosting this replica, or nullptr when it (or its whole home)
  /// is currently unreachable.
  static vstore::VStoreNode* live_node(const Replica& r);

  /// Directory round trip from `node` to the shard's neighborhood core.
  sim::Task<> directory_round_trip(vstore::VStoreNode& node, std::size_t partition);

  /// Copies `name` (size `size`) from `src` into up to `want` nodes in the
  /// nearest neighborhoods (by spine latency from `from_hood`) whose index
  /// is not in `exclude`. Returns the replicas created.
  sim::Task<std::vector<Replica>> place_replicas(vstore::VStoreNode& src, std::size_t from_hood,
                                                 const std::string& name, Bytes size, int want,
                                                 std::set<std::size_t> exclude);

  /// Copy one object into a chosen node across the wide area.
  sim::Task<bool> copy_to(vstore::VStoreNode& src, vstore::VStoreNode& dst,
                          const std::string& name, Bytes size);

  void note_fetch(FetchPath path, Duration total);

  vstore::City& city_;
  GeoConfig config_;
  /// Directory shard per neighborhood; ordered for deterministic sweeps.
  std::vector<std::map<std::string, Entry>> partitions_;
  GeoStats stats_;
  // Cached per-path metrics in the city registry so every path's row exists
  // in every artifact (zero-count included).
  std::array<obs::Counter*, kFetchPaths> fetch_counters_{};
  std::array<obs::LogHistogram*, kFetchPaths> fetch_latency_{};
};

}  // namespace c4h::federation
