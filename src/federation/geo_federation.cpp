#include "src/federation/geo_federation.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/obs/trace.hpp"

namespace c4h::federation {

using vstore::HomeCloud;
using vstore::Neighborhood;
using vstore::ObjectRecord;
using vstore::VStoreNode;

GeoFederation::GeoFederation(vstore::City& city, GeoConfig config)
    : city_(city), config_(config), partitions_(city.neighborhoods().size()) {
  assert(!partitions_.empty() && "construct GeoFederation after the neighborhoods");
  assert(config_.replication >= 1);
  // Materialize every per-path metric up front: artifacts then carry all
  // four rows (zero counts included) and the pointers stay stable.
  for (std::size_t p = 0; p < kFetchPaths; ++p) {
    const std::string label = to_string(static_cast<FetchPath>(p));
    fetch_counters_[p] = &city_.metrics().counter("c4h.fed2.fetch{path=" + label + "}");
    fetch_latency_[p] = &city_.metrics().histogram("c4h.fed2.fetch.latency_ns{path=" + label + "}");
  }
}

VStoreNode* GeoFederation::live_node(const Replica& r) {
  if (r.home == nullptr) return nullptr;
  VStoreNode* n = r.home->node_by_key(r.node_key);
  if (n == nullptr || !n->online()) return nullptr;
  return n;
}

sim::Task<> GeoFederation::directory_round_trip(VStoreNode& node, std::size_t partition) {
  auto& net = city_.network();
  const net::NetNodeId shard = city_.neighborhoods().at(partition)->internet_core();
  co_await net.send_message(node.chimera().net_node(), shard, config_.dir_request);
  co_await net.send_message(shard, node.chimera().net_node(), config_.dir_reply);
}

sim::Task<bool> GeoFederation::copy_to(VStoreNode& src, VStoreNode& dst, const std::string& name,
                                       Bytes size) {
  auto read = co_await src.fs().read(name);
  if (!read.ok()) co_return false;
  const net::NetNodeId s = src.chimera().net_node();
  const net::NetNodeId d = dst.chimera().net_node();
  // Wide-area push: windowing is bound by the routed round trip between the
  // two homes (leaf→spine→leaf both ways).
  net::TcpProfile profile = cloud::CloudTransport{}.profile();
  profile.rtt = city_.network().topology().path_latency(s, d) * 2;
  co_await city_.network().transfer(s, d, size, profile);
  auto written = co_await dst.fs().write(name, size, vstore::Bin::voluntary);
  co_return written.ok();
}

sim::Task<std::vector<GeoFederation::Replica>> GeoFederation::place_replicas(
    VStoreNode& src, std::size_t from_hood, const std::string& name, Bytes size, int want,
    std::set<std::size_t> exclude) {
  std::vector<Replica> placed;
  if (want <= 0) co_return placed;

  // Locality-first candidate order: distinct neighborhoods sorted by routed
  // spine latency from the source's neighborhood (index as tiebreak).
  std::vector<std::pair<Duration, std::size_t>> order;
  for (std::size_t h = 0; h < city_.neighborhoods().size(); ++h) {
    if (exclude.contains(h)) continue;
    order.emplace_back(city_.site_latency(from_hood, h), h);
  }
  std::sort(order.begin(), order.end());

  const std::uint64_t key_raw = Key::from_name(name).raw();
  for (const auto& [lat, h] : order) {
    if (static_cast<int>(placed.size()) >= want) break;
    const Neighborhood& hood = *city_.neighborhoods()[h];
    if (hood.homes().empty()) continue;
    // Deterministic probe: home chosen by the object key, node by a second
    // hash stream; skip offline nodes and full voluntary bins.
    VStoreNode* target = nullptr;
    HomeCloud* target_home = nullptr;
    for (std::size_t hp = 0; hp < hood.homes().size() && target == nullptr; ++hp) {
      HomeCloud& home = *hood.homes()[(key_raw + hp) % hood.homes().size()];
      for (std::size_t np = 0; np < home.node_count(); ++np) {
        VStoreNode& cand = home.node((key_raw / 7 + np) % home.node_count());
        if (!cand.online()) continue;
        if (cand.fs().contains(name)) continue;  // already hosts a copy
        if (cand.fs().voluntary_free() < size) continue;
        target = &cand;
        target_home = &home;
        break;
      }
    }
    if (target == nullptr) continue;
    const bool copied = co_await copy_to(src, *target, name, size);
    if (!copied) continue;
    stats_.bytes_replicated += static_cast<double>(size);
    placed.push_back(Replica{target_home, h, target->chimera().id()});
  }
  co_return placed;
}

sim::Task<Result<void>> GeoFederation::publish(HomeCloud& home, VStoreNode& node,
                                               const std::string& object_name) {
  obs::ScopedSpan span(home.trace_ctx(), "fed2.publish");
  span.attr("object", object_name);

  Neighborhood* hood = home.neighborhood();
  assert(hood != nullptr && hood->city() == &city_ && "home must belong to this city");
  const std::size_t my_hood = hood->city_index();

  // The home's own metadata layer stays the source of truth; the shard
  // only indexes (same contract as the flat Federation).
  auto raw = co_await home.kv().get(node.chimera(), Key::from_name(object_name));
  if (!raw.ok()) {
    span.set_error("kv: " + raw.error().message);
    co_return raw.error();
  }
  auto rec = ObjectRecord::deserialize(*raw);
  if (!rec.ok()) co_return rec.error();

  const std::size_t part = partition_of(object_name);
  co_await directory_round_trip(node, part);

  auto& shard = partitions_[part];
  const auto it = shard.find(object_name);
  if (it != shard.end() && it->second.owner_home != &home) {
    span.set_error("owned elsewhere");
    co_return Error{Errc::permission_denied, "published by another home: " + object_name};
  }
  if (it != shard.end()) {
    // Owner refresh: new size/location, established replicas kept.
    it->second.size = rec->meta.size;
    if (rec->location.is_cloud()) it->second.s3_url = rec->location.url;
    co_return Result<void>{};
  }

  Entry entry;
  entry.size = rec->meta.size;
  entry.owner_home = &home;
  entry.owner_hood = my_hood;
  if (rec->location.is_cloud()) {
    // Cloud-resident: every neighborhood reaches S3 through the spine
    // already — no home-hosted replicas to place.
    entry.s3_url = rec->location.url;
  } else {
    entry.replicas.push_back(Replica{&home, my_hood, rec->location.node});
    VStoreNode* src = home.node_by_key(rec->location.node);
    if (src != nullptr && src->online() && config_.replication > 1) {
      std::set<std::size_t> exclude{my_hood};
      auto placed = co_await place_replicas(*src, my_hood, object_name, entry.size,
                                            config_.replication - 1, exclude);
      stats_.replicas_placed += placed.size();
      span.attr("replicas", static_cast<std::uint64_t>(placed.size() + 1));
      for (Replica& r : placed) entry.replicas.push_back(r);
    }
  }
  partitions_[part][object_name] = entry;
  ++stats_.published;
  co_return Result<void>{};
}

sim::Task<Result<void>> GeoFederation::withdraw(HomeCloud& home, VStoreNode& node,
                                                const std::string& object_name) {
  obs::ScopedSpan span(home.trace_ctx(), "fed2.withdraw");
  span.attr("object", object_name);
  const std::size_t part = partition_of(object_name);
  co_await directory_round_trip(node, part);
  auto& shard = partitions_[part];
  const auto it = shard.find(object_name);
  if (it == shard.end()) co_return Error{Errc::not_found, "not published: " + object_name};
  if (it->second.owner_home != &home) {
    co_return Error{Errc::permission_denied, "only the publishing home may withdraw"};
  }
  shard.erase(it);
  ++stats_.withdrawn;
  co_return Result<void>{};
}

sim::Task<Result<GeoFetch>> GeoFederation::fetch(HomeCloud& home, VStoreNode& node,
                                                 const std::string& object_name) {
  obs::ScopedSpan span(home.trace_ctx(), "fed2.fetch");
  span.attr("object", object_name);
  auto& sim = city_.sim();
  auto& net = city_.network();
  const auto t0 = sim.now();
  GeoFetch out;

  Neighborhood* my_hood_p = home.neighborhood();
  assert(my_hood_p != nullptr && my_hood_p->city() == &city_);
  const std::size_t my_hood = my_hood_p->city_index();

  ++stats_.directory_queries;
  const std::size_t part = partition_of(object_name);
  const auto d0 = sim.now();
  co_await directory_round_trip(node, part);
  out.directory_lookup = sim.now() - d0;

  const auto it = partitions_[part].find(object_name);
  if (it == partitions_[part].end()) {
    span.set_error("not in directory");
    ++stats_.fetch_errors;
    co_return Error{Errc::not_found, "not in city directory: " + object_name};
  }
  const Entry entry = it->second;  // copy: awaits below may mutate the shard
  out.size = entry.size;

  // Geo-aware selection over the live copies, cheapest tier first:
  // own home, then own neighborhood, then the wide-area replica with the
  // lowest routed latency (replica order as deterministic tiebreak).
  VStoreNode* src = nullptr;
  const Replica* chosen = nullptr;
  Duration best_lat = Duration::max();
  for (const Replica& r : entry.replicas) {
    VStoreNode* n = live_node(r);
    if (n == nullptr || !n->fs().contains(object_name)) continue;
    if (r.home == &home) {
      src = n;
      chosen = &r;
      out.path = FetchPath::local;
      break;
    }
    if (chosen != nullptr && out.path == FetchPath::neighborhood) continue;
    if (r.hood == my_hood) {
      src = n;
      chosen = &r;
      out.path = FetchPath::neighborhood;
      continue;
    }
    if (chosen == nullptr || out.path == FetchPath::wide_area) {
      const Duration lat = city_.site_latency(my_hood, r.hood);
      if (chosen == nullptr || lat < best_lat) {
        src = n;
        chosen = &r;
        out.path = FetchPath::wide_area;
        best_lat = lat;
      }
    }
  }

  const auto x0 = sim.now();
  if (chosen != nullptr) {
    out.source_home = chosen->home->config().home_name;
    out.source_hood = chosen->hood;
    auto read = co_await src->fs().read(object_name);
    if (!read.ok()) {
      span.set_error("read: " + read.error().message);
      ++stats_.fetch_errors;
      co_return read.error();
    }
    if (out.path == FetchPath::local) {
      if (src != &node) {
        // Same home, different device: one LAN hop.
        co_await net.transfer(src->chimera().net_node(), node.chimera().net_node(), entry.size,
                              home.lan_profile());
      }
    } else {
      // Crosses two access networks; wide-area also rides the spine, which
      // stretches the round trip the window is clocked by.
      co_await net.send_message(node.chimera().net_node(), src->chimera().net_node());
      net::TcpProfile profile = home.config().transport.profile();
      profile.rtt = profile.rtt * 2;
      if (out.path == FetchPath::wide_area) profile.rtt += best_lat * 2;
      co_await net.transfer(src->chimera().net_node(), node.chimera().net_node(), entry.size,
                            profile);
    }
    co_await node.xensocket().transfer(entry.size);
  } else if (!entry.s3_url.empty()) {
    out.path = FetchPath::cloud;
    auto got = co_await home.s3().get(node.chimera().net_node(), entry.s3_url);
    if (!got.ok()) {
      span.set_error("s3: " + got.error().message);
      ++stats_.fetch_errors;
      co_return got.error();
    }
    co_await node.xensocket().transfer(entry.size);
  } else {
    span.set_error("no live replica");
    ++stats_.fetch_errors;
    co_return Error{Errc::unavailable, "no live replica: " + object_name};
  }

  out.transfer = sim.now() - x0;
  out.total = sim.now() - t0;
  span.attr("path", to_string(out.path));
  note_fetch(out.path, out.total);
  stats_.bytes_fetched += static_cast<double>(entry.size);
  co_return out;
}

sim::Task<std::size_t> GeoFederation::repair_scan() {
  std::size_t created = 0;
  for (std::size_t part = 0; part < partitions_.size(); ++part) {
    // Snapshot the shard's keys: placement below suspends, and the shard
    // may gain/lose entries while we're away.
    std::vector<std::string> names;
    names.reserve(partitions_[part].size());
    for (const auto& [name, entry] : partitions_[part]) names.push_back(name);

    for (const std::string& name : names) {
      const auto it = partitions_[part].find(name);
      if (it == partitions_[part].end()) continue;  // withdrawn meanwhile
      const Entry entry = it->second;
      if (entry.replicas.empty()) continue;  // cloud-resident: S3 is durable

      std::vector<Replica> live;
      std::set<std::size_t> hosted;
      for (const Replica& r : entry.replicas) {
        hosted.insert(r.hood);
        VStoreNode* n = live_node(r);
        if (n != nullptr && n->fs().contains(name)) live.push_back(r);
      }
      if (live.size() >= static_cast<std::size_t>(config_.replication)) continue;
      if (live.empty()) {
        // Nothing to heal from (until a hosting node restarts — its disk
        // survives — or unless the cloud holds a copy).
        ++stats_.repair_failures;
        continue;
      }
      obs::ScopedSpan span(entry.owner_home->trace_ctx(), "fed2.repair");
      span.attr("object", name);
      VStoreNode* src = live_node(live.front());
      if (src == nullptr) continue;  // lost it between the check and now
      const int want = config_.replication - static_cast<int>(live.size());
      auto placed = co_await place_replicas(*src, live.front().hood, name, entry.size, want,
                                            std::move(hosted));

      // Re-find: the entry may have been withdrawn or refreshed while the
      // copies were in flight. New set = copies live now + just placed
      // (dead replicas are superseded and dropped).
      const auto again = partitions_[part].find(name);
      if (again == partitions_[part].end()) continue;
      std::vector<Replica> next;
      for (const Replica& r : again->second.replicas) {
        VStoreNode* n = live_node(r);
        if (n != nullptr && n->fs().contains(name)) next.push_back(r);
      }
      for (Replica& r : placed) next.push_back(r);
      again->second.replicas = std::move(next);
      stats_.repairs += placed.size();
      created += placed.size();
    }
  }
  co_return created;
}

std::size_t GeoFederation::live_replicas(const std::string& object_name) const {
  const std::size_t part = partition_of(object_name);
  const auto it = partitions_[part].find(object_name);
  if (it == partitions_[part].end()) return 0;
  std::size_t live = 0;
  for (const Replica& r : it->second.replicas) {
    VStoreNode* n = live_node(r);
    if (n != nullptr && n->fs().contains(object_name)) ++live;
  }
  return live;
}

std::size_t GeoFederation::directory_size() const {
  std::size_t total = 0;
  for (const auto& shard : partitions_) total += shard.size();
  return total;
}

std::string GeoFederation::fingerprint() const {
  std::ostringstream os;
  for (std::size_t part = 0; part < partitions_.size(); ++part) {
    for (const auto& [name, e] : partitions_[part]) {
      os << part << ':' << name << ':' << e.size << ':' << e.owner_hood << ':' << e.s3_url;
      for (const Replica& r : e.replicas) {
        os << '|' << r.hood << '/' << r.home->config().home_name << '/' << r.node_key.to_string();
      }
      os << ';';
    }
  }
  return os.str();
}

void GeoFederation::note_fetch(FetchPath path, Duration total) {
  const auto idx = static_cast<std::size_t>(path);
  ++stats_.fetches[idx];
  fetch_counters_[idx]->add();
  fetch_latency_[idx]->record(static_cast<std::uint64_t>(total.count()));
}

}  // namespace c4h::federation
