// Cross-home object sharing for collaborating Cloud4Home systems (§VII
// future work (v)).
//
// Homes stay autonomous: each keeps its own overlay and metadata store. To
// share, a home *publishes* an object into the neighborhood directory — a
// lightweight index hosted in the shared public cloud (the natural
// rendezvous every home can reach). A remote home's fetch first queries the
// directory (one WAN round trip), then pulls the bytes home-to-home across
// both access links (source home's uplink + requester home's downlink), or
// straight from S3 when the object already lives in the shared cloud.
#pragma once

#include <map>
#include <string>

#include "src/vstore/home_cloud.hpp"

namespace c4h::federation {

struct FederatedFetch {
  Bytes size = 0;
  std::string source_home;
  bool from_shared_cloud = false;  // served straight from S3
  bool local_home = false;         // requester's own home held it
  Duration total{};
  Duration directory_lookup{};
  Duration transfer{};
};

struct FederationStats {
  std::uint64_t published = 0;
  std::uint64_t directory_queries = 0;
  std::uint64_t cross_home_fetches = 0;
  std::uint64_t cloud_served = 0;
  double bytes_exchanged = 0;
};

class Federation {
 public:
  explicit Federation(vstore::Neighborhood& hood) : hood_(hood) {}

  /// Announces a stored object to the neighborhood directory. The entry
  /// carries which home and node own it (or its S3 URL); the announcement
  /// is one small message to the cloud-hosted directory.
  sim::Task<Result<void>> publish(vstore::HomeCloud& home, vstore::VStoreNode& node,
                                  const std::string& object_name);

  /// Retrieves a published object into `node` (any home). Pays the
  /// directory round trip, then either a local-home fetch, an S3 download,
  /// or a home-to-home transfer across both WANs.
  sim::Task<Result<FederatedFetch>> fetch(vstore::HomeCloud& home, vstore::VStoreNode& node,
                                          const std::string& object_name);

  /// Removes an entry (owner withdraws the share).
  sim::Task<Result<void>> withdraw(vstore::HomeCloud& home, vstore::VStoreNode& node,
                                   const std::string& object_name);

  std::size_t directory_size() const { return directory_.size(); }
  const FederationStats& stats() const { return stats_; }

 private:
  struct DirEntry {
    vstore::HomeCloud* home;
    Key owner_node;        // node inside the home (when home-resident)
    std::string s3_url;    // set when the object lives in the shared cloud
    Bytes size = 0;
  };

  /// One round trip to the directory service at the cloud endpoint.
  sim::Task<> directory_round_trip(vstore::VStoreNode& node, Bytes request = 200,
                                   Bytes reply = 200);

  vstore::Neighborhood& hood_;
  // Ordered so directory sweeps (repair/placement in the geo tier share the
  // idiom) stay deterministic under c4h-lint R3.
  std::map<std::string, DirEntry> directory_;
  FederationStats stats_;
};

}  // namespace c4h::federation
