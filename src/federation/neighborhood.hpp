// Multiple collaborating Cloud4Home infrastructures — §VII future work (v):
// "evaluate use cases in which multiple Cloud4Home infrastructures
// collaborate. A concrete example ... would be a 'neighborhood security'
// system in which multiple Cloud4Home systems interact to provide effective
// security services for entire neighborhoods."
//
// A Neighborhood is the shared world several HomeClouds live in: one
// simulation clock, one network (each home's gateway uplinks into an
// internet core, with the public cloud attached to the core), and one
// public cloud (S3 + EC2) serving all homes. Homes remain autonomous —
// each keeps its own overlay, key-value store, monitors, and policies —
// and interact only through the Federation directory (federation.hpp).
#pragma once

#include <memory>
#include <vector>

#include "src/cloud/cloud.hpp"
#include "src/net/network.hpp"
#include "src/sim/simulation.hpp"

namespace c4h::vstore {

class HomeCloud;

struct NeighborhoodConfig {
  std::uint64_t seed = 42;
  // Internet core ↔ cloud datacenter: far above any home's access link.
  Rate core_cloud_rate = mbps(1000);
  Duration core_cloud_latency = milliseconds(5);
};

class Neighborhood {
 public:
  explicit Neighborhood(NeighborhoodConfig config = {})
      : config_(config), sim_(config.seed) {
    core_ = topo_.add_node();
    cloud_ep_ = topo_.add_node();
    topo_.add_duplex(core_, cloud_ep_, config_.core_cloud_rate, config_.core_cloud_latency);
  }

  Neighborhood(const Neighborhood&) = delete;
  Neighborhood& operator=(const Neighborhood&) = delete;

  sim::Simulation& sim() { return sim_; }
  net::NetNodeId internet_core() const { return core_; }
  net::NetNodeId cloud_endpoint() const { return cloud_ep_; }

  /// Topology is open for wiring until the first bootstrap() finalizes it.
  net::Topology& topology() {
    assert(net_ == nullptr && "topology frozen after first bootstrap");
    return topo_;
  }

  /// Creates (on first call) and returns the shared network.
  net::Network& network() {
    if (net_ == nullptr) {
      net_ = std::make_unique<net::Network>(sim_, std::move(topo_));
    }
    return *net_;
  }

  /// The shared public cloud, created lazily against the shared network.
  cloud::S3Store& s3(const cloud::CloudTransport& transport) {
    if (s3_ == nullptr) {
      s3_ = std::make_unique<cloud::S3Store>(network(), cloud_ep_, transport);
    }
    return *s3_;
  }
  cloud::Ec2Instance& ec2() {
    if (ec2_ == nullptr) {
      ec2_ = std::make_unique<cloud::Ec2Instance>(sim_, cloud_ep_,
                                                  cloud::Ec2Instance::extra_large_spec("ec2-hood"));
    }
    return *ec2_;
  }

  void register_home(HomeCloud* home) { homes_.push_back(home); }
  const std::vector<HomeCloud*>& homes() const { return homes_; }

  /// Runs a coroutine to completion on the shared clock.
  void run(sim::Task<> t) { sim_.run_task(std::move(t)); }

 private:
  NeighborhoodConfig config_;
  sim::Simulation sim_;
  net::Topology topo_;
  net::NetNodeId core_;
  net::NetNodeId cloud_ep_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<cloud::S3Store> s3_;
  std::unique_ptr<cloud::Ec2Instance> ec2_;
  std::vector<HomeCloud*> homes_;
};

}  // namespace c4h::vstore
