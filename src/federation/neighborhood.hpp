// Multiple collaborating Cloud4Home infrastructures — §VII future work (v):
// "evaluate use cases in which multiple Cloud4Home infrastructures
// collaborate. A concrete example ... would be a 'neighborhood security'
// system in which multiple Cloud4Home systems interact to provide effective
// security services for entire neighborhoods."
//
// Two tiers of shared world live here:
//
//  * A Neighborhood is the world several HomeClouds share: one simulation
//    clock, one network (each home's gateway uplinks into an internet core,
//    with the public cloud attached), one public cloud (S3 + EC2). Homes
//    remain autonomous — each keeps its own overlay, key-value store,
//    monitors, and policies — and interact only through the federation
//    directories (federation.hpp, geo_federation.hpp).
//
//  * A City federates many Neighborhoods into a metro-scale deployment:
//    every neighborhood's internet core becomes a *leaf* that uplinks into a
//    small set of *spine* switches (a leaf/spine wide-area core), and the
//    public cloud hangs off the spine as the one datacenter every
//    neighborhood can reach. A neighborhood's distance to the spine
//    (`NeighborhoodConfig::spine_latency`) is its geographic position;
//    inter-neighborhood latency falls out of the routed leaf→spine→leaf
//    path, so geo-aware policies read locality straight from src/net.
//
// A Neighborhood owns its whole world when standalone, or borrows the
// City's (shared clock, shared topology, shared cloud) when built into one
// — the same owned/borrowed split HomeCloud uses for Neighborhoods.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "src/cloud/cloud.hpp"
#include "src/net/network.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/simulation.hpp"

namespace c4h::vstore {

class HomeCloud;
class Neighborhood;

struct NeighborhoodConfig {
  std::uint64_t seed = 42;

  /// Display name; distinguishes neighborhoods inside a City.
  std::string name = "hood";

  // Standalone mode — internet core ↔ cloud datacenter: far above any
  // home's access link.
  Rate core_cloud_rate = mbps(1000);
  Duration core_cloud_latency = milliseconds(5);

  // City mode — the leaf↔spine uplinks. `spine_latency` is this
  // neighborhood's propagation distance to the metro core: the
  // geo-coordinate the federation's locality policies observe.
  Rate spine_rate = mbps(400);
  Duration spine_latency = milliseconds(2);
};

struct CityConfig {
  std::uint64_t seed = 42;

  /// Spine switches in the wide-area core; every neighborhood leaf uplinks
  /// to all of them.
  int spines = 2;

  // Spine ↔ cloud datacenter: the metro backbone's peering link.
  Rate spine_cloud_rate = mbps(2000);
  Duration spine_cloud_latency = milliseconds(4);
};

/// The metro-scale world: one clock, one topology with a leaf/spine core,
/// one public cloud, and the neighborhoods federated across it.
class City {
 public:
  explicit City(CityConfig config = {})
      : config_(config),
        sim_(std::make_unique<sim::Simulation>(config.seed)),
        owned_topo_(std::make_unique<net::Topology>()) {
    for (int i = 0; i < config_.spines; ++i) {
      spines_.push_back(owned_topo_->add_node());
    }
    cloud_ep_ = owned_topo_->add_node();
    for (const net::NetNodeId s : spines_) {
      owned_topo_->add_duplex(s, cloud_ep_, config_.spine_cloud_rate,
                              config_.spine_cloud_latency);
    }
  }

  City(const City&) = delete;
  City& operator=(const City&) = delete;

  sim::Simulation& sim() { return *sim_; }
  int spine_count() const { return static_cast<int>(spines_.size()); }
  net::NetNodeId spine(int i) const { return spines_.at(static_cast<std::size_t>(i)); }
  net::NetNodeId cloud_endpoint() const { return cloud_ep_; }

  /// Topology is open for wiring until the first network() finalizes it.
  net::Topology& topology() {
    assert(net_ == nullptr && "topology frozen after first bootstrap");
    return *owned_topo_;
  }

  /// Creates (on first call) and returns the city-wide shared network.
  /// City-wide message/flow counters land in this City's metrics registry.
  net::Network& network() {
    if (net_ == nullptr) {
      net_ = std::make_unique<net::Network>(*sim_, std::move(*owned_topo_));
      net_->set_metrics(&metrics_);
    }
    return *net_;
  }

  /// The one shared public cloud, created lazily against the shared network.
  cloud::S3Store& s3(const cloud::CloudTransport& transport) {
    if (s3_ == nullptr) {
      s3_ = std::make_unique<cloud::S3Store>(network(), cloud_ep_, transport);
    }
    return *s3_;
  }
  cloud::Ec2Instance& ec2() {
    if (ec2_ == nullptr) {
      ec2_ = std::make_unique<cloud::Ec2Instance>(*sim_, cloud_ep_,
                                                  cloud::Ec2Instance::extra_large_spec("ec2-city"));
    }
    return *ec2_;
  }

  /// Called by the city-mode Neighborhood constructor; returns the
  /// neighborhood's index (its identity in the federation tiers).
  std::size_t register_neighborhood(Neighborhood* n) {
    hoods_.push_back(n);
    return hoods_.size() - 1;
  }
  const std::vector<Neighborhood*>& neighborhoods() const { return hoods_; }

  /// City-scope metrics (federation counters/histograms, network totals).
  obs::Registry& metrics() { return metrics_; }

  /// Routed propagation latency between two neighborhoods' cores — the
  /// geo-distance the federation's replica selection minimizes. Finalizes
  /// the network on first use.
  Duration site_latency(std::size_t a, std::size_t b);

  /// Every home in the city, interleaved round-robin across neighborhoods
  /// (hood0.home0, hood1.home0, ..., hood0.home1, ...): the deterministic
  /// enumeration the federation tiers and workload drivers share.
  std::vector<HomeCloud*> all_homes() const;

  /// Runs a coroutine to completion on the shared clock.
  void run(sim::Task<> t) { sim_->run_task(std::move(t)); }

  /// Arms deterministic city-wide fault injection: node crash/restart churn
  /// sweeps every home in every neighborhood (each home's per-home safety
  /// floor still applies), and uplink flaps rotate across homes. Must follow
  /// every home's bootstrap(). Defined in city.cpp (needs HomeCloud).
  sim::FaultPlan& enable_chaos(const sim::FaultSpec& spec);

 private:
  CityConfig config_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::Topology> owned_topo_;
  std::vector<net::NetNodeId> spines_;
  net::NetNodeId cloud_ep_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<cloud::S3Store> s3_;
  std::unique_ptr<cloud::Ec2Instance> ec2_;
  std::vector<Neighborhood*> hoods_;
  obs::Registry metrics_;
  // Chaos bookkeeping: which home the current uplink flap hit.
  std::size_t flap_cursor_ = 0;
  HomeCloud* flapped_home_ = nullptr;
};

class Neighborhood {
 public:
  /// Standalone neighborhood: owns its simulation, topology, and cloud.
  explicit Neighborhood(NeighborhoodConfig config = {})
      : config_(std::move(config)),
        owned_sim_(std::make_unique<sim::Simulation>(config_.seed)),
        sim_(owned_sim_.get()),
        owned_topo_(std::make_unique<net::Topology>()) {
    core_ = owned_topo_->add_node();
    cloud_ep_ = owned_topo_->add_node();
    owned_topo_->add_duplex(core_, cloud_ep_, config_.core_cloud_rate,
                            config_.core_cloud_latency);
  }

  /// Federated neighborhood: built into a City. The core becomes a leaf of
  /// the city's spine; clock, topology, and public cloud are the city's.
  Neighborhood(City& city, NeighborhoodConfig config)
      : config_(std::move(config)), city_(&city), sim_(&city.sim()) {
    net::Topology& topo = city.topology();
    core_ = topo.add_node();
    for (int i = 0; i < city.spine_count(); ++i) {
      topo.add_duplex(core_, city.spine(i), config_.spine_rate, config_.spine_latency);
    }
    cloud_ep_ = city.cloud_endpoint();
    city_index_ = city.register_neighborhood(this);
  }

  Neighborhood(const Neighborhood&) = delete;
  Neighborhood& operator=(const Neighborhood&) = delete;

  sim::Simulation& sim() { return *sim_; }
  net::NetNodeId internet_core() const { return core_; }
  net::NetNodeId cloud_endpoint() const { return cloud_ep_; }
  const NeighborhoodConfig& config() const { return config_; }

  /// The owning City (nullptr when standalone) and this neighborhood's
  /// index in it.
  City* city() const { return city_; }
  std::size_t city_index() const { return city_index_; }

  /// Topology is open for wiring until the first bootstrap() finalizes it.
  net::Topology& topology() {
    if (city_ != nullptr) return city_->topology();
    assert(net_ == nullptr && "topology frozen after first bootstrap");
    return *owned_topo_;
  }

  /// Creates (on first call) and returns the shared network.
  net::Network& network() {
    if (city_ != nullptr) return city_->network();
    if (net_ == nullptr) {
      net_ = std::make_unique<net::Network>(*sim_, std::move(*owned_topo_));
    }
    return *net_;
  }

  /// The shared public cloud — the city's when federated.
  cloud::S3Store& s3(const cloud::CloudTransport& transport) {
    if (city_ != nullptr) return city_->s3(transport);
    if (s3_ == nullptr) {
      s3_ = std::make_unique<cloud::S3Store>(network(), cloud_ep_, transport);
    }
    return *s3_;
  }
  cloud::Ec2Instance& ec2() {
    if (city_ != nullptr) return city_->ec2();
    if (ec2_ == nullptr) {
      ec2_ = std::make_unique<cloud::Ec2Instance>(*sim_, cloud_ep_,
                                                  cloud::Ec2Instance::extra_large_spec("ec2-hood"));
    }
    return *ec2_;
  }

  void register_home(HomeCloud* home) { homes_.push_back(home); }
  const std::vector<HomeCloud*>& homes() const { return homes_; }

  /// Runs a coroutine to completion on the shared clock.
  void run(sim::Task<> t) { sim_->run_task(std::move(t)); }

 private:
  NeighborhoodConfig config_;
  City* city_ = nullptr;
  std::size_t city_index_ = 0;
  std::unique_ptr<sim::Simulation> owned_sim_;  // standalone only
  sim::Simulation* sim_ = nullptr;
  std::unique_ptr<net::Topology> owned_topo_;   // standalone, pre-finalize
  net::NetNodeId core_;
  net::NetNodeId cloud_ep_;
  std::unique_ptr<net::Network> net_;           // standalone only
  std::unique_ptr<cloud::S3Store> s3_;          // standalone only
  std::unique_ptr<cloud::Ec2Instance> ec2_;     // standalone only
  std::vector<HomeCloud*> homes_;
};

inline Duration City::site_latency(std::size_t a, std::size_t b) {
  return network().topology().path_latency(hoods_.at(a)->internet_core(),
                                           hoods_.at(b)->internet_core());
}

inline std::vector<HomeCloud*> City::all_homes() const {
  std::vector<HomeCloud*> out;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (const Neighborhood* nb : hoods_) {
      if (i < nb->homes().size()) {
        out.push_back(nb->homes()[i]);
        any = true;
      }
    }
    if (!any) break;
  }
  return out;
}

}  // namespace c4h::vstore
