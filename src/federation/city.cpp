#include "src/federation/neighborhood.hpp"

#include "src/vstore/home_cloud.hpp"

namespace c4h::vstore {

sim::FaultPlan& City::enable_chaos(const sim::FaultSpec& spec) {
  sim::FaultPlan& plan = sim::install_fault_plan(*sim_, spec);

  // Victim space: every node of every home, enumerated home-major over the
  // deterministic interleaved all_homes() order. Each home's own safety
  // floor still applies — a crash that would strand a fully-replicated key
  // inside one home is refused, and the plan moves on.
  const std::vector<HomeCloud*> homes = all_homes();

  sim::ChurnHooks hooks;
  hooks.victim_count = [homes] {
    std::size_t n = 0;
    for (const HomeCloud* h : homes) n += h->node_count();
    return n;
  };
  hooks.crash = [homes](std::size_t victim) {
    std::size_t v = victim;
    for (HomeCloud* h : homes) {
      if (v < h->node_count()) return h->crash_node(v);
      v -= h->node_count();
    }
    return false;
  };
  hooks.restart = [homes](std::size_t victim) {
    std::size_t v = victim;
    for (HomeCloud* h : homes) {
      if (v < h->node_count()) {
        h->restart_node_async(v);
        return;
      }
      v -= h->node_count();
    }
  };
  // Uplink flaps rotate across homes: each flap parks one home's WAN (a
  // different one each time), isolating that home from the wide area while
  // the rest of the city keeps serving.
  hooks.uplink_down = [this, homes](bool down) {
    if (homes.empty()) return;
    if (down) {
      flapped_home_ = homes[flap_cursor_ % homes.size()];
      ++flap_cursor_;
      flapped_home_->set_wan_rates(Rate{1.0}, Rate{1.0});
    } else if (flapped_home_ != nullptr) {
      const HomeCloudConfig& hc = flapped_home_->config();
      flapped_home_->set_wan_rates(hc.wan_up, hc.wan_down);
      flapped_home_ = nullptr;
    }
  };
  plan.start_churn(hooks);
  return plan;
}

}  // namespace c4h::vstore
