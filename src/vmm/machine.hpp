// Virtualization substrate: hosts, the hypervisor's domains, and a
// processor-sharing CPU model.
//
// The paper's prototype runs Xen 3.3 on five dual-core Atom netbooks and a
// quad-core desktop; applications live in guest VMs and VStore++ lives in
// dom0. What the evaluation actually depends on is the *cost structure* of
// that arrangement: CPU capacity (cores × GHz) shared between competing
// executions, per-domain VCPU and memory limits (Fig 7's S2 thrashes because
// its 128 MB VM cannot hold the face-recognition training set), and a
// virtualization overhead factor. This module models exactly those.
//
// CPU model: each running job has outstanding work in gigacycles; all jobs
// on a host share capacity (cores × GHz, discounted by the virtualization
// overhead) max-min fairly, with each job capped by its usable parallelism
// (min of job threads and domain VCPUs) × GHz. Rates are piecewise constant
// between job arrivals/departures — the same fluid approach as the network.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.hpp"
#include "src/net/fairshare.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/sync.hpp"

namespace c4h::vmm {

/// Battery model for portable devices (netbooks); drives the paper's
/// battery-aware routing policy.
struct BatterySpec {
  double capacity_wh = 0;  // 0 = mains powered
  double idle_watts = 4.0;
  double busy_watts = 12.0;  // at 100% CPU
};

struct HostSpec {
  std::string name;
  int cores = 2;
  double ghz = 1.66;
  Bytes memory = 1024_MB;
  double virt_overhead = 0.08;  // fraction of cycles lost to the hypervisor
  BatterySpec battery;
};

enum class DomainType { dom0, guest };

class Host;

/// A Xen domain: dom0 (control domain, where VStore++ runs) or a guest VM.
class Domain {
 public:
  Domain(Host& host, std::string name, DomainType type, int vcpus, Bytes memory, int id)
      : host_(&host), name_(std::move(name)), type_(type), vcpus_(vcpus), memory_(memory), id_(id) {}

  Host& host() const { return *host_; }
  const std::string& name() const { return name_; }
  DomainType type() const { return type_; }
  int vcpus() const { return vcpus_; }
  Bytes memory() const { return memory_; }
  int id() const { return id_; }

 private:
  Host* host_;
  std::string name_;
  DomainType type_;
  int vcpus_;
  Bytes memory_;
  int id_;
};

/// Slowdown multiplier when a job's working set exceeds the domain's memory
/// (paging). Linear in the overflow ratio; calibrated so a 2x overflow costs
/// ~4x the time, which reproduces Fig 7's S2 collapse on large images.
double memory_slowdown(Bytes working_set, Bytes domain_memory);

class Host {
 public:
  Host(sim::Simulation& sim, HostSpec spec);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const HostSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// dom0 is created at construction (the control domain always exists).
  Domain& dom0() { return *domains_.front(); }

  /// Creates a guest VM. Memory is taken from the host pool.
  Domain& create_guest(std::string name, int vcpus, Bytes memory);

  const std::vector<std::unique_ptr<Domain>>& domains() const { return domains_; }

  /// Executes `gigacycles` of work on behalf of `domain` with up to
  /// `threads` of parallelism; completes when the work is done. The work
  /// competes with everything else running on this host.
  sim::Task<> execute(Domain& domain, double gigacycles, int threads = 1);

  /// Usable compute capacity in Gcycles/sec (after virtualization overhead).
  double capacity() const {
    return spec_.cores * spec_.ghz * (1.0 - spec_.virt_overhead);
  }

  /// Instantaneous CPU utilization in [0, 1].
  double cpu_utilization() const;

  /// Free memory (host pool minus domain allocations).
  Bytes free_memory() const { return free_memory_; }

  /// Battery charge fraction in [0, 1]; 1.0 for mains-powered hosts.
  double battery_fraction();

  /// Sets the current charge fraction (experiment setup: start a scenario
  /// with a partially drained device without simulating hours of uptime).
  void set_battery_fraction(double f);

  bool battery_powered() const { return spec_.battery.capacity_wh > 0; }

  /// Attach/query this host's network endpoint.
  void set_net_node(net::NetNodeId id) { net_node_ = id; }
  net::NetNodeId net_node() const { return net_node_; }

  /// Online/offline state (node churn in the home cloud).
  bool online() const { return online_; }
  void set_online(bool v) { online_ = v; }

  std::uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  struct Job {
    std::uint64_t id;
    double remaining;  // gigacycles
    double cap;        // Gcycles/sec this job can use at most
    double rate = 0;
    TimePoint last_update{};
    sim::EventId next_event;
    sim::Event* done;
  };

  void advance();
  void recompute();
  void drain_battery_to_now();

  sim::Simulation& sim_;
  HostSpec spec_;
  std::vector<std::unique_ptr<Domain>> domains_;
  Bytes free_memory_;
  net::NetNodeId net_node_;
  bool online_ = true;

  std::uint64_t next_job_id_ = 1;
  // Ordered by id (= submission order), not hashed: recompute() iterates this
  // table into the fair-share solver and cpu_utilization() sums rates, so
  // iteration order must be seed-stable — determinism rule R3 (tools/c4h-lint).
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t jobs_completed_ = 0;

  double battery_wh_;
  TimePoint battery_updated_{};
};

}  // namespace c4h::vmm
