#include "src/vmm/machine.hpp"

#include <algorithm>
#include <cassert>

namespace c4h::vmm {

namespace {
constexpr double kCycleEps = 1e-6;  // gigacycles; jobs this close are done
constexpr Bytes kDom0Memory = 256_MB;
}  // namespace

double memory_slowdown(Bytes working_set, Bytes domain_memory) {
  if (domain_memory == 0) return 1.0;
  const double ratio = static_cast<double>(working_set) / static_cast<double>(domain_memory);
  if (ratio <= 1.0) return 1.0;
  // Paging cost grows super-linearly in the overflow: once the working set
  // spills, every pass over it faults the spilled fraction back in, and the
  // faults themselves evict more. Calibrated so ws = 2×mem → ~10× slowdown,
  // which reproduces Fig 7's collapse of the 128 MB VM on 2 MB images.
  const double over = ratio - 1.0;
  return 1.0 + 3.0 * over + 6.0 * over * over;
}

Host::Host(sim::Simulation& sim, HostSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      free_memory_(spec_.memory),
      battery_wh_(spec_.battery.capacity_wh) {
  assert(spec_.memory > kDom0Memory && "host too small for dom0");
  domains_.push_back(std::make_unique<Domain>(*this, spec_.name + "/dom0", DomainType::dom0,
                                              spec_.cores, kDom0Memory, 0));
  free_memory_ -= kDom0Memory;
}

Domain& Host::create_guest(std::string name, int vcpus, Bytes memory) {
  assert(memory <= free_memory_ && "host out of memory for guest");
  free_memory_ -= memory;
  domains_.push_back(std::make_unique<Domain>(
      *this, std::move(name), DomainType::guest, vcpus, memory, static_cast<int>(domains_.size())));
  return *domains_.back();
}

sim::Task<> Host::execute(Domain& domain, double gigacycles, int threads) {
  assert(&domain.host() == this);
  if (gigacycles <= 0) co_return;
  drain_battery_to_now();

  sim::Event done{sim_};
  const std::uint64_t id = next_job_id_++;
  Job job;
  job.id = id;
  job.remaining = gigacycles;
  const int usable = std::max(1, std::min(threads, domain.vcpus()));
  job.cap = usable * spec_.ghz * (1.0 - spec_.virt_overhead);
  job.last_update = sim_.now();
  job.done = &done;
  jobs_.emplace(id, job);
  recompute();
  co_await done.wait();
}

double Host::cpu_utilization() const {
  double used = 0;
  for (const auto& [id, j] : jobs_) used += j.rate;
  const double cap = capacity();
  return cap > 0 ? std::min(1.0, used / cap) : 0.0;
}

double Host::battery_fraction() {
  if (!battery_powered()) return 1.0;
  drain_battery_to_now();
  return std::max(0.0, battery_wh_ / spec_.battery.capacity_wh);
}

void Host::set_battery_fraction(double f) {
  if (!battery_powered()) return;
  battery_updated_ = sim_.now();
  battery_wh_ = std::clamp(f, 0.0, 1.0) * spec_.battery.capacity_wh;
}

void Host::drain_battery_to_now() {
  if (!battery_powered()) return;
  const double hours = to_seconds(sim_.now() - battery_updated_) / 3600.0;
  if (hours > 0) {
    const double watts =
        spec_.battery.idle_watts +
        (spec_.battery.busy_watts - spec_.battery.idle_watts) * cpu_utilization();
    battery_wh_ = std::max(0.0, battery_wh_ - watts * hours);
  }
  battery_updated_ = sim_.now();
}

void Host::advance() {
  const TimePoint now = sim_.now();
  for (auto& [id, j] : jobs_) {
    const double elapsed = to_seconds(now - j.last_update);
    if (elapsed > 0) j.remaining = std::max(0.0, j.remaining - elapsed * j.rate);
    j.last_update = now;
  }
}

void Host::recompute() {
  drain_battery_to_now();  // integrate at the old utilization first
  advance();

  std::vector<sim::Event*> completed;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kCycleEps) {
      sim_.cancel(it->second.next_event);
      completed.push_back(it->second.done);
      ++jobs_completed_;
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }

  // One "link" (host capacity) shared max-min with per-job parallelism caps.
  const std::vector<Rate> caps{capacity()};
  std::vector<std::uint64_t> ids;
  std::vector<net::FairFlowDesc> descs;
  ids.reserve(jobs_.size());
  for (auto& [id, j] : jobs_) {
    ids.push_back(id);
    descs.push_back(net::FairFlowDesc{{0}, j.cap});
  }
  const auto rates = net::max_min_fair_rates(caps, descs);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    Job& j = jobs_.at(ids[i]);
    j.rate = rates[i];
    sim_.cancel(j.next_event);
    if (j.rate <= 0) continue;
    const Duration dt = from_seconds(j.remaining / j.rate);
    j.next_event = sim_.schedule(dt, [this] { recompute(); });
  }

  for (auto* ev : completed) ev->fire();
}

}  // namespace c4h::vmm
