// XenSocket-style shared-memory inter-domain transport.
//
// The prototype moves data between a guest VM and the VStore++ control
// domain over XenSocket [Zhang et al., Middleware'07]: the receiver
// allocates a ring of granted pages (thirty-two 4 KB pages by default; up to
// 2 MB pages on large-memory devices) and exchanges a descriptor page +
// grant-table reference before streaming. We model the two costs that show
// up in Table I's "inter domain" column: a fixed setup cost (descriptor
// page + grant references) and a per-byte streaming cost whose rate grows
// sub-linearly with the ring size.
#pragma once

#include <cmath>

#include "src/common/units.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/task.hpp"

namespace c4h::vmm {

struct XenSocketConfig {
  std::size_t pages = 32;
  Bytes page_size = 4_KB;
  // Streaming rate with the default 32 × 4 KB = 128 KB ring, fitted to the
  // paper's inter-domain costs (≈62 MB/s on the Atom testbed).
  Rate base_rate = mib_per_sec(62.0);
  Bytes base_ring = 128_KB;
  Duration setup = milliseconds(9);  // descriptor page + grant table exchange

  Bytes ring_bytes() const { return pages * page_size; }

  /// Effective streaming rate: doubling the ring does not double throughput
  /// (copies still cost CPU); square-root scaling, capped at 4x base.
  Rate rate() const {
    const double scale =
        std::sqrt(static_cast<double>(ring_bytes()) / static_cast<double>(base_ring));
    return base_rate * std::min(4.0, std::max(0.25, scale));
  }
};

/// One guest↔dom0 channel. Transfers are full-duplex and independent per
/// channel (shared-memory copies, not a shared bus).
class XenSocketChannel {
 public:
  XenSocketChannel(sim::Simulation& sim, XenSocketConfig config = {})
      : sim_(sim), config_(config) {}

  const XenSocketConfig& config() const { return config_; }

  /// Moves `size` bytes across the domain boundary (either direction).
  sim::Task<> transfer(Bytes size) {
    ++transfers_;
    bytes_moved_ += size;
    co_await sim_.delay(transfer_time_for(size));
  }

  /// Cost model exposed for placement decisions and tests.
  Duration transfer_time_for(Bytes size) const {
    return config_.setup + c4h::transfer_time(size, config_.rate());
  }

  std::uint64_t transfers() const { return transfers_; }
  Bytes bytes_moved() const { return bytes_moved_; }

 private:
  sim::Simulation& sim_;
  XenSocketConfig config_;
  std::uint64_t transfers_ = 0;
  Bytes bytes_moved_ = 0;
};

}  // namespace c4h::vmm
