// Deterministic fault injection ("chaos") for the whole stack.
//
// A FaultPlan is installed on the Simulation and consulted inline by the
// layers: net::Network asks whether to drop / duplicate / delay each
// control message, vstore::ObjectFs whether to fail an IO with io_error or
// a spurious bin-full, and the churn scheduler drives node crash/restart
// and uplink-flap events through caller-provided hooks (so sim stays
// ignorant of overlay/cloud types). Every decision is drawn from the
// plan's own Rng, forked from the simulation seed, so a given seed always
// produces the identical fault schedule — chaos runs are replayable
// bit-for-bit.
//
// Injection stops once the plan's horizon passes (restarts still complete),
// which lets a chaotic run settle so invariants can be checked.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/task.hpp"

namespace c4h::sim {

struct FaultSpec {
  // --- message-level faults (consulted by net::Network) -------------------
  double msg_drop = 0.0;       // P(message lost in flight)
  double msg_duplicate = 0.0;  // P(message delivered twice)
  double msg_delay = 0.0;      // P(message held up in a queue)
  Duration max_extra_delay = milliseconds(80);
  Duration loss_detection = milliseconds(250);  // sender's retransmit timer

  // --- storage faults (consulted by vstore::ObjectFs) ---------------------
  double io_error = 0.0;  // P(read/write fails with io_error)
  double bin_full = 0.0;  // P(write spuriously reports no_capacity)

  // --- scheduled churn: node crash/restart and uplink flaps ---------------
  Duration mean_crash_interval = seconds(20);  // exponential inter-crash gap
  Duration mean_downtime = seconds(5);         // crash → restart delay
  Duration mean_flap_interval = seconds(30);   // exponential inter-flap gap
  Duration mean_flap_duration = seconds(3);    // uplink-down window
  Duration horizon = seconds(60);              // no new faults after this
};

struct FaultStats {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t bin_full = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t uplink_flaps = 0;
};

/// What happens to one in-flight message.
struct MessageFault {
  bool drop = false;
  bool duplicate = false;
  Duration extra_delay{};
};

/// Hooks the churn scheduler drives. Any unset hook disables that fault
/// class. `crash` may refuse a victim (already down, or a safety floor like
/// "keep at least replication+1 nodes live") by returning false; a refused
/// crash schedules no restart.
struct ChurnHooks {
  std::function<std::size_t()> victim_count;
  std::function<bool(std::size_t)> crash;
  std::function<void(std::size_t)> restart;
  std::function<void(bool)> uplink_down;  // true = flap down, false = restore
};

class FaultPlan {
 public:
  FaultPlan(Simulation& sim, FaultSpec spec)
      : sim_(sim), spec_(spec), deadline_(sim.now() + spec.horizon), rng_(sim.rng().fork()) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& stats() const { return stats_; }
  TimePoint deadline() const { return deadline_; }

  /// True while faults are being injected.
  bool active() const { return armed_ && sim_.now() < deadline_; }

  /// Manual kill switch (verification phases disarm before re-reading).
  void disarm() { armed_ = false; }
  void arm() { armed_ = true; }

  /// Samples the fate of one in-flight message. Drop wins over the other
  /// fault classes (a dropped duplicate is indistinguishable from a drop).
  MessageFault message_fault() {
    MessageFault f;
    if (!active()) return f;
    if (spec_.msg_drop > 0 && rng_.chance(spec_.msg_drop)) {
      f.drop = true;
      ++stats_.messages_dropped;
      return f;
    }
    if (spec_.msg_duplicate > 0 && rng_.chance(spec_.msg_duplicate)) {
      f.duplicate = true;
      ++stats_.messages_duplicated;
    }
    if (spec_.msg_delay > 0 && rng_.chance(spec_.msg_delay)) {
      f.extra_delay = from_seconds(rng_.uniform(0.0, to_seconds(spec_.max_extra_delay)));
      ++stats_.messages_delayed;
    }
    return f;
  }

  bool inject_io_error() {
    if (!active() || spec_.io_error <= 0 || !rng_.chance(spec_.io_error)) return false;
    ++stats_.io_errors;
    return true;
  }

  bool inject_bin_full() {
    if (!active() || spec_.bin_full <= 0 || !rng_.chance(spec_.bin_full)) return false;
    ++stats_.bin_full;
    return true;
  }

  /// Starts the crash/restart and uplink-flap schedulers as detached
  /// coroutines on the simulation. Both exit once the horizon passes;
  /// restarts for crashes injected near the horizon still fire, so every
  /// crashed node eventually heals.
  void start_churn(ChurnHooks hooks) {
    hooks_ = std::move(hooks);
    if (hooks_.victim_count && hooks_.crash) sim_.spawn(crash_loop());
    if (hooks_.uplink_down) sim_.spawn(flap_loop());
  }

 private:
  Duration exp_sample(Duration mean) {
    return from_seconds(rng_.exponential(to_seconds(mean)));
  }

  Task<> crash_loop() {
    for (;;) {
      co_await sim_.delay(exp_sample(spec_.mean_crash_interval));
      if (!active()) co_return;
      const std::size_t n = hooks_.victim_count();
      if (n == 0) continue;
      const auto victim = static_cast<std::size_t>(rng_.below(n));
      const Duration downtime = exp_sample(spec_.mean_downtime);  // drawn unconditionally:
      // the rng stream position stays a pure function of the schedule, not
      // of whether the hook accepted the victim.
      if (!hooks_.crash(victim)) continue;
      ++stats_.crashes;
      if (hooks_.restart) {
        sim_.schedule(downtime, [this, victim] {
          ++stats_.restarts;
          // c4h-lint: allow(R4) — this is the std::function restart hook,
          // not the Result-returning Overlay::restart the name index matched.
          hooks_.restart(victim);
        });
      }
    }
  }

  Task<> flap_loop() {
    for (;;) {
      co_await sim_.delay(exp_sample(spec_.mean_flap_interval));
      if (!active()) co_return;
      ++stats_.uplink_flaps;
      hooks_.uplink_down(true);
      co_await sim_.delay(exp_sample(spec_.mean_flap_duration));
      hooks_.uplink_down(false);
    }
  }

  Simulation& sim_;
  FaultSpec spec_;
  TimePoint deadline_;
  Rng rng_;
  FaultStats stats_;
  ChurnHooks hooks_;
  bool armed_ = true;
};

/// Creates a FaultPlan owned by `sim` and returns a reference to it.
inline FaultPlan& install_fault_plan(Simulation& sim, FaultSpec spec) {
  auto plan = std::make_shared<FaultPlan>(sim, spec);
  FaultPlan& ref = *plan;
  sim.set_fault_plan(std::move(plan));
  return ref;
}

}  // namespace c4h::sim
