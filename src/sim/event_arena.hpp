// Slab/free-list event storage for the discrete-event engine.
//
// Every scheduled event used to cost a heap-allocated std::function plus an
// unordered_map insert/find/erase round-trip; at 10k-node scale the engine
// itself became the hot path (ROADMAP item 1). The arena replaces both:
//
//  * Callbacks live inline in a fixed-size small buffer inside the slot
//    (kInlineBytes covers every capture the simulator schedules: a coroutine
//    handle, `this`, `this` + a flow id). Larger callables fall back to one
//    heap allocation, type-erased behind the same ops table.
//  * EventIds are {slot index, generation} pairs. Cancel is O(1): bump the
//    slot's generation and recycle it through the free list — no map erase,
//    and a stale id can never touch a recycled slot because its generation
//    no longer matches.
//  * The time-ordered heap holds plain 24-byte entries. Cancelled events
//    leave tombstones that are skipped on pop; when tombstones outnumber
//    live entries the heap is compacted in O(live), so cancel-heavy runs
//    (every flow reschedule cancels) keep bounded memory.
//
// Determinism contract: entries are ordered by (timestamp, sequence) where
// the sequence number increments once per schedule() call — equal-timestamp
// events run in exact schedule order (FIFO), byte-for-byte the same order
// the previous map-based engine produced.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/units.hpp"

namespace c4h::sim {

class EventArena {
 public:
  /// Inline capture budget. The engine's own callbacks are ≤ 16 bytes; the
  /// headroom lets user lambdas with a few captured pointers stay inline.
  static constexpr std::size_t kInlineBytes = 48;

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  ~EventArena() { clear(); }

  /// Opaque handle: 0 is "never scheduled"; otherwise (generation << 32) |
  /// (slot + 1). A generation survives at most one scheduled lifetime, so a
  /// stale handle stays stale even after its slot is recycled (the
  /// generation would have to wrap the full 32-bit space between schedule
  /// and cancel to collide — billions of reuses of one slot).
  using Handle = std::uint64_t;

  template <typename F>
  Handle schedule(TimePoint at, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    emplace_callback(s, std::forward<F>(fn));
    ++live_;
    heap_.push_back(Entry{at, ++next_seq_, slot, s.gen});
    std::push_heap(heap_.begin(), heap_.end(), Entry::later);
    return make_handle(slot, s.gen);
  }

  /// O(1); safe on fired, cancelled, and default handles.
  void cancel(Handle h) {
    Slot* s = live_slot(h);
    if (s == nullptr) return;
    release_slot(*s, static_cast<std::uint32_t>((h & 0xffffffffu) - 1));
    ++tombstones_;
    maybe_compact();
  }

  bool pending(Handle h) const { return live_slot(h) != nullptr; }

  std::size_t live_count() const { return live_; }
  /// Heap entries including tombstones — tests assert compaction keeps this
  /// within a constant factor of live_count().
  std::size_t heap_size() const { return heap_.size(); }

  /// Timestamp of the earliest live event; false when none remain.
  /// Prunes tombstoned heads as a side effect.
  bool peek(TimePoint& at) {
    while (!heap_.empty()) {
      const Entry& top = heap_.front();
      if (slots_[top.slot].gen == top.gen && slots_[top.slot].ops != nullptr) {
        at = top.at;
        return true;
      }
      pop_top();
      if (tombstones_ > 0) --tombstones_;
    }
    return false;
  }

  /// Moves the earliest live callback into `out` (caller-provided stack
  /// storage, so a callback that grows the arena while running cannot
  /// invalidate itself), frees its slot, and returns its timestamp.
  /// Pre: peek() returned true.
  class FiredCallback;
  TimePoint take_earliest(FiredCallback& out);

  /// Destroys every pending callback (teardown only).
  void clear() {
    for (Slot& s : slots_) {
      if (s.ops != nullptr) {
        s.ops->destroy(target(s));
        s.ops = nullptr;
      }
    }
    heap_.clear();
    free_head_ = kNone;
    live_ = 0;
    tombstones_ = 0;
    // Slots stay allocated; gens survive so stale handles remain stale.
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      ++slots_[i].gen;
      slots_[i].next_free = free_head_;
      free_head_ = i;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    // Move-constructs *from into to, then destroys *from.
    void (*relocate)(void* from, void* to) noexcept;
    bool heap;  // buf holds a pointer to the callable, not the callable
  };

  struct Slot {
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    const Ops* ops = nullptr;  // nullptr → slot free
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNone;

    Slot() = default;
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    // Growing slots_ reallocates the vector; inline callables are only
    // required to be nothrow move-constructible, not trivially relocatable,
    // so the byte-wise default move would break self-referential captures.
    // Route the move through the ops table's relocate instead.
    Slot(Slot&& o) noexcept : ops(o.ops), gen(o.gen), next_free(o.next_free) {
      if (ops != nullptr) {
        if (ops->heap) {
          *reinterpret_cast<void**>(buf) = *reinterpret_cast<void**>(o.buf);
        } else {
          ops->relocate(o.buf, buf);
        }
      }
      o.ops = nullptr;
    }
    Slot& operator=(Slot&&) = delete;
  };

  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    // Min-heap via std::push_heap's max-heap machinery: "later" sorts first.
    static bool later(const Entry& a, const Entry& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNone = UINT32_MAX;

  template <typename F>
  struct OpsFor {
    using Fn = std::decay_t<F>;
    static constexpr bool fits =
        sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<Fn>;

    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void destroy_inline(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static void destroy_heap(void* p) noexcept { delete static_cast<Fn*>(p); }
    static void relocate_inline(void* from, void* to) noexcept {
      ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
      static_cast<Fn*>(from)->~Fn();
    }
    static constexpr Ops inline_ops{&invoke, &destroy_inline, &relocate_inline, false};
    static constexpr Ops heap_ops{&invoke, &destroy_heap, nullptr, true};
  };

  static Handle make_handle(std::uint32_t slot, std::uint32_t gen) {
    return (std::uint64_t{gen} << 32) | (slot + 1);
  }

  void* target(Slot& s) const {
    void* p = const_cast<unsigned char*>(s.buf);
    return s.ops->heap ? *static_cast<void**>(p) : p;
  }

  Slot* live_slot(Handle h) {
    return const_cast<Slot*>(std::as_const(*this).live_slot_impl(h));
  }
  const Slot* live_slot(Handle h) const { return live_slot_impl(h); }
  const Slot* live_slot_impl(Handle h) const {
    if (h == 0) return nullptr;
    const std::uint32_t slot = static_cast<std::uint32_t>(h & 0xffffffffu) - 1;
    const auto gen = static_cast<std::uint32_t>(h >> 32);
    if (slot >= slots_.size()) return nullptr;
    const Slot& s = slots_[slot];
    return (s.gen == gen && s.ops != nullptr) ? &s : nullptr;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNone) {
      const std::uint32_t i = free_head_;
      free_head_ = slots_[i].next_free;
      return i;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(Slot& s, std::uint32_t index) {
    s.ops->destroy(target(s));
    s.ops = nullptr;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = index;
    --live_;
  }

  template <typename F>
  void emplace_callback(Slot& s, F&& fn) {
    using O = OpsFor<F>;
    using Fn = typename O::Fn;
    if constexpr (O::fits) {
      ::new (static_cast<void*>(s.buf)) Fn(std::forward<F>(fn));
      s.ops = &O::inline_ops;
    } else {
      *reinterpret_cast<void**>(s.buf) = new Fn(std::forward<F>(fn));
      s.ops = &O::heap_ops;
    }
  }

  void pop_top() {
    std::pop_heap(heap_.begin(), heap_.end(), Entry::later);
    heap_.pop_back();
  }

  void maybe_compact() {
    // Rebuild once tombstones dominate: O(live) amortized against the
    // cancels that created them, and it bounds heap memory at ~2× the live
    // event count no matter how cancel-heavy the run is.
    if (tombstones_ < 64 || tombstones_ < heap_.size() / 2) return;
    std::erase_if(heap_, [this](const Entry& e) {
      return slots_[e.slot].gen != e.gen || slots_[e.slot].ops == nullptr;
    });
    std::make_heap(heap_.begin(), heap_.end(), Entry::later);
    tombstones_ = 0;
  }

  std::vector<Slot> slots_;
  std::vector<Entry> heap_;
  std::uint32_t free_head_ = kNone;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
};

/// Stack-side landing pad for a fired callback: take_earliest() relocates
/// the callable here before the slot is recycled, so running it is safe
/// even if it schedules new events (growing slots_) or cancels anything.
class EventArena::FiredCallback {
 public:
  FiredCallback() = default;
  FiredCallback(const FiredCallback&) = delete;
  FiredCallback& operator=(const FiredCallback&) = delete;
  ~FiredCallback() { reset(); }

  void operator()() { ops_->invoke(tgt()); }

 private:
  friend class EventArena;

  void* tgt() {
    void* p = buf_;
    return ops_->heap ? *static_cast<void**>(p) : p;
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(tgt());
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

inline TimePoint EventArena::take_earliest(FiredCallback& out) {
  Entry top = heap_.front();
  pop_top();
  Slot& s = slots_[top.slot];
  out.reset();
  if (s.ops->heap) {
    *reinterpret_cast<void**>(out.buf_) = *reinterpret_cast<void**>(s.buf);
    out.ops_ = s.ops;
    // The callable now belongs to `out`; free the slot without destroying.
    s.ops = nullptr;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = top.slot;
    --live_;
  } else {
    s.ops->relocate(s.buf, out.buf_);
    out.ops_ = s.ops;
    s.ops = nullptr;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = top.slot;
    --live_;
  }
  return top.at;
}

}  // namespace c4h::sim
