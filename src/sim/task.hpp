// Coroutine task type for simulated processes.
//
// Task<T> is a lazy coroutine: created suspended, started when awaited (or
// when detached onto the Simulation via Simulation::spawn). Completion
// resumes the awaiting coroutine by symmetric transfer, so long co_await
// chains do not grow the machine stack.
//
// Single-threaded by design: the whole simulation runs on one thread, so no
// atomics or locks are needed (and determinism is guaranteed).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace c4h::sim {

class Simulation;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  bool detached = false;
  Simulation* owner = nullptr;  // set for detached tasks, for registry cleanup

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept;
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() {
    if (detached) {
      // A detached simulated process must not leak exceptions: let it
      // propagate out of the event loop so tests fail loudly.
      throw;
    }
    exception = std::current_exception();
  }
};

void deregister_detached(Simulation& sim, void* frame) noexcept;

template <typename Promise>
std::coroutine_handle<> PromiseBase::FinalAwaiter::await_suspend(
    std::coroutine_handle<Promise> h) noexcept {
  auto& p = h.promise();
  if (p.detached) {
    if (p.owner != nullptr) deregister_detached(*p.owner, h.address());
    h.destroy();
    return std::noop_coroutine();
  }
  // Awaited task: transfer control back to the awaiter. A non-detached task
  // is always awaited before completion in this codebase.
  return p.continuation ? p.continuation : std::noop_coroutine();
}

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() & {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
        h.promise().continuation = awaiting;
        return h;  // start the child coroutine
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(*h.promise().value);
      }
    };
    assert(h_ != nullptr && "awaiting a moved-from Task");
    return Awaiter{h_};
  }
  auto operator co_await() && { return operator co_await(); }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }

  void destroy() {
    if (h_ != nullptr) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() & {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
        h.promise().continuation = awaiting;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    assert(h_ != nullptr && "awaiting a moved-from Task");
    return Awaiter{h_};
  }
  auto operator co_await() && { return operator co_await(); }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }

  void destroy() {
    if (h_ != nullptr) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_ = nullptr;
};

}  // namespace c4h::sim
