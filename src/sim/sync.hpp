// Synchronization primitives for simulated processes: broadcast events,
// bounded-nothing channels (mailboxes), and fan-out/fan-in helpers.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <vector>

#include "src/sim/simulation.hpp"
#include "src/sim/task.hpp"

namespace c4h::sim {

/// One-shot (resettable) broadcast event. Waiters resume, in wait order, at
/// the simulated time fire() is called.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) {
      sim_->schedule(Duration::zero(), [h] { h.resume(); });
    }
    waiters_.clear();
  }

  void reset() { fired_ = false; }

  auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() { return ev.fired_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel (mailbox). Multiple producers, multiple consumers;
/// each item goes to exactly one consumer, in arrival order.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(&sim) {}

  void push(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->schedule(Duration::zero(), [h] { h.resume(); });
    }
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// co_await pop() — suspends until an item is available.
  auto pop() {
    struct Awaiter {
      Channel& ch;
      bool await_ready() { return !ch.items_.empty(); }
      bool await_suspend(std::coroutine_handle<> h) {
        if (!ch.items_.empty()) return false;  // raced with a push at resume
        ch.waiters_.push_back(h);
        return true;
      }
      T await_resume() {
        // An item may have been consumed by another waiter between our
        // wake-up being scheduled and running; in that case re-check is the
        // caller's loop's job — but with FIFO wakeups one push resumes one
        // waiter, so an item is always present here.
        T v = std::move(ch.items_.front());
        ch.items_.pop_front();
        return v;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulation* sim_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

namespace detail {

struct JoinState {
  std::size_t remaining;
  Event done;
  JoinState(Simulation& sim, std::size_t n) : remaining(n), done(sim) {}
};

inline Task<> run_and_count(Task<> t, std::shared_ptr<JoinState> st) {
  co_await t;
  if (--st->remaining == 0) st->done.fire();
}

}  // namespace detail

/// Runs all tasks concurrently; completes when every one has finished.
inline Task<> when_all(Simulation& sim, std::vector<Task<>> tasks) {
  if (tasks.empty()) co_return;
  auto st = std::make_shared<detail::JoinState>(sim, tasks.size());
  for (auto& t : tasks) {
    sim.spawn(detail::run_and_count(std::move(t), st));
  }
  co_await st->done.wait();
}

}  // namespace c4h::sim
