// Discrete-event simulation engine.
//
// A single time-ordered queue of callbacks drives everything: coroutine
// resumptions, periodic monitors, flow-completion events. Events at equal
// timestamps run in schedule order (FIFO), which makes every run
// deterministic for a given seed.
//
// Storage is the slab/free-list EventArena (event_arena.hpp): callbacks are
// held inline (no allocation for the common capture sizes), cancellation is
// O(1) via generation-tagged ids, and heavy cancel/reschedule churn — every
// flow reschedule cancels — compacts instead of growing the heap. The
// equal-timestamp FIFO contract is unchanged from the previous map-based
// engine, byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/sim/event_arena.hpp"
#include "src/sim/task.hpp"

namespace c4h::sim {

using c4h::Duration;
using c4h::TimePoint;

class FaultPlan;  // sim/fault.hpp; installed via install_fault_plan()

/// Handle for a scheduled callback; allows cancellation. Generation-tagged:
/// an id stays invalid forever once its event fired or was cancelled, even
/// after the underlying arena slot is recycled.
struct EventId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    // Destroy still-suspended detached coroutines so their frames (and any
    // RAII state inside) are released.
    // c4h-lint: allow(R3) — teardown only; destruction order is unobservable.
    for (void* frame : detached_) {
      std::coroutine_handle<>::from_address(frame).destroy();
    }
  }

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// The installed chaos layer, or nullptr when fault injection is off.
  /// Layers consult this inline (message faults, IO faults); the plan's
  /// decisions come from an Rng forked off the simulation seed, so a seed
  /// fully determines the fault schedule.
  FaultPlan* fault() { return fault_.get(); }
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) { fault_ = std::move(plan); }

  /// Diagnostics for leak checks: live detached coroutine frames and
  /// pending (uncancelled) events.
  std::size_t detached_count() const { return detached_.size(); }
  std::size_t pending_event_count() const { return events_.live_count(); }

  /// Queue entries including cancellation tombstones; bounded at a constant
  /// factor of pending_event_count() by arena compaction (tests assert it).
  std::size_t event_queue_size() const { return events_.heap_size(); }

  /// Events executed since construction (scaling benches report events/sec).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Schedules `fn` to run `delay` after now. delay must be >= 0. Callables
  /// with captures up to EventArena::kInlineBytes are stored inline.
  template <typename F>
  EventId schedule(Duration delay, F&& fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return EventId{events_.schedule(now_ + delay, std::forward<F>(fn))};
  }

  /// Cancels a pending event. Safe to call with an already-fired id.
  void cancel(EventId ev) { events_.cancel(ev.id); }

  bool pending(EventId ev) const { return events_.pending(ev.id); }

  /// Runs one event. Returns false when the queue is empty.
  bool step() {
    TimePoint at;
    if (!events_.peek(at)) return false;
    EventArena::FiredCallback fn;
    now_ = events_.take_earliest(fn);
    ++events_executed_;
    fn();
    return true;
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {}
  }

  /// Runs events with timestamp <= `t`; advances the clock to exactly `t`.
  void run_until(TimePoint t) {
    TimePoint at;
    while (events_.peek(at) && at <= t) {
      step();
    }
    if (now_ < t) now_ = t;
  }

  /// Detaches a coroutine onto the event loop; it starts at the current
  /// time (after already-queued events at this time).
  void spawn(Task<> task) {
    auto h = task.release();
    h.promise().detached = true;
    h.promise().owner = this;
    detached_.insert(h.address());
    schedule(Duration::zero(), [h] { h.resume(); });
  }

  /// Runs the event loop until `task` completes (other events keep firing
  /// meanwhile). Use instead of run() when periodic processes (monitors,
  /// stabilization heartbeats) would keep the queue non-empty forever.
  void run_task(Task<> task) {
    // The marker frame co-owns the flag: if the task stalls forever and the
    // queue drains, run_task returns while the frame is still suspended — a
    // plain `bool&` to this stack slot would dangle on a later resume.
    auto done = std::make_shared<bool>(false);
    spawn(detail_mark_done(std::move(task), done));
    while (!*done && step()) {}
  }

  /// Awaitable pause: co_await sim.delay(d).
  auto delay(Duration d) {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      bool await_ready() { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(d, [h] { h.resume(); });
      }
      void await_resume() {}
    };
    return Awaiter{*this, d};
  }

 private:
  friend void detail::deregister_detached(Simulation& sim, void* frame) noexcept;

  static Task<> detail_mark_done(Task<> inner, std::shared_ptr<bool> done) {
    co_await inner;
    *done = true;
  }

  TimePoint now_{0};
  EventArena events_;
  std::uint64_t events_executed_ = 0;
  std::unordered_set<void*> detached_;
  Rng rng_;
  // shared_ptr so the (forward-declared) plan can be owned here without
  // simulation.hpp depending on fault.hpp.
  std::shared_ptr<FaultPlan> fault_;
};

namespace detail {
inline void deregister_detached(Simulation& sim, void* frame) noexcept {
  sim.detached_.erase(frame);
}
}  // namespace detail

}  // namespace c4h::sim
