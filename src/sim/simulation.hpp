// Discrete-event simulation engine.
//
// A single priority queue of timed callbacks drives everything: coroutine
// resumptions, periodic monitors, flow-completion events. Events at equal
// timestamps run in schedule order (FIFO), which makes every run
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/sim/task.hpp"

namespace c4h::sim {

using c4h::Duration;
using c4h::TimePoint;

class FaultPlan;  // sim/fault.hpp; installed via install_fault_plan()

/// Handle for a scheduled callback; allows cancellation.
struct EventId {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    // Destroy still-suspended detached coroutines so their frames (and any
    // RAII state inside) are released.
    // c4h-lint: allow(R3) — teardown only; destruction order is unobservable.
    for (void* frame : detached_) {
      std::coroutine_handle<>::from_address(frame).destroy();
    }
  }

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// The installed chaos layer, or nullptr when fault injection is off.
  /// Layers consult this inline (message faults, IO faults); the plan's
  /// decisions come from an Rng forked off the simulation seed, so a seed
  /// fully determines the fault schedule.
  FaultPlan* fault() { return fault_.get(); }
  void set_fault_plan(std::shared_ptr<FaultPlan> plan) { fault_ = std::move(plan); }

  /// Diagnostics for leak checks: live detached coroutine frames and
  /// pending (uncancelled) events.
  std::size_t detached_count() const { return detached_.size(); }
  std::size_t pending_event_count() const { return callbacks_.size(); }

  /// Schedules `fn` to run `delay` after now. delay must be >= 0.
  EventId schedule(Duration delay, std::function<void()> fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    const std::uint64_t id = ++next_id_;
    queue_.push(QueuedEvent{now_ + delay, id});
    callbacks_.emplace(id, std::move(fn));
    return EventId{id};
  }

  /// Cancels a pending event. Safe to call with an already-fired id.
  void cancel(EventId ev) { callbacks_.erase(ev.id); }

  bool pending(EventId ev) const { return callbacks_.contains(ev.id); }

  /// Runs one event. Returns false when the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      const QueuedEvent qe = queue_.top();
      queue_.pop();
      auto it = callbacks_.find(qe.id);
      if (it == callbacks_.end()) continue;  // cancelled
      now_ = qe.at;
      auto fn = std::move(it->second);
      callbacks_.erase(it);
      fn();
      return true;
    }
    return false;
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {}
  }

  /// Runs events with timestamp <= `t`; advances the clock to exactly `t`.
  void run_until(TimePoint t) {
    while (!queue_.empty()) {
      // Skip cancelled heads without advancing time.
      const QueuedEvent qe = queue_.top();
      if (!callbacks_.contains(qe.id)) {
        queue_.pop();
        continue;
      }
      if (qe.at > t) break;
      step();
    }
    if (now_ < t) now_ = t;
  }

  /// Detaches a coroutine onto the event loop; it starts at the current
  /// time (after already-queued events at this time).
  void spawn(Task<> task) {
    auto h = task.release();
    h.promise().detached = true;
    h.promise().owner = this;
    detached_.insert(h.address());
    schedule(Duration::zero(), [h] { h.resume(); });
  }

  /// Runs the event loop until `task` completes (other events keep firing
  /// meanwhile). Use instead of run() when periodic processes (monitors,
  /// stabilization heartbeats) would keep the queue non-empty forever.
  void run_task(Task<> task) {
    bool done = false;
    spawn(detail_mark_done(std::move(task), done));
    while (!done && step()) {}
  }

  /// Awaitable pause: co_await sim.delay(d).
  auto delay(Duration d) {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      bool await_ready() { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(d, [h] { h.resume(); });
      }
      void await_resume() {}
    };
    return Awaiter{*this, d};
  }

 private:
  friend void detail::deregister_detached(Simulation& sim, void* frame) noexcept;

  static Task<> detail_mark_done(Task<> inner, bool& done) {
    co_await inner;
    done = true;
  }

  struct QueuedEvent {
    TimePoint at;
    std::uint64_t id;
    // Later ids sort after earlier ones at equal time → FIFO.
    bool operator>(const QueuedEvent& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  TimePoint now_{0};
  std::uint64_t next_id_ = 0;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
  std::unordered_set<void*> detached_;
  Rng rng_;
  // shared_ptr so the (forward-declared) plan can be owned here without
  // simulation.hpp depending on fault.hpp.
  std::shared_ptr<FaultPlan> fault_;
};

namespace detail {
inline void deregister_detached(Simulation& sim, void* frame) noexcept {
  sim.detached_.erase(frame);
}
}  // namespace detail

}  // namespace c4h::sim
