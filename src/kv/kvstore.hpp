// DHT-based key-value store — the VStore++ metadata & resource-management
// layer (§III-A).
//
// One uniform store holds three kinds of entries: object metadata (key =
// hash of object name), service registrations (key = hash of service name ⊕
// id), and node resource records (key = node id derived from its address).
//
// Faithful to the paper's enhanced Chimera:
//  * put carries an overwrite policy — overwrite, chain a new version, or
//    return an error if the key exists;
//  * entries are cached on the intermediate hops of each request's path
//    through the overlay, and every modification propagates to the caches;
//  * entries are replicated with a fixed replication factor (ring
//    successors of the owner), restored when nodes fail;
//  * a departing node's keys are redistributed among the remaining nodes.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/serial.hpp"
#include "src/overlay/overlay.hpp"

namespace c4h::kv {

enum class OverwritePolicy : std::uint8_t {
  overwrite,  // replace the value
  chain,      // append a new version
  error,      // fail if the key already exists
};

struct KvConfig {
  bool path_caching = true;
  int replication = 1;                          // replicas beyond the owner
  Duration local_access = microseconds(200);    // in-memory table access
  Bytes message_overhead = 50;                  // command packet framing
  // VStore++ talks to the Chimera process over IPC (§IV); paid on entry and
  // on reply for every KV operation issued by a node.
  Duration chimera_ipc = milliseconds(2);
};

struct KvStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t local_hits = 0;       // resolved without any network hop
  std::uint64_t cache_hits = 0;       // served by an intermediate path cache
  std::uint64_t cache_updates = 0;    // messages refreshing caches on put
  std::uint64_t replication_msgs = 0;
  std::uint64_t redistribution_msgs = 0;
};

/// The distributed key-value store. One instance manages the per-node tables
/// of every overlay member (a simulation convenience; all access paths still
/// pay the right messages and delays).
class KvStore {
 public:
  KvStore(overlay::Overlay& overlay, KvConfig config = {});

  /// Stores `value` under `key`, routed from `origin`. Blocking semantics:
  /// completes after the owner's acknowledgement (the paper's blocking store
  /// pays exactly this extra ack).
  sim::Task<Result<void>> put(overlay::ChimeraNode& origin, Key key, Buffer value,
                              OverwritePolicy policy = OverwritePolicy::overwrite);

  /// Latest version of the value for `key`.
  sim::Task<Result<Buffer>> get(overlay::ChimeraNode& origin, Key key);

  /// All chained versions, oldest first.
  sim::Task<Result<std::vector<Buffer>>> get_all(overlay::ChimeraNode& origin, Key key);

  sim::Task<Result<void>> erase(overlay::ChimeraNode& origin, Key key);

  const KvStats& stats() const { return stats_; }
  const KvConfig& config() const { return config_; }
  overlay::Overlay& overlay() { return overlay_; }

  /// Keys for which `node` currently holds the authoritative copy.
  std::vector<Key> primary_keys(Key node) const;

  /// Total number of authoritative entries across live nodes.
  std::size_t total_entries() const;

  /// True if `node` holds a cached copy of `key` (test/diagnostic hook).
  bool has_cache(Key node, Key key) const;
  bool has_replica(Key node, Key key) const;

 private:
  struct Entry {
    std::vector<Buffer> versions;
    std::set<Key> cached_at;    // nodes holding path-cache copies
    std::set<Key> replica_at;   // nodes holding replicas
  };

  struct NodeStore {
    std::unordered_map<Key, Entry> primary;
    std::unordered_map<Key, std::vector<Buffer>> replica;
    std::unordered_map<Key, std::vector<Buffer>> cache;
  };

  sim::Task<> replicate(overlay::ChimeraNode& owner, Key key);
  sim::Task<> refresh_caches(overlay::ChimeraNode& owner, Key key);
  sim::Task<> redistribute_on_leave(overlay::ChimeraNode& leaver);
  sim::Task<> repair_after_failure(Key dead);
  Bytes value_bytes(const std::vector<Buffer>& versions) const;

  overlay::Overlay& overlay_;
  KvConfig config_;
  std::unordered_map<Key, NodeStore> stores_;  // per overlay node
  KvStats stats_;
};

}  // namespace c4h::kv
