// DHT-based key-value store — the VStore++ metadata & resource-management
// layer (§III-A).
//
// One uniform store holds three kinds of entries: object metadata (key =
// hash of object name), service registrations (key = hash of service name ⊕
// id), and node resource records (key = node id derived from its address).
//
// Faithful to the paper's enhanced Chimera:
//  * put carries an overwrite policy — overwrite, chain a new version, or
//    return an error if the key exists;
//  * entries are cached on the intermediate hops of each request's path
//    through the overlay, and every modification propagates to the caches;
//  * entries are replicated with a fixed replication factor (ring
//    successors of the owner), restored when nodes fail, leave, or rejoin;
//  * a departing node's keys are redistributed among the remaining nodes,
//    and a joining (or restarting) node pulls the keys in its arc.
//
// Hardened for the fault-injection layer (sim/fault.hpp): every public
// operation owns a per-attempt timeout — request messages are sent
// unreliably, a drop surfaces as Errc::timeout — and retries transient
// failures with exponential backoff + jitter, bounded by KvConfig::retry.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/retry.hpp"
#include "src/common/serial.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/overlay/overlay.hpp"

namespace c4h::kv {

enum class OverwritePolicy : std::uint8_t {
  overwrite,  // replace the value
  chain,      // append a new version
  error,      // fail if the key already exists
};

struct KvConfig {
  bool path_caching = true;
  int replication = 1;                          // replicas beyond the owner
  Duration local_access = microseconds(200);    // in-memory table access
  Bytes message_overhead = 50;                  // command packet framing
  // VStore++ talks to the Chimera process over IPC (§IV); paid on entry and
  // on reply for every KV operation issued by a node.
  Duration chimera_ipc = milliseconds(2);
  // Per-operation retry/backoff for transient failures (lost requests,
  // owners that die mid-operation, repair windows).
  RetryPolicy retry;
  // When set, put acknowledges only after the replicas are written, so an
  // acknowledged write survives the immediate crash of its owner. Off by
  // default (the paper replicates off the critical path); chaos tests that
  // assert zero acknowledged loss turn it on.
  bool ack_replication = false;
};

struct KvStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t local_hits = 0;       // resolved without any network hop
  std::uint64_t cache_hits = 0;       // served by an intermediate path cache
  std::uint64_t cache_updates = 0;    // messages refreshing caches on put
  std::uint64_t replication_msgs = 0;
  std::uint64_t redistribution_msgs = 0;
  std::uint64_t op_retries = 0;       // attempts beyond the first
  std::uint64_t op_failures = 0;      // operations that exhausted retries
  std::uint64_t send_timeouts = 0;    // request/reply messages lost in flight
};

/// The distributed key-value store. One instance manages the per-node tables
/// of every overlay member (a simulation convenience; all access paths still
/// pay the right messages and delays).
class KvStore {
 public:
  KvStore(overlay::Overlay& overlay, KvConfig config = {});

  /// Stores `value` under `key`, routed from `origin`. Blocking semantics:
  /// completes after the owner's acknowledgement (the paper's blocking store
  /// pays exactly this extra ack). Transient failures are retried with
  /// backoff; a lost request is detected by the sender's timeout and is safe
  /// to resend (the value was never applied). A non-null `ctx` records a
  /// `kv.put` span whose children are the DHT route and transfer messages.
  [[nodiscard]] sim::Task<Result<void>> put(overlay::ChimeraNode& origin, Key key, Buffer value,
                              OverwritePolicy policy = OverwritePolicy::overwrite,
                              obs::Ctx ctx = {});

  /// Latest version of the value for `key`.
  [[nodiscard]] sim::Task<Result<Buffer>> get(overlay::ChimeraNode& origin, Key key,
                                              obs::Ctx ctx = {});

  /// All chained versions, oldest first.
  [[nodiscard]] sim::Task<Result<std::vector<Buffer>>> get_all(overlay::ChimeraNode& origin, Key key,
                                                               obs::Ctx ctx = {});

  [[nodiscard]] sim::Task<Result<void>> erase(overlay::ChimeraNode& origin, Key key,
                                              obs::Ctx ctx = {});

  const KvStats& stats() const { return stats_; }
  const KvConfig& config() const { return config_; }
  overlay::Overlay& overlay() { return overlay_; }

  /// Keys for which `node` currently holds the authoritative copy.
  std::vector<Key> primary_keys(Key node) const;

  /// Total number of authoritative entries across live nodes.
  std::size_t total_entries() const;

  /// True if `node` holds a cached copy of `key` (test/diagnostic hook).
  bool has_cache(Key node, Key key) const;
  bool has_replica(Key node, Key key) const;

  /// Number of authoritative entries whose live, present replica copies fall
  /// short of the configured factor (bounded by live membership). Zero once
  /// churn has settled and repair/re-replication have run — the invariant
  /// the chaos suite asserts.
  std::size_t under_replicated();

  /// Mirrors operation counts and latencies into a metrics registry
  /// (c4h.kv.{put,get,erase}.count, c4h.kv.{put,get}.latency_ns).
  /// Pass nullptr to detach.
  void set_metrics(obs::Registry* registry);

 private:
  struct Entry {
    std::vector<Buffer> versions;
    // Mutation counter, copied into every replica. When a failed owner's key
    // survives only in replicas, repair promotes the copy with the highest
    // seq — an owner that crashed mid-replication may leave copies of
    // different ages behind, and an acknowledged write must never lose to an
    // older copy.
    std::uint64_t seq = 0;
    std::set<Key> cached_at;    // nodes holding path-cache copies
    std::set<Key> replica_at;   // nodes holding replicas
  };

  struct ReplicaCopy {
    std::vector<Buffer> versions;
    std::uint64_t seq = 0;
  };

  struct NodeStore {
    std::unordered_map<Key, Entry> primary;
    std::unordered_map<Key, ReplicaCopy> replica;
    std::unordered_map<Key, std::vector<Buffer>> cache;
  };

  sim::Task<Result<void>> put_attempt(overlay::ChimeraNode& origin, Key key,
                                      const Buffer& value, OverwritePolicy policy, obs::Ctx ctx);
  sim::Task<Result<std::vector<Buffer>>> get_routed(overlay::ChimeraNode& origin, Key key,
                                                    obs::Ctx ctx);
  sim::Task<Result<void>> erase_attempt(overlay::ChimeraNode& origin, Key key, obs::Ctx ctx);
  sim::Task<> replicate(overlay::ChimeraNode& owner, Key key);
  sim::Task<> refresh_caches(overlay::ChimeraNode& owner, Key key);
  sim::Task<> redistribute_on_leave(overlay::ChimeraNode& leaver);
  sim::Task<> redistribute_on_join(overlay::ChimeraNode& joiner);
  sim::Task<> repair_after_failure(Key dead);
  /// Re-replicates every entry below the expected factor (after churn).
  void restore_replication();
  /// Erases the replica copies registered in `entry` (stale after an
  /// ownership move) and clears the set.
  void drop_replicas(Key key, Entry& entry);
  int expected_replicas();
  int live_replica_count(Key key, const Entry& entry) const;
  Bytes value_bytes(const std::vector<Buffer>& versions) const;

  overlay::Overlay& overlay_;
  KvConfig config_;
  Rng rng_;  // backoff jitter; forked from the simulation seed
  std::unordered_map<Key, NodeStore> stores_;  // per overlay node
  KvStats stats_;
  obs::Counter* m_puts_ = nullptr;         // registered via set_metrics()
  obs::Counter* m_gets_ = nullptr;
  obs::Counter* m_erases_ = nullptr;
  obs::LogHistogram* m_put_lat_ = nullptr;
  obs::LogHistogram* m_get_lat_ = nullptr;
};

}  // namespace c4h::kv
