// Centralized metadata store — the alternative the paper names (§III-A):
// "there exist many alternative implementations of this layer for VStore++,
// including centralized ones ... Our future work will investigate such
// alternatives."
//
// One designated coordinator node holds every entry; all other nodes
// put/get over the network. Compared with the DHT layer this trades:
//   + flat two-message lookups with no routing,
//   − a coordinator hot spot (every operation crosses its access link and
//     its CPU), and
//   − a single point of failure: when the coordinator dies, the *entire*
//     metadata plane is gone until it returns (no replicas to promote).
// The ablation bench quantifies both.
#pragma once

#include <unordered_map>

#include "src/common/result.hpp"
#include "src/common/serial.hpp"
#include "src/overlay/overlay.hpp"

namespace c4h::kv {

struct CentralStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t coordinator_messages = 0;  // load on the coordinator
  std::uint64_t outage_failures = 0;       // ops rejected while it was down
};

class CentralizedMetadata {
 public:
  /// `coordinator` is the designated node (the paper suggests e.g. a node
  /// with sufficient connectivity/capacity).
  CentralizedMetadata(overlay::Overlay& overlay, overlay::ChimeraNode& coordinator,
                      Duration local_access = microseconds(200))
      : overlay_(overlay), coordinator_(coordinator), local_access_(local_access) {}

  [[nodiscard]] sim::Task<Result<void>> put(overlay::ChimeraNode& origin, Key key, Buffer value) {
    ++stats_.puts;
    auto& sim = overlay_.simulation();
    auto& net = overlay_.network();
    if (!coordinator_.online()) {
      ++stats_.outage_failures;
      co_return Error{Errc::unavailable, "metadata coordinator offline"};
    }
    if (&origin != &coordinator_) {
      stats_.coordinator_messages += 2;
      co_await net.send_message(origin.net_node(), coordinator_.net_node(), 50 + value.size());
    }
    co_await sim.delay(local_access_);
    table_[key] = std::move(value);
    if (&origin != &coordinator_) {
      co_await net.send_message(coordinator_.net_node(), origin.net_node());  // ack
    }
    co_return Result<void>{};
  }

  [[nodiscard]] sim::Task<Result<Buffer>> get(overlay::ChimeraNode& origin, Key key) {
    ++stats_.gets;
    auto& sim = overlay_.simulation();
    auto& net = overlay_.network();
    if (!coordinator_.online()) {
      ++stats_.outage_failures;
      co_return Error{Errc::unavailable, "metadata coordinator offline"};
    }
    if (&origin != &coordinator_) {
      stats_.coordinator_messages += 2;
      co_await net.send_message(origin.net_node(), coordinator_.net_node());
    }
    co_await sim.delay(local_access_);
    const auto it = table_.find(key);
    if (it == table_.end()) {
      if (&origin != &coordinator_) {
        co_await net.send_message(coordinator_.net_node(), origin.net_node());
      }
      co_return Error{Errc::not_found, "no value for key"};
    }
    Buffer out = it->second;
    if (&origin != &coordinator_) {
      co_await net.send_message(coordinator_.net_node(), origin.net_node(), 50 + out.size());
    }
    co_return out;
  }

  std::size_t entries() const { return table_.size(); }
  const CentralStats& stats() const { return stats_; }
  overlay::ChimeraNode& coordinator() { return coordinator_; }

 private:
  overlay::Overlay& overlay_;
  overlay::ChimeraNode& coordinator_;
  Duration local_access_;
  std::unordered_map<Key, Buffer> table_;
  CentralStats stats_;
};

}  // namespace c4h::kv
