#include "src/kv/kvstore.hpp"

#include <algorithm>
#include <set>

#include "src/common/ordered.hpp"

namespace c4h::kv {

using overlay::ChimeraNode;

KvStore::KvStore(overlay::Overlay& overlay, KvConfig config)
    : overlay_(overlay), config_(config), rng_(overlay.simulation().rng().fork()) {
  overlay_.set_leave_hook([this](ChimeraNode& n) { return redistribute_on_leave(n); });
  overlay_.set_join_hook([this](ChimeraNode& n) { return redistribute_on_join(n); });
  overlay_.set_failure_hook([this](Key dead) { return repair_after_failure(dead); });
}

Bytes KvStore::value_bytes(const std::vector<Buffer>& versions) const {
  Bytes b = config_.message_overhead;
  for (const auto& v : versions) b += v.size();
  return b;
}

void KvStore::drop_replicas(Key key, Entry& entry) {
  for (const Key r : entry.replica_at) {
    const auto s = stores_.find(r);
    if (s != stores_.end()) s->second.replica.erase(key);
    ++stats_.replication_msgs;
  }
  entry.replica_at.clear();
}

int KvStore::expected_replicas() {
  const int live = static_cast<int>(overlay_.live_members().size());
  return std::min(config_.replication, std::max(0, live - 1));
}

int KvStore::live_replica_count(Key key, const Entry& entry) const {
  int n = 0;
  for (const Key r : entry.replica_at) {
    const auto it = stores_.find(r);
    if (it == stores_.end() || !it->second.replica.contains(key)) continue;
    ChimeraNode* rn = overlay_.node_by_key(r);
    if (rn != nullptr && rn->online()) ++n;
  }
  return n;
}

std::size_t KvStore::under_replicated() {
  const int expected = expected_replicas();
  std::size_t deficient = 0;
  for (auto& [node, store] : stores_) {  // c4h-lint: allow(R3) — pure count
    ChimeraNode* holder = overlay_.node_by_key(node);
    if (holder == nullptr || !holder->online()) continue;
    for (auto& [key, entry] : store.primary) {  // c4h-lint: allow(R3) — pure count
      if (live_replica_count(key, entry) < expected) ++deficient;
    }
  }
  return deficient;
}

sim::Task<Result<void>> KvStore::put(ChimeraNode& origin, Key key, Buffer value,
                                     OverwritePolicy policy, obs::Ctx ctx) {
  ++stats_.puts;
  if (m_puts_ != nullptr) m_puts_->add();
  auto& sim = overlay_.simulation();
  const TimePoint started = sim.now();
  obs::ScopedSpan sp(ctx, "kv.put");
  co_await sim.delay(config_.chimera_ipc);  // hand the request to Chimera

  Result<void> res = Error{Errc::unavailable, "not attempted"};
  for (int attempt = 1;; ++attempt) {
    res = co_await put_attempt(origin, key, value, policy, sp.ctx());
    if (res.ok() || !RetryPolicy::transient(res.code())) break;
    if (attempt >= config_.retry.max_attempts) {
      ++stats_.op_failures;
      break;
    }
    ++stats_.op_retries;
    co_await sim.delay(config_.retry.backoff(attempt, rng_));
  }
  co_await sim.delay(config_.chimera_ipc);  // reply crosses back over IPC
  if (!res.ok()) sp.set_error(res.error().message);
  if (m_put_lat_ != nullptr) {
    m_put_lat_->record(static_cast<std::uint64_t>((sim.now() - started).count()));
  }
  co_return res;
}

sim::Task<Result<void>> KvStore::put_attempt(ChimeraNode& origin, Key key, const Buffer& value,
                                             OverwritePolicy policy, obs::Ctx ctx) {
  auto& sim = overlay_.simulation();
  auto& net = overlay_.network();

  auto routed = co_await overlay_.route(origin, key, {}, ctx);
  if (!routed.ok()) co_return routed.error();
  ChimeraNode* owner = overlay_.node_by_key(routed->owner);
  if (owner == nullptr || !owner->online()) co_return Error{Errc::unavailable, "owner offline"};

  // Ship the value to the owner (command packet + serialized value). The
  // request travels unreliably: a drop — or the owner dying with the request
  // in flight — surfaces before the value is applied, so resending is safe.
  if (owner != &origin) {
    const bool delivered = co_await net.try_send_message(
        origin.net_node(), owner->net_node(), config_.message_overhead + value.size(), ctx);
    if (!delivered) {
      ++stats_.send_timeouts;
      co_return Error{Errc::timeout, "put request lost"};
    }
    if (!owner->online()) co_return Error{Errc::unavailable, "owner died in flight"};
  }
  co_await sim.delay(config_.local_access);

  NodeStore& store = stores_[owner->id()];
  auto it = store.primary.find(key);
  switch (policy) {
    case OverwritePolicy::error:
      if (it != store.primary.end()) {
        if (owner != &origin) {
          co_await net.send_message(owner->net_node(), origin.net_node(), 50, ctx);
        }
        co_return Error{Errc::already_exists, "key exists and policy is error"};
      }
      store.primary[key].versions = {value};
      break;
    case OverwritePolicy::overwrite:
      store.primary[key].versions = {value};
      break;
    case OverwritePolicy::chain:
      store.primary[key].versions.push_back(value);
      break;
  }
  ++store.primary[key].seq;

  // Caches are updated before the ack ("whenever a key-value entry is
  // modified, the corresponding caches are also updated"), keeping reads
  // coherent; replication proceeds off the critical path unless the store
  // was configured for acknowledged replication.
  co_await refresh_caches(*owner, key);
  if (config_.ack_replication) {
    co_await replicate(*owner, key);
    if (!owner->online()) {
      // The owner died during replication. The write is durable only if at
      // least one replica actually landed; otherwise fail the attempt so the
      // caller retries against the key's next owner.
      bool durable = false;
      if (const auto sit = stores_.find(owner->id()); sit != stores_.end()) {
        if (const auto pit = sit->second.primary.find(key); pit != sit->second.primary.end()) {
          durable = live_replica_count(key, pit->second) > 0;
        }
      }
      if (!durable) co_return Error{Errc::unavailable, "owner died before replication"};
    }
  } else {
    sim.spawn(replicate(*owner, key));
  }

  if (owner != &origin) {
    co_await net.send_message(owner->net_node(), origin.net_node(), 50, ctx);  // ack
  }
  co_return Result<void>{};
}

sim::Task<Result<std::vector<Buffer>>> KvStore::get_all(ChimeraNode& origin, Key key,
                                                        obs::Ctx ctx) {
  ++stats_.gets;
  if (m_gets_ != nullptr) m_gets_->add();
  auto& sim = overlay_.simulation();
  const TimePoint started = sim.now();
  obs::ScopedSpan sp(ctx, "kv.get");
  co_await sim.delay(config_.chimera_ipc);

  // Local fast path: authoritative copy or cache on the origin. Replicas are
  // deliberately NOT served here: replication is asynchronous, so a replica
  // can lag the owner's copy; it only serves through the routed path, where
  // the holder is the key's (possibly newly promoted) owner.
  {
    NodeStore& mine = stores_[origin.id()];
    const auto pit = mine.primary.find(key);
    if (pit != mine.primary.end()) {
      ++stats_.local_hits;
      sp.attr("source", "local");
      co_await sim.delay(config_.local_access + config_.chimera_ipc);
      if (m_get_lat_ != nullptr) {
        m_get_lat_->record(static_cast<std::uint64_t>((sim.now() - started).count()));
      }
      // Re-find after the suspension: a concurrent put can rehash the table
      // and churn can erase the entry, either of which invalidates `pit`.
      const auto cur = mine.primary.find(key);
      if (cur != mine.primary.end()) co_return cur->second.versions;
      co_return Error{Errc::not_found, "evicted during local access"};
    }
    if (config_.path_caching) {
      const auto cit = mine.cache.find(key);
      if (cit != mine.cache.end()) {
        ++stats_.local_hits;
        sp.attr("source", "cache");
        co_await sim.delay(config_.local_access + config_.chimera_ipc);
        if (m_get_lat_ != nullptr) {
          m_get_lat_->record(static_cast<std::uint64_t>((sim.now() - started).count()));
        }
        // Same revalidation: the cache is mutated by refresh_caches and
        // invalidations that may run while this frame is suspended.
        const auto cur = mine.cache.find(key);
        if (cur != mine.cache.end()) co_return cur->second;
        co_return Error{Errc::not_found, "evicted during local access"};
      }
    }
  }

  sp.attr("source", "routed");
  Result<std::vector<Buffer>> res = Error{Errc::unavailable, "not attempted"};
  for (int attempt = 1;; ++attempt) {
    res = co_await get_routed(origin, key, sp.ctx());
    if (res.ok() || !RetryPolicy::transient(res.code())) break;
    if (attempt >= config_.retry.max_attempts) {
      ++stats_.op_failures;
      break;
    }
    ++stats_.op_retries;
    co_await sim.delay(config_.retry.backoff(attempt, rng_));
  }
  co_await sim.delay(config_.chimera_ipc);
  if (!res.ok()) sp.set_error(res.error().message);
  if (m_get_lat_ != nullptr) {
    m_get_lat_->record(static_cast<std::uint64_t>((sim.now() - started).count()));
  }
  co_return res;
}

sim::Task<Result<std::vector<Buffer>>> KvStore::get_routed(ChimeraNode& origin, Key key,
                                                           obs::Ctx ctx) {
  auto& sim = overlay_.simulation();
  auto& net = overlay_.network();

  // Route toward the owner, stopping early at any hop with a cached copy.
  std::function<bool(ChimeraNode&)> stop;
  if (config_.path_caching) {
    stop = [this, key](ChimeraNode& n) {
      const auto sit = stores_.find(n.id());
      return sit != stores_.end() && sit->second.cache.contains(key);
    };
  }
  auto routed = co_await overlay_.route(origin, key, stop, ctx);
  if (!routed.ok()) co_return routed.error();
  ChimeraNode* holder = overlay_.node_by_key(routed->owner);
  if (holder == nullptr || !holder->online()) co_return Error{Errc::unavailable, "holder offline"};

  NodeStore& hs = stores_[holder->id()];
  std::vector<Buffer>* versions = nullptr;
  bool from_primary = false;
  if (auto pit = hs.primary.find(key); pit != hs.primary.end()) {
    versions = &pit->second.versions;
    from_primary = true;
  } else if (auto rit = hs.replica.find(key); rit != hs.replica.end()) {
    versions = &rit->second.versions;  // owner changed after a failure; replica serves
  } else if (config_.path_caching) {
    if (auto cit = hs.cache.find(key); cit != hs.cache.end()) {
      versions = &cit->second;
      ++stats_.cache_hits;
    }
  }

  co_await sim.delay(config_.local_access);
  if (versions == nullptr) {
    if (holder != &origin) {
      co_await net.send_message(holder->net_node(), origin.net_node(), 50, ctx);
    }
    co_return Error{Errc::not_found, "no value for key"};
  }

  // Reply straight back to the origin with the value. Unreliable: a lost
  // reply is the origin's timeout to detect (and safe to retry — reads are
  // idempotent).
  std::vector<Buffer> result = *versions;
  if (holder != &origin) {
    const bool delivered = co_await net.try_send_message(holder->net_node(), origin.net_node(),
                                                         value_bytes(result), ctx);
    if (!delivered) {
      ++stats_.send_timeouts;
      co_return Error{Errc::timeout, "read reply lost"};
    }
  }

  // Populate path caches (including the origin) and register them with the
  // owner for future invalidation. Only for values served from the
  // authoritative copy, and only while that copy is unchanged — a concurrent
  // put may have refreshed the caches already, and registering an older value
  // afterwards would leave them permanently stale.
  if (config_.path_caching && from_primary) {
    const auto hit = stores_.find(holder->id());
    if (hit != stores_.end()) {
      if (auto pit = hit->second.primary.find(key);
          pit != hit->second.primary.end() && pit->second.versions == result) {
        Entry& entry = pit->second;
        auto cache_on = [&](Key node_key) {
          if (node_key == holder->id()) return;
          ChimeraNode* cn = overlay_.node_by_key(node_key);
          if (cn == nullptr || !cn->online()) return;
          stores_[node_key].cache[key] = result;
          entry.cached_at.insert(node_key);
          ++stats_.cache_updates;
        };
        for (const Key hop : routed->path) cache_on(hop);
        cache_on(origin.id());
      }
    }
  }

  co_return result;
}

sim::Task<Result<Buffer>> KvStore::get(ChimeraNode& origin, Key key, obs::Ctx ctx) {
  auto all = co_await get_all(origin, key, ctx);
  if (!all.ok()) co_return all.error();
  if (all->empty()) co_return Error{Errc::not_found, "empty entry"};
  co_return all->back();
}

sim::Task<Result<void>> KvStore::erase(ChimeraNode& origin, Key key, obs::Ctx ctx) {
  ++stats_.erases;
  if (m_erases_ != nullptr) m_erases_->add();
  auto& sim = overlay_.simulation();
  obs::ScopedSpan sp(ctx, "kv.erase");

  Result<void> res = Error{Errc::unavailable, "not attempted"};
  for (int attempt = 1;; ++attempt) {
    res = co_await erase_attempt(origin, key, sp.ctx());
    if (res.ok() || !RetryPolicy::transient(res.code())) break;
    if (attempt >= config_.retry.max_attempts) {
      ++stats_.op_failures;
      break;
    }
    ++stats_.op_retries;
    co_await sim.delay(config_.retry.backoff(attempt, rng_));
  }
  if (!res.ok()) sp.set_error(res.error().message);
  co_return res;
}

sim::Task<Result<void>> KvStore::erase_attempt(ChimeraNode& origin, Key key, obs::Ctx ctx) {
  auto& sim = overlay_.simulation();
  auto& net = overlay_.network();

  auto routed = co_await overlay_.route(origin, key, {}, ctx);
  if (!routed.ok()) co_return routed.error();
  ChimeraNode* owner = overlay_.node_by_key(routed->owner);
  if (owner == nullptr || !owner->online()) co_return Error{Errc::unavailable, "owner offline"};
  if (owner != &origin) {
    const bool delivered =
        co_await net.try_send_message(origin.net_node(), owner->net_node(), 50, ctx);
    if (!delivered) {
      ++stats_.send_timeouts;
      co_return Error{Errc::timeout, "erase request lost"};
    }
    if (!owner->online()) co_return Error{Errc::unavailable, "owner died in flight"};
  }
  co_await sim.delay(config_.local_access);

  NodeStore& store = stores_[owner->id()];
  const auto it = store.primary.find(key);
  if (it == store.primary.end()) {
    if (owner != &origin) {
      co_await net.send_message(owner->net_node(), origin.net_node(), 50, ctx);
    }
    co_return Error{Errc::not_found, "no value for key"};
  }

  // Tear down every copy, registered or not: an unregistered stray replica
  // left behind would otherwise be promoted after a later failure and
  // resurrect the deleted key.
  // c4h-lint: allow(R3) — erases one key from every store; order-insensitive
  for (auto& [node, s] : stores_) {
    if (s.cache.erase(key) > 0) ++stats_.cache_updates;
    if (s.replica.erase(key) > 0) ++stats_.replication_msgs;
  }
  store.primary.erase(key);

  if (owner != &origin) co_await net.send_message(owner->net_node(), origin.net_node(), 50, ctx);
  co_return Result<void>{};
}

sim::Task<> KvStore::refresh_caches(ChimeraNode& owner, Key key) {
  auto& net = overlay_.network();
  const auto sit = stores_.find(owner.id());
  if (sit == stores_.end()) co_return;
  const auto it = sit->second.primary.find(key);
  if (it == sit->second.primary.end()) co_return;

  // Copy targets first: the entry may mutate while we await messages.
  const std::vector<Key> targets(it->second.cached_at.begin(), it->second.cached_at.end());
  for (const Key c : targets) {
    ChimeraNode* n = overlay_.node_by_key(c);
    if (n == nullptr || !n->online()) continue;
    auto cur = stores_[owner.id()].primary.find(key);
    if (cur == stores_[owner.id()].primary.end()) co_return;  // erased meanwhile
    ++stats_.cache_updates;
    co_await net.send_message(owner.net_node(), n->net_node(), value_bytes(cur->second.versions));
    // Revalidate after the transfer; the entry (or the cache holder) may be
    // gone by the time the update lands.
    cur = stores_[owner.id()].primary.find(key);
    if (cur == stores_[owner.id()].primary.end()) co_return;
    if (!cur->second.cached_at.contains(c)) continue;
    stores_[c].cache[key] = cur->second.versions;
  }
}

sim::Task<> KvStore::replicate(ChimeraNode& owner, Key key) {
  auto& net = overlay_.network();
  if (config_.replication <= 0) co_return;
  const auto succ = overlay_.successors_of(owner.id(), config_.replication);
  for (const Key r : succ) {
    if (!owner.online()) co_return;  // owner died; repair takes over from here
    ChimeraNode* n = overlay_.node_by_key(r);
    if (n == nullptr || !n->online()) continue;
    const auto sit = stores_.find(owner.id());
    if (sit == stores_.end()) co_return;
    auto cur = sit->second.primary.find(key);
    if (cur == sit->second.primary.end()) co_return;  // erased/moved meanwhile
    const std::vector<Buffer> versions = cur->second.versions;
    const std::uint64_t seq = cur->second.seq;
    ++stats_.replication_msgs;
    co_await net.send_message(owner.net_node(), n->net_node(), value_bytes(versions));
    // Revalidate: the entry may have moved and the target may have died while
    // the copy was in flight.
    const auto sit2 = stores_.find(owner.id());
    if (sit2 == stores_.end()) co_return;
    const auto cur2 = sit2->second.primary.find(key);
    if (cur2 == sit2->second.primary.end()) co_return;
    if (!n->online()) continue;
    stores_[r].replica[key] = ReplicaCopy{versions, seq};
    cur2->second.replica_at.insert(r);
  }
}

void KvStore::restore_replication() {
  // Applied synchronously (messages counted, not awaited), same as the
  // join-time key moves: restoration runs at membership events, and an
  // awaited restore leaves a window where the next crash in the schedule
  // can take the last live copy of an entry whose repair was still queued
  // behind other transfers. The safety floor ("never crash more nodes than
  // the replication factor") is only sound if redundancy is whole again by
  // the time each membership event finishes.
  if (config_.replication <= 0) return;
  std::vector<std::pair<Key, Key>> work;  // (owner node, key); apply after the
  // scan so inserts can't rehash under us. The scan loops are hash-ordered but
  // only collect; sorting `work` below makes repair order seed-stable (R3).
  for (auto& [node, store] : stores_) {  // c4h-lint: allow(R3) c4h-analyze: allow(D3) — collect only; sorted below
    ChimeraNode* holder = overlay_.node_by_key(node);
    if (holder == nullptr || !holder->online()) continue;
    for (auto& [key, entry] : store.primary) {  // c4h-lint: allow(R3) c4h-analyze: allow(D3) — collect only; sorted below
      if (live_replica_count(key, entry) < expected_replicas()) work.emplace_back(node, key);
    }
  }
  std::sort(work.begin(), work.end());
  for (const auto& [node, key] : work) {
    const auto sit = stores_.find(node);
    if (sit == stores_.end()) continue;
    const auto pit = sit->second.primary.find(key);
    if (pit == sit->second.primary.end()) continue;
    const auto succ = overlay_.successors_of(node, config_.replication);
    for (const Key r : succ) {
      ChimeraNode* n = overlay_.node_by_key(r);
      if (n == nullptr || !n->online()) continue;
      NodeStore& rs = stores_[r];  // may rehash: re-find the entry afterwards
      const auto pe = stores_.find(node)->second.primary.find(key);
      if (pe->second.replica_at.contains(r) && rs.replica.contains(key)) continue;
      ++stats_.replication_msgs;
      rs.replica[key] = ReplicaCopy{pe->second.versions, pe->second.seq};
      pe->second.replica_at.insert(r);
    }
  }
}

sim::Task<> KvStore::redistribute_on_leave(ChimeraNode& leaver) {
  auto& net = overlay_.network();
  const auto find_primary = [this](Key node, Key key) -> Entry* {
    const auto s = stores_.find(node);
    if (s == stores_.end()) return nullptr;
    const auto p = s->second.primary.find(key);
    return p != s->second.primary.end() ? &p->second : nullptr;
  };

  if (const auto sit = stores_.find(leaver.id()); sit != stores_.end()) {
    // Hand each authoritative entry to the node that becomes its owner once
    // the leaver is gone (its closest remaining ring neighbour for that key).
    // Sorted traversal: the transfers below emit awaited messages, so the
    // hand-off order must be a function of the seed, not of hash layout.
    for (const Key key : sorted_keys(sit->second.primary)) {
      Entry* e = find_primary(leaver.id(), key);
      if (e == nullptr) continue;  // moved/erased while we were transferring
      Key best{};
      std::uint64_t best_dist = UINT64_MAX;
      for (ChimeraNode* n : overlay_.live_members()) {
        if (n == &leaver) continue;
        const auto d = n->id().ring_distance(key);
        if (d < best_dist || (d == best_dist && n->id() < best)) {
          best = n->id();
          best_dist = d;
        }
      }
      if (best_dist == UINT64_MAX) co_return;  // last node leaving; data is lost
      ChimeraNode* target = overlay_.node_by_key(best);
      ++stats_.redistribution_msgs;
      co_await net.send_message(leaver.net_node(), target->net_node(), value_bytes(e->versions));

      e = find_primary(leaver.id(), key);  // revalidate after the transfer
      if (e == nullptr) continue;
      Entry moved = std::move(*e);
      stores_[leaver.id()].primary.erase(key);
      // The old replica set was chosen for the old owner's ring position;
      // drop those copies and re-form around the new owner. Cache copies stay
      // valid (the value is unchanged) and keep their registrations, so the
      // new owner continues refreshing them.
      drop_replicas(key, moved);
      moved.cached_at.erase(best);
      moved.cached_at.erase(leaver.id());
      stores_[best].cache.erase(key);  // its primary now shadows any cached copy
      stores_[best].primary[key] = std::move(moved);
      overlay_.simulation().spawn(replicate(*target, key));
    }
    stores_.erase(leaver.id());
  }

  // Scrub the leaver from every cache/replica registration — its copies left
  // with it.
  // c4h-lint: allow(R3) — per-entry erase of one id; order-insensitive
  for (auto& [node, store] : stores_) {
    for (auto& [key, entry] : store.primary) {  // c4h-lint: allow(R3)
      entry.cached_at.erase(leaver.id());
      entry.replica_at.erase(leaver.id());
    }
  }
  restore_replication();
}

sim::Task<> KvStore::redistribute_on_join(ChimeraNode& joiner) {
  const Key jid = joiner.id();

  // A (re)joining node's volatile KV state is stale from before its crash:
  // path caches missed refreshes while it was down and its replica copies are
  // no longer registered with any owner. Drop both. Its primary entries — the
  // authoritative copies if the crash was never detected — are kept, with
  // dangling registrations pruned.
  if (const auto sit = stores_.find(jid); sit != stores_.end()) {
    sit->second.cache.clear();
    sit->second.replica.clear();
    // c4h-lint: allow(R3) — prunes dangling registrations per entry; order-insensitive
    for (auto& [key, entry] : sit->second.primary) {
      for (auto it = entry.replica_at.begin(); it != entry.replica_at.end();) {
        const auto s = stores_.find(*it);
        const bool present = s != stores_.end() && s->second.replica.contains(key);
        it = present ? std::next(it) : entry.replica_at.erase(it);
      }
      for (auto it = entry.cached_at.begin(); it != entry.cached_at.end();) {
        const auto s = stores_.find(*it);
        const bool present = s != stores_.end() && s->second.cache.contains(key);
        it = present ? std::next(it) : entry.cached_at.erase(it);
      }
    }
  }
  // c4h-lint: allow(R3) — per-entry erase of one id; order-insensitive
  for (auto& [node, store] : stores_) {
    if (node == jid) continue;
    for (auto& [key, entry] : store.primary) {  // c4h-lint: allow(R3)
      entry.cached_at.erase(jid);
      entry.replica_at.erase(jid);
    }
  }

  // Pull every key in the joiner's arc from its current holder ("a departing
  // node's keys are always redistributed among the available set of nodes" —
  // and symmetrically on join). Applied atomically at join time (messages are
  // counted, not awaited) so no read can observe the half-moved state; the
  // restored node may hold an older copy of a key that was re-owned and
  // rewritten while it was down, and that stale copy must never serve.
  std::vector<std::pair<Key, Key>> moves;  // (holder node, key)
  for (auto& [node, store] : stores_) {  // c4h-lint: allow(R3) c4h-analyze: allow(D3) — collect only; sorted below
    if (node == jid) continue;
    ChimeraNode* holder = overlay_.node_by_key(node);
    if (holder == nullptr || !holder->online()) continue;
    for (auto& [key, entry] : store.primary) {  // c4h-lint: allow(R3) c4h-analyze: allow(D3) — collect only; sorted below
      if (overlay_.true_owner(key) == jid) moves.emplace_back(node, key);
    }
  }
  // Sorted application: message counting and seq-based promotion below must
  // happen in a seed-stable order, not hash order.
  std::sort(moves.begin(), moves.end());
  for (const auto& [holder_key, key] : moves) {
    const auto hs = stores_.find(holder_key);
    if (hs == stores_.end()) continue;
    const auto pit = hs->second.primary.find(key);
    if (pit == hs->second.primary.end()) continue;
    ++stats_.redistribution_msgs;
    Entry moved = std::move(pit->second);
    hs->second.primary.erase(pit);
    // If the rejoined node kept an older copy from before its crash, the
    // freshest one wins (seq is monotone per entry).
    if (const auto mine = stores_[jid].primary.find(key);
        mine != stores_[jid].primary.end() && mine->second.seq > moved.seq) {
      drop_replicas(key, moved);
      continue;
    }
    drop_replicas(key, moved);
    moved.cached_at.erase(jid);
    stores_[jid].cache.erase(key);
    stores_[jid].primary[key] = std::move(moved);
  }

  // Re-form replica sets around the new membership.
  restore_replication();
  co_return;  // no awaits remain, but this must stay a coroutine
}

sim::Task<> KvStore::repair_after_failure(Key dead) {
  // A restart can race failure detection: if the "dead" node is back online
  // and in the ring, its table is current state, not wreckage — wiping it
  // would destroy live acknowledged data. Its rejoin already repaired
  // membership and redistributed keys.
  if (ChimeraNode* back = overlay_.node_by_key(dead);
      back != nullptr && back->online() && back->in_ring()) {
    co_return;
  }
  auto& net = overlay_.network();
  // The dead node's volatile table is gone. Every key it owned survives only
  // in replicas; promote the freshest replica of each at the key's new owner,
  // then restore the replication factor. Also scrub the dead node from
  // cache/replica registrations.
  stores_.erase(dead);
  // c4h-lint: allow(R3) — per-entry erase of one id; order-insensitive
  for (auto& [node, store] : stores_) {
    for (auto& [key, entry] : store.primary) {  // c4h-lint: allow(R3)
      entry.cached_at.erase(dead);
      entry.replica_at.erase(dead);
    }
  }

  // Keys whose replicas exist but whose current owner lost the primary.
  // The scan is hash-ordered but the std::set canonicalizes: promotion below
  // runs in sorted key order regardless of how the orphans were discovered.
  std::set<Key> orphaned;
  for (auto& [node, store] : stores_) {  // c4h-lint: allow(R3) — set-canonicalized
    ChimeraNode* holder = overlay_.node_by_key(node);
    if (holder == nullptr || !holder->online()) continue;
    for (auto& [key, copy] : store.replica) {  // c4h-lint: allow(R3) — set-canonicalized
      const Key owner = overlay_.true_owner(key);
      const auto oit = stores_.find(owner);
      if (oit == stores_.end() || !oit->second.primary.contains(key)) orphaned.insert(key);
    }
  }

  for (const Key key : orphaned) {
    // The freshest live copy wins: an owner that crashed mid-replication
    // leaves copies of different ages, and an acknowledged write must not
    // lose to an older one.
    Key best_holder{};
    std::uint64_t best_seq = 0;
    bool found = false;
    // c4h-lint: allow(R3) — max scan with a total-order tie-break on node id
    for (auto& [node, store] : stores_) {
      ChimeraNode* h = overlay_.node_by_key(node);
      if (h == nullptr || !h->online()) continue;
      const auto rit = store.replica.find(key);
      if (rit == store.replica.end()) continue;
      if (!found || rit->second.seq > best_seq ||
          (rit->second.seq == best_seq && node < best_holder)) {
        found = true;
        best_seq = rit->second.seq;
        best_holder = node;
      }
    }
    if (!found) continue;
    const Key owner_key = overlay_.true_owner(key);
    ChimeraNode* owner = overlay_.node_by_key(owner_key);
    if (owner == nullptr || !owner->online()) continue;
    if (stores_[owner_key].primary.contains(key)) continue;  // repaired meanwhile
    const ReplicaCopy copy = stores_[best_holder].replica[key];
    if (best_holder != owner_key) {
      ++stats_.redistribution_msgs;
      ChimeraNode* holder = overlay_.node_by_key(best_holder);
      if (holder != nullptr) {
        co_await net.send_message(holder->net_node(), owner->net_node(),
                                  value_bytes(copy.versions));
      }
      // Revalidate after the transfer — ownership or liveness may have moved.
      if (overlay_.true_owner(key) != owner_key || !owner->online()) continue;
      if (stores_[owner_key].primary.contains(key)) continue;
    }

    Entry& pe = stores_[owner_key].primary[key];
    pe.versions = copy.versions;
    pe.seq = copy.seq;
    pe.cached_at.clear();
    pe.replica_at.clear();
    // Surviving copies: refresh older ones to the promoted value and
    // re-register them; cached copies of the key anywhere may predate the
    // crash and are dropped wholesale (they re-form on the next reads).
    // c4h-lint: allow(R3) — per-store refresh of one key; order-insensitive
    for (auto& [n2, s2] : stores_) {
      s2.cache.erase(key);
      if (n2 == owner_key) {
        s2.replica.erase(key);
        continue;
      }
      const auto r2 = s2.replica.find(key);
      if (r2 == s2.replica.end()) continue;
      ChimeraNode* rn = overlay_.node_by_key(n2);
      if (rn == nullptr || !rn->online()) {
        s2.replica.erase(key);
        continue;
      }
      ++stats_.replication_msgs;
      r2->second = copy;
      pe.replica_at.insert(n2);
    }
    overlay_.simulation().spawn(replicate(*owner, key));
  }

  restore_replication();
}

std::vector<Key> KvStore::primary_keys(Key node) const {
  const auto it = stores_.find(node);
  if (it == stores_.end()) return {};
  return sorted_keys(it->second.primary);  // stable order for callers/tests
}

std::size_t KvStore::total_entries() const {
  std::size_t n = 0;
  // c4h-lint: allow(R3) — integer sum; order-insensitive
  for (const auto& [node, store] : stores_) n += store.primary.size();
  return n;
}

bool KvStore::has_cache(Key node, Key key) const {
  const auto it = stores_.find(node);
  return it != stores_.end() && it->second.cache.contains(key);
}

bool KvStore::has_replica(Key node, Key key) const {
  const auto it = stores_.find(node);
  return it != stores_.end() && it->second.replica.contains(key);
}

void KvStore::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    m_puts_ = nullptr;
    m_gets_ = nullptr;
    m_erases_ = nullptr;
    m_put_lat_ = nullptr;
    m_get_lat_ = nullptr;
    return;
  }
  m_puts_ = &registry->counter("c4h.kv.put.count");
  m_gets_ = &registry->counter("c4h.kv.get.count");
  m_erases_ = &registry->counter("c4h.kv.erase.count");
  m_put_lat_ = &registry->histogram("c4h.kv.put.latency_ns");
  m_get_lat_ = &registry->histogram("c4h.kv.get.latency_ns");
}

}  // namespace c4h::kv
