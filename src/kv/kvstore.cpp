#include "src/kv/kvstore.hpp"

#include <algorithm>

namespace c4h::kv {

using overlay::ChimeraNode;

KvStore::KvStore(overlay::Overlay& overlay, KvConfig config)
    : overlay_(overlay), config_(config) {
  overlay_.set_leave_hook([this](ChimeraNode& n) { return redistribute_on_leave(n); });
  overlay_.set_failure_hook([this](Key dead) { return repair_after_failure(dead); });
}

Bytes KvStore::value_bytes(const std::vector<Buffer>& versions) const {
  Bytes b = config_.message_overhead;
  for (const auto& v : versions) b += v.size();
  return b;
}

sim::Task<Result<void>> KvStore::put(ChimeraNode& origin, Key key, Buffer value,
                                     OverwritePolicy policy) {
  ++stats_.puts;
  auto& sim = overlay_.simulation();
  auto& net = overlay_.network();
  co_await sim.delay(config_.chimera_ipc);  // hand the request to Chimera

  auto routed = co_await overlay_.route(origin, key);
  if (!routed.ok()) co_return routed.error();
  ChimeraNode* owner = overlay_.node_by_key(routed->owner);

  // Ship the value to the owner (command packet + serialized value).
  if (owner != &origin) {
    co_await net.send_message(origin.net_node(), owner->net_node(),
                              config_.message_overhead + value.size());
  }
  co_await sim.delay(config_.local_access);

  NodeStore& store = stores_[owner->id()];
  auto it = store.primary.find(key);
  switch (policy) {
    case OverwritePolicy::error:
      if (it != store.primary.end()) {
        if (owner != &origin) co_await net.send_message(owner->net_node(), origin.net_node());
        co_return Error{Errc::already_exists, "key exists and policy is error"};
      }
      store.primary[key].versions = {std::move(value)};
      break;
    case OverwritePolicy::overwrite:
      store.primary[key].versions = {std::move(value)};
      break;
    case OverwritePolicy::chain:
      store.primary[key].versions.push_back(std::move(value));
      break;
  }

  // Caches are updated before the ack ("whenever a key-value entry is
  // modified, the corresponding caches are also updated"), keeping reads
  // coherent; replication proceeds off the critical path.
  co_await refresh_caches(*owner, key);
  sim.spawn(replicate(*owner, key));

  if (owner != &origin) {
    co_await net.send_message(owner->net_node(), origin.net_node());  // ack
  }
  co_await sim.delay(config_.chimera_ipc);  // reply crosses back over IPC
  co_return Result<void>{};
}

sim::Task<Result<std::vector<Buffer>>> KvStore::get_all(ChimeraNode& origin, Key key) {
  ++stats_.gets;
  auto& sim = overlay_.simulation();
  auto& net = overlay_.network();
  co_await sim.delay(config_.chimera_ipc);

  // Local fast path: authoritative copy or cache on the origin. Replicas are
  // deliberately NOT served here: replication is asynchronous, so a replica
  // can lag the owner's copy; it only serves through the routed path, where
  // the holder is the key's (possibly newly promoted) owner.
  {
    NodeStore& mine = stores_[origin.id()];
    const auto pit = mine.primary.find(key);
    if (pit != mine.primary.end()) {
      ++stats_.local_hits;
      co_await sim.delay(config_.local_access + config_.chimera_ipc);
      co_return pit->second.versions;
    }
    if (config_.path_caching) {
      const auto cit = mine.cache.find(key);
      if (cit != mine.cache.end()) {
        ++stats_.local_hits;
        co_await sim.delay(config_.local_access + config_.chimera_ipc);
        co_return cit->second;
      }
    }
  }

  // Route toward the owner, stopping early at any hop with a cached copy.
  std::function<bool(ChimeraNode&)> stop;
  if (config_.path_caching) {
    stop = [this, key](ChimeraNode& n) {
      const auto sit = stores_.find(n.id());
      return sit != stores_.end() && sit->second.cache.contains(key);
    };
  }
  auto routed = co_await overlay_.route(origin, key, stop);
  if (!routed.ok()) co_return routed.error();
  ChimeraNode* holder = overlay_.node_by_key(routed->owner);

  NodeStore& hs = stores_[holder->id()];
  std::vector<Buffer>* versions = nullptr;
  bool from_cache = false;
  if (auto pit = hs.primary.find(key); pit != hs.primary.end()) {
    versions = &pit->second.versions;
  } else if (auto rit = hs.replica.find(key); rit != hs.replica.end()) {
    versions = &rit->second;  // owner changed after a failure; replica serves
  } else if (config_.path_caching) {
    if (auto cit = hs.cache.find(key); cit != hs.cache.end()) {
      versions = &cit->second;
      from_cache = true;
      ++stats_.cache_hits;
    }
  }

  co_await sim.delay(config_.local_access);
  if (versions == nullptr) {
    if (holder != &origin) co_await net.send_message(holder->net_node(), origin.net_node());
    co_await sim.delay(config_.chimera_ipc);
    co_return Error{Errc::not_found, "no value for key"};
  }

  // Reply straight back to the origin with the value.
  std::vector<Buffer> result = *versions;
  if (holder != &origin) {
    co_await net.send_message(holder->net_node(), origin.net_node(), value_bytes(result));
  }
  co_await sim.delay(config_.chimera_ipc);

  // Populate path caches (including the origin) and register them with the
  // owner for future invalidation. Off the critical path.
  if (config_.path_caching && !from_cache) {
    Entry& entry = hs.primary[key];
    auto cache_on = [&](Key node_key) {
      if (node_key == holder->id()) return;
      stores_[node_key].cache[key] = result;
      entry.cached_at.insert(node_key);
      ++stats_.cache_updates;
    };
    for (const Key hop : routed->path) cache_on(hop);
    cache_on(origin.id());
  }

  co_return result;
}

sim::Task<Result<Buffer>> KvStore::get(ChimeraNode& origin, Key key) {
  auto all = co_await get_all(origin, key);
  if (!all.ok()) co_return all.error();
  if (all->empty()) co_return Error{Errc::not_found, "empty entry"};
  co_return all->back();
}

sim::Task<Result<void>> KvStore::erase(ChimeraNode& origin, Key key) {
  ++stats_.erases;
  auto& sim = overlay_.simulation();
  auto& net = overlay_.network();

  auto routed = co_await overlay_.route(origin, key);
  if (!routed.ok()) co_return routed.error();
  ChimeraNode* owner = overlay_.node_by_key(routed->owner);
  if (owner != &origin) {
    co_await net.send_message(origin.net_node(), owner->net_node());
  }
  co_await sim.delay(config_.local_access);

  NodeStore& store = stores_[owner->id()];
  const auto it = store.primary.find(key);
  if (it == store.primary.end()) {
    if (owner != &origin) co_await net.send_message(owner->net_node(), origin.net_node());
    co_return Error{Errc::not_found, "no value for key"};
  }

  // Tear down caches and replicas.
  for (const Key c : it->second.cached_at) {
    stores_[c].cache.erase(key);
    ++stats_.cache_updates;
  }
  for (const Key r : it->second.replica_at) {
    stores_[r].replica.erase(key);
    ++stats_.replication_msgs;
  }
  store.primary.erase(it);

  if (owner != &origin) co_await net.send_message(owner->net_node(), origin.net_node());
  co_return Result<void>{};
}

sim::Task<> KvStore::refresh_caches(ChimeraNode& owner, Key key) {
  auto& net = overlay_.network();
  const auto sit = stores_.find(owner.id());
  if (sit == stores_.end()) co_return;
  const auto it = sit->second.primary.find(key);
  if (it == sit->second.primary.end()) co_return;

  // Copy targets first: the entry may mutate while we await messages.
  const std::vector<Key> targets(it->second.cached_at.begin(), it->second.cached_at.end());
  for (const Key c : targets) {
    ChimeraNode* n = overlay_.node_by_key(c);
    if (n == nullptr || !n->online()) continue;
    const auto cur = stores_[owner.id()].primary.find(key);
    if (cur == stores_[owner.id()].primary.end()) co_return;  // erased meanwhile
    ++stats_.cache_updates;
    co_await net.send_message(owner.net_node(), n->net_node(), value_bytes(cur->second.versions));
    stores_[c].cache[key] = cur->second.versions;
  }
}

sim::Task<> KvStore::replicate(ChimeraNode& owner, Key key) {
  auto& net = overlay_.network();
  if (config_.replication <= 0) co_return;
  const auto succ = overlay_.successors_of(owner.id(), config_.replication);
  for (const Key r : succ) {
    ChimeraNode* n = overlay_.node_by_key(r);
    if (n == nullptr || !n->online()) continue;
    const auto cur = stores_[owner.id()].primary.find(key);
    if (cur == stores_[owner.id()].primary.end()) co_return;
    ++stats_.replication_msgs;
    co_await net.send_message(owner.net_node(), n->net_node(), value_bytes(cur->second.versions));
    stores_[r].replica[key] = cur->second.versions;
    stores_[owner.id()].primary[key].replica_at.insert(r);
  }
}

sim::Task<> KvStore::redistribute_on_leave(ChimeraNode& leaver) {
  auto& net = overlay_.network();
  const auto sit = stores_.find(leaver.id());
  if (sit == stores_.end()) co_return;

  // Hand each authoritative entry to the node that becomes its owner once
  // the leaver is gone (its closest remaining ring neighbour for that key).
  std::vector<std::pair<Key, Entry>> entries(sit->second.primary.begin(),
                                             sit->second.primary.end());
  for (auto& [key, entry] : entries) {
    Key best{};
    std::uint64_t best_dist = UINT64_MAX;
    for (ChimeraNode* n : overlay_.live_members()) {
      if (n == &leaver) continue;
      const auto d = n->id().ring_distance(key);
      if (d < best_dist || (d == best_dist && n->id() < best)) {
        best = n->id();
        best_dist = d;
      }
    }
    if (best_dist == UINT64_MAX) co_return;  // last node leaving; data is lost
    ChimeraNode* target = overlay_.node_by_key(best);
    ++stats_.redistribution_msgs;
    co_await net.send_message(leaver.net_node(), target->net_node(),
                              value_bytes(entry.versions));
    Entry moved = entry;
    moved.cached_at.clear();  // caches re-form on the new request paths
    moved.replica_at.clear();
    stores_[best].primary[key] = std::move(moved);
    ChimeraNode* new_owner = overlay_.node_by_key(best);
    if (new_owner != nullptr) overlay_.simulation().spawn(replicate(*new_owner, key));
  }
  stores_.erase(leaver.id());
}

sim::Task<> KvStore::repair_after_failure(Key dead) {
  auto& net = overlay_.network();
  // The dead node's table is gone. Every key it owned survives only in
  // replicas; promote each replica at the key's new owner and restore the
  // replication factor. Also scrub the dead node from cache/replica sets.
  stores_.erase(dead);
  for (auto& [node, store] : stores_) {
    for (auto& [key, entry] : store.primary) {
      entry.cached_at.erase(dead);
      entry.replica_at.erase(dead);
    }
  }

  // Collect keys whose replicas exist but whose owner lost the primary.
  std::vector<std::pair<Key, Key>> to_promote;  // (key, holder)
  for (auto& [node, store] : stores_) {
    ChimeraNode* holder = overlay_.node_by_key(node);
    if (holder == nullptr || !holder->online()) continue;
    for (auto& [key, versions] : store.replica) {
      const Key owner = overlay_.true_owner(key);
      const auto oit = stores_.find(owner);
      const bool owner_has = oit != stores_.end() && oit->second.primary.contains(key);
      if (!owner_has) to_promote.emplace_back(key, node);
    }
  }

  for (const auto& [key, holder_key] : to_promote) {
    ChimeraNode* holder = overlay_.node_by_key(holder_key);
    const Key owner_key = overlay_.true_owner(key);
    ChimeraNode* owner = overlay_.node_by_key(owner_key);
    if (holder == nullptr || owner == nullptr) continue;
    auto& versions = stores_[holder_key].replica[key];
    if (holder_key != owner_key) {
      ++stats_.redistribution_msgs;
      co_await net.send_message(holder->net_node(), owner->net_node(), value_bytes(versions));
    }
    stores_[owner_key].primary[key].versions = versions;
    overlay_.simulation().spawn(replicate(*owner, key));
  }
}

std::vector<Key> KvStore::primary_keys(Key node) const {
  std::vector<Key> out;
  const auto it = stores_.find(node);
  if (it == stores_.end()) return out;
  out.reserve(it->second.primary.size());
  for (const auto& [k, e] : it->second.primary) out.push_back(k);
  return out;
}

std::size_t KvStore::total_entries() const {
  std::size_t n = 0;
  for (const auto& [node, store] : stores_) n += store.primary.size();
  return n;
}

bool KvStore::has_cache(Key node, Key key) const {
  const auto it = stores_.find(node);
  return it != stores_.end() && it->second.cache.contains(key);
}

bool KvStore::has_replica(Key node, Key key) const {
  const auto it = stores_.find(node);
  return it != stores_.end() && it->second.replica.contains(key);
}

}  // namespace c4h::kv
