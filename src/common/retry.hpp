// Bounded retry with exponential backoff and jitter.
//
// The hardened operation paths (KV store, VStore++) retry transient
// failures — lost request messages, owners that crashed mid-operation,
// routes that momentarily have no live next hop — with exponentially
// growing, jittered pauses, and give up after a bounded number of
// attempts. Jitter is drawn from a caller-supplied Rng so retry timing is
// deterministic for a given simulation seed.
#pragma once

#include <algorithm>
#include <cmath>

#include "src/common/result.hpp"
#include "src/common/rng.hpp"
#include "src/common/units.hpp"

namespace c4h {

struct RetryPolicy {
  int max_attempts = 4;              // total tries, including the first
  Duration base = milliseconds(50);  // nominal pause before the 2nd try
  Duration cap = seconds(2);         // backoff ceiling
  double multiplier = 2.0;           // growth per retry
  double jitter = 0.2;               // uniform ± fraction around the nominal

  /// Failures worth retrying: transient routing / availability / timeout
  /// conditions (and injected IO hiccups). Semantic failures — not_found,
  /// already_exists, permission_denied — must surface unchanged.
  [[nodiscard]] static constexpr bool transient(Errc c) {
    return c == Errc::timeout || c == Errc::unavailable || c == Errc::no_route ||
           c == Errc::io_error;
  }

  /// Pause before retry number `retry` (1-based): base·multiplier^(retry−1),
  /// capped, with ±jitter noise drawn from `rng`.
  [[nodiscard]] Duration backoff(int retry, Rng& rng) const {
    double s = to_seconds(base) * std::pow(multiplier, std::max(0, retry - 1));
    s = std::min(s, to_seconds(cap));
    if (jitter > 0) s *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    return from_seconds(std::max(s, 0.0));
  }
};

}  // namespace c4h
