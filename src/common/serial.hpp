// Byte-buffer serialization for key-value entries and command packets.
//
// The paper serializes metadata values ("the value entry in the key-value
// store is a serialized data containing object location and metadata") and
// uses small binary command packets between domains; this writer/reader pair
// is the wire format for both. Integers are little-endian fixed width;
// strings and blobs are length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/result.hpp"

namespace c4h {

using Buffer = std::vector<std::uint8_t>;

namespace serial_detail {
// Underlying integral type for the wire: enums map to their underlying type,
// integers map to themselves (lazily, so non-enums never instantiate
// std::underlying_type).
template <typename T>
using wire_int_t = std::make_unsigned_t<
    typename std::conditional_t<std::is_enum_v<T>, std::underlying_type<T>,
                                std::type_identity<T>>::type>;
}  // namespace serial_detail

class Writer {
 public:
  Writer() = default;

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  void write(T v) {
    using U = serial_detail::wire_int_t<T>;
    auto u = static_cast<U>(v);
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
    }
  }

  void write(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write(bits);
  }

  void write(bool v) { write(static_cast<std::uint8_t>(v ? 1 : 0)); }

  void write(std::string_view s) {
    write(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void write(const std::string& s) { write(std::string_view{s}); }
  void write(const char* s) { write(std::string_view{s}); }

  void write_bytes(const Buffer& b) {
    write(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  template <typename T, typename Fn>
  void write_vector(const std::vector<T>& v, Fn&& per_element) {
    write(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) per_element(*this, e);
  }

  const Buffer& buffer() const& { return buf_; }
  Buffer take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Buffer buf_;
};

class Reader {
 public:
  explicit Reader(const Buffer& buf) : buf_(buf) {}

  template <typename T>
    requires std::is_integral_v<T> || std::is_enum_v<T>
  Result<T> read() {
    using U = serial_detail::wire_int_t<T>;
    if (remaining() < sizeof(U)) return Errc::io_error;
    U u = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      u |= static_cast<U>(U{buf_[pos_ + i]} << (8 * i));
    }
    pos_ += sizeof(U);
    return static_cast<T>(u);
  }

  Result<double> read_double() {
    auto bits = read<std::uint64_t>();
    if (!bits) return bits.error();
    double v;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }

  Result<bool> read_bool() {
    auto b = read<std::uint8_t>();
    if (!b) return b.error();
    return *b != 0;
  }

  Result<std::string> read_string() {
    auto len = read<std::uint32_t>();
    if (!len) return len.error();
    if (remaining() < *len) return Errc::io_error;
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), *len);
    pos_ += *len;
    return s;
  }

  Result<Buffer> read_bytes() {
    auto len = read<std::uint32_t>();
    if (!len) return len.error();
    if (remaining() < *len) return Errc::io_error;
    Buffer b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return b;
  }

  template <typename T, typename Fn>
  Result<std::vector<T>> read_vector(Fn&& per_element) {
    auto n = read<std::uint32_t>();
    if (!n) return n.error();
    std::vector<T> v;
    v.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      Result<T> e = per_element(*this);
      if (!e) return e.error();
      v.push_back(std::move(*e));
    }
    return v;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool at_end() const { return pos_ == buf_.size(); }

 private:
  const Buffer& buf_;
  std::size_t pos_ = 0;
};

}  // namespace c4h
