// Deterministic random number generation for simulations and workloads.
//
// xoshiro256** with splitmix64 seeding. Distribution sampling is implemented
// here (not via <random> distributions) so results are bit-identical across
// standard-library implementations — experiments must be reproducible from a
// seed alone.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace c4h {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to spread a (possibly small) user seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (fresh pair each call; no cached spare,
  /// keeping the stream position a pure function of call count).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Lognormal scaled so its mean is `mean` with shape `sigma`.
  double lognormal_mean(double mean, double sigma) {
    return lognormal(std::log(mean) - 0.5 * sigma * sigma, sigma);
  }

  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` (inverse-CDF over a
  /// precomputed table is the caller's job for hot paths; this is O(n) worst
  /// case via rejection-free cumulative walk and fine for workload setup).
  std::uint64_t zipf(std::uint64_t n, double s) {
    assert(n > 0);
    // Normalization constant.
    double h = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
    double u = uniform() * h;
    for (std::uint64_t k = 1; k <= n; ++k) {
      u -= 1.0 / std::pow(static_cast<double>(k), s);
      if (u <= 0.0) return k - 1;
    }
    return n - 1;
  }

  /// Derives an independent child generator (for per-node streams).
  Rng fork() { return Rng{next()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace c4h
