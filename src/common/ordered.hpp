// Deterministic traversal of unordered containers.
//
// Hash-table iteration order is an implementation detail: it varies across
// standard libraries, hasher seeds, and rehash points. When a loop over an
// unordered_map feeds anything observable — message emission order, placement
// decisions, floating-point accumulation — that detail leaks into simulation
// results and silently breaks byte-for-byte seed replay (the property
// tests/test_determinism.cpp guards and c4h-lint rule R3 enforces).
//
// sorted_keys() snapshots a map's keys in sorted order so the caller can
// traverse deterministically; mutation of the map during traversal is safe
// because the snapshot is independent storage.
#pragma once

#include <algorithm>
#include <vector>

namespace c4h {

/// Keys of any map-like container, sorted ascending. O(n log n); intended for
/// membership-event paths (join/leave/repair), not per-message hot paths.
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& entry : m) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace c4h
