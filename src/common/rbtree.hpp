// Red-black tree.
//
// Chimera "provides a logical tree view of other nodes in the overlay,
// implemented as a red-black tree" (§III-A, Fig. 2). We implement that
// structure ourselves rather than aliasing std::map so the overlay layer
// uses the same data structure the paper describes, and so tests can check
// the red-black invariants directly.
//
// Ordered map interface: insert / erase / find / lower_bound / min / max /
// successor-style iteration. Not thread-safe (the simulation is single-
// threaded by design).
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

namespace c4h {

template <typename K, typename V, typename Compare = std::less<K>>
class RbTree {
 public:
  struct Node {
    K key;
    V value;

   private:
    friend class RbTree;
    Node* parent = nullptr;
    Node* left = nullptr;
    Node* right = nullptr;
    bool red = true;
  };

  RbTree() = default;
  ~RbTree() { clear(); }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  RbTree(RbTree&& other) noexcept { swap(other); }
  RbTree& operator=(RbTree&& other) noexcept {
    if (this != &other) {
      clear();
      swap(other);
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    destroy(root_);
    root_ = nullptr;
    size_ = 0;
  }

  /// Inserts or assigns. Returns {node, inserted}.
  std::pair<Node*, bool> insert(const K& key, V value) {
    Node* parent = nullptr;
    Node** link = &root_;
    while (*link != nullptr) {
      parent = *link;
      if (cmp_(key, parent->key)) {
        link = &parent->left;
      } else if (cmp_(parent->key, key)) {
        link = &parent->right;
      } else {
        parent->value = std::move(value);
        return {parent, false};
      }
    }
    auto* n = new Node{};
    n->key = key;
    n->value = std::move(value);
    n->parent = parent;
    *link = n;
    ++size_;
    fix_insert(n);
    return {n, true};
  }

  Node* find(const K& key) const {
    Node* n = root_;
    while (n != nullptr) {
      if (cmp_(key, n->key)) {
        n = n->left;
      } else if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        return n;
      }
    }
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  /// First node with key >= `key`, or nullptr.
  Node* lower_bound(const K& key) const {
    Node* n = root_;
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        best = n;
        n = n->left;
      }
    }
    return best;
  }

  Node* min() const { return root_ ? leftmost(root_) : nullptr; }
  Node* max() const { return root_ ? rightmost(root_) : nullptr; }

  /// In-order successor (nullptr at end).
  static Node* next(Node* n) {
    assert(n != nullptr);
    if (n->right != nullptr) return leftmost(n->right);
    Node* p = n->parent;
    while (p != nullptr && n == p->right) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  /// In-order predecessor (nullptr at begin).
  static Node* prev(Node* n) {
    assert(n != nullptr);
    if (n->left != nullptr) return rightmost(n->left);
    Node* p = n->parent;
    while (p != nullptr && n == p->left) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  bool erase(const K& key) {
    Node* n = find(key);
    if (n == nullptr) return false;
    erase_node(n);
    return true;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Node* n = min(); n != nullptr; n = next(n)) fn(n->key, n->value);
  }

  /// Validates the red-black invariants; returns black-height or -1 on
  /// violation. Exposed for tests.
  int validate() const {
    if (root_ != nullptr && root_->red) return -1;
    return black_height(root_);
  }

 private:
  static Node* leftmost(Node* n) {
    while (n->left != nullptr) n = n->left;
    return n;
  }
  static Node* rightmost(Node* n) {
    while (n->right != nullptr) n = n->right;
    return n;
  }

  static bool is_red(const Node* n) { return n != nullptr && n->red; }

  void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  void swap(RbTree& other) noexcept {
    std::swap(root_, other.root_);
    std::swap(size_, other.size_);
    std::swap(cmp_, other.cmp_);
  }

  int black_height(const Node* n) const {
    if (n == nullptr) return 1;
    if (is_red(n) && (is_red(n->left) || is_red(n->right))) return -1;
    if (n->left != nullptr && !cmp_(n->left->key, n->key)) return -1;
    if (n->right != nullptr && !cmp_(n->key, n->right->key)) return -1;
    const int lh = black_height(n->left);
    const int rh = black_height(n->right);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    return lh + (n->red ? 0 : 1);
  }

  void rotate_left(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nullptr) y->left->parent = x;
    y->parent = x->parent;
    replace_child(x, y);
    y->left = x;
    x->parent = y;
  }

  void rotate_right(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nullptr) y->right->parent = x;
    y->parent = x->parent;
    replace_child(x, y);
    y->right = x;
    x->parent = y;
  }

  void replace_child(Node* old_child, Node* new_child) {
    Node* p = old_child->parent;
    if (p == nullptr) {
      root_ = new_child;
    } else if (p->left == old_child) {
      p->left = new_child;
    } else {
      p->right = new_child;
    }
  }

  void fix_insert(Node* z) {
    while (is_red(z->parent)) {
      Node* p = z->parent;
      Node* g = p->parent;  // grandparent exists: parent is red, root is black
      if (p == g->left) {
        Node* uncle = g->right;
        if (is_red(uncle)) {
          p->red = false;
          uncle->red = false;
          g->red = true;
          z = g;
        } else {
          if (z == p->right) {
            z = p;
            rotate_left(z);
            p = z->parent;
          }
          p->red = false;
          g->red = true;
          rotate_right(g);
        }
      } else {
        Node* uncle = g->left;
        if (is_red(uncle)) {
          p->red = false;
          uncle->red = false;
          g->red = true;
          z = g;
        } else {
          if (z == p->left) {
            z = p;
            rotate_right(z);
            p = z->parent;
          }
          p->red = false;
          g->red = true;
          rotate_left(g);
        }
      }
    }
    root_->red = false;
  }

  void erase_node(Node* z) {
    Node* removed = z;          // node physically unlinked
    Node* replacement;          // child that takes its place (may be null)
    Node* replacement_parent;   // parent of `replacement` after unlinking
    bool removed_was_red;

    if (z->left != nullptr && z->right != nullptr) {
      // Two children: unlink the in-order successor instead; move its
      // key/value into z (node identity of z is preserved, successor dies).
      Node* s = leftmost(z->right);
      z->key = std::move(s->key);
      z->value = std::move(s->value);
      removed = s;
    }

    removed_was_red = removed->red;
    replacement = removed->left != nullptr ? removed->left : removed->right;
    replacement_parent = removed->parent;
    if (replacement != nullptr) replacement->parent = replacement_parent;
    replace_child(removed, replacement);
    delete removed;
    --size_;

    if (!removed_was_red) fix_erase(replacement, replacement_parent);
  }

  // CLRS delete-fixup, tolerating null children (x may be nullptr; its
  // parent is tracked explicitly).
  void fix_erase(Node* x, Node* parent) {
    while (x != root_ && !is_red(x)) {
      if (parent == nullptr) break;
      if (x == parent->left) {
        Node* w = parent->right;
        if (is_red(w)) {
          w->red = false;
          parent->red = true;
          rotate_left(parent);
          w = parent->right;
        }
        if (!is_red(w->left) && !is_red(w->right)) {
          w->red = true;
          x = parent;
          parent = x->parent;
        } else {
          if (!is_red(w->right)) {
            if (w->left != nullptr) w->left->red = false;
            w->red = true;
            rotate_right(w);
            w = parent->right;
          }
          w->red = parent->red;
          parent->red = false;
          if (w->right != nullptr) w->right->red = false;
          rotate_left(parent);
          x = root_;
          parent = nullptr;
        }
      } else {
        Node* w = parent->left;
        if (is_red(w)) {
          w->red = false;
          parent->red = true;
          rotate_right(parent);
          w = parent->left;
        }
        if (!is_red(w->left) && !is_red(w->right)) {
          w->red = true;
          x = parent;
          parent = x->parent;
        } else {
          if (!is_red(w->left)) {
            if (w->right != nullptr) w->right->red = false;
            w->red = true;
            rotate_left(w);
            w = parent->left;
          }
          w->red = parent->red;
          parent->red = false;
          if (w->left != nullptr) w->left->red = false;
          rotate_right(parent);
          x = root_;
          parent = nullptr;
        }
      }
    }
    if (x != nullptr) x->red = false;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace c4h
