#include "src/common/sha1.hpp"

#include <cstring>

namespace c4h {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buf_len_ = 0;
  total_bits_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[i * 4]} << 24) | (std::uint32_t{block[i * 4 + 1]} << 16) |
           (std::uint32_t{block[i * 4 + 2]} << 8) | std::uint32_t{block[i * 4 + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_bits_ += std::uint64_t{len} * 8;
  while (len > 0) {
    const std::size_t take = std::min(len, buf_.size() - buf_len_);
    std::memcpy(buf_.data() + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    len -= take;
    if (buf_len_ == buf_.size()) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buf_len_ != 56) update(&zero, 1);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bits >> (56 - i * 8));
  update(len_be, 8);

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

}  // namespace c4h
