// Minimal leveled logger (printf-style; GCC 12 lacks <format>). Off
// (warn-and-up) by default so benchmarks stay quiet; tests and examples can
// raise verbosity.
#pragma once

#include <string_view>

namespace c4h {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

namespace log_detail {
LogLevel& global_level();
void emitf(LogLevel level, std::string_view component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
}  // namespace log_detail

inline void set_log_level(LogLevel level) { log_detail::global_level() = level; }
inline LogLevel log_level() { return log_detail::global_level(); }
inline bool log_enabled(LogLevel level) { return level >= log_detail::global_level(); }

#define C4H_LOG_AT(level, component, ...)                              \
  do {                                                                 \
    if (::c4h::log_enabled(level)) {                                   \
      ::c4h::log_detail::emitf(level, component, __VA_ARGS__);         \
    }                                                                  \
  } while (0)

#define C4H_LOG_TRACE(component, ...) C4H_LOG_AT(::c4h::LogLevel::trace, component, __VA_ARGS__)
#define C4H_LOG_DEBUG(component, ...) C4H_LOG_AT(::c4h::LogLevel::debug, component, __VA_ARGS__)
#define C4H_LOG_INFO(component, ...) C4H_LOG_AT(::c4h::LogLevel::info, component, __VA_ARGS__)
#define C4H_LOG_WARN(component, ...) C4H_LOG_AT(::c4h::LogLevel::warn, component, __VA_ARGS__)
#define C4H_LOG_ERROR(component, ...) C4H_LOG_AT(::c4h::LogLevel::error, component, __VA_ARGS__)

}  // namespace c4h
