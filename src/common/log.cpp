#include "src/common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace c4h::log_detail {

LogLevel& global_level() {
  static LogLevel level = LogLevel::warn;
  return level;
}

void emitf(LogLevel level, std::string_view component, const char* fmt, ...) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %.*s: %s\n", kNames[static_cast<int>(level)],
               static_cast<int>(component.size()), component.data(), msg);
}

}  // namespace c4h::log_detail
