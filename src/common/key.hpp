// The 40-bit key space of the VStore++ metadata layer.
//
// Keys identify objects (hash of object name), services (hash of service
// name ++ service id) and nodes (hash of the node's address), so that one
// key-value store holds all three kinds of entries (§III-A).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/sha1.hpp"

namespace c4h {

/// A 40-bit identifier in the Chimera overlay key space, stored in the low
/// 40 bits of a 64-bit integer. Ten hex digits when printed.
class Key {
 public:
  static constexpr int kBits = 40;
  static constexpr int kDigits = 10;  // hex digits (4 bits each)
  static constexpr std::uint64_t kMask = (std::uint64_t{1} << kBits) - 1;

  constexpr Key() = default;
  constexpr explicit Key(std::uint64_t raw) : v_(raw & kMask) {}

  /// Derives a key by hashing a name with SHA-1 and truncating to 40 bits.
  static Key from_name(std::string_view name) {
    const auto d = Sha1::hash(name);
    std::uint64_t v = 0;
    for (int i = 0; i < 5; ++i) v = (v << 8) | d[i];
    return Key{v};
  }

  constexpr std::uint64_t raw() const { return v_; }

  /// The i-th hex digit, counting from the most significant (digit 0).
  constexpr unsigned digit(int i) const {
    return static_cast<unsigned>((v_ >> (4 * (kDigits - 1 - i))) & 0xF);
  }

  /// Number of leading hex digits shared with `other` (0..kDigits).
  constexpr int shared_prefix_len(Key other) const {
    for (int i = 0; i < kDigits; ++i) {
      if (digit(i) != other.digit(i)) return i;
    }
    return kDigits;
  }

  /// Circular distance in the key ring (minimum of the two directions).
  constexpr std::uint64_t ring_distance(Key other) const {
    const std::uint64_t fwd = (other.v_ - v_) & kMask;
    const std::uint64_t bwd = (v_ - other.v_) & kMask;
    return fwd < bwd ? fwd : bwd;
  }

  /// Clockwise (increasing) distance from this key to `other` on the ring.
  constexpr std::uint64_t clockwise_distance(Key other) const {
    return (other.v_ - v_) & kMask;
  }

  friend constexpr auto operator<=>(Key a, Key b) = default;

  std::string to_string() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string s(kDigits, '0');
    for (int i = 0; i < kDigits; ++i) s[static_cast<std::size_t>(i)] = kHex[digit(i)];
    return s;
  }

 private:
  std::uint64_t v_ = 0;
};

}  // namespace c4h

template <>
struct std::hash<c4h::Key> {
  std::size_t operator()(c4h::Key k) const noexcept {
    return std::hash<std::uint64_t>{}(k.raw());
  }
};
