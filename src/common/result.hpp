// Lightweight Result<T> error handling for VStore++ operations.
//
// The paper's VStore++ interface reports failures (e.g. the key-value store's
// "error" overwrite policy returns an error to the caller), so the public API
// uses value-carrying results rather than exceptions for expected failures.
// Exceptions remain reserved for programming errors / broken invariants.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace c4h {

enum class Errc {
  ok = 0,
  not_found,        // object / key / service does not exist
  already_exists,   // put with OverwritePolicy::error on an existing key
  no_capacity,      // no bin or node can hold the object
  no_route,         // overlay could not route (no live nodes)
  unavailable,      // target node offline / service not deployed anywhere
  invalid_argument,
  timeout,
  io_error,
  permission_denied,  // principal lacks the required right (acl.hpp)
};

/// Human-readable name for an error code (stable, used in logs and tests).
constexpr const char* to_string(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::no_capacity: return "no_capacity";
    case Errc::no_route: return "no_route";
    case Errc::unavailable: return "unavailable";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::timeout: return "timeout";
    case Errc::io_error: return "io_error";
    case Errc::permission_denied: return "permission_denied";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::ok;
  std::string message;
};

/// Result<T>: either a value or an Error. Result<void> carries success only.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) { assert(error().code != Errc::ok); }
  Result(Errc code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { assert(ok()); return std::get<T>(v_); }
  T& value() & { assert(ok()); return std::get<T>(v_); }
  T&& value() && { assert(ok()); return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const { assert(!ok()); return std::get<Error>(v_); }
  Errc code() const { return ok() ? Errc::ok : error().code; }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)) {}  // NOLINT: implicit by design
  Result(Errc code, std::string msg = {}) : err_(Error{code, std::move(msg)}) {}

  bool ok() const { return err_.code == Errc::ok; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { assert(!ok()); return err_; }
  Errc code() const { return err_.code; }

 private:
  Error err_;
};

}  // namespace c4h
