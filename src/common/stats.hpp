// Statistics accumulators used to report experiment results (latency means,
// standard deviations for the paper's error bars, percentiles, histograms).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace c4h {

/// Streaming mean / variance (Welford) with min/max. O(1) memory.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-retaining accumulator for exact percentiles.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return xs_.size(); }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  double stddev() const {
    if (xs_.size() < 2) return 0.0;
    const double m = mean();
    double s2 = 0.0;
    for (double x : xs_) s2 += (x - m) * (x - m);
    return std::sqrt(s2 / static_cast<double>(xs_.size() - 1));
  }

  /// p in [0, 100]; nearest-rank percentile.
  double percentile(double p) {
    assert(!xs_.empty());
    sort();
    const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
  }

  double min() {
    sort();
    return xs_.empty() ? 0.0 : xs_.front();
  }
  double max() {
    sort();
    return xs_.empty() ? 0.0 : xs_.back();
  }

  const std::vector<double>& values() const { return xs_; }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }

  std::vector<double> xs_;
  bool sorted_ = true;
};

/// Fixed-width linear histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    assert(hi > lo && buckets > 0);
  }

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
    ++counts_[std::min(i, counts_.size() - 1)];
  }

  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  double bucket_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace c4h
