// serial.hpp is header-only; this TU exists so the library has a stable
// archive member and a place for future out-of-line codecs.
#include "src/common/serial.hpp"
