// Time, size, and rate units used throughout Cloud4Home.
//
// Simulated time is integral nanoseconds (std::chrono::nanoseconds) so that
// the discrete-event engine is deterministic and free of floating-point
// accumulation drift. Rates are double bytes/second because they are the
// output of the fair-share solver, not part of the clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace c4h {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;  // time since simulation start

constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration microseconds(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration milliseconds(std::int64_t n) { return Duration{n * 1000000}; }
constexpr Duration seconds(std::int64_t n) { return Duration{n * 1000000000}; }

/// Converts a duration to floating-point seconds (for rate arithmetic).
constexpr double to_seconds(Duration d) { return static_cast<double>(d.count()) * 1e-9; }

/// Converts floating-point seconds to the integral simulated duration,
/// rounding up so that "work remaining" never completes early.
constexpr Duration from_seconds(double s) {
  const double ns = s * 1e9;
  auto n = static_cast<std::int64_t>(ns);
  if (static_cast<double>(n) < ns) ++n;
  return Duration{n};
}

constexpr double to_milliseconds(Duration d) { return static_cast<double>(d.count()) * 1e-6; }

using Bytes = std::uint64_t;

constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KB(unsigned long long v) { return v * 1024; }
constexpr Bytes operator""_MB(unsigned long long v) { return v * 1024 * 1024; }
constexpr Bytes operator""_GB(unsigned long long v) { return v * 1024 * 1024 * 1024; }

constexpr double to_mib(Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0); }

/// Bandwidth / service rates, in bytes per second.
using Rate = double;

constexpr Rate mbps(double megabits_per_second) { return megabits_per_second * 1e6 / 8.0; }
constexpr Rate mib_per_sec(double v) { return v * 1024.0 * 1024.0; }
constexpr double to_mbps(Rate r) { return r * 8.0 / 1e6; }
constexpr double to_mib_per_sec(Rate r) { return r / (1024.0 * 1024.0); }

/// Time needed to move `size` bytes at `rate` bytes/sec.
constexpr Duration transfer_time(Bytes size, Rate rate) {
  return from_seconds(static_cast<double>(size) / rate);
}

}  // namespace c4h
