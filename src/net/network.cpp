#include "src/net/network.hpp"

#include <algorithm>
#include <cassert>

#include "src/sim/fault.hpp"

namespace c4h::net {

namespace {
constexpr double kByteEps = 0.5;  // flows within half a byte of done are done
}

sim::Task<> Network::transfer(NetNodeId src, NetNodeId dst, Bytes size, TcpProfile profile,
                              obs::Ctx ctx) {
  ++stats_.flows_started;
  if (m_flows_ != nullptr) {
    m_flows_->add();
    m_flow_bytes_->add(size);
  }
  obs::ScopedSpan sp(ctx, "net.transfer");
  sp.attr("bytes", static_cast<std::uint64_t>(size));
  // Connection setup: handshake plus one-way path latency before data flows.
  const Duration setup = profile.handshake + sample_message_latency(src, dst, 0);
  co_await sim_.delay(setup);

  if (src == dst) {
    ++stats_.flows_completed;
    stats_.bytes_delivered += static_cast<double>(size);
    co_return;
  }

  const auto& path = topo_.route(src, dst);
  sim::Event done{sim_};
  add_flow(path, size, profile, [&done] { done.fire(); });
  co_await done.wait();
  ++stats_.flows_completed;
  stats_.bytes_delivered += static_cast<double>(size);
}

sim::Task<> Network::transfer_striped(NetNodeId src, NetNodeId dst, Bytes size,
                                      TcpProfile profile, int streams, obs::Ctx ctx) {
  if (streams <= 1 || size == 0) {
    co_await transfer(src, dst, size, profile, ctx);
    co_return;
  }
  obs::ScopedSpan sp(ctx, "net.transfer_striped");
  sp.attr("bytes", static_cast<std::uint64_t>(size));
  sp.attr("streams", static_cast<std::uint64_t>(streams));
  const auto n = static_cast<Bytes>(streams);
  const Bytes base = size / n;
  std::vector<sim::Task<>> stripes;
  stripes.reserve(static_cast<std::size_t>(streams));
  for (Bytes i = 0; i < n; ++i) {
    const Bytes stripe = base + (i == 0 ? size % n : 0);  // remainder on stripe 0
    // Each stripe restarts slow start and is policed independently: the
    // per-flow phase thresholds apply to the (smaller) stripe, which is
    // precisely why striping helps window/policing-limited paths.
    stripes.push_back(transfer(src, dst, stripe, profile, sp.ctx()));
  }
  sim::Simulation& s = sim_;
  co_await sim::when_all(s, std::move(stripes));
}

sim::Task<> Network::send_message(NetNodeId src, NetNodeId dst, Bytes size, obs::Ctx ctx) {
  // (await in a declaration, not the loop condition: GCC 12 miscompiles
  // co_await of a temporary task inside a loop condition)
  for (;;) {
    const bool delivered = co_await try_send_message(src, dst, size, ctx);
    if (delivered) co_return;
    ++stats_.retransmits;
  }
}

sim::Task<bool> Network::try_send_message(NetNodeId src, NetNodeId dst, Bytes size,
                                          obs::Ctx ctx) {
  ++stats_.messages_sent;
  if (m_msgs_ != nullptr) m_msgs_->add();
  obs::ScopedSpan sp(ctx, "net.msg");
  sp.attr("bytes", static_cast<std::uint64_t>(size));
  Duration lat = sample_message_latency(src, dst, size);
  if (sim::FaultPlan* fp = sim_.fault(); fp != nullptr && src != dst) {
    const sim::MessageFault f = fp->message_fault();
    if (f.drop) {
      // The message dies in flight; the sender only learns from its
      // retransmit timer.
      sp.set_error("dropped");
      co_await sim_.delay(fp->spec().loss_detection);
      co_return false;
    }
    if (f.duplicate) ++stats_.messages_sent;  // the copy costs traffic only
    lat += f.extra_delay;
  }
  co_await sim_.delay(lat);
  co_return true;
}

void Network::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    m_msgs_ = nullptr;
    m_flows_ = nullptr;
    m_flow_bytes_ = nullptr;
    return;
  }
  m_msgs_ = &registry->counter("c4h.net.msg.count");
  m_flows_ = &registry->counter("c4h.net.flow.count");
  m_flow_bytes_ = &registry->counter("c4h.net.flow.bytes");
}

Duration Network::sample_message_latency(NetNodeId src, NetNodeId dst, Bytes size) {
  if (src == dst) return hop_processing_;
  Duration lat{};
  for (const LinkId lid : topo_.route(src, dst)) {
    const Link& l = topo_.link(lid);
    double mult = 1.0;
    if (l.latency_jitter > 0) {
      mult = std::clamp(rng_.lognormal_mean(1.0, l.latency_jitter), 0.2, 8.0);
    }
    lat += from_seconds(to_seconds(l.latency) * mult);
    lat += hop_processing_;
    // Serialization of the message itself; negligible for command packets
    // but kept for correctness on slow links.
    if (size > 0 && l.capacity > 0) lat += transfer_time(size, l.capacity);
  }
  return lat;
}

void Network::set_model(NetModel m) {
  assert(flows_.empty() && "set_model must precede flow admission");
  model_ = m;
  engine_.reset();
  if (m == NetModel::incremental) {
    std::vector<Rate> caps(topo_.link_count());
    for (LinkId l = 0; l < caps.size(); ++l) caps[l] = topo_.link(l).capacity;
    engine_ = std::make_unique<FairShareEngine>(std::move(caps));
  }
}

void Network::set_link_capacity(LinkId link, Rate capacity) {
  topo_.set_link_capacity(link, capacity);
  switch (model_) {
    case NetModel::global:
      // Flows whose bottleneck this was must slow down (or speed up) from
      // this instant; recompute() first credits everyone's progress at the
      // old rates.
      recompute();
      break;
    case NetModel::incremental:
      engine_->set_link_capacity(link, capacity);
      // Flow caps derived from this link's nominal rate (the bottleneck
      // term) change with it; refresh them against freshly credited
      // progress before the component re-solve.
      if (link < link_flows_.size()) {
        for (const std::uint64_t id : link_flows_[link]) {
          Flow& f = flows_.at(id);
          advance_flow(f);
          engine_->set_flow_cap(id, flow_cap(f));
        }
      }
      apply_commit();
      break;
    case NetModel::analytical:
      solve_analytical({link});
      break;
  }
}

Rate Network::link_load(LinkId link) const {
  Rate r = 0;
  if (link < link_flows_.size()) {
    for (const std::uint64_t id : link_flows_[link]) r += flows_.at(id).rate;
  }
  return r;
}

void Network::link_index_add(const Flow& f) {
  for (const LinkId l : f.links) {
    if (l >= link_flows_.size()) link_flows_.resize(l + 1);
    link_flows_[l].push_back(f.id);  // ids are monotone, so this stays sorted
  }
}

void Network::link_index_remove(const Flow& f) {
  for (const LinkId l : f.links) {
    auto& v = link_flows_[l];
    v.erase(std::lower_bound(v.begin(), v.end(), f.id));
  }
}

double Network::flow_cap(const Flow& f) const {
  // The phase fraction (slow start / policing) and the jitter multiplier
  // scale whichever constraint binds for this flow — the TCP window or the
  // bottleneck link's nominal rate — so both shape the throughput even on
  // window-unconstrained paths. The bottleneck is re-read every solve so
  // runtime capacity changes take effect on in-flight flows.
  Rate bottleneck = std::numeric_limits<Rate>::infinity();
  for (const LinkId lid : f.links) {
    bottleneck = std::min(bottleneck, topo_.link(lid).capacity);
  }
  return std::min(f.profile.steady_rate(), bottleneck) *
         f.profile.phase_fraction(static_cast<Bytes>(f.done)) * f.jitter_mult;
}

std::uint64_t Network::add_flow(const std::vector<LinkId>& links, Bytes size, TcpProfile profile,
                                std::function<void()> on_complete) {
  const std::uint64_t id = next_flow_id_++;
  Flow f;
  f.id = id;
  f.links = links;
  f.total = static_cast<double>(size);
  f.profile = profile;
  f.last_update = sim_.now();
  f.on_complete = std::move(on_complete);
  // Per-flow WAN variability: one multiplier for the flow's lifetime, drawn
  // from the most variable link on the path. Link capacities are nominal
  // *average* bandwidth; the multiplier models the burst/lull a given flow
  // actually experiences (the paper's uplink: ~1.5 Mbps average, bursts to
  // several times that).
  double sigma = 0;
  for (const LinkId lid : links) {
    sigma = std::max(sigma, topo_.link(lid).rate_jitter);
  }
  if (sigma > 0) f.jitter_mult = std::clamp(rng_.lognormal_mean(1.0, sigma), 0.25, 3.0);
  const auto it = flows_.emplace(id, std::move(f)).first;
  link_index_add(it->second);
  switch (model_) {
    case NetModel::global:
      recompute();
      break;
    case NetModel::incremental:
      engine_->add_flow(id, it->second.links, flow_cap(it->second));
      apply_commit();
      break;
    case NetModel::analytical:
      solve_analytical(it->second.links);
      break;
  }
  return id;
}

void Network::advance_flow(Flow& f) {
  const TimePoint now = sim_.now();
  const double elapsed = to_seconds(now - f.last_update);
  if (elapsed > 0) f.done = std::min(f.total, f.done + elapsed * f.rate);
  f.last_update = now;
}

void Network::advance_progress() {
  for (auto& [id, f] : flows_) advance_flow(f);
}

void Network::recompute() {
  advance_progress();

  // Retire completed flows (their completion callbacks may start new
  // transfers synchronously; those re-enter recompute via add_flow, so
  // collect callbacks first).
  std::vector<std::function<void()>> completed;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    if (f.total - f.done <= kByteEps) {
      sim_.cancel(f.next_event);
      completed.push_back(std::move(f.on_complete));
      link_index_remove(f);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  // Solve max-min rates for the remaining flows.
  std::vector<Rate> caps(topo_.link_count());
  for (LinkId l = 0; l < caps.size(); ++l) caps[l] = topo_.link(l).capacity;

  std::vector<std::uint64_t> ids;
  std::vector<FairFlowDesc> descs;
  ids.reserve(flows_.size());
  descs.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    ids.push_back(id);
    FairFlowDesc d;
    d.links = f.links;
    d.cap = flow_cap(f);
    descs.push_back(std::move(d));
  }
  const std::vector<Rate> rates = max_min_fair_rates(caps, descs);

  // Reschedule each flow's next event: completion or TCP phase boundary.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Flow& f = flows_.at(ids[i]);
    f.rate = rates[i];
    sim_.cancel(f.next_event);
    if (f.rate <= 0) continue;  // parked until some other event frees capacity
    double bytes_to_event = f.total - f.done;
    if (const auto b = f.profile.next_phase_boundary(static_cast<Bytes>(f.done))) {
      bytes_to_event = std::min(bytes_to_event, static_cast<double>(*b) - f.done);
    }
    const Duration dt = from_seconds(std::max(bytes_to_event, 0.0) / f.rate);
    f.next_event = sim_.schedule(dt, [this] { recompute(); });
  }

  for (auto& cb : completed) cb();
}

// ---- incremental / analytical fast paths -----------------------------------
//
// The global model above pays O(total flows) per network event. The fast
// paths pay O(affected component): each flow schedules its *own* next event
// (completion or TCP phase boundary) and, when it fires, only the flows
// whose rates can actually change — those sharing links, transitively for
// the incremental solver, one hop for the analytical one — are advanced and
// re-rated. Unaffected flows keep running at their piecewise-constant rates
// with stale `done`/`last_update`, which advance_flow() settles lazily the
// next time they are touched.

void Network::reschedule_flow(Flow& f) {
  sim_.cancel(f.next_event);
  f.next_event = {};
  if (f.rate <= 0) return;  // parked until some other event frees capacity
  double bytes_to_event = f.total - f.done;
  if (const auto b = f.profile.next_phase_boundary(static_cast<Bytes>(f.done))) {
    bytes_to_event = std::min(bytes_to_event, static_cast<double>(*b) - f.done);
  }
  const Duration dt = from_seconds(std::max(bytes_to_event, 0.0) / f.rate);
  const std::uint64_t id = f.id;
  f.next_event = sim_.schedule(dt, [this, id] { on_flow_event(id); });
}

void Network::apply_commit() {
  // Affected flows change rate *now*: credit progress at the old rate
  // first, then adopt the engine's new rate and reschedule.
  for (const std::uint64_t id : engine_->commit()) {
    Flow& f = flows_.at(id);
    advance_flow(f);
    f.rate = engine_->rate(id);
    reschedule_flow(f);
  }
}

Rate Network::rate_analytical(const Flow& f) const {
  Rate r = flow_cap(f);
  for (const LinkId l : f.links) {
    r = std::min(r, topo_.link(l).capacity / static_cast<double>(link_flows_[l].size()));
  }
  return r;
}

void Network::solve_analytical(const std::vector<LinkId>& links) {
  // One-hop affected set: in the closed form a flow's rate depends only on
  // its own links' capacities and flow counts, so effects don't propagate
  // beyond the flows sharing a changed link.
  std::vector<std::uint64_t> affected;
  for (const LinkId l : links) {
    if (l < link_flows_.size()) {
      affected.insert(affected.end(), link_flows_[l].begin(), link_flows_[l].end());
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
  for (const std::uint64_t id : affected) {
    Flow& f = flows_.at(id);
    advance_flow(f);
    f.rate = rate_analytical(f);
    reschedule_flow(f);
  }
}

void Network::on_flow_event(std::uint64_t id) {
  if (model_ == NetModel::global) {
    recompute();
    return;
  }
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;  // defensive; cancellation should prevent this
  Flow& f = it->second;
  advance_flow(f);

  if (f.total - f.done <= kByteEps) {
    // Completion: retire first (the callback may start new transfers
    // synchronously, re-entering add_flow), then re-rate the survivors.
    link_index_remove(f);
    std::function<void()> done_cb = std::move(f.on_complete);
    const std::vector<LinkId> links = std::move(f.links);
    flows_.erase(it);
    if (model_ == NetModel::incremental) {
      engine_->remove_flow(id);
      apply_commit();
    } else {
      solve_analytical(links);
    }
    if (done_cb) done_cb();
    return;
  }

  // TCP phase boundary: only this flow's cap changed.
  if (model_ == NetModel::incremental) {
    engine_->set_flow_cap(id, flow_cap(f));
    apply_commit();
  } else {
    f.rate = rate_analytical(f);
    reschedule_flow(f);
  }
}

}  // namespace c4h::net
