// Max-min fair bandwidth allocation with per-flow rate caps
// (progressive filling / water-filling).
//
// Given link capacities and the set of links each flow traverses, computes
// the classic max-min fair allocation: rates are raised together until a
// link saturates or a flow hits its own cap; saturated flows freeze and the
// rest continue. This is the standard flow-level model of TCP bandwidth
// sharing on a shared bottleneck (home LAN vs the thin cloud uplink).
//
// Two solvers live here:
//
//  * max_min_fair_rates() — the original one-shot global water-filling.
//    It is the semantic reference: Network's default (`NetModel::global`)
//    calls it on every network event, and the incremental engine's property
//    tests compare against it.
//
//  * FairShareEngine — the incremental solver (ROADMAP item 1). It keeps
//    per-link flow sets and, on a flow add/remove/cap change or a link
//    capacity change, re-solves only the *affected connected component* of
//    the flow–link conflict graph: flows that share no link (directly or
//    transitively) with the change keep their rates untouched. For the
//    home-cloud star topologies most components are a handful of flows, so
//    an event costs O(component) instead of O(flows × links).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "src/common/units.hpp"

namespace c4h::net {

struct FairFlowDesc {
  std::vector<std::uint32_t> links;  // indices into the capacity vector
  Rate cap = std::numeric_limits<Rate>::infinity();  // per-flow rate cap
};

/// Returns one rate per flow. Flows with an empty link list (loopback) get
/// their own cap. O(iterations × flows × links); fine at home-cloud scale.
inline std::vector<Rate> max_min_fair_rates(const std::vector<Rate>& link_capacity,
                                            const std::vector<FairFlowDesc>& flows) {
  const std::size_t nf = flows.size();
  std::vector<Rate> rate(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  // Loopback flows are bounded only by their own cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].links.empty()) {
      rate[f] = flows[f].cap;
      frozen[f] = true;
    }
  }

  std::vector<Rate> used(link_capacity.size(), 0.0);

  for (;;) {
    // Count unfrozen flows per link and find the tightest constraint.
    std::vector<std::uint32_t> active(link_capacity.size(), 0);
    bool any_unfrozen = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      any_unfrozen = true;
      for (const auto l : flows[f].links) ++active[l];
    }
    if (!any_unfrozen) break;

    // Headroom per active link / flow count = the equal increment each
    // unfrozen flow could still receive from that link.
    double increment = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < link_capacity.size(); ++l) {
      if (active[l] == 0) continue;
      increment = std::min(increment, (link_capacity[l] - used[l]) / active[l]);
    }
    // A flow's own cap may bind before any link.
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen[f]) increment = std::min(increment, flows[f].cap - rate[f]);
    }
    if (increment < 0) increment = 0;

    // Raise every unfrozen flow by the increment.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      rate[f] += increment;
      for (const auto l : flows[f].links) used[l] += increment;
    }

    // Freeze flows that hit their cap or traverse a saturated link.
    constexpr double kEps = 1e-7;
    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool saturated = rate[f] >= flows[f].cap - kEps;
      for (const auto l : flows[f].links) {
        if (used[l] >= link_capacity[l] - kEps) saturated = true;
      }
      if (saturated) {
        frozen[f] = true;
        froze_any = true;
      }
    }
    if (!froze_any) break;  // numerical safety; should not happen
  }
  return rate;
}

/// Incremental max-min fair-share solver over the flow–link conflict graph.
///
/// Usage: mutate (add_flow / remove_flow / set_flow_cap / set_link_capacity,
/// any number of them), then commit(). commit() gathers the connected
/// component(s) reachable from the dirtied links, water-fills each with the
/// same progressive-filling math as max_min_fair_rates(), and returns the
/// ids (ascending) whose rates were re-solved. Everything outside those
/// components is untouched — that is the whole point.
///
/// Determinism: flows are kept per-link in ascending-id vectors and every
/// traversal/solve iterates flows by ascending id and links by ascending
/// id, so same inputs ⇒ same floating-point operation order ⇒ same rates.
class FairShareEngine {
 public:
  explicit FairShareEngine(std::vector<Rate> link_capacity)
      : caps_(std::move(link_capacity)), link_flows_(caps_.size()), link_mark_(caps_.size(), 0) {}

  std::size_t flow_count() const { return flows_.size(); }

  /// Flows on `link`, ascending id — serves O(flows-on-link) link_load.
  const std::vector<std::uint64_t>& flows_on_link(std::uint32_t link) const {
    return link_flows_[link];
  }

  Rate rate(std::uint64_t id) const { return flows_.at(id).rate; }
  Rate flow_cap(std::uint64_t id) const { return flows_.at(id).cap; }

  /// `links` must be valid indices into the capacity vector. Loopback flows
  /// (empty link list) are rated at their cap immediately and never join a
  /// component.
  void add_flow(std::uint64_t id, const std::vector<std::uint32_t>& links, Rate cap) {
    assert(!flows_.contains(id));
    EFlow f;
    f.links = links;
    f.cap = cap;
    f.rate = links.empty() ? cap : 0.0;
    for (const std::uint32_t l : links) {
      // Ids are handed out monotonically by Network, so push_back keeps the
      // per-link vectors sorted; assert it to keep other callers honest.
      assert(link_flows_[l].empty() || link_flows_[l].back() < id);
      link_flows_[l].push_back(id);
      dirty_links_.push_back(l);
    }
    flows_.emplace(id, std::move(f));
  }

  void remove_flow(std::uint64_t id) {
    const auto it = flows_.find(id);
    assert(it != flows_.end());
    for (const std::uint32_t l : it->second.links) {
      auto& v = link_flows_[l];
      v.erase(std::lower_bound(v.begin(), v.end(), id));
      dirty_links_.push_back(l);
    }
    flows_.erase(it);
  }

  /// A flow's cap changes at its TCP phase boundaries (slow start → steady,
  /// policing) — same component machinery as a topology change.
  void set_flow_cap(std::uint64_t id, Rate cap) {
    EFlow& f = flows_.at(id);
    if (f.cap == cap) return;
    f.cap = cap;
    if (f.links.empty()) {
      f.rate = cap;
      return;
    }
    for (const std::uint32_t l : f.links) dirty_links_.push_back(l);
  }

  void set_link_capacity(std::uint32_t link, Rate capacity) {
    if (caps_[link] == capacity) return;
    caps_[link] = capacity;
    dirty_links_.push_back(link);
  }

  /// Re-solves the affected component(s). Returns the ids (ascending,
  /// deduplicated) whose rates were re-solved; the vector is owned by the
  /// engine and valid until the next commit(). No dirty links ⇒ empty.
  const std::vector<std::uint64_t>& commit() {
    affected_.clear();
    if (dirty_links_.empty()) return affected_;

    // Flood the conflict graph from the dirty links: a link pulls in its
    // flows, a flow pulls in its links. Marks are monotone epochs so no
    // per-commit clearing is needed.
    ++epoch_;
    comp_links_.clear();
    for (const std::uint32_t l : dirty_links_) visit_link(l);
    dirty_links_.clear();
    // BFS worklist: affected_ doubles as the flow queue (it only grows).
    for (std::size_t i = 0; i < affected_.size(); ++i) {
      for (const std::uint32_t l : flows_.at(affected_[i]).links) visit_link(l);
    }
    if (affected_.empty()) return affected_;
    std::sort(affected_.begin(), affected_.end());
    std::sort(comp_links_.begin(), comp_links_.end());

    solve_component();
    return affected_;
  }

 private:
  struct EFlow {
    std::vector<std::uint32_t> links;
    Rate cap = std::numeric_limits<Rate>::infinity();
    Rate rate = 0;
    std::uint64_t mark = 0;      // epoch when last pulled into a component
    std::uint32_t local = 0;     // scratch index during solve_component()
  };

  void visit_link(std::uint32_t l) {
    if (link_mark_[l] == epoch_) return;
    link_mark_[l] = epoch_;
    comp_links_.push_back(l);
    for (const std::uint64_t id : link_flows_[l]) {
      EFlow& f = flows_.at(id);
      if (f.mark == epoch_) continue;
      f.mark = epoch_;
      affected_.push_back(id);
    }
  }

  /// Progressive filling over the gathered component, arithmetic-for-
  /// arithmetic the algorithm of max_min_fair_rates() restricted to the
  /// component (flows ascending id, links ascending id).
  void solve_component() {
    const std::size_t nf = affected_.size();
    const std::size_t nl = comp_links_.size();
    rate_.assign(nf, 0.0);
    frozen_.assign(nf, 0);
    used_.assign(nl, 0.0);
    active_.assign(nl, 0);
    // Map global link ids to component-local ones via the epoch marks:
    // link_local_ is only read for links whose mark equals the epoch.
    link_local_.resize(link_mark_.size());
    for (std::size_t i = 0; i < nl; ++i) link_local_[comp_links_[i]] = static_cast<std::uint32_t>(i);
    for (std::size_t i = 0; i < nf; ++i) flows_.at(affected_[i]).local = static_cast<std::uint32_t>(i);

    for (;;) {
      std::fill(active_.begin(), active_.end(), 0u);
      bool any_unfrozen = false;
      for (std::size_t i = 0; i < nf; ++i) {
        if (frozen_[i] != 0) continue;
        any_unfrozen = true;
        for (const std::uint32_t l : flows_.at(affected_[i]).links) ++active_[link_local_[l]];
      }
      if (!any_unfrozen) break;

      double increment = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < nl; ++i) {
        if (active_[i] == 0) continue;
        increment = std::min(increment, (caps_[comp_links_[i]] - used_[i]) / active_[i]);
      }
      for (std::size_t i = 0; i < nf; ++i) {
        if (frozen_[i] == 0) {
          increment = std::min(increment, flows_.at(affected_[i]).cap - rate_[i]);
        }
      }
      if (increment < 0) increment = 0;

      for (std::size_t i = 0; i < nf; ++i) {
        if (frozen_[i] != 0) continue;
        rate_[i] += increment;
        for (const std::uint32_t l : flows_.at(affected_[i]).links) used_[link_local_[l]] += increment;
      }

      constexpr double kEps = 1e-7;
      bool froze_any = false;
      for (std::size_t i = 0; i < nf; ++i) {
        if (frozen_[i] != 0) continue;
        const EFlow& f = flows_.at(affected_[i]);
        bool saturated = rate_[i] >= f.cap - kEps;
        for (const std::uint32_t l : f.links) {
          const std::uint32_t ll = link_local_[l];
          if (used_[ll] >= caps_[comp_links_[ll]] - kEps) saturated = true;
        }
        if (saturated) {
          frozen_[i] = 1;
          froze_any = true;
        }
      }
      if (!froze_any) break;  // numerical safety; should not happen
    }

    for (std::size_t i = 0; i < nf; ++i) flows_.at(affected_[i]).rate = rate_[i];
  }

  std::vector<Rate> caps_;
  // Ordered by id (= admission order): determinism rule R3 — solve order
  // and therefore floating-point summation order must not depend on hash
  // layout. Lookups are O(log F); traversals all go through the sorted
  // per-link vectors.
  std::map<std::uint64_t, EFlow> flows_;
  std::vector<std::vector<std::uint64_t>> link_flows_;

  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> link_mark_;
  std::vector<std::uint32_t> link_local_;
  std::vector<std::uint32_t> dirty_links_;
  std::vector<std::uint32_t> comp_links_;
  std::vector<std::uint64_t> affected_;
  // solve_component() scratch, reused across commits to stay allocation-free
  // on the hot path.
  std::vector<Rate> rate_;
  std::vector<std::uint8_t> frozen_;
  std::vector<Rate> used_;
  std::vector<std::uint32_t> active_;
};

}  // namespace c4h::net
