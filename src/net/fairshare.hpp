// Max-min fair bandwidth allocation with per-flow rate caps
// (progressive filling / water-filling).
//
// Given link capacities and the set of links each flow traverses, computes
// the classic max-min fair allocation: rates are raised together until a
// link saturates or a flow hits its own cap; saturated flows freeze and the
// rest continue. This is the standard flow-level model of TCP bandwidth
// sharing on a shared bottleneck (home LAN vs the thin cloud uplink).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/units.hpp"

namespace c4h::net {

struct FairFlowDesc {
  std::vector<std::uint32_t> links;  // indices into the capacity vector
  Rate cap = std::numeric_limits<Rate>::infinity();  // per-flow rate cap
};

/// Returns one rate per flow. Flows with an empty link list (loopback) get
/// their own cap. O(iterations × flows × links); fine at home-cloud scale.
inline std::vector<Rate> max_min_fair_rates(const std::vector<Rate>& link_capacity,
                                            const std::vector<FairFlowDesc>& flows) {
  const std::size_t nf = flows.size();
  std::vector<Rate> rate(nf, 0.0);
  std::vector<bool> frozen(nf, false);

  // Loopback flows are bounded only by their own cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].links.empty()) {
      rate[f] = flows[f].cap;
      frozen[f] = true;
    }
  }

  std::vector<Rate> used(link_capacity.size(), 0.0);

  for (;;) {
    // Count unfrozen flows per link and find the tightest constraint.
    std::vector<std::uint32_t> active(link_capacity.size(), 0);
    bool any_unfrozen = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      any_unfrozen = true;
      for (const auto l : flows[f].links) ++active[l];
    }
    if (!any_unfrozen) break;

    // Headroom per active link / flow count = the equal increment each
    // unfrozen flow could still receive from that link.
    double increment = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < link_capacity.size(); ++l) {
      if (active[l] == 0) continue;
      increment = std::min(increment, (link_capacity[l] - used[l]) / active[l]);
    }
    // A flow's own cap may bind before any link.
    for (std::size_t f = 0; f < nf; ++f) {
      if (!frozen[f]) increment = std::min(increment, flows[f].cap - rate[f]);
    }
    if (increment < 0) increment = 0;

    // Raise every unfrozen flow by the increment.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      rate[f] += increment;
      for (const auto l : flows[f].links) used[l] += increment;
    }

    // Freeze flows that hit their cap or traverse a saturated link.
    constexpr double kEps = 1e-7;
    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool saturated = rate[f] >= flows[f].cap - kEps;
      for (const auto l : flows[f].links) {
        if (used[l] >= link_capacity[l] - kEps) saturated = true;
      }
      if (saturated) {
        frozen[f] = true;
        froze_any = true;
      }
    }
    if (!froze_any) break;  // numerical safety; should not happen
  }
  return rate;
}

}  // namespace c4h::net
