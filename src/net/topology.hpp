// Network topology: nodes joined by directed links with a rate capacity,
// propagation latency, and (for WAN links) jitter parameters.
//
// The prototype's network (§V): a 95.5 Mbps home Ethernet LAN and a shared
// wireless/Internet uplink to the public cloud (~6.5 Mbps down / 4.5 Mbps up
// max, ~1.5 Mbps average). Higher layers build that shape with a switch node
// and a gateway node.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/units.hpp"

namespace c4h::net {

struct NetNodeId {
  std::uint32_t v = UINT32_MAX;
  bool valid() const { return v != UINT32_MAX; }
  friend bool operator==(NetNodeId a, NetNodeId b) { return a.v == b.v; }
};

using LinkId = std::uint32_t;

struct Link {
  NetNodeId from;
  NetNodeId to;
  Rate capacity = 0;          // bytes/sec
  Duration latency{};         // propagation delay
  double latency_jitter = 0;  // lognormal sigma applied per message
  double rate_jitter = 0;     // lognormal sigma applied per flow
};

/// Static topology with precomputed lowest-latency routes.
class Topology {
 public:
  NetNodeId add_node() {
    adjacency_.emplace_back();
    routes_dirty_ = true;
    return NetNodeId{static_cast<std::uint32_t>(adjacency_.size() - 1)};
  }

  /// Adds a unidirectional link.
  LinkId add_link(NetNodeId from, NetNodeId to, Rate capacity, Duration latency,
                  double latency_jitter = 0.0, double rate_jitter = 0.0) {
    assert(from.v < adjacency_.size() && to.v < adjacency_.size());
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{from, to, capacity, latency, latency_jitter, rate_jitter});
    adjacency_[from.v].push_back(id);
    routes_dirty_ = true;
    return id;
  }

  /// Adds a full-duplex link (two directed links); returns {fwd, rev}.
  std::pair<LinkId, LinkId> add_duplex(NetNodeId a, NetNodeId b, Rate capacity, Duration latency,
                                       double latency_jitter = 0.0, double rate_jitter = 0.0) {
    return {add_link(a, b, capacity, latency, latency_jitter, rate_jitter),
            add_link(b, a, capacity, latency, latency_jitter, rate_jitter)};
  }

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// Changes a link's nominal capacity at runtime (changing network
  /// conditions — a congested uplink, a throttled ISP). Routing is latency-
  /// based and unaffected; flow rates must be re-solved by the caller.
  void set_link_capacity(LinkId id, Rate capacity) { links_.at(id).capacity = capacity; }

  /// Lowest-latency path (sequence of link ids) from `src` to `dst`.
  /// Empty for src == dst; asserts a route exists otherwise.
  const std::vector<LinkId>& route(NetNodeId src, NetNodeId dst) const {
    if (routes_dirty_) {
      rebuild_routes();
      routes_dirty_ = false;
    }
    const auto key = (std::uint64_t{src.v} << 32) | dst.v;
    const auto it = routes_.find(key);
    assert(it != routes_.end() && "no route between nodes");
    return it->second;
  }

  bool has_route(NetNodeId src, NetNodeId dst) const {
    if (routes_dirty_) {
      rebuild_routes();
      routes_dirty_ = false;
    }
    return routes_.contains((std::uint64_t{src.v} << 32) | dst.v);
  }

  /// Sum of link propagation latencies along the path.
  Duration path_latency(NetNodeId src, NetNodeId dst) const {
    Duration d{};
    for (const LinkId l : route(src, dst)) d += links_[l].latency;
    return d;
  }

 private:
  void rebuild_routes() const {
    routes_.clear();
    const auto n = adjacency_.size();
    for (std::uint32_t s = 0; s < n; ++s) {
      // Dijkstra over latency.
      std::vector<Duration> dist(n, Duration::max());
      std::vector<LinkId> via(n, UINT32_MAX);
      using QE = std::pair<Duration, std::uint32_t>;
      std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
      dist[s] = Duration::zero();
      pq.push({Duration::zero(), s});
      while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u]) continue;
        for (const LinkId lid : adjacency_[u]) {
          const Link& l = links_[lid];
          const Duration nd = d + l.latency;
          if (nd < dist[l.to.v]) {
            dist[l.to.v] = nd;
            via[l.to.v] = lid;
            pq.push({nd, l.to.v});
          }
        }
      }
      for (std::uint32_t t = 0; t < n; ++t) {
        if (dist[t] == Duration::max()) continue;
        std::vector<LinkId> path;
        std::uint32_t cur = t;
        while (cur != s) {
          const LinkId lid = via[cur];
          path.push_back(lid);
          cur = links_[lid].from.v;
        }
        std::reverse(path.begin(), path.end());
        routes_.emplace((std::uint64_t{s} << 32) | t, std::move(path));
      }
    }
  }

  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  mutable std::unordered_map<std::uint64_t, std::vector<LinkId>> routes_;
  mutable bool routes_dirty_ = false;
};

}  // namespace c4h::net
