// Network topology: nodes joined by directed links with a rate capacity,
// propagation latency, and (for WAN links) jitter parameters.
//
// The prototype's network (§V): a 95.5 Mbps home Ethernet LAN and a shared
// wireless/Internet uplink to the public cloud (~6.5 Mbps down / 4.5 Mbps up
// max, ~1.5 Mbps average). Higher layers build that shape with a switch node
// and a gateway node.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/units.hpp"

namespace c4h::net {

struct NetNodeId {
  std::uint32_t v = UINT32_MAX;
  bool valid() const { return v != UINT32_MAX; }
  friend bool operator==(NetNodeId a, NetNodeId b) { return a.v == b.v; }
};

using LinkId = std::uint32_t;

struct Link {
  NetNodeId from;
  NetNodeId to;
  Rate capacity = 0;          // bytes/sec
  Duration latency{};         // propagation delay
  double latency_jitter = 0;  // lognormal sigma applied per message
  double rate_jitter = 0;     // lognormal sigma applied per flow
};

/// Static topology with memoized lowest-latency routes.
///
/// Routes are resolved lazily, one (src, dst) pair at a time, with an
/// early-exit Dijkstra. The previous implementation built the full
/// all-pairs table on the first route() call — O(n²) paths of memory and
/// O(n · E log n) time — which is prohibitive at the 10k-node scale the
/// core scaling study drives; a star-ish topology only ever pays for the
/// pairs that actually communicate. Resolved paths are byte-identical to
/// the old table's (same relaxation rule, same tie-breaking heap order).
class Topology {
 public:
  NetNodeId add_node() {
    adjacency_.emplace_back();
    routes_dirty_ = true;
    return NetNodeId{static_cast<std::uint32_t>(adjacency_.size() - 1)};
  }

  /// Adds a unidirectional link.
  LinkId add_link(NetNodeId from, NetNodeId to, Rate capacity, Duration latency,
                  double latency_jitter = 0.0, double rate_jitter = 0.0) {
    assert(from.v < adjacency_.size() && to.v < adjacency_.size());
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{from, to, capacity, latency, latency_jitter, rate_jitter});
    adjacency_[from.v].push_back(id);
    routes_dirty_ = true;
    return id;
  }

  /// Adds a full-duplex link (two directed links); returns {fwd, rev}.
  std::pair<LinkId, LinkId> add_duplex(NetNodeId a, NetNodeId b, Rate capacity, Duration latency,
                                       double latency_jitter = 0.0, double rate_jitter = 0.0) {
    return {add_link(a, b, capacity, latency, latency_jitter, rate_jitter),
            add_link(b, a, capacity, latency, latency_jitter, rate_jitter)};
  }

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Link& link(LinkId id) const { return links_.at(id); }

  /// Changes a link's nominal capacity at runtime (changing network
  /// conditions — a congested uplink, a throttled ISP). Routing is latency-
  /// based and unaffected; flow rates must be re-solved by the caller.
  void set_link_capacity(LinkId id, Rate capacity) { links_.at(id).capacity = capacity; }

  /// Lowest-latency path (sequence of link ids) from `src` to `dst`.
  /// Empty for src == dst; asserts a route exists otherwise.
  const std::vector<LinkId>& route(NetNodeId src, NetNodeId dst) const {
    const std::vector<LinkId>* p = find_route(src, dst);
    assert(p != nullptr && "no route between nodes");
    return *p;
  }

  bool has_route(NetNodeId src, NetNodeId dst) const { return find_route(src, dst) != nullptr; }

  /// Sum of link propagation latencies along the path.
  Duration path_latency(NetNodeId src, NetNodeId dst) const {
    Duration d{};
    for (const LinkId l : route(src, dst)) d += links_[l].latency;
    return d;
  }

 private:
  const std::vector<LinkId>* find_route(NetNodeId src, NetNodeId dst) const {
    if (routes_dirty_) {
      routes_.clear();
      no_route_.clear();
      routes_dirty_ = false;
    }
    const auto key = (std::uint64_t{src.v} << 32) | dst.v;
    if (const auto it = routes_.find(key); it != routes_.end()) return &it->second;
    if (no_route_.contains(key)) return nullptr;
    std::vector<LinkId> path;
    if (!shortest_path(src.v, dst.v, path)) {
      no_route_.insert(key);
      return nullptr;
    }
    return &routes_.emplace(key, std::move(path)).first->second;
  }

  // Early-exit Dijkstra over latency from `s`, stopping once `t` settles.
  // Strict-< relaxation with a (distance, node-id) min-heap: exactly the
  // old full-table build, so the memoized path for a pair is the path the
  // eager version would have produced. A popped node is final, which makes
  // breaking at `t` safe.
  bool shortest_path(std::uint32_t s, std::uint32_t t, std::vector<LinkId>& out) const {
    const auto n = adjacency_.size();
    if (++epoch_ == 0) {  // stamp wrap: invalidate every slot the hard way
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    dist_.resize(n);
    via_.resize(n);
    stamp_.resize(n, 0u);
    const auto dist_at = [this](std::uint32_t v) {
      return stamp_[v] == epoch_ ? dist_[v] : Duration::max();
    };

    using QE = std::pair<Duration, std::uint32_t>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
    stamp_[s] = epoch_;
    dist_[s] = Duration::zero();
    pq.push({Duration::zero(), s});
    bool found = false;
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist_at(u)) continue;
      if (u == t) {
        found = true;
        break;
      }
      for (const LinkId lid : adjacency_[u]) {
        const Link& l = links_[lid];
        const Duration nd = d + l.latency;
        if (nd < dist_at(l.to.v)) {
          stamp_[l.to.v] = epoch_;
          dist_[l.to.v] = nd;
          via_[l.to.v] = lid;
          pq.push({nd, l.to.v});
        }
      }
    }
    if (!found) return false;
    out.clear();
    for (std::uint32_t cur = t; cur != s;) {
      const LinkId lid = via_[cur];
      out.push_back(lid);
      cur = links_[lid].from.v;
    }
    std::reverse(out.begin(), out.end());
    return true;
  }

  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  mutable std::unordered_map<std::uint64_t, std::vector<LinkId>> routes_;
  mutable std::unordered_set<std::uint64_t> no_route_;
  mutable bool routes_dirty_ = false;
  // Dijkstra scratch, epoch-stamped so a query costs O(visited), not O(n).
  mutable std::vector<Duration> dist_;
  mutable std::vector<LinkId> via_;
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace c4h::net
