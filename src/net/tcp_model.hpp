// TCP throughput model for remote-cloud transfers.
//
// Figure 5 of the paper attributes the rise-then-fall of remote throughput
// vs object size to three transport effects:
//   1. short transfers spend most bytes in slow start → low average rate;
//   2. mid-size transfers run at the provider's window cap (S3 grows the TCP
//      window up to ~1.6 MB) → best rate;
//   3. long "bandwidth-hogging" transfers trip ISP traffic shaping / rate
//      policing → degraded rate.
// We model a flow's instantaneous rate cap as a piecewise-constant function
// of bytes already sent, with those three phases.
#pragma once

#include <algorithm>
#include <optional>

#include "src/common/units.hpp"

namespace c4h::net {

struct TcpProfile {
  Duration rtt{};                       // round-trip time of the path
  Bytes window_cap = 1638400;           // max TCP window (S3: ~1.6 MB)
  Bytes slow_start_bytes = 0;           // bytes transferred before window cap is reached
  double slow_start_fraction = 0.5;     // average rate fraction during slow start
  Bytes policing_burst = 0;             // token-bucket burst; 0 disables policing
  double policed_fraction = 1.0;        // rate fraction once policed
  Duration handshake{};                 // connection setup (SYN + request)

  /// Steady-state window-limited rate (bytes/sec).
  Rate steady_rate() const {
    if (rtt <= Duration::zero()) return 1e18;  // effectively uncapped
    return static_cast<double>(window_cap) / to_seconds(rtt);
  }

  /// Phase multiplier when `sent` bytes have already been transferred. The
  /// slow-start and policing fractions scale whatever constraint actually
  /// binds (TCP window or the access link): ISP policers sit on the access
  /// link, so they throttle relative to its rate, not the window-derived
  /// ceiling.
  double phase_fraction(Bytes sent) const {
    if (sent < slow_start_bytes) return slow_start_fraction;
    if (policing_burst > 0 && sent >= policing_burst) return policed_fraction;
    return 1.0;
  }

  /// Rate cap from the TCP window alone (phase-adjusted).
  Rate rate_cap(Bytes sent) const { return steady_rate() * phase_fraction(sent); }

  /// Byte offset of the next cap change after `sent`, if any.
  std::optional<Bytes> next_phase_boundary(Bytes sent) const {
    if (sent < slow_start_bytes) return slow_start_bytes;
    if (policing_burst > 0 && sent < policing_burst) return policing_burst;
    return std::nullopt;
  }
};

/// Closed-form transfer time under the phase model with a fixed available
/// bandwidth `avail` (used by tests to cross-check the event-driven path).
inline Duration analytic_transfer_time(const TcpProfile& p, Bytes size, Rate avail) {
  Duration t = p.handshake;
  Bytes sent = 0;
  while (sent < size) {
    const Rate r = std::min(avail, p.steady_rate()) * p.phase_fraction(sent);
    const auto boundary = p.next_phase_boundary(sent);
    const Bytes upto = boundary ? std::min<Bytes>(*boundary, size) : size;
    t += transfer_time(upto - sent, r);
    sent = upto;
  }
  return t;
}

}  // namespace c4h::net
