// Flow-level network engine.
//
// Large object transfers are modelled as fluid flows: every flow traverses a
// fixed path of links, all concurrent flows share link capacity max-min
// fairly, and each flow additionally respects its TCP-model rate cap (slow
// start / window cap / ISP policing) and a per-flow stochastic rate
// multiplier for WAN variability. Flow rates are piecewise constant between
// "network events" (flow arrivals, completions, TCP phase changes); at each
// event every flow's progress is advanced and rates are re-solved.
//
// Small control messages (VStore++ commands are < 50 bytes, §IV) are pure
// latency: they never book bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/common/log.hpp"
#include "src/common/rng.hpp"
#include "src/net/fairshare.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/net/tcp_model.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulation.hpp"
#include "src/sim/sync.hpp"

namespace c4h::net {

struct NetworkStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t retransmits = 0;  // reliable-path resends after injected drops
  double bytes_delivered = 0;
};

/// Rate-allocation model (ROADMAP item 1).
///
///  * `global` — the original engine: every network event re-solves max-min
///    rates for *all* flows. Byte-identical to the pre-arena engine; the
///    default, and what every golden/scenario artifact is pinned against.
///  * `incremental` — re-solves only the connected component of the
///    flow–link conflict graph the event touched (FairShareEngine). Rates
///    agree with the global solve to ~1e-9 (property-tested), but the
///    floating-point operation order differs, so artifacts are not
///    byte-comparable across models.
///  * `analytical` — no water-filling at all: rate = min(flow cap,
///    min over links capacity/flows-on-link). The Graphite-style closed
///    form; cheapest, least faithful under skewed sharing.
enum class NetModel { global, incremental, analytical };

class Network {
 public:
  Network(sim::Simulation& sim, Topology topology)
      : sim_(sim), topo_(std::move(topology)), rng_(sim.rng().fork()),
        link_flows_(topo_.link_count()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topo_; }

  /// Selects the rate-allocation model. Must be called before any flow is
  /// admitted; switching mid-flight is not supported.
  void set_model(NetModel m);
  NetModel model() const { return model_; }

  /// Transfers `size` bytes from `src` to `dst`; completes when the last
  /// byte is delivered. Loopback (src == dst) costs only the handshake.
  /// A non-null `ctx` records the segment as a `net.transfer` span.
  [[nodiscard]] sim::Task<> transfer(NetNodeId src, NetNodeId dst, Bytes size, TcpProfile profile = {},
                                     obs::Ctx ctx = {});

  /// Striped transfer: splits the object across `streams` parallel
  /// connections and completes when the last byte of the last stripe
  /// lands. Each stripe is its own TCP flow, so window-capped WAN paths
  /// gain up to streams× until the link itself saturates — the paper's
  /// future-work "better object transfer protocols" (§VII).
  [[nodiscard]] sim::Task<> transfer_striped(NetNodeId src, NetNodeId dst, Bytes size, TcpProfile profile,
                               int streams, obs::Ctx ctx = {});

  /// Sends a small control message: path latency (with jitter) plus a fixed
  /// per-hop processing cost; no bandwidth is booked. Reliable: when a fault
  /// plan drops the message, the sender retransmits (paying the loss-
  /// detection timeout each time) until it gets through.
  [[nodiscard]] sim::Task<> send_message(NetNodeId src, NetNodeId dst, Bytes size = 50,
                                         obs::Ctx ctx = {});

  /// Unreliable variant: one send attempt. Returns false if the fault layer
  /// dropped the message — the caller resumes only after its loss-detection
  /// timeout has elapsed, and owns the retry/backoff decision. The hardened
  /// KV/VStore paths use this to drive their own per-operation timeouts.
  [[nodiscard]] sim::Task<bool> try_send_message(NetNodeId src, NetNodeId dst, Bytes size = 50,
                                                 obs::Ctx ctx = {});

  /// One-way message latency sample (used by send_message).
  Duration sample_message_latency(NetNodeId src, NetNodeId dst, Bytes size);

  /// Current aggregate rate of flows crossing `link` (bytes/sec).
  /// O(flows on that link) via the per-link index.
  Rate link_load(LinkId link) const;

  /// Changes a link's capacity mid-simulation; in-flight flows are advanced
  /// at their old rates and immediately re-solved at the new capacity.
  void set_link_capacity(LinkId link, Rate capacity);

  /// Number of in-flight flows.
  std::size_t active_flows() const { return flows_.size(); }

  const NetworkStats& stats() const { return stats_; }

  /// Fixed per-hop store-and-forward / processing cost for messages.
  void set_hop_processing(Duration d) { hop_processing_ = d; }

  /// Mirrors message/flow activity into a metrics registry
  /// (c4h.net.msg.count, c4h.net.flow.count, c4h.net.flow.bytes).
  /// Pass nullptr to detach.
  void set_metrics(obs::Registry* registry);

 private:
  struct Flow {
    std::uint64_t id;
    std::vector<LinkId> links;
    double total;           // bytes
    double done = 0;        // bytes delivered
    TcpProfile profile;
    double jitter_mult = 1.0;
    Rate rate = 0;
    TimePoint last_update{};
    sim::EventId next_event;
    std::function<void()> on_complete;
  };

  std::uint64_t add_flow(const std::vector<LinkId>& links, Bytes size, TcpProfile profile,
                         std::function<void()> on_complete);
  void advance_progress();
  void recompute();

  // Shared helpers (all models).
  double flow_cap(const Flow& f) const;     // TCP/bottleneck/jitter rate cap
  void advance_flow(Flow& f);               // credit progress at current rate
  void link_index_add(const Flow& f);
  void link_index_remove(const Flow& f);

  // incremental / analytical paths.
  void on_flow_event(std::uint64_t id);     // completion or TCP phase boundary
  void reschedule_flow(Flow& f);
  void apply_commit();                      // incremental: adopt engine rates
  void solve_analytical(const std::vector<LinkId>& links);
  Rate rate_analytical(const Flow& f) const;

  sim::Simulation& sim_;
  Topology topo_;
  Rng rng_;
  Duration hop_processing_ = microseconds(100);
  std::uint64_t next_flow_id_ = 1;
  // Ordered by id (= admission order), not hashed: recompute() iterates this
  // table to build the max-min solver's inputs and to accumulate per-link
  // loads, and floating-point summation order must not depend on hash-table
  // layout — determinism rule R3 (tools/c4h-lint).
  std::map<std::uint64_t, Flow> flows_;
  NetModel model_ = NetModel::global;
  std::unique_ptr<FairShareEngine> engine_;  // incremental model only
  // Per-link index of in-flight flow ids, ascending (ids are monotone and
  // flows join at admission). Serves O(flows-on-link) link_load in every
  // model and the affected-set walk in the analytical one.
  std::vector<std::vector<std::uint64_t>> link_flows_;
  NetworkStats stats_;
  obs::Counter* m_msgs_ = nullptr;        // registered via set_metrics()
  obs::Counter* m_flows_ = nullptr;
  obs::Counter* m_flow_bytes_ = nullptr;
};

}  // namespace c4h::net
