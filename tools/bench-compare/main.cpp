// bench-compare — guards the simulated-metric contract of bench artifacts.
//
// Compares freshly produced `BENCH_<name>.json` files (schema c4h-bench-v1)
// against checked-in baselines (bench/baselines/). The rule of the tree is
// that simulated series are a pure function of the seed, so any numeric
// drift in them is a behavior change that must be explained and re-baselined
// deliberately — CI fails. Host-side cost series (units suffixed "-wall",
// e.g. "ms-wall"/"mb-wall") are advisory: regressions print warnings but
// never fail the build, because wall-clock and RSS depend on the runner.
//
//   bench-compare --baseline <dir> <fresh.json...> [--tol 1e-9]
//                 [--wall-slack 1.5] [--require-all]
//
// Exit codes: 0 = clean (warnings allowed), 1 = simulated drift (or missing
// rows under --require-all), 2 = usage / IO / parse error, 3 = a fresh
// artifact has no baseline file at all (a new bench must be baselined
// deliberately, not silently waved through).
//
// A fresh artifact may carry a *subset* of the baseline's rows (the --quick
// lanes run shortened sweeps; every label they do produce is seed-identical
// to the full run), so only the intersection is compared and the skip count
// is reported. A fresh row with no baseline counterpart is a new metric:
// reported, and only fatal with --require-all.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace {

struct Point {
  double value = 0.0;
  std::string unit;
};

struct Artifact {
  std::string bench;
  double seed = 0.0;
  // label \x1f metric -> point; std::map so mismatch reports come out in a
  // stable sorted order (determinism rule R3 applies to tools too).
  std::map<std::string, Point> points;
};

bool wall_unit(const std::string& unit) {
  return unit.size() >= 5 && unit.compare(unit.size() - 5, 5, "-wall") == 0;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool load_artifact(const std::string& path, Artifact& a, std::string& err) {
  std::string text;
  if (!read_file(path, text)) {
    err = "cannot read " + path;
    return false;
  }
  auto parsed = c4h::obs::json_parse(text);
  if (!parsed.ok()) {
    err = path + ": " + parsed.error().message;
    return false;
  }
  const c4h::obs::JsonValue& root = *parsed;
  const auto* schema = root.find("schema");
  if (schema == nullptr || schema->str != "c4h-bench-v1") {
    err = path + ": not a c4h-bench-v1 artifact";
    return false;
  }
  if (const auto* b = root.find("bench")) a.bench = b->str;
  if (const auto* s = root.find("seed")) a.seed = s->num;
  const auto* series = root.find("series");
  if (series == nullptr) {
    err = path + ": no series array";
    return false;
  }
  for (const auto& row : series->items) {
    const auto* label = row.find("label");
    const auto* metric = row.find("metric");
    const auto* value = row.find("value");
    const auto* unit = row.find("unit");
    if (label == nullptr || metric == nullptr || value == nullptr) {
      err = path + ": malformed series row";
      return false;
    }
    Point p;
    p.value = value->num;
    if (unit != nullptr) p.unit = unit->str;
    a.points[label->str + '\x1f' + metric->str] = p;
  }
  return true;
}

std::string basename_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

void print_key(const std::string& key) {
  const auto sep = key.find('\x1f');
  std::printf("%s / %s", key.substr(0, sep).c_str(), key.substr(sep + 1).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir;
  double tol = 1e-9;
  double wall_slack = 1.5;
  bool require_all = false;
  std::vector<std::string> fresh;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--wall-slack") == 0 && i + 1 < argc) {
      wall_slack = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--require-all") == 0) {
      require_all = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "bench-compare: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      fresh.emplace_back(argv[i]);
    }
  }
  if (baseline_dir.empty() || fresh.empty()) {
    std::fprintf(stderr,
                 "usage: bench-compare --baseline <dir> <fresh.json...> "
                 "[--tol 1e-9] [--wall-slack 1.5] [--require-all]\n");
    return 2;
  }

  int drift = 0;
  int warnings = 0;
  int missing_baselines = 0;
  for (const std::string& path : fresh) {
    const std::string base_path = baseline_dir + '/' + basename_of(path);
    Artifact now;
    std::string err;
    if (!load_artifact(path, now, err)) {
      std::fprintf(stderr, "bench-compare: %s\n", err.c_str());
      return 2;
    }
    Artifact base;
    if (!load_artifact(base_path, base, err)) {
      std::printf("%-28s MISSING baseline (%s)\n", now.bench.c_str(),
                  basename_of(base_path).c_str());
      ++missing_baselines;
      continue;
    }
    if (base.seed != now.seed) {
      std::printf("%-28s FAIL seed mismatch (baseline %.0f, fresh %.0f)\n", now.bench.c_str(),
                  base.seed, now.seed);
      ++drift;
      continue;
    }

    int compared = 0;
    int fresh_only = 0;
    int file_drift = 0;
    for (const auto& [key, p] : now.points) {
      const auto it = base.points.find(key);
      if (it == base.points.end()) {
        ++fresh_only;
        if (require_all) {
          std::printf("  new row (no baseline): ");
          print_key(key);
          std::printf("\n");
          ++file_drift;
        }
        continue;
      }
      ++compared;
      const Point& b = it->second;
      if (wall_unit(p.unit) || wall_unit(b.unit)) {
        // Host-cost series: advisory only.
        if (b.value > 0 && p.value > b.value * wall_slack) {
          std::printf("  warn: ");
          print_key(key);
          std::printf(" wall cost %.2f %s vs baseline %.2f (> %.2fx)\n", p.value, p.unit.c_str(),
                      b.value, wall_slack);
          ++warnings;
        }
        continue;
      }
      const double scale = std::max(1.0, std::fabs(b.value));
      if (std::fabs(p.value - b.value) > tol * scale || p.unit != b.unit) {
        std::printf("  DRIFT: ");
        print_key(key);
        std::printf(" baseline %.17g %s, fresh %.17g %s\n", b.value, b.unit.c_str(), p.value,
                    p.unit.c_str());
        ++file_drift;
      }
    }
    // Baseline rows missing from fresh are expected under --quick; count
    // them so a silently shrinking sweep is at least visible.
    const int baseline_only = static_cast<int>(base.points.size()) - compared;
    std::printf("%-28s %s  (%d compared, %d baseline-only, %d fresh-only)\n", now.bench.c_str(),
                file_drift == 0 ? "ok" : "FAIL", compared, baseline_only, fresh_only);
    drift += file_drift;
  }
  if (warnings > 0) std::printf("%d wall-cost warning(s) — advisory only\n", warnings);
  if (drift > 0) {
    std::printf("simulated-metric drift detected: rebaseline deliberately (see "
                "bench/baselines/README.md) or fix the regression\n");
    return 1;
  }
  if (missing_baselines > 0) {
    std::printf("%d artifact(s) with no baseline: check in bench/baselines/ entries for new "
                "benches before they can gate\n",
                missing_baselines);
    return 3;
  }
  return 0;
}
